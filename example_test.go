package footsteps_test

import (
	"fmt"

	"footsteps"
	"footsteps/internal/platform"
)

// The static catalog renders without running any simulation.
func ExampleFormatTable2() {
	fmt.Print(footsteps.FormatTable2())
	// Output:
	// Table 2: reciprocity AAS trial and pricing
	// Service    Trial   Min Paid Days  Cost
	// Instalex   7 days  7              $3.15
	// Instazood  3 days  1              $0.34
	// Boostgram  3 days  30             $99.00
}

// Measure reciprocation the way §4.3 did: enroll honeypots on free trials
// and count what comes back.
func ExampleStudy_Reciprocation() {
	cfg := footsteps.TestConfig()
	cfg.GraphWrites = true // honeypot studies want full graph fidelity
	study := footsteps.NewStudy(cfg)

	table5, err := study.Reciprocation(3, 1) // 3 empty + 1 lived-in per cell
	if err != nil {
		panic(err)
	}
	cell, _ := table5.Cell("Boostgram", 0 /* empty */, platform.ActionFollow)
	fmt.Printf("measured %d outbound follows across %d honeypots\n", cell.Outbound, cell.Honeypots)
	fmt.Printf("reciprocation rate in the paper's band: %v\n",
		cell.InFollowRate > 0.05 && cell.InFollowRate < 0.2)
	// Output:
	// measured 559 outbound follows across 3 honeypots
	// reciprocation rate in the paper's band: true
}

// Run the full §5 characterization and read one headline number.
func ExampleStudy_Business() {
	cfg := footsteps.TestConfig()
	cfg.Days = 20
	study := footsteps.NewStudy(cfg)
	res, err := study.Business()
	if err != nil {
		panic(err)
	}
	split := res.Table6["Hublaagram"]
	fmt.Printf("collusion network dominates: %v\n", split.Customers > res.Table6["Boostgram"].Customers)
	// Output:
	// collusion network dominates: true
}
