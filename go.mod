module footsteps

go 1.22
