package footsteps

import (
	"strings"
	"testing"
)

func TestStaticTablesRender(t *testing.T) {
	cases := map[string]string{
		FormatTable1(): "Instalex",
		FormatTable2(): "$99.00",
		FormatTable3(): "No collusion network",
		FormatTable4(): "Followersgratis",
	}
	for out, want := range cases {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestStudyReciprocationViaPublicAPI(t *testing.T) {
	cfg := TestConfig()
	cfg.GraphWrites = true
	study := NewStudy(cfg)
	tbl, err := study.Reciprocation(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Cells) != 12 {
		t.Fatalf("cells %d", len(tbl.Cells))
	}
	if !strings.Contains(FormatTable5(tbl), "Boostgram") {
		t.Fatal("formatted table incomplete")
	}
	if study.World() == nil {
		t.Fatal("World() nil")
	}
}

func TestStudyDeterminism(t *testing.T) {
	run := func() string {
		cfg := TestConfig()
		cfg.GraphWrites = true
		study := NewStudy(cfg)
		tbl, err := study.Reciprocation(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return FormatTable5(tbl)
	}
	if a, b := run(), run(); a != b {
		t.Fatal("identical seeds produced different Table 5 output")
	}
}
