package footsteps

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"footsteps/internal/telemetry"
)

func TestStaticTablesRender(t *testing.T) {
	cases := map[string]string{
		FormatTable1(): "Instalex",
		FormatTable2(): "$99.00",
		FormatTable3(): "No collusion network",
		FormatTable4(): "Followersgratis",
	}
	for out, want := range cases {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestStudyReciprocationViaPublicAPI(t *testing.T) {
	cfg := TestConfig()
	cfg.GraphWrites = true
	study := NewStudy(cfg)
	tbl, err := study.Reciprocation(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Cells) != 12 {
		t.Fatalf("cells %d", len(tbl.Cells))
	}
	if !strings.Contains(FormatTable5(tbl), "Boostgram") {
		t.Fatal("formatted table incomplete")
	}
	if study.World() == nil {
		t.Fatal("World() nil")
	}
}

func TestStudyDeterminism(t *testing.T) {
	run := func() string {
		cfg := TestConfig()
		cfg.GraphWrites = true
		study := NewStudy(cfg)
		tbl, err := study.Reciprocation(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return FormatTable5(tbl)
	}
	if a, b := run(), run(); a != b {
		t.Fatal("identical seeds produced different Table 5 output")
	}
}

// TestStudyReportGolden pins the faults-off business report to the
// exact bytes it produced before the fault-injection layer existed:
// the resilience plumbing (retry policies, breakers, re-login paths)
// must be inert when Config.Faults is nil. If this fails after an
// intentional report change, rerun with -v and copy the printed hash.
func TestStudyReportGolden(t *testing.T) {
	const want = "1e1f28aa74dd545c4b228a91417e1478730500032d0df851709f2c785c91a018"
	cfg := TestConfig()
	cfg.Days = 8
	cfg.OrganicPopulation = 400
	cfg.PoolSize = 300
	cfg.VPNUsers = 20
	study := NewStudy(cfg)
	res, err := study.Business()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(FormatBusiness(res)))
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("faults-off business report moved:\n got  %s\n want %s", got, want)
	}
}

// TestStudyReportHashDeterminism is the end-to-end regression for
// parallel stepping: the full business report must hash identically
// across fresh World runs and across worker counts. Run with -cpu=1,4
// in CI so the same assertions hold under different GOMAXPROCS.
func TestStudyReportHashDeterminism(t *testing.T) {
	smallCfg := func(workers int) Config {
		cfg := TestConfig()
		cfg.Days = 8
		cfg.OrganicPopulation = 400
		cfg.PoolSize = 300
		cfg.VPNUsers = 20
		cfg.Workers = workers
		return cfg
	}
	hash := func(cfg Config) string {
		study := NewStudy(cfg)
		res, err := study.Business()
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(FormatBusiness(res)))
		return hex.EncodeToString(sum[:8])
	}
	seq := hash(smallCfg(0))
	if again := hash(smallCfg(0)); again != seq {
		t.Fatalf("two fresh sequential runs hashed differently: %s vs %s", seq, again)
	}
	for _, workers := range []int{4, 8} {
		if h := hash(smallCfg(workers)); h != seq {
			t.Errorf("workers=%d report hash %s differs from sequential %s", workers, h, seq)
		}
	}

	// The pure-observer half of the contract: enabling telemetry must not
	// move the report hash either, sequentially or in parallel.
	for _, workers := range []int{0, 4} {
		cfg := smallCfg(workers)
		cfg.Telemetry = telemetry.NewRegistry()
		if h := hash(cfg); h != seq {
			t.Errorf("workers=%d with telemetry: report hash %s differs from baseline %s", workers, h, seq)
		}
		if len(cfg.Telemetry.Snapshot().Counters) == 0 {
			t.Errorf("workers=%d: telemetry registry stayed empty; comparison is vacuous", workers)
		}
	}
}
