// Command fsevdump decodes a binary event capture (the FSEV1 streams
// written by internal/eventio) to JSON lines on stdout.
//
// Usage:
//
//	fsevdump capture.fsev            # whole stream
//	fsevdump -type like capture.fsev # one action type
//	fsevdump -blocked capture.fsev   # only blocked actions
//	fsevdump -n 100 capture.fsev     # first 100 matching events
//	fsevdump -stats capture.fsev     # per-type counts and per-day rates
//
// -stats composes with the filters: it summarizes the matching events
// instead of printing them.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/eventio"
	"footsteps/internal/platform"
	"footsteps/internal/telemetry"
)

func main() {
	typeFilter := flag.String("type", "", "keep only this action type (like, follow, unfollow, comment, post, login)")
	blockedOnly := flag.Bool("blocked", false, "keep only blocked actions")
	limit := flag.Int("n", 0, "stop after N matching events (0 = all)")
	stats := flag.Bool("stats", false, "print per-event-type counts and per-day rates instead of JSONL")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fsevdump [flags] capture.fsev")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsevdump:", err)
		os.Exit(1)
	}
	defer f.Close()

	r, err := eventio.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsevdump:", err)
		os.Exit(1)
	}

	// -stats reuses the telemetry registry and table formatting, so the
	// offline summary reads exactly like a live run's metrics report.
	reg := telemetry.NewRegistry()
	perDay := make(map[int]int64)

	matched := 0
	batch := make([]platform.Event, 0, 512)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := eventio.WriteJSONL(os.Stdout, batch); err != nil {
			fmt.Fprintln(os.Stderr, "fsevdump:", err)
			os.Exit(1)
		}
		batch = batch[:0]
	}
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Flush the decoded prefix first — everything before the
			// damage is intact and already on stdout.
			flush()
			if *stats {
				printStats(reg, perDay)
			}
			var trunc *eventio.TruncatedError
			if errors.As(err, &trunc) {
				fmt.Fprintln(os.Stderr, "fsevdump:", trunc)
				fmt.Fprintf(os.Stderr, "fsevdump: the capture ends mid-record (interrupted or still-running producer?); the %d events decoded before the cut are intact\n", trunc.Events)
			} else {
				fmt.Fprintln(os.Stderr, "fsevdump: stream error:", err)
			}
			os.Exit(1)
		}
		if *typeFilter != "" && ev.Type.String() != *typeFilter {
			continue
		}
		if *blockedOnly && ev.Outcome != platform.OutcomeBlocked {
			continue
		}
		matched++
		if *stats {
			reg.Counter("events." + ev.Type.String() + "." + ev.Outcome.String()).Inc()
			perDay[int(ev.Time.Sub(clock.Epoch)/clock.Day)]++
		} else {
			batch = append(batch, ev)
			if len(batch) == cap(batch) {
				flush()
			}
		}
		if *limit > 0 && matched >= *limit {
			break
		}
	}
	flush()
	if *stats {
		printStats(reg, perDay)
	}
	fmt.Fprintf(os.Stderr, "fsevdump: %d events\n", matched)
}

// printStats renders the aggregate counters and a per-day rates table.
func printStats(reg *telemetry.Registry, perDay map[int]int64) {
	fmt.Print(reg.Snapshot().Format())
	if len(perDay) == 0 {
		return
	}
	days := make([]int, 0, len(perDay))
	for d := range perDay {
		days = append(days, d)
	}
	sort.Ints(days)
	rows := make([][]string, 0, len(perDay))
	for _, d := range days {
		n := perDay[d]
		rows = append(rows, []string{
			fmt.Sprintf("%d", d),
			clock.Epoch.Add(time.Duration(d) * clock.Day).Format("2006-01-02"),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(n)/24),
		})
	}
	fmt.Println()
	fmt.Print(telemetry.Table([]string{"day", "date", "events", "events/hour"}, rows))
}
