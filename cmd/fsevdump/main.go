// Command fsevdump decodes a binary event capture (the FSEV1 streams
// written by internal/eventio) to JSON lines on stdout.
//
// Usage:
//
//	fsevdump capture.fsev            # whole stream
//	fsevdump -type like capture.fsev # one action type
//	fsevdump -blocked capture.fsev   # only blocked actions
//	fsevdump -n 100 capture.fsev     # first 100 matching events
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"footsteps/internal/eventio"
	"footsteps/internal/platform"
)

func main() {
	typeFilter := flag.String("type", "", "keep only this action type (like, follow, unfollow, comment, post, login)")
	blockedOnly := flag.Bool("blocked", false, "keep only blocked actions")
	limit := flag.Int("n", 0, "stop after N matching events (0 = all)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fsevdump [flags] capture.fsev")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsevdump:", err)
		os.Exit(1)
	}
	defer f.Close()

	r, err := eventio.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsevdump:", err)
		os.Exit(1)
	}

	matched := 0
	batch := make([]platform.Event, 0, 512)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := eventio.WriteJSONL(os.Stdout, batch); err != nil {
			fmt.Fprintln(os.Stderr, "fsevdump:", err)
			os.Exit(1)
		}
		batch = batch[:0]
	}
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			flush()
			fmt.Fprintln(os.Stderr, "fsevdump: stream error:", err)
			os.Exit(1)
		}
		if *typeFilter != "" && ev.Type.String() != *typeFilter {
			continue
		}
		if *blockedOnly && ev.Outcome != platform.OutcomeBlocked {
			continue
		}
		batch = append(batch, ev)
		matched++
		if len(batch) == cap(batch) {
			flush()
		}
		if *limit > 0 && matched >= *limit {
			break
		}
	}
	flush()
	fmt.Fprintf(os.Stderr, "fsevdump: %d events\n", matched)
}
