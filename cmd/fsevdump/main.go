// Command fsevdump decodes a binary event capture (the FSEV1 streams
// written by internal/eventio) to JSON lines on stdout.
//
// Usage:
//
//	fsevdump capture.fsev            # whole stream
//	fsevdump -type like capture.fsev # one action type
//	fsevdump -blocked capture.fsev   # only blocked actions
//	fsevdump -n 100 capture.fsev     # first 100 matching events
//	fsevdump -stats capture.fsev     # per-type counts and per-day rates
//	fsevdump -verify durable-dir/    # CRC-check a durable segment log
//
// -stats composes with the filters: it summarizes the matching events
// instead of printing them. -verify takes a durable log directory (the
// segment files written by `footsteps run -durable`), CRC-checks every
// frame, and reports the first bad one — segment, offset, expected and
// actual checksum.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/durable"
	"footsteps/internal/eventio"
	"footsteps/internal/platform"
	"footsteps/internal/telemetry"
)

// options are the dump's filter and mode switches, one per flag.
type options struct {
	typeFilter  string
	blockedOnly bool
	limit       int
	stats       bool
	verify      bool
}

func main() {
	var opt options
	flag.StringVar(&opt.typeFilter, "type", "", "keep only this action type (like, follow, unfollow, comment, post, login)")
	flag.BoolVar(&opt.blockedOnly, "blocked", false, "keep only blocked actions")
	flag.IntVar(&opt.limit, "n", 0, "stop after N matching events (0 = all)")
	flag.BoolVar(&opt.stats, "stats", false, "print per-event-type counts and per-day rates instead of JSONL")
	flag.BoolVar(&opt.verify, "verify", false, "treat the operand as a durable log directory and CRC-check every segment frame")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fsevdump [flags] capture.fsev | fsevdump -verify durable-dir")
		os.Exit(2)
	}
	if opt.verify {
		if err := verify(durable.OSFS{}, flag.Arg(0), os.Stdout, os.Stderr); err != nil {
			os.Exit(1)
		}
		return
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsevdump:", err)
		os.Exit(1)
	}
	defer f.Close()

	matched, err := dump(f, opt, os.Stdout, os.Stderr)
	if err != nil {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fsevdump: %d events\n", matched)
}

// dump decodes an FSEV1 stream from src, applying opt's filters, and
// writes JSONL (or, with opt.stats, the summary tables) to out.
// Diagnostics go to errw. On a damaged stream the decoded prefix is
// flushed before the error returns, so partial captures stay useful.
func dump(src io.Reader, opt options, out, errw io.Writer) (int, error) {
	r, err := eventio.NewReader(src)
	if err != nil {
		fmt.Fprintln(errw, "fsevdump:", err)
		return 0, err
	}

	// -stats reuses the telemetry registry and table formatting, so the
	// offline summary reads exactly like a live run's metrics report.
	reg := telemetry.NewRegistry()
	perDay := make(map[int]int64)

	matched := 0
	batch := make([]platform.Event, 0, 512)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := eventio.WriteJSONL(out, batch); err != nil {
			fmt.Fprintln(errw, "fsevdump:", err)
			return err
		}
		batch = batch[:0]
		return nil
	}
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Flush the decoded prefix first — everything before the
			// damage is intact and already on out.
			if ferr := flush(); ferr != nil {
				return matched, ferr
			}
			if opt.stats {
				printStats(out, reg, perDay)
			}
			var trunc *eventio.TruncatedError
			if errors.As(err, &trunc) {
				fmt.Fprintln(errw, "fsevdump:", trunc)
				fmt.Fprintf(errw, "fsevdump: the capture ends mid-record (interrupted or still-running producer?); the %d events decoded before the cut are intact\n", trunc.Events)
			} else {
				fmt.Fprintln(errw, "fsevdump: stream error:", err)
			}
			return matched, err
		}
		if opt.typeFilter != "" && ev.Type.String() != opt.typeFilter {
			continue
		}
		if opt.blockedOnly && ev.Outcome != platform.OutcomeBlocked {
			continue
		}
		matched++
		if opt.stats {
			reg.Counter("events." + ev.Type.String() + "." + ev.Outcome.String()).Inc()
			perDay[int(ev.Time.Sub(clock.Epoch)/clock.Day)]++
		} else {
			batch = append(batch, ev)
			if len(batch) == cap(batch) {
				if err := flush(); err != nil {
					return matched, err
				}
			}
		}
		if opt.limit > 0 && matched >= opt.limit {
			break
		}
	}
	if err := flush(); err != nil {
		return matched, err
	}
	if opt.stats {
		printStats(out, reg, perDay)
	}
	return matched, nil
}

// verify CRC-checks every segment of a durable log directory, printing
// a per-segment summary to out. On damage it reports the first bad
// frame — segment, byte offset, and (for checksum mismatches) the
// expected and actual CRC32C — to errw and returns the typed error.
func verify(fsys durable.FS, dir string, out, errw io.Writer) error {
	infos, err := durable.VerifyDir(fsys, dir)
	var events uint64
	for _, inf := range infos {
		state := "open"
		if inf.Sealed {
			state = "sealed"
		}
		fmt.Fprintf(out, "%s  %8d bytes  %5d frames  %9d events  %s\n",
			inf.Name, inf.Bytes, inf.Frames, inf.Events, state)
		events = inf.Events
	}
	if err != nil {
		var torn *durable.TornTailError
		var corrupt *durable.CorruptError
		switch {
		case errors.As(err, &torn):
			fmt.Fprintf(errw, "fsevdump: first bad frame: segment %s, frame %d, byte offset %d\n",
				torn.Segment, torn.Frame, torn.Offset)
			if torn.Want != 0 || torn.Got != 0 {
				fmt.Fprintf(errw, "fsevdump: checksum mismatch: expected crc32c %08x, got %08x\n",
					torn.Want, torn.Got)
			} else {
				fmt.Fprintf(errw, "fsevdump: %v\n", torn.Err)
			}
		case errors.As(err, &corrupt):
			fmt.Fprintf(errw, "fsevdump: %v\n", corrupt)
		default:
			fmt.Fprintf(errw, "fsevdump: %v\n", err)
		}
		return err
	}
	fmt.Fprintf(out, "OK: %d segment(s), %d events, every frame checksum valid\n", len(infos), events)
	return nil
}

// printStats renders the aggregate counters and a per-day rates table.
func printStats(out io.Writer, reg *telemetry.Registry, perDay map[int]int64) {
	fmt.Fprint(out, reg.Snapshot().Format())
	if len(perDay) == 0 {
		return
	}
	days := make([]int, 0, len(perDay))
	for d := range perDay {
		days = append(days, d)
	}
	sort.Ints(days)
	rows := make([][]string, 0, len(perDay))
	for _, d := range days {
		n := perDay[d]
		rows = append(rows, []string{
			fmt.Sprintf("%d", d),
			clock.Epoch.Add(time.Duration(d) * clock.Day).Format("2006-01-02"),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(n)/24),
		})
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, telemetry.Table([]string{"day", "date", "events", "events/hour"}, rows))
}
