package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/core"
	"footsteps/internal/durable"
	"footsteps/internal/eventio"
	"footsteps/internal/faults"
	"footsteps/internal/platform"
	"footsteps/internal/socialgraph"
)

// faultedCapture runs a small world under the rate-limit storm scenario
// and returns its FSEV1 stream: a capture guaranteed to carry
// storm-attributed denials for the -stats path to summarize.
func faultedCapture(t *testing.T) []byte {
	t.Helper()
	cfg := core.TestConfig()
	cfg.Days = 6
	cfg.OrganicPopulation = 300
	cfg.PoolSize = 200
	cfg.VPNUsers = 20
	cfg.Faults = faults.MustScenario("storm")

	var buf bytes.Buffer
	wr, err := eventio.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWorld(cfg)
	wr.Attach(w.Plat.Log())
	w.RunAll()
	w.Sched.RunFor(time.Duration(cfg.Days) * clock.Day)
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDumpStatsFaulted drives the -stats path against a faulted capture:
// the summary must carry rate-limited outcome rows (the storm's denials,
// which only exist because the fault layer tightened the limiter) next
// to the allowed baseline, plus the per-day rates table.
func TestDumpStatsFaulted(t *testing.T) {
	capture := faultedCapture(t)

	var out, errw bytes.Buffer
	matched, err := dump(bytes.NewReader(capture), options{stats: true}, &out, &errw)
	if err != nil {
		t.Fatalf("dump: %v (stderr: %s)", err, errw.String())
	}
	if matched < 1000 {
		t.Fatalf("only %d events matched; storm capture suspiciously small", matched)
	}
	got := out.String()
	for _, want := range []string{
		"events.like.allowed",
		"events.like.rate-limited", // the storm's signature
		"events/hour",              // per-day rates table header
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-stats output missing %q\noutput:\n%s", want, got)
		}
	}
	// JSONL mode must be off: -stats summarizes instead of printing.
	if strings.Contains(got, "\"actor\"") {
		t.Error("-stats output contains raw JSONL events")
	}
}

// TestDumpStatsFilterComposition checks -stats composes with -type: a
// follow-only summary must not count like events.
func TestDumpStatsFilterComposition(t *testing.T) {
	capture := faultedCapture(t)

	var out, errw bytes.Buffer
	if _, err := dump(bytes.NewReader(capture), options{stats: true, typeFilter: "follow"}, &out, &errw); err != nil {
		t.Fatalf("dump: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "events.follow.") {
		t.Errorf("filtered summary has no follow rows:\n%s", got)
	}
	if strings.Contains(got, "events.like.") {
		t.Errorf("-type follow summary still counts likes:\n%s", got)
	}
}

// durableLog builds a small durable segment log on a MemFS: a few
// frames, one checkpoint boundary, a clean seal.
func durableLog(t *testing.T) *durable.MemFS {
	t.Helper()
	fsys := durable.NewMemFS()
	l, err := durable.Create(fsys, "log", durable.Options{Seed: 5, Fingerprint: 5, BatchEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ev := platform.Event{Type: platform.ActionLike, Actor: socialgraph.AccountID(i), Client: "client",
			Outcome: platform.OutcomeAllowed, Time: clock.Epoch.Add(time.Duration(i) * time.Minute)}
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
		if i == 24 {
			if err := l.Checkpoint(1, func(w io.Writer) error { _, werr := w.Write([]byte("snap")); return werr }); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return fsys
}

// TestVerifyClean: -verify over an intact log prints the per-segment
// summary and the OK line.
func TestVerifyClean(t *testing.T) {
	fsys := durableLog(t)
	var out, errw bytes.Buffer
	if err := verify(fsys, "log", &out, &errw); err != nil {
		t.Fatalf("verify clean log: %v (stderr: %s)", err, errw.String())
	}
	got := out.String()
	for _, want := range []string{"seg-00000.fseg", "seg-00001.fseg", "sealed", "OK:"} {
		if !strings.Contains(got, want) {
			t.Errorf("verify output missing %q:\n%s", want, got)
		}
	}
}

// TestVerifyReportsBadFrame: a bit flip in a frame payload must surface
// as the first-bad-frame report with expected and actual checksums.
func TestVerifyReportsBadFrame(t *testing.T) {
	fsys := durableLog(t)
	if err := fsys.Corrupt("log/seg-00000.fseg", 60, 0x01); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	err := verify(fsys, "log", &out, &errw)
	if err == nil {
		t.Fatal("verify of corrupted log succeeded")
	}
	var torn *durable.TornTailError
	if !errors.As(err, &torn) {
		t.Fatalf("error is %T (%v), want *durable.TornTailError", err, err)
	}
	diag := errw.String()
	for _, want := range []string{"seg-00000.fseg", "expected crc32c", "first bad frame"} {
		if !strings.Contains(diag, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, diag)
		}
	}
}

// TestDumpTruncatedCapture cuts the capture mid-record and asserts the
// dump fails with the truncation diagnostic while still reporting the
// intact prefix — the contract that makes partial captures from crashed
// runs inspectable.
func TestDumpTruncatedCapture(t *testing.T) {
	capture := faultedCapture(t)
	cut := capture[:len(capture)-7]

	var out, errw bytes.Buffer
	matched, err := dump(bytes.NewReader(cut), options{}, &out, &errw)
	if err == nil {
		t.Fatal("dump of truncated capture succeeded")
	}
	var trunc *eventio.TruncatedError
	if !errors.As(err, &trunc) {
		t.Fatalf("error is %T (%v), want *eventio.TruncatedError", err, err)
	}
	if matched == 0 {
		t.Error("no events decoded before the cut; prefix flush untested")
	}
	if !strings.Contains(errw.String(), "intact") {
		t.Errorf("stderr lacks the intact-prefix diagnostic:\n%s", errw.String())
	}
	if out.Len() == 0 {
		t.Error("decoded prefix was not flushed to stdout")
	}
}
