package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/core"
	"footsteps/internal/eventio"
	"footsteps/internal/faults"
)

// faultedCapture runs a small world under the rate-limit storm scenario
// and returns its FSEV1 stream: a capture guaranteed to carry
// storm-attributed denials for the -stats path to summarize.
func faultedCapture(t *testing.T) []byte {
	t.Helper()
	cfg := core.TestConfig()
	cfg.Days = 6
	cfg.OrganicPopulation = 300
	cfg.PoolSize = 200
	cfg.VPNUsers = 20
	cfg.Faults = faults.MustScenario("storm")

	var buf bytes.Buffer
	wr, err := eventio.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWorld(cfg)
	wr.Attach(w.Plat.Log())
	w.RunAll()
	w.Sched.RunFor(time.Duration(cfg.Days) * clock.Day)
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDumpStatsFaulted drives the -stats path against a faulted capture:
// the summary must carry rate-limited outcome rows (the storm's denials,
// which only exist because the fault layer tightened the limiter) next
// to the allowed baseline, plus the per-day rates table.
func TestDumpStatsFaulted(t *testing.T) {
	capture := faultedCapture(t)

	var out, errw bytes.Buffer
	matched, err := dump(bytes.NewReader(capture), options{stats: true}, &out, &errw)
	if err != nil {
		t.Fatalf("dump: %v (stderr: %s)", err, errw.String())
	}
	if matched < 1000 {
		t.Fatalf("only %d events matched; storm capture suspiciously small", matched)
	}
	got := out.String()
	for _, want := range []string{
		"events.like.allowed",
		"events.like.rate-limited", // the storm's signature
		"events/hour",              // per-day rates table header
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-stats output missing %q\noutput:\n%s", want, got)
		}
	}
	// JSONL mode must be off: -stats summarizes instead of printing.
	if strings.Contains(got, "\"actor\"") {
		t.Error("-stats output contains raw JSONL events")
	}
}

// TestDumpStatsFilterComposition checks -stats composes with -type: a
// follow-only summary must not count like events.
func TestDumpStatsFilterComposition(t *testing.T) {
	capture := faultedCapture(t)

	var out, errw bytes.Buffer
	if _, err := dump(bytes.NewReader(capture), options{stats: true, typeFilter: "follow"}, &out, &errw); err != nil {
		t.Fatalf("dump: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "events.follow.") {
		t.Errorf("filtered summary has no follow rows:\n%s", got)
	}
	if strings.Contains(got, "events.like.") {
		t.Errorf("-type follow summary still counts likes:\n%s", got)
	}
}

// TestDumpTruncatedCapture cuts the capture mid-record and asserts the
// dump fails with the truncation diagnostic while still reporting the
// intact prefix — the contract that makes partial captures from crashed
// runs inspectable.
func TestDumpTruncatedCapture(t *testing.T) {
	capture := faultedCapture(t)
	cut := capture[:len(capture)-7]

	var out, errw bytes.Buffer
	matched, err := dump(bytes.NewReader(cut), options{}, &out, &errw)
	if err == nil {
		t.Fatal("dump of truncated capture succeeded")
	}
	var trunc *eventio.TruncatedError
	if !errors.As(err, &trunc) {
		t.Fatalf("error is %T (%v), want *eventio.TruncatedError", err, err)
	}
	if matched == 0 {
		t.Error("no events decoded before the cut; prefix flush untested")
	}
	if !strings.Contains(errw.String(), "intact") {
		t.Errorf("stderr lacks the intact-prefix diagnostic:\n%s", errw.String())
	}
	if out.Len() == 0 {
		t.Error("decoded prefix was not flushed to stdout")
	}
}
