package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"time"

	"footsteps"
	"footsteps/internal/core"
	"footsteps/internal/eventio"
	"footsteps/internal/persistence"
)

// runRecord drives the canonical lifecycle (the one the determinism
// harness pins) with checkpointing live: the full FSEV1 stream goes to
// the -record file, and a snapshot lands in -checkpoint-dir every
// -checkpoint-every days. The resulting artifacts are what replay
// consumes.
func runRecord(cfg footsteps.Config, record string) error {
	w := core.NewWorld(cfg)
	telemetryAttach(w)
	h := sha256.New()
	var out io.Writer = h
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(f, h)
	}
	wr, err := eventio.NewWriter(out)
	if err != nil {
		return err
	}
	wr.Attach(w.Plat.Log())
	w.RunAll()
	fmt.Printf("Recording %d days (seed %d)...\n", cfg.Days, cfg.Seed)
	if err := w.RunDays(cfg.Days); err != nil {
		return err
	}
	if err := wr.Flush(); err != nil {
		return err
	}
	fmt.Printf("Stream: %d events, sha256 %x\n", wr.Count(), h.Sum(nil))
	if record != "" {
		fmt.Printf("FSEV1 capture written to %s\n", record)
	}
	return nil
}

// runReplay reconstructs simulation state and re-drives the timeline,
// verifying it against a recorded FSEV1 log.
//
// With -from, the state comes out of an FSNAP1 checkpoint: the world is
// rebuilt, fast-forwarded, and resumed for the remaining days (or -days
// more). With -against, the resumed stream is byte-compared to the
// corresponding suffix of the original log — the CLI face of the
// resume-equivalence invariant (docs/PERSISTENCE.md). Without -from,
// the whole run is re-driven from genesis and compared against the full
// log. The flags must describe the same seed and semantic config as the
// original run; mismatches fail with a typed error before any work.
func runReplay(cfg footsteps.Config, from, against, record string, extraDays int) error {
	var w *core.World
	var cut time.Time
	if from != "" {
		snap, err := os.ReadFile(from)
		if err != nil {
			return err
		}
		h, _, err := persistence.DecodeBytes(snap)
		if err != nil {
			return err
		}
		w, err = core.RestoreWorld(cfg, bytes.NewReader(snap))
		if err != nil {
			return err
		}
		cut = h.Now
		fmt.Printf("Restored %s: day %d of %d (seed %d, fingerprint %#x)\n",
			from, h.Day, cfg.Days, h.Seed, h.Fingerprint)
	} else {
		w = core.NewWorld(cfg)
		fmt.Printf("Re-driving from genesis: %d days (seed %d)\n", cfg.Days, cfg.Seed)
	}

	days := cfg.Days - w.DaysRun()
	if extraDays > 0 {
		days = extraDays
	}

	var buf bytes.Buffer
	wr, err := eventio.NewWriter(&buf)
	if err != nil {
		return err
	}
	wr.Attach(w.Plat.Log())
	if from == "" {
		w.RunAll()
	}
	if err := w.RunDays(days); err != nil {
		return err
	}
	if err := wr.Flush(); err != nil {
		return err
	}
	fmt.Printf("Replayed %d days: %d events, stream sha256 %x\n",
		days, wr.Count(), sha256.Sum256(buf.Bytes()))

	if record != "" {
		if err := os.WriteFile(record, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("Resumed FSEV1 capture written to %s\n", record)
	}

	if against == "" {
		return nil
	}
	want, err := suffixOf(against, cut, w.SnapshotInstant())
	if err != nil {
		return err
	}
	if !bytes.Equal(want, buf.Bytes()) {
		off, idx := firstDivergence(want, buf.Bytes())
		return fmt.Errorf("replay DIVERGED from %s: first difference at byte offset %d, after %d intact events; sha256 %x vs %x (%d vs %d bytes)",
			against, off, idx, sha256.Sum256(buf.Bytes()), sha256.Sum256(want), buf.Len(), len(want))
	}
	fmt.Printf("Replay matches %s byte-for-byte.\n", against)
	return nil
}

// firstDivergence locates the first byte where two FSEV1 streams
// disagree (the common length, if one is a strict prefix) and counts
// the events fully decoded from the shared prefix — the coordinates a
// divergence hunt starts from, instead of just two hashes.
func firstDivergence(want, got []byte) (int64, uint64) {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	off := int64(n)
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			off = int64(i)
			break
		}
	}
	var events uint64
	if r, err := eventio.NewReader(bytes.NewReader(want[:off])); err == nil {
		for {
			if _, err := r.Next(); err != nil {
				break // the cut mid-record is expected; the count is what matters
			}
		}
		events = r.Events()
	}
	return off, events
}

// suffixOf re-encodes, with a fresh string table, the events of a
// recorded log that fall after the cut and at or before the end instant
// — exactly what a resumed recorder would have captured.
func suffixOf(path string, cut, end time.Time) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := eventio.NewReader(f)
	if err != nil {
		return nil, err
	}
	evs, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	var buf bytes.Buffer
	wr, err := eventio.NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	for _, ev := range evs {
		if !ev.Time.After(cut) || ev.Time.After(end) {
			continue
		}
		if err := wr.Write(ev); err != nil {
			return nil, err
		}
	}
	if err := wr.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
