// Command footsteps regenerates the paper's tables and figures from the
// simulated study.
//
// Usage:
//
//	footsteps [flags] <command>
//
// Commands:
//
//	catalog        Tables 1–4 (static service catalog)
//	reciprocation  Table 5   (§4.3 honeypot measurement)
//	business       Tables 6–11, Figures 2–4 (§5 characterization)
//	narrow         Figures 5–6 (§6.3 narrow intervention)
//	broad          Figure 7  (§6.4 broad intervention)
//	adaptation     §6.4 epilogue (proxy evasion, endgame)
//	faults         fault-injection demo (resilience under infrastructure failure)
//	run            crash-tolerant run (durable segment log, atomic checkpoints, -resume)
//	serve          host the world behind the HTTP/WS /v1 API (see docs/API.md)
//	loadgen        drive mixed /v1 traffic at a serve instance, report latency
//	trace          inspect an FTRC1 span trace (-stats, -grep, -export chrome)
//	all            everything above, in paper order
//
// Flags:
//
//	-seed N          RNG seed (default 1)
//	-scale F         customer-dynamics scale vs the paper (default 1/500)
//	-days N          measurement window in days (default 90)
//	-quick           small, fast configuration (for smoke runs)
//	-faults P        fault profile: built-in scenario name or JSON path
//	-metrics FILE    write per-day telemetry JSONL next to the report
//	-debug-addr H:P  serve live expvar snapshots and pprof while running
//	-trace FILE      write a deterministic FTRC1 span trace of the run
//	-trace-sample R  span sampling rate, 1/N or N (default 1 = every span)
//	-cpuprofile F    write a pprof CPU profile of the run
//	-memprofile F    write a pprof heap profile at exit
//
// Telemetry and tracing are pure observers: enabling -metrics,
// -debug-addr, or -trace changes neither the event stream nor any table
// (see docs/OBSERVABILITY.md).
// SIGINT/SIGTERM trigger a graceful shutdown: the -metrics sink is synced
// and the debug server drains before exit, so interrupted runs never
// leave torn metric files.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"footsteps"
	"footsteps/internal/aas"
	"footsteps/internal/clock"
	"footsteps/internal/core"
	"footsteps/internal/eventio"
	"footsteps/internal/faults"
	"footsteps/internal/telemetry"
	"footsteps/internal/trace"
)

// Run-wide telemetry sinks, set once in main before any study runs.
var (
	telReg        *telemetry.Registry
	telMetricsOut *os.File
	telDebugSrv   *telemetry.DebugServer

	traceTracer *trace.Tracer
	traceOut    *os.File
	tracePath   string
)

// telemetryAttach wires the per-day JSONL sink to a freshly built world.
func telemetryAttach(w *core.World) {
	if telMetricsOut != nil {
		w.StreamTelemetryDaily(telMetricsOut)
	}
}

// telemetryReport prints the end-of-run summary tables, if enabled: the
// fault/retry/breaker section (faulted runs only), then the full metric
// dump. It also finalizes the daily JSONL stream, surfacing write errors
// that the per-day flushes deliberately swallowed.
func telemetryReport(w *core.World) {
	if s := w.FaultSummary(); s != "" {
		fmt.Println(s)
	}
	if s := w.TelemetrySummary(); s != "" {
		fmt.Println(s)
	}
	if err := w.FinalizeTelemetry(); err != nil {
		fmt.Fprintf(os.Stderr, "footsteps: telemetry stream incomplete: %v\n", err)
	}
}

// parseSampleRate parses the -trace-sample argument: "1/N" or a bare
// "N", both meaning one of every N candidate spans.
func parseSampleRate(arg string) (uint64, error) {
	s := strings.TrimSpace(arg)
	if rest, ok := strings.CutPrefix(s, "1/"); ok {
		s = rest
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("footsteps: bad -trace-sample %q (want 1/N or N)", arg)
	}
	return n, nil
}

// finishTrace flushes and closes the -trace stream, reporting what was
// captured. Safe to call more than once; a nil tracer is a no-op.
func finishTrace() {
	if traceTracer == nil {
		return
	}
	tr := traceTracer
	traceTracer = nil
	if err := tr.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "footsteps: trace stream: %v\n", err)
	} else {
		fmt.Printf("Trace: %d spans written to %s (sample 1/%d)\n", tr.Spans(), tracePath, tr.SampleN())
	}
	if traceOut != nil {
		traceOut.Sync()
		traceOut.Close()
		traceOut = nil
	}
}

// loadFaultProfile resolves the -faults argument: a built-in scenario
// name first, a JSON profile path otherwise.
func loadFaultProfile(arg string) (*faults.Profile, error) {
	if p, err := faults.Scenario(arg); err == nil {
		return p, nil
	}
	return faults.Load(arg)
}

// shutdownOnSignal installs the graceful-shutdown handler: on SIGINT or
// SIGTERM the -metrics JSONL sink is synced (its writes are line-atomic
// and unbuffered, so syncing leaves no torn records) and the debug
// server drains with a timeout before the process exits.
func shutdownOnSignal() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "\nfootsteps: %v: flushing telemetry sinks\n", sig)
		finishTrace()
		if telMetricsOut != nil {
			telMetricsOut.Sync()
			telMetricsOut.Close()
		}
		if telDebugSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			telDebugSrv.Shutdown(ctx)
			cancel()
		}
		if sig == syscall.SIGTERM {
			os.Exit(143)
		}
		os.Exit(130)
	}()
}

// runFaults is the resilience demo: a compact faulted run (the "mixed"
// scenario unless -faults chose otherwise) followed by the injected-
// fault and client-resilience summary.
func runFaults(cfg footsteps.Config) error {
	if cfg.Faults == nil {
		cfg.Faults = faults.MustScenario("mixed")
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if cfg.Days > 10 {
		// The built-in scenarios play out within the first five days;
		// the demo does not need a full measurement window.
		cfg.Days = 10
	}
	w := core.NewWorld(cfg)
	telemetryAttach(w)
	fmt.Printf("Fault demo: profile %q over %d days (seed %d, workers %d)...\n",
		cfg.Faults.Name, cfg.Days, cfg.Seed, cfg.Workers)
	w.RunAll()
	w.Sched.RunFor(time.Duration(cfg.Days) * clock.Day)
	fmt.Println()
	fmt.Println(w.FaultSummary())
	return nil
}

func main() {
	seed := flag.Uint64("seed", 1, "RNG seed")
	scale := flag.Float64("scale", 1.0/500, "customer-dynamics scale vs the paper")
	days := flag.Int("days", 90, "measurement window in days")
	quick := flag.Bool("quick", false, "small fast configuration")
	workers := flag.Int("workers", 0, "worker pool size for parallel stepping (0 = sequential; same output either way)")
	shards := flag.Int("shards", 0, "lock-stripe count for platform state (0 = default; same output at any count)")
	outDir := flag.String("o", "", "directory for machine-readable TSV exports (optional)")
	record := flag.String("record", "", "write the full event stream to this FSEV1 capture file (business, record, replay)")
	checkpointDir := flag.String("checkpoint-dir", "", "write FSNAP1 world checkpoints into this directory (record only)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in days, 0 = off (record only)")
	fromSnap := flag.String("from", "", "FSNAP1 checkpoint to restore before replaying (replay only)")
	durableDir := flag.String("durable", "", "durable log directory: checksummed segments + atomic checkpoints (run only)")
	resumeFlag := flag.Bool("resume", false, "recover the -durable log after a crash and finish the run (run only)")
	crashAfterOp := flag.Uint64("crash-after-op", 0, "kill the process at this durable filesystem op, for crash-injection testing (run only)")
	fsyncEvery := flag.Bool("fsync-every", false, "fsync the durable log after every frame, not only at checkpoints (run only)")
	against := flag.String("against", "", "FSEV1 capture to verify the replayed stream against (replay only)")
	seeds := flag.Int("seeds", 5, "number of independent seeds for the sweep command")
	metricsPath := flag.String("metrics", "", "write per-day telemetry JSONL to this file")
	debugAddr := flag.String("debug-addr", "", "serve expvar metrics and pprof on this address (e.g. localhost:6060)")
	traceFile := flag.String("trace", "", "write an FTRC1 span trace to this file (inspect with `footsteps trace`)")
	traceSample := flag.String("trace-sample", "1", "span sampling rate, 1/N or N (deterministic; 1 = every span)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	faultsFlag := flag.String("faults", "",
		"fault profile: built-in scenario ("+strings.Join(faults.Scenarios(), ", ")+") or a JSON profile path")
	serveAddr := flag.String("serve-addr", "127.0.0.1:8343", "listen address for the serve command")
	servePace := flag.Float64("serve-pace", 0, "sim-seconds per wall-second while serving (0 = default 60)")
	serveQueue := flag.Int("serve-queue", 0, "ingress queue depth before requests shed as overloaded (0 = default)")
	serveBatch := flag.Int("serve-batch", 0, "max envelopes applied per world-loop drain (0 = default)")
	ingressLog := flag.String("ingress-log", "", "FING1 ingress log: written by serve, re-driven by replay")
	lgTarget := flag.String("target", "http://127.0.0.1:8343", "serve instance base URL (loadgen only)")
	lgRPS := flag.Float64("rps", 0, "target request rate, 0 = unthrottled (loadgen only)")
	lgDuration := flag.Duration("duration", 5*time.Second, "traffic duration (loadgen only)")
	lgConns := flag.Int("conns", 4, "concurrent connections (loadgen only)")
	lgBatch := flag.Int("batch", 64, "envelopes per NDJSON batch (loadgen only)")
	lgAccounts := flag.Int("accounts", 32, "accounts to register for traffic (loadgen only)")
	flag.Usage = usage
	flag.Parse()

	// The trace inspector takes its own flags and a file operand, so it
	// dispatches before the single-command arity check.
	if flag.Arg(0) == "trace" {
		if err := runTrace(flag.Args()[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "footsteps:", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	var faultProfile *faults.Profile
	if *faultsFlag != "" {
		p, err := loadFaultProfile(*faultsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "footsteps:", err)
			os.Exit(1)
		}
		faultProfile = p
	}

	// A faulted run always carries a registry so the report's
	// fault/retry/breaker section has counters behind it.
	if *metricsPath != "" || *debugAddr != "" || faultProfile != nil {
		telReg = telemetry.NewRegistry()
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "footsteps:", err)
			os.Exit(1)
		}
		defer f.Close()
		telMetricsOut = f
	}
	if *debugAddr != "" {
		srv, err := telemetry.ServeDebug(*debugAddr, telReg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "footsteps:", err)
			os.Exit(1)
		}
		defer srv.Close()
		telDebugSrv = srv
		fmt.Printf("Debug server on http://%s (/debug/vars, /metrics.json, /debug/pprof/)\n", srv.Addr())
	}
	if *traceFile != "" {
		sampleN, err := parseSampleRate(*traceSample)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "footsteps:", err)
			os.Exit(1)
		}
		tr, err := trace.New(f, *seed, sampleN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "footsteps:", err)
			os.Exit(1)
		}
		traceTracer, traceOut, tracePath = tr, f, *traceFile
	}
	var cpuProfileOut *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "footsteps:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "footsteps:", err)
			os.Exit(1)
		}
		cpuProfileOut = f
	}
	// serve owns its signal handling: SIGTERM/SIGINT trigger a graceful
	// drain (seal the ingress log, flush the capture) instead of the
	// flush-and-exit path every other command wants.
	if flag.Arg(0) != "serve" {
		shutdownOnSignal()
	}

	mkCfg := func() footsteps.Config {
		cfg := footsteps.DefaultConfig()
		if *quick {
			cfg = footsteps.TestConfig()
		}
		cfg.Seed = *seed
		cfg.Scale = *scale
		cfg.Days = *days
		cfg.Workers = *workers
		cfg.Shards = *shards
		cfg.Telemetry = telReg
		cfg.Trace = traceTracer
		cfg.Faults = faultProfile
		cfg.CheckpointDir = *checkpointDir
		cfg.CheckpointEvery = *checkpointEvery
		cfg.ServeAddr = *serveAddr
		cfg.ServePace = *servePace
		cfg.ServeQueueDepth = *serveQueue
		cfg.ServeMaxBatch = *serveBatch
		cfg.ServeIngressLog = *ingressLog
		if *quick {
			cfg.Scale = footsteps.TestConfig().Scale
			cfg.Days = footsteps.TestConfig().Days
		}
		return cfg
	}

	cmd := flag.Arg(0)
	var err error
	switch cmd {
	case "catalog":
		err = runCatalog()
	case "reciprocation":
		err = runReciprocation(mkCfg(), *quick)
	case "business":
		err = runBusiness(mkCfg(), *outDir, *record)
	case "narrow":
		err = runNarrow(mkCfg(), *quick, *outDir)
	case "broad":
		err = runBroad(mkCfg(), *quick, *outDir)
	case "adaptation":
		err = runAdaptation(mkCfg(), *quick)
	case "graphdetect":
		err = runGraphDetect(mkCfg())
	case "sweep":
		err = runSweep(mkCfg(), *seeds)
	case "faults":
		err = runFaults(mkCfg())
	case "record":
		err = runRecord(mkCfg(), *record)
	case "run":
		err = runDurable(mkCfg(), *durableDir, *resumeFlag, *crashAfterOp, *fsyncEvery)
	case "serve":
		err = runServe(mkCfg(), *record)
	case "loadgen":
		err = runLoadgen(*lgTarget, *lgRPS, *lgDuration, *lgConns, *lgBatch, *lgAccounts)
	case "replay":
		if *ingressLog != "" {
			err = runReplayIngress(mkCfg(), *ingressLog, *against, *record)
		} else {
			err = runReplay(mkCfg(), *fromSnap, *against, *record, 0)
		}
	case "check":
		err = runCheck()
	case "all":
		err = runAll(mkCfg, *quick)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	finishTrace()
	if cpuProfileOut != nil {
		pprof.StopCPUProfile()
		cpuProfileOut.Close()
		fmt.Printf("CPU profile written to %s\n", *cpuProfile)
	}
	if *memProfile != "" {
		if perr := writeMemProfile(*memProfile); perr != nil {
			fmt.Fprintln(os.Stderr, "footsteps:", perr)
		} else {
			fmt.Printf("Heap profile written to %s\n", *memProfile)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "footsteps:", err)
		os.Exit(1)
	}
}

// writeMemProfile captures an end-of-run heap profile after a final GC,
// so the numbers reflect retained memory, not transient garbage.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: footsteps [flags] <command>

commands:
  catalog        Tables 1-4 (static service catalog)
  reciprocation  Table 5 (honeypot reciprocation measurement)
  business       Tables 6-11, Figures 2-4 (90-day characterization)
  narrow         Figures 5-6 (narrow intervention, 6 weeks)
  broad          Figure 7 (broad intervention, 2 weeks)
  adaptation     §6.4 epilogue (proxy evasion and endgame)
  graphdetect    FRAUDAR-style graph baseline vs signal attribution
  faults         fault-injection demo: AAS resilience under infrastructure failure
  sweep          multi-seed replication of the Table 5 measurement
  record         canonical run with -record/-checkpoint-* artifacts (FSEV1 + FSNAP1)
  run            crash-tolerant run: durable segment log + atomic checkpoints (-durable, -resume)
  serve          host the world behind the HTTP/WS /v1 API (-serve-addr, -ingress-log; docs/API.md)
  loadgen        drive mixed /v1 traffic at a serve instance (-target, -rps, -duration, -conns)
  replay         re-drive a checkpoint (-from) or a serve ingress log (-ingress-log), verify -against
  trace          inspect an FTRC1 span trace: -stats, -grep spec, -export chrome
  check          machine-checked calibration against the paper's bands
  all            everything, in paper order

flags:
`)
	flag.PrintDefaults()
}

func runCatalog() error {
	fmt.Println(footsteps.FormatTable1())
	fmt.Println(footsteps.FormatTable2())
	fmt.Println(footsteps.FormatTable3())
	fmt.Println(footsteps.FormatTable4())
	return nil
}

func runReciprocation(cfg footsteps.Config, quick bool) error {
	cfg.GraphWrites = true // honeypot studies need full graph fidelity
	study := footsteps.NewStudy(cfg)
	telemetryAttach(study.World())
	empty, lived := 9, 3
	if quick {
		empty, lived = 3, 1
	}
	fmt.Printf("Registering %d empty + %d lived-in honeypots per (service, action) cell...\n", empty, lived)
	tbl, err := study.Reciprocation(empty, lived)
	if err != nil {
		return err
	}
	fmt.Println(footsteps.FormatTable5(tbl))
	telemetryReport(study.World())
	return nil
}

func runBusiness(cfg footsteps.Config, outDir, record string) error {
	study := footsteps.NewStudy(cfg)
	telemetryAttach(study.World())
	var capture *eventio.Writer
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		defer f.Close()
		capture, err = eventio.NewWriter(f)
		if err != nil {
			return err
		}
		capture.Attach(study.World().Plat.Log())
	}
	fmt.Printf("Running the %d-day measurement window at scale %.5f (seed %d)...\n",
		cfg.Days, cfg.Scale, cfg.Seed)
	res, err := study.Business()
	if err != nil {
		return err
	}
	fmt.Println(footsteps.FormatBusiness(res))
	fmt.Println(footsteps.FormatRevenueSummary(res))
	if capture != nil {
		if err := capture.Flush(); err != nil {
			return err
		}
		fmt.Printf("Event capture: %d events written to %s\n", capture.Count(), record)
	}
	if outDir != "" {
		if err := footsteps.ExportBusiness(res, outDir); err != nil {
			return err
		}
		fmt.Printf("TSV exports written to %s\n", outDir)
	}
	telemetryReport(study.World())
	return nil
}

func interventionCfg(cfg footsteps.Config, days int) footsteps.Config {
	cfg.Days = days
	// Keep the heavyweight services from dwarfing the intervention run.
	cfg.ScaleOverride = map[string]float64{
		aas.NameHublaagram: 0.08,
		aas.NameInstalex:   0.15,
		aas.NameInstazood:  0.15,
	}
	if cfg.Scale < 1.0/200 {
		cfg.Scale = 1.0 / 100
	}
	return cfg
}

func runNarrow(cfg footsteps.Config, quick bool, outDir string) error {
	calib, weeks := 7, 6
	if quick {
		calib, weeks = 5, 3
	}
	cfg = interventionCfg(cfg, 2+calib+weeks*7)
	study := footsteps.NewStudy(cfg)
	telemetryAttach(study.World())
	fmt.Printf("Narrow intervention: %d calibration days, %d weeks of block/delay/control bins...\n", calib, weeks)
	res, err := study.NarrowIntervention(calib, weeks)
	if err != nil {
		return err
	}
	fmt.Println(footsteps.FormatIntervention(res))
	telemetryReport(study.World())
	return exportIntervention(res, outDir)
}

func exportIntervention(res *footsteps.InterventionResults, outDir string) error {
	if outDir == "" {
		return nil
	}
	if err := footsteps.ExportIntervention(res, outDir); err != nil {
		return err
	}
	fmt.Printf("TSV exports written to %s\n", outDir)
	return nil
}

func runBroad(cfg footsteps.Config, quick bool, outDir string) error {
	calib, days, switchDay := 7, 14, 6
	if quick {
		calib = 5
	}
	cfg = interventionCfg(cfg, 2+calib+days)
	study := footsteps.NewStudy(cfg)
	telemetryAttach(study.World())
	fmt.Printf("Broad intervention: delay days 0-%d, block thereafter, 90%% of accounts...\n", switchDay-1)
	res, err := study.BroadIntervention(calib, days, switchDay)
	if err != nil {
		return err
	}
	fmt.Println(footsteps.FormatIntervention(res))
	telemetryReport(study.World())
	return exportIntervention(res, outDir)
}

func runAdaptation(cfg footsteps.Config, quick bool) error {
	calib, phase := 5, 10
	if quick {
		phase = 7
	}
	cfg = interventionCfg(cfg, 2+calib+2*phase+1)
	study := footsteps.NewStudy(cfg)
	telemetryAttach(study.World())
	fmt.Printf("Adaptation study: %d-day phases of broad blocking, then proxy evasion...\n", phase)
	res, err := study.Adaptation(calib, phase)
	if err != nil {
		return err
	}

	labels := make([]string, 0, len(res.Phase1))
	for l := range res.Phase1 {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	fmt.Println("Like traffic before and after the proxy move:")
	fmt.Printf("%-12s %22s %22s %10s\n", "service", "blocked% (pre)", "blocked% (post)", "proxyASNs")
	for _, l := range labels {
		fmt.Printf("%-12s %21.1f%% %21.1f%% %10d\n",
			l, res.Phase1[l].BlockedFraction()*100, res.Phase2[l].BlockedFraction()*100,
			res.ProxyDiversity[l])
	}
	fmt.Printf("\nEvaded traffic still attributable by client fingerprint: %v\n", res.StillAttributable)
	fmt.Printf("Hublaagram lists all paid services out of stock: %v\n", res.HublaagramOutOfStock)
	telemetryReport(study.World())
	return nil
}

func runGraphDetect(cfg footsteps.Config) error {
	cfg.Days = 20
	if cfg.Scale < 1.0/1000 {
		cfg.Scale = 1.0 / 500
	}
	// Realistic pool sizes matter here: tiny curated pools make even
	// reciprocity traffic look dense.
	if cfg.PoolSize < 3000 {
		cfg.PoolSize = 3000
	}
	if cfg.OrganicPopulation < 3000 {
		cfg.OrganicPopulation = 3000
	}
	study := footsteps.NewStudy(cfg)
	telemetryAttach(study.World())
	fmt.Println("Running the graph-detection baseline against signal attribution...")
	res, err := study.World().GraphDetectionStudy()
	if err != nil {
		return err
	}
	fmt.Printf("\nDense blocks found: %d\n", len(res.Blocks))
	for i, blk := range res.Blocks {
		fmt.Printf("  block %d: %v\n", i+1, blk)
	}
	labels := make([]string, 0, len(res.Fraudar))
	for l := range res.Fraudar {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	fmt.Printf("\n%-12s %28s %28s\n", "service", "graph baseline (P/R)", "signal attribution (P/R)")
	for _, l := range labels {
		f, s := res.Fraudar[l], res.Signature[l]
		fmt.Printf("%-12s %14.0f%% / %4.0f%% %21.0f%% / %4.0f%%\n",
			l, f.Precision*100, f.Recall*100, s.Precision*100, s.Recall*100)
	}
	fmt.Println("\nCollusion networks are dense blocks; reciprocity abuse is not — the")
	fmt.Println("asymmetry that pushes the defense toward signal-based attribution.")
	telemetryReport(study.World())
	return nil
}

func runSweep(cfg footsteps.Config, nSeeds int) error {
	if nSeeds < 2 {
		nSeeds = 2
	}
	cfg.GraphWrites = true
	seedList := make([]uint64, nSeeds)
	for i := range seedList {
		seedList[i] = cfg.Seed + uint64(i)
	}
	fmt.Printf("Replicating the reciprocation measurement across %d seeds...\n", nSeeds)
	rep, err := core.ReplicateReciprocation(cfg, seedList, 4, 2)
	if err != nil {
		return err
	}
	fmt.Print(rep.Format())
	return nil
}

func runCheck() error {
	fmt.Println("Calibration check: Table 5 (reciprocation)...")
	cfgA := footsteps.TestConfig()
	cfgA.GraphWrites = true
	cfgA.PoolSize = 1500
	wA := core.NewWorld(cfgA)
	tbl, err := wA.ReciprocationStudy(5, 2)
	if err != nil {
		return err
	}
	report, okA := core.FormatFindings(core.CheckTable5(tbl))
	fmt.Print(report)

	fmt.Println("\nCalibration check: §5 business window...")
	cfgB := footsteps.TestConfig()
	cfgB.Days = 45
	cfgB.Scale = 1.0 / 2000
	cfgB.ScaleOverride = map[string]float64{aas.NameHublaagram: 4}
	wB := core.NewWorld(cfgB)
	res, err := wB.BusinessStudy()
	if err != nil {
		return err
	}
	report, okB := core.FormatFindings(core.CheckBusiness(res))
	fmt.Print(report)

	if !okA || !okB {
		return fmt.Errorf("calibration drifted from the paper's bands")
	}
	fmt.Println("\nAll calibration checks pass.")
	return nil
}

func runAll(mkCfg func() footsteps.Config, quick bool) error {
	if err := runCatalog(); err != nil {
		return err
	}
	if err := runReciprocation(mkCfg(), quick); err != nil {
		return err
	}
	if err := runBusiness(mkCfg(), "", ""); err != nil {
		return err
	}
	if err := runNarrow(mkCfg(), quick, ""); err != nil {
		return err
	}
	if err := runBroad(mkCfg(), quick, ""); err != nil {
		return err
	}
	return runAdaptation(mkCfg(), quick)
}
