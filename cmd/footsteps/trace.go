package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"footsteps/internal/trace"
)

// runTrace is the `footsteps trace` subcommand: the inspector for FTRC1
// span streams recorded with -trace.
//
//	footsteps trace -stats run.ftrc                 aggregate latency/verdict tables
//	footsteps trace -grep action=follow,outcome=blocked run.ftrc
//	footsteps trace -export chrome -o t.json run.ftrc
//
// With no mode flag, -stats is implied. -grep prints matching spans one
// per line; its spec is comma-separated key=value pairs over actor,
// action, outcome, day, and kind (names or numeric codes).
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	stats := fs.Bool("stats", false, "print aggregate stage-latency and verdict tables (default mode)")
	grep := fs.String("grep", "", "print spans matching `spec` (e.g. action=follow,outcome=blocked,day=3)")
	export := fs.String("export", "", "export format: chrome (chrome://tracing / Perfetto JSON)")
	out := fs.String("o", "", "output file for -export (default stdout)")
	limit := fs.Int("n", 0, "stop -grep after this many spans (0 = all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: footsteps trace [-stats] [-grep spec] [-export chrome] [-o file] <trace.ftrc>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}

	switch {
	case *export != "":
		if *export != "chrome" {
			return fmt.Errorf("trace: unknown export format %q (want chrome)", *export)
		}
		dst := os.Stdout
		if *out != "" {
			g, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer g.Close()
			dst = g
		}
		w := bufio.NewWriter(dst)
		if err := trace.ExportChrome(w, r); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if *out != "" {
			fmt.Printf("Chrome trace: %d spans written to %s\n", r.Spans(), *out)
		}
		return nil
	case *grep != "":
		filter, err := parseTraceFilter(*grep)
		if err != nil {
			return err
		}
		return grepTrace(r, filter, *limit)
	default:
		_ = *stats // -stats is the default mode
		st := trace.NewStats()
		if err := st.ObserveAll(r); err != nil {
			return err
		}
		fmt.Printf("Trace: %d spans (seed %d, sample 1/%d)\n\n", r.Spans(), r.Seed(), r.SampleN())
		fmt.Print(st.Format())
		return nil
	}
}

// parseTraceFilter parses a -grep spec: comma-separated key=value pairs.
// Values accept the enum names printed by the inspector itself, or raw
// numeric codes.
func parseTraceFilter(spec string) (trace.Filter, error) {
	f := trace.MatchAll
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return f, fmt.Errorf("trace: bad -grep term %q (want key=value)", part)
		}
		switch key {
		case "actor":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return f, fmt.Errorf("trace: bad actor %q: %v", val, err)
			}
			f.Actor = n
		case "day":
			n, err := strconv.Atoi(val)
			if err != nil {
				return f, fmt.Errorf("trace: bad day %q: %v", val, err)
			}
			f.Day = n
		case "action":
			n, err := enumCode(val, 6, func(c uint8) string { return trace.ActionName(c) })
			if err != nil {
				return f, err
			}
			f.Action = n
		case "outcome":
			n, err := enumCode(val, 5, func(c uint8) string { return trace.OutcomeName(c) })
			if err != nil {
				return f, err
			}
			f.Outcome = n
		case "kind":
			n, err := enumCode(val, 7, func(c uint8) string { return trace.Kind(c).String() })
			if err != nil {
				return f, err
			}
			f.Kind = n
		default:
			return f, fmt.Errorf("trace: unknown -grep key %q (want actor, action, outcome, day, kind)", key)
		}
	}
	return f, nil
}

// enumCode resolves an enum value given by name (matching the package's
// own renderers) or by numeric code.
func enumCode(val string, count int, name func(uint8) string) (int, error) {
	for c := 0; c < count; c++ {
		if name(uint8(c)) == val {
			return c, nil
		}
	}
	if n, err := strconv.Atoi(val); err == nil && n >= 0 {
		return n, nil
	}
	return 0, fmt.Errorf("trace: unknown value %q", val)
}

// grepTrace streams the trace and prints matching spans, one per line.
func grepTrace(r *trace.Reader, f trace.Filter, limit int) error {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	shown := 0
	for {
		sp, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		if !f.Match(sp) {
			continue
		}
		printSpan(w, sp)
		shown++
		if limit > 0 && shown >= limit {
			break
		}
	}
	fmt.Fprintf(w, "%d of %d spans matched\n", shown, r.Spans())
	return nil
}

// printSpan renders one span as a grep-friendly line: identity first,
// then the kind-specific payload, then the stage timeline.
func printSpan(w *bufio.Writer, sp *trace.Span) {
	fmt.Fprintf(w, "day=%d tick=%d shard=%d seq=%d id=%016x %s",
		sp.Day(), sp.Tick, sp.Shard, sp.Seq, sp.ID(), sp.Kind)
	switch sp.Kind {
	case trace.KindRequest, trace.KindLogin:
		fmt.Fprintf(w, " actor=%d action=%s outcome=%s", sp.Actor, trace.ActionName(sp.Action), trace.OutcomeName(sp.Code))
		if sp.Target != 0 {
			fmt.Fprintf(w, " target=%d", sp.Target)
		}
		if sp.ASN != 0 {
			fmt.Fprintf(w, " asn=%d", sp.ASN)
		}
	case trace.KindSection:
		fmt.Fprintf(w, " applied=%d", sp.Value)
	case trace.KindPlan:
		fmt.Fprintf(w, " intents=%d", sp.Value)
	case trace.KindRetry:
		fmt.Fprintf(w, " actor=%d action=%s attempt=%d delay=%s", sp.Actor, trace.ActionName(sp.Action), sp.Code, fmtDelay(sp.Value))
	case trace.KindBreaker:
		fmt.Fprintf(w, " actor=%d transition=%s", sp.Actor, breakerName(sp.Code))
	case trace.KindEnforcement:
		fmt.Fprintf(w, " actor=%d action=%s decision=%s count=%d", sp.Actor, trace.ActionName(sp.Action), trace.VerdictName(sp.Code), sp.Value)
	}
	if sp.Parent != 0 {
		fmt.Fprintf(w, " parent=%016x", sp.Parent)
	}
	fmt.Fprintf(w, " wall=%dns", sp.Wall)
	for _, st := range sp.Stages {
		fmt.Fprintf(w, " %s=%s/%dns", st.Stage, trace.VerdictName(st.Verdict), st.Ns)
	}
	fmt.Fprintln(w)
}

func fmtDelay(ns int64) string {
	switch {
	case ns >= 60_000_000_000:
		return fmt.Sprintf("%.1fm", float64(ns)/60e9)
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.1fs", float64(ns)/1e9)
	default:
		return fmt.Sprintf("%dms", ns/1_000_000)
	}
}

func breakerName(code uint8) string {
	switch code {
	case trace.BreakerOpened:
		return "opened"
	case trace.BreakerReopened:
		return "reopened"
	default:
		return "closed"
	}
}
