package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"footsteps"
	"footsteps/internal/core"
	"footsteps/internal/eventio"
	"footsteps/internal/server"
	"footsteps/internal/telemetry"
	"footsteps/internal/wire"
)

// runServe hosts the world behind the HTTP/WS front end until SIGINT or
// SIGTERM, then shuts down gracefully: admission closes, the world loop
// drains and seals the FING1 ingress log, the FSEV1 capture flushes,
// and the stream hash prints — the artifact `footsteps replay
// -ingress-log` verifies against.
func runServe(cfg footsteps.Config, record string) error {
	w := core.NewWorld(cfg)
	telemetryAttach(w)

	h := sha256.New()
	var out io.Writer = h
	var recordFile *os.File
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		defer f.Close()
		recordFile = f
		out = io.MultiWriter(f, h)
	}
	wr, err := eventio.NewWriter(out)
	if err != nil {
		return err
	}
	wr.Attach(w.Plat.Log())

	s, err := server.New(w)
	if err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	fmt.Printf("Serving on http://%s (pace %gx, queue %d)\n", s.Addr(),
		orDefault(cfg.ServePace, server.DefaultPace), orDefaultInt(cfg.ServeQueueDepth, server.DefaultQueueDepth))
	if cfg.ServeIngressLog != "" {
		fmt.Printf("Ingress log: %s\n", cfg.ServeIngressLog)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "footsteps: %v: draining and sealing logs\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := wr.Flush(); err != nil {
		return err
	}
	fmt.Printf("Stream: %d events, sha256 %x\n", wr.Count(), h.Sum(nil))
	if recordFile != nil {
		fmt.Printf("FSEV1 capture written to %s\n", record)
	}
	telemetryReport(w)
	return nil
}

func orDefault(v, def float64) float64 {
	if v <= 0 {
		return def
	}
	return v
}

func orDefaultInt(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// runReplayIngress rebuilds the world and re-drives a recorded serve
// session from its FING1 ingress log, then (with -against) verifies the
// reproduced FSEV1 stream byte-for-byte against the live capture.
func runReplayIngress(cfg footsteps.Config, ingressLog, against, record string) error {
	f, err := os.Open(ingressLog)
	if err != nil {
		return err
	}
	defer f.Close()

	w := core.NewWorld(cfg)
	var buf bytes.Buffer
	wr, err := eventio.NewWriter(&buf)
	if err != nil {
		return err
	}
	wr.Attach(w.Plat.Log())

	applied, err := server.ReplayIngressLog(w, bufio.NewReader(f))
	if err != nil {
		return err
	}
	if err := wr.Flush(); err != nil {
		return err
	}
	fmt.Printf("Ingress replay: %d envelopes applied, %d events, stream sha256 %x\n",
		applied, wr.Count(), sha256.Sum256(buf.Bytes()))

	if record != "" {
		if err := os.WriteFile(record, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("Replayed FSEV1 capture written to %s\n", record)
	}
	if against == "" {
		return nil
	}
	want, err := os.ReadFile(against)
	if err != nil {
		return err
	}
	if !bytes.Equal(want, buf.Bytes()) {
		off, idx := firstDivergence(want, buf.Bytes())
		return fmt.Errorf("ingress replay DIVERGED from %s: first difference at byte offset %d, after %d intact events; sha256 %x vs %x (%d vs %d bytes)",
			against, off, idx, sha256.Sum256(buf.Bytes()), sha256.Sum256(want), buf.Len(), len(want))
	}
	fmt.Printf("Ingress replay matches %s byte-for-byte.\n", against)
	return nil
}

// runLoadgen drives mixed register/follow/like/comment/post traffic at
// a serve instance over /v1/batch and reports sustained throughput plus
// latency quantiles from a client-side telemetry registry — and the
// server's own enqueue-wait quantiles scraped from /metricz when
// telemetry is live over there.
func runLoadgen(target string, rps float64, duration time.Duration, conns, batchSize, accounts int) error {
	if conns < 1 {
		conns = 1
	}
	if batchSize < 1 {
		batchSize = 1
	}
	if accounts < 2 {
		accounts = 2
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conns * 2,
		MaxIdleConnsPerHost: conns * 2,
	}}

	if resp, err := client.Get(target + "/healthz"); err != nil {
		return fmt.Errorf("loadgen: server unreachable at %s: %w", target, err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("loadgen: %s/healthz: %s", target, resp.Status)
		}
	}

	// Setup: register + login a fleet over /v1/batch, then seed one
	// post per account so likes and comments have targets.
	tokens, accountIDs, postIDs, err := loadgenSetup(client, target, accounts)
	if err != nil {
		return err
	}
	fmt.Printf("Loadgen: %d accounts ready; driving %d conns × batches of %d for %v...\n",
		len(tokens), conns, batchSize, duration)

	// Fine sub-millisecond buckets: against a loopback server most
	// requests land under 100µs, where the default decade-spaced bounds
	// reported p50 = p95 = 100µs.
	reg := telemetry.NewRegistry()
	latBatch := reg.Histogram("loadgen.latency.batch", telemetry.FineDurationBuckets)
	latReq := reg.Histogram("loadgen.latency.request", telemetry.FineDurationBuckets)

	var sent, allowed, rateLimited, blocked, failed, errored atomic.Int64
	deadline := time.Now().Add(duration)
	// Per-connection pacing: each conn owes rps/conns requests per
	// second, i.e. one batch every batchSize·conns/rps seconds.
	var interval time.Duration
	if rps > 0 {
		interval = time.Duration(float64(batchSize*conns) / rps * float64(time.Second))
	}

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Pre-built NDJSON bodies, cycled: the client must not be
			// the bottleneck it is measuring.
			bodies := loadgenBodies(c, batchSize, tokens, accountIDs, postIDs)
			next := time.Now()
			for i := 0; time.Now().Before(deadline); i++ {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(target+"/v1/batch", "application/x-ndjson", bytes.NewReader(body))
				if err != nil {
					errored.Add(int64(batchSize))
					continue
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)
				latBatch.Observe(lat.Nanoseconds())
				latReq.Observe(lat.Nanoseconds() / int64(batchSize))
				sent.Add(int64(batchSize))
				allowed.Add(int64(bytes.Count(out, []byte(`"status":"allowed"`))))
				rateLimited.Add(int64(bytes.Count(out, []byte(`"status":"rate-limited"`))))
				blocked.Add(int64(bytes.Count(out, []byte(`"status":"blocked"`))))
				failed.Add(int64(bytes.Count(out, []byte(`"status":"failed"`))))
				errored.Add(int64(bytes.Count(out, []byte(`"status":"error"`))))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := sent.Load()
	throughput := float64(total) / elapsed.Seconds()
	snap := reg.Snapshot()
	hb := snap.Histograms["loadgen.latency.batch"]
	hr := snap.Histograms["loadgen.latency.request"]
	fmt.Printf("\nLoadgen: %d envelopes in %.2fs = %.0f req/s\n", total, elapsed.Seconds(), throughput)
	fmt.Printf("Outcomes: allowed %d, rate-limited %d, blocked %d, failed %d, error %d\n",
		allowed.Load(), rateLimited.Load(), blocked.Load(), failed.Load(), errored.Load())
	fmt.Printf("Batch latency (client):   p50 %s  p95 %s  p99 %s\n",
		time.Duration(hb.Quantile(0.50)), time.Duration(hb.Quantile(0.95)), time.Duration(hb.Quantile(0.99)))
	fmt.Printf("Request latency (client): p50 %s  p95 %s  p99 %s\n",
		time.Duration(hr.Quantile(0.50)), time.Duration(hr.Quantile(0.95)), time.Duration(hr.Quantile(0.99)))

	// Server-side view, if its telemetry is on.
	if enq, ok := scrapeHistogram(client, target, "server.enqueue.wait"); ok {
		fmt.Printf("Enqueue wait (server):    p50 %s  p95 %s  p99 %s  (n=%d)\n",
			time.Duration(enq.Quantile(0.50)), time.Duration(enq.Quantile(0.95)), time.Duration(enq.Quantile(0.99)), enq.Count)
	}

	// One machine-readable line for scripts/bench.sh.
	jsonLine, _ := json.Marshal(map[string]any{
		"envelopes":      total,
		"seconds":        elapsed.Seconds(),
		"throughput_rps": throughput,
		"p50_ns":         hr.Quantile(0.50),
		"p95_ns":         hr.Quantile(0.95),
		"p99_ns":         hr.Quantile(0.99),
	})
	fmt.Printf("loadgen-json: %s\n", jsonLine)

	if total == 0 || errored.Load() == total {
		return fmt.Errorf("loadgen: no traffic served (sent %d, errored %d)", total, errored.Load())
	}
	return nil
}

// loadgenSetup registers and logs in the account fleet and seeds one
// post each, returning tokens, account ids, and post ids.
func loadgenSetup(client *http.Client, target string, accounts int) (tokens []string, ids, posts []uint64, err error) {
	post := func(build func(buf *bytes.Buffer)) ([]wire.Outcome, error) {
		var buf bytes.Buffer
		build(&buf)
		resp, err := client.Post(target+"/v1/batch", "application/x-ndjson", &buf)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var outs []wire.Outcome
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			var out wire.Outcome
			if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
				return nil, err
			}
			outs = append(outs, out)
		}
		return outs, sc.Err()
	}

	regOuts, err := post(func(buf *bytes.Buffer) {
		for i := 0; i < accounts; i++ {
			fmt.Fprintf(buf, `{"v":1,"op":"register","username":"loadgen-%d","password":"pw"}`+"\n", i)
		}
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("loadgen: register: %w", err)
	}
	for _, out := range regOuts {
		if out.Status == wire.StatusAllowed {
			ids = append(ids, out.Account)
		}
	}
	loginOuts, err := post(func(buf *bytes.Buffer) {
		for i := 0; i < accounts; i++ {
			fmt.Fprintf(buf, `{"v":1,"op":"login","username":"loadgen-%d","password":"pw"}`+"\n", i)
		}
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("loadgen: login: %w", err)
	}
	for _, out := range loginOuts {
		if out.Status == wire.StatusAllowed && out.Token != "" {
			tokens = append(tokens, out.Token)
		}
	}
	if len(tokens) == 0 {
		return nil, nil, nil, fmt.Errorf("loadgen: no sessions established (register errors: %+v)", firstError(regOuts))
	}
	postOuts, err := post(func(buf *bytes.Buffer) {
		for _, tok := range tokens {
			fmt.Fprintf(buf, `{"v":1,"op":"post","token":"%s","tags":["loadgen"]}`+"\n", tok)
		}
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("loadgen: seed posts: %w", err)
	}
	for _, out := range postOuts {
		if out.Status == wire.StatusAllowed && out.Post != 0 {
			posts = append(posts, out.Post)
		}
	}
	if len(posts) == 0 {
		return nil, nil, nil, fmt.Errorf("loadgen: no seed posts created")
	}
	return tokens, ids, posts, nil
}

func firstError(outs []wire.Outcome) wire.Outcome {
	for _, out := range outs {
		if out.Status != wire.StatusAllowed {
			return out
		}
	}
	return wire.Outcome{}
}

// loadgenBodies pre-builds a cycle of NDJSON batch bodies mixing the
// paper's action families: mostly follows and likes, some comments,
// an occasional post.
func loadgenBodies(conn, batchSize int, tokens []string, ids, posts []uint64) [][]byte {
	// Cheap deterministic-ish stream; client traffic need not be
	// reproducible, only varied.
	state := uint64(conn)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	bodies := make([][]byte, 16)
	for b := range bodies {
		var buf bytes.Buffer
		for i := 0; i < batchSize; i++ {
			tok := tokens[next(len(tokens))]
			switch next(10) {
			case 0, 1, 2, 3:
				fmt.Fprintf(&buf, `{"v":1,"op":"follow","token":"%s","target":%d}`+"\n", tok, ids[next(len(ids))])
			case 4, 5, 6:
				fmt.Fprintf(&buf, `{"v":1,"op":"like","token":"%s","post":%d}`+"\n", tok, posts[next(len(posts))])
			case 7, 8:
				fmt.Fprintf(&buf, `{"v":1,"op":"comment","token":"%s","post":%d,"text":"nice one %d"}`+"\n", tok, posts[next(len(posts))], i)
			default:
				fmt.Fprintf(&buf, `{"v":1,"op":"unfollow","token":"%s","target":%d}`+"\n", tok, ids[next(len(ids))])
			}
		}
		bodies[b] = append([]byte(nil), buf.Bytes()...)
	}
	return bodies
}

// scrapeHistogram fetches /metricz and extracts one histogram snapshot.
func scrapeHistogram(client *http.Client, target, name string) (telemetry.HistogramSnapshot, bool) {
	resp, err := client.Get(target + "/metricz")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return telemetry.HistogramSnapshot{}, false
	}
	defer resp.Body.Close()
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return telemetry.HistogramSnapshot{}, false
	}
	h, ok := snap.Histograms[name]
	return h, ok && h.Count > 0
}
