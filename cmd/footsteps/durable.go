package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"

	"footsteps"
	"footsteps/internal/core"
	"footsteps/internal/durable"
	"footsteps/internal/platform"
)

// runDurable is the crash-tolerant lifecycle: the event stream goes
// into a checksummed segment log under -durable DIR, with an atomic
// FSNAP1 checkpoint and manifest swing at every day boundary. With
// -resume the same invocation recovers after a crash — the manifest's
// (checkpoint, segment, offset) triple is validated, the torn tail
// discarded, the world restored, and the remaining days re-driven; the
// reconstructed stream is byte-identical to an uninterrupted run
// (docs/PERSISTENCE.md). -crash-after-op N kills the process at the
// Nth filesystem operation, exercising exactly that recovery path.
func runDurable(cfg footsteps.Config, dir string, resume bool, crashAfterOp uint64, fsyncEvery bool) error {
	if dir == "" {
		return fmt.Errorf("run needs -durable DIR for the segment log")
	}
	var fsys durable.FS = durable.OSFS{}
	if crashAfterOp > 0 {
		fsys = durable.NewKillFS(fsys, crashAfterOp, func() {
			// A real kill, not an error return: recovery must work from
			// whatever bytes were durable, in a fresh process.
			fmt.Fprintf(os.Stderr, "footsteps: crash injected at filesystem op %d\n", crashAfterOp)
			os.Exit(137)
		})
	}
	opts := durable.Options{
		Seed:            cfg.Seed,
		Fingerprint:     cfg.Fingerprint(),
		FsyncEveryBatch: fsyncEvery,
		Telemetry:       telReg,
	}

	var dlog *durable.Log
	var w *core.World
	if resume {
		var err error
		dlog, err = durable.Resume(fsys, dir, opts)
		if err != nil {
			return err
		}
		rec := dlog.Recovery()
		if rec.TornTail != nil {
			fmt.Printf("Torn tail repaired: %v\n", rec.TornTail)
		}
		if rec.DiscardedFrames > 0 {
			fmt.Printf("Discarded %d intact frame(s) past the checkpoint (%d events, re-derived below)\n",
				rec.DiscardedFrames, rec.DiscardedEvents)
		}
		if rec.CheckpointFile == "" {
			fmt.Printf("Resumed %s at genesis: no checkpoint yet, restarting the run\n", dir)
			w = core.NewWorld(cfg)
		} else {
			w, err = core.RestoreWorld(cfg, bytes.NewReader(rec.Checkpoint))
			if err != nil {
				return err
			}
			fmt.Printf("Resumed %s from %s: day %d of %d, %d durable events\n",
				dir, rec.CheckpointFile, rec.CheckpointDay, cfg.Days, rec.Events)
		}
	} else {
		var err error
		dlog, err = durable.Create(fsys, dir, opts)
		if err != nil {
			return err
		}
		w = core.NewWorld(cfg)
		fmt.Printf("Durable run: %d days (seed %d) into %s\n", cfg.Days, cfg.Seed, dir)
	}

	telemetryAttach(w)
	w.OnFinalize(dlog.Err)
	w.Plat.Log().Subscribe(func(ev platform.Event) { _ = dlog.Append(ev) })
	if w.DaysRun() == 0 {
		w.RunAll()
	}

	err := w.RunDaysFunc(cfg.Days-w.DaysRun(), func(day int) error {
		if cerr := dlog.Checkpoint(day, w.Snapshot); cerr != nil {
			return cerr
		}
		return dlog.Err()
	})
	if cerr := dlog.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	// Reconstruct the stream from the segments on disk and hash it — the
	// same "Stream: ..." line the record command prints, so CI can
	// compare a durable run's hash against the plain capture's.
	h := sha256.New()
	n, err := durable.Reconstruct(fsys, dir, h)
	if err != nil {
		return err
	}
	fmt.Printf("Stream: %d events, sha256 %x\n", n, h.Sum(nil))
	fmt.Printf("Durable log sealed in %s (verify with `fsevdump -verify %s`)\n", dir, dir)
	telemetryReport(w)
	return nil
}
