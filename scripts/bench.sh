#!/bin/sh
# Runs the parallel-stepping benchmark and converts the result lines into
# BENCH_PR2.json, a machine-readable record of tick/event throughput per
# worker count (ticks/op, events/op, ns/tick, events/sec).
#
# Usage: scripts/bench.sh [output.json]
set -eu

out="${1:-BENCH_PR2.json}"
cd "$(dirname "$0")/.."

raw="$(go test -run '^$' -bench 'BenchmarkParallelStep' -benchtime "${BENCHTIME:-1x}" .)"
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk '
/^BenchmarkParallelStep\// {
    name = $1
    sub(/^BenchmarkParallelStep\//, "", name)
    sub(/-[0-9]+$/, "", name)
    rec = "  {\"bench\": \"" name "\", \"iters\": " $2
    for (i = 3; i + 1 <= NF; i += 2) {
        rec = rec ", \"" $(i + 1) "\": " $i
    }
    rec = rec "}"
    recs[n++] = rec
}
END {
    print "["
    for (i = 0; i < n; i++) print recs[i] (i < n - 1 ? "," : "")
    print "]"
}
' >"$out"

echo "wrote $out" >&2
