#!/bin/sh
# Runs the parallel-stepping benchmarks — faults-off, the mixed
# fault-injection scenario, the shards × workers grid, the allocation
# benchmark, and the snapshot/restore pair — with -benchmem, and
# converts the result lines into BENCH_PR9.json, a machine-readable
# record of tick/event throughput and memory cost per configuration
# (ticks/op, events/op,
# ns/tick, events/sec, B/op, allocs/op). Comparing the ns/tick of
# ParallelStep vs ParallelStepFaults bounds the injector overhead; the
# ShardedStep grid (shards 1/4/16 at workers 1/4/8) isolates
# lock-striping gains, with shards=1 reproducing the old
# single-global-lock layout; the AllocStep pooled/unpooled pair measures
# what the tick-scratch pools save (see docs/PERFORMANCE.md); the
# Snapshot pair records FSNAP1 checkpoint cost — encode wall time and
# snapshot bytes on the 10-day world, plus the end-to-end restore time a
# resumed run pays (see docs/PERSISTENCE.md); the TraceStep sweep
# records FTRC1 span-tracing overhead at sample rates off, 1/1024,
# 1/16, and 1/1 — tracing-off must match ParallelStep within noise and
# the 1/1024 production rate stays within ~5% ns/tick (see
# docs/OBSERVABILITY.md); the DurableStep sweep records crash-tolerant
# durability cost at modes off (plain FSEV1 recording), batched fsync,
# and fsync-every-batch — the batched default must stay within 15%
# ns/tick of off, with the daily checkpoint priced separately as
# ckpt-ns (see docs/PERSISTENCE.md). Every
# point in the grid produces identical ticks/op and events/op — shard,
# worker, and pooling knobs are concurrency/memory knobs, never
# semantics.
#
# The final "ServeLoadgen" record is the network front end's arm: a
# quick world hosted by `footsteps serve`, an unthrottled NDJSON
# loadgen burst over /v1/batch, and a graceful SIGTERM drain. It
# reports sustained envelopes/sec plus client-side per-request latency
# quantiles (see docs/API.md); the serve path's budget is >=50k req/s
# on the 1-CPU CI host.
#
# Setting BENCH_SCALE=1 appends the million-account arm: a 1M-account,
# 90-day world (the paper's full population over its full measurement
# window) reporting ns/tick, live B/account, and the peak-heap
# high-water mark in MiB. It needs ~1 GiB of heap and a few minutes of
# wall clock, so it is opt-in rather than part of the default sweep
# (see docs/PERFORMANCE.md, "Scaling to 1M accounts").
#
# Usage: [BENCH_SCALE=1] scripts/bench.sh [output.json]
set -eu

out="${1:-BENCH_PR10.json}"
cd "$(dirname "$0")/.."

raw="$(go test -run '^$' -bench 'Benchmark(ParallelStep(Faults)?|ShardedStep|AllocStep|Snapshot|TraceStep|DurableStep)$' -benchtime "${BENCHTIME:-1x}" -benchmem .)"
printf '%s\n' "$raw" >&2

recs="$(printf '%s\n' "$raw" | awk '
/^Benchmark(ParallelStep(Faults)?|ShardedStep|AllocStep|Snapshot|TraceStep|DurableStep)\// {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    rec = "  {\"bench\": \"" name "\", \"iters\": " $2
    for (i = 3; i + 1 <= NF; i += 2) {
        rec = rec ", \"" $(i + 1) "\": " $i
    }
    rec = rec "}"
    print rec
}
')"

# Serve arm: host a quick world, drive a loadgen burst, drain on
# SIGTERM, and append the loadgen-json record.
bin="$(mktemp -d)/footsteps"
go build -o "$bin" ./cmd/footsteps
addr="127.0.0.1:${SERVE_PORT:-18473}"
"$bin" -quick -serve-addr "$addr" serve >serve-bench.log 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    if "$bin" -target "http://$addr" -duration 1ms -accounts 2 loadgen >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
lg="$("$bin" -target "http://$addr" -duration "${SERVE_DURATION:-3s}" -conns 4 -batch 64 loadgen)"
printf '%s\n' "$lg" >&2
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_rec="$(printf '%s\n' "$lg" | awk -F'loadgen-json: ' '/^loadgen-json: /{
    body = $2
    sub(/^\{/, "", body)
    print "  {\"bench\": \"ServeLoadgen\", " body
}')"
[ -n "$serve_rec" ] || { echo "bench.sh: loadgen produced no record" >&2; exit 1; }

# Opt-in million-account arm (BENCH_SCALE=1): run separately from the
# main sweep so its ~1 GiB heap never inflates the -benchmem numbers of
# the small-world benchmarks sharing the process.
scale_rec=""
if [ -n "${BENCH_SCALE:-}" ]; then
    scale_raw="$(go test -run '^$' -bench 'BenchmarkScaleWorld$' -benchtime 1x -timeout 60m .)"
    printf '%s\n' "$scale_raw" >&2
    scale_rec="$(printf '%s\n' "$scale_raw" | awk '
/^BenchmarkScaleWorld/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    rec = "  {\"bench\": \"" name "\", \"iters\": " $2
    for (i = 3; i + 1 <= NF; i += 2) {
        rec = rec ", \"" $(i + 1) "\": " $i
    }
    rec = rec "}"
    print rec
}
')"
    [ -n "$scale_rec" ] || { echo "bench.sh: scale arm produced no record" >&2; exit 1; }
fi

printf '%s\n%s\n%s\n' "$recs" "$serve_rec" "$scale_rec" | awk '
NF { recs[n++] = $0 }
END {
    print "["
    for (i = 0; i < n; i++) print recs[i] (i < n - 1 ? "," : "")
    print "]"
}
' >"$out"

echo "wrote $out" >&2
