#!/bin/sh
# Runs the parallel-stepping benchmarks — faults-off and the mixed
# fault-injection scenario — and converts the result lines into
# BENCH_PR3.json, a machine-readable record of tick/event throughput per
# worker count (ticks/op, events/op, ns/tick, events/sec). Comparing the
# ns/tick of ParallelStep vs ParallelStepFaults bounds the injector
# overhead; the faults-off arm should stay within 5% of its historical
# numbers (a nil injector costs one pointer check per request).
#
# Usage: scripts/bench.sh [output.json]
set -eu

out="${1:-BENCH_PR3.json}"
cd "$(dirname "$0")/.."

raw="$(go test -run '^$' -bench 'BenchmarkParallelStep(Faults)?$' -benchtime "${BENCHTIME:-1x}" .)"
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk '
/^BenchmarkParallelStep(Faults)?\// {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    rec = "  {\"bench\": \"" name "\", \"iters\": " $2
    for (i = 3; i + 1 <= NF; i += 2) {
        rec = rec ", \"" $(i + 1) "\": " $i
    }
    rec = rec "}"
    recs[n++] = rec
}
END {
    print "["
    for (i = 0; i < n; i++) print recs[i] (i < n - 1 ? "," : "")
    print "]"
}
' >"$out"

echo "wrote $out" >&2
