// Interventions: run the §6 experiments — a narrow 10%-bin study with
// synchronous blocking versus deferred removal, then the broad 90%
// rollout — and print the Figure 5–7 day series.
//
// The headline result reproduces the paper's: blocking provokes immediate
// adaptation (the service discovers the threshold and hovers under it),
// while deferred removal goes unanswered.
package main

import (
	"fmt"
	"log"

	"footsteps"
	"footsteps/internal/aas"
	"footsteps/internal/core"
	"footsteps/internal/intervention"
)

func cfgFor(days int) footsteps.Config {
	cfg := footsteps.TestConfig()
	cfg.Days = days
	cfg.Scale = 1.0 / 100
	cfg.ScaleOverride = map[string]float64{
		aas.NameHublaagram: 0.08,
		aas.NameInstalex:   0.15,
		aas.NameInstazood:  0.15,
	}
	return cfg
}

func main() {
	// Narrow experiment: 5 calibration days, 3 weeks of countermeasures
	// against one block bin, one delay bin, one control bin.
	fmt.Println("=== Narrow intervention (§6.3) ===")
	narrow := footsteps.NewStudy(cfgFor(2 + 5 + 21))
	nres, err := narrow.NarrowIntervention(5, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(footsteps.FormatIntervention(nres))

	blockLate := windowMean(nres.Figure5.Block, nres.Figure5.Days/2, nres.Figure5.Days)
	controlLate := windowMean(nres.Figure5.Control, nres.Figure5.Days/2, nres.Figure5.Days)
	fmt.Printf("\nLate-experiment Boostgram medians: block arm %.1f follows/user/day, control %.1f (threshold %.0f)\n",
		blockLate, controlLate, nres.Figure5.Threshold)
	fmt.Println("→ the blocked service found the threshold and sits under it; the delay arm never noticed.")

	// Broad experiment: 90% of accounts, delay for six days, then block.
	fmt.Println("\n=== Broad intervention (§6.4) ===")
	broad := footsteps.NewStudy(cfgFor(2 + 5 + 14))
	bres, err := broad.BroadIntervention(5, 14, 6)
	if err != nil {
		log.Fatal(err)
	}
	delayWeek := windowMean(bres.Figure7.Arms[intervention.AssignDelay], 1, 6)
	blockWeek := windowMean(bres.Figure7.Arms[intervention.AssignBlock], 9, 14)
	fmt.Printf("Eligible Boostgram follows: %.0f%% during the delay week, %.0f%% after the block switch.\n",
		delayWeek*100, blockWeek*100)
	fmt.Println("→ switching from delay to block immediately told the service what to evade.")
	fmt.Printf("\nBenign actions touched across both experiments: %d + %d\n",
		nres.BenignTouched, bres.BenignTouched)
}

// windowMean averages the observed values of a day series over [from, to).
func windowMean(s core.DailySeries, from, to int) float64 {
	sum, n := 0.0, 0
	for d := from; d < to && d < len(s.Seen); d++ {
		if s.Seen[d] {
			sum += s.Values[d]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
