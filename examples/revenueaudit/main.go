// Revenueaudit: run the §5 business characterization and print the
// customer-base and revenue analyses (Tables 6–11, Figures 2–4), then
// extrapolate the revenue estimates back to paper scale.
//
// The paper's headline: the three large services gross over $1M per month
// combined, and most of it comes from repeat customers.
package main

import (
	"flag"
	"fmt"
	"log"

	"footsteps"
)

func main() {
	days := flag.Int("days", 60, "measurement window in days")
	scale := flag.Float64("scale", 1.0/1000, "customer-dynamics scale vs the paper")
	flag.Parse()

	cfg := footsteps.TestConfig()
	cfg.Days = *days
	cfg.Scale = *scale
	// Keep the collusion network's source pool large enough that paid
	// like bursts exceed the 160/hour free cap (see DESIGN.md).
	cfg.ScaleOverride = map[string]float64{"Hublaagram": 2}

	fmt.Printf("Running a %d-day window at 1/%.0f of paper scale...\n\n", *days, 1 / *scale)
	study := footsteps.NewStudy(cfg)
	res, err := study.Business()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(footsteps.FormatBusiness(res))
	fmt.Println(footsteps.FormatRevenueSummary(res))

	// Extrapolate to paper scale. Hublaagram ran at 2× the base scale.
	recip := (res.Table8Boostgram.Monthly +
		(res.Table8InstaLow.Monthly+res.Table8InstaHigh.Monthly)/2) / *scale
	coll := (res.Table9.MonthlyLow + res.Table9.MonthlyHigh) / 2 / (*scale * 2)
	fmt.Printf("Extrapolated to Instagram scale: ≈$%.0fk/month reciprocity + ≈$%.0fk/month Hublaagram = ≈$%.2fM/month\n",
		recip/1000, coll/1000, (recip+coll)/1e6)
	fmt.Println("(the paper estimates >$1M/month across the same three services)")
}
