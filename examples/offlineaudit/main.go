// Offlineaudit: capture a measurement window's full event stream to a
// compact binary file, then audit it offline — replaying the capture into
// the FRAUDAR-style dense-subgraph detector and comparing what a pure
// graph method finds against ground truth.
//
// This mirrors how a real abuse team works: the serving path only writes
// an event firehose; every detector and analysis runs downstream of the
// capture.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"footsteps"
	"footsteps/internal/aas"
	"footsteps/internal/eventio"
	"footsteps/internal/fraudar"
	"footsteps/internal/platform"
)

func main() {
	dir, err := os.MkdirTemp("", "footsteps-audit")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	capturePath := filepath.Join(dir, "events.fsev")

	// --- Capture phase: run 2 weeks with a recorder attached. ----------
	cfg := footsteps.TestConfig()
	cfg.Days = 14
	cfg.Scale = 1.0 / 1000
	study := footsteps.NewStudy(cfg)
	world := study.World()

	f, err := os.Create(capturePath)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := eventio.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	rec.Attach(world.Plat.Log())

	world.RunAll()
	world.Sched.RunFor(14 * 24 * time.Hour)
	if err := rec.Flush(); err != nil {
		log.Fatal(err)
	}
	info, _ := f.Stat()
	f.Close()
	fmt.Printf("Captured %d events to %s (%.1f MB, %.1f bytes/event)\n",
		rec.Count(), capturePath, float64(info.Size())/1e6,
		float64(info.Size())/float64(rec.Count()))

	// Ground truth for scoring, straight from the engines.
	truth := make(map[fraudar.NodeID]bool)
	for _, svc := range world.Coll {
		for _, c := range svc.Customers() {
			truth[fraudar.NodeID(c.Account)] = true
		}
	}

	// --- Audit phase: replay the capture, no live state needed. --------
	in, err := os.Open(capturePath)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	r, err := eventio.NewReader(in)
	if err != nil {
		log.Fatal(err)
	}
	graph := fraudar.NewBipartite()
	replayed := 0
	for {
		ev, err := r.Next()
		if err != nil {
			break
		}
		replayed++
		if ev.Outcome != platform.OutcomeAllowed || ev.Duplicate || ev.Enforcement {
			continue
		}
		if (ev.Type == platform.ActionLike || ev.Type == platform.ActionFollow) &&
			ev.Target != 0 && ev.Target != ev.Actor {
			graph.AddEdge(fraudar.NodeID(ev.Actor), fraudar.NodeID(ev.Target))
		}
	}
	fmt.Printf("Replayed %d events → bipartite graph: %d sources, %d targets, %d edges\n",
		replayed, graph.Sources(), graph.Targets(), graph.Edges())

	blocks := fraudar.DetectK(graph, 3, 8)
	fmt.Printf("\nDense blocks found: %d\n", len(blocks))
	for i, blk := range blocks {
		nodes := append(append([]fraudar.NodeID(nil), blk.Sources...), blk.Targets...)
		precision, recall := fraudar.PrecisionRecall(nodes, truth)
		fmt.Printf("  block %d: %v — vs %s ground truth: precision %.0f%%, recall %.0f%%\n",
			i+1, blk, aas.NameHublaagram, precision*100, recall*100)
	}
	fmt.Println("\nThe collusion network is a dense block and falls out of the graph;")
	fmt.Println("reciprocity-abuse customers do not (their inbound actions are organic) —")
	fmt.Println("the asymmetry that motivates the paper's signal-based attribution.")
}
