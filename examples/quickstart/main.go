// Quickstart: build a small simulated world, register a honeypot account
// with one Account Automation Service, and watch the reciprocity-abuse
// machinery work — the §4 methodology in ~60 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"footsteps"
	"footsteps/internal/aas"
	"footsteps/internal/honeypot"
	"footsteps/internal/platform"
)

func main() {
	cfg := footsteps.TestConfig()
	cfg.GraphWrites = true // honeypot studies want full graph fidelity
	study := footsteps.NewStudy(cfg)
	world := study.World()

	// Create a lived-in honeypot: photos, profile picture, bio, a name,
	// and follows of a few high-profile accounts (§4.1.1).
	hp, err := world.Honeypots.Create(honeypot.LivedIn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Created honeypot %q (account %d)\n", hp.Username, hp.ID)

	// Hand its credentials to Boostgram and request the follow service —
	// exactly what a customer does at registration (§3.3.1).
	boostgram := world.Recip[aas.NameBoostgram]
	customer, err := boostgram.EnrollTrial(hp.Username, hp.Password, aas.OfferFollow)
	if err != nil {
		log.Fatal(err)
	}
	world.Honeypots.MarkEnrolled(hp, aas.NameBoostgram)
	fmt.Printf("Enrolled with %s; free trial until %s\n",
		aas.NameBoostgram, customer.EngagedUntil.Format("2006-01-02"))

	// Run the simulation through the trial plus two days for delayed
	// organic reactions. The service drives outbound follows from the
	// honeypot toward its curated pool; some pool members follow back.
	world.Sched.RunFor(5 * 24 * time.Hour)

	out := hp.Outbound[platform.ActionFollow]
	in := hp.Inbound[platform.ActionFollow]
	fmt.Printf("\nDuring the trial the service drove %d outbound follows.\n", out)
	fmt.Printf("Organic users reciprocated with %d inbound follows.\n", in)
	fmt.Printf("Reciprocation rate: %.1f%% (Table 5 reports ≈12%% for lived-in accounts)\n",
		hp.ReciprocationRate(platform.ActionFollow, platform.ActionFollow)*100)

	// End-of-study cleanup removes the honeypot and every action it took.
	if err := world.Honeypots.Delete(hp); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHoneypot deleted; all of its actions removed from the platform.")
}
