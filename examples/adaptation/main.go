// Adaptation: the §6.4 epilogue as a runnable scenario. Broad blocking is
// left on; the services respond by routing their traffic through an
// extensive proxy network, drastically increasing IP diversity and walking
// out from under the ASN-keyed countermeasure — while remaining perfectly
// attributable by client fingerprint. Hublaagram, unable to sustain its
// paid bursts, finally lists everything as out of stock.
package main

import (
	"fmt"
	"log"
	"sort"

	"footsteps"
	"footsteps/internal/aas"
)

func main() {
	cfg := footsteps.TestConfig()
	cfg.Days = 2 + 4 + 2*8 + 1
	cfg.Scale = 1.0 / 100
	cfg.ScaleOverride = map[string]float64{
		aas.NameHublaagram: 0.08,
		aas.NameInstalex:   0.15,
		aas.NameInstazood:  0.15,
	}
	study := footsteps.NewStudy(cfg)
	fmt.Println("Phase 1: broad synchronous blocking against the services' home ASNs.")
	fmt.Println("Phase 2: the services move every session onto proxy networks.")
	res, err := study.Adaptation(4, 8)
	if err != nil {
		log.Fatal(err)
	}

	labels := make([]string, 0, len(res.Phase1))
	for l := range res.Phase1 {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	fmt.Printf("\n%-12s %16s %16s %12s %14s\n",
		"service", "blocked% pre", "blocked% post", "proxy ASNs", "attributable")
	for _, l := range labels {
		fmt.Printf("%-12s %15.1f%% %15.1f%% %12d %14d\n",
			l,
			res.Phase1[l].BlockedFraction()*100,
			res.Phase2[l].BlockedFraction()*100,
			res.ProxyDiversity[l],
			res.StillAttributable[l])
	}

	fmt.Println("\nFindings (matching the paper's epilogue):")
	fmt.Println(" - blocking rates collapse once traffic leaves the thresholded ASNs;")
	fmt.Println(" - the evaded traffic spans many ASNs (the 'extensive proxy network');")
	fmt.Println(" - attribution by client signature is untouched by the move;")
	fmt.Printf(" - Hublaagram out of stock: %v\n", res.HublaagramOutOfStock)
}
