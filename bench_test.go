// Benchmarks regenerating every table and figure in the paper's evaluation
// (Tables 1–11, Figures 2–7) plus ablations of the design choices called
// out in DESIGN.md §5.
//
// Expensive studies (the 90-day business characterization, the multi-week
// interventions) run once and are shared across the benchmarks that read
// different tables from the same results — exactly as in the paper, where
// one measurement window feeds many tables. Run with -v to see the
// regenerated tables:
//
//	go test -bench=. -benchmem -v
package footsteps_test

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"footsteps"

	"footsteps/internal/aas"
	"footsteps/internal/clock"
	"footsteps/internal/core"
	"footsteps/internal/detection"
	"footsteps/internal/durable"
	"footsteps/internal/eventio"
	"footsteps/internal/faults"
	"footsteps/internal/intervention"
	"footsteps/internal/persistence"
	"footsteps/internal/platform"
	"footsteps/internal/trace"
)

// benchBusinessCfg runs the §5 window at 1/500 of paper scale.
func benchBusinessCfg() footsteps.Config {
	cfg := footsteps.DefaultConfig()
	cfg.Days = 90
	return cfg
}

// benchInterventionCfg keeps enough Boostgram customers per bin while
// shrinking the heaviest services.
func benchInterventionCfg(days int) footsteps.Config {
	cfg := footsteps.TestConfig()
	cfg.Days = days
	cfg.Scale = 1.0 / 100
	cfg.ScaleOverride = map[string]float64{
		aas.NameHublaagram: 0.08,
		aas.NameInstalex:   0.15,
		aas.NameInstazood:  0.15,
	}
	return cfg
}

var (
	businessOnce sync.Once
	businessRes  *footsteps.BusinessResults

	narrowOnce sync.Once
	narrowRes  *footsteps.InterventionResults

	broadOnce sync.Once
	broadRes  *footsteps.InterventionResults
)

func businessResults(b *testing.B) *footsteps.BusinessResults {
	b.Helper()
	businessOnce.Do(func() {
		study := footsteps.NewStudy(benchBusinessCfg())
		res, err := study.Business()
		if err != nil {
			b.Fatalf("business study: %v", err)
		}
		businessRes = res
	})
	if businessRes == nil {
		b.Skip("business study failed earlier")
	}
	return businessRes
}

func narrowResults(b *testing.B) *footsteps.InterventionResults {
	b.Helper()
	narrowOnce.Do(func() {
		study := footsteps.NewStudy(benchInterventionCfg(2 + 7 + 42))
		res, err := study.NarrowIntervention(7, 6)
		if err != nil {
			b.Fatalf("narrow intervention: %v", err)
		}
		narrowRes = res
	})
	if narrowRes == nil {
		b.Skip("narrow intervention failed earlier")
	}
	return narrowRes
}

func broadResults(b *testing.B) *footsteps.InterventionResults {
	b.Helper()
	broadOnce.Do(func() {
		study := footsteps.NewStudy(benchInterventionCfg(2 + 7 + 14))
		res, err := study.BroadIntervention(7, 14, 6)
		if err != nil {
			b.Fatalf("broad intervention: %v", err)
		}
		broadRes = res
	})
	if broadRes == nil {
		b.Skip("broad intervention failed earlier")
	}
	return broadRes
}

// --- Tables 1–4: static catalog data -----------------------------------

func BenchmarkTable1(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = footsteps.FormatTable1()
	}
	b.Log("\n" + out)
}

func BenchmarkTable2(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = footsteps.FormatTable2()
	}
	b.Log("\n" + out)
}

func BenchmarkTable3(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = footsteps.FormatTable3()
	}
	b.Log("\n" + out)
}

func BenchmarkTable4(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = footsteps.FormatTable4()
	}
	b.Log("\n" + out)
}

// --- Table 5: honeypot reciprocation measurement ------------------------

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := footsteps.TestConfig()
		cfg.GraphWrites = true
		cfg.PoolSize = 2500
		study := footsteps.NewStudy(cfg)
		tbl, err := study.Reciprocation(9, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + footsteps.FormatTable5(tbl))
			if c, ok := tbl.Cell(aas.NameBoostgram, 1 /* lived-in */, platform.ActionFollow); ok {
				b.ReportMetric(c.InFollowRate*100, "livedin-follow-pct")
			}
		}
	}
}

// --- Tables 6–11 and Figures 2–4: the §5 business window ----------------

func BenchmarkTable6(b *testing.B) {
	res := businessResults(b)
	for i := 0; i < b.N; i++ {
		_ = footsteps.FormatBusiness(res)
	}
	split := res.Table6[aas.NameHublaagram]
	if split.Customers > 0 {
		b.ReportMetric(float64(split.LongTerm)/float64(split.Customers)*100, "hubla-longterm-pct")
	}
	b.Log("\n" + footsteps.FormatBusiness(res))
}

func BenchmarkTable7(b *testing.B) {
	res := businessResults(b)
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = len(res.Table7)
	}
	b.ReportMetric(float64(rows), "services")
}

func BenchmarkTable8(b *testing.B) {
	res := businessResults(b)
	var monthly float64
	for i := 0; i < b.N; i++ {
		monthly = res.Table8Boostgram.Monthly
	}
	b.ReportMetric(monthly, "boostgram-usd-month")
	b.ReportMetric(res.Table8InstaLow.Monthly, "insta-low-usd-month")
	b.ReportMetric(res.Table8InstaHigh.Monthly, "insta-high-usd-month")
}

func BenchmarkTable9(b *testing.B) {
	res := businessResults(b)
	var low float64
	for i := 0; i < b.N; i++ {
		low = res.Table9.MonthlyLow
	}
	b.ReportMetric(low, "hubla-usd-month-low")
	b.ReportMetric(res.Table9.MonthlyHigh, "hubla-usd-month-high")
	b.ReportMetric(float64(res.Table9.NoOutboundAccounts), "no-outbound-accounts")
}

func BenchmarkTable10(b *testing.B) {
	res := businessResults(b)
	var pre float64
	for i := 0; i < b.N; i++ {
		pre = res.Table10[aas.NameBoostgram].PreexistingFraction
	}
	b.ReportMetric(pre*100, "boostgram-preexisting-pct")
}

func BenchmarkTable11(b *testing.B) {
	res := businessResults(b)
	var likes float64
	for i := 0; i < b.N; i++ {
		likes = res.Table11[aas.NameBoostgram][platform.ActionLike]
	}
	b.ReportMetric(likes*100, "boostgram-like-pct")
	b.ReportMetric(res.Table11[core.LabelInstaStar][platform.ActionFollow]*100, "insta-follow-pct")
}

func BenchmarkFigure2(b *testing.B) {
	res := businessResults(b)
	var top string
	for i := 0; i < b.N; i++ {
		if shares := res.Figure2[aas.NameHublaagram]; len(shares) > 0 {
			top = shares[0].Country
		}
	}
	if top == "" {
		b.Fatal("no country distribution")
	}
}

func BenchmarkFigure3(b *testing.B) {
	res := businessResults(b)
	var median float64
	for i := 0; i < b.N; i++ {
		median = res.Figure3[aas.NameBoostgram].Median()
	}
	b.ReportMetric(median, "target-following-median")
	b.ReportMetric(res.Figure3["Random"].Median(), "random-following-median")
}

func BenchmarkFigure4(b *testing.B) {
	res := businessResults(b)
	var median float64
	for i := 0; i < b.N; i++ {
		median = res.Figure4[aas.NameBoostgram].Median()
	}
	b.ReportMetric(median, "target-followers-median")
	b.ReportMetric(res.Figure4["Random"].Median(), "random-followers-median")
}

// --- Figures 5–7: intervention experiments ------------------------------

func BenchmarkFigure5(b *testing.B) {
	res := narrowResults(b)
	var threshold float64
	for i := 0; i < b.N; i++ {
		threshold = res.Figure5.Threshold
	}
	b.ReportMetric(threshold, "follow-threshold")
	// Late-experiment medians: the block arm hugs the threshold, the
	// control arm stays at plan.
	lateMean := func(s core.DailySeries) float64 {
		sum, n := 0.0, 0
		for d := res.Figure5.Days / 2; d < res.Figure5.Days; d++ {
			if s.Seen[d] {
				sum += s.Values[d]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	b.ReportMetric(lateMean(res.Figure5.Block), "block-median-late")
	b.ReportMetric(lateMean(res.Figure5.Control), "control-median-late")
	b.Log("\n" + footsteps.FormatIntervention(res))
}

func BenchmarkFigure6(b *testing.B) {
	res := narrowResults(b)
	blockArm := res.Figure6.Arms[intervention.AssignBlock]
	var early, late float64
	for i := 0; i < b.N; i++ {
		early, late = armWindowMean(blockArm, 0, 7), armWindowMean(blockArm, res.Figure6.Days-7, res.Figure6.Days)
	}
	b.ReportMetric(early*100, "eligible-pct-week1")
	b.ReportMetric(late*100, "eligible-pct-final-week")
}

func BenchmarkFigure7(b *testing.B) {
	res := broadResults(b)
	delayArm := res.Figure7.Arms[intervention.AssignDelay]
	blockArm := res.Figure7.Arms[intervention.AssignBlock]
	var week1, week2 float64
	for i := 0; i < b.N; i++ {
		week1 = armWindowMean(delayArm, 1, 6)
		week2 = armWindowMean(blockArm, 9, 14)
	}
	b.ReportMetric(week1*100, "eligible-pct-delay-week")
	b.ReportMetric(week2*100, "eligible-pct-block-week")
}

func armWindowMean(s core.DailySeries, from, to int) float64 {
	sum, n := 0.0, 0
	for d := from; d < to && d < len(s.Seen); d++ {
		if s.Seen[d] {
			sum += s.Values[d]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// --- End-to-end study benchmarks (wall-clock cost of each experiment) ---

func BenchmarkBusinessStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchBusinessCfg()
		cfg.Days = 30 // one month per iteration keeps -bench affordable
		study := footsteps.NewStudy(cfg)
		if _, err := study.Business(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdaptationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study := footsteps.NewStudy(benchInterventionCfg(22))
		res, err := study.Adaptation(4, 7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p1 := res.Phase1[aas.NameHublaagram]
			p2 := res.Phase2[aas.NameHublaagram]
			b.ReportMetric(p1.BlockedFraction()*100, "blocked-pct-pre-evasion")
			b.ReportMetric(p2.BlockedFraction()*100, "blocked-pct-post-evasion")
			b.ReportMetric(float64(res.ProxyDiversity[aas.NameHublaagram]), "proxy-asns")
		}
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

// BenchmarkAblationThreshold sweeps the mixed-ASN benign percentile and
// reports the trade-off between benign collateral and abuse truncation.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, pctl := range []float64{0.90, 0.99} {
		name := "p90"
		if pctl == 0.99 {
			name = "p99"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchInterventionCfg(2 + 5 + 7)
				w := core.NewWorld(cfg)
				classifier, err := w.TrainClassifier(2)
				if err != nil {
					b.Fatal(err)
				}
				cal := detection.NewCalibrator(classifier.Classify)
				cal.MixedPercentile = pctl
				w.Plat.Log().Subscribe(cal.Observe)
				w.Sched.EveryDay(23*time.Hour+50*time.Minute, 5, func(int) { cal.EndDay() })
				w.RunAll()
				w.Sched.RunFor(5 * clock.Day)
				ctl := intervention.New(cal.Compute(), classifier.Classify,
					intervention.BroadPolicy(9, 0), w.Plat.Now(), 24*time.Hour)
				w.Plat.SetGatekeeper(ctl)
				w.Sched.RunFor(7 * clock.Day)
				if i == 0 {
					b.ReportMetric(float64(ctl.BenignTouched()), "benign-touched")
					st := ctl.Stats(3, aas.NameHublaagram, platform.ActionLike, intervention.AssignBlock)
					if st.Attempts > 0 {
						b.ReportMetric(float64(st.Eligible)/float64(st.Attempts)*100, "abuse-eligible-pct")
					}
				}
			}
		})
	}
}

// BenchmarkAblationTargeting compares the reciprocation yield of curated
// targeting against spraying random users — why the services curate (§5.3).
func BenchmarkAblationTargeting(b *testing.B) {
	run := func(b *testing.B, curated bool) float64 {
		cfg := footsteps.TestConfig()
		cfg.GraphWrites = true
		cfg.PoolSize = 2000
		cfg.OrganicPopulation = 2000
		w := core.NewWorld(cfg)
		svc := w.Recip[aas.NameBoostgram]
		if !curated {
			svc.SetTargetPool(w.Pop.RandomSample(2000))
		}
		hp, err := w.Honeypots.Create(1 /* lived-in */)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.EnrollTrial(hp.Username, hp.Password, aas.OfferFollow); err != nil {
			b.Fatal(err)
		}
		w.Sched.RunFor(5 * clock.Day)
		return hp.ReciprocationRate(platform.ActionFollow, platform.ActionFollow)
	}
	b.Run("curated", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			rate = run(b, true)
		}
		b.ReportMetric(rate*100, "follow-reciprocation-pct")
	})
	b.Run("random", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			rate = run(b, false)
		}
		b.ReportMetric(rate*100, "follow-reciprocation-pct")
	})
}

// BenchmarkAblationTechnique compares the two laundering techniques on
// outbound actions spent per inbound action delivered to the customer.
func BenchmarkAblationTechnique(b *testing.B) {
	b.Run("reciprocity", func(b *testing.B) {
		var costPerInbound float64
		for i := 0; i < b.N; i++ {
			cfg := footsteps.TestConfig()
			cfg.GraphWrites = true
			cfg.PoolSize = 2000
			w := core.NewWorld(cfg)
			svc := w.Recip[aas.NameBoostgram]
			hp, _ := w.Honeypots.Create(0 /* empty */)
			svc.EnrollTrial(hp.Username, hp.Password, aas.OfferFollow)
			w.Sched.RunFor(5 * clock.Day)
			out := hp.Outbound[platform.ActionFollow]
			in := hp.Inbound[platform.ActionFollow]
			if in > 0 {
				costPerInbound = float64(out) / float64(in)
			}
		}
		b.ReportMetric(costPerInbound, "outbound-per-inbound")
	})
	b.Run("collusion", func(b *testing.B) {
		var costPerInbound float64
		for i := 0; i < b.N; i++ {
			cfg := footsteps.TestConfig()
			cfg.GraphWrites = true
			w := core.NewWorld(cfg)
			svc := w.Coll[aas.NameHublaagram]
			// A hundred network members plus the measured honeypot.
			for j := 0; j < 100; j++ {
				hp, _ := w.Honeypots.Create(0)
				c, _ := svc.EnrollFree(hp.Username, hp.Password)
				c.EngagedUntil = c.EnrolledAt.Add(10 * clock.Day)
			}
			hp, _ := w.Honeypots.Create(0)
			c, err := svc.EnrollFree(hp.Username, hp.Password, aas.OfferFollow)
			if err != nil {
				b.Fatal(err)
			}
			delivered, _ := svc.RequestFree(c, aas.OfferFollow)
			if delivered > 0 {
				// Collusion spends exactly one outbound action elsewhere
				// per inbound action delivered.
				costPerInbound = 1
			}
			w.Sched.RunFor(clock.Day)
		}
		b.ReportMetric(costPerInbound, "outbound-per-inbound")
	})
}

// BenchmarkAblationCountermeasure compares block and delay on the quantity
// that matters to the platform: artificial follows surviving at the end of
// the experiment — and on the signal leaked to the adversary.
func BenchmarkAblationCountermeasure(b *testing.B) {
	run := func(b *testing.B, policy intervention.Policy) (surviving int, blockedSeen int) {
		cfg := benchInterventionCfg(2 + 5 + 10)
		w := core.NewWorld(cfg)
		classifier, err := w.TrainClassifier(2)
		if err != nil {
			b.Fatal(err)
		}
		allowed, removed, blocked := 0, 0, 0
		w.Plat.Log().Subscribe(func(ev platform.Event) {
			if _, ok := classifier.Classify(ev); !ok && !ev.Enforcement {
				return
			}
			switch {
			case ev.Type == platform.ActionFollow && ev.Enforcement:
				removed++
			case ev.Type == platform.ActionFollow && ev.Outcome == platform.OutcomeAllowed:
				allowed++
			case ev.Type == platform.ActionFollow && ev.Outcome == platform.OutcomeBlocked:
				blocked++
			}
		})
		cal := detection.NewCalibrator(classifier.Classify)
		w.Plat.Log().Subscribe(cal.Observe)
		w.Sched.EveryDay(23*time.Hour+50*time.Minute, 5, func(int) { cal.EndDay() })
		w.RunAll()
		w.Sched.RunFor(5 * clock.Day)
		allowed, removed, blocked = 0, 0, 0 // reset after calibration
		ctl := intervention.New(cal.Compute(), classifier.Classify, policy, w.Plat.Now(), 24*time.Hour)
		w.Plat.SetGatekeeper(ctl)
		w.Sched.RunFor(10 * clock.Day)
		w.Sched.RunFor(2 * clock.Day) // let scheduled removals land
		return allowed - removed, blocked
	}
	b.Run("block", func(b *testing.B) {
		var surviving, blocked int
		for i := 0; i < b.N; i++ {
			surviving, blocked = run(b, intervention.BroadPolicy(9, 0))
		}
		b.ReportMetric(float64(surviving), "surviving-follows")
		b.ReportMetric(float64(blocked), "adversary-visible-blocks")
	})
	b.Run("delay", func(b *testing.B) {
		var surviving, blocked int
		for i := 0; i < b.N; i++ {
			surviving, blocked = run(b, intervention.BroadPolicy(9, 1000))
		}
		b.ReportMetric(float64(surviving), "surviving-follows")
		b.ReportMetric(float64(blocked), "adversary-visible-blocks")
	})
}

// BenchmarkGraphDetection runs the FRAUDAR baseline vs signal attribution
// comparison (the paper's motivation for signal-based detection).
func BenchmarkGraphDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := footsteps.TestConfig()
		cfg.Days = 20
		cfg.Scale = 1.0 / 500
		w := core.NewWorld(cfg)
		res, err := w.GraphDetectionStudy()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Fraudar[aas.NameHublaagram].Recall*100, "fraudar-hubla-recall-pct")
			b.ReportMetric(res.Fraudar[aas.NameBoostgram].Recall*100, "fraudar-boost-recall-pct")
			b.ReportMetric(res.Signature[aas.NameBoostgram].Recall*100, "signal-boost-recall-pct")
		}
	}
}

// BenchmarkParallelStep measures whole-world tick throughput across
// worker-pool sizes, driving the scheduler tick by tick via StepTick —
// the parallel-stepping hot path. The event stream is byte-identical at
// every worker count (see internal/simtest); this benchmark quantifies
// the wall-clock side of that trade. Speedup requires physical cores:
// on a single-CPU host the worker counts should bench within noise of
// each other, which is itself worth watching — it bounds the
// coordination overhead the pool adds when parallelism is unavailable.
func BenchmarkParallelStep(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			totalTicks, totalEvents := 0, 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := footsteps.TestConfig()
				cfg.Days = 10
				cfg.Workers = workers
				w := core.NewWorld(cfg)
				w.RunAll()
				deadline := w.Plat.Now().Add(time.Duration(cfg.Days) * clock.Day)
				events := 0
				w.Plat.Log().Subscribe(func(platform.Event) { events++ })
				b.StartTimer()
				for {
					at, ran := w.Sched.StepTick()
					if ran == 0 || at.After(deadline) {
						break
					}
					totalTicks++
				}
				totalEvents += events
			}
			b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/op")
			b.ReportMetric(float64(totalEvents)/float64(b.N), "events/op")
			// Absolute throughput alongside the per-op normalizations:
			// wall-clock per simulated tick and simulated events per second
			// of benchmark time.
			if totalTicks > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalTicks), "ns/tick")
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(totalEvents)/secs, "events/sec")
			}
		})
	}
}

// BenchmarkParallelStepFaults is BenchmarkParallelStep with the
// "mixed" fault scenario active: the same tick loop now pays the
// injector's pure-hash verdict on every request plus the client-side
// retry/breaker machinery. Comparing ns/tick against the faults-off
// run bounds the injection overhead (target: the faults-off numbers in
// BenchmarkParallelStep move by under 5%, since a nil injector is one
// pointer check).
func BenchmarkParallelStepFaults(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			totalTicks, totalEvents := 0, 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := footsteps.TestConfig()
				cfg.Days = 10
				cfg.Workers = workers
				cfg.Faults = faults.MustScenario("mixed")
				w := core.NewWorld(cfg)
				w.RunAll()
				deadline := w.Plat.Now().Add(time.Duration(cfg.Days) * clock.Day)
				events := 0
				w.Plat.Log().Subscribe(func(platform.Event) { events++ })
				b.StartTimer()
				for {
					at, ran := w.Sched.StepTick()
					if ran == 0 || at.After(deadline) {
						break
					}
					totalTicks++
				}
				totalEvents += events
			}
			b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/op")
			b.ReportMetric(float64(totalEvents)/float64(b.N), "events/op")
			if totalTicks > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalTicks), "ns/tick")
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(totalEvents)/secs, "events/sec")
			}
		})
	}
}

// BenchmarkShardedStep crosses lock-stripe counts with worker-pool
// sizes on the same tick loop as BenchmarkParallelStep. The event
// stream is byte-identical at every (shards, workers) point (see
// internal/simtest); this quantifies the wall-clock side: with
// physical cores available, higher shard counts cut planner/apply
// rendezvous on the platform's stripes, and shards=1 reproduces the
// old single-global-lock layout as the baseline.
func BenchmarkShardedStep(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				totalTicks, totalEvents := 0, 0
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cfg := footsteps.NewTest(
						footsteps.WithDays(10),
						footsteps.WithWorkers(workers),
						footsteps.WithShards(shards),
					)
					w := core.NewWorld(cfg)
					w.RunAll()
					deadline := w.Plat.Now().Add(time.Duration(cfg.Days) * clock.Day)
					events := 0
					w.Plat.Log().Subscribe(func(platform.Event) { events++ })
					b.StartTimer()
					for {
						at, ran := w.Sched.StepTick()
						if ran == 0 || at.After(deadline) {
							break
						}
						totalTicks++
					}
					totalEvents += events
				}
				b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/op")
				b.ReportMetric(float64(totalEvents)/float64(b.N), "events/op")
				if totalTicks > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalTicks), "ns/tick")
				}
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(totalEvents)/secs, "events/sec")
				}
			})
		}
	}
}

// BenchmarkAblationAPI quantifies why AASs spoof the private mobile API:
// the public OAuth surface is rate-limited into uselessness (§2).
func BenchmarkAblationAPI(b *testing.B) {
	run := func(b *testing.B, api platform.APIKind) int {
		cfg := footsteps.TestConfig()
		cfg.GraphWrites = true
		cfg.PoolSize = 1500
		w := core.NewWorld(cfg)
		svc := w.Recip[aas.NameBoostgram]
		svc.SetAPI(api)
		hp, err := w.Honeypots.Create(0)
		if err != nil {
			b.Fatal(err)
		}
		c, err := svc.EnrollTrial(hp.Username, hp.Password, aas.OfferLike)
		if err != nil {
			b.Fatal(err)
		}
		delivered := 0
		w.Plat.Log().Subscribe(func(ev platform.Event) {
			if ev.Actor == c.Account && ev.Type == platform.ActionLike && ev.Outcome == platform.OutcomeAllowed {
				delivered++
			}
		})
		w.Sched.RunFor(2 * clock.Day)
		return delivered
	}
	b.Run("private", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = run(b, platform.APIPrivate)
		}
		b.ReportMetric(float64(n)/2, "likes-per-day")
	})
	b.Run("oauth", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = run(b, platform.APIOAuth)
		}
		b.ReportMetric(float64(n)/2, "likes-per-day")
	})
}

// BenchmarkAllocStep is the allocation-focused twin of
// BenchmarkParallelStep: the same 10-day tick loop, run with -benchmem
// semantics (ReportAllocs), once with the scratch pools on (the default)
// and once with them disabled. The pooled/unpooled delta is the measured
// value of the zero-allocation work — scripts/bench.sh records both arms
// in BENCH_PR5.json, and the alloc-budget tests pin the per-function
// pieces this aggregate is made of.
func BenchmarkAllocStep(b *testing.B) {
	for _, pooled := range []bool{true, false} {
		name := "pooled"
		if !pooled {
			name = "unpooled"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			totalTicks, totalEvents := 0, 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := footsteps.TestConfig()
				cfg.Days = 10
				cfg.Workers = 1
				cfg.DisableScratchReuse = !pooled
				w := core.NewWorld(cfg)
				w.RunAll()
				deadline := w.Plat.Now().Add(time.Duration(cfg.Days) * clock.Day)
				events := 0
				w.Plat.Log().Subscribe(func(platform.Event) { events++ })
				b.StartTimer()
				for {
					at, ran := w.Sched.StepTick()
					if ran == 0 || at.After(deadline) {
						break
					}
					totalTicks++
				}
				totalEvents += events
			}
			b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/op")
			b.ReportMetric(float64(totalEvents)/float64(b.N), "events/op")
			if totalTicks > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalTicks), "ns/tick")
			}
		})
	}
}

// BenchmarkScaleWorld is the BENCH_SCALE arm: a million-account,
// 90-day world — the paper's full population at its full measurement
// window — exercising the struct-of-arrays account tables, compact
// adjacency, and dense per-account tallies at the scale they were
// built for. Beyond ns/tick it reports the two numbers the scale work
// is judged on: live B/account (heap after a final GC over resident
// account rows) and the peak heap high-water mark, sampled once per
// simulated day (ReadMemStats daily is noise next to a day of ticks).
//
// At ~1 GiB live this benchmark is deliberately absent from the
// default scripts/bench.sh sweep; run it via BENCH_SCALE=1
// scripts/bench.sh or directly:
//
//	go test -run '^$' -bench ScaleWorld -benchtime 1x -timeout 60m .
func BenchmarkScaleWorld(b *testing.B) {
	const accounts = 1_000_000
	const days = 90
	totalTicks := 0
	var peakHeap, liveHeap uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := footsteps.TestConfig()
		cfg.Days = days
		cfg.OrganicPopulation = accounts
		cfg.Workers = 8
		w := core.NewWorld(cfg)
		w.RunAll()
		deadline := w.Plat.Now().Add(time.Duration(days) * clock.Day)
		nextSample := w.Plat.Now().Add(clock.Day)
		b.StartTimer()
		for {
			at, ran := w.Sched.StepTick()
			if ran == 0 || at.After(deadline) {
				break
			}
			totalTicks++
			if at.After(nextSample) {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap {
					peakHeap = ms.HeapAlloc
				}
				nextSample = nextSample.Add(clock.Day)
			}
		}
		b.StopTimer()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		liveHeap = ms.HeapAlloc
		if liveHeap > peakHeap {
			peakHeap = liveHeap
		}
		// The world must survive until after the post-GC measurement, or
		// the collector is free to reap the very tables being sized.
		runtime.KeepAlive(w)
	}
	b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/op")
	if totalTicks > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalTicks), "ns/tick")
	}
	b.ReportMetric(float64(liveHeap)/float64(accounts), "B/account")
	b.ReportMetric(float64(peakHeap)/(1<<20), "peak-heap-MiB")
}

// BenchmarkSnapshot prices the persistence layer on the same 10-day
// world the step benchmarks use: encode measures a full FSNAP1 world
// snapshot (reporting its size, since checkpoint cadence × size is the
// disk budget), restore measures the whole resume path — reconstruct
// the world from config, fast-forward the scheduler, and overlay the
// snapshotted state. Restore is deliberately end-to-end: that is the
// wall-clock cost a crashed run pays before it emits its first resumed
// event.
func BenchmarkSnapshot(b *testing.B) {
	cfg := footsteps.TestConfig()
	cfg.Days = 10
	w := core.NewWorld(cfg)
	w.RunAll()
	if err := w.RunDays(cfg.Days); err != nil {
		b.Fatal(err)
	}

	b.Run("encode", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := w.Snapshot(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "snap-bytes")
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(buf.Len())*float64(b.N)/secs/1e6, "MB/sec")
		}
	})

	var snap bytes.Buffer
	if err := w.Snapshot(&snap); err != nil {
		b.Fatal(err)
	}
	b.Run("restore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RestoreWorld(cfg, bytes.NewReader(snap.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(snap.Len()), "snap-bytes")
	})
}

// BenchmarkTraceStep measures the cost of FTRC1 span tracing on the
// 10-day tick loop across sample rates: off (nil tracer — the shipping
// default, which must stay within the PR 5 alloc budgets), a sparse
// 1/1024 production rate, a dense 1/16 rate, and the full 1/1 firehose.
// Trace bytes go to io.Discard so the numbers isolate span assembly and
// encoding, not disk. The tracing-off row is the regression guard: a
// disabled tracer costs one nil check per request, so its ns/tick must
// match BenchmarkParallelStep within noise; the 1/1024 row bounds the
// recommended always-on overhead (target ≤5% over off).
func BenchmarkTraceStep(b *testing.B) {
	for _, sampleN := range []uint64{0, 1024, 16, 1} {
		name := "off"
		if sampleN > 0 {
			name = fmt.Sprintf("sample=1_%d", sampleN)
		}
		b.Run(name, func(b *testing.B) {
			totalTicks, totalEvents := 0, 0
			var totalSpans uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := footsteps.TestConfig()
				cfg.Days = 10
				cfg.Workers = 4
				var tr *trace.Tracer
				if sampleN > 0 {
					var err error
					tr, err = trace.New(io.Discard, cfg.Seed, sampleN)
					if err != nil {
						b.Fatal(err)
					}
					cfg.Trace = tr
				}
				w := core.NewWorld(cfg)
				w.RunAll()
				deadline := w.Plat.Now().Add(time.Duration(cfg.Days) * clock.Day)
				events := 0
				w.Plat.Log().Subscribe(func(platform.Event) { events++ })
				b.StartTimer()
				for {
					at, ran := w.Sched.StepTick()
					if ran == 0 || at.After(deadline) {
						break
					}
					totalTicks++
				}
				b.StopTimer()
				if tr != nil {
					if err := tr.Close(); err != nil {
						b.Fatal(err)
					}
					totalSpans += tr.Spans()
				}
				b.StartTimer()
				totalEvents += events
			}
			b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/op")
			b.ReportMetric(float64(totalEvents)/float64(b.N), "events/op")
			b.ReportMetric(float64(totalSpans)/float64(b.N), "spans/op")
			if totalTicks > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalTicks), "ns/tick")
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(totalEvents)/secs, "events/sec")
			}
		})
	}
}

// BenchmarkDurableStep measures what crash-tolerant durability costs on
// the same 10-day tick loop: off (the PR 7 recording path — a plain
// eventio.Writer streaming FSEV1 to a file, no crash tolerance), on
// with batched fsync (the default — frames buffer in the live segment
// and fsync only at the daily checkpoint), and on with
// fsync-every-batch (maximal durability: every cut frame is synced
// before the loop continues). All three modes take the identical daily
// FSNAP1 checkpoint — off writes it with persistence.AtomicWriteFile,
// exactly like `record -checkpoint-every 1` — so snapshot encode cost
// and its GC pressure cancel out of the comparison; the checkpoint
// itself is a once-per-day fixed cost, timed separately and reported
// as ckpt-ns (compare BenchmarkSnapshot/encode). ns/tick times the
// steady-state loop — Append, frame cuts, and the per-batch fsyncs of
// fsync-every mode — which is where the ≤15% batched-mode budget
// applies (docs/PERSISTENCE.md).
func BenchmarkDurableStep(b *testing.B) {
	modes := []struct {
		name       string
		durable    bool
		fsyncEvery bool
	}{
		{"off", false, false},
		{"batched", true, false},
		{"fsync-every", true, true},
	}
	for _, m := range modes {
		b.Run("mode="+m.name, func(b *testing.B) {
			totalTicks, totalEvents, totalCkpts := 0, 0, 0
			var ckptTime time.Duration
			var plainFile *os.File
			var plainWriter *eventio.Writer
			var plainDir string
			var snapBuf bytes.Buffer
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := footsteps.TestConfig()
				cfg.Days = 10
				cfg.Workers = 4
				w := core.NewWorld(cfg)
				events := 0
				w.Plat.Log().Subscribe(func(platform.Event) { events++ })
				var dlog *durable.Log
				if m.durable {
					var err error
					dlog, err = durable.Create(durable.OSFS{}, b.TempDir()+"/log", durable.Options{
						Seed: cfg.Seed, Fingerprint: cfg.Fingerprint(), FsyncEveryBatch: m.fsyncEvery,
					})
					if err != nil {
						b.Fatal(err)
					}
					w.Plat.Log().Subscribe(func(ev platform.Event) { _ = dlog.Append(ev) })
				} else {
					plainDir = b.TempDir()
					f, err := os.Create(plainDir + "/capture.fsev")
					if err != nil {
						b.Fatal(err)
					}
					wr, err := eventio.NewWriter(f)
					if err != nil {
						b.Fatal(err)
					}
					wr.Attach(w.Plat.Log())
					plainFile, plainWriter = f, wr
				}
				w.RunAll()
				start := w.Plat.Now()
				deadline := start.Add(time.Duration(cfg.Days) * clock.Day)
				nextDay := start.Add(clock.Day)
				day := 0
				b.StartTimer()
				for {
					at, ran := w.Sched.StepTick()
					if ran == 0 || at.After(deadline) {
						break
					}
					totalTicks++
					if !at.Before(nextDay) {
						day++
						b.StopTimer()
						ckptStart := time.Now()
						if dlog != nil {
							if err := dlog.Checkpoint(day, w.Snapshot); err != nil {
								b.Fatal(err)
							}
						} else {
							snapBuf.Reset()
							if err := w.Snapshot(&snapBuf); err != nil {
								b.Fatal(err)
							}
							if err := persistence.AtomicWriteFile(
								fmt.Sprintf("%s/ckpt-day-%03d.fsnap", plainDir, day), snapBuf.Bytes()); err != nil {
								b.Fatal(err)
							}
						}
						ckptTime += time.Since(ckptStart)
						totalCkpts++
						nextDay = nextDay.Add(clock.Day)
						b.StartTimer()
					}
				}
				b.StopTimer()
				if dlog != nil {
					if err := dlog.Close(); err != nil {
						b.Fatal(err)
					}
				}
				if plainWriter != nil {
					if err := plainWriter.Flush(); err != nil {
						b.Fatal(err)
					}
					plainFile.Close()
					plainWriter, plainFile = nil, nil
				}
				totalEvents += events
				b.StartTimer()
			}
			b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/op")
			b.ReportMetric(float64(totalEvents)/float64(b.N), "events/op")
			if totalTicks > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalTicks), "ns/tick")
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(totalEvents)/secs, "events/sec")
			}
			if totalCkpts > 0 {
				b.ReportMetric(float64(ckptTime.Nanoseconds())/float64(totalCkpts), "ckpt-ns")
			}
		})
	}
}
