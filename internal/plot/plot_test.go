package plot

import (
	"math"
	"strings"
	"testing"
)

func sampleChart() Chart {
	return Chart{
		Title:  "Boostgram follows/user/day",
		XLabel: "day",
		YLabel: "median follows",
		HLine:  74,
		Series: []Series{
			{Name: "block", X: []float64{0, 1, 2}, Y: []float64{68, 74, 74}},
			{Name: "control", X: []float64{0, 1, 2}, Y: []float64{76, 80, 78}, Dashed: true},
		},
	}
}

func TestSVGStructure(t *testing.T) {
	t.Parallel()
	svg := sampleChart().SVG()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Boostgram follows/user/day",
		"block", "control", "stroke-dasharray=\"2,4\"", // threshold line
		"stroke-dasharray=\"6,4\"", // dashed series
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q:\n%s", want, svg[:200])
		}
	}
	// Two polylines, one per series.
	if n := strings.Count(svg, "<polyline"); n != 2 {
		t.Fatalf("polylines %d", n)
	}
}

func TestSVGEscapesText(t *testing.T) {
	t.Parallel()
	c := Chart{Title: `a<b & "c"`, HLine: math.NaN()}
	svg := c.SVG()
	if strings.Contains(svg, `a<b`) {
		t.Fatal("unescaped title")
	}
	if !strings.Contains(svg, "a&lt;b &amp; &quot;c&quot;") {
		t.Fatalf("escape output wrong:\n%s", svg)
	}
}

func TestSVGEmptyChart(t *testing.T) {
	t.Parallel()
	c := Chart{Title: "empty", HLine: math.NaN()}
	svg := c.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("empty chart did not render a document")
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("degenerate coordinates leaked into SVG")
	}
}

func TestSVGSkipsNaNPoints(t *testing.T) {
	t.Parallel()
	c := Chart{
		HLine: math.NaN(),
		Series: []Series{{
			Name: "gappy",
			X:    []float64{0, 1, 2, 3},
			Y:    []float64{1, math.NaN(), 3, 4},
		}},
	}
	svg := c.SVG()
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN leaked into SVG coordinates")
	}
	// Three valid points survive.
	poly := svg[strings.Index(svg, "points=\""):]
	poly = poly[:strings.Index(poly, "\"/>")]
	if got := strings.Count(poly, ","); got != 3 {
		t.Fatalf("points %q", poly)
	}
}

func TestSVGConstantSeries(t *testing.T) {
	t.Parallel()
	c := Chart{
		HLine:  math.NaN(),
		Series: []Series{{Name: "flat", X: []float64{0, 1}, Y: []float64{5, 5}}},
	}
	svg := c.SVG()
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("flat series produced degenerate scaling")
	}
}

func TestTickFormatting(t *testing.T) {
	t.Parallel()
	cases := map[float64]string{
		1500: "1500", 42: "42", 3.25: "3.2", 0.5: "0.50",
	}
	for v, want := range cases {
		if got := tick(v); got != want {
			t.Errorf("tick(%v) = %q, want %q", v, got, want)
		}
	}
}
