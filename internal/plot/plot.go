// Package plot renders the study's figures as standalone SVG documents
// using only the standard library — line charts for the intervention day
// series (Figures 5–7) and step plots for the degree CDFs (Figures 3/4).
//
// The output is deliberately plain: axes, ticks, legend, series in
// distinguishable dash patterns. It is meant for quick inspection and for
// dropping into a README, not as a charting library.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Dashed bool
}

// Chart describes one SVG figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// HLine draws a horizontal reference line (the threshold in Figure 5);
	// NaN disables it.
	HLine float64

	W, H int // canvas size; zero means 720×400
}

// palette cycles through visually distinct stroke colors.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const margin = 56.0

// SVG renders the chart.
func (c Chart) SVG() string {
	w, h := float64(c.W), float64(c.H)
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 400
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				continue
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if !math.IsNaN(c.HLine) && !math.IsInf(c.HLine, 0) {
		minY, maxY = math.Min(minY, c.HLine), math.Max(maxY, c.HLine)
	}
	if math.IsInf(minX, 1) { // no data at all
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if minY > 0 {
		minY = 0 // anchor rate/count axes at zero
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	px := func(x float64) float64 { return margin + (x-minX)/(maxX-minX)*(w-2*margin) }
	py := func(y float64) float64 { return h - margin - (y-minY)/(maxY-minY)*(h-2*margin) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%.0f" y="24" font-family="sans-serif" font-size="15" text-anchor="middle" font-weight="bold">%s</text>`+"\n", w/2, esc(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", margin, h-margin, w-margin, h-margin)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", margin, margin/2+10, margin, h-margin)
	fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n", w/2, h-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.0f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.0f)">%s</text>`+"\n", h/2, h/2, esc(c.YLabel))

	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", px(fx), h-margin, px(fx), h-margin+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n", px(fx), h-margin+18, tick(fx))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", margin-5, py(fy), margin, py(fy))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n", margin-8, py(fy)+4, tick(fy))
	}

	// Reference line.
	if !math.IsNaN(c.HLine) && !math.IsInf(c.HLine, 0) {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="gray" stroke-dasharray="2,4"/>`+"\n",
			margin, py(c.HLine), w-margin, py(c.HLine))
	}

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) == 0 {
			continue
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8"%s points="%s"/>`+"\n",
			color, dash, strings.Join(pts, " "))
		// Legend entry.
		ly := margin/2 + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"%s/>`+"\n",
			w-margin-130, ly, w-margin-106, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			w-margin-100, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func tick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
