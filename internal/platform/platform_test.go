package platform

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/socialgraph"
)

// testWorld bundles a platform with its substrates for tests.
type testWorld struct {
	p     *Platform
	sched *clock.Scheduler
	reg   *netsim.Registry
}

func newWorld(t *testing.T, cfg Config) *testWorld {
	t.Helper()
	reg := netsim.NewRegistry()
	reg.Register(10, "home-isp", "USA", netsim.KindResidential)
	reg.Register(20, "aas-dc", "RUS", netsim.KindHosting)
	sched := clock.NewScheduler(clock.New())
	p := New(cfg, socialgraph.New(), reg, sched)
	return &testWorld{p: p, sched: sched, reg: reg}
}

func (w *testWorld) register(t *testing.T, name string) AccountID {
	t.Helper()
	id, err := w.p.RegisterAccount(name, "pw-"+name, Profile{PhotoCount: 10}, "USA")
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func (w *testWorld) login(t *testing.T, name string, asn netsim.ASN) *Session {
	t.Helper()
	s, err := w.p.Login(name, "pw-"+name, ClientInfo{
		IP: w.reg.Allocate(asn), Fingerprint: "test-client", API: APIPrivate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegisterAndLogin(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	id := w.register(t, "alice")
	if !w.p.Exists(id) {
		t.Fatal("account missing after registration")
	}
	s := w.login(t, "alice", 10)
	if s.Account() != id {
		t.Fatalf("session account %d, want %d", s.Account(), id)
	}
	// Initial photos become posts.
	if got := len(w.p.Posts(id)); got != 10 {
		t.Fatalf("initial posts = %d, want 10", got)
	}
}

func TestDuplicateUsername(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	if _, err := w.p.RegisterAccount("alice", "x", Profile{}, "USA"); !errors.Is(err, ErrUsernameTaken) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadCredentials(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	if _, err := w.p.Login("alice", "wrong", ClientInfo{}); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.p.Login("nobody", "x", ClientInfo{}); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("err = %v", err)
	}
}

func TestActionsMutateGraph(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	a := w.register(t, "alice")
	b := w.register(t, "bob")
	sa := w.login(t, "alice", 10)

	if err := sa.Do(Request{Action: ActionFollow, Target: b}).Err; err != nil {
		t.Fatal(err)
	}
	if !w.p.Graph().Follows(a, b) {
		t.Fatal("follow not applied to graph")
	}
	pid, ok := w.p.LatestPost(b)
	if !ok {
		t.Fatal("bob has no posts")
	}
	if err := sa.Do(Request{Action: ActionLike, Post: pid}).Err; err != nil {
		t.Fatal(err)
	}
	if w.p.LikeCount(pid) != 1 {
		t.Fatal("like not applied")
	}
	if err := sa.Do(Request{Action: ActionComment, Post: pid, Text: "nice"}).Err; err != nil {
		t.Fatal(err)
	}
	if got := w.p.Graph().Comments(pid); len(got) != 1 {
		t.Fatalf("comments = %d", len(got))
	}
	if err := sa.Do(Request{Action: ActionUnfollow, Target: b}).Err; err != nil {
		t.Fatal(err)
	}
	if w.p.Graph().Follows(a, b) {
		t.Fatal("unfollow not applied")
	}
	postResp := sa.Do(Request{Action: ActionPost})
	newPid, err := postResp.Post, postResp.Err
	if err != nil {
		t.Fatal(err)
	}
	if author, _ := w.p.PostAuthor(newPid); author != a {
		t.Fatal("post author wrong")
	}
}

func TestStatelessMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphWrites = false
	w := newWorld(t, cfg)
	a := w.register(t, "alice")
	b := w.register(t, "bob")
	sa := w.login(t, "alice", 10)

	if err := sa.Do(Request{Action: ActionFollow, Target: b}).Err; err != nil {
		t.Fatal(err)
	}
	// The graph is untouched...
	if w.p.Graph().Follows(a, b) {
		t.Fatal("stateless mode wrote to graph")
	}
	// ...but events flow and like counts still accumulate.
	pid, _ := w.p.LatestPost(b)
	if err := sa.Do(Request{Action: ActionLike, Post: pid}).Err; err != nil {
		t.Fatal(err)
	}
	if w.p.LikeCount(pid) != 1 {
		t.Fatal("stateless like count missing")
	}
	if err := sa.Do(Request{Action: ActionPost}).Err; err != nil {
		t.Fatal(err)
	}
	if got := len(w.p.Posts(a)); got != 11 {
		t.Fatalf("posts = %d, want 11", got)
	}
}

func TestEventStream(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	col := (&Collector{}).Attach(w.p.Log())
	w.register(t, "alice")
	b := w.register(t, "bob")
	sa := w.login(t, "alice", 20)
	sa.Do(Request{Action: ActionFollow, Target: b})

	if len(col.Events) != 2 {
		t.Fatalf("events = %d, want 2 (login+follow)", len(col.Events))
	}
	login, follow := col.Events[0], col.Events[1]
	if login.Type != ActionLogin || follow.Type != ActionFollow {
		t.Fatalf("event types %v %v", login.Type, follow.Type)
	}
	if follow.ASN != 20 {
		t.Fatalf("event ASN = %d, want 20", follow.ASN)
	}
	if follow.Target != b || follow.Outcome != OutcomeAllowed {
		t.Fatalf("follow event %+v", follow)
	}
	if follow.Seq <= login.Seq {
		t.Fatal("sequence numbers not increasing")
	}
}

func TestPasswordResetRevokesSession(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	b := w.register(t, "bob")
	sa := w.login(t, "alice", 10)
	if err := w.p.ResetPassword(sa.Account(), "newpw"); err != nil {
		t.Fatal(err)
	}
	if err := sa.Do(Request{Action: ActionFollow, Target: b}).Err; !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("err = %v, want ErrSessionRevoked", err)
	}
	// New login with new password works.
	if _, err := w.p.Login("alice", "newpw", ClientInfo{IP: w.reg.Allocate(10)}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAccount(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	a := w.register(t, "alice")
	sa := w.login(t, "alice", 10)
	if err := w.p.DeleteAccount(a); err != nil {
		t.Fatal(err)
	}
	if w.p.Exists(a) {
		t.Fatal("account exists after deletion")
	}
	if err := sa.Do(Request{Action: ActionPost}).Err; !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("err = %v", err)
	}
	if err := w.p.DeleteAccount(a); !errors.Is(err, ErrAccountGone) {
		t.Fatalf("double delete err = %v", err)
	}
	// Username is freed.
	if _, err := w.p.RegisterAccount("alice", "x", Profile{}, "USA"); err != nil {
		t.Fatalf("username not freed: %v", err)
	}
}

func TestGatekeeperBlock(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	b := w.register(t, "bob")
	var seen []Event
	w.p.SetGatekeeper(GatekeeperFunc(func(req Event) Verdict {
		seen = append(seen, req)
		if req.Type == ActionFollow {
			return Verdict{Kind: VerdictBlock}
		}
		return Allow
	}))
	col := (&Collector{Filter: func(e Event) bool { return e.Outcome == OutcomeBlocked }}).Attach(w.p.Log())
	sa := w.login(t, "alice", 20)

	if err := sa.Do(Request{Action: ActionFollow, Target: b}).Err; !errors.Is(err, ErrBlocked) {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
	if w.p.Graph().Follows(sa.Account(), b) {
		t.Fatal("blocked follow applied to graph")
	}
	if len(col.Events) != 1 {
		t.Fatalf("blocked events = %d", len(col.Events))
	}
	// Gatekeeper saw the resolved ASN.
	if len(seen) == 0 || seen[len(seen)-1].ASN != 20 {
		t.Fatal("gatekeeper did not see resolved ASN")
	}
	// Likes pass.
	pid, _ := w.p.LatestPost(b)
	if err := sa.Do(Request{Action: ActionLike, Post: pid}).Err; err != nil {
		t.Fatal(err)
	}
}

func TestGatekeeperDelayRemove(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	a := w.register(t, "alice")
	b := w.register(t, "bob")
	w.p.SetGatekeeper(GatekeeperFunc(func(req Event) Verdict {
		if req.Type == ActionFollow {
			return Verdict{Kind: VerdictDelayRemove, RemoveAfter: 24 * time.Hour}
		}
		return Allow
	}))
	var removals []Event
	w.p.Log().Subscribe(func(ev Event) {
		if ev.Enforcement {
			removals = append(removals, ev)
		}
	})
	sa := w.login(t, "alice", 20)

	// The action succeeds from the service's perspective.
	if err := sa.Do(Request{Action: ActionFollow, Target: b}).Err; err != nil {
		t.Fatal(err)
	}
	if !w.p.Graph().Follows(a, b) {
		t.Fatal("delayed follow not applied")
	}
	// 12 hours later it is still there...
	w.sched.RunFor(12 * time.Hour)
	if !w.p.Graph().Follows(a, b) {
		t.Fatal("follow removed too early")
	}
	// ...but a day after the action it is gone, with an enforcement event.
	w.sched.RunFor(13 * time.Hour)
	if w.p.Graph().Follows(a, b) {
		t.Fatal("follow not removed after delay")
	}
	if len(removals) != 1 || removals[0].Type != ActionUnfollow || !removals[0].Enforcement {
		t.Fatalf("removals = %+v", removals)
	}
}

func TestDelayRemoveOnLikeDegradesToAllow(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	b := w.register(t, "bob")
	w.p.SetGatekeeper(GatekeeperFunc(func(req Event) Verdict {
		return Verdict{Kind: VerdictDelayRemove, RemoveAfter: time.Hour}
	}))
	sa := w.login(t, "alice", 20)
	pid, _ := w.p.LatestPost(b)
	if err := sa.Do(Request{Action: ActionLike, Post: pid}).Err; err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(3 * time.Hour)
	if w.p.LikeCount(pid) != 1 {
		t.Fatal("like removed; delay-remove must not apply to likes")
	}
}

func TestDelayedRemovalSkipsManualUnfollow(t *testing.T) {
	// If the user (or AAS) already unfollowed, the scheduled removal must
	// not emit a spurious enforcement event.
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	b := w.register(t, "bob")
	w.p.SetGatekeeper(GatekeeperFunc(func(req Event) Verdict {
		if req.Type == ActionFollow {
			return Verdict{Kind: VerdictDelayRemove, RemoveAfter: 24 * time.Hour}
		}
		return Allow
	}))
	removals := 0
	w.p.Log().Subscribe(func(ev Event) {
		if ev.Enforcement {
			removals++
		}
	})
	sa := w.login(t, "alice", 20)
	sa.Do(Request{Action: ActionFollow, Target: b})
	sa.Do(Request{Action: ActionUnfollow, Target: b})
	w.sched.RunFor(48 * time.Hour)
	if removals != 0 {
		t.Fatalf("enforcement removal fired %d times after manual unfollow", removals)
	}
}

func TestRateLimits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrivateHourlyLimit = 5
	w := newWorld(t, cfg)
	w.register(t, "alice")
	b := w.register(t, "bob")
	sa := w.login(t, "alice", 10)
	pid, _ := w.p.LatestPost(b)

	for i := 0; i < 5; i++ {
		if err := sa.Do(Request{Action: ActionLike, Post: pid}).Err; err != nil && !errors.Is(err, nil) {
			// duplicate likes are fine at the graph level; only rate
			// limiting matters here
			t.Fatal(err)
		}
	}
	if err := sa.Do(Request{Action: ActionComment, Post: pid, Text: "x"}).Err; !errors.Is(err, ErrRateLimited) {
		t.Fatalf("6th action err = %v, want ErrRateLimited", err)
	}
	// The next hour opens a fresh budget.
	w.sched.Clock().Advance(time.Hour)
	if err := sa.Do(Request{Action: ActionComment, Post: pid, Text: "x"}).Err; err != nil {
		t.Fatalf("after window reset: %v", err)
	}
}

func TestOAuthLimitTighter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OAuthHourlyLimit = 2
	cfg.PrivateHourlyLimit = 100
	w := newWorld(t, cfg)
	w.register(t, "alice")
	b := w.register(t, "bob")
	s, err := w.p.Login("alice", "pw-alice", ClientInfo{IP: w.reg.Allocate(10), API: APIOAuth})
	if err != nil {
		t.Fatal(err)
	}
	pid, _ := w.p.LatestPost(b)
	s.Do(Request{Action: ActionLike, Post: pid})
	s.Do(Request{Action: ActionComment, Post: pid, Text: "a"})
	if err := s.Do(Request{Action: ActionComment, Post: pid, Text: "b"}).Err; !errors.Is(err, ErrRateLimited) {
		t.Fatalf("oauth 3rd action err = %v", err)
	}
}

func TestMostFrequentLoginCountry(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	// Two logins from USA (ASN 10), one from RUS (ASN 20).
	for _, asn := range []netsim.ASN{10, 10, 20} {
		w.login(t, "alice", asn)
	}
	id, _ := w.p.byUsername["alice"], struct{}{}
	c, ok := w.p.MostFrequentLoginCountry(id)
	if !ok || c != "USA" {
		t.Fatalf("country = %q, %v", c, ok)
	}
}

func TestMostFrequentLoginCountryNoLogins(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	id := w.register(t, "alice")
	if _, ok := w.p.MostFrequentLoginCountry(id); ok {
		t.Fatal("country reported for account with no logins")
	}
}

func TestActionsOnMissingTargets(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	sa := w.login(t, "alice", 10)
	if err := sa.Do(Request{Action: ActionFollow, Target: AccountID(9999)}).Err; err == nil {
		t.Fatal("follow of missing account succeeded")
	}
	if err := sa.Do(Request{Action: ActionLike, Post: PostID(9999)}).Err; err == nil {
		t.Fatal("like of missing post succeeded")
	}
	if err := sa.Do(Request{Action: ActionComment, Post: PostID(9999), Text: "x"}).Err; err == nil {
		t.Fatal("comment on missing post succeeded")
	}
}

func TestProfileLivedIn(t *testing.T) {
	full := Profile{PhotoCount: 12, HasProfilePic: true, HasBio: true, HasName: true}
	if !full.LivedIn() {
		t.Fatal("full profile not lived-in")
	}
	for _, p := range []Profile{
		{PhotoCount: 5, HasProfilePic: true, HasBio: true, HasName: true},
		{PhotoCount: 12, HasBio: true, HasName: true},
		{PhotoCount: 12, HasProfilePic: true, HasName: true},
		{PhotoCount: 12, HasProfilePic: true, HasBio: true},
	} {
		if p.LivedIn() {
			t.Fatalf("profile %+v should not be lived-in", p)
		}
	}
}

func TestActionTypeAndOutcomeStrings(t *testing.T) {
	cases := map[string]string{
		ActionLike.String():         "like",
		ActionFollow.String():       "follow",
		ActionUnfollow.String():     "unfollow",
		ActionComment.String():      "comment",
		ActionPost.String():         "post",
		ActionLogin.String():        "login",
		OutcomeAllowed.String():     "allowed",
		OutcomeBlocked.String():     "blocked",
		OutcomeRateLimited.String(): "rate-limited",
		OutcomeFailed.String():      "failed",
		APIOAuth.String():           "oauth",
		APIPrivate.String():         "private",
	}
	for got, want := range cases {
		if got != want {
			t.Fatalf("string %q != %q", got, want)
		}
	}
	if ActionType(99).String() != "unknown" || Outcome(99).String() != "unknown" {
		t.Fatal("unknown enum strings")
	}
}

func TestConcurrentActionsAreSafe(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	ids := make([]AccountID, 10)
	for i := range ids {
		ids[i] = w.register(t, fmt.Sprintf("user%d", i))
	}
	w.p.Log().Subscribe(func(Event) {})
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		i := i
		go func() {
			defer func() { done <- struct{}{} }()
			s := w.login(t, fmt.Sprintf("user%d", i), 10)
			for j := 0; j < 100; j++ {
				s.Do(Request{Action: ActionFollow, Target: ids[(i+j+1)%len(ids)]})
				s.Do(Request{Action: ActionUnfollow, Target: ids[(i+j+1)%len(ids)]})
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}

func TestDuplicateActionsFlagged(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	b := w.register(t, "bob")
	col := (&Collector{Filter: func(e Event) bool { return e.Type == ActionLike }}).Attach(w.p.Log())
	sa := w.login(t, "alice", 10)
	pid, _ := w.p.LatestPost(b)
	sa.Do(Request{Action: ActionLike, Post: pid})
	sa.Do(Request{Action: ActionLike, Post: pid})
	if len(col.Events) != 2 {
		t.Fatalf("like events = %d", len(col.Events))
	}
	if col.Events[0].Duplicate {
		t.Fatal("first like marked duplicate")
	}
	if !col.Events[1].Duplicate {
		t.Fatal("second like not marked duplicate")
	}
	if w.p.LikeCount(pid) != 1 {
		t.Fatalf("like count %d", w.p.LikeCount(pid))
	}
}

func TestHashtagIndex(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	a := w.register(t, "alice")
	sa := w.login(t, "alice", 10)

	tagResp := sa.Do(Request{Action: ActionPost, Tags: []string{"dogs", "cute"}})
	pid1, err := tagResp.Post, tagResp.Err
	if err != nil {
		t.Fatal(err)
	}
	pid2 := sa.Do(Request{Action: ActionPost, Tags: []string{"dogs"}}).Post
	pid3 := sa.Do(Request{Action: ActionPost, Tags: []string{"cats"}}).Post

	dogs := w.p.RecentByTag("dogs", 10)
	if len(dogs) != 2 || dogs[0] != pid2 || dogs[1] != pid1 {
		t.Fatalf("dogs = %v, want newest first [%d %d]", dogs, pid2, pid1)
	}
	if got := w.p.RecentByTag("cats", 10); len(got) != 1 || got[0] != pid3 {
		t.Fatalf("cats = %v", got)
	}
	if got := w.p.RecentByTag("cute", 1); len(got) != 1 || got[0] != pid1 {
		t.Fatalf("cute = %v", got)
	}
	if w.p.RecentByTag("nothing", 5) != nil {
		t.Fatal("unknown tag returned posts")
	}
	if w.p.RecentByTag("dogs", 0) != nil {
		t.Fatal("k=0 returned posts")
	}

	// TagPost on a seed photo.
	seed := w.p.Posts(a)[0]
	if err := w.p.TagPost(a, seed, "retro"); err != nil {
		t.Fatal(err)
	}
	if got := w.p.RecentByTag("retro", 5); len(got) != 1 || got[0] != seed {
		t.Fatalf("retro = %v", got)
	}
	// TagPost by a non-author fails.
	b := w.register(t, "bob")
	if err := w.p.TagPost(b, seed, "hijack"); err == nil {
		t.Fatal("non-author tagged a post")
	}
}

func TestHashtagRingBounded(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	sa := w.login(t, "alice", 10)
	cfg := DefaultConfig()
	cfg.PrivateHourlyLimit = 0 // unbounded for this volume test
	w2 := newWorld(t, cfg)
	w2.register(t, "alice")
	sa = w2.login(t, "alice", 10)
	var last PostID
	for i := 0; i < 300; i++ {
		last = sa.Do(Request{Action: ActionPost, Tags: []string{"flood"}}).Post
	}
	got := w2.p.RecentByTag("flood", 1000)
	if len(got) != 256 {
		t.Fatalf("ring kept %d posts, want 256", len(got))
	}
	if got[0] != last {
		t.Fatal("newest post not first")
	}
	_ = w
}
