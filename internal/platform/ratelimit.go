package platform

import "time"

// hourlyLimiter enforces a per-account actions-per-hour cap using fixed
// hourly buckets on the simulated clock. Fixed windows are what large
// platforms actually deploy for coarse API quotas, and they are what the
// paper's services probe against.
//
// State is two dense arrays indexed by the owning shard's account row:
// the bucket's hour stamp and the count consumed in it. The hour stamp
// doubles as the epoch mark (the PR 5 collusion-dedup trick): a stale
// stamp means the bucket is logically empty and is reset in place on
// first touch of a new hour, so the limiter allocates nothing per
// active account per hour — unlike the map[AccountID]*window it
// replaced, which minted a two-word heap object per account. Stamp 0
// means "never touched": the simulated clock starts decades after the
// Unix epoch, so no real bucket can stamp 0.
//
// The limiter is not internally locked; the platform calls allow while
// holding the owning shard's mutex.
type hourlyLimiter struct {
	hours  []int64 // hours since Unix epoch identifying the bucket; 0 = never touched
	counts []int32
}

func newHourlyLimiter() *hourlyLimiter { return &hourlyLimiter{} }

// ensure grows the arrays to cover row r.
func (l *hourlyLimiter) ensure(r uint32) {
	for int(r) >= len(l.hours) {
		l.hours = append(l.hours, 0)
		l.counts = append(l.counts, 0)
	}
}

// allow records one action attempt by row r at time t and reports
// whether it is within the account's hourly budget. A non-positive
// limit disables the cap.
func (l *hourlyLimiter) allow(r uint32, t time.Time, limit int) bool {
	if limit <= 0 {
		return true
	}
	l.ensure(r)
	hour := t.Unix() / 3600
	if l.hours[r] != hour {
		l.hours[r] = hour
		l.counts[r] = 0
	}
	if int(l.counts[r]) >= limit {
		return false
	}
	l.counts[r]++
	return true
}

// peek returns the count row r already consumed in t's bucket without
// recording anything — used to attribute a denial to a storm-tightened
// limit versus the ordinary cap.
func (l *hourlyLimiter) peek(r uint32, t time.Time) int {
	if int(r) >= len(l.hours) || l.hours[r] != t.Unix()/3600 {
		return 0
	}
	return int(l.counts[r])
}

// reset drops every bucket (restore path).
func (l *hourlyLimiter) reset() {
	l.hours = l.hours[:0]
	l.counts = l.counts[:0]
}

// set overwrites row r's bucket (restore path).
func (l *hourlyLimiter) set(r uint32, hour int64, count int) {
	l.ensure(r)
	l.hours[r] = hour
	l.counts[r] = int32(count)
}
