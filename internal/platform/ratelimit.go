package platform

import "time"

// hourlyLimiter enforces a per-account actions-per-hour cap using fixed
// hourly buckets on the simulated clock. Fixed windows are what large
// platforms actually deploy for coarse API quotas, and they are what the
// paper's services probe against.
//
// The limiter is not internally locked; the platform calls allow while
// holding its own mutex.
type hourlyLimiter struct {
	counts map[AccountID]*window
}

type window struct {
	hour  int64 // hours since Unix epoch identifying the bucket
	count int
}

func newHourlyLimiter() *hourlyLimiter {
	return &hourlyLimiter{counts: make(map[AccountID]*window)}
}

// allow records one action attempt at time t and reports whether it is
// within the account's hourly budget. A non-positive limit disables the cap.
func (l *hourlyLimiter) allow(id AccountID, t time.Time, limit int) bool {
	if limit <= 0 {
		return true
	}
	hour := t.Unix() / 3600
	w := l.counts[id]
	if w == nil {
		w = &window{hour: hour}
		l.counts[id] = w
	}
	if w.hour != hour {
		w.hour = hour
		w.count = 0
	}
	if w.count >= limit {
		return false
	}
	w.count++
	return true
}

// peek returns the count already consumed in t's bucket without
// recording anything — used to attribute a denial to a storm-tightened
// limit versus the ordinary cap.
func (l *hourlyLimiter) peek(id AccountID, t time.Time) int {
	w := l.counts[id]
	if w == nil || w.hour != t.Unix()/3600 {
		return 0
	}
	return w.count
}
