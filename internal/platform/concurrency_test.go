package platform

import (
	"fmt"
	"sync"
	"testing"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/rng"
	"footsteps/internal/socialgraph"
)

// These tests hammer the platform from many goroutines at once — the
// concurrent-read/serialized-apply contract the parallel stepping pool
// relies on — and then check that shared state still reconciles exactly
// with the event log. They are most meaningful under -race, which CI
// runs them with. The simulated clock is held still during the
// concurrent phase (Clock is not safe for concurrent mutation).

func newConcurrencyPlatform(cfg Config) (*Platform, *netsim.Registry) {
	reg := netsim.NewRegistry()
	reg.Register(10, "res", "USA", netsim.KindResidential)
	sched := clock.NewScheduler(clock.New())
	return New(cfg, socialgraph.New(), reg, sched), reg
}

// TestConcurrentSessionsGraphMatchesEventLog: under an arbitrary
// interleaving of concurrent follow/unfollow traffic, every account's
// follower and following relations must equal what a replay of that
// account's own event sequence predicts. Each goroutine drives its own
// session, so per-actor log order is program order; edge state for a
// (actor, target) pair is touched by exactly one goroutine, making the
// replay exact rather than merely plausible.
func TestConcurrentSessionsGraphMatchesEventLog(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.GraphWrites = true
	cfg.PrivateHourlyLimit = 0 // unthrottled: every allowed action lands
	p, reg := newConcurrencyPlatform(cfg)

	const nActors, nTargets, opsPerActor = 8, 5, 200
	targetIDs := make([]AccountID, nTargets)
	for i := range targetIDs {
		id, err := p.RegisterAccount(fmt.Sprintf("tgt%d", i), "pw", Profile{PhotoCount: 1}, "USA")
		if err != nil {
			t.Fatal(err)
		}
		targetIDs[i] = id
	}
	sessions := make([]*Session, nActors)
	for i := range sessions {
		name := fmt.Sprintf("act%d", i)
		if _, err := p.RegisterAccount(name, "pw", Profile{PhotoCount: 1}, "USA"); err != nil {
			t.Fatal(err)
		}
		s, err := p.Login(name, "pw", ClientInfo{IP: reg.Allocate(10)})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}

	var mu sync.Mutex
	perActor := make(map[AccountID][]Event)
	p.Log().Subscribe(func(ev Event) {
		if ev.Type != ActionFollow && ev.Type != ActionUnfollow {
			return
		}
		mu.Lock()
		perActor[ev.Actor] = append(perActor[ev.Actor], ev)
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			r := rng.New(uint64(i) + 1)
			for k := 0; k < opsPerActor; k++ {
				tgt := targetIDs[r.Intn(len(targetIDs))]
				if r.Bool(0.6) {
					sess.Do(Request{Action: ActionFollow, Target: tgt})
				} else {
					sess.Do(Request{Action: ActionUnfollow, Target: tgt})
				}
			}
		}(i, sess)
	}
	wg.Wait()

	for _, sess := range sessions {
		actor := sess.Account()
		following := make(map[AccountID]bool)
		for _, ev := range perActor[actor] {
			if ev.Outcome != OutcomeAllowed || ev.Duplicate {
				continue
			}
			switch ev.Type {
			case ActionFollow:
				following[ev.Target] = true
			case ActionUnfollow:
				delete(following, ev.Target)
			}
		}
		for _, tgt := range targetIDs {
			if got := p.Graph().Follows(actor, tgt); got != following[tgt] {
				t.Errorf("actor %d → target %d: graph says %v, event replay says %v",
					actor, tgt, got, following[tgt])
			}
		}
		if got := p.Graph().OutDegree(actor); got != len(following) {
			t.Errorf("actor %d: out-degree %d, replay predicts %d", actor, got, len(following))
		}
	}
	for _, tgt := range targetIDs {
		want := 0
		for _, sess := range sessions {
			if p.Graph().Follows(sess.Account(), tgt) {
				want++
			}
		}
		if got := p.Graph().InDegree(tgt); got != want {
			t.Errorf("target %d: in-degree %d, edge census says %d", tgt, got, want)
		}
	}
}

// TestConcurrentRateLimitAccountingStaysInBounds: with concurrent
// sessions hammering a small hourly budget, the limiter's buckets must
// never go negative or exceed the limit, and no account may land more
// allowed actions in the log than the budget permits.
func TestConcurrentRateLimitAccountingStaysInBounds(t *testing.T) {
	t.Parallel()
	const limit = 25
	cfg := DefaultConfig()
	cfg.GraphWrites = true
	cfg.PrivateHourlyLimit = limit
	p, reg := newConcurrencyPlatform(cfg)

	tgt, err := p.RegisterAccount("victim", "pw", Profile{PhotoCount: 2}, "USA")
	if err != nil {
		t.Fatal(err)
	}
	pid, ok := p.LatestPost(tgt)
	if !ok {
		t.Fatal("victim has no post")
	}

	const nActors, opsPerActor = 6, 100
	sessions := make([]*Session, nActors)
	for i := range sessions {
		name := fmt.Sprintf("spam%d", i)
		if _, err := p.RegisterAccount(name, "pw", Profile{PhotoCount: 1}, "USA"); err != nil {
			t.Fatal(err)
		}
		s, err := p.Login(name, "pw", ClientInfo{IP: reg.Allocate(10)})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}

	var mu sync.Mutex
	allowedCount := make(map[AccountID]int)
	p.Log().Subscribe(func(ev Event) {
		if ev.Outcome == OutcomeAllowed && !ev.Enforcement {
			mu.Lock()
			allowedCount[ev.Actor]++
			mu.Unlock()
		}
	})

	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			r := rng.New(uint64(i) + 99)
			for k := 0; k < opsPerActor; k++ {
				switch r.Intn(3) {
				case 0:
					sess.Do(Request{Action: ActionLike, Post: pid})
				case 1:
					sess.Do(Request{Action: ActionFollow, Target: tgt})
				default:
					sess.Do(Request{Action: ActionUnfollow, Target: tgt})
				}
			}
		}(i, sess)
	}
	wg.Wait()

	for _, sess := range sessions {
		if n := allowedCount[sess.Account()]; n > limit {
			t.Errorf("account %d landed %d allowed actions, budget is %d", sess.Account(), n, limit)
		}
	}
	for _, sh := range p.shards {
		for r, hour := range sh.limiter.hours {
			if hour == 0 {
				continue
			}
			if n := sh.limiter.counts[r]; n < 0 || int(n) > limit {
				t.Errorf("limiter bucket for account %d holds %d, want within [0, %d]", sh.tab.id(uint32(r)), n, limit)
			}
		}
	}
}
