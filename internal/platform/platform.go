// Package platform implements the simulated photo-sharing service the study
// runs against: account registration and credentials, login sessions with
// client metadata, the action API (like, follow, unfollow, comment, post),
// ordinary API rate limits, an event stream, and the enforcement hooks that
// countermeasures attach to.
//
// The platform deliberately exposes the same surfaces Instagram exposed in
// the paper:
//
//   - customers hand their credentials to AASs, which then Login and act on
//     their behalf through the (spoofed) private mobile API;
//   - every request carries an IP, resolved to an ASN and country, plus a
//     client fingerprint — the signals detection keys on (§5);
//   - a Gatekeeper interposes on every action and can allow it, block it
//     synchronously, or allow it and schedule deferred removal (§6.1);
//   - resetting an account's password revokes all outstanding sessions,
//     which is exactly how users evict an AAS (§3.3.1).
//
// Every mutation routes through one choke point, Do(Request): a typed
// action envelope carrying the session, client metadata, and payload.
// Session-validity checks, fault injection, rate limiting, gatekeeping,
// state mutation, event emission, and telemetry all happen once, in
// Do's pipeline, instead of being re-wired per action (see
// docs/ARCHITECTURE.md). Mutable state is lock-striped across shards
// keyed by a stable hash of AccountID (see shard.go), so the parallel
// planning phase and independent mutations scale past a single lock.
package platform

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/socialgraph"
	"footsteps/internal/telemetry"
	"footsteps/internal/trace"
)

// AccountID aliases the graph's account identifier; the two packages share
// one ID space.
type AccountID = socialgraph.AccountID

// PostID aliases the graph's post identifier.
type PostID = socialgraph.PostID

// Errors returned by platform operations.
var (
	ErrBadCredentials = errors.New("platform: bad credentials")
	ErrSessionRevoked = errors.New("platform: session revoked")
	ErrAccountGone    = errors.New("platform: account deleted")
	ErrBlocked        = errors.New("platform: action blocked")
	ErrRateLimited    = errors.New("platform: rate limited")
	ErrUsernameTaken  = errors.New("platform: username taken")
	// ErrUnavailable is a transient 5xx-style infrastructure failure
	// injected by a fault schedule (internal/faults); clients may retry.
	ErrUnavailable = errors.New("platform: service unavailable")
	// ErrNoSession marks a Request submitted without a session.
	ErrNoSession = errors.New("platform: request without session")
)

// Profile captures the externally visible richness of an account — what
// separates the paper's "empty" honeypots from "lived-in" ones (§4.1.1).
type Profile struct {
	PhotoCount    int // photos uploaded at creation
	HasProfilePic bool
	HasBio        bool
	HasName       bool
}

// LivedIn reports whether the profile meets the paper's lived-in bar:
// photos plus a fully populated identity.
func (p Profile) LivedIn() bool {
	return p.PhotoCount >= 10 && p.HasProfilePic && p.HasBio && p.HasName
}

// Config tunes a Platform.
type Config struct {
	// GraphWrites controls whether actions mutate the social graph. Full
	// fidelity (true) is right for honeypot and intervention studies. The
	// population-scale 90-day business simulation disables it and relies
	// on the event stream, keeping memory flat; see DESIGN.md §6.
	GraphWrites bool
	// PrivateHourlyLimit caps actions per account per hour on the private
	// API. Real services self-throttle below this.
	PrivateHourlyLimit int
	// OAuthHourlyLimit caps the public API "in a manner that precludes
	// broad abusive use" (§2) — far below the private limit.
	OAuthHourlyLimit int
	// Shards is the lock-stripe count for mutable platform state
	// (accounts, sessions, rate-limit buckets, post index). 0 means
	// DefaultShards. Purely a concurrency knob: the event stream is
	// byte-identical at every shard count (see docs/ARCHITECTURE.md).
	Shards int
}

// DefaultConfig matches the study's standard world. The OAuth cap of a
// few actions per hour reflects how tightly the public API restricts
// write actions — the reason every AAS spoofs the private client instead.
func DefaultConfig() Config {
	return Config{GraphWrites: true, PrivateHourlyLimit: 360, OAuthHourlyLimit: 3}
}

// Verdict is a gatekeeper's decision about one request.
type Verdict struct {
	Kind        VerdictKind
	RemoveAfter time.Duration // for VerdictDelayRemove
}

// VerdictKind enumerates countermeasure decisions.
type VerdictKind int

// Verdict kinds.
const (
	VerdictAllow VerdictKind = iota
	VerdictBlock
	// VerdictDelayRemove lets the action through, then the platform
	// undoes it RemoveAfter later. Only follows support removal; for
	// other action types it degrades to allow (§6.1: "it was not possible
	// to apply a delayed countermeasure on likes").
	VerdictDelayRemove
)

// Allow is the zero verdict.
var Allow = Verdict{Kind: VerdictAllow}

// Gatekeeper interposes on every action request. The request is the Event
// that would be emitted, before its Outcome is set.
type Gatekeeper interface {
	Check(req Event) Verdict
}

// GatekeeperFunc adapts a function to the Gatekeeper interface.
type GatekeeperFunc func(req Event) Verdict

// Check implements Gatekeeper.
func (f GatekeeperFunc) Check(req Event) Verdict { return f(req) }

// Platform is the simulated service. All exported methods are safe for
// concurrent use. Mutable state is partitioned into lock-striped shards
// keyed by a stable hash of AccountID (shard.go): pure queries (Exists,
// LatestPost, PostAuthor, Posts, RecentByTag, …) take only the owning
// stripe's read lock, so the parallel stepping engine's intent-generation
// phase can interrogate platform state from many workers at once, and
// mutations — registration, login, and the Do(Request) action pipeline
// with its rate-limit and gatekeeper checks — lock only the stripes they
// touch. In simulation, mutation runs on the single apply goroutine; the
// striping is what lets many planners read while it writes.
type Platform struct {
	cfg   Config
	graph *socialgraph.Graph
	net   *netsim.Registry
	clk   *clock.Clock
	sched *clock.Scheduler

	tags *hashtagIndex

	// shards stripe the account records and their rate-limit buckets by
	// hash(AccountID); postIdx stripes the post→author index by
	// hash(PostID). nextPost allocates post IDs in stateless
	// (GraphWrites off) mode.
	shards   []*shard
	postIdx  []*postStripe
	nextPost atomic.Uint64

	// nameMu guards the username index and serializes registration and
	// deletion (the only paths that mutate it). Ranked before every
	// shard lock; never acquired while one is held.
	nameMu     sync.RWMutex
	byUsername map[string]AccountID

	// hookMu guards the enforcement and fault-injection hook pointers,
	// which are installed at construction (faults) or between serial
	// experiment phases (gatekeepers) and read on every request.
	hookMu sync.RWMutex
	gate   Gatekeeper
	faults FaultInjector

	log EventLog

	// enforce tracks the delayed-removal actions scheduled by
	// VerdictDelayRemove that have not fired yet, in scheduling order.
	// Keeping them in a table (the scheduler closure only points into it)
	// is what lets snapshots serialize pending enforcement work. Touched
	// only from the single-threaded apply/scheduler path.
	enforce []*pendingEnforcement

	// tel holds pre-created instruments (nil = telemetry off). Set once
	// during world construction, before any traffic; see WireTelemetry.
	tel *platformMetrics

	// tracer records per-request spans (nil = tracing off, the cost of
	// one pointer check per request). Set once during world construction,
	// before any traffic; see SetTracer. Like the event stream itself,
	// span emission assumes requests run on the serial apply/scheduler
	// goroutine.
	tracer *trace.Tracer
}

// pendingEnforcement is one scheduled delayed-removal (§6.1): the follow
// from→to will be undone at due.
type pendingEnforcement struct {
	from, to AccountID
	due      time.Time
	done     bool
}

// platformMetrics caches one counter per hot-path cell so emission costs
// one array index plus an atomic add — no registry lookups, no locks.
// The instruments are pure observers: they never feed back into request
// handling, so metrics on/off cannot change any event.
type platformMetrics struct {
	// events[type][outcome] counts every emitted event.
	events [int(ActionLogin) + 1][int(OutcomeUnavailable) + 1]*telemetry.Counter

	rateLimited  *telemetry.Counter // ordinary API limit denials
	stormDenied  *telemetry.Counter // denials attributable to a rate-limit storm
	gateChecks   *telemetry.Counter // gatekeeper consultations
	verdictBlock *telemetry.Counter // synchronous blocks issued
	verdictDelay *telemetry.Counter // delayed removals scheduled
	enforcement  *telemetry.Counter // platform-performed removals landed
	duplicates   *telemetry.Counter // allowed structural no-ops
	accounts     *telemetry.Gauge   // live accounts
	logins       *telemetry.Counter
}

// WireTelemetry registers the platform's metric set in reg and starts
// recording. Call during construction, before traffic; a nil registry is
// a no-op (telemetry stays off). Besides the event and enforcement
// counters, each lock stripe gets a contention counter
// (platform.shard.NN.contention, platform.postshard.NN.contention)
// counting acquisitions that found the stripe already held.
func (p *Platform) WireTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m := &platformMetrics{
		rateLimited:  reg.Counter("platform.ratelimit.denied"),
		stormDenied:  reg.Counter("platform.ratelimit.storm_denied"),
		gateChecks:   reg.Counter("platform.gate.checks"),
		verdictBlock: reg.Counter("platform.gate.verdict.block"),
		verdictDelay: reg.Counter("platform.gate.verdict.delay_remove"),
		enforcement:  reg.Counter("platform.enforcement.removals"),
		duplicates:   reg.Counter("platform.events.duplicate"),
		accounts:     reg.Gauge("platform.accounts.live"),
		logins:       reg.Counter("platform.logins"),
	}
	for t := ActionLike; t <= ActionLogin; t++ {
		for o := OutcomeAllowed; o <= OutcomeUnavailable; o++ {
			m.events[t][o] = reg.Counter("platform.events." + t.String() + "." + o.String())
		}
	}
	reg.Gauge("platform.shards").Set(int64(len(p.shards)))
	for i, sh := range p.shards {
		sh.contention = reg.Counter(fmt.Sprintf("platform.shard.%02d.contention", i))
	}
	for i, ps := range p.postIdx {
		ps.contention = reg.Counter(fmt.Sprintf("platform.postshard.%02d.contention", i))
	}
	p.tel = m
}

// SetTracer installs the span tracer. Call during construction, before
// traffic; nil leaves tracing off. The tracer is a pure observer: it
// never feeds back into request handling, so tracing on/off cannot
// change any event (enforced in internal/simtest).
func (p *Platform) SetTracer(tr *trace.Tracer) { p.tracer = tr }

// shardIndexOf reports the index of the stripe owning id, for span
// attribution.
func (p *Platform) shardIndexOf(id AccountID) uint32 {
	return uint32(shardHash(uint64(id)) % uint64(len(p.shards)))
}

// New assembles a platform over the given substrates.
func New(cfg Config, g *socialgraph.Graph, net *netsim.Registry, sched *clock.Scheduler) *Platform {
	n := normShards(cfg.Shards)
	p := &Platform{
		cfg:        cfg,
		graph:      g,
		net:        net,
		clk:        sched.Clock(),
		sched:      sched,
		tags:       newHashtagIndex(),
		shards:     make([]*shard, n),
		postIdx:    make([]*postStripe, n),
		byUsername: make(map[string]AccountID),
	}
	for i := range p.shards {
		p.shards[i] = newShard()
	}
	for i := range p.postIdx {
		p.postIdx[i] = &postStripe{author: make(map[PostID]AccountID)}
	}
	return p
}

// Shards reports the configured lock-stripe count.
func (p *Platform) Shards() int { return len(p.shards) }

// NumAccounts reports the number of registered account rows, deleted
// ones included: rows are tombstoned rather than freed, so this is the
// resident table size — the denominator behind the bytes-per-account
// telemetry.
func (p *Platform) NumAccounts() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		n += sh.tab.len()
		sh.mu.RUnlock()
	}
	return n
}

// Log exposes the event stream for subscribers (detection, monitors).
func (p *Platform) Log() *EventLog { return &p.log }

// Graph exposes the underlying social graph (read access for analyses).
func (p *Platform) Graph() *socialgraph.Graph { return p.graph }

// Net exposes the network registry.
func (p *Platform) Net() *netsim.Registry { return p.net }

// Now returns the current simulated time.
func (p *Platform) Now() time.Time { return p.clk.Now() }

// SetGatekeeper installs gk as the enforcement hook. Passing nil removes
// all countermeasures.
func (p *Platform) SetGatekeeper(gk Gatekeeper) {
	p.hookMu.Lock()
	p.gate = gk
	p.hookMu.Unlock()
}

// hooks snapshots the gatekeeper and fault-injector pointers.
func (p *Platform) hooks() (Gatekeeper, FaultInjector) {
	p.hookMu.RLock()
	g, f := p.gate, p.faults
	p.hookMu.RUnlock()
	return g, f
}

// RegisterAccount creates an account with the given credentials and profile
// and returns its ID. The homeCountry is where the human behind the account
// usually logs in from.
func (p *Platform) RegisterAccount(username, password string, profile Profile, homeCountry string) (AccountID, error) {
	p.nameMu.Lock()
	defer p.nameMu.Unlock()
	if _, taken := p.byUsername[username]; taken {
		return 0, fmt.Errorf("%w: %q", ErrUsernameTaken, username)
	}
	id := p.graph.CreateAccount(p.clk.Now())
	sh := p.shardFor(id)
	sh.lock()
	r := sh.tab.add(id, username, password, profile, homeCountry, p.clk.Now())
	// The profile's initial photos exist as posts.
	for i := 0; i < profile.PhotoCount; i++ {
		p.addPostLocked(sh, r)
	}
	sh.mu.Unlock()
	p.byUsername[username] = id
	if m := p.tel; m != nil {
		m.accounts.Add(1)
	}
	return id, nil
}

// addPostLocked creates a post for row r of sh, whose lock the caller
// holds. It takes the post-index stripe lock for the new ID — account
// shard before post stripe is the canonical order.
func (p *Platform) addPostLocked(sh *shard, r uint32) PostID {
	id := sh.tab.id(r)
	var pid PostID
	if p.cfg.GraphWrites {
		var err error
		pid, err = p.graph.AddPost(id, p.clk.Now())
		if err != nil {
			panic(fmt.Sprintf("platform: graph post for live account: %v", err))
		}
	} else {
		pid = PostID(p.nextPost.Add(1))
	}
	sh.tab.posts[r] = append(sh.tab.posts[r], pid)
	ps := p.postStripeFor(pid)
	ps.lock()
	ps.author[pid] = id
	ps.mu.Unlock()
	return pid
}

// DeleteAccount removes the account and, per the paper's honeypot protocol,
// all actions to or from it.
func (p *Platform) DeleteAccount(id AccountID) error {
	p.nameMu.Lock()
	defer p.nameMu.Unlock()
	sh := p.shardFor(id)
	sh.lock()
	r, ok := sh.tab.row(id)
	if !ok || sh.tab.deleted[r] {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrAccountGone, id)
	}
	sh.tab.deleted[r] = true
	sh.tab.sessionEpochs[r]++ // revoke sessions
	username := sh.tab.usernames[r]
	posts := sh.tab.posts[r]
	sh.mu.Unlock()
	delete(p.byUsername, username)
	if m := p.tel; m != nil {
		m.accounts.Add(-1)
	}
	for _, pid := range posts {
		ps := p.postStripeFor(pid)
		ps.lock()
		delete(ps.author, pid)
		ps.mu.Unlock()
	}
	if p.cfg.GraphWrites {
		return p.graph.DeleteAccount(id)
	}
	return nil
}

// ResetPassword changes the account's password and revokes every live
// session — the user-level remedy for evicting an AAS.
func (p *Platform) ResetPassword(id AccountID, newPassword string) error {
	sh := p.shardFor(id)
	sh.lock()
	defer sh.mu.Unlock()
	r, ok := sh.tab.row(id)
	if !ok || sh.tab.deleted[r] {
		return fmt.Errorf("%w: %d", ErrAccountGone, id)
	}
	sh.tab.passwords[r] = newPassword
	sh.tab.sessionEpochs[r]++
	return nil
}

// Exists reports whether the account is live.
func (p *Platform) Exists(id AccountID) bool {
	sh := p.shardFor(id)
	sh.rlock()
	defer sh.mu.RUnlock()
	r, ok := sh.tab.row(id)
	return ok && !sh.tab.deleted[r]
}

// AccountProfile returns the account's profile.
func (p *Platform) AccountProfile(id AccountID) (Profile, bool) {
	sh := p.shardFor(id)
	sh.rlock()
	defer sh.mu.RUnlock()
	r, ok := sh.tab.row(id)
	if !ok || sh.tab.deleted[r] {
		return Profile{}, false
	}
	return sh.tab.profiles[r], true
}

// Username returns the account's username.
func (p *Platform) Username(id AccountID) (string, bool) {
	sh := p.shardFor(id)
	sh.rlock()
	defer sh.mu.RUnlock()
	r, ok := sh.tab.row(id)
	if !ok || sh.tab.deleted[r] {
		return "", false
	}
	return sh.tab.usernames[r], true
}

// CreatedAt returns the account's registration time.
func (p *Platform) CreatedAt(id AccountID) (time.Time, bool) {
	sh := p.shardFor(id)
	sh.rlock()
	defer sh.mu.RUnlock()
	r, ok := sh.tab.row(id)
	if !ok {
		return time.Time{}, false
	}
	return sh.tab.created[r], true
}

// MostFrequentLoginCountry implements the paper's customer-location rule:
// "the most frequent country used to login to the account" (§5.1). The
// second result is false when the account has never logged in. The tally
// is sorted by country, so the first maximum is the tie-break winner
// (smallest country string), matching the historical map-scan rule.
func (p *Platform) MostFrequentLoginCountry(id AccountID) (string, bool) {
	sh := p.shardFor(id)
	sh.rlock()
	defer sh.mu.RUnlock()
	r, ok := sh.tab.row(id)
	if !ok {
		return "", false
	}
	best, n := "", 0
	for _, cc := range sh.tab.logins[r] {
		if cc.N > n {
			best, n = cc.Country, cc.N
		}
	}
	return best, n > 0
}

// Posts returns the account's post IDs in creation order.
func (p *Platform) Posts(id AccountID) []PostID {
	sh := p.shardFor(id)
	sh.rlock()
	defer sh.mu.RUnlock()
	r, ok := sh.tab.row(id)
	if !ok || sh.tab.deleted[r] {
		return nil
	}
	return append([]PostID(nil), sh.tab.posts[r]...)
}

// LatestPost returns the account's most recent post, if any.
func (p *Platform) LatestPost(id AccountID) (PostID, bool) {
	sh := p.shardFor(id)
	sh.rlock()
	defer sh.mu.RUnlock()
	r, ok := sh.tab.row(id)
	if !ok || sh.tab.deleted[r] {
		return 0, false
	}
	posts := sh.tab.posts[r]
	if len(posts) == 0 {
		return 0, false
	}
	return posts[len(posts)-1], true
}

// PostAuthor resolves a post to its author.
func (p *Platform) PostAuthor(pid PostID) (AccountID, bool) {
	ps := p.postStripeFor(pid)
	ps.rlock()
	defer ps.mu.RUnlock()
	id, ok := ps.author[pid]
	return id, ok
}

// LikeCount returns the number of likes on pid as tracked by the platform
// (valid in both graph and stateless modes).
func (p *Platform) LikeCount(pid PostID) int {
	author, ok := p.PostAuthor(pid)
	if !ok {
		return 0
	}
	if p.cfg.GraphWrites {
		return p.graph.LikeCount(pid)
	}
	sh := p.shardFor(author)
	sh.rlock()
	defer sh.mu.RUnlock()
	if r, ok := sh.tab.row(author); ok {
		return sh.tab.likeCount(r, pid)
	}
	return 0
}

// ClientInfo describes the client a session presents to the platform.
type ClientInfo struct {
	IP          netip.Addr
	Fingerprint string // e.g. "mobile-official-v12", "mobile-spoof-instalex"
	API         APIKind
}

// Login authenticates and returns a session bound to the client info. The
// login is recorded as an event and feeds geolocation.
func (p *Platform) Login(username, password string, ci ClientInfo) (*Session, error) {
	p.nameMu.RLock()
	id, ok := p.byUsername[username]
	p.nameMu.RUnlock()
	if !ok {
		return nil, ErrBadCredentials
	}
	var sp *trace.Active
	if tr := p.tracer; tr != nil {
		sp = tr.StartRequest(trace.KindLogin, uint64(id), p.shardIndexOf(id), uint8(ActionLogin))
	}
	_, faults := p.hooks()
	sh := p.shardFor(id)
	sh.lock()
	r, ok := sh.tab.row(id)
	if !ok || sh.tab.deleted[r] || sh.tab.passwords[r] != password {
		sh.mu.Unlock()
		sp.Stage(trace.StageSession, trace.VerdictFail)
		sp.End(uint8(OutcomeFailed), 0, 0, 0)
		return nil, ErrBadCredentials
	}
	sp.Stage(trace.StageSession, trace.VerdictOK)
	if faults != nil {
		asn, _ := p.net.Lookup(ci.IP)
		if d := faults.Decide(p.clk.Now(), id, ActionLogin, asn, 0); d.Unavailable {
			// The auth frontend is down: no session, no event, and no
			// geolocation update — the request never reached the app tier.
			sh.mu.Unlock()
			sp.Stage(trace.StageFaults, trace.VerdictUnavailable)
			sp.End(uint8(OutcomeUnavailable), 0, 0, uint32(asn))
			return nil, ErrUnavailable
		}
	}
	sp.Stage(trace.StageFaults, trace.VerdictOK)
	country := p.net.Country(ci.IP)
	if country != "" {
		sh.tab.bumpLogin(r, country)
	}
	epoch := sh.tab.sessionEpochs[r]
	now := p.clk.Now()
	sh.mu.Unlock()

	ev := p.emitSpan(Event{
		Time: now, Type: ActionLogin, Actor: id, IP: ci.IP,
		Client: ci.Fingerprint, API: ci.API, Outcome: OutcomeAllowed,
	}, sp)
	endSpan(sp, ev)
	return &Session{p: p, id: id, epoch: epoch, client: ci}, nil
}

// emit resolves the ASN and delivers the event. Callers must NOT hold any
// shard or stripe lock: subscribers may call back into the platform.
func (p *Platform) emit(ev Event) { p.emitSpan(ev, nil) }

// emitSpan is emit with stage marks on an in-flight span: the telemetry
// stage covers ASN resolution plus counter increments, the emit stage
// covers the subscriber fan-out. It returns the event with its ASN
// resolved so the caller can close the span with attribution fields.
func (p *Platform) emitSpan(ev Event, sp *trace.Active) Event {
	if asn, ok := p.net.Lookup(ev.IP); ok {
		ev.ASN = asn
	}
	if m := p.tel; m != nil {
		if int(ev.Type) < len(m.events) && int(ev.Outcome) < len(m.events[0]) {
			m.events[ev.Type][ev.Outcome].Inc()
		}
		if ev.Enforcement {
			m.enforcement.Inc()
		}
		if ev.Duplicate {
			m.duplicates.Inc()
		}
		if ev.Type == ActionLogin {
			m.logins.Inc()
		}
	}
	sp.Stage(trace.StageTelemetry, trace.VerdictOK)
	p.log.Emit(ev)
	sp.Stage(trace.StageEmit, trace.VerdictOK)
	return ev
}

// endSpan closes a request span with the emitted event's terminal
// attribution fields.
func endSpan(sp *trace.Active, ev Event) {
	sp.End(uint8(ev.Outcome), uint64(ev.Target), uint64(ev.Post), uint32(ev.ASN))
}
