package platform

import (
	"fmt"
	"time"

	"footsteps/internal/trace"
)

// Request is the unified action envelope: one typed value carrying the
// session (actor + client metadata), the action kind, and its payload.
// Every mutation of platform state routes through Do(Request), so
// session validity, fault injection, rate limiting, gatekeeping,
// application, event emission, and telemetry happen at one choke point
// instead of being re-wired per action.
//
// Payload fields by action:
//
//	ActionLike     Post
//	ActionFollow   Target
//	ActionUnfollow Target
//	ActionComment  Post, Text
//	ActionPost     Tags (optional)
//
// Unused fields are ignored.
type Request struct {
	Session *Session
	Action  ActionType
	Target  AccountID
	Post    PostID
	Text    string
	Tags    []string
}

// Response reports how a Request fared. Outcome mirrors the emitted
// event's outcome; when the request died before any event could be
// emitted (revoked session, missing session), Outcome is OutcomeFailed
// and Err says why.
type Response struct {
	// Outcome is the terminal outcome of the request.
	Outcome Outcome
	// Err is non-nil when the action did not take effect: one of the
	// package's sentinel errors (possibly wrapped) or a graph error.
	Err error
	// Applied is true when the action changed state; an allowed
	// structural no-op (re-follow, re-like) leaves it false and the
	// emitted event carries Duplicate.
	Applied bool
	// Post is the created post's ID for an allowed ActionPost.
	Post PostID
}

// Do submits a request on this session. Shorthand for p.Do with the
// Session field set.
func (s *Session) Do(req Request) Response {
	req.Session = s
	return s.p.Do(req)
}

// Do routes one action request through the full pipeline:
//
//	preflight → session epoch → fault injection → rate limit →
//	gatekeeper → apply → emit (→ deferred enforcement)
//
// The stages and their order are load-bearing — see
// docs/ARCHITECTURE.md before reordering anything:
//
//   - structural preflight (target post/account must exist) fails
//     without consulting the session, limiter, or gatekeeper, like a
//     404 from a stateless frontend;
//   - an injected outage emits OutcomeUnavailable before rate limiting,
//     so a faulted request consumes no budget and a client retry cannot
//     double-count;
//   - the gatekeeper sees the request with its ASN resolved, after the
//     limiter — countermeasures observe only traffic the service would
//     actually process;
//   - all emission happens with no shard lock held (subscribers may call
//     back into the platform).
func (p *Platform) Do(req Request) Response {
	s := req.Session
	if s == nil {
		return Response{Outcome: OutcomeFailed, Err: ErrNoSession}
	}

	// Span starts before preflight so even structural 404s get latency
	// attribution. A nil sp (tracing off, or this request unsampled)
	// makes every mark below a no-op.
	var sp *trace.Active
	if tr := p.tracer; tr != nil {
		sp = tr.StartRequest(trace.KindRequest, uint64(s.id), p.shardIndexOf(s.id), uint8(req.Action))
	}

	ev := Event{
		Type:   req.Action,
		Actor:  s.id,
		Time:   p.clk.Now(),
		IP:     s.client.IP,
		Client: s.client.Fingerprint,
		API:    s.client.API,
	}

	// Structural preflight per action kind. Application itself lives in
	// applyAction — a plain method, not a per-request closure, so the
	// steady-state pipeline allocates nothing for dispatch.
	resp := Response{}
	switch req.Action {
	case ActionLike, ActionComment:
		author, ok := p.PostAuthor(req.Post)
		if !ok {
			sp.Stage(trace.StagePreflight, trace.VerdictFail)
			return p.failReq(Event{Type: req.Action, Post: req.Post}, s, sp)
		}
		ev.Target, ev.Post = author, req.Post
	case ActionFollow, ActionUnfollow:
		if !p.Exists(req.Target) {
			sp.Stage(trace.StagePreflight, trace.VerdictFail)
			return p.failReq(Event{Type: req.Action, Target: req.Target}, s, sp)
		}
		ev.Target = req.Target
	case ActionPost:
	default:
		sp.Stage(trace.StagePreflight, trace.VerdictFail)
		sp.End(uint8(OutcomeFailed), 0, 0, 0)
		return Response{Outcome: OutcomeFailed,
			Err: fmt.Errorf("platform: action %v cannot be requested", req.Action)}
	}
	sp.Stage(trace.StagePreflight, trace.VerdictOK)

	gate, faults := p.hooks()
	sh := p.shardFor(s.id)
	sh.lock()
	r, ok := sh.tab.row(s.id)
	if !ok || sh.tab.deleted[r] || sh.tab.sessionEpochs[r] != s.epoch {
		sh.mu.Unlock()
		sp.Stage(trace.StageSession, trace.VerdictRevoked)
		sp.End(uint8(OutcomeFailed), uint64(ev.Target), uint64(ev.Post), 0)
		return Response{Outcome: OutcomeFailed, Err: ErrSessionRevoked}
	}
	sp.Stage(trace.StageSession, trace.VerdictOK)
	var fd FaultDecision
	if faults != nil {
		asn, _ := p.net.Lookup(ev.IP)
		fd = faults.Decide(ev.Time, s.id, ev.Type, asn, uint64(ev.Target)<<32^uint64(ev.Post))
	}
	if fd.RevokeSession {
		// Session-store flap: every live session for the account dies,
		// exactly like an organic revocation — no event is emitted.
		sh.tab.sessionEpochs[r]++
		sh.mu.Unlock()
		sp.Stage(trace.StageFaults, trace.VerdictRevoked)
		sp.End(uint8(OutcomeFailed), uint64(ev.Target), uint64(ev.Post), 0)
		return Response{Outcome: OutcomeFailed, Err: ErrSessionRevoked}
	}
	if fd.Unavailable {
		// Injected before rate limiting on purpose: an unavailable
		// request consumes no budget, so a client retry cannot
		// double-count against the limiter.
		sh.mu.Unlock()
		sp.Stage(trace.StageFaults, trace.VerdictUnavailable)
		ev.Outcome = OutcomeUnavailable
		ev = p.emitSpan(ev, sp)
		endSpan(sp, ev)
		return Response{Outcome: OutcomeUnavailable, Err: ErrUnavailable}
	}
	sp.Stage(trace.StageFaults, trace.VerdictOK)
	limit := p.cfg.PrivateHourlyLimit
	if s.client.API == APIOAuth {
		limit = p.cfg.OAuthHourlyLimit
	}
	effLimit := limit
	if fd.LimitScale > 0 && fd.LimitScale < 1 && limit > 0 {
		// Rate-limit storm: the limit is temporarily a fraction of its
		// configured value (at least 1, so storms throttle rather than
		// blackhole).
		effLimit = int(float64(limit) * fd.LimitScale)
		if effLimit < 1 {
			effLimit = 1
		}
	}
	if !sh.limiter.allow(r, ev.Time, effLimit) {
		// A denial is storm-attributable when the tightened limit fired
		// below the level the ordinary limit would have tolerated.
		storm := effLimit < limit && sh.limiter.peek(r, ev.Time) < limit
		sh.mu.Unlock()
		if storm {
			sp.Stage(trace.StageRateLimit, trace.VerdictStorm)
		} else {
			sp.Stage(trace.StageRateLimit, trace.VerdictDenied)
		}
		if m := p.tel; m != nil {
			m.rateLimited.Inc()
			if storm {
				m.stormDenied.Inc()
			}
		}
		ev.Outcome = OutcomeRateLimited
		ev = p.emitSpan(ev, sp)
		endSpan(sp, ev)
		return Response{Outcome: OutcomeRateLimited, Err: ErrRateLimited}
	}
	sh.mu.Unlock()
	sp.Stage(trace.StageRateLimit, trace.VerdictOK)

	verdict := Allow
	if gate != nil {
		// The gatekeeper sees the request with its ASN resolved, exactly
		// the signal surface detection uses.
		greq := ev
		if asn, ok := p.net.Lookup(greq.IP); ok {
			greq.ASN = asn
		}
		verdict = gate.Check(greq)
		if m := p.tel; m != nil {
			m.gateChecks.Inc()
			switch verdict.Kind {
			case VerdictBlock:
				m.verdictBlock.Inc()
			case VerdictDelayRemove:
				m.verdictDelay.Inc()
			}
		}
	}
	switch verdict.Kind {
	case VerdictBlock:
		sp.Stage(trace.StageGatekeep, trace.VerdictBlocked)
	case VerdictDelayRemove:
		sp.Stage(trace.StageGatekeep, trace.VerdictDelayed)
	default:
		sp.Stage(trace.StageGatekeep, trace.VerdictOK)
	}
	if verdict.Kind == VerdictBlock {
		ev.Outcome = OutcomeBlocked
		ev = p.emitSpan(ev, sp)
		endSpan(sp, ev)
		return Response{Outcome: OutcomeBlocked, Err: ErrBlocked}
	}

	applied, err := p.applyAction(req, &resp, ev.Target)
	if err != nil {
		sp.Stage(trace.StageApply, trace.VerdictFail)
		ev.Outcome = OutcomeFailed
		ev = p.emitSpan(ev, sp)
		endSpan(sp, ev)
		return Response{Outcome: OutcomeFailed, Err: err}
	}
	sp.Stage(trace.StageApply, trace.VerdictOK)
	ev.Outcome = OutcomeAllowed
	ev.Duplicate = !applied
	ev = p.emitSpan(ev, sp)
	endSpan(sp, ev)
	resp.Outcome = OutcomeAllowed
	resp.Applied = applied

	// Hashtags attach after the post event exists, mirroring a caption
	// indexed once the media is live.
	if req.Action == ActionPost {
		for _, t := range req.Tags {
			p.tags.add(t, resp.Post)
		}
	}

	if verdict.Kind == VerdictDelayRemove && ev.Type == ActionFollow {
		delay := verdict.RemoveAfter
		if delay <= 0 {
			delay = 24 * time.Hour
		}
		// The pending removal lives in a table entry rather than closure
		// captures so snapshots can serialize it; the scheduled callback
		// only points at the entry. Same instant, same draws, same event.
		e := &pendingEnforcement{from: ev.Actor, to: ev.Target, due: ev.Time.Add(delay)}
		p.enforce = append(p.enforce, e)
		p.sched.After(delay, func() { p.fireEnforcement(e) })
	}
	return resp
}

// fireEnforcement executes one scheduled delayed-removal and retires its
// table entry. Runs on the scheduler goroutine.
func (p *Platform) fireEnforcement(e *pendingEnforcement) {
	e.done = true
	for i, pe := range p.enforce {
		if pe == e {
			p.enforce = append(p.enforce[:i], p.enforce[i+1:]...)
			break
		}
	}
	if p.cfg.GraphWrites {
		// Either endpoint may be gone by now; removal is then moot.
		if !p.graph.Exists(e.from) || !p.graph.Exists(e.to) {
			p.tracer.Instant(trace.KindEnforcement, uint64(e.from), uint8(ActionUnfollow), trace.VerdictMoot, 0, 0)
			return
		}
		if removed, _ := p.graph.Unfollow(e.from, e.to); !removed {
			p.tracer.Instant(trace.KindEnforcement, uint64(e.from), uint8(ActionUnfollow), trace.VerdictMoot, 0, 0)
			return
		}
	}
	p.tracer.Instant(trace.KindEnforcement, uint64(e.from), uint8(ActionUnfollow), trace.VerdictOK, 0, 0)
	p.emit(Event{
		Time: p.clk.Now(), Type: ActionUnfollow, Actor: e.from,
		Target: e.to, Outcome: OutcomeAllowed, Enforcement: true,
	})
}

// applyAction performs the state mutation for an already-vetted request.
// It runs after the pipeline's checks with no locks held; each case takes
// exactly the stripes it needs. target is the preflight-resolved event
// target (the post author for Like). Keeping this a method instead of a
// per-request closure is what makes Do allocation-free in steady state;
// the behavior is identical to the closures it replaced.
func (p *Platform) applyAction(req Request, resp *Response, target AccountID) (bool, error) {
	s := req.Session
	switch req.Action {
	case ActionLike:
		if p.cfg.GraphWrites {
			return p.graph.Like(s.id, req.Post)
		}
		sh := p.shardFor(target)
		sh.lock()
		if r, ok := sh.tab.row(target); ok {
			sh.tab.bumpLike(r, req.Post)
		}
		sh.mu.Unlock()
		return true, nil
	case ActionFollow:
		if p.cfg.GraphWrites {
			return p.graph.Follow(s.id, req.Target)
		}
		return true, nil
	case ActionUnfollow:
		if p.cfg.GraphWrites {
			return p.graph.Unfollow(s.id, req.Target)
		}
		return true, nil
	case ActionComment:
		if p.cfg.GraphWrites {
			return true, p.graph.AddComment(s.id, req.Post, req.Text, p.clk.Now())
		}
		return true, nil
	case ActionPost:
		sh := p.shardFor(s.id)
		sh.lock()
		r, ok := sh.tab.row(s.id)
		if !ok || sh.tab.deleted[r] {
			sh.mu.Unlock()
			return false, ErrAccountGone
		}
		resp.Post = p.addPostLocked(sh, r)
		sh.mu.Unlock()
		return true, nil
	}
	return false, fmt.Errorf("platform: action %v cannot be requested", req.Action)
}

// failReq records a structurally invalid request (target post or account
// does not exist) and returns the failure. The event deliberately skips
// session, limiter, and gatekeeper checks: a 404 from a stateless
// frontend, not a policy decision.
func (p *Platform) failReq(ev Event, s *Session, sp *trace.Active) Response {
	ev.Actor = s.id
	ev.Time = p.clk.Now()
	ev.IP = s.client.IP
	ev.Client = s.client.Fingerprint
	ev.API = s.client.API
	ev.Outcome = OutcomeFailed
	ev = p.emitSpan(ev, sp)
	endSpan(sp, ev)
	return Response{Outcome: OutcomeFailed,
		Err: fmt.Errorf("platform: %s target does not exist", ev.Type)}
}
