package platform

import (
	"sync"

	"footsteps/internal/intern"
)

// hashtagIndex tracks recent posts per hashtag. Real feeds expose roughly
// this surface: given a tag, fetch the most recent media — which is
// exactly the discovery API the reciprocity AASs crawl when a customer
// supplies a hashtag list (§3.3.1).
// The index takes a read-write lock: tag feeds are crawled concurrently
// by parallel intent generation (many readers) and written only from the
// serialized apply path.
type hashtagIndex struct {
	mu     sync.RWMutex
	byTag  map[string]*tagRing
	keepup int
}

// tagRing is a bounded ring of the newest posts for one tag.
type tagRing struct {
	posts []PostID
	next  int
	full  bool
}

const defaultTagKeep = 256

func newHashtagIndex() *hashtagIndex {
	return &hashtagIndex{byTag: make(map[string]*tagRing), keepup: defaultTagKeep}
}

func (h *hashtagIndex) add(tag string, pid PostID) {
	if tag == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.byTag[tag]
	if r == nil {
		// New tags are rare (campaign tag pools are small and fixed);
		// intern the map key so the index holds the canonical copy and
		// never pins a caller's larger backing array.
		r = &tagRing{posts: make([]PostID, h.keepup)}
		h.byTag[intern.String(tag)] = r
	}
	r.posts[r.next] = pid
	r.next++
	if r.next == len(r.posts) {
		r.next = 0
		r.full = true
	}
}

// recent returns up to k of the newest posts for tag, newest first.
func (h *hashtagIndex) recent(tag string, k int) []PostID {
	return h.appendRecent(nil, tag, k)
}

// appendRecent appends up to k of the newest posts for tag to dst,
// newest first, and returns the extended slice. Callers that crawl tag
// feeds every tick pass a reused buffer to avoid per-query allocation.
func (h *hashtagIndex) appendRecent(dst []PostID, tag string, k int) []PostID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	r := h.byTag[tag]
	if r == nil || k <= 0 {
		return dst
	}
	n := r.next
	if r.full {
		n = len(r.posts)
	}
	if k > n {
		k = n
	}
	idx := r.next - 1
	for ; k > 0; k-- {
		if idx < 0 {
			idx = len(r.posts) - 1
		}
		dst = append(dst, r.posts[idx])
		idx--
	}
	return dst
}

// TagPost associates hashtags with an existing post of account id, as if
// they were part of the caption. World-building code uses this to tag
// profile-seed photos; live posts carry tags on the post Request.
func (p *Platform) TagPost(id AccountID, pid PostID, tags ...string) error {
	author, ok := p.PostAuthor(pid)
	if !ok || author != id {
		return ErrAccountGone
	}
	for _, t := range tags {
		p.tags.add(t, pid)
	}
	return nil
}

// RecentByTag returns up to k of the newest posts carrying the tag —
// the hashtag discovery surface AASs crawl for targeting.
func (p *Platform) RecentByTag(tag string, k int) []PostID {
	return p.tags.recent(tag, k)
}

// AppendRecentByTag is RecentByTag appending into dst (reusing its
// capacity) — the allocation-free variant for per-tick crawlers.
func (p *Platform) AppendRecentByTag(dst []PostID, tag string, k int) []PostID {
	return p.tags.appendRecent(dst, tag, k)
}
