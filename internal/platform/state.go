package platform

import (
	"net/netip"
	"sort"
	"time"
)

// This file is the platform's half of the snapshot/restore contract (see
// internal/persistence and docs/PERSISTENCE.md). SnapshotState enumerates
// every piece of mutable platform state the request pipeline can touch;
// RestoreState overwrites a freshly constructed platform with it. Both
// run only at day boundaries on the single simulation timeline, with no
// concurrent traffic.
//
// The representation is deliberately shard-independent: accounts, limiter
// windows, and the post index are flattened and sorted by ID, so a
// snapshot taken at one stripe count restores into any other — shard
// count stays a pure performance knob even across a checkpoint.

// State is the complete mutable state of a Platform.
type State struct {
	NextPost uint64
	LogSeq   uint64
	Accounts []AccountState
	Limiters []LimiterState
	Tags     []TagState
	// Enforcements are the delayed-removal actions scheduled by
	// VerdictDelayRemove that have not fired yet, in scheduling order.
	Enforcements []EnforcementState
}

// AccountState is one account record, flattened for serialization.
type AccountState struct {
	ID             AccountID
	Username       string
	Password       string
	Profile        Profile
	HomeCountry    string
	Created        time.Time
	Deleted        bool
	SessionEpoch   uint64
	LoginCountries []CountryCount // sorted by country
	Posts          []PostID       // creation order
	LikeCounts     []PostCount    // sorted by post ID
}

// CountryCount is one login-geolocation tally.
type CountryCount struct {
	Country string
	N       int
}

// PostCount is one per-post like tally (stateless-graph mode).
type PostCount struct {
	Post PostID
	N    int
}

// LimiterState is one hourly rate-limit window.
type LimiterState struct {
	ID    AccountID
	Hour  int64
	Count int
}

// TagState is one hashtag ring, serialized in logical order (oldest
// first) so the representation is independent of the ring's rotation.
type TagState struct {
	Tag   string
	Posts []PostID
}

// EnforcementState is one pending delayed-removal.
type EnforcementState struct {
	From AccountID
	To   AccountID
	Due  time.Time
}

// SessionState is a serializable session handle. Other components embed
// it to persist the sessions they hold.
type SessionState struct {
	Present     bool
	ID          AccountID
	Epoch       uint64
	IP          netip.Addr
	Fingerprint string
	API         APIKind
}

// CaptureSession flattens a session (nil allowed) into a SessionState.
func CaptureSession(s *Session) SessionState {
	if s == nil {
		return SessionState{}
	}
	return SessionState{
		Present:     true,
		ID:          s.id,
		Epoch:       s.epoch,
		IP:          s.client.IP,
		Fingerprint: s.client.Fingerprint,
		API:         s.client.API,
	}
}

// RestoreSession rebuilds a session handle from a snapshot without going
// through Login: no event is emitted, no geolocation tally moves, and no
// address is allocated. A not-present state restores to nil. The epoch is
// restored verbatim, so a session that was already revoked at snapshot
// time is still revoked after restore.
func (p *Platform) RestoreSession(st SessionState) *Session {
	if !st.Present {
		return nil
	}
	return &Session{
		p: p, id: st.ID, epoch: st.Epoch,
		client: ClientInfo{IP: st.IP, Fingerprint: st.Fingerprint, API: st.API},
	}
}

// SnapshotState captures the platform's complete mutable state.
func (p *Platform) SnapshotState() *State {
	st := &State{
		NextPost: p.nextPost.Load(),
		LogSeq:   p.log.Seq(),
	}
	for _, sh := range p.shards {
		sh.rlock()
		// Table rows are in registration order; per-account tallies are
		// maintained sorted, so the flattened form needs only the global
		// by-ID sort below to be identical to the historical map walk.
		for r := uint32(0); int(r) < sh.tab.len(); r++ {
			as := AccountState{
				ID:           sh.tab.id(r),
				Username:     sh.tab.usernames[r],
				Password:     sh.tab.passwords[r],
				Profile:      sh.tab.profiles[r],
				HomeCountry:  sh.tab.homeCountries[r],
				Created:      sh.tab.created[r],
				Deleted:      sh.tab.deleted[r],
				SessionEpoch: sh.tab.sessionEpochs[r],
				Posts:        append([]PostID(nil), sh.tab.posts[r]...),
			}
			if ls := sh.tab.logins[r]; len(ls) > 0 {
				as.LoginCountries = append([]CountryCount(nil), ls...)
			}
			if lc := sh.tab.likeCounts[r]; len(lc) > 0 {
				as.LikeCounts = append([]PostCount(nil), lc...)
			}
			st.Accounts = append(st.Accounts, as)
		}
		for r, hour := range sh.limiter.hours {
			if hour == 0 {
				continue // never touched
			}
			st.Limiters = append(st.Limiters, LimiterState{
				ID: sh.tab.id(uint32(r)), Hour: hour, Count: int(sh.limiter.counts[r]),
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(st.Accounts, func(i, j int) bool { return st.Accounts[i].ID < st.Accounts[j].ID })
	sort.Slice(st.Limiters, func(i, j int) bool { return st.Limiters[i].ID < st.Limiters[j].ID })

	p.tags.mu.RLock()
	for tag, r := range p.tags.byTag {
		ts := TagState{Tag: tag}
		n := r.next
		if r.full {
			n = len(r.posts)
		}
		// Oldest first: for a full ring that is posts[next:], posts[:next];
		// for a partial one, posts[:next].
		if r.full {
			ts.Posts = append(ts.Posts, r.posts[r.next:]...)
			ts.Posts = append(ts.Posts, r.posts[:r.next]...)
		} else {
			ts.Posts = append(ts.Posts, r.posts[:n]...)
		}
		st.Tags = append(st.Tags, ts)
	}
	p.tags.mu.RUnlock()
	sort.Slice(st.Tags, func(i, j int) bool { return st.Tags[i].Tag < st.Tags[j].Tag })

	for _, e := range p.enforce {
		if e.done {
			continue
		}
		st.Enforcements = append(st.Enforcements, EnforcementState{From: e.from, To: e.to, Due: e.due})
	}
	return st
}

// RestoreState overwrites the platform's mutable state with a snapshot.
// The caller is responsible for re-registering the pending enforcements'
// scheduler events via RestoreEnforcements (after the scheduler has been
// fast-forwarded to the snapshot instant).
func (p *Platform) RestoreState(st *State) {
	p.nextPost.Store(st.NextPost)
	p.log.RestoreSeq(st.LogSeq)

	p.nameMu.Lock()
	clear(p.byUsername)
	p.nameMu.Unlock()
	for _, sh := range p.shards {
		sh.lock()
		sh.tab.reset()
		sh.limiter.reset()
		sh.mu.Unlock()
	}
	for _, ps := range p.postIdx {
		ps.lock()
		clear(ps.author)
		ps.mu.Unlock()
	}

	for i := range st.Accounts {
		as := &st.Accounts[i]
		sh := p.shardFor(as.ID)
		sh.lock()
		r := sh.tab.add(as.ID, as.Username, as.Password, as.Profile, as.HomeCountry, as.Created)
		sh.tab.deleted[r] = as.Deleted
		sh.tab.sessionEpochs[r] = as.SessionEpoch
		if len(as.LoginCountries) > 0 {
			sh.tab.logins[r] = append([]CountryCount(nil), as.LoginCountries...)
		}
		if len(as.Posts) > 0 {
			sh.tab.posts[r] = append([]PostID(nil), as.Posts...)
		}
		if len(as.LikeCounts) > 0 {
			sh.tab.likeCounts[r] = append([]PostCount(nil), as.LikeCounts...)
		}
		sh.mu.Unlock()
		if !as.Deleted {
			p.nameMu.Lock()
			p.byUsername[as.Username] = as.ID
			p.nameMu.Unlock()
			for _, pid := range as.Posts {
				ps := p.postStripeFor(pid)
				ps.lock()
				ps.author[pid] = as.ID
				ps.mu.Unlock()
			}
		}
	}

	for _, ls := range st.Limiters {
		sh := p.shardFor(ls.ID)
		sh.lock()
		if r, ok := sh.tab.row(ls.ID); ok {
			sh.limiter.set(r, ls.Hour, ls.Count)
		}
		sh.mu.Unlock()
	}

	p.tags.mu.Lock()
	clear(p.tags.byTag)
	for _, ts := range st.Tags {
		r := &tagRing{posts: make([]PostID, p.tags.keepup)}
		k := copy(r.posts, ts.Posts)
		r.next = k % len(r.posts)
		r.full = k == len(r.posts)
		p.tags.byTag[ts.Tag] = r
	}
	p.tags.mu.Unlock()
}

// RestoreEnforcements re-registers the pending delayed-removals from a
// snapshot, in their original scheduling order. Call after the scheduler
// has been fast-forwarded to the snapshot instant so the At targets are
// in the future.
func (p *Platform) RestoreEnforcements(sts []EnforcementState) {
	p.enforce = p.enforce[:0]
	for _, es := range sts {
		e := &pendingEnforcement{from: es.From, to: es.To, due: es.Due}
		p.enforce = append(p.enforce, e)
		p.sched.At(e.due, func() { p.fireEnforcement(e) })
	}
}
