package platform

import (
	"bytes"
	"fmt"
	"testing"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/socialgraph"
	"footsteps/internal/telemetry"
)

// TestDoEnvelopeMatchesWrappers pins the wrapper contract: a Request
// submitted through Do and the equivalent deprecated method produce the
// same outcome and the same emitted event shape.
func TestDoEnvelopeMatchesWrappers(t *testing.T) {
	t.Parallel()
	run := func(useDo bool) []Event {
		cfg := DefaultConfig()
		w := newWorld(t, cfg)
		var got []Event
		w.p.Log().Subscribe(func(ev Event) { got = append(got, ev) })
		alice := w.register(t, "alice")
		w.register(t, "bob")
		sa := w.login(t, "alice", 10)
		sb := w.login(t, "bob", 10)
		pid, ok := w.p.LatestPost(alice)
		if !ok {
			t.Fatal("alice has no seed post")
		}
		if useDo {
			sb.Do(Request{Action: ActionFollow, Target: alice})
			sb.Do(Request{Action: ActionLike, Post: pid})
			sb.Do(Request{Action: ActionComment, Post: pid, Text: "hi"})
			sa.Do(Request{Action: ActionPost})
			sb.Do(Request{Action: ActionUnfollow, Target: alice})
			sb.Do(Request{Action: ActionLike, Post: 9999}) // structural fail
		} else {
			sb.Do(Request{Action: ActionFollow, Target: alice})
			sb.Do(Request{Action: ActionLike, Post: pid})
			sb.Do(Request{Action: ActionComment, Post: pid, Text: "hi"})
			sa.Do(Request{Action: ActionPost})
			sb.Do(Request{Action: ActionUnfollow, Target: alice})
			sb.Do(Request{Action: ActionLike, Post: 9999})
		}
		return got
	}
	a, b := run(true), run(false)
	if len(a) != len(b) {
		t.Fatalf("event count differs: Do %d, wrappers %d", len(a), len(b))
	}
	for i := range a {
		// Seq is assigned by the log and IPs by allocation order; both
		// runs use fresh worlds so all fields must agree exactly.
		if a[i] != b[i] {
			t.Errorf("event %d differs:\n  Do:      %+v\n  wrapper: %+v", i, a[i], b[i])
		}
	}
}

// TestDoRejectsBadRequests covers the envelope's error edges: no
// session, and an action kind that is not requestable.
func TestDoRejectsBadRequests(t *testing.T) {
	t.Parallel()
	w := newWorld(t, DefaultConfig())
	if resp := w.p.Do(Request{Action: ActionFollow, Target: 1}); resp.Err != ErrNoSession {
		t.Errorf("sessionless request: err %v, want ErrNoSession", resp.Err)
	}
	w.register(t, "alice")
	s := w.login(t, "alice", 10)
	if resp := s.Do(Request{Action: ActionLogin}); resp.Err == nil {
		t.Error("ActionLogin through Do succeeded; logins must go through Login")
	}
}

// TestPlatformShardEquivalence replays one deterministic action script
// against platforms striped 1, 4, and 16 ways and asserts the emitted
// event streams match exactly — the platform-level form of the
// simulation-wide stream invariant, cheap enough to run everywhere.
func TestPlatformShardEquivalence(t *testing.T) {
	t.Parallel()
	script := func(shards int) ([]Event, string) {
		reg := netsim.NewRegistry()
		reg.Register(10, "home-isp", "USA", netsim.KindResidential)
		sched := clock.NewScheduler(clock.New())
		cfg := DefaultConfig()
		cfg.Shards = shards
		p := New(cfg, socialgraph.NewSharded(shards), reg, sched)
		var events []Event
		p.Log().Subscribe(func(ev Event) { events = append(events, ev) })

		var sessions []*Session
		for i := 0; i < 24; i++ {
			name := fmt.Sprintf("acct-%d", i)
			if _, err := p.RegisterAccount(name, "pw", Profile{PhotoCount: 2}, "USA"); err != nil {
				t.Fatal(err)
			}
			s, err := p.Login(name, "pw", ClientInfo{IP: reg.Allocate(10), Fingerprint: "c", API: APIPrivate})
			if err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, s)
		}
		var state bytes.Buffer
		for i, s := range sessions {
			tgt := AccountID((i+7)%24 + 1)
			s.Do(Request{Action: ActionFollow, Target: tgt})
			if pid, ok := p.LatestPost(tgt); ok {
				s.Do(Request{Action: ActionLike, Post: pid})
				s.Do(Request{Action: ActionComment, Post: pid, Text: "t"})
			}
			if resp := s.Do(Request{Action: ActionPost, Tags: []string{"tag"}}); resp.Err == nil {
				fmt.Fprintf(&state, "post=%d ", resp.Post)
			}
			s.Do(Request{Action: ActionUnfollow, Target: tgt})
		}
		for id := AccountID(1); id <= 24; id++ {
			fmt.Fprintf(&state, "%d:%d:%d ", id, p.graph.InDegree(id), p.graph.OutDegree(id))
		}
		fmt.Fprintf(&state, "tagged=%d", len(p.RecentByTag("tag", 100)))
		return events, state.String()
	}
	wantEv, wantState := script(1)
	if len(wantEv) < 100 {
		t.Fatalf("script produced only %d events; comparison would be vacuous", len(wantEv))
	}
	for _, shards := range []int{4, 16} {
		gotEv, gotState := script(shards)
		if len(gotEv) != len(wantEv) {
			t.Fatalf("shards=%d: %d events, want %d", shards, len(gotEv), len(wantEv))
		}
		for i := range wantEv {
			if gotEv[i] != wantEv[i] {
				t.Fatalf("shards=%d: event %d differs:\n got  %+v\n want %+v", shards, i, gotEv[i], wantEv[i])
			}
		}
		if gotState != wantState {
			t.Errorf("shards=%d: graph state diverged:\n got  %s\n want %s", shards, gotState, wantState)
		}
	}
}

// TestPlatformContentionCounters checks WireTelemetry registers one
// contention counter per stripe and the shards gauge.
func TestPlatformContentionCounters(t *testing.T) {
	t.Parallel()
	reg := netsim.NewRegistry()
	reg.Register(10, "home-isp", "USA", netsim.KindResidential)
	sched := clock.NewScheduler(clock.New())
	cfg := DefaultConfig()
	cfg.Shards = 3
	p := New(cfg, socialgraph.New(), reg, sched)
	tr := telemetry.NewRegistry()
	p.WireTelemetry(tr)
	snap := tr.Snapshot()
	if g := snap.Gauges["platform.shards"]; g != 3 {
		t.Errorf("platform.shards gauge = %d, want 3", g)
	}
	for i := 0; i < 3; i++ {
		for _, name := range []string{
			fmt.Sprintf("platform.shard.%02d.contention", i),
			fmt.Sprintf("platform.postshard.%02d.contention", i),
		} {
			if _, ok := snap.Counters[name]; !ok {
				t.Errorf("counter %q not registered", name)
			}
		}
	}
}
