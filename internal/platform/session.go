package platform

import (
	"fmt"
	"time"
)

// Session is an authenticated client acting as one account. Sessions are
// exactly what customers hand to an AAS: whoever holds the session can act
// as the account until the password is reset.
//
// A session is safe for concurrent use, but simulation code normally drives
// it from scheduler callbacks on the single simulated timeline.
type Session struct {
	p      *Platform
	id     AccountID
	epoch  uint64
	client ClientInfo
}

// Account returns the account this session acts as.
func (s *Session) Account() AccountID { return s.id }

// Client returns the session's client metadata.
func (s *Session) Client() ClientInfo { return s.client }

// Like likes the given post on behalf of the session's account.
func (s *Session) Like(pid PostID) error {
	author, ok := s.p.PostAuthor(pid)
	if !ok {
		return s.fail(Event{Type: ActionLike, Post: pid})
	}
	return s.do(Event{Type: ActionLike, Target: author, Post: pid}, func() (bool, error) {
		if s.p.cfg.GraphWrites {
			return s.p.graph.Like(s.id, pid)
		}
		s.p.mu.Lock()
		if a, ok := s.p.accounts[author]; ok {
			a.likeCounts[pid]++
		}
		s.p.mu.Unlock()
		return true, nil
	})
}

// Follow follows the target account.
func (s *Session) Follow(target AccountID) error {
	if !s.p.Exists(target) {
		return s.fail(Event{Type: ActionFollow, Target: target})
	}
	return s.do(Event{Type: ActionFollow, Target: target}, func() (bool, error) {
		if s.p.cfg.GraphWrites {
			return s.p.graph.Follow(s.id, target)
		}
		return true, nil
	})
}

// Unfollow removes a follow edge.
func (s *Session) Unfollow(target AccountID) error {
	if !s.p.Exists(target) {
		return s.fail(Event{Type: ActionUnfollow, Target: target})
	}
	return s.do(Event{Type: ActionUnfollow, Target: target}, func() (bool, error) {
		if s.p.cfg.GraphWrites {
			return s.p.graph.Unfollow(s.id, target)
		}
		return true, nil
	})
}

// Comment comments on the given post.
func (s *Session) Comment(pid PostID, text string) error {
	author, ok := s.p.PostAuthor(pid)
	if !ok {
		return s.fail(Event{Type: ActionComment, Post: pid})
	}
	return s.do(Event{Type: ActionComment, Target: author, Post: pid}, func() (bool, error) {
		if s.p.cfg.GraphWrites {
			return true, s.p.graph.AddComment(s.id, pid, text, s.p.clk.Now())
		}
		return true, nil
	})
}

// Post publishes a new post and returns its ID.
func (s *Session) Post() (PostID, error) {
	var pid PostID
	err := s.do(Event{Type: ActionPost}, func() (bool, error) {
		s.p.mu.Lock()
		a, ok := s.p.accounts[s.id]
		if !ok || a.deleted {
			s.p.mu.Unlock()
			return false, ErrAccountGone
		}
		pid = s.p.addPostLocked(a)
		s.p.mu.Unlock()
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	return pid, nil
}

// fail records a structurally invalid request and returns an error.
func (s *Session) fail(ev Event) error {
	ev.Actor = s.id
	ev.Time = s.p.clk.Now()
	ev.IP = s.client.IP
	ev.Client = s.client.Fingerprint
	ev.API = s.client.API
	ev.Outcome = OutcomeFailed
	s.p.emit(ev)
	return fmt.Errorf("platform: %s target does not exist", ev.Type)
}

// do runs one action through the full request path: session validity, rate
// limit, gatekeeper, application, event emission, and (for delay-remove
// verdicts on follows) scheduling the deferred removal.
func (s *Session) do(ev Event, apply func() (bool, error)) error {
	ev.Actor = s.id
	ev.Time = s.p.clk.Now()
	ev.IP = s.client.IP
	ev.Client = s.client.Fingerprint
	ev.API = s.client.API

	p := s.p
	p.mu.Lock()
	a, ok := p.accounts[s.id]
	if !ok || a.deleted || a.sessionEpoch != s.epoch {
		p.mu.Unlock()
		return ErrSessionRevoked
	}
	var fd FaultDecision
	if p.faults != nil {
		asn, _ := p.net.Lookup(ev.IP)
		fd = p.faults.Decide(ev.Time, s.id, ev.Type, asn, uint64(ev.Target)<<32^uint64(ev.Post))
	}
	if fd.RevokeSession {
		// Session-store flap: every live session for the account dies,
		// exactly like an organic revocation — no event is emitted.
		a.sessionEpoch++
		p.mu.Unlock()
		return ErrSessionRevoked
	}
	if fd.Unavailable {
		// Injected before rate limiting on purpose: an unavailable
		// request consumes no budget, so a client retry cannot
		// double-count against the limiter.
		p.mu.Unlock()
		ev.Outcome = OutcomeUnavailable
		p.emit(ev)
		return ErrUnavailable
	}
	limit := p.cfg.PrivateHourlyLimit
	if s.client.API == APIOAuth {
		limit = p.cfg.OAuthHourlyLimit
	}
	effLimit := limit
	if fd.LimitScale > 0 && fd.LimitScale < 1 && limit > 0 {
		// Rate-limit storm: the limit is temporarily a fraction of its
		// configured value (at least 1, so storms throttle rather than
		// blackhole).
		effLimit = int(float64(limit) * fd.LimitScale)
		if effLimit < 1 {
			effLimit = 1
		}
	}
	if !p.limiter.allow(s.id, ev.Time, effLimit) {
		// A denial is storm-attributable when the tightened limit fired
		// below the level the ordinary limit would have tolerated.
		storm := effLimit < limit && p.limiter.peek(s.id, ev.Time) < limit
		p.mu.Unlock()
		if m := p.tel; m != nil {
			m.rateLimited.Inc()
			if storm {
				m.stormDenied.Inc()
			}
		}
		ev.Outcome = OutcomeRateLimited
		p.emit(ev)
		return ErrRateLimited
	}
	gate := p.gate
	p.mu.Unlock()

	verdict := Allow
	if gate != nil {
		// The gatekeeper sees the request with its ASN resolved, exactly
		// the signal surface detection uses.
		req := ev
		if asn, ok := p.net.Lookup(req.IP); ok {
			req.ASN = asn
		}
		verdict = gate.Check(req)
		if m := p.tel; m != nil {
			m.gateChecks.Inc()
			switch verdict.Kind {
			case VerdictBlock:
				m.verdictBlock.Inc()
			case VerdictDelayRemove:
				m.verdictDelay.Inc()
			}
		}
	}
	if verdict.Kind == VerdictBlock {
		ev.Outcome = OutcomeBlocked
		p.emit(ev)
		return ErrBlocked
	}

	applied, err := apply()
	if err != nil {
		ev.Outcome = OutcomeFailed
		p.emit(ev)
		return err
	}
	ev.Outcome = OutcomeAllowed
	ev.Duplicate = !applied
	p.emit(ev)

	if verdict.Kind == VerdictDelayRemove && ev.Type == ActionFollow {
		from, to := ev.Actor, ev.Target
		delay := verdict.RemoveAfter
		if delay <= 0 {
			delay = 24 * time.Hour
		}
		p.sched.After(delay, func() {
			if p.cfg.GraphWrites {
				// Either endpoint may be gone by now; removal is then moot.
				if !p.graph.Exists(from) || !p.graph.Exists(to) {
					return
				}
				if removed, _ := p.graph.Unfollow(from, to); !removed {
					return
				}
			}
			p.emit(Event{
				Time: p.clk.Now(), Type: ActionUnfollow, Actor: from,
				Target: to, Outcome: OutcomeAllowed, Enforcement: true,
			})
		})
	}
	return nil
}
