package platform

// Session is an authenticated client acting as one account. Sessions are
// exactly what customers hand to an AAS: whoever holds the session can act
// as the account until the password is reset.
//
// A session is safe for concurrent use, but simulation code normally drives
// it from scheduler callbacks on the single simulated timeline.
//
// Every action is submitted as a Request through Do — the single entry
// point into the moderation pipeline. The former per-action shorthand
// methods (Follow, Like, ...) are gone; network clients reach Do through
// the /v1 wire envelope (internal/wire) instead.
type Session struct {
	p      *Platform
	id     AccountID
	epoch  uint64
	client ClientInfo
}

// Account returns the account this session acts as.
func (s *Session) Account() AccountID { return s.id }

// Client returns the session's client metadata.
func (s *Session) Client() ClientInfo { return s.client }
