package platform

// Session is an authenticated client acting as one account. Sessions are
// exactly what customers hand to an AAS: whoever holds the session can act
// as the account until the password is reset.
//
// A session is safe for concurrent use, but simulation code normally drives
// it from scheduler callbacks on the single simulated timeline.
//
// Actions are submitted as a Request through Do; the named methods below
// remain as shorthand wrappers.
type Session struct {
	p      *Platform
	id     AccountID
	epoch  uint64
	client ClientInfo
}

// Account returns the account this session acts as.
func (s *Session) Account() AccountID { return s.id }

// Client returns the session's client metadata.
func (s *Session) Client() ClientInfo { return s.client }

// Like likes the given post on behalf of the session's account.
//
// Deprecated: submit a Request through Session.Do instead; this is a thin
// wrapper kept for convenience.
func (s *Session) Like(pid PostID) error {
	return s.Do(Request{Action: ActionLike, Post: pid}).Err
}

// Follow follows the target account.
//
// Deprecated: submit a Request through Session.Do instead; this is a thin
// wrapper kept for convenience.
func (s *Session) Follow(target AccountID) error {
	return s.Do(Request{Action: ActionFollow, Target: target}).Err
}

// Unfollow removes a follow edge.
//
// Deprecated: submit a Request through Session.Do instead; this is a thin
// wrapper kept for convenience.
func (s *Session) Unfollow(target AccountID) error {
	return s.Do(Request{Action: ActionUnfollow, Target: target}).Err
}

// Comment comments on the given post.
//
// Deprecated: submit a Request through Session.Do instead; this is a thin
// wrapper kept for convenience.
func (s *Session) Comment(pid PostID, text string) error {
	return s.Do(Request{Action: ActionComment, Post: pid, Text: text}).Err
}

// Post publishes a new post and returns its ID.
//
// Deprecated: submit a Request through Session.Do instead; this is a thin
// wrapper kept for convenience.
func (s *Session) Post() (PostID, error) {
	resp := s.Do(Request{Action: ActionPost})
	return resp.Post, resp.Err
}

// PostTagged publishes a post carrying hashtags.
//
// Deprecated: submit a Request through Session.Do instead; this is a thin
// wrapper kept for convenience.
func (s *Session) PostTagged(tags ...string) (PostID, error) {
	resp := s.Do(Request{Action: ActionPost, Tags: tags})
	return resp.Post, resp.Err
}
