package platform

import (
	"sync"

	"footsteps/internal/telemetry"
)

// The platform's mutable per-account state — the account records
// themselves (credentials, profile, session epoch, posts, like counts)
// and the hourly rate-limit buckets — is partitioned into N lock-striped
// shards keyed by a stable hash of AccountID. The post→author index is
// striped the same way by PostID. Striping lets the parallel planning
// phase read different accounts without rendezvousing on one global
// RWMutex, and lets independent apply-path mutations proceed without
// false sharing of a single lock.
//
// Shard count is a pure performance knob: the hash is a fixed function
// of the ID (never of the shard count's runtime environment), every
// lookup is exact-key, and nothing ever iterates a shard map in an
// order that reaches the event stream — so the FSEV1 bytes are
// identical at every shard count (enforced in internal/simtest).
//
// Lock-ordering rule (deadlock freedom): nameMu → account shard →
// post-index stripe → socialgraph locks. Paths that need two locks of
// the same family take them in ascending shard-index order; no path
// acquires an earlier-ranked lock while holding a later-ranked one.

// DefaultShards is the stripe count used when Config.Shards is zero.
const DefaultShards = 8

// shardHash is a SplitMix64-style finalizer: a stable, well-mixed pure
// function of the 64-bit key. IDs are assigned densely from 1, so
// without mixing, consecutive accounts — which services enroll and act
// on in waves — would stripe into adjacent shards in lockstep.
func shardHash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// normShards clamps a configured shard count to a usable value.
func normShards(n int) int {
	if n < 1 {
		return DefaultShards
	}
	return n
}

// shard is one stripe of account state plus the rate-limit buckets of
// the accounts it owns. Account records live in a struct-of-arrays
// table (table.go) indexed by dense rows; the limiter's buckets are
// parallel arrays over the same rows.
type shard struct {
	mu      sync.RWMutex
	tab     accountTable
	limiter *hourlyLimiter

	// contention counts lock acquisitions that found the stripe already
	// held (a failed TryLock/TryRLock before blocking). nil = telemetry
	// off; pure observer either way.
	contention *telemetry.Counter
}

func newShard() *shard {
	return &shard{limiter: newHourlyLimiter()}
}

// lock acquires the stripe's write lock, counting contention.
func (s *shard) lock() {
	if s.mu.TryLock() {
		return
	}
	s.contention.Inc()
	s.mu.Lock()
}

// rlock acquires the stripe's read lock, counting contention.
func (s *shard) rlock() {
	if s.mu.TryRLock() {
		return
	}
	s.contention.Inc()
	s.mu.RLock()
}

// shardFor returns the stripe owning the account.
func (p *Platform) shardFor(id AccountID) *shard {
	return p.shards[shardHash(uint64(id))%uint64(len(p.shards))]
}

// postStripe is one stripe of the post→author index.
type postStripe struct {
	mu         sync.RWMutex
	author     map[PostID]AccountID
	contention *telemetry.Counter
}

func (s *postStripe) lock() {
	if s.mu.TryLock() {
		return
	}
	s.contention.Inc()
	s.mu.Lock()
}

func (s *postStripe) rlock() {
	if s.mu.TryRLock() {
		return
	}
	s.contention.Inc()
	s.mu.RLock()
}

// postStripeFor returns the stripe owning the post's author record.
func (p *Platform) postStripeFor(pid PostID) *postStripe {
	return p.postIdx[shardHash(uint64(pid))%uint64(len(p.postIdx))]
}
