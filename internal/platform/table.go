package platform

import (
	"sort"
	"time"

	"footsteps/internal/intern"
)

// accountTable is one shard's account records laid out struct-of-arrays:
// a dense-row allocator (intern.Dense) maps the sparse AccountID space
// onto rows of parallel slices, one slice per field. Compared with the
// map[AccountID]*account it replaced, the table stores an account in a
// handful of contiguous array cells instead of a heap object plus two
// maps — the difference between ~1 KB and ~200 B per account, which is
// what lets a million-account world fit in a few GB (see
// docs/PERFORMANCE.md, "Scaling to 1M accounts").
//
// Rows are assigned in first-registration order and never recycled: a
// deleted account keeps its row with deleted[r] set, exactly as the map
// kept tombstoned records. Per-account small collections (login-country
// tallies, per-post like counts) are kept as sorted slices — they are
// tiny in practice, a sorted slice is half the size of a map, and
// keeping them sorted makes snapshot encoding a straight copy.
//
// The table is not internally locked; its owning shard's mutex covers
// every access, exactly like the map it replaced.
type accountTable struct {
	ids intern.Dense // AccountID ↔ dense row

	usernames     []string
	passwords     []string
	profiles      []Profile
	homeCountries []string
	created       []time.Time
	deleted       []bool
	sessionEpochs []uint64
	logins        [][]CountryCount // sorted by country
	posts         [][]PostID       // creation order
	likeCounts    [][]PostCount    // sorted by post ID (stateless-graph mode)
}

// row returns the dense row for id, if the account has ever been
// registered on this shard (deleted rows included, like the old map).
func (t *accountTable) row(id AccountID) (uint32, bool) {
	return t.ids.Lookup(uint64(id))
}

// id returns the AccountID occupying row r.
func (t *accountTable) id(r uint32) AccountID { return AccountID(t.ids.ID(r)) }

// len reports the number of rows ever assigned (live + deleted).
func (t *accountTable) len() int { return t.ids.Len() }

// add appends a fresh account row and returns it.
func (t *accountTable) add(id AccountID, username, password string, prof Profile, home string, created time.Time) uint32 {
	r := t.ids.Index(uint64(id))
	if int(r) != len(t.usernames) {
		panic("platform: account registered twice")
	}
	t.usernames = append(t.usernames, username)
	t.passwords = append(t.passwords, password)
	t.profiles = append(t.profiles, prof)
	t.homeCountries = append(t.homeCountries, home)
	t.created = append(t.created, created)
	t.deleted = append(t.deleted, false)
	t.sessionEpochs = append(t.sessionEpochs, 0)
	t.logins = append(t.logins, nil)
	t.posts = append(t.posts, nil)
	t.likeCounts = append(t.likeCounts, nil)
	return r
}

// reset drops every row (restore path).
func (t *accountTable) reset() {
	t.ids.Restore(nil)
	t.usernames = t.usernames[:0]
	t.passwords = t.passwords[:0]
	t.profiles = t.profiles[:0]
	t.homeCountries = t.homeCountries[:0]
	t.created = t.created[:0]
	t.deleted = t.deleted[:0]
	t.sessionEpochs = t.sessionEpochs[:0]
	t.logins = t.logins[:0]
	t.posts = t.posts[:0]
	t.likeCounts = t.likeCounts[:0]
}

// bumpLogin tallies one login from country on row r, keeping the tally
// sorted by country. The slice has one entry per distinct country the
// account ever logged in from — one or two, in practice — so the
// sorted-insert memmove is noise and steady-state revisits allocate
// nothing.
func (t *accountTable) bumpLogin(r uint32, country string) {
	ls := t.logins[r]
	i := sort.Search(len(ls), func(i int) bool { return ls[i].Country >= country })
	if i < len(ls) && ls[i].Country == country {
		ls[i].N++
		return
	}
	ls = append(ls, CountryCount{})
	copy(ls[i+1:], ls[i:])
	ls[i] = CountryCount{Country: country, N: 1}
	t.logins[r] = ls
}

// bumpLike tallies one like on post pid owned by row r (stateless-graph
// mode), keeping the tally sorted by post ID. Re-likes of a post the
// row already tracks allocate nothing.
func (t *accountTable) bumpLike(r uint32, pid PostID) {
	lc := t.likeCounts[r]
	i := sort.Search(len(lc), func(i int) bool { return lc[i].Post >= pid })
	if i < len(lc) && lc[i].Post == pid {
		lc[i].N++
		return
	}
	lc = append(lc, PostCount{})
	copy(lc[i+1:], lc[i:])
	lc[i] = PostCount{Post: pid, N: 1}
	t.likeCounts[r] = lc
}

// likeCount returns row r's tally for pid.
func (t *accountTable) likeCount(r uint32, pid PostID) int {
	lc := t.likeCounts[r]
	i := sort.Search(len(lc), func(i int) bool { return lc[i].Post >= pid })
	if i < len(lc) && lc[i].Post == pid {
		return lc[i].N
	}
	return 0
}
