package platform

import (
	"net/netip"
	"sync/atomic"
	"time"

	"footsteps/internal/netsim"
	"footsteps/internal/socialgraph"
)

// ActionType enumerates the user-visible actions on the platform. These are
// exactly the action families the studied AASs sell (Table 1), plus the
// login events detection and geolocation rely on.
type ActionType int

// Action types.
const (
	ActionLike ActionType = iota
	ActionFollow
	ActionUnfollow
	ActionComment
	ActionPost
	ActionLogin
)

func (t ActionType) String() string {
	switch t {
	case ActionLike:
		return "like"
	case ActionFollow:
		return "follow"
	case ActionUnfollow:
		return "unfollow"
	case ActionComment:
		return "comment"
	case ActionPost:
		return "post"
	case ActionLogin:
		return "login"
	default:
		return "unknown"
	}
}

// Outcome records what happened to a request.
type Outcome int

// Outcomes.
const (
	// OutcomeAllowed: the action succeeded and is visible.
	OutcomeAllowed Outcome = iota
	// OutcomeBlocked: a countermeasure rejected the action synchronously;
	// the caller observes the failure (the oracle problem of §6.1).
	OutcomeBlocked
	// OutcomeRateLimited: the platform's ordinary API rate limit fired.
	OutcomeRateLimited
	// OutcomeFailed: structural failure (missing target, revoked session).
	OutcomeFailed
	// OutcomeUnavailable: transient infrastructure failure injected by a
	// fault schedule; the request never reached the application tier.
	OutcomeUnavailable
)

func (o Outcome) String() string {
	switch o {
	case OutcomeAllowed:
		return "allowed"
	case OutcomeBlocked:
		return "blocked"
	case OutcomeRateLimited:
		return "rate-limited"
	case OutcomeFailed:
		return "failed"
	case OutcomeUnavailable:
		return "unavailable"
	default:
		return "unknown"
	}
}

// APIKind distinguishes the public OAuth API (heavily rate limited) from
// the private mobile API that AASs spoof (§2).
type APIKind int

// API kinds.
const (
	APIPrivate APIKind = iota // reverse-engineered mobile client API
	APIOAuth                  // public third-party API
)

func (a APIKind) String() string {
	if a == APIOAuth {
		return "oauth"
	}
	return "private"
}

// Event is one platform request, successful or not. Events are the only
// observable record of activity: detection, monitoring, and all analyses
// consume the event stream rather than poking at graph internals.
type Event struct {
	Seq     uint64
	Time    time.Time
	Type    ActionType
	Actor   socialgraph.AccountID
	Target  socialgraph.AccountID // recipient: followee, or post author
	Post    socialgraph.PostID    // for like/comment/post events
	IP      netip.Addr
	ASN     netsim.ASN // resolved at emit time from IP
	Client  string     // client fingerprint string
	API     APIKind
	Outcome Outcome
	// Enforcement marks actions the platform itself performed, e.g. the
	// deferred removal of a follow (§6.1). Services' block detectors never
	// see these synchronously.
	Enforcement bool
	// Duplicate marks allowed actions that were structural no-ops (liking
	// an already-liked post, re-following). The request happened — abuse
	// detection counts it — but no notification reaches the target.
	Duplicate bool
}

// EventLog fans events out to subscribers in subscription order. Emission
// is synchronous: by the time Emit returns every subscriber has seen the
// event. The log stores nothing itself; subscribers that need history keep
// their own (see Collector).
//
// Subscribe must complete before the first Emit (wire subscribers during
// world construction). Subscribers must not Emit re-entrantly; reactions to
// an event — organic reciprocation, countermeasure cleanup — are scheduled
// on the simulation clock instead, which also matches reality: nobody
// reciprocates a follow in the same instant it lands.
type EventLog struct {
	subs []func(Event)
	seq  atomic.Uint64
}

// Subscribe registers fn for all future events.
func (l *EventLog) Subscribe(fn func(Event)) { l.subs = append(l.subs, fn) }

// Emit assigns the event a sequence number and delivers it.
func (l *EventLog) Emit(ev Event) {
	ev.Seq = l.seq.Add(1)
	for _, fn := range l.subs {
		fn(ev)
	}
}

// Seq returns the number of events emitted so far.
func (l *EventLog) Seq() uint64 { return l.seq.Load() }

// RestoreSeq sets the sequence counter so the next emitted event gets
// sequence n+1. The snapshot/restore path uses it to keep event numbering
// continuous across a resume: a restored world's first event must carry
// the sequence the straight-through run would have assigned.
func (l *EventLog) RestoreSeq(n uint64) { l.seq.Store(n) }

// Collector is a convenience subscriber that retains matching events.
// Filter may be nil to keep everything. Use only where volume is bounded
// (honeypot studies, tests); the 90-day business simulations aggregate
// on the fly instead.
type Collector struct {
	Filter func(Event) bool
	Events []Event
}

// Attach subscribes the collector to the log and returns it.
func (c *Collector) Attach(l *EventLog) *Collector {
	l.Subscribe(func(ev Event) {
		if c.Filter == nil || c.Filter(ev) {
			c.Events = append(c.Events, ev)
		}
	})
	return c
}
