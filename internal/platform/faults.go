package platform

import (
	"time"

	"footsteps/internal/netsim"
)

// FaultDecision is the verdict a fault injector hands back for one
// request. The zero value means "no fault".
type FaultDecision struct {
	// Unavailable fails the request with ErrUnavailable before it
	// reaches rate limiting, so a faulted request never consumes
	// budget and a client retry cannot double-count.
	Unavailable bool
	// RevokeSession bumps the account's session epoch (a session-store
	// flap), invalidating every live session for the account.
	RevokeSession bool
	// Latency is added simulated service latency. Under the
	// discrete-event clock it is observational: recorded by the
	// injector's telemetry, not a real delay.
	Latency time.Duration
	// LimitScale, when in (0, 1), multiplies the hourly rate limit for
	// this request (a rate-limit storm). 0 means no storm.
	LimitScale float64
}

// FaultInjector is consulted on every platform request (session
// actions and logins). Implementations MUST be pure functions of their
// arguments plus construction-time state: the platform calls Decide
// under a shard's write lock from serial apply paths, and run determinism
// across worker counts rests on the verdict for a request being
// independent of call order. internal/faults provides the
// implementation; the interface lives here so the dependency points
// from faults to platform.
type FaultInjector interface {
	Decide(now time.Time, actor AccountID, action ActionType, asn netsim.ASN, salt uint64) FaultDecision
}

// SetFaultInjector installs the fault injector. Call during world
// construction, before traffic; nil (the default) disables injection
// and costs one nil check per request.
func (p *Platform) SetFaultInjector(fi FaultInjector) {
	p.hookMu.Lock()
	p.faults = fi
	p.hookMu.Unlock()
}
