package platform

import (
	"testing"
	"time"
)

// Steady-state allocation budgets for the request pipeline, enforced by
// TestAllocBudgetDo. "Steady state" means the account, session, hashtag
// ring, and limiter window already exist — the regime every tick after
// the first runs in. Budgets are allocations per operation as reported
// by testing.AllocsPerRun; raise one only with a profile showing why
// (see docs/PERFORMANCE.md).
const (
	allocBudgetDoDuplicateLike = 0 // Platform.Do: re-like of an already-liked post
	allocBudgetDoFollowPair    = 0 // Platform.Do: follow+unfollow round trip, per pair
	allocBudgetDoComment       = 1 // Platform.Do: comment (graph appends the comment record)
	allocBudgetAppendRecent    = 0 // Platform.AppendRecentByTag into a warm buffer
	allocBudgetLimiterAllow    = 0 // hourlyLimiter.allow on a grown table, incl. hour rollover
)

// allocWorld is a minimal steady-state world: two accounts, a live
// session each, one seed post, one indexed hashtag.
func allocWorld(t *testing.T) (w *testWorld, alice AccountID, sa, sb *Session, pid PostID) {
	t.Helper()
	w = newWorld(t, DefaultConfig())
	alice = w.register(t, "alice")
	w.register(t, "bob")
	sa = w.login(t, "alice", 10)
	sb = w.login(t, "bob", 10)
	var ok bool
	pid, ok = w.p.LatestPost(alice)
	if !ok {
		t.Fatal("alice has no seed post")
	}
	return w, alice, sa, sb, pid
}

// TestAllocBudgetDo pins the per-operation allocation count of the
// Platform.Do steady-state paths. A failure names the function that
// regressed; before raising a budget, profile the path (go test
// -bench BenchmarkAllocStep -benchmem plus -memprofile) and record the
// reason in docs/PERFORMANCE.md.
func TestAllocBudgetDo(t *testing.T) {
	t.Run("duplicate-like", func(t *testing.T) {
		_, _, _, sb, pid := allocWorld(t)
		if resp := sb.Do(Request{Action: ActionLike, Post: pid}); resp.Err != nil {
			t.Fatalf("seed like failed: %v", resp.Err)
		}
		got := testing.AllocsPerRun(100, func() {
			sb.Do(Request{Action: ActionLike, Post: pid})
		})
		if got > allocBudgetDoDuplicateLike {
			t.Errorf("Platform.Do(ActionLike, duplicate) allocates %.1f/op, budget %d — the steady-state like path regressed",
				got, allocBudgetDoDuplicateLike)
		}
	})

	t.Run("follow-unfollow-pair", func(t *testing.T) {
		_, alice, _, sb, _ := allocWorld(t)
		// Warm the graph's adjacency buckets.
		sb.Do(Request{Action: ActionFollow, Target: alice})
		sb.Do(Request{Action: ActionUnfollow, Target: alice})
		got := testing.AllocsPerRun(100, func() {
			sb.Do(Request{Action: ActionFollow, Target: alice})
			sb.Do(Request{Action: ActionUnfollow, Target: alice})
		})
		if got > allocBudgetDoFollowPair {
			t.Errorf("Platform.Do follow+unfollow pair allocates %.1f/op, budget %d — the steady-state follow path regressed",
				got, allocBudgetDoFollowPair)
		}
	})

	t.Run("comment", func(t *testing.T) {
		_, _, _, sb, pid := allocWorld(t)
		sb.Do(Request{Action: ActionComment, Post: pid, Text: "nice!"})
		got := testing.AllocsPerRun(100, func() {
			sb.Do(Request{Action: ActionComment, Post: pid, Text: "nice!"})
		})
		if got > allocBudgetDoComment {
			t.Errorf("Platform.Do(ActionComment) allocates %.1f/op, budget %d — the steady-state comment path regressed",
				got, allocBudgetDoComment)
		}
	})
}

// TestAllocBudgetAppendRecentByTag pins the hashtag candidate query that
// feeds reciprocity planning: with a warm caller-provided buffer it must
// not allocate.
func TestAllocBudgetAppendRecentByTag(t *testing.T) {
	w, _, sa, _, _ := allocWorld(t)
	resp := sa.Do(Request{Action: ActionPost, Tags: []string{"l4l"}})
	if resp.Err != nil {
		t.Fatalf("tagged post failed: %v", resp.Err)
	}
	buf := w.p.AppendRecentByTag(nil, "l4l", 64)
	if len(buf) == 0 {
		t.Fatal("hashtag index empty; query is vacuous")
	}
	got := testing.AllocsPerRun(100, func() {
		buf = w.p.AppendRecentByTag(buf[:0], "l4l", 64)
	})
	if got > allocBudgetAppendRecent {
		t.Errorf("Platform.AppendRecentByTag allocates %.1f/op into a warm buffer, budget %d",
			got, allocBudgetAppendRecent)
	}
}

// TestAllocBudgetHourlyLimiter pins the rate-limit check on the tick
// hot path: once the dense table covers a row, allow must not allocate
// — including at hour rollover, where the epoch-marked bucket is reset
// in place rather than reallocated (the map[AccountID]*window layout
// this replaced minted a heap object per account per hour).
func TestAllocBudgetHourlyLimiter(t *testing.T) {
	l := newHourlyLimiter()
	const rows = 1024
	l.ensure(rows - 1)
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	hour := 0
	got := testing.AllocsPerRun(100, func() {
		at := base.Add(time.Duration(hour) * time.Hour) // new bucket every run
		hour++
		for r := uint32(0); r < rows; r++ {
			l.allow(r, at, 30)
		}
	})
	if got > allocBudgetLimiterAllow {
		t.Errorf("hourlyLimiter.allow allocates %.1f per %d-row sweep, budget %d — the dense-table limiter regressed",
			got, rows, allocBudgetLimiterAllow)
	}
}
