package platform

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/rng"
	"footsteps/internal/socialgraph"
)

// propWorld is a self-contained fixture usable inside quick.Check
// closures (no *testing.T needed).
type propWorld struct {
	p     *Platform
	sched *clock.Scheduler
	reg   *netsim.Registry
}

func newPropWorld(seed uint16) *propWorld {
	_ = seed
	reg := netsim.NewRegistry()
	reg.Register(10, "res", "USA", netsim.KindResidential)
	sched := clock.NewScheduler(clock.New())
	return &propWorld{
		p:     New(DefaultConfig(), socialgraph.New(), reg, sched),
		sched: sched,
		reg:   reg,
	}
}

// TestActionSequenceInvariants drives random action sequences through real
// sessions and checks structural invariants afterwards:
//
//   - LikeCount(p) == len(Likers(p)) for every post;
//   - sum of in-degrees == sum of out-degrees;
//   - blocked actions leave no graph trace;
//   - every event's Outcome matches the error the caller saw.
func TestActionSequenceInvariants(t *testing.T) {
	check := func(seed uint16, opsRaw []uint16) bool {
		w := newPropWorld(seed)
		const nAccts = 6
		sessions := make([]*Session, nAccts)
		ids := make([]AccountID, nAccts)
		for i := range sessions {
			name := fmt.Sprintf("u%d", i)
			id, err := w.p.RegisterAccount(name, "pw", Profile{PhotoCount: 2}, "USA")
			if err != nil {
				return false
			}
			ids[i] = id
			s, err := w.p.Login(name, "pw", ClientInfo{IP: w.reg.Allocate(10)})
			if err != nil {
				return false
			}
			sessions[i] = s
		}
		// A flaky gatekeeper that blocks ~1/4 of requests.
		gateRNG := rng.New(uint64(seed) + 1)
		w.p.SetGatekeeper(GatekeeperFunc(func(req Event) Verdict {
			if gateRNG.Bool(0.25) {
				return Verdict{Kind: VerdictBlock}
			}
			return Allow
		}))

		outcomeMismatch := false
		var lastEvent Event
		w.p.Log().Subscribe(func(ev Event) { lastEvent = ev })

		for _, op := range opsRaw {
			actor := sessions[int(op)%nAccts]
			target := ids[int(op>>3)%nAccts]
			var err error
			switch (op >> 6) % 4 {
			case 0:
				err = actor.Do(Request{Action: ActionFollow, Target: target}).Err
			case 1:
				err = actor.Do(Request{Action: ActionUnfollow, Target: target}).Err
			case 2:
				if pid, ok := w.p.LatestPost(target); ok {
					err = actor.Do(Request{Action: ActionLike, Post: pid}).Err
				}
			case 3:
				err = actor.Do(Request{Action: ActionPost}).Err
			}
			// The event the log saw must agree with the caller's error.
			switch {
			case errors.Is(err, ErrBlocked) && lastEvent.Outcome != OutcomeBlocked:
				outcomeMismatch = true
			case err == nil && lastEvent.Outcome != OutcomeAllowed:
				outcomeMismatch = true
			}
			w.sched.Clock().Advance(time.Minute)
		}
		if outcomeMismatch {
			return false
		}

		// Degree conservation.
		in, out := 0, 0
		for _, id := range ids {
			in += w.p.Graph().InDegree(id)
			out += w.p.Graph().OutDegree(id)
		}
		if in != out {
			return false
		}
		// Like-count consistency.
		for _, id := range ids {
			for _, pid := range w.p.Posts(id) {
				if w.p.Graph().LikeCount(pid) != len(w.p.Graph().Likers(pid)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSelfActionsNeverCorruptState: self-follows fail, self-likes are
// allowed (as on the real platform) and stay consistent.
func TestSelfActionsNeverCorruptState(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	a := w.register(t, "alice")
	sa := w.login(t, "alice", 10)
	if err := sa.Do(Request{Action: ActionFollow, Target: a}).Err; err == nil {
		t.Fatal("self-follow succeeded")
	}
	if w.p.Graph().InDegree(a) != 0 || w.p.Graph().OutDegree(a) != 0 {
		t.Fatal("self-follow left graph traces")
	}
	pid, _ := w.p.LatestPost(a)
	if err := sa.Do(Request{Action: ActionLike, Post: pid}).Err; err != nil {
		t.Fatalf("self-like should be allowed: %v", err)
	}
	if w.p.LikeCount(pid) != 1 {
		t.Fatal("self-like not recorded")
	}
}

// TestGatekeeperPanicsDoNotOccur ensures the gatekeeper sees fully formed
// requests for every action type (no zero timestamps, actor always set).
func TestGatekeeperSeesWellFormedRequests(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.register(t, "alice")
	b := w.register(t, "bob")
	bad := 0
	w.p.SetGatekeeper(GatekeeperFunc(func(req Event) Verdict {
		if req.Actor == 0 || req.Time.IsZero() {
			bad++
		}
		return Allow
	}))
	sa := w.login(t, "alice", 10)
	pid, _ := w.p.LatestPost(b)
	sa.Do(Request{Action: ActionLike, Post: pid})
	sa.Do(Request{Action: ActionFollow, Target: b})
	sa.Do(Request{Action: ActionUnfollow, Target: b})
	sa.Do(Request{Action: ActionComment, Post: pid, Text: "x"})
	sa.Do(Request{Action: ActionPost})
	if bad != 0 {
		t.Fatalf("%d malformed gatekeeper requests", bad)
	}
}

// TestRateLimitedActionsLeaveNoTrace: a rate-limited like must not reach
// the graph and must carry the rate-limited outcome.
func TestRateLimitedActionsLeaveNoTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrivateHourlyLimit = 1
	w := newWorld(t, cfg)
	w.register(t, "alice")
	b := w.register(t, "bob")
	var limited []Event
	w.p.Log().Subscribe(func(ev Event) {
		if ev.Outcome == OutcomeRateLimited {
			limited = append(limited, ev)
		}
	})
	sa := w.login(t, "alice", 10)
	pid, _ := w.p.LatestPost(b)
	if err := sa.Do(Request{Action: ActionLike, Post: pid}).Err; err != nil {
		t.Fatal(err)
	}
	if err := sa.Do(Request{Action: ActionFollow, Target: b}).Err; !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v", err)
	}
	if w.p.Graph().Follows(sa.Account(), b) {
		t.Fatal("rate-limited follow reached the graph")
	}
	if len(limited) != 1 || limited[0].Type != ActionFollow {
		t.Fatalf("limited events %+v", limited)
	}
}
