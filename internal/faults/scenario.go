package faults

import (
	"fmt"
	"sort"

	"footsteps/internal/netsim"
)

// scenarioOutageASN is the datacenter ASN degraded by the built-in
// outage scenarios. The value is aas.ASNHublaagramUS (1004), hardcoded
// so this infrastructure package does not depend on the service
// catalog; a test in this package pins the two in sync.
const scenarioOutageASN netsim.ASN = 1004

// scenarios are the built-in fault schedules. Windows start a day or
// more into the run so every scenario also exercises clean operation,
// and end by day 5 so even short test runs cover the recovery phase.
var scenarios = map[string]*Profile{
	"blip": {
		Name: "blip",
		Windows: []Window{
			{Kind: KindUnavailable, FromDay: 1, ToDay: 2, Probability: 0.2},
			{Kind: KindLatency, FromDay: 1, ToDay: 2, Probability: 0.3, LatencyMS: 250},
		},
	},
	"flap": {
		Name: "flap",
		Windows: []Window{
			{Kind: KindSessionFlap, FromDay: 1, ToDay: 5, Probability: 0.01},
		},
	},
	"asn-outage": {
		Name: "asn-outage",
		Windows: []Window{
			{Kind: KindASNOutage, FromDay: 2, ToDay: 4, ASN: scenarioOutageASN, Availability: 0.15},
		},
	},
	// Storm scales are tight (5% of the configured cap, 18/hour at the
	// default 360) because simulation-scale actors pace far below the
	// real caps: a storm that merely halves the limit never binds.
	"storm": {
		Name: "storm",
		Windows: []Window{
			{Kind: KindRateLimitStorm, FromDay: 1, ToDay: 3, LimitScale: 0.05},
		},
	},
	"mixed": {
		Name: "mixed",
		Windows: []Window{
			{Kind: KindUnavailable, FromDay: 1, ToDay: 4, Probability: 0.12},
			{Kind: KindLatency, FromDay: 1, ToDay: 4, Probability: 0.25, LatencyMS: 200},
			{Kind: KindSessionFlap, FromDay: 1, ToDay: 5, Probability: 0.008},
			{Kind: KindASNOutage, FromDay: 2, ToDay: 4, ASN: scenarioOutageASN, Availability: 0.3},
			{Kind: KindRateLimitStorm, FromDay: 3, ToDay: 5, LimitScale: 0.05},
		},
	},
}

// Scenario returns a copy of the named built-in profile.
func Scenario(name string) (*Profile, error) {
	p, ok := scenarios[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown scenario %q (have: %v)", name, Scenarios())
	}
	cp := &Profile{Name: p.Name, Windows: append([]Window(nil), p.Windows...)}
	return cp, nil
}

// MustScenario is Scenario for known-good names; it panics on error.
func MustScenario(name string) *Profile {
	p, err := Scenario(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Scenarios lists the built-in scenario names, sorted.
func Scenarios() []string {
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
