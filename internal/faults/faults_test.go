package faults

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
)

func testInjector(t *testing.T, p *Profile) *Injector {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("test profile invalid: %v", err)
	}
	return NewInjector(p, rng.New(1).Split("faults"))
}

func TestProfileJSONRoundTrip(t *testing.T) {
	orig := &Profile{
		Name: "round-trip",
		Windows: []Window{
			{Kind: KindUnavailable, FromDay: 1, ToDay: 2.5, Probability: 0.2},
			{Kind: KindLatency, FromDay: 0, ToDay: 3, Probability: 0.5, LatencyMS: 250},
			{Kind: KindSessionFlap, FromDay: 2, ToDay: 4, Probability: 0.01},
			{Kind: KindASNOutage, FromDay: 1, ToDay: 2, ASN: 1004, Availability: 0.25},
			{Kind: KindRateLimitStorm, FromDay: 3, ToDay: 5, LimitScale: 0.5},
		},
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || len(back.Windows) != len(orig.Windows) {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	for i := range orig.Windows {
		if back.Windows[i] != orig.Windows[i] {
			t.Errorf("window %d: got %+v want %+v", i, back.Windows[i], orig.Windows[i])
		}
	}
}

func TestKindJSONNames(t *testing.T) {
	for k, name := range kindNames {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != `"`+name+`"` {
			t.Errorf("kind %d marshaled to %s, want %q", int(k), data, name)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"no_such_fault"`), &k); err == nil {
		t.Error("unknown kind name unmarshaled without error")
	}
	if _, err := json.Marshal(Kind(99)); err == nil {
		t.Error("unknown kind value marshaled without error")
	}
}

func TestValidateRejectsBadWindows(t *testing.T) {
	cases := []struct {
		name string
		w    Window
		want string
	}{
		{"inverted interval", Window{Kind: KindUnavailable, FromDay: 2, ToDay: 1, Probability: 0.5}, "to_day"},
		{"zero probability", Window{Kind: KindUnavailable, FromDay: 0, ToDay: 1}, "probability"},
		{"probability over 1", Window{Kind: KindSessionFlap, FromDay: 0, ToDay: 1, Probability: 1.5}, "probability"},
		{"latency without ms", Window{Kind: KindLatency, FromDay: 0, ToDay: 1, Probability: 0.5}, "latency_ms"},
		{"outage without asn", Window{Kind: KindASNOutage, FromDay: 0, ToDay: 1, Availability: 0.5}, "asn"},
		{"outage availability 1", Window{Kind: KindASNOutage, FromDay: 0, ToDay: 1, ASN: 7, Availability: 1}, "availability"},
		{"storm scale 1", Window{Kind: KindRateLimitStorm, FromDay: 0, ToDay: 1, LimitScale: 1}, "limit_scale"},
		{"unknown kind", Window{Kind: Kind(42), FromDay: 0, ToDay: 1}, "unknown kind"},
	}
	for _, tc := range cases {
		p := &Profile{Windows: []Window{tc.w}}
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.w)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := (*Profile)(nil).Validate(); err != nil {
		t.Errorf("nil profile (faults off) must validate: %v", err)
	}
}

func TestBuiltInScenariosValidate(t *testing.T) {
	names := Scenarios()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 built-in scenarios, got %v", names)
	}
	for _, name := range names {
		p, err := Scenario(name)
		if err != nil {
			t.Fatalf("Scenario(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("scenario %q carries name %q", name, p.Name)
		}
	}
	if _, err := Scenario("no-such-scenario"); err == nil {
		t.Error("unknown scenario name returned no error")
	}

	// Scenario must hand out copies: mutating one must not poison the
	// next caller's profile.
	a := MustScenario("mixed")
	a.Windows[0].Probability = 0.999
	if b := MustScenario("mixed"); b.Windows[0].Probability == 0.999 {
		t.Error("Scenario returned a shared profile; mutation leaked")
	}
}

// TestDecideIsPure is the determinism contract: the verdict for a given
// request is a pure function of the injector seed and the request
// identity — repeated calls, interleaved calls, and injectors rebuilt
// from the same rng stream all agree.
func TestDecideIsPure(t *testing.T) {
	p := MustScenario("mixed")
	inj := testInjector(t, p)
	now := clock.Epoch.Add(36 * time.Hour) // day 1.5, inside the mixed windows

	type req struct {
		actor  platform.AccountID
		action platform.ActionType
		salt   uint64
	}
	reqs := make([]req, 200)
	for i := range reqs {
		reqs[i] = req{platform.AccountID(i * 7), platform.ActionType(i % 5), uint64(i) * 13}
	}
	first := make([]platform.FaultDecision, len(reqs))
	for i, r := range reqs {
		first[i] = inj.Decide(now, r.actor, r.action, 0, r.salt)
	}
	// Reversed order, fresh injector from an identically-forked stream.
	inj2 := NewInjector(p, rng.New(1).Split("faults"))
	for i := len(reqs) - 1; i >= 0; i-- {
		r := reqs[i]
		if got := inj2.Decide(now, r.actor, r.action, 0, r.salt); got != first[i] {
			t.Fatalf("request %d verdict changed with call order/injector rebuild: %+v vs %+v", i, got, first[i])
		}
	}
	// Different seeds must produce different verdict patterns.
	inj3 := NewInjector(p, rng.New(2).Split("faults"))
	same := 0
	for i, r := range reqs {
		if inj3.Decide(now, r.actor, r.action, 0, r.salt) == first[i] {
			same++
		}
	}
	if same == len(reqs) {
		t.Error("different injector seeds produced identical verdicts for all 200 requests")
	}
}

func TestDecideProbabilityCalibration(t *testing.T) {
	const p = 0.3
	prof := &Profile{Windows: []Window{
		{Kind: KindUnavailable, FromDay: 0, ToDay: 10, Probability: p},
	}}
	inj := testInjector(t, prof)
	now := clock.Epoch.Add(12 * time.Hour)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if inj.Decide(now, platform.AccountID(i), platform.ActionLike, 0, uint64(i)).Unavailable {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.02 {
		t.Errorf("unavailable hit rate %.4f, want %.2f±0.02", got, p)
	}
}

func TestDecideWindowBoundaries(t *testing.T) {
	prof := &Profile{Windows: []Window{
		{Kind: KindUnavailable, FromDay: 1, ToDay: 2, Probability: 1},
	}}
	inj := testInjector(t, prof)
	cases := []struct {
		at   time.Time
		want bool
	}{
		{clock.Epoch.Add(23 * time.Hour), false},       // day 0: before
		{clock.Epoch.Add(24 * time.Hour), true},        // day 1: inclusive start
		{clock.Epoch.Add(47 * time.Hour), true},        // day 1.96: inside
		{clock.Epoch.Add(48 * time.Hour), false},       // day 2: exclusive end
		{clock.Epoch.Add(100 * 24 * time.Hour), false}, // long after
		{clock.Epoch.Add(-1 * time.Hour), false},       // before epoch
	}
	for _, tc := range cases {
		if got := inj.Decide(tc.at, 1, platform.ActionLike, 0, 0).Unavailable; got != tc.want {
			t.Errorf("at %v: unavailable=%v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestDecideSessionFlapExemptsLogin(t *testing.T) {
	prof := &Profile{Windows: []Window{
		{Kind: KindSessionFlap, FromDay: 0, ToDay: 10, Probability: 1},
	}}
	inj := testInjector(t, prof)
	now := clock.Epoch.Add(time.Hour)
	if !inj.Decide(now, 1, platform.ActionLike, 0, 0).RevokeSession {
		t.Error("probability-1 flap window did not revoke a like request")
	}
	if inj.Decide(now, 1, platform.ActionLogin, 0, 0).RevokeSession {
		t.Error("session flap revoked a login; logins must be exempt or recovery is impossible")
	}
}

func TestDecideLatencyAccumulatesAndStormTakesTightest(t *testing.T) {
	prof := &Profile{Windows: []Window{
		{Kind: KindLatency, FromDay: 0, ToDay: 10, Probability: 1, LatencyMS: 100},
		{Kind: KindLatency, FromDay: 0, ToDay: 10, Probability: 1, LatencyMS: 250},
		{Kind: KindRateLimitStorm, FromDay: 0, ToDay: 10, LimitScale: 0.5},
		{Kind: KindRateLimitStorm, FromDay: 0, ToDay: 10, LimitScale: 0.25},
	}}
	inj := testInjector(t, prof)
	d := inj.Decide(clock.Epoch.Add(time.Hour), 1, platform.ActionLike, 0, 0)
	if d.Latency != 350*time.Millisecond {
		t.Errorf("overlapping latency windows: got %v, want 350ms", d.Latency)
	}
	if d.LimitScale != 0.25 {
		t.Errorf("overlapping storms: got scale %g, want tightest 0.25", d.LimitScale)
	}
}

func TestDecideASNOutage(t *testing.T) {
	const asn netsim.ASN = 1004
	prof := &Profile{Windows: []Window{
		{Kind: KindASNOutage, FromDay: 0, ToDay: 10, ASN: asn, Availability: 0},
	}}
	inj := testInjector(t, prof)
	reg := netsim.NewRegistry()
	reg.Register(asn, "outage-as", "US", netsim.KindHosting)
	inj.BindNetwork(reg)
	now := clock.Epoch.Add(time.Hour)

	if !inj.Decide(now, 1, platform.ActionLike, asn, 0).Unavailable {
		t.Error("availability-0 outage did not fail a request from the affected ASN")
	}
	if inj.Decide(now, 1, platform.ActionLike, asn+1, 0).Unavailable {
		t.Error("outage leaked to an unaffected ASN")
	}
	after := clock.Epoch.Add(11 * 24 * time.Hour)
	if inj.Decide(after, 1, platform.ActionLike, asn, 0).Unavailable {
		t.Error("outage fired outside its window")
	}
}

func TestNilInjectorDecidesNothing(t *testing.T) {
	var inj *Injector
	if d := inj.Decide(clock.Epoch, 1, platform.ActionLike, 0, 0); d != (platform.FaultDecision{}) {
		t.Errorf("nil injector returned a non-zero decision: %+v", d)
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	if _, err := Load(t.TempDir() + "/missing.json"); err == nil {
		t.Error("Load of a missing file returned no error")
	}
	if _, err := Parse([]byte(`{"windows": [{"kind": "unavailable"`)); err == nil {
		t.Error("Parse of malformed JSON returned no error")
	}
	if _, err := Parse([]byte(`{"windows": [{"kind": "unavailable", "from_day": 0, "to_day": 1}]}`)); err == nil {
		t.Error("Parse of an invalid window (no probability) returned no error")
	}
}

func TestHealthScheduleCompilation(t *testing.T) {
	prof := &Profile{Windows: []Window{
		{Kind: KindUnavailable, FromDay: 0, ToDay: 1, Probability: 0.5},
		{Kind: KindASNOutage, FromDay: 1, ToDay: 3, ASN: 7, Availability: 0.4},
	}}
	h := prof.HealthSchedule()
	if h == nil {
		t.Fatal("profile with an asn_outage window compiled to a nil schedule")
	}
	ws := h.Windows()
	if len(ws) != 1 || ws[0].ASN != 7 || ws[0].Availability != 0.4 {
		t.Fatalf("compiled windows: %+v", ws)
	}
	if !ws[0].From.Equal(clock.Epoch.Add(24*time.Hour)) || !ws[0].Until.Equal(clock.Epoch.Add(72*time.Hour)) {
		t.Errorf("compiled interval [%v, %v) does not match days [1, 3)", ws[0].From, ws[0].Until)
	}
	none := &Profile{Windows: []Window{{Kind: KindUnavailable, FromDay: 0, ToDay: 1, Probability: 0.5}}}
	if none.HealthSchedule() != nil {
		t.Error("profile without asn_outage windows compiled a schedule")
	}
	if (*Profile)(nil).HealthSchedule() != nil {
		t.Error("nil profile compiled a schedule")
	}
}
