package faults

import (
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
	"footsteps/internal/telemetry"
)

// Injector turns a Profile into per-request fault verdicts. It
// implements platform.FaultInjector.
//
// The injector is seeded with exactly one draw from a dedicated forked
// rng stream and is stateless afterwards: every verdict is a pure
// function of (seed, window, request identity). That property — not a
// lock — is what keeps faulted runs byte-identical across worker
// counts: no matter which goroutine asks first, the answer for a given
// request is the same.
type Injector struct {
	profile *Profile
	seed    uint64
	reg     *netsim.Registry // resolves per-ASN availability; nil until BindNetwork

	// Telemetry instruments are pure observers and nil-safe.
	telUnavailable *telemetry.Counter
	telFlap        *telemetry.Counter
	telLatency     *telemetry.Counter
	telOutage      *telemetry.Counter
	latencyMS      *telemetry.Histogram
}

// NewInjector builds an injector for the profile, consuming one seed
// draw from r. Callers pass a dedicated stream (root.Split("faults"))
// so the draw shifts nothing else; a nil profile yields an injector
// that never injects.
func NewInjector(p *Profile, r *rng.RNG) *Injector {
	return &Injector{profile: p, seed: r.Uint64()}
}

// Profile returns the schedule the injector runs.
func (i *Injector) Profile() *Profile { return i.profile }

// BindNetwork installs the profile's ASN outage windows as reg's
// health schedule and uses reg to resolve per-request availability.
func (i *Injector) BindNetwork(reg *netsim.Registry) {
	i.reg = reg
	if h := i.profile.HealthSchedule(); h != nil {
		reg.SetHealth(h)
	}
}

// WireTelemetry registers the injected-fault instruments (see
// docs/OBSERVABILITY.md). Nil registry wires nil, no-op instruments.
func (i *Injector) WireTelemetry(reg *telemetry.Registry) {
	i.telUnavailable = reg.Counter("faults.injected.unavailable")
	i.telFlap = reg.Counter("faults.injected.session_flap")
	i.telLatency = reg.Counter("faults.injected.latency")
	i.telOutage = reg.Counter("faults.injected.asn_outage")
	i.latencyMS = reg.Histogram("faults.latency.ms", latencyBuckets)
}

var latencyBuckets = []int64{10, 30, 100, 300, 1_000, 3_000, 10_000}

// outageStream is the roll-stream index for ASN-outage verdicts; it
// sits beyond any window index so the roll cannot collide with a
// window's own stream.
const outageStream = 1 << 32

// Decide returns the fault verdict for one request. It implements
// platform.FaultInjector and must stay a pure function of its
// arguments and the injector seed (see docs/FAULTS.md): the platform
// calls it under its write lock from the serial apply path, but the
// determinism argument must not depend on that.
func (i *Injector) Decide(now time.Time, actor platform.AccountID, action platform.ActionType, asn netsim.ASN, salt uint64) platform.FaultDecision {
	var d platform.FaultDecision
	if i == nil || i.profile == nil {
		return d
	}
	day := float64(now.Sub(clock.Epoch)) / float64(24*time.Hour)
	for wi := range i.profile.Windows {
		w := &i.profile.Windows[wi]
		if !w.active(day) {
			continue
		}
		switch w.Kind {
		case KindUnavailable:
			if !d.Unavailable && i.roll(uint64(wi), now, actor, action, salt) < w.Probability {
				d.Unavailable = true
				i.telUnavailable.Inc()
			}
		case KindLatency:
			if i.roll(uint64(wi), now, actor, action, salt) < w.Probability {
				d.Latency += w.latency()
			}
		case KindSessionFlap:
			// Logins are exempt: a flap revokes established sessions,
			// and exempting login keeps recovery possible even at
			// high flap rates.
			if action != platform.ActionLogin && !d.RevokeSession &&
				i.roll(uint64(wi), now, actor, action, salt) < w.Probability {
				d.RevokeSession = true
				i.telFlap.Inc()
			}
		case KindRateLimitStorm:
			// Overlapping storms take the tightest limit.
			if d.LimitScale == 0 || w.LimitScale < d.LimitScale {
				d.LimitScale = w.LimitScale
			}
		}
	}
	if i.reg != nil && !d.Unavailable {
		if avail := i.reg.Availability(asn, now); avail < 1 {
			if i.roll(outageStream, now, actor, action, salt) >= avail {
				d.Unavailable = true
				i.telOutage.Inc()
			}
		}
	}
	if d.Latency > 0 {
		i.telLatency.Inc()
		i.latencyMS.Observe(int64(d.Latency / time.Millisecond))
	}
	return d
}

// roll maps (seed, roll stream, request identity) to a uniform float64
// in [0, 1). It is a pure function — no state, no draw sequence — so a
// request's verdict cannot depend on scheduling, worker count, or how
// many other requests were rolled before it.
func (i *Injector) roll(stream uint64, now time.Time, actor platform.AccountID, action platform.ActionType, salt uint64) float64 {
	x := mix64(i.seed ^ stream)
	x = mix64(x ^ uint64(now.UnixNano()))
	x = mix64(x ^ uint64(actor))
	x = mix64(x ^ (uint64(action) + salt<<8))
	return float64(x>>11) / (1 << 53)
}

// mix64 is the SplitMix64 finalizer — the same avalanche mixer the rng
// package uses for Fork lineage derivation.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
