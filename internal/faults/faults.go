// Package faults implements deterministic infrastructure fault
// injection for the simulated platform: transient unavailability,
// added request latency, session-store flaps that revoke live
// sessions, per-ASN outages, and rate-limit storms — the failure modes
// the paper's real platform exhibited while the automation services
// kept running (§6, "Following Their Footsteps").
//
// A fault run is described by a declarative Profile: a set of Windows,
// each active over a [FromDay, ToDay) interval of simulated time and
// carrying the parameters of one fault kind. Profiles load from JSON
// (-faults profile.json) or from the built-in scenarios (Scenario).
//
// Determinism is the package's defining constraint: per-request fault
// verdicts come from a pure hash of (injector seed, window, request
// identity), never from a sequential RNG, so verdicts are independent
// of worker count and call order. See docs/FAULTS.md for the full
// rules.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KindUnavailable makes individual requests fail with a transient
	// 5xx-style platform.ErrUnavailable.
	KindUnavailable Kind = iota
	// KindLatency adds simulated service latency to requests. The
	// discrete-event clock means the delay is recorded (telemetry
	// histogram + FaultDecision.Latency) rather than slowing the run.
	KindLatency
	// KindSessionFlap models a flapping session store: live sessions
	// are spontaneously revoked, forcing clients to re-login.
	KindSessionFlap
	// KindASNOutage degrades availability for all traffic from one
	// ASN, via the netsim health schedule.
	KindASNOutage
	// KindRateLimitStorm temporarily tightens per-account rate limits
	// to a fraction of their configured value.
	KindRateLimitStorm
)

var kindNames = map[Kind]string{
	KindUnavailable:    "unavailable",
	KindLatency:        "latency",
	KindSessionFlap:    "session_flap",
	KindASNOutage:      "asn_outage",
	KindRateLimitStorm: "ratelimit_storm",
}

// String returns the JSON name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	s, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("faults: unknown kind %d", int(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON decodes a kind from its string name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kind, name := range kindNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("faults: unknown kind %q", s)
}

// Window is one scheduled fault: a kind, an active interval in days
// since the simulation epoch, and the kind's parameters. Unused
// parameter fields are ignored for other kinds.
type Window struct {
	Kind Kind `json:"kind"`
	// FromDay and ToDay bound the active interval [FromDay, ToDay) in
	// fractional days since clock.Epoch.
	FromDay float64 `json:"from_day"`
	ToDay   float64 `json:"to_day"`
	// Probability is the per-request fault chance for unavailable,
	// latency, and session_flap windows, in [0, 1].
	Probability float64 `json:"probability,omitempty"`
	// LatencyMS is the added latency for latency windows.
	LatencyMS int64 `json:"latency_ms,omitempty"`
	// ASN and Availability configure asn_outage windows: the fraction
	// of requests from ASN that still succeed, in [0, 1).
	ASN          netsim.ASN `json:"asn,omitempty"`
	Availability float64    `json:"availability,omitempty"`
	// LimitScale multiplies hourly rate limits during ratelimit_storm
	// windows, in (0, 1).
	LimitScale float64 `json:"limit_scale,omitempty"`
}

// From returns the window's opening instant.
func (w Window) From() time.Time { return clock.Epoch.Add(dayDur(w.FromDay)) }

// Until returns the window's closing instant (exclusive).
func (w Window) Until() time.Time { return clock.Epoch.Add(dayDur(w.ToDay)) }

// active reports whether the window covers the given fractional day.
func (w Window) active(day float64) bool { return day >= w.FromDay && day < w.ToDay }

func dayDur(days float64) time.Duration {
	return time.Duration(days * float64(24*time.Hour))
}

// latency returns the window's added latency as a duration.
func (w Window) latency() time.Duration { return time.Duration(w.LatencyMS) * time.Millisecond }

// validate checks one window's parameters.
func (w Window) validate(i int) error {
	if w.ToDay <= w.FromDay {
		return fmt.Errorf("faults: window %d: to_day %g must exceed from_day %g", i, w.ToDay, w.FromDay)
	}
	switch w.Kind {
	case KindUnavailable, KindSessionFlap:
		if w.Probability <= 0 || w.Probability > 1 {
			return fmt.Errorf("faults: window %d (%s): probability %g outside (0, 1]", i, w.Kind, w.Probability)
		}
	case KindLatency:
		if w.Probability <= 0 || w.Probability > 1 {
			return fmt.Errorf("faults: window %d (%s): probability %g outside (0, 1]", i, w.Kind, w.Probability)
		}
		if w.LatencyMS <= 0 {
			return fmt.Errorf("faults: window %d (latency): latency_ms %d must be positive", i, w.LatencyMS)
		}
	case KindASNOutage:
		if w.ASN == 0 {
			return fmt.Errorf("faults: window %d (asn_outage): asn required", i)
		}
		if w.Availability < 0 || w.Availability >= 1 {
			return fmt.Errorf("faults: window %d (asn_outage): availability %g outside [0, 1)", i, w.Availability)
		}
	case KindRateLimitStorm:
		if w.LimitScale <= 0 || w.LimitScale >= 1 {
			return fmt.Errorf("faults: window %d (ratelimit_storm): limit_scale %g outside (0, 1)", i, w.LimitScale)
		}
	default:
		return fmt.Errorf("faults: window %d: unknown kind %d", i, int(w.Kind))
	}
	return nil
}

// Profile is a named, declarative fault schedule.
type Profile struct {
	Name    string   `json:"name"`
	Windows []Window `json:"windows"`
}

// Validate checks every window; a nil profile is valid (faults off).
func (p *Profile) Validate() error {
	if p == nil {
		return nil
	}
	for i, w := range p.Windows {
		if err := w.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// Parse decodes and validates a JSON profile.
func Parse(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: parse profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and validates a JSON profile from a file.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: load profile: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	if p.Name == "" {
		p.Name = path
	}
	return p, nil
}

// HealthSchedule compiles the profile's asn_outage windows into a
// netsim health schedule (nil when the profile has none).
func (p *Profile) HealthSchedule() *netsim.HealthSchedule {
	if p == nil {
		return nil
	}
	var ws []netsim.HealthWindow
	for _, w := range p.Windows {
		if w.Kind != KindASNOutage {
			continue
		}
		ws = append(ws, netsim.HealthWindow{
			ASN:          w.ASN,
			From:         w.From(),
			Until:        w.Until(),
			Availability: w.Availability,
		})
	}
	if len(ws) == 0 {
		return nil
	}
	return netsim.NewHealthSchedule(ws...)
}
