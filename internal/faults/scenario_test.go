package faults

import (
	"testing"

	"footsteps/internal/aas"
)

// TestScenarioOutageASNMatchesCatalog pins the built-in asn-outage
// scenario to a real service's datacenter: the scenarios hardcode the
// ASN number (this package must not depend on aas), so this test is
// the tripwire if the catalog ever renumbers.
func TestScenarioOutageASNMatchesCatalog(t *testing.T) {
	if scenarioOutageASN != aas.ASNHublaagramUS {
		t.Fatalf("scenarioOutageASN %d no longer matches aas.ASNHublaagramUS %d; update scenario.go",
			scenarioOutageASN, aas.ASNHublaagramUS)
	}
	for _, name := range []string{"asn-outage", "mixed"} {
		p := MustScenario(name)
		found := false
		for _, w := range p.Windows {
			if w.Kind == KindASNOutage {
				found = true
				if w.ASN != scenarioOutageASN {
					t.Errorf("scenario %q targets ASN %d, want %d", name, w.ASN, scenarioOutageASN)
				}
			}
		}
		if !found {
			t.Errorf("scenario %q has no asn_outage window", name)
		}
	}
}
