// Package telemetry is the simulator's instrumentation plane: a
// lock-cheap registry of counters, gauges, and fixed-bucket histograms,
// a tick-phase tracer for the parallel stepping engine, a per-day JSONL
// sink, and a debug HTTP listener exposing expvar snapshots and pprof.
//
// The package is a strict leaf: it imports only the standard library, so
// every hot layer (platform, detection, intervention, aas, step, core)
// can wire instruments without import cycles.
//
// Telemetry is a PURE OBSERVER. Instruments never touch simulation
// state, never draw from any RNG, and never emit platform events, so the
// FSEV1 event stream is byte-identical with telemetry on, off, or
// sampled live over HTTP at any worker count (see docs/OBSERVABILITY.md
// and docs/DETERMINISM.md). Every instrument method is nil-safe — a nil
// *Registry hands out nil instruments whose methods no-op — so wiring
// code calls unconditionally and "telemetry off" costs one nil check.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe for concurrent use;
// all methods no-op on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored to keep counters monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move both ways (queue depth, live
// accounts). Safe for concurrent use; methods no-op on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. A value v lands in the first
// bucket whose upper bound satisfies v <= bound; values above the last
// bound land in the implicit overflow bucket. Bounds are fixed at
// creation, so observation is one binary search plus three atomic adds —
// no locks on the hot path. Methods no-op on a nil receiver.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1: last is overflow
	sum    atomic.Int64
	count  atomic.Int64
}

// newHistogram builds a histogram over strictly increasing bounds.
func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// DurationBuckets is the default bound set for nanosecond durations:
// 1µs … 10s, decade-spaced with a 3x midpoint per decade.
var DurationBuckets = []int64{
	1_000, 3_000, 10_000, 30_000, 100_000, 300_000, // 1µs–300µs
	1_000_000, 3_000_000, 10_000_000, 30_000_000, // 1ms–30ms
	100_000_000, 300_000_000, 1_000_000_000, 10_000_000_000, // 100ms–10s
}

// FineDurationBuckets resolves sub-millisecond latencies with 1-2-5
// spacing up to 1ms, then widening steps to 10s. Loopback request
// timings cluster in the tens of microseconds, where the decade-spaced
// DurationBuckets collapse p50 and p95 onto the same 100µs bound.
var FineDurationBuckets = []int64{
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000, // 1µs–50µs
	100_000, 200_000, 500_000, 1_000_000, // 100µs–1ms
	5_000_000, 30_000_000, 100_000_000, 1_000_000_000, 10_000_000_000,
}

// CountBuckets is the default bound set for per-tick item counts
// (intents planned, events applied).
var CountBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// Registry is a named instrument set. Lookups take a read lock only when
// the instrument already exists; hot paths should capture instrument
// pointers at wire time and skip the registry entirely. A nil *Registry
// is "telemetry off": it returns nil instruments and a zero Snapshot.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. Later calls return the existing
// histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last is overflow
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Mean returns the average observed value (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1). The overflow bucket reports the last bound.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.Counts {
		cum += n
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Bounds[len(h.Bounds)-1]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a frozen, JSON-serializable view of a registry. Map keys
// serialize in sorted order, so encoded snapshots are reproducible for a
// given metric state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state. Concurrent increments
// during the copy land in either the old or new snapshot — fine for
// monitoring, and the simulation's serial sections are quiesced at every
// point the sinks snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.sum.Load(),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// DeltaCounters returns this snapshot's counter values minus prev's —
// the per-interval rates behind the daily JSONL series. Counters absent
// from prev count from zero.
func (s Snapshot) DeltaCounters(prev Snapshot) map[string]int64 {
	out := make(map[string]int64, len(s.Counters))
	for name, v := range s.Counters {
		if d := v - prev.Counters[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}
