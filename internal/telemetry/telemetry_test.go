package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every instrument and the registry itself must be inert
// when nil — the telemetry-off state costs wiring code nothing.
func TestNilSafety(t *testing.T) {
	t.Parallel()
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", DurationBuckets)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if snap := reg.Snapshot(); len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry must snapshot empty")
	}
	var tr *TickTracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SectionStart()
	tr.ShardPlanned(time.Millisecond, 3)
	tr.Applied(time.Millisecond, 3)
	if NewTickTracer(nil) != nil {
		t.Fatal("NewTickTracer(nil) must return nil")
	}
}

// TestConcurrentIncrementSnapshot drives counters, gauges, histograms,
// and instrument creation from many goroutines while snapshots race
// along; run under -race this is the registry's data-race gauntlet.
func TestConcurrentIncrementSnapshot(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	const workers, per = 8, 2000
	stop := make(chan struct{})
	var snapDone sync.WaitGroup
	snapDone.Add(1)
	go func() { // concurrent snapshotter races the incrementers below
		defer snapDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				reg.Counter("shared").Inc()
				reg.Gauge("level").Add(1)
				reg.Histogram("dist", CountBuckets).Observe(int64(i % 128))
				if i%100 == 0 {
					reg.Counter("born.later").Inc() // lookup path under contention
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapDone.Wait()
	if got := reg.Counter("shared").Value(); got != workers*per {
		t.Fatalf("shared counter = %d, want %d", got, workers*per)
	}
	if got := reg.Gauge("level").Value(); got != workers*per {
		t.Fatalf("gauge = %d, want %d", got, workers*per)
	}
	if got := reg.Histogram("dist", nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestHistogramBuckets pins the bucket boundary semantics: v lands in
// the first bucket with v <= bound; above the last bound is overflow.
func TestHistogramBuckets(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	h := reg.Histogram("h", []int64{10, 100, 1000})
	for _, v := range []int64{-5, 0, 10} { // all <= 10
		h.Observe(v)
	}
	h.Observe(11)   // (10, 100]
	h.Observe(100)  // (10, 100]
	h.Observe(101)  // (100, 1000]
	h.Observe(1000) // (100, 1000]
	h.Observe(1001) // overflow
	snap := reg.Snapshot().Histograms["h"]
	wantCounts := []int64{3, 2, 2, 1}
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], want, snap.Counts)
		}
	}
	if snap.Count != 8 {
		t.Fatalf("count = %d, want 8", snap.Count)
	}
	if wantSum := int64(-5 + 0 + 10 + 11 + 100 + 101 + 1000 + 1001); snap.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", snap.Sum, wantSum)
	}
	if q := snap.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := snap.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want 1000 (overflow reports last bound)", q)
	}
}

// TestSnapshotDelta checks per-interval counter rates.
func TestSnapshotDelta(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Counter("a").Add(5)
	prev := reg.Snapshot()
	reg.Counter("a").Add(7)
	reg.Counter("b").Add(2)
	d := reg.Snapshot().DeltaCounters(prev)
	if d["a"] != 7 || d["b"] != 2 || len(d) != 2 {
		t.Fatalf("delta = %v, want a:7 b:2", d)
	}
}

// TestDayWriter exercises the JSONL sink: two days, totals and deltas.
func TestDayWriter(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	var buf bytes.Buffer
	dw := NewDayWriter(&buf, reg)
	epoch := time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)

	reg.Counter("events").Add(10)
	if err := dw.WriteDay(0, epoch); err != nil {
		t.Fatal(err)
	}
	reg.Counter("events").Add(4)
	reg.Gauge("queue").Set(17)
	if err := dw.WriteDay(1, epoch.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec DayRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Day != 1 || rec.Counters["events"] != 14 || rec.Deltas["events"] != 4 || rec.Gauges["queue"] != 17 {
		t.Fatalf("day 1 record = %+v", rec)
	}
	if rec.SimTime != "2017-09-02T00:00:00Z" {
		t.Fatalf("sim_time = %q", rec.SimTime)
	}
}

// TestFormatDeterministic: the summary renders sorted and reproducibly.
func TestFormatDeterministic(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Counter("z.last").Add(1)
	reg.Counter("a.first").Add(2)
	reg.Gauge("m.mid").Set(3)
	reg.Histogram("lat.ns", DurationBuckets).Observe(2_000_000)
	s1 := reg.Snapshot().Format()
	s2 := reg.Snapshot().Format()
	if s1 != s2 {
		t.Fatal("Format is not reproducible")
	}
	if strings.Index(s1, "a.first") > strings.Index(s1, "m.mid") ||
		strings.Index(s1, "m.mid") > strings.Index(s1, "z.last") {
		t.Fatalf("metrics not name-sorted:\n%s", s1)
	}
	if !strings.Contains(s1, "2ms") {
		t.Fatalf(".ns histogram should render durations:\n%s", s1)
	}
	if got := (Snapshot{}).Format(); !strings.Contains(got, "no metrics") {
		t.Fatalf("empty snapshot format = %q", got)
	}
}
