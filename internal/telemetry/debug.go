package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// debugReg holds the registry the expvar "footsteps" var reads from. A
// process-global indirection (rather than Publish-per-call) keeps
// repeated ServeDebug calls — tests, successive runs in one process —
// from hitting expvar's duplicate-name panic.
var (
	debugReg    atomic.Pointer[Registry]
	publishOnce sync.Once
)

// DebugServer is a live debug endpoint: expvar under /debug/vars, the
// registry snapshot as plain JSON under /metrics.json, and the standard
// pprof handlers under /debug/pprof/.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the debug listener on addr (e.g. "127.0.0.1:6060";
// port 0 picks a free port) serving snapshots of reg. The server runs on
// its own goroutines and only ever reads atomics, so a live listener
// cannot perturb the simulation. Close the returned server when done.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	debugReg.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("footsteps", expvar.Func(func() any {
			return debugReg.Load().Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(debugReg.Load().Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the listener's bound address (useful with port 0).
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Shutdown drains in-flight requests (a pprof profile mid-capture, a
// metrics scrape) before closing, bounded by ctx. Used by the CLI's
// SIGINT/SIGTERM handler for graceful exits.
func (s *DebugServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
