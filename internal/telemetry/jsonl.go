package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// DayRecord is one line of the per-day JSONL metric series. Counters
// carry cumulative totals; Deltas carry the day's increments (omitting
// zero rows). encoding/json sorts map keys, so lines are reproducible
// for a given metric state.
type DayRecord struct {
	Day      int              `json:"day"`
	SimTime  string           `json:"sim_time"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Deltas   map[string]int64 `json:"deltas,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

// DayWriter emits one DayRecord per simulated day, tracking the previous
// snapshot so each line carries per-day counter deltas alongside the
// running totals. It is driven from scheduler callbacks (serial), so it
// needs no locking of its own.
type DayWriter struct {
	enc  *json.Encoder
	reg  *Registry
	prev Snapshot
}

// NewDayWriter builds a writer streaming to out from reg.
func NewDayWriter(out io.Writer, reg *Registry) *DayWriter {
	return &DayWriter{enc: json.NewEncoder(out), reg: reg}
}

// WriteDay snapshots the registry and writes one JSONL line for the
// given simulated day.
func (d *DayWriter) WriteDay(day int, simTime time.Time) error {
	snap := d.reg.Snapshot()
	rec := DayRecord{
		Day:      day,
		SimTime:  simTime.UTC().Format(time.RFC3339),
		Counters: snap.Counters,
		Deltas:   snap.DeltaCounters(d.prev),
		Gauges:   snap.Gauges,
	}
	d.prev = snap
	return d.enc.Encode(rec)
}
