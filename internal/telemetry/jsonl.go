package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// DayRecord is one line of the per-day JSONL metric series. Counters
// carry cumulative totals; Deltas carry the day's increments (omitting
// zero rows). encoding/json sorts map keys, so lines are reproducible
// for a given metric state.
type DayRecord struct {
	Day      int              `json:"day"`
	SimTime  string           `json:"sim_time"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Deltas   map[string]int64 `json:"deltas,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

// DayWriter emits one DayRecord per simulated day, tracking the previous
// snapshot so each line carries per-day counter deltas alongside the
// running totals. It is driven from scheduler callbacks (serial), so it
// needs no locking of its own.
//
// Sink failures must never abort a simulation run, so WriteDay's callers
// routinely discard its error — but a silently broken metrics pipe is an
// observability trap. The writer therefore keeps the first write error
// and counts every failed line on the registry itself
// (telemetry.jsonl.write_errors), so the end-of-run summary shows the
// loss, and Close returns the first error for callers that do care.
type DayWriter struct {
	enc      *json.Encoder
	reg      *Registry
	prev     Snapshot
	errs     *Counter
	firstErr error
}

// NewDayWriter builds a writer streaming to out from reg.
func NewDayWriter(out io.Writer, reg *Registry) *DayWriter {
	return &DayWriter{enc: json.NewEncoder(out), reg: reg, errs: reg.Counter("telemetry.jsonl.write_errors")}
}

// WriteDay snapshots the registry and writes one JSONL line for the
// given simulated day.
func (d *DayWriter) WriteDay(day int, simTime time.Time) error {
	snap := d.reg.Snapshot()
	rec := DayRecord{
		Day:      day,
		SimTime:  simTime.UTC().Format(time.RFC3339),
		Counters: snap.Counters,
		Deltas:   snap.DeltaCounters(d.prev),
		Gauges:   snap.Gauges,
	}
	d.prev = snap
	err := d.enc.Encode(rec)
	if err != nil {
		d.errs.Inc()
		if d.firstErr == nil {
			d.firstErr = err
		}
	}
	return err
}

// Err returns the first write error seen, or nil.
func (d *DayWriter) Err() error { return d.firstErr }

// Close reports the first write error the stream hit (nil if every line
// landed). The writer holds no resources; Close exists so run teardown
// has one place to learn whether the metrics series is complete.
func (d *DayWriter) Close() error { return d.firstErr }
