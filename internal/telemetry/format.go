package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Table renders rows as an aligned text table under a header row, in the
// same visual style as the study's report tables. Exposed so other
// renderers (the end-of-run summary in core, fsevdump -stats) share one
// formatter.
func Table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(w, strings.Join(sep, "\t"))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	return b.String()
}

// Format renders the snapshot as a human-readable summary: counters and
// gauges name-sorted with values, histograms with count, mean, p50 and
// p99. Metric names ending in ".ns" render durations human-readably.
func (s Snapshot) Format() string {
	var b strings.Builder
	if len(s.Counters) > 0 || len(s.Gauges) > 0 {
		rows := make([][]string, 0, len(s.Counters)+len(s.Gauges))
		for _, name := range sortedKeys(s.Counters) {
			rows = append(rows, []string{name, "counter", fmt.Sprintf("%d", s.Counters[name])})
		}
		for _, name := range sortedKeys(s.Gauges) {
			rows = append(rows, []string{name, "gauge", fmt.Sprintf("%d", s.Gauges[name])})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
		b.WriteString(Table([]string{"metric", "kind", "value"}, rows))
	}
	if len(s.Histograms) > 0 {
		if b.Len() > 0 {
			b.WriteString("\n")
		}
		names := make([]string, 0, len(s.Histograms))
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		rows := make([][]string, 0, len(names))
		for _, name := range names {
			h := s.Histograms[name]
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%d", h.Count),
				formatValue(name, int64(h.Mean())),
				formatValue(name, h.Quantile(0.50)),
				formatValue(name, h.Quantile(0.99)),
			})
		}
		b.WriteString(Table([]string{"histogram", "count", "mean", "p50", "p99"}, rows))
	}
	if b.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return b.String()
}

// formatValue renders a histogram statistic; ".ns"-suffixed metrics are
// nanosecond durations.
func formatValue(name string, v int64) string {
	if strings.HasSuffix(name, ".ns") {
		return time.Duration(v).String()
	}
	return fmt.Sprintf("%d", v)
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
