package telemetry

import "time"

// TickTracer instruments the stepping engine's intent/apply pipeline:
// how many parallel sections ran, how wall-clock time splits between the
// per-shard plan phase and the serial apply phase, and how many intents
// each carried. Durations are wall-clock (they exist to show where tick
// time goes) and feed no simulation decision, so tracing cannot perturb
// the event stream. All methods no-op on a nil receiver, which is the
// telemetry-off state.
type TickTracer struct {
	sections   *Counter
	shards     *Counter
	intents    *Counter
	planNanos  *Histogram
	applyNanos *Histogram
	planItems  *Histogram
}

// NewTickTracer wires a tracer into reg; a nil registry yields a nil
// (disabled) tracer.
func NewTickTracer(reg *Registry) *TickTracer {
	if reg == nil {
		return nil
	}
	return &TickTracer{
		sections:   reg.Counter("step.sections"),
		shards:     reg.Counter("step.shards"),
		intents:    reg.Counter("step.intents"),
		planNanos:  reg.Histogram("step.plan.shard.ns", DurationBuckets),
		applyNanos: reg.Histogram("step.apply.ns", DurationBuckets),
		planItems:  reg.Histogram("step.plan.shard.intents", CountBuckets),
	}
}

// Enabled reports whether the tracer records anything. Callers use it to
// skip time.Now() calls entirely when tracing is off.
func (t *TickTracer) Enabled() bool { return t != nil }

// SectionStart records the start of one Run (one parallel section).
func (t *TickTracer) SectionStart() {
	if t == nil {
		return
	}
	t.sections.Inc()
}

// ShardPlanned records one shard's generation phase: its wall duration
// and the intents it emitted. Called concurrently from pool workers.
func (t *TickTracer) ShardPlanned(d time.Duration, intents int) {
	if t == nil {
		return
	}
	t.shards.Inc()
	t.planNanos.Observe(int64(d))
	t.planItems.Observe(int64(intents))
}

// Applied records the serial merge/apply phase of one section.
func (t *TickTracer) Applied(d time.Duration, intents int) {
	if t == nil {
		return
	}
	t.applyNanos.Observe(int64(d))
	t.intents.Add(int64(intents))
}
