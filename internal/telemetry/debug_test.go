package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeDebug boots the listener on an ephemeral port and checks the
// three surfaces: expvar, the plain snapshot JSON, and pprof. A second
// ServeDebug call must not panic on a duplicate expvar name.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("events.total").Add(42)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"footsteps"`) {
		t.Fatalf("/debug/vars: code %d, body %.200s", code, body)
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json: code %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not a Snapshot: %v", err)
	}
	if snap.Counters["events.total"] != 42 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: code %d", code)
	}

	srv2, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Close()
}
