package intern

import (
	"math/rand"
	"testing"
)

// TestDenseMonotonicAssignment: slots come out 0, 1, 2, … in first-sight
// order, and re-asking for a known ID returns its original slot.
func TestDenseMonotonicAssignment(t *testing.T) {
	var d Dense
	ids := []uint64{900, 7, 42, 1 << 40, 0}
	for want, id := range ids {
		if got := d.Index(id); got != uint32(want) {
			t.Fatalf("Index(%d) = %d, want %d", id, got, want)
		}
	}
	// Second pass must be stable.
	for want, id := range ids {
		if got := d.Index(id); got != uint32(want) {
			t.Fatalf("second Index(%d) = %d, want %d", id, got, want)
		}
		if got, ok := d.Lookup(id); !ok || got != uint32(want) {
			t.Fatalf("Lookup(%d) = %d,%v, want %d,true", id, got, ok, want)
		}
	}
	if d.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(ids))
	}
	for slot, id := range ids {
		if got := d.ID(uint32(slot)); got != id {
			t.Fatalf("ID(%d) = %d, want %d", slot, got, id)
		}
	}
	if _, ok := d.Lookup(999999); ok {
		t.Fatal("Lookup of unseen ID reported ok")
	}
}

// TestDenseSnapshotRestore: IDs → Restore round-trips the whole mapping,
// and the restored allocator continues assigning from where the
// original left off.
func TestDenseSnapshotRestore(t *testing.T) {
	var d Dense
	for _, id := range []uint64{5, 17, 2, 1000} {
		d.Index(id)
	}
	snap := append([]uint64(nil), d.IDs()...)

	var r Dense
	r.Index(12345) // pre-existing state must be discarded
	r.Restore(snap)
	if r.Len() != d.Len() {
		t.Fatalf("restored Len = %d, want %d", r.Len(), d.Len())
	}
	for slot, id := range snap {
		if got, ok := r.Lookup(id); !ok || got != uint32(slot) {
			t.Fatalf("restored Lookup(%d) = %d,%v, want %d,true", id, got, ok, slot)
		}
		if got := r.ID(uint32(slot)); got != id {
			t.Fatalf("restored ID(%d) = %d, want %d", slot, got, id)
		}
	}
	if got := r.Index(777); got != uint32(len(snap)) {
		t.Fatalf("post-restore Index = %d, want %d", got, len(snap))
	}

	// A corrupt snapshot with a duplicated sparse ID must be rejected.
	defer func() {
		if recover() == nil {
			t.Fatal("Restore accepted duplicate sparse IDs")
		}
	}()
	var c Dense
	c.Restore([]uint64{1, 2, 1})
}

// TestDenseNoCollisionNoRecycle is the property test: across a random
// interleaving of fresh and repeated IDs, every distinct sparse ID gets
// exactly one slot, no two IDs share a slot, and no slot is ever
// reassigned.
func TestDenseNoCollisionNoRecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var d Dense
	seen := make(map[uint64]uint32)  // sparse → slot we first observed
	owner := make(map[uint32]uint64) // slot → sparse ID that owns it
	for i := 0; i < 200_000; i++ {
		var id uint64
		if len(seen) > 0 && rng.Intn(3) == 0 {
			// Revisit a known ID.
			id = d.IDs()[rng.Intn(d.Len())]
		} else {
			id = rng.Uint64() >> rng.Intn(40) // mix dense and sparse ranges
		}
		slot := d.Index(id)
		if prev, ok := seen[id]; ok {
			if slot != prev {
				t.Fatalf("ID %d moved from slot %d to %d", id, prev, slot)
			}
			continue
		}
		if other, taken := owner[slot]; taken {
			t.Fatalf("slot %d recycled: owned by %d, reassigned to %d", slot, other, id)
		}
		if int(slot) != len(seen) {
			t.Fatalf("non-monotonic assignment: fresh ID %d got slot %d, want %d", id, slot, len(seen))
		}
		seen[id] = slot
		owner[slot] = id
	}
	if d.Len() != len(seen) {
		t.Fatalf("Len = %d, distinct IDs = %d", d.Len(), len(seen))
	}
}
