package intern

import "testing"

func TestTableDedups(t *testing.T) {
	var tb Table
	a := tb.String("fingerprint-a")
	b := tb.Bytes([]byte("fingerprint-a"))
	if a != b {
		t.Errorf("String and Bytes disagree: %q vs %q", a, b)
	}
	if tb.Len() != 1 {
		t.Errorf("table holds %d entries after two inserts of one value, want 1", tb.Len())
	}
	tb.String("fingerprint-b")
	if tb.Len() != 2 {
		t.Errorf("table holds %d entries, want 2", tb.Len())
	}
}

// TestBytesHitPathAllocFree pins the compiler-recognized map[string(b)]
// idiom: resolving an already-interned byte slice must not allocate.
func TestBytesHitPathAllocFree(t *testing.T) {
	var tb Table
	tb.String("warm")
	key := []byte("warm")
	got := testing.AllocsPerRun(100, func() {
		if s := tb.Bytes(key); s != "warm" {
			t.Fatalf("Bytes returned %q", s)
		}
	})
	if got > 0 {
		t.Errorf("intern.Table.Bytes allocates %.1f/op on the hit path, want 0", got)
	}
}

func TestSharedHelpers(t *testing.T) {
	if String("shared-x") != Bytes([]byte("shared-x")) {
		t.Error("package-level String and Bytes disagree")
	}
}
