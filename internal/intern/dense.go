package intern

// Dense assigns compact uint32 slots to sparse uint64 identifiers so
// struct-of-arrays tables can be indexed by a small dense integer
// instead of a map lookup per field. It is the ID half of the interning
// idea: where Table collapses duplicate strings to one canonical copy,
// Dense collapses a sparse, ever-growing ID space onto the prefix
// [0, Len) of the natural numbers.
//
// Slots are assigned monotonically in first-sight order and are never
// recycled within a run — a slot, once handed out, names the same sparse
// ID forever. That invariant is what makes slots safe to use as indexes
// into parallel arrays that outlive the entity (a deleted account keeps
// its row; the owning table marks it dead rather than compacting).
//
// Dense is not concurrency-safe: each lock-striped shard owns its own
// allocator and touches it only under the shard lock, exactly like the
// map it replaces.
type Dense struct {
	slot map[uint64]uint32 // sparse ID → dense slot
	ids  []uint64          // dense slot → sparse ID (reverse table)
}

// Index returns the dense slot for id, assigning the next free slot on
// first sight. Slots count up from 0 in assignment order.
func (d *Dense) Index(id uint64) uint32 {
	if s, ok := d.slot[id]; ok {
		return s
	}
	if d.slot == nil {
		d.slot = make(map[uint64]uint32)
	}
	s := uint32(len(d.ids))
	d.slot[id] = s
	d.ids = append(d.ids, id)
	return s
}

// Lookup returns the slot already assigned to id, or ok=false if id has
// never been seen. It never allocates a slot.
func (d *Dense) Lookup(id uint64) (slot uint32, ok bool) {
	s, ok := d.slot[id]
	return s, ok
}

// ID returns the sparse identifier assigned to slot. It panics if slot
// has never been assigned, mirroring out-of-range slice indexing.
func (d *Dense) ID(slot uint32) uint64 { return d.ids[slot] }

// Len reports how many slots have been assigned. Valid slots are
// exactly [0, Len).
func (d *Dense) Len() int { return len(d.ids) }

// IDs exposes the reverse table — slot i holds the sparse ID assigned
// slot i. The caller must not mutate it; it is the allocator's snapshot
// form (see Restore).
func (d *Dense) IDs() []uint64 { return d.ids }

// Restore rebuilds the allocator from a reverse table previously
// obtained from IDs: ids[i] is assigned slot i. Any existing state is
// discarded. Duplicate entries would silently alias two slots to one
// sparse ID, so Restore panics on them — a snapshot can never contain
// duplicates unless it is corrupt.
func (d *Dense) Restore(ids []uint64) {
	d.slot = make(map[uint64]uint32, len(ids))
	d.ids = append(d.ids[:0], ids...)
	for i, id := range d.ids {
		if _, dup := d.slot[id]; dup {
			panic("intern: duplicate sparse ID in Dense.Restore")
		}
		d.slot[id] = uint32(i)
	}
}
