// Package intern provides a process-wide read-mostly string table so hot
// paths that repeatedly materialize the same small set of strings —
// hashtags, client fingerprints, FSEV1 string-table entries decoded from
// many streams — share one canonical copy instead of allocating a fresh
// one per occurrence.
//
// Interning is a pure memory optimization: the returned string is always
// byte-equal to the input, so it can never change event content, stream
// bytes, or report hashes. It only collapses duplicates. Strings that are
// unique by construction (e.g. usernames, which the platform mints once
// and stores for the account's lifetime) should NOT be interned — every
// entry would miss, paying the table overhead for zero dedup.
package intern

import "sync"

// Table is a concurrency-safe intern table. The zero value is ready to
// use. Lookups on the hit path take only a read lock and — via Go's
// map-index-by-converted-[]byte idiom in Bytes — allocate nothing.
type Table struct {
	mu sync.RWMutex
	m  map[string]string
}

// String returns the canonical copy of s, inserting it on first sight.
func (t *Table) String(s string) string {
	t.mu.RLock()
	c, ok := t.m[s]
	t.mu.RUnlock()
	if ok {
		return c
	}
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[string]string)
	}
	c, ok = t.m[s]
	if !ok {
		c = s
		t.m[s] = c
	}
	t.mu.Unlock()
	return c
}

// Bytes returns the canonical string equal to b, inserting a copy on
// first sight. On the hit path the compiler-recognized m[string(b)]
// index does not allocate, which is the whole point: decoders can look
// up record bytes without the per-record string copy.
func (t *Table) Bytes(b []byte) string {
	t.mu.RLock()
	c, ok := t.m[string(b)]
	t.mu.RUnlock()
	if ok {
		return c
	}
	return t.String(string(b))
}

// Len reports the number of canonical entries (for tests and telemetry).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// shared is the process-wide table used by the package-level helpers.
// Sharing across subsystems is what lets a hashtag interned by the
// platform be the same string object a Reader decodes from a stream.
var shared Table

// String interns s in the shared table.
func String(s string) string { return shared.String(s) }

// Bytes interns b's contents in the shared table.
func Bytes(b []byte) string { return shared.Bytes(b) }
