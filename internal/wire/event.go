package wire

import (
	"strconv"

	"footsteps/internal/platform"
)

// Event is the JSON mirror of platform.Event that the WS event stream
// carries. Enums travel as their frozen wire strings, times as
// nanoseconds since the Unix epoch (simulated time), addresses as text.
type Event struct {
	Seq         uint64   `json:"seq"`
	TimeNanos   int64    `json:"t"`
	Action      string   `json:"action"`
	Actor       uint64   `json:"actor"`
	Target      uint64   `json:"target,omitempty"`
	Post        uint64   `json:"post,omitempty"`
	IP          string   `json:"ip,omitempty"`
	ASN         uint32   `json:"asn,omitempty"`
	Client      string   `json:"client,omitempty"`
	API         string   `json:"api"`
	Outcome     Status   `json:"outcome"`
	Enforcement bool     `json:"enforcement,omitempty"`
	Duplicate   bool     `json:"duplicate,omitempty"`
	_           struct{} // force keyed literals so schema growth is explicit
}

// EventFrom converts a platform event to its wire mirror.
func EventFrom(ev platform.Event) Event {
	out := Event{
		Seq:         ev.Seq,
		TimeNanos:   ev.Time.UnixNano(),
		Action:      ev.Type.String(),
		Actor:       uint64(ev.Actor),
		Target:      uint64(ev.Target),
		Post:        uint64(ev.Post),
		ASN:         uint32(ev.ASN),
		Client:      ev.Client,
		API:         ev.API.String(),
		Outcome:     StatusFor(ev.Outcome),
		Enforcement: ev.Enforcement,
		Duplicate:   ev.Duplicate,
	}
	if ev.IP.IsValid() {
		out.IP = ev.IP.String()
	}
	return out
}

// AppendEventJSON appends the event's JSON encoding to dst and returns
// the extended slice. It is a hand-rolled fast path for the WS event
// broadcaster, which may serialize tens of thousands of events per wall
// second: no reflection, one allocation at most (the slice growth).
// Output is canonical — identical to what encoding/json would produce
// for the Event struct — which the tests pin.
func AppendEventJSON(dst []byte, ev Event) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, ev.Seq, 10)
	dst = append(dst, `,"t":`...)
	dst = strconv.AppendInt(dst, ev.TimeNanos, 10)
	dst = append(dst, `,"action":`...)
	dst = strconv.AppendQuote(dst, ev.Action)
	dst = append(dst, `,"actor":`...)
	dst = strconv.AppendUint(dst, ev.Actor, 10)
	if ev.Target != 0 {
		dst = append(dst, `,"target":`...)
		dst = strconv.AppendUint(dst, ev.Target, 10)
	}
	if ev.Post != 0 {
		dst = append(dst, `,"post":`...)
		dst = strconv.AppendUint(dst, ev.Post, 10)
	}
	if ev.IP != "" {
		dst = append(dst, `,"ip":`...)
		dst = strconv.AppendQuote(dst, ev.IP)
	}
	if ev.ASN != 0 {
		dst = append(dst, `,"asn":`...)
		dst = strconv.AppendUint(dst, uint64(ev.ASN), 10)
	}
	if ev.Client != "" {
		dst = append(dst, `,"client":`...)
		dst = strconv.AppendQuote(dst, ev.Client)
	}
	dst = append(dst, `,"api":`...)
	dst = strconv.AppendQuote(dst, ev.API)
	dst = append(dst, `,"outcome":`...)
	dst = strconv.AppendQuote(dst, string(ev.Outcome))
	if ev.Enforcement {
		dst = append(dst, `,"enforcement":true`...)
	}
	if ev.Duplicate {
		dst = append(dst, `,"duplicate":true`...)
	}
	return append(dst, '}')
}
