package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/netip"
	"strings"
	"testing"
	"time"

	"footsteps/internal/platform"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{V: 1, ID: 7, Op: OpRegister, Username: "alice", Password: "pw", Country: "BRA"},
		{V: 1, Op: OpLogin, Username: "alice", Password: "pw", ASN: 64512, API: "oauth", Client: "android-7.1"},
		{V: 1, ID: 2, Op: OpLike, Token: "tok-1", Post: 99},
		{V: 1, Op: OpFollow, Token: "tok-1", Target: 42},
		{V: 1, Op: OpUnfollow, Token: "tok-1", Target: 42},
		{V: 1, Op: OpComment, Token: "tok-1", Post: 99, Text: "nice pic!"},
		{V: 1, Op: OpPost, Token: "tok-1", Tags: []string{"l4l", "follow4follow"}},
	}
	for _, want := range reqs {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("marshal %+v: %v", want, err)
		}
		got, werr := ParseRequest(data)
		if werr != nil {
			t.Fatalf("ParseRequest(%s): %v", data, werr)
		}
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(gotJSON, data) {
			t.Errorf("round trip changed envelope:\n in: %s\nout: %s", data, gotJSON)
		}
	}
}

func TestParseRequestRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
		code Code
	}{
		{"empty", ``, CodeMalformed},
		{"not json", `{{{`, CodeMalformed},
		{"json scalar", `42`, CodeMalformed},
		{"wrong field type", `{"v":1,"op":"like","post":"ninety"}`, CodeMalformed},
		{"no version", `{"op":"like","token":"t","post":1}`, CodeBadVersion},
		{"future version", `{"v":2,"op":"like","token":"t","post":1}`, CodeBadVersion},
		{"no op", `{"v":1}`, CodeUnknownOp},
		{"unknown op", `{"v":1,"op":"teleport"}`, CodeUnknownOp},
		{"register no password", `{"v":1,"op":"register","username":"a"}`, CodeMissingField},
		{"login no username", `{"v":1,"op":"login","password":"pw"}`, CodeMissingField},
		{"login bad api", `{"v":1,"op":"login","username":"a","password":"pw","api":"soap"}`, CodeBadField},
		{"like no token", `{"v":1,"op":"like","post":5}`, CodeMissingField},
		{"like no post", `{"v":1,"op":"like","token":"t"}`, CodeMissingField},
		{"follow no target", `{"v":1,"op":"follow","token":"t"}`, CodeMissingField},
		{"comment no text", `{"v":1,"op":"comment","token":"t","post":5}`, CodeMissingField},
		{"post no token", `{"v":1,"op":"post"}`, CodeMissingField},
		{"empty tag", `{"v":1,"op":"post","token":"t","tags":[""]}`, CodeBadField},
		{"oversize text", `{"v":1,"op":"comment","token":"t","post":5,"text":"` + strings.Repeat("x", MaxTextBytes+1) + `"}`, CodeBadField},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, werr := ParseRequest([]byte(tc.data))
			if werr == nil {
				t.Fatalf("ParseRequest accepted %q", tc.data)
			}
			if werr.Code != tc.code {
				t.Errorf("code = %q, want %q (detail: %s)", werr.Code, tc.code, werr.Detail)
			}
		})
	}
	huge := append([]byte(`{"v":1,"op":"post","token":"t","text":"`), bytes.Repeat([]byte("y"), MaxEnvelopeBytes)...)
	if _, werr := ParseRequest(huge); werr == nil || werr.Code != CodeTooLarge {
		t.Errorf("oversize envelope: got %v, want CodeTooLarge", werr)
	}
	if _, werr := ParseRequest([]byte(`{"v":1,"op":"post","token":"t","tags":["a","a","a","a","a","a","a","a","a","a","a","a","a","a","a","a","a"]}`)); werr == nil || werr.Code != CodeBadField {
		t.Errorf("too many tags: got %v, want CodeBadField", werr)
	}
}

func TestErrorOutcome(t *testing.T) {
	werr := Errf(CodeOverloaded, "queue full")
	out := werr.Outcome(17)
	if out.V != Version || out.ID != 17 || out.Status != StatusError || out.Code != CodeOverloaded {
		t.Errorf("Outcome = %+v", out)
	}
	if !strings.Contains(werr.Error(), "overloaded") {
		t.Errorf("Error() = %q", werr.Error())
	}
}

func TestStatusForTotal(t *testing.T) {
	want := map[platform.Outcome]Status{
		platform.OutcomeAllowed:     StatusAllowed,
		platform.OutcomeBlocked:     StatusBlocked,
		platform.OutcomeRateLimited: StatusRateLimited,
		platform.OutcomeFailed:      StatusFailed,
		platform.OutcomeUnavailable: StatusUnavailable,
	}
	for o, s := range want {
		if got := StatusFor(o); got != s {
			t.Errorf("StatusFor(%v) = %q, want %q", o, got, s)
		}
	}
	if got := StatusFor(platform.Outcome(99)); got != StatusError {
		t.Errorf("StatusFor(out of range) = %q, want %q", got, StatusError)
	}
}

func TestCodeForError(t *testing.T) {
	cases := map[error]Code{
		nil:                         CodeNone,
		platform.ErrRateLimited:     CodeRateLimited,
		platform.ErrBlocked:         CodeBlocked,
		platform.ErrUnavailable:     CodeUnavailable,
		platform.ErrSessionRevoked:  CodeSessionRevoked,
		platform.ErrBadCredentials:  CodeBadCredentials,
		platform.ErrUsernameTaken:   CodeUsernameTaken,
		platform.ErrAccountGone:     CodeAccountGone,
		platform.ErrNoSession:       CodeUnknownToken,
		errors.New("anything else"): CodeNotFound,
	}
	for err, code := range cases {
		if got := CodeForError(err); got != code {
			t.Errorf("CodeForError(%v) = %q, want %q", err, got, code)
		}
	}
}

func TestPlatformRequestMapping(t *testing.T) {
	r := Request{V: 1, Op: OpComment, Token: "t", Post: 9, Text: "hi"}
	preq, ok := r.PlatformRequest()
	if !ok || preq.Action != platform.ActionComment || preq.Post != 9 || preq.Text != "hi" {
		t.Errorf("PlatformRequest = %+v, %v", preq, ok)
	}
	for _, op := range []Op{OpRegister, OpLogin} {
		if _, ok := (&Request{Op: op}).PlatformRequest(); ok {
			t.Errorf("%s should have no platform mapping", op)
		}
	}
	if (&Request{API: "oauth"}).APIKind() != platform.APIOAuth {
		t.Error("APIKind(oauth)")
	}
	if (&Request{}).APIKind() != platform.APIPrivate {
		t.Error("APIKind(default)")
	}
}

func TestAppendEventJSONMatchesEncodingJSON(t *testing.T) {
	evs := []platform.Event{
		{
			Seq: 1, Time: time.Unix(1504224000, 500), Type: platform.ActionFollow,
			Actor: 3, Target: 9, IP: netip.MustParseAddr("203.0.113.7"), ASN: 64512,
			Client: "android-7.1", API: platform.APIPrivate, Outcome: platform.OutcomeAllowed,
		},
		{
			Seq: 2, Time: time.Unix(1504224001, 0), Type: platform.ActionLike,
			Actor: 4, Post: 77, API: platform.APIOAuth, Outcome: platform.OutcomeRateLimited,
		},
		{
			Seq: 3, Time: time.Unix(1504224002, 0), Type: platform.ActionFollow,
			Actor: 5, Target: 3, Outcome: platform.OutcomeAllowed, Enforcement: true, Duplicate: true,
		},
	}
	for _, pev := range evs {
		ev := EventFrom(pev)
		want, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendEventJSON(nil, ev)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendEventJSON diverges from encoding/json:\n got: %s\nwant: %s", got, want)
		}
		var back Event
		if err := json.Unmarshal(got, &back); err != nil {
			t.Errorf("AppendEventJSON output does not parse: %v", err)
		}
	}
}

func TestLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	lw, err := NewLogWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b1 := [][]byte{[]byte(`{"v":1,"op":"follow","token":"t","target":4}`)}
	b2 := [][]byte{[]byte(`{"v":1,"op":"like","token":"t","post":9}`), []byte(`{"v":1,"op":"post","token":"t"}`)}
	if err := lw.Batch(1000, b1); err != nil {
		t.Fatal(err)
	}
	if err := lw.Batch(2500, b2); err != nil {
		t.Fatal(err)
	}
	if err := lw.End(9000); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].AtNanos != 1000 || len(recs[0].Envelopes) != 1 || !bytes.Equal(recs[0].Envelopes[0], b1[0]) {
		t.Errorf("rec 0 = %+v", recs[0])
	}
	if recs[1].AtNanos != 2500 || len(recs[1].Envelopes) != 2 || !bytes.Equal(recs[1].Envelopes[1], b2[1]) {
		t.Errorf("rec 1 = %+v", recs[1])
	}
	if !recs[2].End || recs[2].AtNanos != 9000 || recs[2].Envelopes != nil {
		t.Errorf("rec 2 = %+v", recs[2])
	}
}

func TestLogErrors(t *testing.T) {
	if _, err := NewLogReader(strings.NewReader("FSEV1\nxxxx")); !errors.Is(err, ErrBadLogMagic) {
		t.Errorf("wrong magic: got %v", err)
	}
	var trunc *TruncatedError
	if _, err := NewLogReader(strings.NewReader("FIN")); !errors.As(err, &trunc) {
		t.Errorf("short magic: got %v", err)
	}

	var buf bytes.Buffer
	lw, _ := NewLogWriter(&buf)
	_ = lw.Batch(1000, [][]byte{[]byte("{}")})
	_ = lw.End(2000)
	full := buf.Bytes()

	// Every proper prefix that cuts a record must fail typed, never panic.
	for n := len(LogMagic); n < len(full); n++ {
		_, err := ReadLog(bytes.NewReader(full[:n]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded as complete", n, len(full))
		}
		var ce *CorruptLogError
		if !errors.As(err, &trunc) && !errors.As(err, &ce) {
			t.Fatalf("prefix %d: untyped error %v", n, err)
		}
	}

	// Unknown op byte.
	bad := append(append([]byte{}, full[:len(LogMagic)]...), 0xEE)
	if _, err := ReadLog(bytes.NewReader(bad)); err == nil {
		t.Error("unknown op accepted")
	} else {
		var ce *CorruptLogError
		if !errors.As(err, &ce) {
			t.Errorf("unknown op: untyped error %v", err)
		}
	}

	// A log with no end record at all is truncated even on a clean
	// record boundary.
	var noEnd bytes.Buffer
	lw2, _ := NewLogWriter(&noEnd)
	_ = lw2.Batch(1000, nil)
	_ = lw2.Flush()
	if _, err := ReadLog(bytes.NewReader(noEnd.Bytes())); !errors.As(err, &trunc) {
		t.Errorf("missing end record: got %v", err)
	}

	// Reader returns io.EOF forever after the end record.
	lr, err := NewLogReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, err := lr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.End {
			break
		}
	}
	if _, err := lr.Next(); err != io.EOF {
		t.Errorf("after end: got %v, want io.EOF", err)
	}
}
