package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// FuzzParseRequest holds the parser's core promise: arbitrary bytes
// never panic, and every rejection carries a typed envelope-level code.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte(`{"v":1,"op":"register","username":"alice","password":"pw"}`))
	f.Add([]byte(`{"v":1,"op":"login","username":"alice","password":"pw","asn":64512,"api":"oauth"}`))
	f.Add([]byte(`{"v":1,"id":7,"op":"like","token":"tok","post":42}`))
	f.Add([]byte(`{"v":1,"op":"follow","token":"tok","target":9}`))
	f.Add([]byte(`{"v":1,"op":"unfollow","token":"tok","target":9}`))
	f.Add([]byte(`{"v":1,"op":"comment","token":"tok","post":42,"text":"nice"}`))
	f.Add([]byte(`{"v":1,"op":"post","token":"tok","tags":["l4l"]}`))
	f.Add([]byte(`{"v":2,"op":"like"}`))
	f.Add([]byte(`{"op":"like"}`))
	f.Add([]byte(`{"v":1,"op":"warp"}`))
	f.Add([]byte(`{{{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, werr := ParseRequest(data)
		if werr != nil {
			switch werr.Code {
			case CodeTooLarge, CodeMalformed, CodeBadVersion, CodeUnknownOp, CodeMissingField, CodeBadField:
			default:
				t.Fatalf("rejection carries non-envelope code %q", werr.Code)
			}
			return
		}
		// Accepted envelopes must survive a re-encode/re-parse cycle
		// unchanged: the schema has no lossy fields.
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
		again, werr := ParseRequest(out)
		if werr != nil {
			t.Fatalf("re-encoded request rejected: %v", werr)
		}
		out2, _ := json.Marshal(again)
		if !bytes.Equal(out, out2) {
			t.Fatalf("re-encode unstable:\n %s\n %s", out, out2)
		}
	})
}

// FuzzLogReader holds the ingress-log decoder's promise: arbitrary
// bytes never panic and never allocate past the declared caps; every
// failure is ErrBadLogMagic, *TruncatedError, or *CorruptLogError.
func FuzzLogReader(f *testing.F) {
	seed := func(build func(lw *LogWriter)) []byte {
		var buf bytes.Buffer
		lw, _ := NewLogWriter(&buf)
		build(lw)
		_ = lw.Flush()
		return buf.Bytes()
	}
	f.Add(seed(func(lw *LogWriter) { _ = lw.End(0) }))
	f.Add(seed(func(lw *LogWriter) {
		_ = lw.Batch(1000, [][]byte{[]byte(`{"v":1,"op":"post","token":"t"}`)})
		_ = lw.End(2000)
	}))
	f.Add(seed(func(lw *LogWriter) {
		_ = lw.Batch(1, nil)
		_ = lw.Batch(2, [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")})
	}))
	f.Add([]byte("FING1\n"))
	f.Add([]byte("FING1\n\xEE"))
	f.Add([]byte("FSEV1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		lr, err := NewLogReader(bytes.NewReader(data))
		if err != nil {
			checkLogErr(t, err)
			return
		}
		for {
			_, err := lr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				checkLogErr(t, err)
				return
			}
		}
	})
}

func checkLogErr(t *testing.T, err error) {
	t.Helper()
	var trunc *TruncatedError
	var corrupt *CorruptLogError
	if !errors.Is(err, ErrBadLogMagic) && !errors.As(err, &trunc) && !errors.As(err, &corrupt) {
		t.Fatalf("untyped decode error: %v", err)
	}
}
