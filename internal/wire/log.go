package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The FING1 ingress log records exactly the network inputs the world
// loop consumed: for every drain that admitted at least one envelope, a
// batch record carrying the simulated instant of the drain and the raw
// envelope bytes, in admission order; and one final end record carrying
// the instant the serve loop stopped. Replaying the log — RunUntil(t),
// apply batch, repeat, RunUntil(end) — reproduces the run's FSEV1 stream
// byte for byte (see docs/API.md, "Determinism and replay").
//
// Envelope-level rejections (malformed JSON, bad version, oversize) are
// decided from the bytes alone before admission and are never logged;
// only envelopes that reached the world loop appear here.
//
// Layout: magic "FING1\n", then records. Each record is an op byte —
// logOpBatch or logOpEnd — followed by the drain instant as a uvarint of
// nanoseconds since the Unix epoch. A batch adds a uvarint envelope
// count, then for each envelope a uvarint length and the raw bytes.

// LogMagic identifies an ingress log stream.
const LogMagic = "FING1\n"

const (
	logOpBatch = 0
	logOpEnd   = 1
)

// maxLogBatch bounds the declared envelope count of a single batch
// record so a corrupt or hostile length prefix cannot force a giant
// allocation before the decoder notices the stream is short.
const maxLogBatch = 1 << 20

// ErrBadLogMagic reports a stream that does not start with LogMagic.
var ErrBadLogMagic = errors.New("wire: not a FING1 ingress log (bad magic)")

// TruncatedError reports an ingress log that ends mid-record. Offset is
// the byte position at which the decoder ran out of input.
type TruncatedError struct {
	Offset int64
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("wire: truncated ingress log at byte %d", e.Offset)
}

// CorruptLogError reports a structurally invalid record.
type CorruptLogError struct {
	Offset int64
	Reason string
}

func (e *CorruptLogError) Error() string {
	return fmt.Sprintf("wire: corrupt ingress log at byte %d: %s", e.Offset, e.Reason)
}

// LogRecord is one decoded ingress-log record. End is true for the
// final record, which carries no envelopes.
type LogRecord struct {
	// AtNanos is the simulated drain instant, nanoseconds since the
	// Unix epoch.
	AtNanos int64
	// Envelopes are the raw request envelope bytes admitted at that
	// instant, in admission order. Nil on the end record.
	Envelopes [][]byte
	// End marks the final record.
	End bool
}

// LogWriter appends ingress records to a stream. Not safe for
// concurrent use; the serve loop is its only writer.
type LogWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

// NewLogWriter writes the FING1 magic and returns a writer positioned
// for the first record.
func NewLogWriter(w io.Writer) (*LogWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(LogMagic); err != nil {
		return nil, err
	}
	return &LogWriter{w: bw}, nil
}

func (lw *LogWriter) uvarint(v uint64) {
	if lw.err != nil {
		return
	}
	n := binary.PutUvarint(lw.buf[:], v)
	_, lw.err = lw.w.Write(lw.buf[:n])
}

// Batch records the envelopes drained at the simulated instant atNanos.
// Empty batches need not be recorded — consecutive RunUntil calls with
// no interleaved mutation compose — but recording one is harmless.
func (lw *LogWriter) Batch(atNanos int64, envelopes [][]byte) error {
	if lw.err == nil {
		lw.err = lw.w.WriteByte(logOpBatch)
	}
	lw.uvarint(uint64(atNanos))
	lw.uvarint(uint64(len(envelopes)))
	for _, env := range envelopes {
		lw.uvarint(uint64(len(env)))
		if lw.err == nil {
			_, lw.err = lw.w.Write(env)
		}
	}
	return lw.err
}

// End records the final simulated instant and flushes. The log is
// complete only after End; a reader treats its absence as truncation.
func (lw *LogWriter) End(atNanos int64) error {
	if lw.err == nil {
		lw.err = lw.w.WriteByte(logOpEnd)
	}
	lw.uvarint(uint64(atNanos))
	if lw.err == nil {
		lw.err = lw.w.Flush()
	}
	return lw.err
}

// Flush forces buffered records to the underlying writer without
// ending the log (used before checkpoints).
func (lw *LogWriter) Flush() error {
	if lw.err == nil {
		lw.err = lw.w.Flush()
	}
	return lw.err
}

// LogReader decodes an ingress log sequentially.
type LogReader struct {
	r      *bufio.Reader
	offset int64
	done   bool
}

// NewLogReader checks the magic and returns a reader positioned at the
// first record.
func NewLogReader(r io.Reader) (*LogReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(LogMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, &TruncatedError{Offset: 0}
	}
	if string(magic) != LogMagic {
		return nil, ErrBadLogMagic
	}
	return &LogReader{r: br, offset: int64(len(LogMagic))}, nil
}

func (lr *LogReader) readByte() (byte, error) {
	b, err := lr.r.ReadByte()
	if err != nil {
		return 0, &TruncatedError{Offset: lr.offset}
	}
	lr.offset++
	return b, nil
}

func (lr *LogReader) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(lr)
	if err != nil {
		if _, ok := err.(*TruncatedError); ok {
			return 0, err
		}
		return 0, &CorruptLogError{Offset: lr.offset, Reason: err.Error()}
	}
	return v, nil
}

// ReadByte implements io.ByteReader for binary.ReadUvarint while
// keeping the offset accurate.
func (lr *LogReader) ReadByte() (byte, error) { return lr.readByte() }

// Next returns the next record, io.EOF after the end record, a
// *TruncatedError if the stream stops mid-record or before any end
// record, and a *CorruptLogError on structural damage.
func (lr *LogReader) Next() (LogRecord, error) {
	if lr.done {
		return LogRecord{}, io.EOF
	}
	op, err := lr.readByte()
	if err != nil {
		return LogRecord{}, err // no end record seen: truncated
	}
	if op != logOpBatch && op != logOpEnd {
		return LogRecord{}, &CorruptLogError{Offset: lr.offset - 1, Reason: fmt.Sprintf("unknown record op %d", op)}
	}
	at, err := lr.readUvarint()
	if err != nil {
		return LogRecord{}, err
	}
	rec := LogRecord{AtNanos: int64(at)}
	if op == logOpEnd {
		rec.End = true
		lr.done = true
		return rec, nil
	}
	count, err := lr.readUvarint()
	if err != nil {
		return LogRecord{}, err
	}
	if count > maxLogBatch {
		return LogRecord{}, &CorruptLogError{Offset: lr.offset, Reason: fmt.Sprintf("batch declares %d envelopes (max %d)", count, maxLogBatch)}
	}
	rec.Envelopes = make([][]byte, 0, min(count, 1024))
	for i := uint64(0); i < count; i++ {
		size, err := lr.readUvarint()
		if err != nil {
			return LogRecord{}, err
		}
		if size > MaxEnvelopeBytes {
			return LogRecord{}, &CorruptLogError{Offset: lr.offset, Reason: fmt.Sprintf("envelope declares %d bytes (max %d)", size, MaxEnvelopeBytes)}
		}
		env := make([]byte, size)
		if _, err := io.ReadFull(lr.r, env); err != nil {
			return LogRecord{}, &TruncatedError{Offset: lr.offset}
		}
		lr.offset += int64(size)
		rec.Envelopes = append(rec.Envelopes, env)
	}
	return rec, nil
}

// ReadLog decodes a complete ingress log. It fails with *TruncatedError
// if the stream lacks an end record.
func ReadLog(r io.Reader) ([]LogRecord, error) {
	lr, err := NewLogReader(r)
	if err != nil {
		return nil, err
	}
	var recs []LogRecord
	for {
		rec, err := lr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}
