// Package wire defines the stable, versioned request surface the serving
// layer speaks: the `/v1` JSON envelope for requests and outcomes, the
// typed status and error-code enums external clients program against, the
// JSON mirror of the platform event stream, and the FING1 ingress-log
// codec that makes a served run replayable.
//
// The package exists so that no client — the loadgen command, a browser,
// a measurement harness in another language — ever depends on internal
// Go types. Platform enums (platform.ActionType, platform.Outcome) are
// integers whose values are an implementation detail; the wire schema
// maps every one of them to an explicit string that is frozen per wire
// version. See docs/API.md for the full schema and versioning policy.
//
// Parsing never panics and never allocates unboundedly: envelopes are
// size-capped, every malformed input maps to a typed *Error with a
// machine-readable Code, and the fuzz targets in fuzz_test.go hold the
// no-panic property over arbitrary bytes.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"

	"footsteps/internal/platform"
)

// Version is the wire-format version this package speaks. Requests must
// carry it in their "v" field; outcomes echo it back. Breaking schema
// changes bump the version and mount under a new /vN prefix — see
// docs/API.md for the compatibility rules.
const Version = 1

// MaxEnvelopeBytes caps a single request envelope. Anything longer is
// rejected with CodeTooLarge before JSON decoding is attempted, so a
// hostile client cannot make the parser allocate per its content length.
const MaxEnvelopeBytes = 1 << 16

// MaxTextBytes caps the free-text fields (comment text, tags, usernames,
// fingerprints) inside an otherwise valid envelope.
const MaxTextBytes = 1 << 10

// MaxTags caps the hashtag list on a post request.
const MaxTags = 16

// Op enumerates the request operations of wire version 1. The first two
// manage identity; the rest map one-to-one onto the platform's action
// families (Table 1 of the paper).
type Op string

// Operations.
const (
	OpRegister Op = "register"
	OpLogin    Op = "login"
	OpLike     Op = "like"
	OpFollow   Op = "follow"
	OpUnfollow Op = "unfollow"
	OpComment  Op = "comment"
	OpPost     Op = "post"
)

// Ops lists every valid operation, in documentation order.
func Ops() []Op {
	return []Op{OpRegister, OpLogin, OpLike, OpFollow, OpUnfollow, OpComment, OpPost}
}

// Request is the versioned `/v1` request envelope. One JSON object per
// request; which fields are required depends on Op (see Validate).
// Unknown fields are ignored — the v1 compatibility rule that lets
// clients send fields from future minor revisions.
type Request struct {
	// V is the wire version; must equal Version.
	V int `json:"v"`
	// ID is an optional client correlation id, echoed verbatim on the
	// outcome. The server never interprets it.
	ID uint64 `json:"id,omitempty"`
	// Op selects the operation.
	Op Op `json:"op"`

	// Token authenticates action ops (like, follow, unfollow, comment,
	// post). Obtained from a login outcome.
	Token string `json:"token,omitempty"`

	// Target is the target account id for follow/unfollow.
	Target uint64 `json:"target,omitempty"`
	// Post is the target post id for like/comment.
	Post uint64 `json:"post,omitempty"`
	// Text is the comment body.
	Text string `json:"text,omitempty"`
	// Tags are the hashtags attached to a post op.
	Tags []string `json:"tags,omitempty"`

	// Username and Password drive register and login.
	Username string `json:"username,omitempty"`
	Password string `json:"password,omitempty"`
	// Country is the registering account's home country (register only;
	// defaults to USA).
	Country string `json:"country,omitempty"`
	// ASN, when nonzero, asks login to allocate the session's source
	// address from this autonomous system; zero means the server's
	// default residential ASN. An unregistered ASN fails with
	// CodeUnknownASN.
	ASN uint32 `json:"asn,omitempty"`
	// API is "private" (default; the reverse-engineered mobile API) or
	// "oauth" (the heavily rate-limited public API).
	API string `json:"api,omitempty"`
	// Client is the session's client fingerprint string (login only;
	// defaults to "wire-client").
	Client string `json:"client,omitempty"`
}

// Status is the wire mirror of platform.Outcome, plus StatusError for
// requests that failed before reaching the platform pipeline. The
// strings are frozen: clients switch on them.
type Status string

// Statuses.
const (
	StatusAllowed     Status = "allowed"
	StatusBlocked     Status = "blocked"
	StatusRateLimited Status = "rate-limited"
	StatusFailed      Status = "failed"
	StatusUnavailable Status = "unavailable"
	// StatusError marks envelope- or session-level failures (malformed
	// request, unknown token, overload); Code says which.
	StatusError Status = "error"
)

// StatusFor maps a platform outcome to its wire status. The mapping is
// total: an out-of-range outcome (impossible today, conceivable after a
// platform change) maps to StatusError rather than leaking the integer.
func StatusFor(o platform.Outcome) Status {
	switch o {
	case platform.OutcomeAllowed:
		return StatusAllowed
	case platform.OutcomeBlocked:
		return StatusBlocked
	case platform.OutcomeRateLimited:
		return StatusRateLimited
	case platform.OutcomeFailed:
		return StatusFailed
	case platform.OutcomeUnavailable:
		return StatusUnavailable
	default:
		return StatusError
	}
}

// Code is a machine-readable failure code. Empty means "no failure".
// Codes are frozen per wire version; new codes may be added in minor
// revisions, so clients must treat unknown codes as generic failures.
type Code string

// Error codes.
const (
	CodeNone Code = ""

	// Envelope-level rejections: decided from the bytes alone, before
	// the request reaches the world loop, and therefore never part of
	// the ingress log.
	CodeTooLarge     Code = "too_large"     // envelope exceeds MaxEnvelopeBytes
	CodeMalformed    Code = "malformed"     // not a JSON object of the envelope shape
	CodeBadVersion   Code = "bad_version"   // missing or unsupported "v"
	CodeUnknownOp    Code = "unknown_op"    // "op" not in Ops()
	CodeMissingField Code = "missing_field" // a field the op requires is absent
	CodeBadField     Code = "bad_field"     // a field is present but out of range

	// Admission rejections: the serving layer refused to enqueue.
	CodeOverloaded   Code = "overloaded"    // ingress queue full; retry later
	CodeShuttingDown Code = "shutting_down" // server is draining; no new work

	// State-dependent failures: decided in the world loop, logged, and
	// therefore reproduced exactly by an ingress-log replay.
	CodeUsernameTaken  Code = "username_taken"
	CodeBadCredentials Code = "bad_credentials"
	CodeUnknownToken   Code = "unknown_token"
	CodeSessionRevoked Code = "session_revoked"
	CodeUnknownASN     Code = "unknown_asn"
	CodeNotFound       Code = "not_found"
	CodeRateLimited    Code = "rate_limited"
	CodeBlocked        Code = "blocked"
	CodeUnavailable    Code = "unavailable"
	CodeAccountGone    Code = "account_gone"
	CodeInternal       Code = "internal"
)

// CodeForError maps a platform error to its wire code. Unknown errors
// map to CodeInternal: the wire surface never exposes raw Go error text
// as a contract.
func CodeForError(err error) Code {
	switch {
	case err == nil:
		return CodeNone
	case errors.Is(err, platform.ErrRateLimited):
		return CodeRateLimited
	case errors.Is(err, platform.ErrBlocked):
		return CodeBlocked
	case errors.Is(err, platform.ErrUnavailable):
		return CodeUnavailable
	case errors.Is(err, platform.ErrSessionRevoked):
		return CodeSessionRevoked
	case errors.Is(err, platform.ErrBadCredentials):
		return CodeBadCredentials
	case errors.Is(err, platform.ErrUsernameTaken):
		return CodeUsernameTaken
	case errors.Is(err, platform.ErrAccountGone):
		return CodeAccountGone
	case errors.Is(err, platform.ErrNoSession):
		return CodeUnknownToken
	default:
		return CodeNotFound
	}
}

// Error is a typed wire-level failure: a frozen Code plus a human detail
// string. It implements error so parser and server plumbing can return
// it directly.
type Error struct {
	Code   Code
	Detail string
}

func (e *Error) Error() string { return fmt.Sprintf("wire: %s: %s", e.Code, e.Detail) }

// Errf builds an *Error with a formatted detail.
func Errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Detail: fmt.Sprintf(format, args...)}
}

// Outcome renders the error as a terminal outcome for the request id.
func (e *Error) Outcome(id uint64) Outcome {
	return Outcome{V: Version, ID: id, Status: StatusError, Code: e.Code, Detail: e.Detail}
}

// Outcome is the `/v1` response envelope: how a request fared. Status is
// always set; Code is set on any non-allowed terminal state that has a
// machine-readable cause.
type Outcome struct {
	V  int    `json:"v"`
	ID uint64 `json:"id,omitempty"`
	// Status is the terminal state of the request.
	Status Status `json:"status"`
	// Code carries the failure cause when Status is not "allowed".
	Code Code `json:"code,omitempty"`
	// Detail is a human-readable elaboration of Code. Informational
	// only: its text is not part of the wire contract.
	Detail string `json:"detail,omitempty"`
	// Applied reports whether an allowed action changed state; an
	// allowed structural no-op (re-follow, re-like) leaves it false.
	Applied bool `json:"applied,omitempty"`
	// Account is the created account id (register).
	Account uint64 `json:"account,omitempty"`
	// Post is the created post id (post).
	Post uint64 `json:"post,omitempty"`
	// Token is the session token (login).
	Token string `json:"token,omitempty"`
}

// ParseRequest decodes and validates one request envelope. The returned
// *Error is non-nil exactly when the envelope must be rejected; its Code
// is one of the envelope-level codes. On a validation failure the
// decoded envelope is still returned so callers can echo its ID in the
// error outcome. ParseRequest is a pure function of the bytes — it
// never consults world state — which is what keeps the ingress log free
// of unreplayable entries.
func ParseRequest(data []byte) (Request, *Error) {
	var req Request
	if len(data) > MaxEnvelopeBytes {
		return req, Errf(CodeTooLarge, "envelope is %d bytes (max %d)", len(data), MaxEnvelopeBytes)
	}
	if err := json.Unmarshal(data, &req); err != nil {
		return Request{}, Errf(CodeMalformed, "bad envelope: %v", err)
	}
	return req, req.Validate()
}

// Validate checks version, op, and the per-op required fields. It is
// exactly the validation ParseRequest applies; callers constructing
// Request values in Go can run it before encoding.
func (r *Request) Validate() *Error {
	if r.V != Version {
		return Errf(CodeBadVersion, "envelope version %d (this server speaks v%d)", r.V, Version)
	}
	switch r.Op {
	case OpRegister:
		if r.Username == "" || r.Password == "" {
			return Errf(CodeMissingField, "register requires username and password")
		}
	case OpLogin:
		if r.Username == "" || r.Password == "" {
			return Errf(CodeMissingField, "login requires username and password")
		}
		switch r.API {
		case "", "private", "oauth":
		default:
			return Errf(CodeBadField, "api %q (want private or oauth)", r.API)
		}
	case OpLike:
		if r.Token == "" {
			return Errf(CodeMissingField, "like requires token")
		}
		if r.Post == 0 {
			return Errf(CodeMissingField, "like requires post")
		}
	case OpFollow, OpUnfollow:
		if r.Token == "" {
			return Errf(CodeMissingField, "%s requires token", r.Op)
		}
		if r.Target == 0 {
			return Errf(CodeMissingField, "%s requires target", r.Op)
		}
	case OpComment:
		if r.Token == "" {
			return Errf(CodeMissingField, "comment requires token")
		}
		if r.Post == 0 {
			return Errf(CodeMissingField, "comment requires post")
		}
		if r.Text == "" {
			return Errf(CodeMissingField, "comment requires text")
		}
	case OpPost:
		if r.Token == "" {
			return Errf(CodeMissingField, "post requires token")
		}
		if len(r.Tags) > MaxTags {
			return Errf(CodeBadField, "%d tags (max %d)", len(r.Tags), MaxTags)
		}
	case "":
		return Errf(CodeUnknownOp, "envelope has no op")
	default:
		return Errf(CodeUnknownOp, "op %q", r.Op)
	}
	for _, f := range [...]struct{ name, v string }{
		{"username", r.Username}, {"password", r.Password}, {"country", r.Country},
		{"text", r.Text}, {"client", r.Client}, {"token", r.Token},
	} {
		if len(f.v) > MaxTextBytes {
			return Errf(CodeBadField, "%s is %d bytes (max %d)", f.name, len(f.v), MaxTextBytes)
		}
	}
	for _, t := range r.Tags {
		if t == "" || len(t) > MaxTextBytes {
			return Errf(CodeBadField, "tag length %d (want 1..%d)", len(t), MaxTextBytes)
		}
	}
	return nil
}

// APIKind resolves the request's API field to the platform enum.
// Validate has already constrained the string.
func (r *Request) APIKind() platform.APIKind {
	if r.API == "oauth" {
		return platform.APIOAuth
	}
	return platform.APIPrivate
}

// PlatformRequest converts an action envelope into the platform's
// Do(Request) envelope, minus the session (the serving layer resolves
// tokens to sessions itself). Only action ops have a platform mapping;
// identity ops (register, login) return false.
func (r *Request) PlatformRequest() (platform.Request, bool) {
	switch r.Op {
	case OpLike:
		return platform.Request{Action: platform.ActionLike, Post: platform.PostID(r.Post)}, true
	case OpFollow:
		return platform.Request{Action: platform.ActionFollow, Target: platform.AccountID(r.Target)}, true
	case OpUnfollow:
		return platform.Request{Action: platform.ActionUnfollow, Target: platform.AccountID(r.Target)}, true
	case OpComment:
		return platform.Request{Action: platform.ActionComment, Post: platform.PostID(r.Post), Text: r.Text}, true
	case OpPost:
		return platform.Request{Action: platform.ActionPost, Tags: r.Tags}, true
	default:
		return platform.Request{}, false
	}
}
