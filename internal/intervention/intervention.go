// Package intervention implements the countermeasure experiments of §6:
// the deterministic 10-bin account partition, the per-ASN activity
// thresholds as an enforcement signal, the synchronous-block and
// delayed-removal countermeasures, and the narrow/broad experiment
// policies.
//
// Deliberately, the controller does NOT consult the AAS classifier when
// deciding an action's fate — §6 derives "a new signal for performing
// countermeasures" (ASN + per-account daily threshold) precisely so that
// adversaries probing the countermeasure cannot reverse-engineer the
// attribution signals. The classifier is used only to compute thresholds
// beforehand and to label metrics afterwards.
package intervention

import (
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/detection"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/telemetry"
	"footsteps/internal/trace"
)

// NumBins is the fixed experiment partition width (§6.3).
const NumBins = 10

// BinOf deterministically assigns an account to one of the 10 bins.
func BinOf(id platform.AccountID) int { return int(id % NumBins) }

// Assignment is what happens to a bin's eligible actions.
type Assignment int

// Assignments.
const (
	AssignNone    Assignment = iota // not part of the experiment
	AssignControl                   // tracked, never touched
	AssignBlock                     // synchronous block
	AssignDelay                     // allow, then remove a day later
)

func (a Assignment) String() string {
	switch a {
	case AssignControl:
		return "control"
	case AssignBlock:
		return "block"
	case AssignDelay:
		return "delay"
	default:
		return "none"
	}
}

// Policy maps (experiment day, bin) to an assignment. Policies express the
// paper's two experiment designs; custom policies slot in the same way.
type Policy func(day, bin int) Assignment

// NarrowPolicy is the §6.3 design: one block bin, one delay bin, one
// control bin — countermeasures touch at most 20% of customers.
func NarrowPolicy(blockBin, delayBin, controlBin int) Policy {
	return func(_, bin int) Assignment {
		switch bin {
		case blockBin:
			return AssignBlock
		case delayBin:
			return AssignDelay
		case controlBin:
			return AssignControl
		default:
			return AssignNone
		}
	}
}

// BroadPolicy is the §6.4 design: 90% of accounts receive the delay
// countermeasure for switchDay days, then block; one bin stays control.
func BroadPolicy(controlBin, switchDay int) Policy {
	return func(day, bin int) Assignment {
		if bin == controlBin {
			return AssignControl
		}
		if day < switchDay {
			return AssignDelay
		}
		return AssignBlock
	}
}

// BinStats aggregates one day's attempts for one (label, action type, bin
// assignment) cell.
type BinStats struct {
	Attempts int // actions seen from thresholded ASNs
	Eligible int // attempts above the account's daily threshold
	Blocked  int // eligible attempts synchronously blocked
	Delayed  int // eligible attempts scheduled for removal
}

// statsKey identifies one metrics cell.
type statsKey struct {
	day   int
	label string
	typ   platform.ActionType
	assig Assignment
}

// Controller is the enforcement hook: install it as the platform's
// gatekeeper. It is not safe for concurrent use with a live experiment
// reconfiguration; set policy before traffic flows.
type Controller struct {
	thresholds detection.Thresholds
	classify   func(platform.Event) (string, bool)
	policy     Policy
	start      time.Time
	removeLag  time.Duration

	// per-account daily counters, keyed on (account, ASN, type).
	counters map[counterKey]*dayCount

	stats map[statsKey]*BinStats

	telAttempts *telemetry.Counter
	telEligible *telemetry.Counter
	telBlocked  *telemetry.Counter
	telDelayed  *telemetry.Counter

	// tracer records enforcement-decision instant spans (nil = tracing
	// off). Check runs inside platform.Do's gatekeep stage on the serial
	// apply path, so decision spans parent onto the in-flight request.
	tracer *trace.Tracer
}

type counterKey struct {
	acct platform.AccountID
	asn  netsim.ASN
	typ  platform.ActionType
}

type dayCount struct {
	day int
	n   int
}

// New builds a controller. classify is used only for metrics labels and
// may be nil (everything labeled "unknown"). removeLag is the deferred
// removal delay (the paper used one day).
func New(th detection.Thresholds, classify func(platform.Event) (string, bool), policy Policy, start time.Time, removeLag time.Duration) *Controller {
	if removeLag <= 0 {
		removeLag = 24 * time.Hour
	}
	return &Controller{
		thresholds: th,
		classify:   classify,
		policy:     policy,
		start:      start,
		removeLag:  removeLag,
		counters:   make(map[counterKey]*dayCount),
		stats:      make(map[statsKey]*BinStats),
	}
}

// WireTelemetry registers the controller's counters on reg, mirroring the
// BinStats tallies in aggregate: attempts seen from thresholded ASNs,
// attempts over threshold, and the two countermeasure outcomes. Telemetry
// is a pure observer; a nil reg leaves the controller untouched.
func (c *Controller) WireTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.telAttempts = reg.Counter("intervention.attempts")
	c.telEligible = reg.Counter("intervention.eligible")
	c.telBlocked = reg.Counter("intervention.blocked")
	c.telDelayed = reg.Counter("intervention.delayed")
}

// WireTrace installs the span tracer: over-threshold decisions then emit
// instant spans parented onto the request being gatekept. Nil leaves
// tracing off. Pure observer, like WireTelemetry.
func (c *Controller) WireTrace(tr *trace.Tracer) { c.tracer = tr }

// traceDecision emits one enforcement-decision instant span. Value
// carries the account's same-day action count that crossed the
// threshold.
func (c *Controller) traceDecision(req platform.Event, code uint8, count int) {
	if tr := c.tracer; tr != nil {
		tr.Instant(trace.KindEnforcement, uint64(req.Actor), uint8(req.Type),
			code, tr.CurrentRequest(), int64(count))
	}
}

// Day returns the experiment day index for an instant.
func (c *Controller) Day(at time.Time) int { return int(at.Sub(c.start) / clock.Day) }

// Check implements platform.Gatekeeper.
func (c *Controller) Check(req platform.Event) platform.Verdict {
	if req.Type != platform.ActionLike && req.Type != platform.ActionFollow {
		return platform.Allow
	}
	threshold, ok := c.thresholds.Lookup(req.ASN, req.Type)
	if !ok {
		return platform.Allow // unthresholded ASN: out of reach (§6.4)
	}
	day := c.Day(req.Time)

	key := counterKey{acct: req.Actor, asn: req.ASN, typ: req.Type}
	cnt := c.counters[key]
	if cnt == nil {
		cnt = &dayCount{day: day}
		c.counters[key] = cnt
	}
	if cnt.day != day {
		cnt.day, cnt.n = day, 0
	}
	cnt.n++

	assig := c.policy(day, BinOf(req.Actor))
	label := "unknown"
	if c.classify != nil {
		if l, ok := c.classify(req); ok {
			label = l
		} else {
			label = "benign"
		}
	}
	st := c.statsFor(statsKey{day: day, label: label, typ: req.Type, assig: assig})
	st.Attempts++
	c.telAttempts.Inc()

	eligible := float64(cnt.n) > threshold
	if !eligible {
		return platform.Allow
	}
	st.Eligible++
	c.telEligible.Inc()

	switch assig {
	case AssignBlock:
		st.Blocked++
		c.telBlocked.Inc()
		c.traceDecision(req, trace.VerdictBlocked, cnt.n)
		return platform.Verdict{Kind: platform.VerdictBlock}
	case AssignDelay:
		if req.Type == platform.ActionFollow {
			st.Delayed++
			c.telDelayed.Inc()
			c.traceDecision(req, trace.VerdictDelayed, cnt.n)
			return platform.Verdict{Kind: platform.VerdictDelayRemove, RemoveAfter: c.removeLag}
		}
		c.traceDecision(req, trace.VerdictEligible, cnt.n)
		return platform.Allow // no deferred removal exists for likes (§6.1)
	default:
		c.traceDecision(req, trace.VerdictEligible, cnt.n)
		return platform.Allow
	}
}

func (c *Controller) statsFor(k statsKey) *BinStats {
	st := c.stats[k]
	if st == nil {
		st = &BinStats{}
		c.stats[k] = st
	}
	return st
}

// Stats returns the metrics cell for (day, label, type, assignment);
// zero-valued when nothing was observed.
func (c *Controller) Stats(day int, label string, typ platform.ActionType, assig Assignment) BinStats {
	if st := c.stats[statsKey{day: day, label: label, typ: typ, assig: assig}]; st != nil {
		return *st
	}
	return BinStats{}
}

// EligibleFraction returns eligible/attempts for a cell — the y-axis of
// Figures 6 and 7. The second result is false when no attempts were seen.
func (c *Controller) EligibleFraction(day int, label string, typ platform.ActionType, assig Assignment) (float64, bool) {
	st := c.Stats(day, label, typ, assig)
	if st.Attempts == 0 {
		return 0, false
	}
	return float64(st.Eligible) / float64(st.Attempts), true
}

// BenignTouched sums blocked+delayed actions attributed to benign traffic
// over the whole experiment — the false-positive burden the thresholds are
// designed to cap at 1% (§6.2).
func (c *Controller) BenignTouched() int {
	n := 0
	for k, st := range c.stats {
		if k.label == "benign" {
			n += st.Blocked + st.Delayed
		}
	}
	return n
}

// Labels returns the distinct labels seen in metrics.
func (c *Controller) Labels() []string {
	seen := make(map[string]bool)
	for k := range c.stats {
		seen[k.label] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	return out
}
