package intervention

import (
	"sort"

	"footsteps/internal/netsim"
	"footsteps/internal/platform"
)

// Snapshot/restore support (see internal/persistence). The controller's
// per-account daily counters and metrics cells are serialized sorted so
// the encoded form is canonical. Static wiring (thresholds, policy,
// classify, start, removeLag) is reconstruction state, not snapshot
// state — a restored controller must be built with the same arguments.

// ControllerState is the complete mutable state of a Controller.
type ControllerState struct {
	Counters []CounterState // sorted by (account, asn, type)
	Stats    []CellState    // sorted by (day, label, type, assignment)
}

// CounterState is one (account, ASN, type) daily counter.
type CounterState struct {
	Account platform.AccountID
	ASN     netsim.ASN
	Type    platform.ActionType
	Day     int
	N       int
}

// CellState is one metrics cell.
type CellState struct {
	Day    int
	Label  string
	Type   platform.ActionType
	Assign Assignment
	Stats  BinStats
}

// SnapshotState captures the controller's complete mutable state.
func (c *Controller) SnapshotState() *ControllerState {
	st := &ControllerState{}
	for k, v := range c.counters {
		st.Counters = append(st.Counters, CounterState{
			Account: k.acct, ASN: k.asn, Type: k.typ, Day: v.day, N: v.n,
		})
	}
	sort.Slice(st.Counters, func(i, j int) bool {
		a, b := st.Counters[i], st.Counters[j]
		if a.Account != b.Account {
			return a.Account < b.Account
		}
		if a.ASN != b.ASN {
			return a.ASN < b.ASN
		}
		return a.Type < b.Type
	})
	for k, v := range c.stats {
		st.Stats = append(st.Stats, CellState{
			Day: k.day, Label: k.label, Type: k.typ, Assign: k.assig, Stats: *v,
		})
	}
	sort.Slice(st.Stats, func(i, j int) bool {
		a, b := st.Stats[i], st.Stats[j]
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Assign < b.Assign
	})
	return st
}

// RestoreState overwrites the controller's mutable state with a snapshot.
func (c *Controller) RestoreState(st *ControllerState) {
	clear(c.counters)
	for _, cs := range st.Counters {
		c.counters[counterKey{acct: cs.Account, asn: cs.ASN, typ: cs.Type}] = &dayCount{day: cs.Day, n: cs.N}
	}
	clear(c.stats)
	for _, cs := range st.Stats {
		s := cs.Stats
		c.stats[statsKey{day: cs.Day, label: cs.Label, typ: cs.Type, assig: cs.Assign}] = &s
	}
}
