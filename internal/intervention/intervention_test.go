package intervention

import (
	"testing"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/detection"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/socialgraph"
)

func socialgraphNew() *socialgraph.Graph { return socialgraph.New() }

func thresholds(asn netsim.ASN, like, follow float64) detection.Thresholds {
	return detection.Thresholds{PerASN: map[netsim.ASN]map[platform.ActionType]float64{
		asn: {platform.ActionLike: like, platform.ActionFollow: follow},
	}}
}

func req(actor platform.AccountID, typ platform.ActionType, asn netsim.ASN, at time.Time) platform.Event {
	return platform.Event{Time: at, Type: typ, Actor: actor, ASN: asn, Client: "spoof"}
}

func TestBinOfDeterministicAndBalanced(t *testing.T) {
	t.Parallel()
	counts := make([]int, NumBins)
	for i := 0; i < 10000; i++ {
		b := BinOf(platform.AccountID(i))
		if b != BinOf(platform.AccountID(i)) {
			t.Fatal("BinOf not deterministic")
		}
		counts[b]++
	}
	for b, n := range counts {
		if n != 1000 {
			t.Fatalf("bin %d has %d accounts", b, n)
		}
	}
}

func TestControllerBlocksAboveThreshold(t *testing.T) {
	t.Parallel()
	// Account 13 is in bin 3 (block). Threshold: 5 follows/day.
	ctl := New(thresholds(100, 100, 5), nil, NarrowPolicy(3, 4, 5), clock.Epoch, 0)
	at := clock.Epoch.Add(time.Hour)
	actor := platform.AccountID(13)

	for i := 1; i <= 5; i++ {
		if v := ctl.Check(req(actor, platform.ActionFollow, 100, at)); v.Kind != platform.VerdictAllow {
			t.Fatalf("action %d below threshold got %v", i, v.Kind)
		}
	}
	if v := ctl.Check(req(actor, platform.ActionFollow, 100, at)); v.Kind != platform.VerdictBlock {
		t.Fatalf("6th action got %v, want block", v.Kind)
	}
	// Next day the counter resets.
	nextDay := at.Add(24 * time.Hour)
	if v := ctl.Check(req(actor, platform.ActionFollow, 100, nextDay)); v.Kind != platform.VerdictAllow {
		t.Fatal("counter did not reset at day boundary")
	}
}

func TestControllerDelayOnlyForFollows(t *testing.T) {
	t.Parallel()
	// Account 14 is in bin 4 (delay). Thresholds: 2 for both types.
	ctl := New(thresholds(100, 2, 2), nil, NarrowPolicy(3, 4, 5), clock.Epoch, 24*time.Hour)
	at := clock.Epoch.Add(time.Hour)
	actor := platform.AccountID(14)

	for i := 0; i < 2; i++ {
		ctl.Check(req(actor, platform.ActionFollow, 100, at))
		ctl.Check(req(actor, platform.ActionLike, 100, at))
	}
	if v := ctl.Check(req(actor, platform.ActionFollow, 100, at)); v.Kind != platform.VerdictDelayRemove || v.RemoveAfter != 24*time.Hour {
		t.Fatalf("eligible follow in delay bin got %+v", v)
	}
	// Likes have no delayed removal: they pass.
	if v := ctl.Check(req(actor, platform.ActionLike, 100, at)); v.Kind != platform.VerdictAllow {
		t.Fatalf("eligible like in delay bin got %v", v.Kind)
	}
}

func TestControlAndUnassignedBinsUntouched(t *testing.T) {
	t.Parallel()
	ctl := New(thresholds(100, 1, 1), nil, NarrowPolicy(3, 4, 5), clock.Epoch, 0)
	at := clock.Epoch.Add(time.Hour)
	for _, actor := range []platform.AccountID{15 /* control */, 16 /* none */} {
		for i := 0; i < 10; i++ {
			if v := ctl.Check(req(actor, platform.ActionFollow, 100, at)); v.Kind != platform.VerdictAllow {
				t.Fatalf("bin %d action got %v", BinOf(actor), v.Kind)
			}
		}
	}
	// Control bin still shows eligibility in metrics.
	st := ctl.Stats(0, "unknown", platform.ActionFollow, AssignControl)
	if st.Attempts != 10 || st.Eligible != 9 || st.Blocked != 0 {
		t.Fatalf("control stats %+v", st)
	}
}

func TestUnthresholdedASNOutOfReach(t *testing.T) {
	t.Parallel()
	ctl := New(thresholds(100, 1, 1), nil, BroadPolicy(0, 0), clock.Epoch, 0)
	at := clock.Epoch.Add(time.Hour)
	actor := platform.AccountID(13)
	for i := 0; i < 50; i++ {
		if v := ctl.Check(req(actor, platform.ActionFollow, 999, at)); v.Kind != platform.VerdictAllow {
			t.Fatal("action from unthresholded ASN touched — proxy evasion would fail")
		}
	}
}

func TestNonPolicedTypesPass(t *testing.T) {
	t.Parallel()
	ctl := New(thresholds(100, 0, 0), nil, BroadPolicy(0, 0), clock.Epoch, 0)
	at := clock.Epoch.Add(time.Hour)
	if v := ctl.Check(req(7, platform.ActionComment, 100, at)); v.Kind != platform.VerdictAllow {
		t.Fatal("comment policed")
	}
	if v := ctl.Check(req(7, platform.ActionUnfollow, 100, at)); v.Kind != platform.VerdictAllow {
		t.Fatal("unfollow policed")
	}
}

func TestBroadPolicySwitchesDelayToBlock(t *testing.T) {
	t.Parallel()
	p := BroadPolicy(9, 6)
	if p(0, 3) != AssignDelay || p(5, 3) != AssignDelay {
		t.Fatal("week 1 not delay")
	}
	if p(6, 3) != AssignBlock || p(10, 3) != AssignBlock {
		t.Fatal("week 2 not block")
	}
	if p(0, 9) != AssignControl || p(10, 9) != AssignControl {
		t.Fatal("control bin moved")
	}
}

func TestControllerMetricsAndLabels(t *testing.T) {
	t.Parallel()
	classify := func(ev platform.Event) (string, bool) {
		if ev.Client == "spoof" {
			return "Svc", true
		}
		return "", false
	}
	ctl := New(thresholds(100, 2, 2), classify, NarrowPolicy(3, 4, 5), clock.Epoch, 0)
	at := clock.Epoch.Add(time.Hour)

	// AAS traffic from bin-3 account: 5 attempts, 3 eligible, 3 blocked.
	for i := 0; i < 5; i++ {
		ctl.Check(req(13, platform.ActionLike, 100, at))
	}
	// Benign traffic from a bin-3 account above threshold: false positive.
	benign := req(23, platform.ActionLike, 100, at)
	benign.Client = "mobile-official"
	for i := 0; i < 4; i++ {
		ctl.Check(benign)
	}

	st := ctl.Stats(0, "Svc", platform.ActionLike, AssignBlock)
	if st.Attempts != 5 || st.Eligible != 3 || st.Blocked != 3 {
		t.Fatalf("svc stats %+v", st)
	}
	frac, ok := ctl.EligibleFraction(0, "Svc", platform.ActionLike, AssignBlock)
	if !ok || frac != 0.6 {
		t.Fatalf("eligible fraction %v %v", frac, ok)
	}
	if _, ok := ctl.EligibleFraction(3, "Svc", platform.ActionLike, AssignBlock); ok {
		t.Fatal("fraction reported for empty day")
	}
	if got := ctl.BenignTouched(); got != 2 {
		t.Fatalf("benign touched %d, want 2 (4 attempts, threshold 2)", got)
	}
	labels := ctl.Labels()
	if len(labels) != 2 {
		t.Fatalf("labels %v", labels)
	}
}

func TestAssignmentString(t *testing.T) {
	t.Parallel()
	for a, want := range map[Assignment]string{
		AssignNone: "none", AssignControl: "control", AssignBlock: "block", AssignDelay: "delay",
	} {
		if a.String() != want {
			t.Fatalf("%d string %q", int(a), a.String())
		}
	}
}

// Integration: controller installed as a real platform gatekeeper truncates
// follows at the threshold and the delay path removes them a day later.
func TestControllerOnPlatform(t *testing.T) {
	t.Parallel()
	reg := netsim.NewRegistry()
	reg.Register(100, "dc", "USA", netsim.KindHosting)
	reg.Register(200, "res", "USA", netsim.KindResidential)
	sched := clockSched()
	plat := platformNew(reg, sched)

	ctl := New(thresholds(100, 100, 3), nil, BroadPolicy(9, 0), clock.Epoch, 24*time.Hour)
	plat.SetGatekeeper(ctl)

	mk := func(name string) *platform.Session {
		if _, err := plat.RegisterAccount(name, "pw", platform.Profile{PhotoCount: 1}, "USA"); err != nil {
			t.Fatal(err)
		}
		s, err := plat.Login(name, "pw", platform.ClientInfo{IP: reg.Allocate(100), Fingerprint: "spoof"})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	actor := mk("actor")
	var targets []platform.AccountID
	for i := 0; i < 8; i++ {
		id, _ := plat.RegisterAccount(string(rune('a'+i)), "pw", platform.Profile{}, "USA")
		targets = append(targets, id)
	}
	// Bin of actor decides block vs delay under BroadPolicy(9, 0): day 0
	// onwards is block for all bins except 9.
	blocked := 0
	for _, tgt := range targets {
		if err := actor.Do(platform.Request{Action: platform.ActionFollow, Target: tgt}).Err; err == platform.ErrBlocked {
			blocked++
		}
	}
	if ctlBin := BinOf(actor.Account()); ctlBin == 9 {
		t.Skip("actor landed in control bin")
	}
	if blocked != 5 {
		t.Fatalf("blocked %d of 8 follows with threshold 3", blocked)
	}
	if got := plat.Graph().OutDegree(actor.Account()); got != 3 {
		t.Fatalf("graph out-degree %d, want 3", got)
	}
}

// test helpers constructing real platform fixtures.
func clockSched() *clock.Scheduler { return clock.NewScheduler(clock.New()) }

func platformNew(reg *netsim.Registry, sched *clock.Scheduler) *platform.Platform {
	return platform.New(platform.DefaultConfig(), socialgraphNew(), reg, sched)
}
