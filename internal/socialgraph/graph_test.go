package socialgraph

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)

func TestCreateAccountIDsUnique(t *testing.T) {
	t.Parallel()
	g := New()
	seen := make(map[AccountID]bool)
	for i := 0; i < 100; i++ {
		id := g.CreateAccount(t0)
		if seen[id] {
			t.Fatalf("duplicate account ID %d", id)
		}
		seen[id] = true
	}
	if g.NumAccounts() != 100 {
		t.Fatalf("NumAccounts = %d", g.NumAccounts())
	}
}

func TestFollowUnfollow(t *testing.T) {
	t.Parallel()
	g := New()
	a, b := g.CreateAccount(t0), g.CreateAccount(t0)
	ok, err := g.Follow(a, b)
	if err != nil || !ok {
		t.Fatalf("Follow = %v, %v", ok, err)
	}
	if !g.Follows(a, b) || g.Follows(b, a) {
		t.Fatal("edge direction wrong")
	}
	if g.OutDegree(a) != 1 || g.InDegree(b) != 1 || g.InDegree(a) != 0 {
		t.Fatal("degrees wrong after follow")
	}
	// Duplicate follow is a no-op.
	if ok, _ := g.Follow(a, b); ok {
		t.Fatal("duplicate follow reported as new")
	}
	if g.OutDegree(a) != 1 {
		t.Fatal("duplicate follow changed degree")
	}
	ok, err = g.Unfollow(a, b)
	if err != nil || !ok {
		t.Fatalf("Unfollow = %v, %v", ok, err)
	}
	if g.Follows(a, b) || g.OutDegree(a) != 0 || g.InDegree(b) != 0 {
		t.Fatal("unfollow did not remove edge")
	}
	if ok, _ := g.Unfollow(a, b); ok {
		t.Fatal("unfollow of missing edge reported as removal")
	}
}

func TestSelfFollowRejected(t *testing.T) {
	t.Parallel()
	g := New()
	a := g.CreateAccount(t0)
	if _, err := g.Follow(a, a); !errors.Is(err, ErrSelfAction) {
		t.Fatalf("self-follow error = %v", err)
	}
}

func TestFollowMissingAccount(t *testing.T) {
	t.Parallel()
	g := New()
	a := g.CreateAccount(t0)
	if _, err := g.Follow(a, 999); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.Follow(999, a); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
}

func TestPostsAndLikes(t *testing.T) {
	t.Parallel()
	g := New()
	author, fan := g.CreateAccount(t0), g.CreateAccount(t0)
	pid, err := g.AddPost(author, t0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := g.PostAuthor(pid); got != author {
		t.Fatalf("PostAuthor = %d", got)
	}
	if ok, err := g.Like(fan, pid); err != nil || !ok {
		t.Fatalf("Like = %v, %v", ok, err)
	}
	if g.LikeCount(pid) != 1 {
		t.Fatalf("LikeCount = %d", g.LikeCount(pid))
	}
	if ok, _ := g.Like(fan, pid); ok {
		t.Fatal("duplicate like reported as new")
	}
	likers := g.Likers(pid)
	if len(likers) != 1 || likers[0] != fan {
		t.Fatalf("Likers = %v", likers)
	}
	if ok, err := g.Unlike(fan, pid); err != nil || !ok {
		t.Fatalf("Unlike = %v, %v", ok, err)
	}
	if g.LikeCount(pid) != 0 {
		t.Fatal("unlike did not remove like")
	}
}

func TestLikeMissingPost(t *testing.T) {
	t.Parallel()
	g := New()
	a := g.CreateAccount(t0)
	if _, err := g.Like(a, 42); !errors.Is(err, ErrNoPost) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.Like(999, 42); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
}

func TestComments(t *testing.T) {
	t.Parallel()
	g := New()
	author, c1 := g.CreateAccount(t0), g.CreateAccount(t0)
	pid, _ := g.AddPost(author, t0)
	if err := g.AddComment(c1, pid, "nice", t0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddComment(c1, pid, "really nice", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	cs := g.Comments(pid)
	if len(cs) != 2 || cs[0].Text != "nice" || cs[1].Author != c1 {
		t.Fatalf("Comments = %+v", cs)
	}
}

func TestEngagementRate(t *testing.T) {
	t.Parallel()
	g := New()
	author := g.CreateAccount(t0)
	var fans []AccountID
	for i := 0; i < 4; i++ {
		f := g.CreateAccount(t0)
		fans = append(fans, f)
		g.Follow(f, author)
	}
	pid, _ := g.AddPost(author, t0)
	g.Like(fans[0], pid)
	g.Like(fans[1], pid)
	g.AddComment(fans[2], pid, "wow", t0)
	// ER = (2 likes + 1 comment) / 4 followers.
	if got := g.EngagementRate(author); got != 0.75 {
		t.Fatalf("EngagementRate = %v, want 0.75", got)
	}
	if g.EngagementRate(fans[0]) != 0 {
		t.Fatal("ER for account with no followers should be 0")
	}
	if g.EngagementRate(9999) != 0 {
		t.Fatal("ER for missing account should be 0")
	}
}

func TestDeleteAccountRemovesAllTraces(t *testing.T) {
	t.Parallel()
	g := New()
	honeypot := g.CreateAccount(t0)
	other := g.CreateAccount(t0)

	// Honeypot follows other, other follows honeypot.
	g.Follow(honeypot, other)
	g.Follow(other, honeypot)
	// Honeypot likes and comments on other's post.
	theirPost, _ := g.AddPost(other, t0)
	g.Like(honeypot, theirPost)
	g.AddComment(honeypot, theirPost, "hi", t0)
	// Other likes honeypot's post.
	myPost, _ := g.AddPost(honeypot, t0)
	g.Like(other, myPost)

	if err := g.DeleteAccount(honeypot); err != nil {
		t.Fatal(err)
	}
	if g.Exists(honeypot) {
		t.Fatal("account still exists")
	}
	if g.InDegree(other) != 0 || g.OutDegree(other) != 0 {
		t.Fatalf("dangling follow edges: in=%d out=%d", g.InDegree(other), g.OutDegree(other))
	}
	if g.LikeCount(theirPost) != 0 {
		t.Fatal("deleted account's like survives")
	}
	if len(g.Comments(theirPost)) != 0 {
		t.Fatal("deleted account's comment survives")
	}
	if _, err := g.PostAuthor(myPost); !errors.Is(err, ErrNoPost) {
		t.Fatal("deleted account's post survives")
	}
	// other's internal like-index entry for myPost must be gone: deleting
	// other now must not panic or error.
	if err := g.DeleteAccount(other); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissingAccount(t *testing.T) {
	t.Parallel()
	if err := New().DeleteAccount(7); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
}

func TestFollowersFolloweesSnapshots(t *testing.T) {
	t.Parallel()
	g := New()
	hub := g.CreateAccount(t0)
	ids := make(map[AccountID]bool)
	for i := 0; i < 5; i++ {
		f := g.CreateAccount(t0)
		g.Follow(f, hub)
		g.Follow(hub, f)
		ids[f] = true
	}
	fs := g.Followers(hub)
	if len(fs) != 5 {
		t.Fatalf("Followers len %d", len(fs))
	}
	for _, f := range fs {
		if !ids[f] {
			t.Fatalf("unexpected follower %d", f)
		}
	}
	if len(g.Followees(hub)) != 5 {
		t.Fatal("Followees len wrong")
	}
	if g.Followers(999) != nil || g.Followees(999) != nil {
		t.Fatal("snapshots for missing account not nil")
	}
}

// Property: follower/followee counts stay consistent (sum of in-degrees ==
// sum of out-degrees) under arbitrary follow/unfollow sequences.
func TestDegreeConservation(t *testing.T) {
	t.Parallel()
	check := func(ops []uint16) bool {
		g := New()
		const n = 8
		var ids [n]AccountID
		for i := range ids {
			ids[i] = g.CreateAccount(t0)
		}
		for _, op := range ops {
			from := ids[int(op)%n]
			to := ids[int(op>>4)%n]
			if op&1 == 0 {
				g.Follow(from, to)
			} else {
				g.Unfollow(from, to)
			}
		}
		in, out := 0, 0
		for _, id := range ids {
			in += g.InDegree(id)
			out += g.OutDegree(id)
		}
		return in == out
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The graph must tolerate concurrent mutation from many goroutines.
func TestConcurrentSafety(t *testing.T) {
	t.Parallel()
	g := New()
	const n = 20
	ids := make([]AccountID, n)
	for i := range ids {
		ids[i] = g.CreateAccount(t0)
	}
	pid, _ := g.AddPost(ids[0], t0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a := ids[(w+i)%n]
				b := ids[(w+i+1)%n]
				g.Follow(a, b)
				g.Like(a, pid)
				g.InDegree(b)
				g.EngagementRate(b)
				g.Unfollow(a, b)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkFollow(b *testing.B) {
	g := New()
	const n = 1000
	ids := make([]AccountID, n)
	for i := range ids {
		ids[i] = g.CreateAccount(t0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Follow(ids[i%n], ids[(i+1)%n])
		g.Unfollow(ids[i%n], ids[(i+1)%n])
	}
}

func BenchmarkLike(b *testing.B) {
	g := New()
	author := g.CreateAccount(t0)
	pid, _ := g.AddPost(author, t0)
	const n = 1000
	ids := make([]AccountID, n)
	for i := range ids {
		ids[i] = g.CreateAccount(t0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Like(ids[i%n], pid)
		g.Unlike(ids[i%n], pid)
	}
}
