// Package socialgraph stores the platform's social state: accounts, follow
// edges, posts, likes, and comments.
//
// The graph is the system of record beneath internal/platform. It knows
// nothing about sessions, credentials, or abuse — it only enforces the
// structural rules of the medium (no self-follows, likes require an existing
// post, deleting an account removes everything it ever did, mirroring the
// paper's honeypot-deletion semantics: "when deleting a honeypot account,
// all actions to or from the account are eventually removed").
//
// State is lock-striped across shards keyed by a stable hash of the ID
// (see shard.go), so independent accounts and posts can be read and
// mutated concurrently; cross-shard operations take their locks in
// canonical order. Within each stripe, records are struct-of-arrays
// tables with sorted-[]uint32 adjacency (see table.go), sized for
// million-account worlds. All methods are safe for concurrent use.
package socialgraph

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// AccountID identifies an account. IDs are assigned by the graph and are
// never reused, even after deletion.
type AccountID uint64

// PostID identifies a post (the paper's "photo" / "media").
type PostID uint64

// Errors returned by graph operations.
var (
	ErrNoAccount  = errors.New("socialgraph: no such account")
	ErrNoPost     = errors.New("socialgraph: no such post")
	ErrSelfAction = errors.New("socialgraph: account cannot target itself")
)

// Comment is a single comment on a post.
type Comment struct {
	Author AccountID
	Text   string
	At     time.Time
}

// Graph is the mutable social graph.
type Graph struct {
	ashards []*gShard
	pshards []*pShard

	// idMu guards the ID counters. A leaf lock: held only to bump a
	// counter, never while acquiring a shard.
	idMu     sync.Mutex
	nextAcct AccountID
	nextPost PostID
}

// New returns an empty graph with the default stripe count.
func New() *Graph { return NewSharded(0) }

// NewSharded returns an empty graph striped across n shards; n < 1 means
// the default. Shard count only affects lock contention, never results.
func NewSharded(n int) *Graph {
	if n < 1 {
		n = defaultShards
	}
	g := &Graph{
		ashards: make([]*gShard, n),
		pshards: make([]*pShard, n),
	}
	for i := range g.ashards {
		g.ashards[i] = &gShard{}
	}
	for i := range g.pshards {
		g.pshards[i] = &pShard{}
	}
	return g
}

// Shards reports the stripe count.
func (g *Graph) Shards() int { return len(g.ashards) }

// CreateAccount adds a fresh account and returns its ID.
func (g *Graph) CreateAccount(now time.Time) AccountID {
	g.idMu.Lock()
	g.nextAcct++
	id := g.nextAcct
	g.idMu.Unlock()
	if uint64(id) > math.MaxUint32 {
		panic("socialgraph: account ID space exceeds uint32 adjacency")
	}
	s := g.ashard(id)
	s.lock()
	s.tab.add(id, now)
	s.mu.Unlock()
	return id
}

// Exists reports whether id is a live account.
func (g *Graph) Exists(id AccountID) bool {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	_, ok := s.tab.row(id)
	return ok
}

// NumAccounts returns the number of live accounts.
func (g *Graph) NumAccounts() int {
	n := 0
	for _, s := range g.ashards {
		s.rlock()
		n += s.tab.nLive
		s.mu.RUnlock()
	}
	return n
}

// DeleteAccount removes the account and every trace of it: its posts (with
// all likes and comments they received), its follow edges in both
// directions, and all likes/comments it placed on others' posts. The
// cascade can touch any account or post, so it takes every stripe — an
// acceptable cost for the rare honeypot-deletion path.
func (g *Graph) DeleteAccount(id AccountID) error {
	unlock := g.lockAll()
	defer unlock()
	home := &g.ashards[g.aidx(id)].tab
	r, ok := home.row(id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoAccount, id)
	}
	me := u32(uint64(id))
	// Sever follow edges.
	for _, f := range home.followers[r] {
		ft := &g.ashards[g.aidx(AccountID(f))].tab
		if fr, ok := ft.row(AccountID(f)); ok {
			ft.followees[fr], _ = removeSorted(ft.followees[fr], me)
		}
	}
	for _, f := range home.followees[r] {
		ft := &g.ashards[g.aidx(AccountID(f))].tab
		if fr, ok := ft.row(AccountID(f)); ok {
			ft.followers[fr], _ = removeSorted(ft.followers[fr], me)
		}
	}
	// Remove likes this account placed.
	for _, pid := range home.likes[r] {
		pt := &g.pshards[g.pidx(PostID(pid))].tab
		if pr, ok := pt.row(PostID(pid)); ok {
			pt.likes[pr], _ = removeSorted(pt.likes[pr], me)
		}
	}
	// Remove comments this account placed.
	for _, pc := range home.commented[r] {
		pt := &g.pshards[g.pidx(PostID(pc.pid))].tab
		pr, ok := pt.row(PostID(pc.pid))
		if !ok {
			continue
		}
		kept := pt.comments[pr][:0]
		for _, c := range pt.comments[pr] {
			if c.Author != id {
				kept = append(kept, c)
			}
		}
		pt.comments[pr] = kept
	}
	// Remove this account's own posts and the actions on them.
	for _, pid := range home.posts[r] {
		pt := &g.pshards[g.pidx(pid)].tab
		pr, ok := pt.row(pid)
		if !ok {
			continue
		}
		p32 := u32(uint64(pid))
		for _, liker := range pt.likes[pr] {
			lt := &g.ashards[g.aidx(AccountID(liker))].tab
			if lr, ok := lt.row(AccountID(liker)); ok {
				lt.likes[lr], _ = removeSorted(lt.likes[lr], p32)
			}
		}
		for _, c := range pt.comments[pr] {
			ct := &g.ashards[g.aidx(c.Author)].tab
			if cr, ok := ct.row(c.Author); ok {
				ct.bumpCommented(cr, p32, -1)
			}
		}
		pt.tombstone(pr)
	}
	home.tombstone(r)
	return nil
}

// Follow adds the edge from → to. Following twice is a no-op reported via
// the bool result (false when the edge already existed).
func (g *Graph) Follow(from, to AccountID) (bool, error) {
	if from == to {
		return false, ErrSelfAction
	}
	lo, hi := g.lockAccounts(from, to)
	defer unlockAccounts(lo, hi)
	ft := &g.ashards[g.aidx(from)].tab
	fr, ok := ft.row(from)
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, from)
	}
	tt := &g.ashards[g.aidx(to)].tab
	tr, ok := tt.row(to)
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, to)
	}
	fees, added := insertSorted(ft.followees[fr], u32(uint64(to)))
	if !added {
		return false, nil
	}
	ft.followees[fr] = fees
	tt.followers[tr], _ = insertSorted(tt.followers[tr], u32(uint64(from)))
	return true, nil
}

// Unfollow removes the edge from → to. Removing a missing edge is a no-op
// reported via the bool result.
func (g *Graph) Unfollow(from, to AccountID) (bool, error) {
	lo, hi := g.lockAccounts(from, to)
	defer unlockAccounts(lo, hi)
	ft := &g.ashards[g.aidx(from)].tab
	fr, ok := ft.row(from)
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, from)
	}
	tt := &g.ashards[g.aidx(to)].tab
	tr, ok := tt.row(to)
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, to)
	}
	fees, had := removeSorted(ft.followees[fr], u32(uint64(to)))
	if !had {
		return false, nil
	}
	ft.followees[fr] = fees
	tt.followers[tr], _ = removeSorted(tt.followers[tr], u32(uint64(from)))
	return true, nil
}

// Follows reports whether the edge from → to exists.
func (g *Graph) Follows(from, to AccountID) bool {
	s := g.ashard(from)
	s.rlock()
	defer s.mu.RUnlock()
	r, ok := s.tab.row(from)
	if !ok {
		return false
	}
	return containsSorted(s.tab.followees[r], u32(uint64(to)))
}

// InDegree returns the follower count (the paper's "followers").
func (g *Graph) InDegree(id AccountID) int {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	if r, ok := s.tab.row(id); ok {
		return len(s.tab.followers[r])
	}
	return 0
}

// OutDegree returns the followee count (the paper's "following").
func (g *Graph) OutDegree(id AccountID) int {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	if r, ok := s.tab.row(id); ok {
		return len(s.tab.followees[r])
	}
	return 0
}

// Followers returns a snapshot of the accounts following id, in
// ascending ID order.
func (g *Graph) Followers(id AccountID) []AccountID {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	r, ok := s.tab.row(id)
	if !ok {
		return nil
	}
	return widen[AccountID](s.tab.followers[r])
}

// Followees returns a snapshot of the accounts id follows, in ascending
// ID order.
func (g *Graph) Followees(id AccountID) []AccountID {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	r, ok := s.tab.row(id)
	if !ok {
		return nil
	}
	return widen[AccountID](s.tab.followees[r])
}

// widen copies a compressed ID set out to the public 64-bit type.
func widen[T ~uint64](s []uint32) []T {
	if len(s) == 0 {
		return nil
	}
	out := make([]T, len(s))
	for i, v := range s {
		out[i] = T(v)
	}
	return out
}

// AddPost creates a post authored by id.
func (g *Graph) AddPost(id AccountID, now time.Time) (PostID, error) {
	s := g.ashard(id)
	s.lock()
	defer s.mu.Unlock()
	r, ok := s.tab.row(id)
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoAccount, id)
	}
	g.idMu.Lock()
	g.nextPost++
	pid := g.nextPost
	g.idMu.Unlock()
	if uint64(pid) > math.MaxUint32 {
		panic("socialgraph: post ID space exceeds uint32 adjacency")
	}
	ps := g.pshard(pid)
	ps.lock()
	ps.tab.add(pid, id, now)
	ps.mu.Unlock()
	s.tab.posts[r] = append(s.tab.posts[r], pid)
	return pid, nil
}

// Posts returns the IDs of id's posts in creation order.
func (g *Graph) Posts(id AccountID) []PostID {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	r, ok := s.tab.row(id)
	if !ok {
		return nil
	}
	return append([]PostID(nil), s.tab.posts[r]...)
}

// PostAuthor returns the author of pid.
func (g *Graph) PostAuthor(pid PostID) (AccountID, error) {
	s := g.pshard(pid)
	s.rlock()
	defer s.mu.RUnlock()
	r, ok := s.tab.row(pid)
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	return AccountID(s.tab.authors[r]), nil
}

// Like records who liking pid. Liking your own post is allowed (as on the
// real platform); liking twice is a no-op reported via the bool result.
func (g *Graph) Like(who AccountID, pid PostID) (bool, error) {
	sa := g.ashard(who)
	sa.lock()
	defer sa.mu.Unlock()
	ar, ok := sa.tab.row(who)
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, who)
	}
	sp := g.pshard(pid)
	sp.lock()
	defer sp.mu.Unlock()
	pr, ok := sp.tab.row(pid)
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	likes, added := insertSorted(sp.tab.likes[pr], u32(uint64(who)))
	if !added {
		return false, nil
	}
	sp.tab.likes[pr] = likes
	sa.tab.likes[ar], _ = insertSorted(sa.tab.likes[ar], u32(uint64(pid)))
	return true, nil
}

// Unlike removes who's like from pid.
func (g *Graph) Unlike(who AccountID, pid PostID) (bool, error) {
	sa := g.ashard(who)
	sa.lock()
	defer sa.mu.Unlock()
	ar, ok := sa.tab.row(who)
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, who)
	}
	sp := g.pshard(pid)
	sp.lock()
	defer sp.mu.Unlock()
	pr, ok := sp.tab.row(pid)
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	likes, had := removeSorted(sp.tab.likes[pr], u32(uint64(who)))
	if !had {
		return false, nil
	}
	sp.tab.likes[pr] = likes
	sa.tab.likes[ar], _ = removeSorted(sa.tab.likes[ar], u32(uint64(pid)))
	return true, nil
}

// LikeCount returns the number of likes on pid.
func (g *Graph) LikeCount(pid PostID) int {
	s := g.pshard(pid)
	s.rlock()
	defer s.mu.RUnlock()
	if r, ok := s.tab.row(pid); ok {
		return len(s.tab.likes[r])
	}
	return 0
}

// Likers returns a snapshot of the accounts that liked pid, in ascending
// ID order.
func (g *Graph) Likers(pid PostID) []AccountID {
	s := g.pshard(pid)
	s.rlock()
	defer s.mu.RUnlock()
	r, ok := s.tab.row(pid)
	if !ok {
		return nil
	}
	return widen[AccountID](s.tab.likes[r])
}

// AddComment appends a comment by who to pid.
func (g *Graph) AddComment(who AccountID, pid PostID, text string, now time.Time) error {
	sa := g.ashard(who)
	sa.lock()
	defer sa.mu.Unlock()
	ar, ok := sa.tab.row(who)
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoAccount, who)
	}
	sp := g.pshard(pid)
	sp.lock()
	defer sp.mu.Unlock()
	pr, ok := sp.tab.row(pid)
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	sp.tab.comments[pr] = append(sp.tab.comments[pr], Comment{Author: who, Text: text, At: now})
	sa.tab.bumpCommented(ar, u32(uint64(pid)), 1)
	return nil
}

// Comments returns a snapshot of pid's comments in posting order.
func (g *Graph) Comments(pid PostID) []Comment {
	s := g.pshard(pid)
	s.rlock()
	defer s.mu.RUnlock()
	r, ok := s.tab.row(pid)
	if !ok {
		return nil
	}
	return append([]Comment(nil), s.tab.comments[r]...)
}

// EngagementRate computes the influencer metric the services promote (§2):
//
//	ER = (likes + comments on the user's posts) / followers
//
// It returns 0 for accounts with no followers, missing accounts, or
// accounts with no posts. The follower count and post list are
// snapshotted first, then each post is read under its own stripe — the
// serial analysis paths that call this see a quiescent graph either way.
func (g *Graph) EngagementRate(id AccountID) float64 {
	s := g.ashard(id)
	s.rlock()
	r, ok := s.tab.row(id)
	if !ok || len(s.tab.followers[r]) == 0 {
		s.mu.RUnlock()
		return 0
	}
	followers := len(s.tab.followers[r])
	posts := append([]PostID(nil), s.tab.posts[r]...)
	s.mu.RUnlock()
	total := 0
	for _, pid := range posts {
		ps := g.pshard(pid)
		ps.rlock()
		if pr, ok := ps.tab.row(pid); ok {
			total += len(ps.tab.likes[pr]) + len(ps.tab.comments[pr])
		}
		ps.mu.RUnlock()
	}
	return float64(total) / float64(followers)
}
