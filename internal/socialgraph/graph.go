// Package socialgraph stores the platform's social state: accounts, follow
// edges, posts, likes, and comments.
//
// The graph is the system of record beneath internal/platform. It knows
// nothing about sessions, credentials, or abuse — it only enforces the
// structural rules of the medium (no self-follows, likes require an existing
// post, deleting an account removes everything it ever did, mirroring the
// paper's honeypot-deletion semantics: "when deleting a honeypot account,
// all actions to or from the account are eventually removed").
//
// All methods are safe for concurrent use.
package socialgraph

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// AccountID identifies an account. IDs are assigned by the graph and are
// never reused, even after deletion.
type AccountID uint64

// PostID identifies a post (the paper's "photo" / "media").
type PostID uint64

// Errors returned by graph operations.
var (
	ErrNoAccount  = errors.New("socialgraph: no such account")
	ErrNoPost     = errors.New("socialgraph: no such post")
	ErrSelfAction = errors.New("socialgraph: account cannot target itself")
)

// Comment is a single comment on a post.
type Comment struct {
	Author AccountID
	Text   string
	At     time.Time
}

type post struct {
	id       PostID
	author   AccountID
	created  time.Time
	likes    map[AccountID]struct{}
	comments []Comment
}

type account struct {
	followers map[AccountID]struct{} // accounts following this one
	followees map[AccountID]struct{} // accounts this one follows
	posts     []PostID
	likes     map[PostID]struct{} // posts this account has liked
	commented map[PostID]int      // posts this account commented on → count
	created   time.Time
}

// Graph is the mutable social graph.
type Graph struct {
	mu       sync.RWMutex
	accounts map[AccountID]*account
	posts    map[PostID]*post
	nextAcct AccountID
	nextPost PostID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		accounts: make(map[AccountID]*account),
		posts:    make(map[PostID]*post),
	}
}

// CreateAccount adds a fresh account and returns its ID.
func (g *Graph) CreateAccount(now time.Time) AccountID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextAcct++
	id := g.nextAcct
	g.accounts[id] = &account{
		followers: make(map[AccountID]struct{}),
		followees: make(map[AccountID]struct{}),
		likes:     make(map[PostID]struct{}),
		commented: make(map[PostID]int),
		created:   now,
	}
	return id
}

// Exists reports whether id is a live account.
func (g *Graph) Exists(id AccountID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.accounts[id]
	return ok
}

// NumAccounts returns the number of live accounts.
func (g *Graph) NumAccounts() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.accounts)
}

// DeleteAccount removes the account and every trace of it: its posts (with
// all likes and comments they received), its follow edges in both
// directions, and all likes/comments it placed on others' posts.
func (g *Graph) DeleteAccount(id AccountID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	a, ok := g.accounts[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoAccount, id)
	}
	// Sever follow edges.
	for f := range a.followers {
		delete(g.accounts[f].followees, id)
	}
	for f := range a.followees {
		delete(g.accounts[f].followers, id)
	}
	// Remove likes this account placed.
	for pid := range a.likes {
		if p, ok := g.posts[pid]; ok {
			delete(p.likes, id)
		}
	}
	// Remove comments this account placed.
	for pid := range a.commented {
		p, ok := g.posts[pid]
		if !ok {
			continue
		}
		kept := p.comments[:0]
		for _, c := range p.comments {
			if c.Author != id {
				kept = append(kept, c)
			}
		}
		p.comments = kept
	}
	// Remove this account's own posts and the actions on them.
	for _, pid := range a.posts {
		p := g.posts[pid]
		for liker := range p.likes {
			if la, ok := g.accounts[liker]; ok {
				delete(la.likes, pid)
			}
		}
		for _, c := range p.comments {
			if ca, ok := g.accounts[c.Author]; ok {
				if ca.commented[pid]--; ca.commented[pid] <= 0 {
					delete(ca.commented, pid)
				}
			}
		}
		delete(g.posts, pid)
	}
	delete(g.accounts, id)
	return nil
}

// Follow adds the edge from → to. Following twice is a no-op reported via
// the bool result (false when the edge already existed).
func (g *Graph) Follow(from, to AccountID) (bool, error) {
	if from == to {
		return false, ErrSelfAction
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	fa, ok := g.accounts[from]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, from)
	}
	ta, ok := g.accounts[to]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, to)
	}
	if _, dup := fa.followees[to]; dup {
		return false, nil
	}
	fa.followees[to] = struct{}{}
	ta.followers[from] = struct{}{}
	return true, nil
}

// Unfollow removes the edge from → to. Removing a missing edge is a no-op
// reported via the bool result.
func (g *Graph) Unfollow(from, to AccountID) (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	fa, ok := g.accounts[from]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, from)
	}
	ta, ok := g.accounts[to]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, to)
	}
	if _, had := fa.followees[to]; !had {
		return false, nil
	}
	delete(fa.followees, to)
	delete(ta.followers, from)
	return true, nil
}

// Follows reports whether the edge from → to exists.
func (g *Graph) Follows(from, to AccountID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	fa, ok := g.accounts[from]
	if !ok {
		return false
	}
	_, yes := fa.followees[to]
	return yes
}

// InDegree returns the follower count (the paper's "followers").
func (g *Graph) InDegree(id AccountID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if a, ok := g.accounts[id]; ok {
		return len(a.followers)
	}
	return 0
}

// OutDegree returns the followee count (the paper's "following").
func (g *Graph) OutDegree(id AccountID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if a, ok := g.accounts[id]; ok {
		return len(a.followees)
	}
	return 0
}

// Followers returns a snapshot of the accounts following id.
func (g *Graph) Followers(id AccountID) []AccountID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	a, ok := g.accounts[id]
	if !ok {
		return nil
	}
	out := make([]AccountID, 0, len(a.followers))
	for f := range a.followers {
		out = append(out, f)
	}
	return out
}

// Followees returns a snapshot of the accounts id follows.
func (g *Graph) Followees(id AccountID) []AccountID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	a, ok := g.accounts[id]
	if !ok {
		return nil
	}
	out := make([]AccountID, 0, len(a.followees))
	for f := range a.followees {
		out = append(out, f)
	}
	return out
}

// AddPost creates a post authored by id.
func (g *Graph) AddPost(id AccountID, now time.Time) (PostID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	a, ok := g.accounts[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoAccount, id)
	}
	g.nextPost++
	pid := g.nextPost
	g.posts[pid] = &post{id: pid, author: id, created: now, likes: make(map[AccountID]struct{})}
	a.posts = append(a.posts, pid)
	return pid, nil
}

// Posts returns the IDs of id's posts in creation order.
func (g *Graph) Posts(id AccountID) []PostID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	a, ok := g.accounts[id]
	if !ok {
		return nil
	}
	return append([]PostID(nil), a.posts...)
}

// PostAuthor returns the author of pid.
func (g *Graph) PostAuthor(pid PostID) (AccountID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.posts[pid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	return p.author, nil
}

// Like records who liking pid. Liking your own post is allowed (as on the
// real platform); liking twice is a no-op reported via the bool result.
func (g *Graph) Like(who AccountID, pid PostID) (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	a, ok := g.accounts[who]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, who)
	}
	p, ok := g.posts[pid]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	if _, dup := p.likes[who]; dup {
		return false, nil
	}
	p.likes[who] = struct{}{}
	a.likes[pid] = struct{}{}
	return true, nil
}

// Unlike removes who's like from pid.
func (g *Graph) Unlike(who AccountID, pid PostID) (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	a, ok := g.accounts[who]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, who)
	}
	p, ok := g.posts[pid]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	if _, had := p.likes[who]; !had {
		return false, nil
	}
	delete(p.likes, who)
	delete(a.likes, pid)
	return true, nil
}

// LikeCount returns the number of likes on pid.
func (g *Graph) LikeCount(pid PostID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if p, ok := g.posts[pid]; ok {
		return len(p.likes)
	}
	return 0
}

// Likers returns a snapshot of the accounts that liked pid.
func (g *Graph) Likers(pid PostID) []AccountID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.posts[pid]
	if !ok {
		return nil
	}
	out := make([]AccountID, 0, len(p.likes))
	for a := range p.likes {
		out = append(out, a)
	}
	return out
}

// AddComment appends a comment by who to pid.
func (g *Graph) AddComment(who AccountID, pid PostID, text string, now time.Time) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	a, ok := g.accounts[who]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoAccount, who)
	}
	p, ok := g.posts[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	p.comments = append(p.comments, Comment{Author: who, Text: text, At: now})
	a.commented[pid]++
	return nil
}

// Comments returns a snapshot of pid's comments in posting order.
func (g *Graph) Comments(pid PostID) []Comment {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.posts[pid]
	if !ok {
		return nil
	}
	return append([]Comment(nil), p.comments...)
}

// EngagementRate computes the influencer metric the services promote (§2):
//
//	ER = (likes + comments on the user's posts) / followers
//
// It returns 0 for accounts with no followers, missing accounts, or
// accounts with no posts.
func (g *Graph) EngagementRate(id AccountID) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	a, ok := g.accounts[id]
	if !ok || len(a.followers) == 0 {
		return 0
	}
	total := 0
	for _, pid := range a.posts {
		p := g.posts[pid]
		total += len(p.likes) + len(p.comments)
	}
	return float64(total) / float64(len(a.followers))
}
