// Package socialgraph stores the platform's social state: accounts, follow
// edges, posts, likes, and comments.
//
// The graph is the system of record beneath internal/platform. It knows
// nothing about sessions, credentials, or abuse — it only enforces the
// structural rules of the medium (no self-follows, likes require an existing
// post, deleting an account removes everything it ever did, mirroring the
// paper's honeypot-deletion semantics: "when deleting a honeypot account,
// all actions to or from the account are eventually removed").
//
// State is lock-striped across shards keyed by a stable hash of the ID
// (see shard.go), so independent accounts and posts can be read and
// mutated concurrently; cross-shard operations take their locks in
// canonical order. All methods are safe for concurrent use.
package socialgraph

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// AccountID identifies an account. IDs are assigned by the graph and are
// never reused, even after deletion.
type AccountID uint64

// PostID identifies a post (the paper's "photo" / "media").
type PostID uint64

// Errors returned by graph operations.
var (
	ErrNoAccount  = errors.New("socialgraph: no such account")
	ErrNoPost     = errors.New("socialgraph: no such post")
	ErrSelfAction = errors.New("socialgraph: account cannot target itself")
)

// Comment is a single comment on a post.
type Comment struct {
	Author AccountID
	Text   string
	At     time.Time
}

type post struct {
	id       PostID
	author   AccountID
	created  time.Time
	likes    map[AccountID]struct{}
	comments []Comment
}

type account struct {
	followers map[AccountID]struct{} // accounts following this one
	followees map[AccountID]struct{} // accounts this one follows
	posts     []PostID
	likes     map[PostID]struct{} // posts this account has liked
	commented map[PostID]int      // posts this account commented on → count
	created   time.Time
}

// Graph is the mutable social graph.
type Graph struct {
	ashards []*gShard
	pshards []*pShard

	// idMu guards the ID counters. A leaf lock: held only to bump a
	// counter, never while acquiring a shard.
	idMu     sync.Mutex
	nextAcct AccountID
	nextPost PostID
}

// New returns an empty graph with the default stripe count.
func New() *Graph { return NewSharded(0) }

// NewSharded returns an empty graph striped across n shards; n < 1 means
// the default. Shard count only affects lock contention, never results.
func NewSharded(n int) *Graph {
	if n < 1 {
		n = defaultShards
	}
	g := &Graph{
		ashards: make([]*gShard, n),
		pshards: make([]*pShard, n),
	}
	for i := range g.ashards {
		g.ashards[i] = &gShard{accounts: make(map[AccountID]*account)}
	}
	for i := range g.pshards {
		g.pshards[i] = &pShard{posts: make(map[PostID]*post)}
	}
	return g
}

// Shards reports the stripe count.
func (g *Graph) Shards() int { return len(g.ashards) }

// CreateAccount adds a fresh account and returns its ID.
func (g *Graph) CreateAccount(now time.Time) AccountID {
	g.idMu.Lock()
	g.nextAcct++
	id := g.nextAcct
	g.idMu.Unlock()
	s := g.ashard(id)
	s.lock()
	s.accounts[id] = &account{
		followers: make(map[AccountID]struct{}),
		followees: make(map[AccountID]struct{}),
		likes:     make(map[PostID]struct{}),
		commented: make(map[PostID]int),
		created:   now,
	}
	s.mu.Unlock()
	return id
}

// Exists reports whether id is a live account.
func (g *Graph) Exists(id AccountID) bool {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	_, ok := s.accounts[id]
	return ok
}

// NumAccounts returns the number of live accounts.
func (g *Graph) NumAccounts() int {
	n := 0
	for _, s := range g.ashards {
		s.rlock()
		n += len(s.accounts)
		s.mu.RUnlock()
	}
	return n
}

// DeleteAccount removes the account and every trace of it: its posts (with
// all likes and comments they received), its follow edges in both
// directions, and all likes/comments it placed on others' posts. The
// cascade can touch any account or post, so it takes every stripe — an
// acceptable cost for the rare honeypot-deletion path.
func (g *Graph) DeleteAccount(id AccountID) error {
	unlock := g.lockAll()
	defer unlock()
	home := g.ashards[g.aidx(id)]
	a, ok := home.accounts[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoAccount, id)
	}
	// Sever follow edges.
	for f := range a.followers {
		delete(g.ashards[g.aidx(f)].accounts[f].followees, id)
	}
	for f := range a.followees {
		delete(g.ashards[g.aidx(f)].accounts[f].followers, id)
	}
	// Remove likes this account placed.
	for pid := range a.likes {
		if p, ok := g.pshards[g.pidx(pid)].posts[pid]; ok {
			delete(p.likes, id)
		}
	}
	// Remove comments this account placed.
	for pid := range a.commented {
		p, ok := g.pshards[g.pidx(pid)].posts[pid]
		if !ok {
			continue
		}
		kept := p.comments[:0]
		for _, c := range p.comments {
			if c.Author != id {
				kept = append(kept, c)
			}
		}
		p.comments = kept
	}
	// Remove this account's own posts and the actions on them.
	for _, pid := range a.posts {
		ps := g.pshards[g.pidx(pid)]
		p := ps.posts[pid]
		for liker := range p.likes {
			if la, ok := g.ashards[g.aidx(liker)].accounts[liker]; ok {
				delete(la.likes, pid)
			}
		}
		for _, c := range p.comments {
			if ca, ok := g.ashards[g.aidx(c.Author)].accounts[c.Author]; ok {
				if ca.commented[pid]--; ca.commented[pid] <= 0 {
					delete(ca.commented, pid)
				}
			}
		}
		delete(ps.posts, pid)
	}
	delete(home.accounts, id)
	return nil
}

// Follow adds the edge from → to. Following twice is a no-op reported via
// the bool result (false when the edge already existed).
func (g *Graph) Follow(from, to AccountID) (bool, error) {
	if from == to {
		return false, ErrSelfAction
	}
	lo, hi := g.lockAccounts(from, to)
	defer unlockAccounts(lo, hi)
	fa, ok := g.ashards[g.aidx(from)].accounts[from]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, from)
	}
	ta, ok := g.ashards[g.aidx(to)].accounts[to]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, to)
	}
	if _, dup := fa.followees[to]; dup {
		return false, nil
	}
	fa.followees[to] = struct{}{}
	ta.followers[from] = struct{}{}
	return true, nil
}

// Unfollow removes the edge from → to. Removing a missing edge is a no-op
// reported via the bool result.
func (g *Graph) Unfollow(from, to AccountID) (bool, error) {
	lo, hi := g.lockAccounts(from, to)
	defer unlockAccounts(lo, hi)
	fa, ok := g.ashards[g.aidx(from)].accounts[from]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, from)
	}
	ta, ok := g.ashards[g.aidx(to)].accounts[to]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, to)
	}
	if _, had := fa.followees[to]; !had {
		return false, nil
	}
	delete(fa.followees, to)
	delete(ta.followers, from)
	return true, nil
}

// Follows reports whether the edge from → to exists.
func (g *Graph) Follows(from, to AccountID) bool {
	s := g.ashard(from)
	s.rlock()
	defer s.mu.RUnlock()
	fa, ok := s.accounts[from]
	if !ok {
		return false
	}
	_, yes := fa.followees[to]
	return yes
}

// InDegree returns the follower count (the paper's "followers").
func (g *Graph) InDegree(id AccountID) int {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	if a, ok := s.accounts[id]; ok {
		return len(a.followers)
	}
	return 0
}

// OutDegree returns the followee count (the paper's "following").
func (g *Graph) OutDegree(id AccountID) int {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	if a, ok := s.accounts[id]; ok {
		return len(a.followees)
	}
	return 0
}

// Followers returns a snapshot of the accounts following id.
func (g *Graph) Followers(id AccountID) []AccountID {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	a, ok := s.accounts[id]
	if !ok {
		return nil
	}
	out := make([]AccountID, 0, len(a.followers))
	for f := range a.followers {
		out = append(out, f)
	}
	return out
}

// Followees returns a snapshot of the accounts id follows.
func (g *Graph) Followees(id AccountID) []AccountID {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	a, ok := s.accounts[id]
	if !ok {
		return nil
	}
	out := make([]AccountID, 0, len(a.followees))
	for f := range a.followees {
		out = append(out, f)
	}
	return out
}

// AddPost creates a post authored by id.
func (g *Graph) AddPost(id AccountID, now time.Time) (PostID, error) {
	s := g.ashard(id)
	s.lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoAccount, id)
	}
	g.idMu.Lock()
	g.nextPost++
	pid := g.nextPost
	g.idMu.Unlock()
	ps := g.pshard(pid)
	ps.lock()
	ps.posts[pid] = &post{id: pid, author: id, created: now, likes: make(map[AccountID]struct{})}
	ps.mu.Unlock()
	a.posts = append(a.posts, pid)
	return pid, nil
}

// Posts returns the IDs of id's posts in creation order.
func (g *Graph) Posts(id AccountID) []PostID {
	s := g.ashard(id)
	s.rlock()
	defer s.mu.RUnlock()
	a, ok := s.accounts[id]
	if !ok {
		return nil
	}
	return append([]PostID(nil), a.posts...)
}

// PostAuthor returns the author of pid.
func (g *Graph) PostAuthor(pid PostID) (AccountID, error) {
	s := g.pshard(pid)
	s.rlock()
	defer s.mu.RUnlock()
	p, ok := s.posts[pid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	return p.author, nil
}

// Like records who liking pid. Liking your own post is allowed (as on the
// real platform); liking twice is a no-op reported via the bool result.
func (g *Graph) Like(who AccountID, pid PostID) (bool, error) {
	sa := g.ashard(who)
	sa.lock()
	defer sa.mu.Unlock()
	a, ok := sa.accounts[who]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, who)
	}
	sp := g.pshard(pid)
	sp.lock()
	defer sp.mu.Unlock()
	p, ok := sp.posts[pid]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	if _, dup := p.likes[who]; dup {
		return false, nil
	}
	p.likes[who] = struct{}{}
	a.likes[pid] = struct{}{}
	return true, nil
}

// Unlike removes who's like from pid.
func (g *Graph) Unlike(who AccountID, pid PostID) (bool, error) {
	sa := g.ashard(who)
	sa.lock()
	defer sa.mu.Unlock()
	a, ok := sa.accounts[who]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoAccount, who)
	}
	sp := g.pshard(pid)
	sp.lock()
	defer sp.mu.Unlock()
	p, ok := sp.posts[pid]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	if _, had := p.likes[who]; !had {
		return false, nil
	}
	delete(p.likes, who)
	delete(a.likes, pid)
	return true, nil
}

// LikeCount returns the number of likes on pid.
func (g *Graph) LikeCount(pid PostID) int {
	s := g.pshard(pid)
	s.rlock()
	defer s.mu.RUnlock()
	if p, ok := s.posts[pid]; ok {
		return len(p.likes)
	}
	return 0
}

// Likers returns a snapshot of the accounts that liked pid.
func (g *Graph) Likers(pid PostID) []AccountID {
	s := g.pshard(pid)
	s.rlock()
	defer s.mu.RUnlock()
	p, ok := s.posts[pid]
	if !ok {
		return nil
	}
	out := make([]AccountID, 0, len(p.likes))
	for a := range p.likes {
		out = append(out, a)
	}
	return out
}

// AddComment appends a comment by who to pid.
func (g *Graph) AddComment(who AccountID, pid PostID, text string, now time.Time) error {
	sa := g.ashard(who)
	sa.lock()
	defer sa.mu.Unlock()
	a, ok := sa.accounts[who]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoAccount, who)
	}
	sp := g.pshard(pid)
	sp.lock()
	defer sp.mu.Unlock()
	p, ok := sp.posts[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoPost, pid)
	}
	p.comments = append(p.comments, Comment{Author: who, Text: text, At: now})
	a.commented[pid]++
	return nil
}

// Comments returns a snapshot of pid's comments in posting order.
func (g *Graph) Comments(pid PostID) []Comment {
	s := g.pshard(pid)
	s.rlock()
	defer s.mu.RUnlock()
	p, ok := s.posts[pid]
	if !ok {
		return nil
	}
	return append([]Comment(nil), p.comments...)
}

// EngagementRate computes the influencer metric the services promote (§2):
//
//	ER = (likes + comments on the user's posts) / followers
//
// It returns 0 for accounts with no followers, missing accounts, or
// accounts with no posts. The follower count and post list are
// snapshotted first, then each post is read under its own stripe — the
// serial analysis paths that call this see a quiescent graph either way.
func (g *Graph) EngagementRate(id AccountID) float64 {
	s := g.ashard(id)
	s.rlock()
	a, ok := s.accounts[id]
	if !ok || len(a.followers) == 0 {
		s.mu.RUnlock()
		return 0
	}
	followers := len(a.followers)
	posts := append([]PostID(nil), a.posts...)
	s.mu.RUnlock()
	total := 0
	for _, pid := range posts {
		ps := g.pshard(pid)
		ps.rlock()
		if p, ok := ps.posts[pid]; ok {
			total += len(p.likes) + len(p.comments)
		}
		ps.mu.RUnlock()
	}
	return float64(total) / float64(followers)
}
