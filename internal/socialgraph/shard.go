package socialgraph

import (
	"fmt"
	"sync"

	"footsteps/internal/telemetry"
)

// The graph's state is partitioned into lock-striped shards: account
// records (follow adjacency, own-post lists, like/comment back-indexes)
// by a stable hash of AccountID, and post records (likes, comments) by
// the same hash of PostID. Shard count is a pure concurrency knob —
// the hash is a fixed function of the ID, lookups are exact-key, and no
// shard-map iteration order can reach observable output — so every
// result is identical at every shard count.
//
// Lock-ordering rule (deadlock freedom): account shards before post
// shards; within a family, ascending shard-index order. The ID-counter
// mutex is a leaf — held only to bump a counter, never while acquiring
// another lock. Platform locks rank strictly before all graph locks;
// see docs/ARCHITECTURE.md.

// defaultShards is the stripe count used by New.
const defaultShards = 8

// shardHash is a SplitMix64-style finalizer: a stable, well-mixed pure
// function of the 64-bit key, so densely assigned IDs don't stripe into
// adjacent shards in lockstep.
func shardHash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// gShard is one stripe of account records, laid out struct-of-arrays
// (see table.go).
type gShard struct {
	mu  sync.RWMutex
	tab acctTable

	// contention counts acquisitions that found the stripe already held
	// (a failed TryLock/TryRLock before blocking). nil = telemetry off.
	contention *telemetry.Counter
}

func (s *gShard) lock() {
	if s.mu.TryLock() {
		return
	}
	s.contention.Inc()
	s.mu.Lock()
}

func (s *gShard) rlock() {
	if s.mu.TryRLock() {
		return
	}
	s.contention.Inc()
	s.mu.RLock()
}

// pShard is one stripe of post records, laid out struct-of-arrays
// (see table.go).
type pShard struct {
	mu         sync.RWMutex
	tab        postTable
	contention *telemetry.Counter
}

func (s *pShard) lock() {
	if s.mu.TryLock() {
		return
	}
	s.contention.Inc()
	s.mu.Lock()
}

func (s *pShard) rlock() {
	if s.mu.TryRLock() {
		return
	}
	s.contention.Inc()
	s.mu.RLock()
}

// aidx returns the index of the shard owning the account.
func (g *Graph) aidx(id AccountID) int {
	return int(shardHash(uint64(id)) % uint64(len(g.ashards)))
}

// pidx returns the index of the shard owning the post.
func (g *Graph) pidx(pid PostID) int {
	return int(shardHash(uint64(pid)) % uint64(len(g.pshards)))
}

// ashard returns the stripe owning the account.
func (g *Graph) ashard(id AccountID) *gShard { return g.ashards[g.aidx(id)] }

// pshard returns the stripe owning the post.
func (g *Graph) pshard(pid PostID) *pShard { return g.pshards[g.pidx(pid)] }

// lockAccounts write-locks the shards owning both accounts in canonical
// (ascending shard-index) order, taking one lock when they collide (hi
// is then nil). Pair with unlockAccounts. Returning the shards instead
// of an unlock closure keeps the per-edge mutation path (Follow,
// Unfollow) allocation-free.
func (g *Graph) lockAccounts(x, y AccountID) (lo, hi *gShard) {
	ix, iy := g.aidx(x), g.aidx(y)
	if ix == iy {
		s := g.ashards[ix]
		s.lock()
		return s, nil
	}
	if ix > iy {
		ix, iy = iy, ix
	}
	lo, hi = g.ashards[ix], g.ashards[iy]
	lo.lock()
	hi.lock()
	return lo, hi
}

// unlockAccounts releases locks taken by lockAccounts, in reverse order.
func unlockAccounts(lo, hi *gShard) {
	if hi != nil {
		hi.mu.Unlock()
	}
	lo.mu.Unlock()
}

// lockAll write-locks every shard in canonical order — account family
// then post family, ascending index within each. Reserved for the rare
// global cascade (DeleteAccount).
func (g *Graph) lockAll() func() {
	for _, s := range g.ashards {
		s.lock()
	}
	for _, s := range g.pshards {
		s.lock()
	}
	return func() {
		for i := len(g.pshards) - 1; i >= 0; i-- {
			g.pshards[i].mu.Unlock()
		}
		for i := len(g.ashards) - 1; i >= 0; i-- {
			g.ashards[i].mu.Unlock()
		}
	}
}

// WireTelemetry registers a contention counter per lock stripe
// (socialgraph.shard.NN.contention, socialgraph.postshard.NN.contention)
// in reg. Call during construction; nil is a no-op.
func (g *Graph) WireTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for i, s := range g.ashards {
		s.contention = reg.Counter(fmt.Sprintf("socialgraph.shard.%02d.contention", i))
	}
	for i, s := range g.pshards {
		s.contention = reg.Counter(fmt.Sprintf("socialgraph.postshard.%02d.contention", i))
	}
}
