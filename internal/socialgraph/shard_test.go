package socialgraph

import (
	"sync"
	"testing"
	"time"

	"footsteps/internal/rng"
	"footsteps/internal/telemetry"
)

// TestShardHashStable pins the stripe hash: shard assignment is part of
// the determinism story (a changed hash re-stripes state, which must
// never change results, but a *drifting* hash would make contention
// numbers incomparable across runs of the same build).
func TestShardHashStable(t *testing.T) {
	t.Parallel()
	got := map[uint64]uint64{
		1:       shardHash(1),
		2:       shardHash(2),
		1 << 40: shardHash(1 << 40),
	}
	for k, v := range got {
		if v == k || v == 0 {
			t.Errorf("shardHash(%d) = %d: not mixed", k, v)
		}
	}
	if shardHash(1) == shardHash(2) {
		t.Error("adjacent IDs collapsed to one hash")
	}
}

// TestCrossShardFollowUnfollowProperty is the lock-ordering gauntlet:
// many goroutines hammer follow/unfollow on pairs chosen to cross shard
// boundaries in both directions — including symmetric pairs (a→b while
// b→a), the classic deadlock shape for two-lock operations. Run under
// -race this checks memory safety; the watchdog converts a lock-order
// deadlock into a test failure instead of a suite timeout; and the final
// sweep asserts conservation: every in-edge is someone's out-edge and
// the total counts balance.
func TestCrossShardFollowUnfollowProperty(t *testing.T) {
	t.Parallel()
	const (
		accounts    = 64
		workers     = 8
		opsPerActor = 3000
	)
	g := NewSharded(16)
	ids := make([]AccountID, accounts)
	for i := range ids {
		ids[i] = g.CreateAccount(time.Unix(0, 0))
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 7)
			me := ids[w%len(ids)]
			for k := 0; k < opsPerActor; k++ {
				// Mostly symmetric churn between two fixed accounts per
				// worker pair (maximal lock-order stress), plus random
				// pairs for coverage.
				var from, to AccountID
				switch k % 4 {
				case 0:
					from, to = me, ids[(w+1)%len(ids)]
				case 1:
					from, to = ids[(w+1)%len(ids)], me
				default:
					from, to = ids[r.Intn(len(ids))], ids[r.Intn(len(ids))]
					if from == to {
						continue
					}
				}
				if r.Bool(0.5) {
					g.Follow(from, to)
				} else {
					g.Unfollow(from, to)
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("follow/unfollow hammer did not finish in 60s: likely shard-lock deadlock")
	}

	// Conservation sweep: Σ in-degree == Σ out-degree == edge count, and
	// every edge is consistent from both endpoints.
	in, out := 0, 0
	for _, id := range ids {
		in += g.InDegree(id)
		out += g.OutDegree(id)
		for _, f := range g.Followees(id) {
			if !g.Follows(id, f) {
				t.Fatalf("edge %d→%d in followee list but Follows says no", id, f)
			}
			found := false
			for _, b := range g.Followers(f) {
				if b == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d→%d missing from %d's follower set", id, f, f)
			}
		}
	}
	if in != out {
		t.Fatalf("edge conservation broken: Σin=%d Σout=%d", in, out)
	}
	if in == 0 {
		t.Fatal("no edges survived the churn; property check is vacuous")
	}
}

// TestShardCountResultEquivalence drives an identical deterministic
// workload against shards=1 and shards=16 graphs and asserts every
// observable query agrees — the graph-level form of the stream-bytes
// invariant.
func TestShardCountResultEquivalence(t *testing.T) {
	t.Parallel()
	build := func(shards int) *Graph {
		g := NewSharded(shards)
		r := rng.New(42)
		ids := make([]AccountID, 40)
		var pids []PostID
		for i := range ids {
			ids[i] = g.CreateAccount(time.Unix(int64(i), 0))
		}
		for _, id := range ids {
			if r.Bool(0.7) {
				pid, err := g.AddPost(id, time.Unix(0, 0))
				if err != nil {
					t.Fatal(err)
				}
				pids = append(pids, pid)
			}
		}
		for k := 0; k < 2000; k++ {
			a, b := ids[r.Intn(len(ids))], ids[r.Intn(len(ids))]
			switch r.Intn(5) {
			case 0:
				g.Follow(a, b)
			case 1:
				g.Unfollow(a, b)
			case 2:
				if len(pids) > 0 {
					g.Like(a, pids[r.Intn(len(pids))])
				}
			case 3:
				if len(pids) > 0 {
					g.Unlike(a, pids[r.Intn(len(pids))])
				}
			default:
				if len(pids) > 0 {
					g.AddComment(a, pids[r.Intn(len(pids))], "x", time.Unix(0, 0))
				}
			}
		}
		// One deletion cascade to cover lockAll.
		if err := g.DeleteAccount(ids[3]); err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1, g16 := build(1), build(16)
	if a, b := g1.NumAccounts(), g16.NumAccounts(); a != b {
		t.Fatalf("NumAccounts: shards=1 %d != shards=16 %d", a, b)
	}
	for id := AccountID(1); id <= 40; id++ {
		if a, b := g1.Exists(id), g16.Exists(id); a != b {
			t.Fatalf("Exists(%d): %v != %v", id, a, b)
		}
		if a, b := g1.InDegree(id), g16.InDegree(id); a != b {
			t.Fatalf("InDegree(%d): %d != %d", id, a, b)
		}
		if a, b := g1.OutDegree(id), g16.OutDegree(id); a != b {
			t.Fatalf("OutDegree(%d): %d != %d", id, a, b)
		}
		if a, b := g1.EngagementRate(id), g16.EngagementRate(id); a != b {
			t.Fatalf("EngagementRate(%d): %v != %v", id, a, b)
		}
	}
	for pid := PostID(1); pid <= 40; pid++ {
		if a, b := g1.LikeCount(pid), g16.LikeCount(pid); a != b {
			t.Fatalf("LikeCount(%d): %d != %d", pid, a, b)
		}
		if a, b := len(g1.Comments(pid)), len(g16.Comments(pid)); a != b {
			t.Fatalf("Comments(%d): %d != %d", pid, a, b)
		}
	}
}

// TestGraphWireTelemetry checks the per-stripe contention counters
// register under the documented names and count under contention.
func TestGraphWireTelemetry(t *testing.T) {
	t.Parallel()
	g := NewSharded(2)
	reg := telemetry.NewRegistry()
	g.WireTelemetry(reg)
	snap := reg.Snapshot().Counters
	for _, name := range []string{
		"socialgraph.shard.00.contention", "socialgraph.shard.01.contention",
		"socialgraph.postshard.00.contention", "socialgraph.postshard.01.contention",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("counter %q not registered", name)
		}
	}
}
