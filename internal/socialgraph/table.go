package socialgraph

import (
	"math"
	"sort"
	"time"

	"footsteps/internal/intern"
)

// Struct-of-arrays storage for the graph's two record families. Each
// lock stripe owns an acctTable / postTable: a dense-row allocator
// (intern.Dense) maps the sparse ID space onto rows of parallel slices.
// Follow adjacency, like sets, and comment tallies are sorted []uint32
// chunks instead of map[ID]struct{} sets — 4 bytes per edge endpoint
// and zero per-set header cost beyond one slice, where each map cost
// ~48 B empty and ~50 B per element. IDs fit uint32 because the graph
// mints them sequentially from 1 and the minting paths enforce the
// bound (see CreateAccount / AddPost).
//
// Rows are never recycled: DeleteAccount tombstones the row (live
// false, adjacency released) so the ID can keep resolving to "gone"
// forever, matching the deleted-map semantics it replaced. Sorted-set
// mutation is O(degree) memmove — fine for the honeypot-scale studies
// that run with GraphWrites on; the population-scale business sim
// keeps GraphWrites off and never mutates adjacency.

// u32 narrows a sequentially minted ID, whose bound the minting path
// already enforces.
func u32(x uint64) uint32 {
	if x > math.MaxUint32 {
		panic("socialgraph: ID exceeds uint32 range")
	}
	return uint32(x)
}

// insertSorted adds v to sorted set s, reporting false (and the
// unchanged set) when already present.
func insertSorted(s []uint32, v uint32) ([]uint32, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// removeSorted deletes v from sorted set s, reporting false when absent.
func removeSorted(s []uint32, v uint32) ([]uint32, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i >= len(s) || s[i] != v {
		return s, false
	}
	return append(s[:i], s[i+1:]...), true
}

// containsSorted reports whether sorted set s holds v.
func containsSorted(s []uint32, v uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// pidCount is one per-account comment tally: how many comments the
// account has on post pid. Kept sorted by pid.
type pidCount struct {
	pid uint32
	n   int32
}

// acctTable is one stripe's account rows.
type acctTable struct {
	ids   intern.Dense // AccountID ↔ row
	live  []bool
	nLive int

	created   []time.Time
	followers [][]uint32 // sorted AccountIDs following this row
	followees [][]uint32 // sorted AccountIDs this row follows
	posts     [][]PostID // creation order
	likes     [][]uint32 // sorted PostIDs this row liked
	commented [][]pidCount
}

func (t *acctTable) row(id AccountID) (uint32, bool) {
	r, ok := t.ids.Lookup(uint64(id))
	return r, ok && t.live[r]
}

func (t *acctTable) add(id AccountID, now time.Time) uint32 {
	r := t.ids.Index(uint64(id))
	if int(r) != len(t.live) {
		panic("socialgraph: account created twice")
	}
	t.live = append(t.live, true)
	t.nLive++
	t.created = append(t.created, now)
	t.followers = append(t.followers, nil)
	t.followees = append(t.followees, nil)
	t.posts = append(t.posts, nil)
	t.likes = append(t.likes, nil)
	t.commented = append(t.commented, nil)
	return r
}

// tombstone marks row r deleted and releases its per-row collections.
func (t *acctTable) tombstone(r uint32) {
	t.live[r] = false
	t.nLive--
	t.followers[r] = nil
	t.followees[r] = nil
	t.posts[r] = nil
	t.likes[r] = nil
	t.commented[r] = nil
}

func (t *acctTable) reset() {
	t.ids.Restore(nil)
	t.live = t.live[:0]
	t.nLive = 0
	t.created = t.created[:0]
	t.followers = t.followers[:0]
	t.followees = t.followees[:0]
	t.posts = t.posts[:0]
	t.likes = t.likes[:0]
	t.commented = t.commented[:0]
}

// bumpCommented adds delta to row r's tally for pid, dropping the entry
// when it reaches zero.
func (t *acctTable) bumpCommented(r uint32, pid uint32, delta int32) {
	cs := t.commented[r]
	i := sort.Search(len(cs), func(i int) bool { return cs[i].pid >= pid })
	if i < len(cs) && cs[i].pid == pid {
		cs[i].n += delta
		if cs[i].n <= 0 {
			t.commented[r] = append(cs[:i], cs[i+1:]...)
		}
		return
	}
	if delta <= 0 {
		return
	}
	cs = append(cs, pidCount{})
	copy(cs[i+1:], cs[i:])
	cs[i] = pidCount{pid: pid, n: delta}
	t.commented[r] = cs
}

// postTable is one stripe's post rows.
type postTable struct {
	ids  intern.Dense // PostID ↔ row
	live []bool

	authors  []uint32
	created  []time.Time
	likes    [][]uint32 // sorted AccountIDs that liked this row
	comments [][]Comment
}

func (t *postTable) row(pid PostID) (uint32, bool) {
	r, ok := t.ids.Lookup(uint64(pid))
	return r, ok && t.live[r]
}

func (t *postTable) add(pid PostID, author AccountID, now time.Time) uint32 {
	r := t.ids.Index(uint64(pid))
	if int(r) != len(t.live) {
		panic("socialgraph: post created twice")
	}
	t.live = append(t.live, true)
	t.authors = append(t.authors, u32(uint64(author)))
	t.created = append(t.created, now)
	t.likes = append(t.likes, nil)
	t.comments = append(t.comments, nil)
	return r
}

func (t *postTable) tombstone(r uint32) {
	t.live[r] = false
	t.authors[r] = 0
	t.likes[r] = nil
	t.comments[r] = nil
}

func (t *postTable) reset() {
	t.ids.Restore(nil)
	t.live = t.live[:0]
	t.authors = t.authors[:0]
	t.created = t.created[:0]
	t.likes = t.likes[:0]
	t.comments = t.comments[:0]
}
