package socialgraph

import "testing"

// Steady-state allocation budgets for the sorted-set adjacency
// primitives behind every follow/unfollow/like mutation. "Steady
// state" means the set's backing array already has capacity for the
// element being inserted — the regime a warm adjacency chunk runs in,
// where insert is a memmove, not a grow. Raise only with a profile —
// see docs/PERFORMANCE.md.
const (
	allocBudgetSortedPair = 0 // insertSorted+removeSorted with spare capacity
	allocBudgetContains   = 0 // containsSorted (binary search, read-only)
)

func TestAllocBudgetSortedSet(t *testing.T) {
	// 256 resident elements plus headroom for the churned one.
	s := make([]uint32, 0, 257)
	for v := uint32(0); v < 256; v++ {
		s, _ = insertSorted(s, v*2)
	}
	const churn = 99 // odd, so it lands mid-set between residents
	got := testing.AllocsPerRun(100, func() {
		var ok bool
		if s, ok = insertSorted(s, churn); !ok {
			t.Fatal("insertSorted: element already present")
		}
		if s, ok = removeSorted(s, churn); !ok {
			t.Fatal("removeSorted: element missing")
		}
	})
	if got > allocBudgetSortedPair {
		t.Errorf("insertSorted+removeSorted pair allocates %.1f/op with spare capacity, budget %d — the compact-adjacency mutation path regressed",
			got, allocBudgetSortedPair)
	}

	got = testing.AllocsPerRun(100, func() {
		if !containsSorted(s, 128) {
			t.Fatal("containsSorted: resident element not found")
		}
		if containsSorted(s, churn) {
			t.Fatal("containsSorted: churned element still present")
		}
	})
	if got > allocBudgetContains {
		t.Errorf("containsSorted allocates %.1f/op, budget %d", got, allocBudgetContains)
	}
}
