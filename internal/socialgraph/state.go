package socialgraph

import (
	"sort"
	"time"
)

// Snapshot/restore support (see internal/persistence). The serialized
// form is shard-independent — accounts and posts are flattened and
// sorted by ID — and stores only one side of each symmetric relation:
// follower sets, per-account like sets, and per-account comment counts
// are derived on restore from followee sets, post like sets, and post
// comment lists respectively. Both operations run on the quiescent
// single timeline (day boundaries), never under concurrent mutation.

// State is the complete mutable state of a Graph.
type State struct {
	NextAcct AccountID
	NextPost PostID
	Accounts []AccountState
	Posts    []PostState
}

// AccountState is one account, flattened.
type AccountState struct {
	ID        AccountID
	Created   time.Time
	Followees []AccountID // sorted
	Posts     []PostID    // creation order
}

// PostState is one post, flattened.
type PostState struct {
	ID       PostID
	Author   AccountID
	Created  time.Time
	Likes    []AccountID // sorted
	Comments []Comment   // posting order
}

// SnapshotState captures the graph's complete mutable state.
func (g *Graph) SnapshotState() *State {
	g.idMu.Lock()
	st := &State{NextAcct: g.nextAcct, NextPost: g.nextPost}
	g.idMu.Unlock()
	for _, s := range g.ashards {
		s.rlock()
		for id, a := range s.accounts {
			as := AccountState{
				ID:      id,
				Created: a.created,
				Posts:   append([]PostID(nil), a.posts...),
			}
			for f := range a.followees {
				as.Followees = append(as.Followees, f)
			}
			sort.Slice(as.Followees, func(i, j int) bool { return as.Followees[i] < as.Followees[j] })
			st.Accounts = append(st.Accounts, as)
		}
		s.mu.RUnlock()
	}
	sort.Slice(st.Accounts, func(i, j int) bool { return st.Accounts[i].ID < st.Accounts[j].ID })
	for _, s := range g.pshards {
		s.rlock()
		for id, p := range s.posts {
			ps := PostState{
				ID:       id,
				Author:   p.author,
				Created:  p.created,
				Comments: append([]Comment(nil), p.comments...),
			}
			for who := range p.likes {
				ps.Likes = append(ps.Likes, who)
			}
			sort.Slice(ps.Likes, func(i, j int) bool { return ps.Likes[i] < ps.Likes[j] })
			st.Posts = append(st.Posts, ps)
		}
		s.mu.RUnlock()
	}
	sort.Slice(st.Posts, func(i, j int) bool { return st.Posts[i].ID < st.Posts[j].ID })
	return st
}

// RestoreState overwrites the graph's state with a snapshot, rebuilding
// the derived sides of each symmetric relation.
func (g *Graph) RestoreState(st *State) {
	g.idMu.Lock()
	g.nextAcct = st.NextAcct
	g.nextPost = st.NextPost
	g.idMu.Unlock()
	for _, s := range g.ashards {
		s.lock()
		clear(s.accounts)
		s.mu.Unlock()
	}
	for _, s := range g.pshards {
		s.lock()
		clear(s.posts)
		s.mu.Unlock()
	}
	for i := range st.Accounts {
		as := &st.Accounts[i]
		a := &account{
			followers: make(map[AccountID]struct{}),
			followees: make(map[AccountID]struct{}, len(as.Followees)),
			posts:     append([]PostID(nil), as.Posts...),
			likes:     make(map[PostID]struct{}),
			commented: make(map[PostID]int),
			created:   as.Created,
		}
		for _, f := range as.Followees {
			a.followees[f] = struct{}{}
		}
		s := g.ashard(as.ID)
		s.lock()
		s.accounts[as.ID] = a
		s.mu.Unlock()
	}
	// Derive follower sets now that every account exists.
	for i := range st.Accounts {
		as := &st.Accounts[i]
		for _, f := range as.Followees {
			s := g.ashard(f)
			s.lock()
			if ta, ok := s.accounts[f]; ok {
				ta.followers[as.ID] = struct{}{}
			}
			s.mu.Unlock()
		}
	}
	for i := range st.Posts {
		ps := &st.Posts[i]
		p := &post{
			id:       ps.ID,
			author:   ps.Author,
			created:  ps.Created,
			likes:    make(map[AccountID]struct{}, len(ps.Likes)),
			comments: append([]Comment(nil), ps.Comments...),
		}
		for _, who := range ps.Likes {
			p.likes[who] = struct{}{}
		}
		s := g.pshard(ps.ID)
		s.lock()
		s.posts[ps.ID] = p
		s.mu.Unlock()
		// Derive the per-account like sets and comment counts.
		for _, who := range ps.Likes {
			as := g.ashard(who)
			as.lock()
			if a, ok := as.accounts[who]; ok {
				a.likes[ps.ID] = struct{}{}
			}
			as.mu.Unlock()
		}
		for _, c := range ps.Comments {
			as := g.ashard(c.Author)
			as.lock()
			if a, ok := as.accounts[c.Author]; ok {
				a.commented[ps.ID]++
			}
			as.mu.Unlock()
		}
	}
}
