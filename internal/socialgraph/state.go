package socialgraph

import (
	"sort"
	"time"
)

// Snapshot/restore support (see internal/persistence). The serialized
// form is shard-independent — accounts and posts are flattened and
// sorted by ID — and stores only one side of each symmetric relation:
// follower sets, per-account like sets, and per-account comment counts
// are derived on restore from followee sets, post like sets, and post
// comment lists respectively. The in-memory adjacency is kept sorted,
// so flattening is a straight widening copy. Both operations run on the
// quiescent single timeline (day boundaries), never under concurrent
// mutation.

// State is the complete mutable state of a Graph.
type State struct {
	NextAcct AccountID
	NextPost PostID
	Accounts []AccountState
	Posts    []PostState
}

// AccountState is one account, flattened.
type AccountState struct {
	ID        AccountID
	Created   time.Time
	Followees []AccountID // sorted
	Posts     []PostID    // creation order
}

// PostState is one post, flattened.
type PostState struct {
	ID       PostID
	Author   AccountID
	Created  time.Time
	Likes    []AccountID // sorted
	Comments []Comment   // posting order
}

// SnapshotState captures the graph's complete mutable state.
func (g *Graph) SnapshotState() *State {
	g.idMu.Lock()
	st := &State{NextAcct: g.nextAcct, NextPost: g.nextPost}
	g.idMu.Unlock()
	for _, s := range g.ashards {
		s.rlock()
		for r := uint32(0); int(r) < len(s.tab.live); r++ {
			if !s.tab.live[r] {
				continue
			}
			st.Accounts = append(st.Accounts, AccountState{
				ID:        AccountID(s.tab.ids.ID(r)),
				Created:   s.tab.created[r],
				Followees: widen[AccountID](s.tab.followees[r]),
				Posts:     append([]PostID(nil), s.tab.posts[r]...),
			})
		}
		s.mu.RUnlock()
	}
	sort.Slice(st.Accounts, func(i, j int) bool { return st.Accounts[i].ID < st.Accounts[j].ID })
	for _, s := range g.pshards {
		s.rlock()
		for r := uint32(0); int(r) < len(s.tab.live); r++ {
			if !s.tab.live[r] {
				continue
			}
			st.Posts = append(st.Posts, PostState{
				ID:       PostID(s.tab.ids.ID(r)),
				Author:   AccountID(s.tab.authors[r]),
				Created:  s.tab.created[r],
				Likes:    widen[AccountID](s.tab.likes[r]),
				Comments: append([]Comment(nil), s.tab.comments[r]...),
			})
		}
		s.mu.RUnlock()
	}
	sort.Slice(st.Posts, func(i, j int) bool { return st.Posts[i].ID < st.Posts[j].ID })
	return st
}

// RestoreState overwrites the graph's state with a snapshot, rebuilding
// the derived sides of each symmetric relation. Derived sets come out
// sorted for free: accounts and posts are visited in ascending-ID
// order, so each append lands in order.
func (g *Graph) RestoreState(st *State) {
	g.idMu.Lock()
	g.nextAcct = st.NextAcct
	g.nextPost = st.NextPost
	g.idMu.Unlock()
	for _, s := range g.ashards {
		s.lock()
		s.tab.reset()
		s.mu.Unlock()
	}
	for _, s := range g.pshards {
		s.lock()
		s.tab.reset()
		s.mu.Unlock()
	}
	for i := range st.Accounts {
		as := &st.Accounts[i]
		s := g.ashard(as.ID)
		s.lock()
		r := s.tab.add(as.ID, as.Created)
		if n := len(as.Followees); n > 0 {
			fees := make([]uint32, n)
			for j, f := range as.Followees {
				fees[j] = u32(uint64(f))
			}
			s.tab.followees[r] = fees
		}
		if len(as.Posts) > 0 {
			s.tab.posts[r] = append([]PostID(nil), as.Posts...)
		}
		s.mu.Unlock()
	}
	// Derive follower sets now that every account exists.
	for i := range st.Accounts {
		as := &st.Accounts[i]
		for _, f := range as.Followees {
			s := g.ashard(f)
			s.lock()
			if r, ok := s.tab.row(f); ok {
				s.tab.followers[r] = append(s.tab.followers[r], u32(uint64(as.ID)))
			}
			s.mu.Unlock()
		}
	}
	for i := range st.Posts {
		ps := &st.Posts[i]
		s := g.pshard(ps.ID)
		s.lock()
		r := s.tab.add(ps.ID, ps.Author, ps.Created)
		if n := len(ps.Likes); n > 0 {
			likes := make([]uint32, n)
			for j, who := range ps.Likes {
				likes[j] = u32(uint64(who))
			}
			s.tab.likes[r] = likes
		}
		if len(ps.Comments) > 0 {
			s.tab.comments[r] = append([]Comment(nil), ps.Comments...)
		}
		s.mu.Unlock()
		// Derive the per-account like sets and comment counts.
		pid := u32(uint64(ps.ID))
		for _, who := range ps.Likes {
			as := g.ashard(who)
			as.lock()
			if r, ok := as.tab.row(who); ok {
				as.tab.likes[r] = append(as.tab.likes[r], pid)
			}
			as.mu.Unlock()
		}
		for _, c := range ps.Comments {
			as := g.ashard(c.Author)
			as.lock()
			if r, ok := as.tab.row(c.Author); ok {
				as.tab.bumpCommented(r, pid, 1)
			}
			as.mu.Unlock()
		}
	}
}
