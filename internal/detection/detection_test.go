package detection

import (
	"testing"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
)

func ev(actor, target platform.AccountID, typ platform.ActionType, asn netsim.ASN, client string) platform.Event {
	return platform.Event{
		Time: clock.Epoch, Type: typ, Actor: actor, Target: target,
		ASN: asn, Client: client, Outcome: platform.OutcomeAllowed,
	}
}

func TestClassifierTrainAndClassify(t *testing.T) {
	t.Parallel()
	c := NewClassifier()
	enrolled := map[platform.AccountID]string{10: "Boostgram", 11: "Insta*", 12: "Insta*"}
	events := []platform.Event{
		ev(10, 100, platform.ActionFollow, 1002, "mobile-spoof-boostgram"),
		ev(11, 101, platform.ActionLike, 1001, "mobile-spoof-instastar"),
		ev(12, 102, platform.ActionLike, 1001, "mobile-spoof-instastar"),
		// The honeypot's own setup traffic must not be learned.
		ev(10, 100, platform.ActionFollow, 2001, "mobile-official"),
		// Unenrolled accounts teach nothing.
		ev(99, 100, platform.ActionFollow, 1002, "mobile-spoof-boostgram"),
	}
	c.TrainFromHoneypots(events, func(id platform.AccountID) string { return enrolled[id] })

	if label, ok := c.Classify(ev(55, 1, platform.ActionFollow, 1002, "mobile-spoof-boostgram")); !ok || label != "Boostgram" {
		t.Fatalf("classify = %q, %v", label, ok)
	}
	// The two franchises collapse into one label.
	if label, _ := c.Classify(ev(56, 1, platform.ActionLike, 1001, "mobile-spoof-instastar")); label != "Insta*" {
		t.Fatalf("franchise label %q", label)
	}
	// Organic traffic stays unclassified.
	if _, ok := c.Classify(ev(57, 1, platform.ActionLike, 2001, "mobile-official")); ok {
		t.Fatal("organic traffic classified as AAS")
	}
	// Same fingerprint from an unknown ASN (proxy evasion) IS still
	// attributed — only the ASN-keyed thresholds lose reach (§6.4).
	if label, ok := c.Classify(ev(58, 1, platform.ActionLike, 3001, "mobile-spoof-boostgram")); !ok || label != "Boostgram" {
		t.Fatal("proxy-evaded traffic must stay attributable by fingerprint")
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "Boostgram" || labels[1] != "Insta*" {
		t.Fatalf("labels %v", labels)
	}
	if asns := c.ASNsFor("Boostgram"); len(asns) != 1 || asns[0] != 1002 {
		t.Fatalf("ASNsFor %v", asns)
	}
	if sigs := c.Signatures("Insta*"); len(sigs) != 1 || sigs[0].Fingerprint != "mobile-spoof-instastar" {
		t.Fatalf("signatures %v", sigs)
	}
	if s := (Signature{Fingerprint: "x", ASN: 7}).String(); s != "x@AS7" {
		t.Fatalf("signature string %q", s)
	}
}

func TestCalibratorMixedASN(t *testing.T) {
	t.Parallel()
	// ASN 100 carries both benign and AAS traffic → threshold is the 99th
	// percentile of benign per-account daily counts.
	c := NewClassifier()
	c.Learn(Signature{Fingerprint: "spoof", ASN: 100}, "Svc")
	cal := NewCalibrator(c.Classify)

	// 100 benign accounts do 1..100 likes in a day; one AAS account does
	// 10,000.
	for i := 1; i <= 100; i++ {
		for k := 0; k < i; k++ {
			cal.Observe(ev(platform.AccountID(i), 1, platform.ActionLike, 100, "mobile-official"))
		}
	}
	for k := 0; k < 10000; k++ {
		cal.Observe(ev(5000, 1, platform.ActionLike, 100, "spoof"))
	}
	cal.EndDay()
	th := cal.Compute()

	v, ok := th.Lookup(100, platform.ActionLike)
	if !ok {
		t.Fatal("no threshold for mixed ASN")
	}
	// 99th percentile of 1..100 ≈ 99; the AAS's 10,000 must not drag it up.
	if v < 95 || v > 101 {
		t.Fatalf("mixed-ASN threshold %v, want ≈99", v)
	}
}

func TestCalibratorDedicatedASN(t *testing.T) {
	t.Parallel()
	c := NewClassifier()
	c.Learn(Signature{Fingerprint: "spoof", ASN: 200}, "Svc")
	cal := NewCalibrator(c.Classify)
	// Only AAS traffic on ASN 200: accounts doing 100, 200, 300, 400 likes.
	for i, n := range []int{100, 200, 300, 400} {
		for k := 0; k < n; k++ {
			cal.Observe(ev(platform.AccountID(i+1), 1, platform.ActionLike, 200, "spoof"))
		}
	}
	cal.EndDay()
	th := cal.Compute()
	v, ok := th.Lookup(200, platform.ActionLike)
	if !ok {
		t.Fatal("no threshold for dedicated ASN")
	}
	// 25th percentile of {100,200,300,400} = 175 (type-7 interpolation).
	if v < 150 || v > 200 {
		t.Fatalf("dedicated-ASN threshold %v, want ≈175", v)
	}
}

func TestCalibratorIgnoresIrrelevantEvents(t *testing.T) {
	t.Parallel()
	c := NewClassifier()
	c.Learn(Signature{Fingerprint: "spoof", ASN: 300}, "Svc")
	cal := NewCalibrator(c.Classify)
	blocked := ev(1, 2, platform.ActionLike, 300, "spoof")
	blocked.Outcome = platform.OutcomeBlocked
	cal.Observe(blocked)
	cal.Observe(ev(1, 2, platform.ActionComment, 300, "spoof")) // not a policed type
	login := ev(1, 0, platform.ActionLogin, 300, "spoof")
	cal.Observe(login)
	cal.EndDay()
	th := cal.Compute()
	if _, ok := th.Lookup(300, platform.ActionLike); ok {
		t.Fatal("threshold computed from ignored events")
	}
}

func TestThresholdLookupMissingASN(t *testing.T) {
	t.Parallel()
	th := Thresholds{PerASN: map[netsim.ASN]map[platform.ActionType]float64{}}
	if _, ok := th.Lookup(999, platform.ActionLike); ok {
		t.Fatal("lookup on unknown ASN succeeded")
	}
}

func trackedEvent(actor, target platform.AccountID, typ platform.ActionType, at time.Time, post platform.PostID) platform.Event {
	return platform.Event{
		Time: at, Type: typ, Actor: actor, Target: target, Post: post,
		ASN: 1002, Client: "spoof", Outcome: platform.OutcomeAllowed,
	}
}

func newTestTracker() *Tracker {
	c := NewClassifier()
	c.Learn(Signature{Fingerprint: "spoof", ASN: 1002}, "Svc")
	return NewTracker(c, clock.Epoch)
}

func TestTrackerDailyActivityAndLongTerm(t *testing.T) {
	t.Parallel()
	tr := newTestTracker()
	day := func(d int) time.Time { return clock.Epoch.Add(time.Duration(d) * clock.Day) }

	// Account 1: active on days 0..9 (long-term by any definition).
	for d := 0; d < 10; d++ {
		for k := 0; k < 5; k++ {
			tr.Observe(trackedEvent(1, 100, platform.ActionFollow, day(d), 0))
		}
	}
	// Account 2: days 0, 1, then 5 (max run 2).
	for _, d := range []int{0, 1, 5} {
		tr.Observe(trackedEvent(2, 100, platform.ActionFollow, day(d), 0))
	}
	svc := tr.Service("Svc")
	if svc == nil || svc.Customers() < 2 {
		t.Fatalf("service %+v", svc)
	}
	a1 := svc.ByAccount[1]
	if a1.MaxConsecutiveDays() != 10 {
		t.Fatalf("a1 run %d", a1.MaxConsecutiveDays())
	}
	if a1.TotalOutbound(platform.ActionFollow) != 50 {
		t.Fatalf("a1 follows %d", a1.TotalOutbound(platform.ActionFollow))
	}
	if a1.OutboundOnDay(3, platform.ActionFollow) != 5 {
		t.Fatalf("a1 day-3 follows %d", a1.OutboundOnDay(3, platform.ActionFollow))
	}
	a2 := svc.ByAccount[2]
	if a2.MaxConsecutiveDays() != 2 {
		t.Fatalf("a2 run %d", a2.MaxConsecutiveDays())
	}
	if svc.Actions[platform.ActionFollow] != 53 {
		t.Fatalf("service follows %d", svc.Actions[platform.ActionFollow])
	}
	if !svc.Targets[100] {
		t.Fatal("target not recorded")
	}
}

func TestTrackerInboundLikesAndPeakHourly(t *testing.T) {
	t.Parallel()
	tr := newTestTracker()
	at := clock.Epoch
	// 200 likes to post 7 of account 9 within one hour (paid-burst shape),
	// then 50 likes to post 8 spread over many hours.
	for i := 0; i < 200; i++ {
		tr.Observe(trackedEvent(platform.AccountID(1000+i), 9, platform.ActionLike, at.Add(time.Duration(i)*10*time.Second), 7))
	}
	for i := 0; i < 50; i++ {
		tr.Observe(trackedEvent(platform.AccountID(2000+i), 9, platform.ActionLike, at.Add(time.Duration(i)*2*time.Hour), 8))
	}
	a := tr.Service("Svc").ByAccount[9]
	if a.PostLikeCount(7) != 200 || a.PostLikeCount(8) != 50 {
		t.Fatalf("post likes %d, %d", a.PostLikeCount(7), a.PostLikeCount(8))
	}
	if a.PeakHourlyLike < 161 {
		t.Fatalf("peak hourly %d, want >160 for the burst", a.PeakHourlyLike)
	}
	if got := a.MedianLikesPerPost(); got != 125 {
		t.Fatalf("median likes/post %v, want 125", got)
	}
	if a.PostsWithAtLeast(100) != 1 || a.PostsWithAtLeast(10) != 2 {
		t.Fatal("PostsWithAtLeast wrong")
	}
	if a.TotalInbound(platform.ActionLike) != 250 {
		t.Fatalf("total inbound %d", a.TotalInbound(platform.ActionLike))
	}
}

func TestTrackerIgnoresUnclassified(t *testing.T) {
	t.Parallel()
	tr := newTestTracker()
	e := trackedEvent(1, 2, platform.ActionLike, clock.Epoch, 1)
	e.Client = "mobile-official"
	tr.Observe(e)
	if len(tr.Labels()) != 0 {
		t.Fatal("unclassified event tracked")
	}
	// Blocked events are not activity.
	e2 := trackedEvent(1, 2, platform.ActionLike, clock.Epoch, 1)
	e2.Outcome = platform.OutcomeBlocked
	tr.Observe(e2)
	if len(tr.Labels()) != 0 {
		t.Fatal("blocked event tracked")
	}
}

func TestTrackerLoginMarksEnrollment(t *testing.T) {
	t.Parallel()
	tr := newTestTracker()
	login := trackedEvent(42, 0, platform.ActionLogin, clock.Epoch, 0)
	tr.Observe(login)
	svc := tr.Service("Svc")
	if svc == nil || svc.Customers() != 1 {
		t.Fatal("login did not register customer")
	}
	if svc.ByAccount[42].MaxConsecutiveDays() != 0 {
		t.Fatal("login counted as activity")
	}
}

func TestAccountActivityEmpty(t *testing.T) {
	t.Parallel()
	a := &AccountActivity{}
	if a.MaxConsecutiveDays() != 0 || a.MedianLikesPerPost() != 0 {
		t.Fatal("empty activity stats wrong")
	}
}
