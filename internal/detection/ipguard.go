package detection

import (
	"net/netip"

	"footsteps/internal/platform"
	"footsteps/internal/telemetry"
)

// IPVolumeGuard models the platform's pre-existing abuse defenses: a
// per-IP daily action budget that throttles "high volumes of abuse
// originating from a small number of IP addresses" (§5).
//
// This is the system that had already neutered Followersgratis before the
// study began — its four-address footprint cannot push meaningful volume
// through a per-IP cap — while the other services' wider address pools
// (and, post-evasion, their proxy networks) sail under it.
//
// The guard implements platform.Gatekeeper. Chain it in front of an
// intervention controller with Chain.
type IPVolumeGuard struct {
	// DailyPerIP caps allowed actions per source address per day.
	DailyPerIP int

	// counts is a value map: one 16-byte window inline per address,
	// instead of a pointer per entry that cost a separate heap object
	// and a cache miss on every check.
	counts map[netip.Addr]ipWindow

	// Throttled counts actions rejected, by client fingerprint — the
	// platform's view of who the guard is squeezing.
	Throttled map[string]int

	telChecked *telemetry.Counter
	telBlocked *telemetry.Counter
}

type ipWindow struct {
	day int64
	n   int
}

// NewIPVolumeGuard returns a guard with the given per-IP daily budget.
func NewIPVolumeGuard(dailyPerIP int) *IPVolumeGuard {
	return &IPVolumeGuard{
		DailyPerIP: dailyPerIP,
		counts:     make(map[netip.Addr]ipWindow),
		Throttled:  make(map[string]int),
	}
}

// WireTelemetry registers the guard's checked/blocked counters on reg.
// Telemetry is a pure observer; a nil reg leaves the guard untouched.
func (g *IPVolumeGuard) WireTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	g.telChecked = reg.Counter("detection.ipguard.checked")
	g.telBlocked = reg.Counter("detection.ipguard.blocked")
}

// Check implements platform.Gatekeeper: actions beyond an address's daily
// budget are blocked synchronously. Logins always pass — the guard polices
// action volume, not presence.
func (g *IPVolumeGuard) Check(req platform.Event) platform.Verdict {
	if req.Type == platform.ActionLogin || g.DailyPerIP <= 0 {
		return platform.Allow
	}
	g.telChecked.Inc()
	day := req.Time.Unix() / 86400
	w, ok := g.counts[req.IP]
	if !ok || w.day != day {
		w = ipWindow{day: day}
	}
	if w.n >= g.DailyPerIP {
		// Only reachable for an existing same-day window (a fresh or
		// rolled window starts at zero, and DailyPerIP > 0 here), so the
		// stored entry is already current — no write-back needed.
		g.Throttled[req.Client]++
		g.telBlocked.Inc()
		return platform.Verdict{Kind: platform.VerdictBlock}
	}
	w.n++
	g.counts[req.IP] = w
	return platform.Allow
}

// TotalThrottled sums rejections across fingerprints.
func (g *IPVolumeGuard) TotalThrottled() int {
	n := 0
	for _, v := range g.Throttled {
		n += v
	}
	return n
}

// Chain composes gatekeepers: the first non-allow verdict wins. Use it to
// stack the pre-existing IP guard under an experiment's controller.
func Chain(gks ...platform.Gatekeeper) platform.Gatekeeper {
	return platform.GatekeeperFunc(func(req platform.Event) platform.Verdict {
		for _, gk := range gks {
			if gk == nil {
				continue
			}
			if v := gk.Check(req); v.Kind != platform.VerdictAllow {
				return v
			}
		}
		return platform.Allow
	})
}
