package detection

import (
	"testing"

	"footsteps/internal/platform"
)

// allocBudgetAppendActiveDays pins the per-account active-days query the
// report generators run thousands of times: with a warm caller buffer it
// must not allocate. Raise only with a profile — see docs/PERFORMANCE.md.
const allocBudgetAppendActiveDays = 0

// allocBudgetSameDayTally pins the Observe hot path's day-vector bump:
// once a day's DayCounts entry exists, further tallies on that day are
// in-place increments of the compact vector — no map lookups, no
// per-day heap objects.
const allocBudgetSameDayTally = 0

func TestAllocBudgetAppendActiveDays(t *testing.T) {
	a := &AccountActivity{}
	for d := 0; d < 30; d += 2 {
		a.AddOutbound(d, platform.ActionLike, 1)
	}
	for d := 1; d < 30; d += 3 {
		a.AddInbound(d, platform.ActionFollow, 1)
	}
	buf := a.AppendActiveDays(nil)
	if len(buf) == 0 {
		t.Fatal("no active days; measurement is vacuous")
	}
	got := testing.AllocsPerRun(100, func() {
		buf = a.AppendActiveDays(buf[:0])
	})
	if got > allocBudgetAppendActiveDays {
		t.Errorf("detection.AccountActivity.AppendActiveDays allocates %.1f/op into a warm buffer, budget %d",
			got, allocBudgetAppendActiveDays)
	}
}

func TestAllocBudgetSameDayTally(t *testing.T) {
	a := &AccountActivity{}
	a.AddOutbound(12, platform.ActionLike, 1) // day entry now exists
	a.AddInbound(12, platform.ActionFollow, 1)
	got := testing.AllocsPerRun(100, func() {
		a.AddOutbound(12, platform.ActionLike, 1)
		a.AddOutbound(12, platform.ActionComment, 1)
		a.AddInbound(12, platform.ActionFollow, 1)
	})
	if got > allocBudgetSameDayTally {
		t.Errorf("same-day tally allocates %.1f/op on a warm day vector, budget %d — the bumpDay hot path regressed",
			got, allocBudgetSameDayTally)
	}
}
