package detection

import (
	"testing"

	"footsteps/internal/platform"
)

// allocBudgetAppendActiveDays pins the per-account active-days query the
// report generators run thousands of times: with a warm caller buffer it
// must not allocate. Raise only with a profile — see docs/PERFORMANCE.md.
const allocBudgetAppendActiveDays = 0

func TestAllocBudgetAppendActiveDays(t *testing.T) {
	a := &AccountActivity{
		Daily:        map[int]map[platform.ActionType]int{},
		InboundDaily: map[int]map[platform.ActionType]int{},
	}
	for d := 0; d < 30; d += 2 {
		a.Daily[d] = map[platform.ActionType]int{platform.ActionLike: 1}
	}
	for d := 1; d < 30; d += 3 {
		a.InboundDaily[d] = map[platform.ActionType]int{platform.ActionFollow: 1}
	}
	buf := a.AppendActiveDays(nil)
	if len(buf) == 0 {
		t.Fatal("no active days; measurement is vacuous")
	}
	got := testing.AllocsPerRun(100, func() {
		buf = a.AppendActiveDays(buf[:0])
	})
	if got > allocBudgetAppendActiveDays {
		t.Errorf("detection.AccountActivity.AppendActiveDays allocates %.1f/op into a warm buffer, budget %d",
			got, allocBudgetAppendActiveDays)
	}
}
