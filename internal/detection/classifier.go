// Package detection implements the platform side of the study: attribution
// of actions to AASs from request signals, customer identification over a
// measurement window, and the per-ASN activity thresholds that drive the
// intervention experiments (§5–§6.2).
package detection

import (
	"fmt"
	"sort"

	"footsteps/internal/netsim"
	"footsteps/internal/platform"
)

// Signature is the signal pair attribution keys on: the spoofed client
// fingerprint and the originating ASN. These are exactly the "commonly
// tracked information about the client" plus internal signals of §5.
type Signature struct {
	Fingerprint string
	ASN         netsim.ASN
}

// Classifier attributes platform requests to AAS labels. It is trained
// from honeypot ground truth: every event on an enrolled honeypot account
// is attributable to the linked service, so the signatures seen there
// label the service's entire traffic.
//
// Attribution keys on the client fingerprint: a service that moves its
// traffic to new address space (the §6.4 proxy evasion) remains
// *attributable* — the platform still sees whose traffic it is — but the
// ASN-keyed intervention thresholds no longer reach it, exactly the
// asymmetry the paper's epilogue reports. The full (fingerprint, ASN)
// signatures are retained for the Table 7 footprint analysis.
//
// Note the Insta* effect: Instalex and Instazood share infrastructure, so
// both honeypot sets teach the same signature and the classifier can only
// produce the merged label — the simulation reproduces the paper's
// inability to separate the franchises.
type Classifier struct {
	rules map[Signature]string
	byFP  map[string]string
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{rules: make(map[Signature]string), byFP: make(map[string]string)}
}

// Learn associates a signature with an AAS label.
func (c *Classifier) Learn(sig Signature, label string) {
	c.rules[sig] = label
	c.byFP[sig.Fingerprint] = label
}

// TrainFromHoneypots ingests events observed on honeypot accounts.
// enrolledWith maps a honeypot account to the label of the service holding
// its credentials ("" = not enrolled). Only automation-shaped traffic is
// learned: events whose actor is an enrolled honeypot and whose
// fingerprint differs from the stock mobile client.
func (c *Classifier) TrainFromHoneypots(events []platform.Event, enrolledWith func(platform.AccountID) string) {
	for _, ev := range events {
		if ev.Type == platform.ActionLogin {
			continue
		}
		label := enrolledWith(ev.Actor)
		if label == "" || ev.Client == "mobile-official" || ev.Enforcement {
			continue
		}
		c.Learn(Signature{Fingerprint: ev.Client, ASN: ev.ASN}, label)
	}
}

// Classify attributes one event. The second result is false for traffic
// matching no learned fingerprint.
func (c *Classifier) Classify(ev platform.Event) (string, bool) {
	label, ok := c.byFP[ev.Client]
	return label, ok
}

// Labels returns the distinct service labels the classifier knows, sorted.
func (c *Classifier) Labels() []string {
	seen := make(map[string]bool)
	for _, l := range c.byFP {
		seen[l] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Signatures returns the learned signatures for a label, sorted for
// deterministic output.
func (c *Classifier) Signatures(label string) []Signature {
	var out []Signature
	for sig, l := range c.rules {
		if l == label {
			out = append(out, sig)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fingerprint != out[j].Fingerprint {
			return out[i].Fingerprint < out[j].Fingerprint
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// ASNsFor returns the distinct ASNs a label's traffic originates from —
// the Table 7 "ASN location" column feeds from this.
func (c *Classifier) ASNsFor(label string) []netsim.ASN {
	seen := make(map[netsim.ASN]bool)
	for sig, l := range c.rules {
		if l == label {
			seen[sig.ASN] = true
		}
	}
	out := make([]netsim.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s Signature) String() string {
	return fmt.Sprintf("%s@AS%d", s.Fingerprint, s.ASN)
}
