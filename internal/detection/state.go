package detection

import (
	"net/netip"
	"sort"
)

// Snapshot/restore support (see internal/persistence). The guard's
// per-IP sliding windows and throttle tallies are serialized sorted so
// the encoded form is canonical.

// IPVolumeGuardState is the complete mutable state of an IPVolumeGuard.
type IPVolumeGuardState struct {
	Windows   []IPWindowState // sorted by address
	Throttled []ClientCount   // sorted by fingerprint
}

// IPWindowState is one address's daily budget window.
type IPWindowState struct {
	IP  netip.Addr
	Day int64
	N   int
}

// ClientCount is one fingerprint's throttle tally.
type ClientCount struct {
	Client string
	N      int
}

// SnapshotState captures the guard's complete mutable state.
func (g *IPVolumeGuard) SnapshotState() *IPVolumeGuardState {
	st := &IPVolumeGuardState{}
	for ip, w := range g.counts {
		st.Windows = append(st.Windows, IPWindowState{IP: ip, Day: w.day, N: w.n})
	}
	sort.Slice(st.Windows, func(i, j int) bool { return st.Windows[i].IP.Compare(st.Windows[j].IP) < 0 })
	for c, n := range g.Throttled {
		st.Throttled = append(st.Throttled, ClientCount{Client: c, N: n})
	}
	sort.Slice(st.Throttled, func(i, j int) bool { return st.Throttled[i].Client < st.Throttled[j].Client })
	return st
}

// RestoreState overwrites the guard's mutable state with a snapshot.
func (g *IPVolumeGuard) RestoreState(st *IPVolumeGuardState) {
	clear(g.counts)
	for _, w := range st.Windows {
		g.counts[w.IP] = ipWindow{day: w.Day, n: w.N}
	}
	clear(g.Throttled)
	for _, cc := range st.Throttled {
		g.Throttled[cc.Client] = cc.N
	}
}
