package detection

import (
	"time"

	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/stats"
)

// Thresholds holds the per-ASN, per-action-type daily activity thresholds
// of §6.2. Actions by an account above its ASN's threshold on a given day
// are "eligible" for countermeasures.
type Thresholds struct {
	// PerASN maps ASN → action type → daily per-account threshold.
	PerASN map[netsim.ASN]map[platform.ActionType]float64
}

// Lookup returns the threshold for (asn, t); ok is false when the ASN has
// no computed threshold (countermeasures never touch such traffic — this
// is exactly why the proxy-network evasion of §6.4 works).
func (t Thresholds) Lookup(asn netsim.ASN, typ platform.ActionType) (float64, bool) {
	byType, ok := t.PerASN[asn]
	if !ok {
		return 0, false
	}
	v, ok := byType[typ]
	return v, ok
}

// thresholdTypes are the action types the interventions police.
var thresholdTypes = []platform.ActionType{platform.ActionLike, platform.ActionFollow}

// Calibrator accumulates per-account daily action counts, split into AAS
// and benign traffic by a classifier, and computes the §6.2 thresholds:
//
//   - ASNs carrying both AAS and benign traffic: the daily 99th percentile
//     of benign per-account activity (≤1% false positives by construction);
//   - ASNs carrying only AAS traffic: the daily 25th percentile of the
//     abusive activity itself.
//
// Feed it events via Observe, close each day with EndDay, then Compute.
type Calibrator struct {
	classify func(platform.Event) (string, bool)

	// MixedPercentile is the benign-activity quantile used on ASNs with
	// blended traffic (paper: 0.99 — at most 1% false positives).
	MixedPercentile float64
	// DedicatedPercentile is the abuse-activity quantile used on
	// AAS-only ASNs (paper: 0.25).
	DedicatedPercentile float64

	// current day accumulation: per ASN, per account, per type.
	today map[netsim.ASN]map[platform.AccountID]map[platform.ActionType]int
	aas   map[netsim.ASN]bool // ASN saw AAS traffic today (any day)

	// samples: per ASN and type, the per-account-day counts.
	benignSamples map[netsim.ASN]map[platform.ActionType][]float64
	aasSamples    map[netsim.ASN]map[platform.ActionType][]float64
	benignSeen    map[netsim.ASN]bool

	todayIsAAS map[netsim.ASN]map[platform.AccountID]bool
}

// NewCalibrator builds a calibrator over the given classifier function.
func NewCalibrator(classify func(platform.Event) (string, bool)) *Calibrator {
	return &Calibrator{
		classify:            classify,
		MixedPercentile:     0.99,
		DedicatedPercentile: 0.25,
		today:               make(map[netsim.ASN]map[platform.AccountID]map[platform.ActionType]int),
		aas:                 make(map[netsim.ASN]bool),
		benignSamples:       make(map[netsim.ASN]map[platform.ActionType][]float64),
		aasSamples:          make(map[netsim.ASN]map[platform.ActionType][]float64),
		benignSeen:          make(map[netsim.ASN]bool),
		todayIsAAS:          make(map[netsim.ASN]map[platform.AccountID]bool),
	}
}

// Observe ingests one event into the current day.
func (c *Calibrator) Observe(ev platform.Event) {
	if ev.Outcome != platform.OutcomeAllowed || ev.Enforcement || ev.Type == platform.ActionLogin {
		return
	}
	interesting := false
	for _, t := range thresholdTypes {
		if ev.Type == t {
			interesting = true
		}
	}
	if !interesting {
		return
	}
	byAcct := c.today[ev.ASN]
	if byAcct == nil {
		byAcct = make(map[platform.AccountID]map[platform.ActionType]int)
		c.today[ev.ASN] = byAcct
	}
	byType := byAcct[ev.Actor]
	if byType == nil {
		byType = make(map[platform.ActionType]int)
		byAcct[ev.Actor] = byType
	}
	byType[ev.Type]++

	isAAS := c.todayIsAAS[ev.ASN]
	if isAAS == nil {
		isAAS = make(map[platform.AccountID]bool)
		c.todayIsAAS[ev.ASN] = isAAS
	}
	if _, aas := c.classify(ev); aas {
		isAAS[ev.Actor] = true
		c.aas[ev.ASN] = true
	}
}

// EndDay folds the current day's counts into the percentile samples.
func (c *Calibrator) EndDay() {
	for asn, byAcct := range c.today {
		for acct, byType := range byAcct {
			aasAcct := c.todayIsAAS[asn][acct]
			dest := c.benignSamples
			if aasAcct {
				dest = c.aasSamples
			} else {
				c.benignSeen[asn] = true
			}
			byTypeDest := dest[asn]
			if byTypeDest == nil {
				byTypeDest = make(map[platform.ActionType][]float64)
				dest[asn] = byTypeDest
			}
			for _, t := range thresholdTypes {
				if n := byType[t]; n > 0 {
					byTypeDest[t] = append(byTypeDest[t], float64(n))
				}
			}
		}
	}
	c.today = make(map[netsim.ASN]map[platform.AccountID]map[platform.ActionType]int)
	c.todayIsAAS = make(map[netsim.ASN]map[platform.AccountID]bool)
}

// Compute derives thresholds for every ASN that carried AAS traffic.
// Thresholds are frozen at computation time and never adjusted afterwards
// ("we computed the activity level thresholds at the start of each
// experiment and did not change them", §6.2).
func (c *Calibrator) Compute() Thresholds {
	out := Thresholds{PerASN: make(map[netsim.ASN]map[platform.ActionType]float64)}
	for asn := range c.aas {
		byType := make(map[platform.ActionType]float64)
		for _, t := range thresholdTypes {
			var v float64
			if c.benignSeen[asn] {
				// Mixed ASN: 99th percentile of benign per-account days.
				samples := c.benignSamples[asn][t]
				if len(samples) == 0 {
					continue
				}
				v = stats.Quantile(samples, c.MixedPercentile)
			} else {
				// Dedicated AAS ASN: 25th percentile of the abuse itself.
				samples := c.aasSamples[asn][t]
				if len(samples) == 0 {
					continue
				}
				v = stats.Quantile(samples, c.DedicatedPercentile)
			}
			if v < 1 {
				v = 1
			}
			byType[t] = v
		}
		if len(byType) > 0 {
			out.PerASN[asn] = byType
		}
	}
	return out
}

// CalibrationWindow is the default number of days of traffic used to
// compute thresholds before an experiment.
const CalibrationWindow = 7 * 24 * time.Hour
