package detection

import (
	"net/netip"
	"testing"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/platform"
)

func guardReq(ip string, client string, at time.Time) platform.Event {
	return platform.Event{
		Time: at, Type: platform.ActionLike, Actor: 1,
		IP: netip.MustParseAddr(ip), Client: client,
	}
}

func TestIPVolumeGuardCapsPerIP(t *testing.T) {
	t.Parallel()
	g := NewIPVolumeGuard(3)
	at := clock.Epoch
	for i := 0; i < 3; i++ {
		if v := g.Check(guardReq("10.0.0.1", "spoof", at)); v.Kind != platform.VerdictAllow {
			t.Fatalf("action %d blocked below cap", i)
		}
	}
	if v := g.Check(guardReq("10.0.0.1", "spoof", at)); v.Kind != platform.VerdictBlock {
		t.Fatal("4th action from same IP not blocked")
	}
	// A different IP has its own budget.
	if v := g.Check(guardReq("10.0.0.2", "spoof", at)); v.Kind != platform.VerdictAllow {
		t.Fatal("fresh IP blocked")
	}
	if g.Throttled["spoof"] != 1 || g.TotalThrottled() != 1 {
		t.Fatalf("throttle accounting %v", g.Throttled)
	}
}

func TestIPVolumeGuardDailyReset(t *testing.T) {
	t.Parallel()
	g := NewIPVolumeGuard(1)
	at := clock.Epoch
	g.Check(guardReq("10.0.0.1", "x", at))
	if v := g.Check(guardReq("10.0.0.1", "x", at)); v.Kind != platform.VerdictBlock {
		t.Fatal("over-budget action allowed")
	}
	if v := g.Check(guardReq("10.0.0.1", "x", at.Add(24*time.Hour))); v.Kind != platform.VerdictAllow {
		t.Fatal("budget did not reset next day")
	}
}

func TestIPVolumeGuardPassesLogins(t *testing.T) {
	t.Parallel()
	g := NewIPVolumeGuard(1)
	at := clock.Epoch
	for i := 0; i < 5; i++ {
		ev := guardReq("10.0.0.1", "x", at)
		ev.Type = platform.ActionLogin
		if v := g.Check(ev); v.Kind != platform.VerdictAllow {
			t.Fatal("login blocked by volume guard")
		}
	}
}

func TestIPVolumeGuardDisabled(t *testing.T) {
	t.Parallel()
	g := NewIPVolumeGuard(0)
	at := clock.Epoch
	for i := 0; i < 100; i++ {
		if v := g.Check(guardReq("10.0.0.1", "x", at)); v.Kind != platform.VerdictAllow {
			t.Fatal("disabled guard blocked")
		}
	}
}

func TestChainFirstVerdictWins(t *testing.T) {
	t.Parallel()
	blockLikes := platform.GatekeeperFunc(func(req platform.Event) platform.Verdict {
		if req.Type == platform.ActionLike {
			return platform.Verdict{Kind: platform.VerdictBlock}
		}
		return platform.Allow
	})
	delayFollows := platform.GatekeeperFunc(func(req platform.Event) platform.Verdict {
		if req.Type == platform.ActionFollow {
			return platform.Verdict{Kind: platform.VerdictDelayRemove}
		}
		return platform.Allow
	})
	chained := Chain(nil, blockLikes, delayFollows)

	like := platform.Event{Type: platform.ActionLike}
	if v := chained.Check(like); v.Kind != platform.VerdictBlock {
		t.Fatal("chain missed block")
	}
	follow := platform.Event{Type: platform.ActionFollow}
	if v := chained.Check(follow); v.Kind != platform.VerdictDelayRemove {
		t.Fatal("chain missed delay")
	}
	comment := platform.Event{Type: platform.ActionComment}
	if v := chained.Check(comment); v.Kind != platform.VerdictAllow {
		t.Fatal("chain blocked allowed action")
	}
}
