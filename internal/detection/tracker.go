package detection

import (
	"sort"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/telemetry"
)

// AccountActivity is everything the platform knows about one AAS customer
// account's involvement with one service over the measurement window.
type AccountActivity struct {
	Account platform.AccountID
	// Daily maps day index → outbound actions driven by the service.
	Daily map[int]map[platform.ActionType]int
	// InboundDaily maps day index → inbound actions delivered by the
	// service to this account (collusion networks).
	InboundDaily map[int]map[platform.ActionType]int

	// Per-post inbound like bookkeeping for the Hublaagram revenue model:
	// totals, and the peak observed in any single hour.
	PostLikes      map[platform.PostID]int
	PeakHourlyLike int

	curHourPost  platform.PostID
	curHour      int64
	curHourCount int

	// dayScratch backs MaxConsecutiveDays' AppendActiveDays call so the
	// per-account statistic costs no allocation after the first query.
	dayScratch []int
}

// ActiveDays returns the sorted day indices with any (in- or outbound)
// service activity.
func (a *AccountActivity) ActiveDays() []int {
	return a.AppendActiveDays(nil)
}

// AppendActiveDays appends the sorted active-day indices to dst and
// returns the extended slice. Report generators that query thousands of
// accounts pass a reused buffer instead of allocating per account; no
// intermediate set is built (the outbound keys are collected first, the
// inbound keys are added only when new, and the appended region is
// sorted in place).
func (a *AccountActivity) AppendActiveDays(dst []int) []int {
	start := len(dst)
	for d := range a.Daily {
		dst = append(dst, d)
	}
	for d := range a.InboundDaily {
		if _, dup := a.Daily[d]; !dup {
			dst = append(dst, d)
		}
	}
	sort.Ints(dst[start:])
	return dst
}

// MaxConsecutiveDays returns the length of the longest run of consecutive
// active days — the quantity behind the long-term/short-term split (§5.1).
func (a *AccountActivity) MaxConsecutiveDays() int {
	days := a.AppendActiveDays(a.dayScratch[:0])
	a.dayScratch = days
	if len(days) == 0 {
		return 0
	}
	best, run := 1, 1
	for i := 1; i < len(days); i++ {
		if days[i] == days[i-1]+1 {
			run++
		} else {
			run = 1
		}
		if run > best {
			best = run
		}
	}
	return best
}

// HasOutbound reports whether the service ever drove actions FROM this
// account. Reciprocity-service targets have inbound only and are not
// customers; collusion-network participants are customers either way.
func (a *AccountActivity) HasOutbound() bool {
	for _, byType := range a.Daily {
		for _, n := range byType {
			if n > 0 {
				return true
			}
		}
	}
	return false
}

// TotalOutbound sums outbound actions of type t.
func (a *AccountActivity) TotalOutbound(t platform.ActionType) int {
	n := 0
	for _, byType := range a.Daily {
		n += byType[t]
	}
	return n
}

// TotalInbound sums inbound actions of type t.
func (a *AccountActivity) TotalInbound(t platform.ActionType) int {
	n := 0
	for _, byType := range a.InboundDaily {
		n += byType[t]
	}
	return n
}

// OutboundOnDay returns the outbound count of type t on the given day.
func (a *AccountActivity) OutboundOnDay(day int, t platform.ActionType) int {
	return a.Daily[day][t]
}

// MedianLikesPerPost returns the median of inbound like totals across the
// account's touched posts (the Hublaagram tiering statistic).
func (a *AccountActivity) MedianLikesPerPost() float64 {
	if len(a.PostLikes) == 0 {
		return 0
	}
	vals := make([]int, 0, len(a.PostLikes))
	for _, n := range a.PostLikes {
		vals = append(vals, n)
	}
	sort.Ints(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return float64(vals[mid])
	}
	return float64(vals[mid-1]+vals[mid]) / 2
}

// PostsWithAtLeast counts touched posts with at least n service likes.
func (a *AccountActivity) PostsWithAtLeast(n int) int {
	c := 0
	for _, total := range a.PostLikes {
		if total >= n {
			c++
		}
	}
	return c
}

// ServiceActivity aggregates everything attributed to one AAS label.
type ServiceActivity struct {
	Label string
	// ByAccount: service-driven activity per customer account. For
	// reciprocity services the customer is the actor; for collusion
	// networks every actor is a customer and every target is too.
	ByAccount map[platform.AccountID]*AccountActivity
	// Actions tallies all attributed outbound actions by type (Table 11).
	Actions map[platform.ActionType]int
	// Targets records distinct organic accounts that received attributed
	// actions (the Figure 3/4 sample frame). Bounded: sampling keeps the
	// first cap entries.
	Targets map[platform.AccountID]bool
	// ASNs is the service's observed network footprint (Table 7).
	ASNs map[netsim.ASN]bool
}

func newServiceActivity(label string) *ServiceActivity {
	return &ServiceActivity{
		Label:     label,
		ByAccount: make(map[platform.AccountID]*AccountActivity),
		Actions:   make(map[platform.ActionType]int),
		Targets:   make(map[platform.AccountID]bool),
		ASNs:      make(map[netsim.ASN]bool),
	}
}

func (s *ServiceActivity) account(id platform.AccountID) *AccountActivity {
	a := s.ByAccount[id]
	if a == nil {
		a = &AccountActivity{
			Account:      id,
			Daily:        make(map[int]map[platform.ActionType]int),
			InboundDaily: make(map[int]map[platform.ActionType]int),
			PostLikes:    make(map[platform.PostID]int),
		}
		s.ByAccount[id] = a
	}
	return a
}

// Customers returns the number of distinct accounts seen in the service.
func (s *ServiceActivity) Customers() int { return len(s.ByAccount) }

// targetCap bounds the Targets sample frame.
const targetCap = 100000

// Tracker consumes the event stream and maintains per-service activity.
// Wire it with Subscribe on the platform log, passing classified events to
// Observe.
type Tracker struct {
	classifier *Classifier
	services   map[string]*ServiceActivity
	start      time.Time

	telObserved   *telemetry.Counter
	telAttributed *telemetry.Counter
}

// NewTracker builds a tracker over a trained classifier. start anchors day
// indices (usually the measurement window's first instant).
func NewTracker(c *Classifier, start time.Time) *Tracker {
	return &Tracker{classifier: c, services: make(map[string]*ServiceActivity), start: start}
}

// WireTelemetry registers the tracker's counters on reg: events observed
// (post-filter, i.e. allowed non-enforcement non-duplicate) and events
// attributed to a service label. Telemetry is a pure observer; a nil reg
// leaves the tracker untouched.
func (t *Tracker) WireTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t.telObserved = reg.Counter("detection.events.observed")
	t.telAttributed = reg.Counter("detection.events.attributed")
}

// Day converts an event time to a day index relative to the window start.
func (t *Tracker) Day(at time.Time) int {
	return int(at.Sub(t.start) / clock.Day)
}

// Observe ingests one platform event. Duplicate no-op actions (re-liking
// a post) count as attempts for attribution purposes but are excluded: the
// platform state did not change.
func (t *Tracker) Observe(ev platform.Event) {
	if ev.Outcome != platform.OutcomeAllowed || ev.Enforcement || ev.Duplicate {
		return
	}
	t.telObserved.Inc()
	label, ok := t.classifier.Classify(ev)
	if !ok {
		return
	}
	t.telAttributed.Inc()
	svc := t.services[label]
	if svc == nil {
		svc = newServiceActivity(label)
		t.services[label] = svc
	}
	svc.ASNs[ev.ASN] = true
	if ev.Type == platform.ActionLogin {
		// Service logins mark the account as enrolled but are not actions.
		svc.account(ev.Actor)
		return
	}
	day := t.Day(ev.Time)
	svc.Actions[ev.Type]++

	actor := svc.account(ev.Actor)
	byType := actor.Daily[day]
	if byType == nil {
		byType = make(map[platform.ActionType]int)
		actor.Daily[day] = byType
	}
	byType[ev.Type]++

	if ev.Target != 0 && ev.Target != ev.Actor {
		if len(svc.Targets) < targetCap {
			svc.Targets[ev.Target] = true
		}
		tgt := svc.account(ev.Target)
		inByType := tgt.InboundDaily[day]
		if inByType == nil {
			inByType = make(map[platform.ActionType]int)
			tgt.InboundDaily[day] = inByType
		}
		inByType[ev.Type]++

		if ev.Type == platform.ActionLike {
			tgt.PostLikes[ev.Post]++
			hour := ev.Time.Unix() / 3600
			if tgt.curHour != hour || tgt.curHourPost != ev.Post {
				tgt.curHour, tgt.curHourPost, tgt.curHourCount = hour, ev.Post, 0
			}
			tgt.curHourCount++
			if tgt.curHourCount > tgt.PeakHourlyLike {
				tgt.PeakHourlyLike = tgt.curHourCount
			}
		}
	}
}

// Service returns the aggregate for a label (nil when unseen).
func (t *Tracker) Service(label string) *ServiceActivity { return t.services[label] }

// Labels returns the labels with observed activity, sorted.
func (t *Tracker) Labels() []string {
	out := make([]string, 0, len(t.services))
	for l := range t.services {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
