package detection

import (
	"math"
	"sort"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/telemetry"
)

// numActionTypes bounds the per-day tally arrays. ActionLogin is never
// tallied (logins only enroll), but keeping the full enum width keeps
// indexing branch-free.
const numActionTypes = int(platform.ActionLogin) + 1

// DayCounts is one day's per-type action tally. AccountActivity stores
// them in slices sorted by ascending Day — 28 bytes per active day,
// versus a nested map[int]map[ActionType]int that cost two map headers
// plus per-entry overhead for the same information.
type DayCounts struct {
	Day int32
	N   [numActionTypes]int32
}

// Total sums the day's actions across types.
func (d *DayCounts) Total() int {
	t := 0
	for _, n := range d.N {
		t += int(n)
	}
	return t
}

// postCount is one touched post's inbound like tally, sorted by pid.
type postCount struct {
	pid uint32
	n   int32
}

// AccountActivity is everything the platform knows about one AAS customer
// account's involvement with one service over the measurement window.
type AccountActivity struct {
	Account platform.AccountID
	// Daily holds outbound actions driven by the service, one record per
	// active day, sorted by ascending day index.
	Daily []DayCounts
	// InboundDaily holds inbound actions delivered by the service to this
	// account (collusion networks), same layout as Daily.
	InboundDaily []DayCounts

	// Per-post inbound like bookkeeping for the Hublaagram revenue model:
	// totals (sorted by post ID), and the peak observed in any single hour.
	postLikes      []postCount
	PeakHourlyLike int

	curHourPost  platform.PostID
	curHour      int64
	curHourCount int

	// dayScratch backs MaxConsecutiveDays' AppendActiveDays call so the
	// per-account statistic costs no allocation after the first query.
	dayScratch []int
}

// bumpDay adds n to the (day, t) tally in *days. Events arrive in time
// order, so the hot paths are "same day as the last record" and "a later
// day" — both O(1); out-of-order days (test fixtures, merged windows)
// fall back to a sorted insert.
func bumpDay(days *[]DayCounts, day int, t platform.ActionType, n int) {
	s := *days
	if len(s) > 0 {
		if last := &s[len(s)-1]; int(last.Day) == day {
			last.N[t] += int32(n)
			return
		} else if int(last.Day) < day {
			var dc DayCounts
			dc.Day = int32(day)
			dc.N[t] = int32(n)
			*days = append(s, dc)
			return
		}
	} else {
		var dc DayCounts
		dc.Day = int32(day)
		dc.N[t] = int32(n)
		*days = append(s, dc)
		return
	}
	i := sort.Search(len(s), func(i int) bool { return int(s[i].Day) >= day })
	if i < len(s) && int(s[i].Day) == day {
		s[i].N[t] += int32(n)
		return
	}
	s = append(s, DayCounts{})
	copy(s[i+1:], s[i:])
	s[i].Day = int32(day)
	s[i].N = [numActionTypes]int32{}
	s[i].N[t] = int32(n)
	*days = s
}

// AddOutbound adds n service-driven actions of type t on the given day.
func (a *AccountActivity) AddOutbound(day int, t platform.ActionType, n int) {
	bumpDay(&a.Daily, day, t, n)
}

// AddInbound adds n service-delivered actions of type t on the given day.
func (a *AccountActivity) AddInbound(day int, t platform.ActionType, n int) {
	bumpDay(&a.InboundDaily, day, t, n)
}

// AddPostLikes adds n inbound likes to the tally for post pid.
func (a *AccountActivity) AddPostLikes(pid platform.PostID, n int) {
	if uint64(pid) > math.MaxUint32 {
		panic("detection: post ID exceeds uint32 range")
	}
	p := uint32(pid)
	s := a.postLikes
	if len(s) > 0 && s[len(s)-1].pid < p {
		a.postLikes = append(s, postCount{pid: p, n: int32(n)})
		return
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].pid >= p })
	if i < len(s) && s[i].pid == p {
		s[i].n += int32(n)
		return
	}
	s = append(s, postCount{})
	copy(s[i+1:], s[i:])
	s[i] = postCount{pid: p, n: int32(n)}
	a.postLikes = s
}

// PostLikeCount returns the inbound like total for post pid.
func (a *AccountActivity) PostLikeCount(pid platform.PostID) int {
	s := a.postLikes
	i := sort.Search(len(s), func(i int) bool { return uint64(s[i].pid) >= uint64(pid) })
	if i < len(s) && uint64(s[i].pid) == uint64(pid) {
		return int(s[i].n)
	}
	return 0
}

// ActiveDays returns the sorted day indices with any (in- or outbound)
// service activity.
func (a *AccountActivity) ActiveDays() []int {
	return a.AppendActiveDays(nil)
}

// AppendActiveDays appends the sorted active-day indices to dst and
// returns the extended slice. Report generators that query thousands of
// accounts pass a reused buffer instead of allocating per account. Both
// source slices are already sorted, so this is a plain two-way merge —
// no intermediate set, no sort.
func (a *AccountActivity) AppendActiveDays(dst []int) []int {
	i, j := 0, 0
	for i < len(a.Daily) && j < len(a.InboundDaily) {
		di, dj := a.Daily[i].Day, a.InboundDaily[j].Day
		switch {
		case di < dj:
			dst = append(dst, int(di))
			i++
		case dj < di:
			dst = append(dst, int(dj))
			j++
		default:
			dst = append(dst, int(di))
			i++
			j++
		}
	}
	for ; i < len(a.Daily); i++ {
		dst = append(dst, int(a.Daily[i].Day))
	}
	for ; j < len(a.InboundDaily); j++ {
		dst = append(dst, int(a.InboundDaily[j].Day))
	}
	return dst
}

// MaxConsecutiveDays returns the length of the longest run of consecutive
// active days — the quantity behind the long-term/short-term split (§5.1).
func (a *AccountActivity) MaxConsecutiveDays() int {
	days := a.AppendActiveDays(a.dayScratch[:0])
	a.dayScratch = days
	if len(days) == 0 {
		return 0
	}
	best, run := 1, 1
	for i := 1; i < len(days); i++ {
		if days[i] == days[i-1]+1 {
			run++
		} else {
			run = 1
		}
		if run > best {
			best = run
		}
	}
	return best
}

// HasOutbound reports whether the service ever drove actions FROM this
// account. Reciprocity-service targets have inbound only and are not
// customers; collusion-network participants are customers either way.
func (a *AccountActivity) HasOutbound() bool {
	for i := range a.Daily {
		for _, n := range a.Daily[i].N {
			if n > 0 {
				return true
			}
		}
	}
	return false
}

// TotalOutbound sums outbound actions of type t.
func (a *AccountActivity) TotalOutbound(t platform.ActionType) int {
	n := 0
	for i := range a.Daily {
		n += int(a.Daily[i].N[t])
	}
	return n
}

// TotalOutboundAll sums outbound actions across every type.
func (a *AccountActivity) TotalOutboundAll() int {
	n := 0
	for i := range a.Daily {
		n += a.Daily[i].Total()
	}
	return n
}

// TotalInbound sums inbound actions of type t.
func (a *AccountActivity) TotalInbound(t platform.ActionType) int {
	n := 0
	for i := range a.InboundDaily {
		n += int(a.InboundDaily[i].N[t])
	}
	return n
}

// OutboundOnDay returns the outbound count of type t on the given day.
func (a *AccountActivity) OutboundOnDay(day int, t platform.ActionType) int {
	s := a.Daily
	i := sort.Search(len(s), func(i int) bool { return int(s[i].Day) >= day })
	if i < len(s) && int(s[i].Day) == day {
		return int(s[i].N[t])
	}
	return 0
}

// MedianLikesPerPost returns the median of inbound like totals across the
// account's touched posts (the Hublaagram tiering statistic).
func (a *AccountActivity) MedianLikesPerPost() float64 {
	if len(a.postLikes) == 0 {
		return 0
	}
	vals := make([]int, 0, len(a.postLikes))
	for _, pc := range a.postLikes {
		vals = append(vals, int(pc.n))
	}
	sort.Ints(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return float64(vals[mid])
	}
	return float64(vals[mid-1]+vals[mid]) / 2
}

// PostsWithAtLeast counts touched posts with at least n service likes.
func (a *AccountActivity) PostsWithAtLeast(n int) int {
	c := 0
	for _, pc := range a.postLikes {
		if int(pc.n) >= n {
			c++
		}
	}
	return c
}

// ServiceActivity aggregates everything attributed to one AAS label.
type ServiceActivity struct {
	Label string
	// ByAccount: service-driven activity per customer account. For
	// reciprocity services the customer is the actor; for collusion
	// networks every actor is a customer and every target is too.
	ByAccount map[platform.AccountID]*AccountActivity
	// Actions tallies all attributed outbound actions by type (Table 11).
	Actions map[platform.ActionType]int
	// Targets records distinct organic accounts that received attributed
	// actions (the Figure 3/4 sample frame). Bounded: sampling keeps the
	// first cap entries.
	Targets map[platform.AccountID]bool
	// ASNs is the service's observed network footprint (Table 7).
	ASNs map[netsim.ASN]bool
}

func newServiceActivity(label string) *ServiceActivity {
	return &ServiceActivity{
		Label:     label,
		ByAccount: make(map[platform.AccountID]*AccountActivity),
		Actions:   make(map[platform.ActionType]int),
		Targets:   make(map[platform.AccountID]bool),
		ASNs:      make(map[netsim.ASN]bool),
	}
}

func (s *ServiceActivity) account(id platform.AccountID) *AccountActivity {
	a := s.ByAccount[id]
	if a == nil {
		a = &AccountActivity{Account: id}
		s.ByAccount[id] = a
	}
	return a
}

// Customers returns the number of distinct accounts seen in the service.
func (s *ServiceActivity) Customers() int { return len(s.ByAccount) }

// targetCap bounds the Targets sample frame.
const targetCap = 100000

// Tracker consumes the event stream and maintains per-service activity.
// Wire it with Subscribe on the platform log, passing classified events to
// Observe.
type Tracker struct {
	classifier *Classifier
	services   map[string]*ServiceActivity
	start      time.Time

	telObserved   *telemetry.Counter
	telAttributed *telemetry.Counter
}

// NewTracker builds a tracker over a trained classifier. start anchors day
// indices (usually the measurement window's first instant).
func NewTracker(c *Classifier, start time.Time) *Tracker {
	return &Tracker{classifier: c, services: make(map[string]*ServiceActivity), start: start}
}

// WireTelemetry registers the tracker's counters on reg: events observed
// (post-filter, i.e. allowed non-enforcement non-duplicate) and events
// attributed to a service label. Telemetry is a pure observer; a nil reg
// leaves the tracker untouched.
func (t *Tracker) WireTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t.telObserved = reg.Counter("detection.events.observed")
	t.telAttributed = reg.Counter("detection.events.attributed")
}

// Day converts an event time to a day index relative to the window start.
func (t *Tracker) Day(at time.Time) int {
	return int(at.Sub(t.start) / clock.Day)
}

// Observe ingests one platform event. Duplicate no-op actions (re-liking
// a post) count as attempts for attribution purposes but are excluded: the
// platform state did not change.
func (t *Tracker) Observe(ev platform.Event) {
	if ev.Outcome != platform.OutcomeAllowed || ev.Enforcement || ev.Duplicate {
		return
	}
	t.telObserved.Inc()
	label, ok := t.classifier.Classify(ev)
	if !ok {
		return
	}
	t.telAttributed.Inc()
	svc := t.services[label]
	if svc == nil {
		svc = newServiceActivity(label)
		t.services[label] = svc
	}
	svc.ASNs[ev.ASN] = true
	if ev.Type == platform.ActionLogin {
		// Service logins mark the account as enrolled but are not actions.
		svc.account(ev.Actor)
		return
	}
	day := t.Day(ev.Time)
	svc.Actions[ev.Type]++

	svc.account(ev.Actor).AddOutbound(day, ev.Type, 1)

	if ev.Target != 0 && ev.Target != ev.Actor {
		if len(svc.Targets) < targetCap {
			svc.Targets[ev.Target] = true
		}
		tgt := svc.account(ev.Target)
		tgt.AddInbound(day, ev.Type, 1)

		if ev.Type == platform.ActionLike {
			tgt.AddPostLikes(ev.Post, 1)
			hour := ev.Time.Unix() / 3600
			if tgt.curHour != hour || tgt.curHourPost != ev.Post {
				tgt.curHour, tgt.curHourPost, tgt.curHourCount = hour, ev.Post, 0
			}
			tgt.curHourCount++
			if tgt.curHourCount > tgt.PeakHourlyLike {
				tgt.PeakHourlyLike = tgt.curHourCount
			}
		}
	}
}

// Service returns the aggregate for a label (nil when unseen).
func (t *Tracker) Service(label string) *ServiceActivity { return t.services[label] }

// Labels returns the labels with observed activity, sorted.
func (t *Tracker) Labels() []string {
	out := make([]string, 0, len(t.services))
	for l := range t.services {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
