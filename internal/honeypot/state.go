package honeypot

import (
	"sort"
	"time"

	"footsteps/internal/platform"
	"footsteps/internal/rng"
)

// Snapshot/restore support (see internal/persistence). Account order is
// preserved verbatim — creation order drives reporting — while the
// map-backed monitoring counters are serialized sorted so the encoded
// form is canonical.

// State is the complete mutable state of a Framework.
type State struct {
	RNG         rng.State
	NextID      int
	HighProfile []platform.AccountID
	Accounts    []AccountState // creation order
}

// AccountState is one honeypot, flattened.
type AccountState struct {
	ID           platform.AccountID
	Username     string
	Password     string
	Kind         Kind
	Created      time.Time
	EnrolledWith string
	Inbound      []TypeCount // sorted by type
	Outbound     []TypeCount // sorted by type
	InboundDedup []ActorCounts
	Enforcements int
	Duplicates   int
	Deleted      bool
}

// TypeCount is one action-type tally.
type TypeCount struct {
	Type platform.ActionType
	N    int
}

// ActorCounts is one distinct actor's inbound tallies.
type ActorCounts struct {
	Actor  platform.AccountID
	Counts []TypeCount // sorted by type
}

func flattenCounts(c Counts) []TypeCount {
	if len(c) == 0 {
		return nil
	}
	out := make([]TypeCount, 0, len(c))
	for t, n := range c {
		out = append(out, TypeCount{Type: t, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

func unflattenCounts(tcs []TypeCount) Counts {
	c := make(Counts, len(tcs))
	for _, tc := range tcs {
		c[tc.Type] = tc.N
	}
	return c
}

// SnapshotState captures the framework's complete mutable state.
func (f *Framework) SnapshotState() *State {
	st := &State{
		RNG:         f.rng.State(),
		NextID:      f.nextID,
		HighProfile: append([]platform.AccountID(nil), f.highProfile...),
	}
	for _, a := range f.ordered {
		as := AccountState{
			ID:           a.ID,
			Username:     a.Username,
			Password:     a.Password,
			Kind:         a.Kind,
			Created:      a.Created,
			EnrolledWith: a.EnrolledWith,
			Inbound:      flattenCounts(a.Inbound),
			Outbound:     flattenCounts(a.Outbound),
			Enforcements: a.Enforcements,
			Duplicates:   a.Duplicates,
			Deleted:      a.deleted,
		}
		for actor, counts := range a.InboundDedup {
			as.InboundDedup = append(as.InboundDedup, ActorCounts{Actor: actor, Counts: flattenCounts(counts)})
		}
		sort.Slice(as.InboundDedup, func(i, j int) bool { return as.InboundDedup[i].Actor < as.InboundDedup[j].Actor })
		st.Accounts = append(st.Accounts, as)
	}
	return st
}

// RestoreState overwrites the framework's mutable state with a snapshot.
// The wired subscription is left alone — Wire runs at construction and the
// subscription closure reads the maps rebuilt here.
func (f *Framework) RestoreState(st *State) {
	f.rng.SetState(st.RNG)
	f.nextID = st.NextID
	f.highProfile = append(f.highProfile[:0], st.HighProfile...)
	clear(f.accounts)
	f.ordered = f.ordered[:0]
	for i := range st.Accounts {
		as := &st.Accounts[i]
		a := &Account{
			ID:           as.ID,
			Username:     as.Username,
			Password:     as.Password,
			Kind:         as.Kind,
			Created:      as.Created,
			EnrolledWith: as.EnrolledWith,
			Inbound:      unflattenCounts(as.Inbound),
			Outbound:     unflattenCounts(as.Outbound),
			InboundDedup: make(map[platform.AccountID]Counts, len(as.InboundDedup)),
			Enforcements: as.Enforcements,
			Duplicates:   as.Duplicates,
			deleted:      as.Deleted,
		}
		for _, ac := range as.InboundDedup {
			a.InboundDedup[ac.Actor] = unflattenCounts(ac.Counts)
		}
		f.accounts[a.ID] = a
		f.ordered = append(f.ordered, a)
	}
}
