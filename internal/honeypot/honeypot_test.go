package honeypot

import (
	"testing"
	"time"

	"footsteps/internal/aas"
	"footsteps/internal/behavior"
	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
	"footsteps/internal/socialgraph"
)

type world struct {
	plat  *platform.Platform
	sched *clock.Scheduler
	reg   *netsim.Registry
	fw    *Framework
	r     *rng.RNG
}

func newWorld(t *testing.T, seed uint64) *world {
	t.Helper()
	reg := netsim.NewRegistry()
	aas.RegisterNetworks(reg)
	sched := clock.NewScheduler(clock.New())
	plat := platform.New(platform.DefaultConfig(), socialgraph.New(), reg, sched)
	r := rng.New(seed)
	fw := New(plat, sched, r.Split("hp"))
	fw.Wire()
	return &world{plat: plat, sched: sched, reg: reg, fw: fw, r: r}
}

func (w *world) celebrities(t *testing.T, n int) []platform.AccountID {
	t.Helper()
	ids := make([]platform.AccountID, n)
	for i := range ids {
		id, err := w.plat.RegisterAccount(
			"celeb-"+string(rune('a'+i)), "pw", platform.Profile{PhotoCount: 50,
				HasProfilePic: true, HasBio: true, HasName: true}, "USA")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func TestCreateEmptyAccount(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 1)
	a, err := w.fw.Create(Empty)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != Empty {
		t.Fatalf("kind %v", a.Kind)
	}
	prof, _ := w.plat.AccountProfile(a.ID)
	if prof.PhotoCount < 10 {
		t.Fatalf("empty honeypot has %d photos, want ≥10", prof.PhotoCount)
	}
	if prof.LivedIn() {
		t.Fatal("empty honeypot profile reads as lived-in")
	}
	if got, ok := w.fw.Account(a.ID); !ok || got != a {
		t.Fatal("Account lookup failed")
	}
}

func TestCreateLivedInFollowsCelebrities(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2)
	w.fw.SetHighProfile(w.celebrities(t, 25))
	a, err := w.fw.Create(LivedIn)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := w.plat.AccountProfile(a.ID)
	if !prof.LivedIn() {
		t.Fatal("lived-in honeypot profile not lived-in")
	}
	out := w.plat.Graph().OutDegree(a.ID)
	if out < 10 || out > 20 {
		t.Fatalf("lived-in follows %d high-profile accounts, want 10–20", out)
	}
	// Setup follows must not pollute the measurement counters.
	if a.Outbound.Total() != 0 {
		t.Fatalf("outbound counters %v after setup", a.Outbound)
	}
	// Lived-in accounts start with no followers (§4.1.1).
	if w.plat.Graph().InDegree(a.ID) != 0 {
		t.Fatal("lived-in honeypot has followers at creation")
	}
}

func TestMonitoringCountsDirections(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 3)
	a, _ := w.fw.Create(Empty)
	b, _ := w.fw.Create(Empty)

	sessA, err := w.fw.login(a)
	if err != nil {
		t.Fatal(err)
	}
	pidB, _ := w.plat.LatestPost(b.ID)
	sessA.Do(platform.Request{Action: platform.ActionLike, Post: pidB})
	sessA.Do(platform.Request{Action: platform.ActionFollow, Target: b.ID})
	sessA.Do(platform.Request{Action: platform.ActionLike, Post: pidB}) // duplicate

	if a.Outbound[platform.ActionLike] != 1 || a.Outbound[platform.ActionFollow] != 1 {
		t.Fatalf("outbound %v", a.Outbound)
	}
	if a.Duplicates != 1 {
		t.Fatalf("duplicates %d", a.Duplicates)
	}
	if b.Inbound[platform.ActionLike] != 1 || b.Inbound[platform.ActionFollow] != 1 {
		t.Fatalf("inbound %v", b.Inbound)
	}
	if b.InboundDedup[a.ID][platform.ActionLike] != 1 {
		t.Fatalf("dedup %v", b.InboundDedup)
	}
}

func TestReciprocationRateDedupsActors(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 4)
	a, _ := w.fw.Create(Empty)
	// Manually shape counters: 100 outbound follows, 12 distinct actors
	// followed back (one of them twice — still one reciprocation).
	a.Outbound[platform.ActionFollow] = 100
	for i := 0; i < 12; i++ {
		actor := platform.AccountID(1000 + i)
		a.InboundDedup[actor] = Counts{platform.ActionFollow: 1}
	}
	a.InboundDedup[platform.AccountID(1000)][platform.ActionFollow] = 2
	if got := a.ReciprocationRate(platform.ActionFollow, platform.ActionFollow); got != 0.12 {
		t.Fatalf("rate %v, want 0.12", got)
	}
	if got := a.ReciprocationRate(platform.ActionLike, platform.ActionLike); got != 0 {
		t.Fatalf("rate with no outbound %v", got)
	}
}

func TestInactiveBaselineStaysQuiet(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 5)
	inactive, err := w.fw.CreateBatch(Inactive, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Unrelated platform traffic occurs...
	x, _ := w.plat.RegisterAccount("x", "pw", platform.Profile{PhotoCount: 3}, "USA")
	y, _ := w.plat.RegisterAccount("y", "pw", platform.Profile{PhotoCount: 3}, "USA")
	sess, _ := w.plat.Login("x", "pw", platform.ClientInfo{IP: w.reg.Allocate(aas.ASNResUSA)})
	sess.Do(platform.Request{Action: platform.ActionFollow, Target: y})
	_ = x
	w.sched.RunFor(10 * 24 * time.Hour)

	if noisy := w.fw.BaselineQuiet(); len(noisy) != 0 {
		t.Fatalf("%d inactive accounts saw activity", len(noisy))
	}
	if len(inactive) != 50 {
		t.Fatalf("created %d", len(inactive))
	}
}

func TestBaselineDetectsNoise(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 6)
	a, _ := w.fw.Create(Inactive)
	b, _ := w.fw.Create(Empty)
	sess, _ := w.fw.login(b)
	sess.Do(platform.Request{Action: platform.ActionFollow, Target: a.ID})
	noisy := w.fw.BaselineQuiet()
	if len(noisy) != 1 || noisy[0] != a {
		t.Fatalf("BaselineQuiet = %v", noisy)
	}
}

func TestDeleteRemovesActionsAndStopsMonitoring(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 7)
	a, _ := w.fw.Create(Empty)
	b, _ := w.fw.Create(Empty)
	sessA, _ := w.fw.login(a)
	sessA.Do(platform.Request{Action: platform.ActionFollow, Target: b.ID})
	if w.plat.Graph().InDegree(b.ID) != 1 {
		t.Fatal("setup follow missing")
	}
	if err := w.fw.Delete(a); err != nil {
		t.Fatal(err)
	}
	// The paper's deletion semantics: all actions to or from the account
	// are removed from the platform.
	if w.plat.Graph().InDegree(b.ID) != 0 {
		t.Fatal("deleted honeypot's follow survives")
	}
	if w.plat.Exists(a.ID) {
		t.Fatal("account still on platform")
	}
	// Double delete is a no-op.
	if err := w.fw.Delete(a); err != nil {
		t.Fatal(err)
	}
	// New inbound to the deleted account's ID no longer counts.
	before := a.Inbound.Total()
	w.sched.RunFor(time.Hour)
	if a.Inbound.Total() != before {
		t.Fatal("monitoring continued after deletion")
	}
}

func TestDeleteAll(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 8)
	w.fw.CreateBatch(Empty, 5)
	w.fw.CreateBatch(Inactive, 5)
	if err := w.fw.DeleteAll(); err != nil {
		t.Fatal(err)
	}
	for _, a := range w.fw.Accounts() {
		if w.plat.Exists(a.ID) {
			t.Fatal("account survived DeleteAll")
		}
	}
}

func TestEnrollmentAttribution(t *testing.T) {
	t.Parallel()
	// End-to-end: honeypot enrolled with a reciprocity AAS receives
	// reciprocal actions attributable to that service; enforcement
	// removals are tallied separately.
	w := newWorld(t, 9)
	pop := behavior.New(behavior.DefaultModel(), w.plat, w.sched, w.r.Split("pop"))
	spec := aas.SpecByName(aas.NameBoostgram)
	svc := aas.NewReciprocityService(spec, w.plat, w.sched, w.r.Split("svc"))
	svc.SetTargetPool(pop.AddCuratedPool("bg", spec.TargetPool, 3000))
	pop.Wire()

	a, _ := w.fw.Create(Empty)
	c, err := svc.EnrollTrial(a.Username, a.Password, aas.OfferFollow)
	if err != nil {
		t.Fatal(err)
	}
	w.fw.MarkEnrolled(a, spec.Name)
	if c.Account != a.ID {
		t.Fatal("enrollment bound to wrong account")
	}
	svc.Run(3, 0)
	w.sched.RunFor(5 * 24 * time.Hour)

	if a.Outbound[platform.ActionFollow] == 0 {
		t.Fatal("service drove no follows")
	}
	if a.Inbound[platform.ActionFollow] == 0 {
		t.Fatal("no reciprocal follows observed")
	}
	rate := a.ReciprocationRate(platform.ActionFollow, platform.ActionFollow)
	if rate < 0.05 || rate > 0.20 {
		t.Fatalf("follow reciprocation %v, want ≈0.10 (Table 5)", rate)
	}
	if a.EnrolledWith != aas.NameBoostgram {
		t.Fatal("attribution label missing")
	}
}

func TestKindString(t *testing.T) {
	t.Parallel()
	if Empty.String() != "empty" || LivedIn.String() != "lived-in" ||
		Inactive.String() != "inactive" || Kind(9).String() != "unknown" {
		t.Fatal("kind strings")
	}
}

func TestCreateBeforeWirePanics(t *testing.T) {
	t.Parallel()
	reg := netsim.NewRegistry()
	aas.RegisterNetworks(reg)
	sched := clock.NewScheduler(clock.New())
	plat := platform.New(platform.DefaultConfig(), socialgraph.New(), reg, sched)
	fw := New(plat, sched, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Create before Wire did not panic")
		}
	}()
	fw.Create(Empty)
}
