// Package honeypot implements the instrumented-account framework of §4.1:
// programmatic creation of empty, lived-in, and inactive accounts, full
// monitoring of every action to or from them, attribution of observed
// activity, and deletion that removes all of an account's actions.
//
// Honeypots neither generate nor receive organic actions on their own, so
// everything observed on an enrolled honeypot is attributed to the linked
// AAS; the inactive fleet establishes the zero-activity baseline that
// justifies the attribution (§4.1.3).
package honeypot

import (
	"fmt"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
)

// Kind is the honeypot account type of §4.1.1.
type Kind int

// Account kinds.
const (
	// Empty accounts carry only the minimum required to use every AAS:
	// ten or more themed photos, nothing else.
	Empty Kind = iota
	// LivedIn accounts add a profile picture, biography, and name, and
	// follow 10–20 high-profile accounts at creation.
	LivedIn
	// Inactive accounts are the attribution baseline: never enrolled,
	// never acting, expected to observe zero inbound activity.
	Inactive
)

func (k Kind) String() string {
	switch k {
	case Empty:
		return "empty"
	case LivedIn:
		return "lived-in"
	case Inactive:
		return "inactive"
	default:
		return "unknown"
	}
}

// Counts tallies actions by type.
type Counts map[platform.ActionType]int

// Total sums all entries.
func (c Counts) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// Account is one managed honeypot.
type Account struct {
	ID       platform.AccountID
	Username string
	Password string
	Kind     Kind
	Created  time.Time

	// EnrolledWith names the AAS this honeypot was registered with, if
	// any. Attribution assigns all observed activity to it.
	EnrolledWith string

	// Monitoring state: everything to and from the account, split by
	// direction. Enforcement events (the platform undoing actions) and
	// duplicate no-ops are tallied separately and excluded from the main
	// counters.
	Inbound      Counts
	Outbound     Counts
	InboundDedup map[platform.AccountID]Counts // per distinct actor
	Enforcements int
	Duplicates   int

	deleted bool
}

// ReciprocationRate returns the rate of distinct inbound actions of the
// given type per outbound action of the driving type — one cell of
// Table 5. Inbound actions are counted once per distinct actor, matching
// the paper's notion of "a user reciprocating".
func (a *Account) ReciprocationRate(outbound, inbound platform.ActionType) float64 {
	out := a.Outbound[outbound]
	if out == 0 {
		return 0
	}
	actors := 0
	for _, counts := range a.InboundDedup {
		if counts[inbound] > 0 {
			actors++
		}
	}
	return float64(actors) / float64(out)
}

// Framework creates and monitors honeypot accounts.
type Framework struct {
	plat  *platform.Platform
	sched *clock.Scheduler
	net   *netsim.Registry
	rng   *rng.RNG

	accounts map[platform.AccountID]*Account
	ordered  []*Account

	// highProfile accounts (>1M followers in the paper) that lived-in
	// honeypots follow at creation.
	highProfile []platform.AccountID

	nextID int
	wired  bool
}

// New returns a framework bound to the platform.
func New(plat *platform.Platform, sched *clock.Scheduler, r *rng.RNG) *Framework {
	return &Framework{
		plat:     plat,
		sched:    sched,
		net:      plat.Net(),
		rng:      r,
		accounts: make(map[platform.AccountID]*Account),
	}
}

// SetHighProfile supplies the celebrity accounts lived-in honeypots follow.
func (f *Framework) SetHighProfile(ids []platform.AccountID) {
	f.highProfile = append([]platform.AccountID(nil), ids...)
}

// Wire subscribes the monitor to the platform's event stream. Call once,
// before any honeypot activity.
func (f *Framework) Wire() {
	if f.wired {
		panic("honeypot: Wire called twice")
	}
	f.wired = true
	f.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Type == platform.ActionLogin {
			return
		}
		if a, ok := f.accounts[ev.Actor]; ok && !a.deleted && ev.Outcome == platform.OutcomeAllowed {
			switch {
			case ev.Enforcement:
				a.Enforcements++
			case ev.Duplicate:
				a.Duplicates++
			default:
				a.Outbound[ev.Type]++
			}
		}
		if a, ok := f.accounts[ev.Target]; ok && !a.deleted && ev.Outcome == platform.OutcomeAllowed && ev.Actor != ev.Target {
			switch {
			case ev.Enforcement:
				a.Enforcements++
			case ev.Duplicate:
				a.Duplicates++
			default:
				a.Inbound[ev.Type]++
				per := a.InboundDedup[ev.Actor]
				if per == nil {
					per = make(Counts)
					a.InboundDedup[ev.Actor] = per
				}
				per[ev.Type]++
			}
		}
	})
}

// Create registers one honeypot of the given kind from a residential IP and
// returns it. Lived-in accounts follow 10–20 of the high-profile accounts.
func (f *Framework) Create(kind Kind) (*Account, error) {
	if !f.wired {
		panic("honeypot: Create before Wire — events would be lost")
	}
	f.nextID++
	username := fmt.Sprintf("hp-%s-%d", kind, f.nextID)
	password := "pw-" + username

	prof := platform.Profile{PhotoCount: 10 + f.rng.Intn(5)}
	if kind == LivedIn {
		prof.HasProfilePic = true
		prof.HasBio = true
		prof.HasName = true
	}
	id, err := f.plat.RegisterAccount(username, password, prof, "USA")
	if err != nil {
		return nil, err
	}
	a := &Account{
		ID:           id,
		Username:     username,
		Password:     password,
		Kind:         kind,
		Created:      f.plat.Now(),
		Inbound:      make(Counts),
		Outbound:     make(Counts),
		InboundDedup: make(map[platform.AccountID]Counts),
	}
	f.accounts[id] = a
	f.ordered = append(f.ordered, a)

	if kind == LivedIn && len(f.highProfile) > 0 {
		sess, err := f.login(a)
		if err != nil {
			return nil, err
		}
		n := 10 + f.rng.Intn(11) // 10–20
		for _, idx := range f.rng.Sample(len(f.highProfile), n) {
			sess.Do(platform.Request{Action: platform.ActionFollow, Target: f.highProfile[idx]})
		}
		// Creation-time follows of celebrities are setup, not service
		// activity; reset the counters so measurements start clean.
		a.Outbound = make(Counts)
	}
	return a, nil
}

// login opens the honeypot's own session from a diverse residential IP
// (§4.1.2: "a diverse set of commercial and residential IP addresses").
func (f *Framework) login(a *Account) (*platform.Session, error) {
	res := f.net.ByKind(netsim.KindResidential)
	if len(res) == 0 {
		return nil, fmt.Errorf("honeypot: no residential ASNs")
	}
	asn := res[f.rng.Intn(len(res))]
	return f.plat.Login(a.Username, a.Password, platform.ClientInfo{
		IP:          f.net.Allocate(asn),
		Fingerprint: "mobile-official",
		API:         platform.APIPrivate,
	})
}

// CreateBatch creates n honeypots of kind.
func (f *Framework) CreateBatch(kind Kind, n int) ([]*Account, error) {
	out := make([]*Account, 0, n)
	for i := 0; i < n; i++ {
		a, err := f.Create(kind)
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
	return out, nil
}

// Accounts returns all honeypots in creation order.
func (f *Framework) Accounts() []*Account {
	return append([]*Account(nil), f.ordered...)
}

// Account looks up a honeypot by platform ID.
func (f *Framework) Account(id platform.AccountID) (*Account, bool) {
	a, ok := f.accounts[id]
	return a, ok
}

// MarkEnrolled records which AAS the honeypot was registered with.
func (f *Framework) MarkEnrolled(a *Account, service string) { a.EnrolledWith = service }

// Delete removes the honeypot and all of its actions from the platform,
// per the §4.1.1 deletion protocol. Monitoring stops.
func (f *Framework) Delete(a *Account) error {
	if a.deleted {
		return nil
	}
	a.deleted = true
	return f.plat.DeleteAccount(a.ID)
}

// DeleteAll deletes every managed honeypot (the end-of-study cleanup).
func (f *Framework) DeleteAll() error {
	for _, a := range f.ordered {
		if err := f.Delete(a); err != nil {
			return err
		}
	}
	return nil
}

// BaselineQuiet verifies the attribution precondition: every inactive
// honeypot observed zero inbound actions. It returns the offending
// accounts, empty when the baseline is clean (§4.1.3: "we did not observe
// any activity on any of the inactive honeypot accounts").
func (f *Framework) BaselineQuiet() []*Account {
	var noisy []*Account
	for _, a := range f.ordered {
		if a.Kind != Inactive {
			continue
		}
		if a.Inbound.Total() > 0 || a.Outbound.Total() > 0 {
			noisy = append(noisy, a)
		}
	}
	return noisy
}
