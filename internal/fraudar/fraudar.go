// Package fraudar implements a FRAUDAR-style dense-subgraph detector
// (Hooi et al., KDD 2016 — cited by the paper as the graph-based state of
// the art for catching camouflaged fraud on follower graphs).
//
// The detector finds the bipartite block of source and target accounts
// maximizing average column-weighted edge density via greedy peeling:
// repeatedly remove the node with the least weighted degree, tracking the
// best prefix. Edge weights are column-damped — an edge into a target
// with many inbound edges counts as 1/log(1+deg) — which resists the
// camouflage strategy of spraying actions at popular accounts.
//
// In this repository the detector serves as the baseline the study's
// signal-based attribution is compared against (see core.GraphDetection):
// it finds collusion networks (which are genuinely dense blocks) but has
// structurally nothing to find for reciprocity abuse, whose inbound
// actions come from ordinary users. That asymmetry is exactly the paper's
// motivation for moving beyond graph methods.
package fraudar

import (
	"container/heap"
	"fmt"
	"math"
)

// NodeID identifies a node on either side of the bipartite graph. Sources
// and targets live in separate ID spaces.
type NodeID uint64

// Bipartite is a bipartite multigraph under construction. Parallel edges
// accumulate weight.
type Bipartite struct {
	sources map[NodeID]map[NodeID]float64 // source → target → multiplicity
	targets map[NodeID]int                // target → inbound edge count
	edges   int
}

// NewBipartite returns an empty graph.
func NewBipartite() *Bipartite {
	return &Bipartite{
		sources: make(map[NodeID]map[NodeID]float64),
		targets: make(map[NodeID]int),
	}
}

// AddEdge records one source→target action.
func (b *Bipartite) AddEdge(src, dst NodeID) {
	adj := b.sources[src]
	if adj == nil {
		adj = make(map[NodeID]float64)
		b.sources[src] = adj
	}
	adj[dst]++
	b.targets[dst]++
	b.edges++
}

// Sources returns the number of distinct source nodes.
func (b *Bipartite) Sources() int { return len(b.sources) }

// Targets returns the number of distinct target nodes.
func (b *Bipartite) Targets() int { return len(b.targets) }

// Edges returns the number of recorded edges (with multiplicity).
func (b *Bipartite) Edges() int { return b.edges }

// Result is one detected dense block.
type Result struct {
	Sources []NodeID
	Targets []NodeID
	// Score is the block's average weighted degree, g(S) = w(S)/|S|.
	Score float64
}

// Size returns the total number of nodes in the block.
func (r Result) Size() int { return len(r.Sources) + len(r.Targets) }

// node indexes both sides in one peeling arena.
type node struct {
	id       NodeID
	isSource bool
	weight   float64 // current weighted degree
	index    int     // heap index; -1 when removed
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].weight < h[j].weight }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *nodeHeap) Push(x interface{}) { n := x.(*node); n.index = len(*h); *h = append(*h, n) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	n.index = -1
	*h = old[:len(old)-1]
	return n
}

// Detect runs one round of greedy peeling and returns the densest block
// found. The result is empty when the graph has no edges.
func Detect(b *Bipartite) Result {
	if b.edges == 0 {
		return Result{}
	}
	// Column weights: damp targets by their global popularity.
	colWeight := make(map[NodeID]float64, len(b.targets))
	for t, deg := range b.targets {
		colWeight[t] = 1 / math.Log(1+float64(deg)+math.E-1) // =1 at deg 1... monotone decreasing
	}

	// Build the arena: weighted adjacency in both directions.
	srcNodes := make(map[NodeID]*node, len(b.sources))
	tgtNodes := make(map[NodeID]*node, len(b.targets))
	var h nodeHeap
	total := 0.0
	for s, adj := range b.sources {
		n := &node{id: s, isSource: true}
		for t, mult := range adj {
			n.weight += mult * colWeight[t]
		}
		total += n.weight
		srcNodes[s] = n
		heap.Push(&h, n)
	}
	for t := range b.targets {
		n := &node{id: t}
		tgtNodes[t] = n
		heap.Push(&h, n)
	}
	// Target weights mirror the damped inbound mass.
	for s, adj := range b.sources {
		_ = s
		for t, mult := range adj {
			tgtNodes[t].weight += mult * colWeight[t]
		}
	}
	// Fix heap order after weight assignment.
	heap.Init(&h)

	// Reverse adjacency for peeling updates.
	rev := make(map[NodeID][]NodeID, len(b.targets)) // target → sources
	for s, adj := range b.sources {
		for t := range adj {
			rev[t] = append(rev[t], s)
		}
	}

	type removal struct {
		n *node
	}
	order := make([]removal, 0, len(h))
	alive := len(h)
	mass := total // total damped edge mass among alive nodes

	best := -1.0
	bestStep := -1
	if alive > 0 {
		best = mass / float64(alive)
		bestStep = 0
	}

	removed := make(map[*node]bool)
	step := 0
	for h.Len() > 0 {
		n := heap.Pop(&h).(*node)
		removed[n] = true
		order = append(order, removal{n: n})
		step++
		alive--
		mass -= n.weight
		if n.weight < 0 {
			mass -= 0 // numeric guard; weights never go negative by construction
		}
		// Update neighbors.
		if n.isSource {
			for t, mult := range b.sources[n.id] {
				tn := tgtNodes[t]
				if removed[tn] {
					continue
				}
				tn.weight -= mult * colWeight[t]
				if tn.weight < 0 {
					tn.weight = 0
				}
				heap.Fix(&h, tn.index)
			}
		} else {
			for _, s := range rev[n.id] {
				sn := srcNodes[s]
				if removed[sn] {
					continue
				}
				sn.weight -= b.sources[s][n.id] * colWeight[n.id]
				if sn.weight < 0 {
					sn.weight = 0
				}
				heap.Fix(&h, sn.index)
			}
		}
		if alive > 0 {
			if g := mass / float64(alive); g > best {
				best = g
				bestStep = step
			}
		}
	}

	// The best block is everything NOT removed in the first bestStep
	// removals.
	inBlock := make(map[*node]bool)
	for _, r := range order[bestStep:] {
		inBlock[r.n] = true
	}
	var res Result
	res.Score = best
	for _, r := range order {
		if !inBlock[r.n] {
			continue
		}
		if r.n.isSource {
			res.Sources = append(res.Sources, r.n.id)
		} else {
			res.Targets = append(res.Targets, r.n.id)
		}
	}
	return res
}

// DetectK returns up to k dense blocks: after each detection the block's
// edges are removed and peeling repeats. Blocks with fewer than minNodes
// total nodes stop the search.
func DetectK(b *Bipartite, k, minNodes int) []Result {
	if k <= 0 {
		return nil
	}
	// Work on a copy so the caller's graph survives.
	work := NewBipartite()
	for s, adj := range b.sources {
		for t, mult := range adj {
			for i := 0; i < int(mult); i++ {
				work.AddEdge(s, t)
			}
		}
	}
	var out []Result
	for i := 0; i < k; i++ {
		res := Detect(work)
		if res.Size() < minNodes || res.Score <= 0 {
			break
		}
		out = append(out, res)
		// Remove the block's internal edges.
		inT := make(map[NodeID]bool, len(res.Targets))
		for _, t := range res.Targets {
			inT[t] = true
		}
		for _, s := range res.Sources {
			adj := work.sources[s]
			for t, mult := range adj {
				if inT[t] {
					work.targets[t] -= int(mult)
					work.edges -= int(mult)
					delete(adj, t)
				}
			}
			if len(adj) == 0 {
				delete(work.sources, s)
			}
		}
		for t, deg := range work.targets {
			if deg <= 0 {
				delete(work.targets, t)
			}
		}
	}
	return out
}

// PrecisionRecall scores a detected node set against ground truth.
// Duplicates in detected (an account appearing as both source and target)
// are collapsed before scoring.
func PrecisionRecall(detected []NodeID, truth map[NodeID]bool) (precision, recall float64) {
	set := make(map[NodeID]bool, len(detected))
	for _, id := range detected {
		set[id] = true
	}
	if len(set) == 0 {
		return 0, 0
	}
	hit := 0
	for id := range set {
		if truth[id] {
			hit++
		}
	}
	precision = float64(hit) / float64(len(set))
	if len(truth) > 0 {
		recall = float64(hit) / float64(len(truth))
	}
	return precision, recall
}

// String renders a result summary.
func (r Result) String() string {
	return fmt.Sprintf("block{%d sources, %d targets, score %.3f}", len(r.Sources), len(r.Targets), r.Score)
}
