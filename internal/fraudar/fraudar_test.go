package fraudar

import (
	"strings"
	"testing"
	"testing/quick"

	"footsteps/internal/rng"
)

// plant builds a graph with a dense fraud block (srcs × tgts, every edge
// present) on top of a sparse organic background.
func plant(r *rng.RNG, fraudSrcs, fraudTgts, bgSrcs, bgTgts, bgEdges int) (*Bipartite, map[NodeID]bool) {
	b := NewBipartite()
	truth := make(map[NodeID]bool)
	// Fraud block: sources 0..fraudSrcs-1, targets 100000..*.
	for s := 0; s < fraudSrcs; s++ {
		truth[NodeID(s)] = true
		for t := 0; t < fraudTgts; t++ {
			b.AddEdge(NodeID(s), NodeID(100000+t))
		}
	}
	for t := 0; t < fraudTgts; t++ {
		truth[NodeID(100000+t)] = true
	}
	// Background: random sparse edges between other nodes.
	for e := 0; e < bgEdges; e++ {
		s := NodeID(1000 + r.Intn(bgSrcs))
		t := NodeID(200000 + r.Intn(bgTgts))
		b.AddEdge(s, t)
	}
	return b, truth
}

func TestDetectRecoversPlantedBlock(t *testing.T) {
	t.Parallel()
	r := rng.New(1)
	b, truth := plant(r, 30, 30, 500, 500, 2000)
	res := Detect(b)
	if res.Size() == 0 {
		t.Fatal("nothing detected")
	}
	all := append(append([]NodeID(nil), res.Sources...), res.Targets...)
	precision, recall := PrecisionRecall(all, truth)
	if precision < 0.9 {
		t.Fatalf("precision %.2f", precision)
	}
	if recall < 0.9 {
		t.Fatalf("recall %.2f", recall)
	}
}

func TestDetectResistsCamouflage(t *testing.T) {
	t.Parallel()
	// Fraud sources also spray edges at popular organic targets (the
	// camouflage strategy). Column damping keeps the block detectable.
	r := rng.New(2)
	b, truth := plant(r, 25, 25, 300, 300, 1500)
	// Popular celebrity targets receiving mass attention.
	for celeb := 0; celeb < 5; celeb++ {
		for s := 0; s < 200; s++ {
			b.AddEdge(NodeID(1000+s), NodeID(300000+celeb))
		}
		// Camouflage: every fraud source hits the celebrities too.
		for s := 0; s < 25; s++ {
			b.AddEdge(NodeID(s), NodeID(300000+celeb))
		}
	}
	res := Detect(b)
	all := append(append([]NodeID(nil), res.Sources...), res.Targets...)
	precision, recall := PrecisionRecall(all, truth)
	if recall < 0.8 {
		t.Fatalf("camouflaged recall %.2f", recall)
	}
	if precision < 0.6 {
		t.Fatalf("camouflaged precision %.2f", precision)
	}
}

func TestDetectEmptyGraph(t *testing.T) {
	t.Parallel()
	res := Detect(NewBipartite())
	if res.Size() != 0 || res.Score != 0 {
		t.Fatalf("empty graph result %+v", res)
	}
}

func TestDetectSingleEdge(t *testing.T) {
	t.Parallel()
	b := NewBipartite()
	b.AddEdge(1, 2)
	res := Detect(b)
	if res.Size() == 0 {
		t.Fatal("single edge found nothing")
	}
	if b.Sources() != 1 || b.Targets() != 1 || b.Edges() != 1 {
		t.Fatal("graph accounting wrong")
	}
}

func TestDetectKFindsMultipleBlocks(t *testing.T) {
	t.Parallel()
	b := NewBipartite()
	// Two disjoint dense blocks of different sizes.
	for s := 0; s < 20; s++ {
		for tt := 0; tt < 20; tt++ {
			b.AddEdge(NodeID(s), NodeID(100000+tt))
		}
	}
	for s := 0; s < 12; s++ {
		for tt := 0; tt < 12; tt++ {
			b.AddEdge(NodeID(500+s), NodeID(600000+tt))
		}
	}
	results := DetectK(b, 5, 6)
	if len(results) < 2 {
		t.Fatalf("found %d blocks, want ≥2", len(results))
	}
	// The original graph is untouched.
	if b.Edges() != 20*20+12*12 {
		t.Fatal("DetectK mutated input graph")
	}
	// First block is the denser one.
	if len(results[0].Sources) < len(results[1].Sources) {
		t.Fatalf("blocks out of density order: %v then %v", results[0], results[1])
	}
}

func TestDetectKZero(t *testing.T) {
	t.Parallel()
	if DetectK(NewBipartite(), 0, 1) != nil {
		t.Fatal("k=0 returned blocks")
	}
}

func TestPrecisionRecallEdgeCases(t *testing.T) {
	t.Parallel()
	p, r := PrecisionRecall(nil, map[NodeID]bool{1: true})
	if p != 0 || r != 0 {
		t.Fatal("empty detection should score zero")
	}
	p, r = PrecisionRecall([]NodeID{1, 2}, map[NodeID]bool{1: true})
	if p != 0.5 || r != 1 {
		t.Fatalf("p=%v r=%v", p, r)
	}
}

func TestResultString(t *testing.T) {
	t.Parallel()
	s := Result{Sources: []NodeID{1}, Targets: []NodeID{2, 3}, Score: 1.5}.String()
	if !strings.Contains(s, "1 sources") || !strings.Contains(s, "2 targets") {
		t.Fatalf("string %q", s)
	}
}

// Property: the detected block's score never exceeds the whole graph's
// best possible average degree bound (edges per node is an upper bound on
// g when weights ≤ 1), and all returned nodes existed in the graph.
func TestDetectInvariants(t *testing.T) {
	t.Parallel()
	check := func(seed uint16, nEdges uint8) bool {
		r := rng.New(uint64(seed))
		b := NewBipartite()
		for i := 0; i < int(nEdges)+1; i++ {
			b.AddEdge(NodeID(r.Intn(20)), NodeID(100+r.Intn(20)))
		}
		res := Detect(b)
		if res.Score < 0 {
			return false
		}
		for _, s := range res.Sources {
			if _, ok := b.sources[s]; !ok {
				return false
			}
		}
		for _, tgt := range res.Targets {
			if _, ok := b.targets[tgt]; !ok {
				return false
			}
		}
		// Score bound: total edges / total nodes is the maximum possible
		// average (weights ≤ 1).
		if res.Size() > 0 && res.Score > float64(b.Edges()) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDetect(b *testing.B) {
	r := rng.New(1)
	g, _ := plant(r, 50, 50, 2000, 2000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Detect(g)
	}
}
