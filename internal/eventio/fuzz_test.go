package eventio

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"footsteps/internal/netsim"
	"footsteps/internal/platform"
)

// FuzzEventRoundTrip checks that any event the platform can emit — every
// action type, every outcome/API/flag combination, arbitrary identifiers,
// addresses, and client fingerprints — survives a binary encode/decode
// unchanged, including the string-table interning path (each event is
// written twice so the second write exercises the table hit).
func FuzzEventRoundTrip(f *testing.F) {
	// One seed per action kind, exercising distinct flag and IP shapes.
	for kind := byte(0); kind < 6; kind++ {
		f.Add(uint64(kind)+1, int64(1504224000000000000)+int64(kind), kind,
			uint64(10+kind), uint64(20+kind), uint64(30+kind),
			uint32(0x0a000001)<<(kind%3), uint32(64496)+uint32(kind),
			"mobile-official", kind)
	}
	f.Fuzz(func(t *testing.T, seq uint64, nanos int64, kind byte,
		actor, target, post uint64, ipBits, asn uint32, client string, flags byte) {
		if len(client) > 1<<16 {
			client = client[:1<<16] // the reader's string sanity cap
		}
		ev := platform.Event{
			Seq:         seq,
			Time:        time.Unix(0, nanos).UTC(),
			Type:        platform.ActionType(kind % 6),
			Actor:       platform.AccountID(actor),
			Target:      platform.AccountID(target),
			Post:        platform.PostID(post),
			ASN:         netsim.ASN(asn),
			Client:      client,
			Outcome:     platform.Outcome(flags & 0x3),
			API:         platform.APIKind((flags >> 2) & 0x1),
			Enforcement: flags&(1<<3) != 0,
			Duplicate:   flags&(1<<4) != 0,
		}
		if ipBits != 0 {
			ev.IP = netip.AddrFrom4([4]byte{byte(ipBits >> 24), byte(ipBits >> 16), byte(ipBits >> 8), byte(ipBits)})
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatalf("new writer: %v", err)
		}
		if err := w.Write(ev); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := w.Write(ev); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}

		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("new reader: %v", err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != 2 {
			t.Fatalf("decoded %d events, want 2", len(got))
		}
		for i, g := range got {
			if g.Seq != ev.Seq || !g.Time.Equal(ev.Time) || g.Type != ev.Type ||
				g.Actor != ev.Actor || g.Target != ev.Target || g.Post != ev.Post ||
				g.IP != ev.IP || g.ASN != ev.ASN || g.Client != ev.Client ||
				g.Outcome != ev.Outcome || g.API != ev.API ||
				g.Enforcement != ev.Enforcement || g.Duplicate != ev.Duplicate {
				t.Fatalf("event %d mutated in round trip:\n got %+v\nwant %+v", i, g, ev)
			}
		}
	})
}

// FuzzReaderNoPanic feeds arbitrary bytes to the decoder after a valid
// header: malformed streams must produce errors, never panics or runaway
// allocations.
func FuzzReaderNoPanic(f *testing.F) {
	f.Add([]byte{opEvent, 1, 2, 3})
	f.Add([]byte{opString, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{7, 7, 7})
	f.Fuzz(func(t *testing.T, body []byte) {
		stream := append(append([]byte(nil), magic...), body...)
		r, err := NewReader(bytes.NewReader(stream))
		if err != nil {
			return
		}
		_, _ = r.ReadAll()
	})
}
