package eventio

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"footsteps/internal/netsim"
	"footsteps/internal/platform"
)

// FuzzEventRoundTrip checks that any event the platform can emit — every
// action type, every outcome/API/flag combination, arbitrary identifiers,
// addresses, and client fingerprints — survives a binary encode/decode
// unchanged, including the string-table interning path (each event is
// written twice so the second write exercises the table hit).
func FuzzEventRoundTrip(f *testing.F) {
	// One seed per action kind, exercising distinct flag and IP shapes.
	for kind := byte(0); kind < 6; kind++ {
		f.Add(uint64(kind)+1, int64(1504224000000000000)+int64(kind), kind,
			uint64(10+kind), uint64(20+kind), uint64(30+kind),
			uint32(0x0a000001)<<(kind%3), uint32(64496)+uint32(kind),
			"mobile-official", kind)
	}
	// The fault-injected outcome rides flag bit 5 (see the codec); seed
	// it explicitly so the corpus always covers OutcomeUnavailable.
	f.Add(uint64(7), int64(1504224000000000000), byte(1),
		uint64(10), uint64(20), uint64(30),
		uint32(0x0a000001), uint32(64496), "mobile-official", byte(1<<5))
	f.Fuzz(func(t *testing.T, seq uint64, nanos int64, kind byte,
		actor, target, post uint64, ipBits, asn uint32, client string, flags byte) {
		if len(client) > 1<<16 {
			client = client[:1<<16] // the reader's string sanity cap
		}
		ev := platform.Event{
			Seq:         seq,
			Time:        time.Unix(0, nanos).UTC(),
			Type:        platform.ActionType(kind % 6),
			Actor:       platform.AccountID(actor),
			Target:      platform.AccountID(target),
			Post:        platform.PostID(post),
			ASN:         netsim.ASN(asn),
			Client:      client,
			Outcome:     platform.Outcome(flags & 0x3),
			API:         platform.APIKind((flags >> 2) & 0x1),
			Enforcement: flags&(1<<3) != 0,
			Duplicate:   flags&(1<<4) != 0,
		}
		if flags&(1<<5) != 0 {
			// Mirror the codec's flag layout: bit 5 marks the
			// fault-injected outcome regardless of the low outcome bits.
			ev.Outcome = platform.OutcomeUnavailable
		}
		if ipBits != 0 {
			ev.IP = netip.AddrFrom4([4]byte{byte(ipBits >> 24), byte(ipBits >> 16), byte(ipBits >> 8), byte(ipBits)})
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatalf("new writer: %v", err)
		}
		if err := w.Write(ev); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := w.Write(ev); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}

		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("new reader: %v", err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != 2 {
			t.Fatalf("decoded %d events, want 2", len(got))
		}
		for i, g := range got {
			if g.Seq != ev.Seq || !g.Time.Equal(ev.Time) || g.Type != ev.Type ||
				g.Actor != ev.Actor || g.Target != ev.Target || g.Post != ev.Post ||
				g.IP != ev.IP || g.ASN != ev.ASN || g.Client != ev.Client ||
				g.Outcome != ev.Outcome || g.API != ev.API ||
				g.Enforcement != ev.Enforcement || g.Duplicate != ev.Duplicate {
				t.Fatalf("event %d mutated in round trip:\n got %+v\nwant %+v", i, g, ev)
			}
		}
	})
}

// FuzzReaderNoPanic feeds arbitrary bytes to the decoder after a valid
// header: malformed streams must produce errors, never panics or runaway
// allocations.
func FuzzReaderNoPanic(f *testing.F) {
	f.Add([]byte{opEvent, 1, 2, 3})
	f.Add([]byte{opString, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{7, 7, 7})
	// Truncated-capture seeds: a well-formed stream cut at every prefix
	// of its final record, the exact shape an interrupted run leaves
	// behind. The decoder must surface these as *TruncatedError (checked
	// in the body below), never as a panic or a silent clean EOF plus
	// garbage.
	for _, body := range truncatedSeedBodies() {
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		stream := append(append([]byte(nil), magic...), body...)
		r, err := NewReader(bytes.NewReader(stream))
		if err != nil {
			return
		}
		_, err = r.ReadAll()
		var trunc *TruncatedError
		if errors.As(err, &trunc) {
			// A truncation report must stay self-consistent: the offset
			// points inside the body and the event count matches what
			// was actually handed back.
			if trunc.Offset < int64(len(magic)) || trunc.Offset > int64(len(stream)) {
				t.Fatalf("truncation offset %d outside stream [%d, %d]", trunc.Offset, len(magic), len(stream))
			}
			if trunc.Events != r.Events() {
				t.Fatalf("truncation reports %d events, reader decoded %d", trunc.Events, r.Events())
			}
		}
	})
}

// truncatedSeedBodies encodes a small valid stream and returns it cut at
// several mid-record points (magic stripped: the fuzz harness prepends
// it).
func truncatedSeedBodies() [][]byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		panic(err)
	}
	ev := platform.Event{
		Seq: 1, Time: time.Unix(0, 1504224000000000000).UTC(),
		Type: platform.ActionLike, Actor: 10, Target: 20, Post: 30,
		ASN: 64496, Client: "mobile-official",
		Outcome: platform.OutcomeUnavailable,
	}
	w.Write(ev)
	ev.Seq, ev.Outcome = 2, platform.OutcomeAllowed
	w.Write(ev)
	w.Flush()
	full := buf.Bytes()[len(magic):]
	var bodies [][]byte
	for _, cut := range []int{1, len(full) / 2, len(full) - 5, len(full) - 1} {
		if cut > 0 && cut < len(full) {
			bodies = append(bodies, append([]byte(nil), full[:cut]...))
		}
	}
	return bodies
}
