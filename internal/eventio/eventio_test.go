package eventio

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/socialgraph"
)

func sampleEvents() []platform.Event {
	return []platform.Event{
		{
			Seq: 1, Time: clock.Epoch, Type: platform.ActionLogin,
			Actor: 10, IP: netip.MustParseAddr("10.1.2.3"), ASN: 1001,
			Client: "mobile-spoof-instastar", API: platform.APIPrivate,
			Outcome: platform.OutcomeAllowed,
		},
		{
			Seq: 2, Time: clock.Epoch.Add(90 * time.Minute), Type: platform.ActionLike,
			Actor: 10, Target: 20, Post: 7, IP: netip.MustParseAddr("10.1.2.3"),
			ASN: 1001, Client: "mobile-spoof-instastar", API: platform.APIPrivate,
			Outcome: platform.OutcomeBlocked,
		},
		{
			Seq: 3, Time: clock.Epoch.Add(2 * time.Hour), Type: platform.ActionFollow,
			Actor: 11, Target: 21, Client: "mobile-official", API: platform.APIOAuth,
			Outcome: platform.OutcomeAllowed, Duplicate: true,
		},
		{
			Seq: 4, Time: clock.Epoch.Add(26 * time.Hour), Type: platform.ActionUnfollow,
			Actor: 10, Target: 21, Client: "", Outcome: platform.OutcomeAllowed,
			Enforcement: true,
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := sampleEvents()
	for _, ev := range events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(events)) {
		t.Fatalf("count %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d mismatch:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	t.Parallel()
	check := func(seq uint32, typ, outcome uint8, actor, target, post uint32, asn uint16, hours uint16, flags uint8) bool {
		ev := platform.Event{
			Seq:         uint64(seq),
			Time:        clock.Epoch.Add(time.Duration(hours) * time.Hour),
			Type:        platform.ActionType(typ % 6),
			Actor:       socialgraph.AccountID(actor),
			Target:      socialgraph.AccountID(target),
			Post:        socialgraph.PostID(post),
			ASN:         netsim.ASN(asn),
			Client:      "client-" + string(rune('a'+typ%5)),
			API:         platform.APIKind(flags & 1),
			Outcome:     platform.Outcome(outcome % 4),
			Enforcement: flags&2 != 0,
			Duplicate:   flags&4 != 0,
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Write(ev)
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		return err == nil && got == ev
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringTableDeduplicates(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	ev := sampleEvents()[0]
	for i := 0; i < 1000; i++ {
		ev.Seq = uint64(i)
		w.Write(ev)
	}
	w.Flush()
	// With the fingerprint interned once, 1000 events should take well
	// under 40 bytes each.
	if per := buf.Len() / 1000; per > 40 {
		t.Fatalf("encoding %d bytes/event, string table not working", per)
	}
	r, _ := NewReader(&buf)
	got, err := r.ReadAll()
	if err != nil || len(got) != 1000 {
		t.Fatalf("decode: %d events, err %v", len(got), err)
	}
	if got[999].Client != ev.Client {
		t.Fatal("string ref resolution broken")
	}
}

func TestBadMagic(t *testing.T) {
	t.Parallel()
	if _, err := NewReader(strings.NewReader("NOTFSEV stream")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(strings.NewReader("")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(sampleEvents()[0])
	w.Flush()
	// Chop mid-record.
	raw := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if err == nil {
		t.Fatal("truncated record decoded without error")
	}
	var trunc *TruncatedError
	if !errors.As(err, &trunc) {
		t.Fatalf("err = %v (%T), want *TruncatedError", err, err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation does not unwrap to io.ErrUnexpectedEOF: %v", err)
	}
}

// TestTruncatedErrorDetails pins the diagnostic contract fsevdump
// relies on: a capture cut mid-record still yields every complete event
// before the cut, and the error then names the event count and the byte
// offset where the partial record begins.
func TestTruncatedErrorDetails(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	events := sampleEvents()
	for _, ev := range events {
		w.Write(ev)
	}
	w.Flush()
	raw := buf.Bytes()[:buf.Len()-2] // cut inside the final record

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if len(got) != len(events)-1 {
		t.Fatalf("decoded %d events before the cut, want %d", len(got), len(events)-1)
	}
	var trunc *TruncatedError
	if !errors.As(err, &trunc) {
		t.Fatalf("err = %v (%T), want *TruncatedError", err, err)
	}
	if trunc.Events != uint64(len(events)-1) || trunc.Events != r.Events() {
		t.Errorf("Events = %d (reader says %d), want %d", trunc.Events, r.Events(), len(events)-1)
	}
	if trunc.Offset < int64(len(magic)) || trunc.Offset >= int64(len(raw)) {
		t.Errorf("Offset = %d outside the stream body [%d, %d)", trunc.Offset, len(magic), len(raw))
	}
	msg := trunc.Error()
	for _, want := range []string{"truncated", "event 3", "byte offset"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}

// TestCorruptOpcodeNamesPosition checks that a garbage byte at a record
// boundary is reported with the decode position, not as a bare opcode
// error.
func TestCorruptOpcodeNamesPosition(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(sampleEvents()[0])
	w.Flush()
	buf.WriteByte(0x7f) // invalid opcode after one valid event

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if len(got) != 1 {
		t.Fatalf("decoded %d events before the corruption, want 1", len(got))
	}
	if err == nil || !strings.Contains(err.Error(), "unknown opcode 127 at event 1") {
		t.Fatalf("err = %v, want unknown-opcode error naming event 1", err)
	}
}

// TestUnavailableOutcomeRoundTrip pins the bit-5 outcome encoding: the
// fault-injected outcome survives the codec, and — critically for the
// faults-off golden — events with classic outcomes encode exactly as
// they always did.
func TestUnavailableOutcomeRoundTrip(t *testing.T) {
	t.Parallel()
	ev := sampleEvents()[1]
	ev.Outcome = platform.OutcomeUnavailable
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(ev)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Outcome != platform.OutcomeUnavailable {
		t.Fatalf("outcome %v, want unavailable", got.Outcome)
	}
	if got != ev {
		t.Fatalf("event mutated in round trip:\n got %+v\nwant %+v", got, ev)
	}
}

func TestAttachCapturesLiveStream(t *testing.T) {
	t.Parallel()
	var log platform.EventLog
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Attach(&log)
	for i := 0; i < 5; i++ {
		log.Emit(platform.Event{Time: clock.Epoch, Type: platform.ActionLike, Actor: 1, Client: "c"})
	}
	w.Flush()
	r, _ := NewReader(&buf)
	got, err := r.ReadAll()
	if err != nil || len(got) != 5 {
		t.Fatalf("captured %d events, err %v", len(got), err)
	}
	// Seq was assigned by the log.
	if got[4].Seq != 5 {
		t.Fatalf("seq %d", got[4].Seq)
	}
}

func TestWriteJSONL(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d", len(lines))
	}
	if !strings.Contains(lines[0], `"type":"login"`) {
		t.Fatalf("line 0: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"outcome":"blocked"`) {
		t.Fatalf("line 1: %s", lines[1])
	}
	if !strings.Contains(lines[3], `"enforcement":true`) {
		t.Fatalf("line 3: %s", lines[3])
	}
	// IP omitted when invalid.
	if strings.Contains(lines[2], `"ip"`) {
		t.Fatalf("line 2 has IP: %s", lines[2])
	}
}

func TestReaderStopsAtEOFCleanly(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	events := sampleEvents()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		ev.Seq = uint64(i)
		w.Write(ev)
	}
	w.Flush()
	b.SetBytes(int64(buf.Len() / max(b.N, 1)))
}

func BenchmarkReaderThroughput(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	ev := sampleEvents()[1]
	for i := 0; i < 100000; i++ {
		ev.Seq = uint64(i)
		w.Write(ev)
	}
	w.Flush()
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewReader(bytes.NewReader(raw))
		n := 0
		for {
			if _, err := r.Next(); err != nil {
				break
			}
			n++
		}
		if n != 100000 {
			b.Fatalf("decoded %d", n)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestWriterResumeContinuesStream splits a stream at every record
// boundary and proves the handoff property behind internal/durable:
// decode the prefix, hand its string table and event count to
// NewWriterResume, write the remaining events, and the concatenation
// of prefix and continuation must be byte-identical to the one-writer
// stream — string ids, sequence numbers, everything.
func TestWriterResumeContinuesStream(t *testing.T) {
	t.Parallel()
	events := sampleEvents()
	var full bytes.Buffer
	w, err := NewWriter(&full)
	if err != nil {
		t.Fatal(err)
	}
	// Per-event flush marks each record boundary in the full stream
	// (the first flush lands the magic header).
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	bounds := []int{full.Len()}
	for _, ev := range events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, full.Len())
	}
	for cut := 0; cut <= len(events); cut++ {
		prefix := full.Bytes()[:bounds[cut]]
		r, err := NewReader(bytes.NewReader(prefix))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("cut %d: prefix decode: %v", cut, err)
			}
		}
		if r.Events() != uint64(cut) {
			t.Fatalf("cut %d: prefix holds %d events", cut, r.Events())
		}
		var tail bytes.Buffer
		rw := NewWriterResume(&tail, r.Strings(), r.Events())
		for _, ev := range events[cut:] {
			if err := rw.Write(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := rw.Flush(); err != nil {
			t.Fatal(err)
		}
		if rw.Count() != uint64(len(events)) {
			t.Fatalf("cut %d: resumed count %d, want %d", cut, rw.Count(), len(events))
		}
		joined := append(append([]byte(nil), prefix...), tail.Bytes()...)
		if !bytes.Equal(joined, full.Bytes()) {
			t.Fatalf("cut %d: prefix+continuation differs from one-writer stream", cut)
		}
	}
}
