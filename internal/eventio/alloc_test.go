package eventio

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"footsteps/internal/platform"
)

// Steady-state allocation budgets for the FSEV1 codec, enforced below.
// "Steady state" means the client fingerprint is already in the string
// table and the record scratch has grown to record size — every event
// after a stream's first few. Raise a budget only with a profile showing
// why — see docs/PERFORMANCE.md.
const (
	allocBudgetWriterWrite = 0
	allocBudgetReaderNext  = 0
)

func allocEvent(seq uint64) platform.Event {
	return platform.Event{
		Seq:     seq,
		Time:    time.Unix(0, int64(seq)*1e9).UTC(),
		Type:    platform.ActionLike,
		Actor:   7,
		Target:  9,
		Post:    42,
		IP:      netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		ASN:     64512,
		Client:  "instagram-private-api/1.2",
		API:     platform.APIPrivate,
		Outcome: platform.OutcomeAllowed,
	}
}

// TestAllocBudgetWriterWrite pins Writer.Write at zero allocations per
// event once the string table and scratch are warm.
func TestAllocBudgetWriterWrite(t *testing.T) {
	w, err := NewWriter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(allocEvent(0)); err != nil {
		t.Fatal(err)
	}
	seq := uint64(1)
	got := testing.AllocsPerRun(100, func() {
		_ = w.Write(allocEvent(seq))
		seq++
	})
	if got > allocBudgetWriterWrite {
		t.Errorf("eventio.Writer.Write allocates %.1f/op in steady state, budget %d — record-scratch reuse regressed",
			got, allocBudgetWriterWrite)
	}
}

// TestAllocBudgetReaderNext pins Reader.Next at zero allocations per
// event record (string-table records amortize via the shared intern
// table and the reader's scratch buffer).
func TestAllocBudgetReaderNext(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	for i := uint64(0); i < n; i++ {
		if err := w.Write(allocEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Consume the string-table record and the first event outside the
	// measured window.
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(n-2, func() {
		if _, err := r.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
	})
	if got > allocBudgetReaderNext {
		t.Errorf("eventio.Reader.Next allocates %.1f/op in steady state, budget %d — per-record scratch reuse regressed",
			got, allocBudgetReaderNext)
	}
}
