// Package eventio persists platform event streams: a compact binary codec
// for bulk capture and a JSON-lines codec for interoperability.
//
// The binary format ("FSEV1") writes one varint-encoded record per event
// with an inline string table for client fingerprints, which repeat
// heavily — a 90-day capture compresses to a few bytes per event. Streams
// are append-only and self-delimiting, so a Reader can consume a capture
// while it is still being written.
package eventio

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"footsteps/internal/intern"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/socialgraph"
)

// magic identifies a binary event stream and its version.
var magic = []byte("FSEV1\n")

// ErrBadMagic is returned when a stream does not start with the format
// header.
var ErrBadMagic = errors.New("eventio: not a FSEV1 event stream")

// record opcodes.
const (
	opEvent  = 0 // an event record
	opString = 1 // a string-table addition (fingerprint)
)

// Writer encodes events to a binary stream. It is not safe for concurrent
// use; attach it to the single-threaded event log.
type Writer struct {
	w       *bufio.Writer
	strings map[string]uint64
	scratch []byte
	count   uint64
}

// NewWriter writes the header and returns a writer. Call Flush before
// closing the underlying file.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw, strings: make(map[string]uint64)}, nil
}

// NewWriterResume returns a writer that continues an existing stream
// after a crash or handoff: it writes no magic header, seeds the string
// table with the fingerprints the stream has already emitted (in table
// order, so ids 0..len-1 resolve identically), and starts the event
// count at events. Feed it the table a Reader collected over the
// retained prefix (Reader.Strings) and the records it emits concatenate
// onto that prefix to form one valid FSEV1 stream — byte-identical to
// what an uninterrupted writer would have produced.
func NewWriterResume(w io.Writer, strings []string, events uint64) *Writer {
	m := make(map[string]uint64, len(strings))
	for i, s := range strings {
		m[s] = uint64(i)
	}
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), strings: m, count: events}
}

// Attach subscribes the writer to an event log. Encoding errors are
// surfaced through Err after the fact (the log has no error channel);
// in practice they only occur when the underlying medium fails.
func (w *Writer) Attach(log *platform.EventLog) *Writer {
	log.Subscribe(func(ev platform.Event) { _ = w.Write(ev) })
	return w
}

func (w *Writer) putUvarint(v uint64) {
	w.scratch = binary.AppendUvarint(w.scratch[:0], v)
	w.w.Write(w.scratch)
}

// stringRef interns s, emitting a string-table record on first use.
func (w *Writer) stringRef(s string) uint64 {
	if id, ok := w.strings[s]; ok {
		return id
	}
	id := uint64(len(w.strings))
	w.strings[s] = id
	w.w.WriteByte(opString)
	w.putUvarint(uint64(len(s)))
	w.w.WriteString(s)
	return id
}

// Write encodes one event. The full record is assembled in the writer's
// scratch buffer — grown once to record size, then reused — and handed
// to the buffered writer in a single call, instead of re-slicing scratch
// and calling Write per varint. The emitted bytes are identical to the
// per-varint encoding, so existing captures and goldens are unaffected.
func (w *Writer) Write(ev platform.Event) error {
	clientRef := w.stringRef(ev.Client)
	buf := append(w.scratch[:0], opEvent)
	buf = binary.AppendUvarint(buf, ev.Seq)
	buf = binary.AppendUvarint(buf, uint64(ev.Time.UnixNano()))
	buf = binary.AppendUvarint(buf, uint64(ev.Type))
	buf = binary.AppendUvarint(buf, uint64(ev.Actor))
	buf = binary.AppendUvarint(buf, uint64(ev.Target))
	buf = binary.AppendUvarint(buf, uint64(ev.Post))
	var ipBits uint64
	if ev.IP.Is4() {
		b := ev.IP.As4()
		ipBits = uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	}
	buf = binary.AppendUvarint(buf, ipBits)
	buf = binary.AppendUvarint(buf, uint64(ev.ASN))
	buf = binary.AppendUvarint(buf, clientRef)
	var flags uint64
	if ev.Outcome == platform.OutcomeUnavailable {
		// Outcome codes above 3 do not fit the two original outcome
		// bits; unavailable rides a dedicated flag so pre-existing
		// captures decode byte-for-byte unchanged.
		flags |= 1 << 5
	} else {
		flags |= uint64(ev.Outcome) & 0x3
	}
	flags |= uint64(ev.API) << 2
	if ev.Enforcement {
		flags |= 1 << 3
	}
	if ev.Duplicate {
		flags |= 1 << 4
	}
	buf = binary.AppendUvarint(buf, flags)
	w.scratch = buf
	w.w.Write(buf)
	w.count++
	return nil
}

// Count returns the number of events written.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// StreamMagic returns the header bytes every FSEV1 stream begins with.
// Consumers that reassemble streams from framed storage (internal/
// durable) prepend it to the concatenated record bytes.
func StreamMagic() []byte { return append([]byte(nil), magic...) }

// TruncatedError reports a stream that ends (or corrupts) inside a
// record — the signature of an interrupted capture. Events counts the
// complete events decoded before the cut and Offset is the byte offset
// where the partial record begins, so tools can say exactly how much
// of the capture survived.
type TruncatedError struct {
	Events uint64 // complete events decoded before the cut
	Offset int64  // byte offset of the partial record
	Err    error  // the underlying decode failure
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("eventio: capture truncated at event %d (byte offset %d): %v", e.Events, e.Offset, e.Err)
}

// Unwrap exposes the underlying error for errors.Is/As.
func (e *TruncatedError) Unwrap() error { return e.Err }

// countingReader tracks how many bytes the buffered layer has pulled
// from the source, so the Reader can report precise truncation offsets.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Reader decodes a binary event stream.
type Reader struct {
	src     *countingReader
	r       *bufio.Reader
	strings []string
	scratch []byte // reusable string-record read buffer
	events  uint64
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReaderSize(cr, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	for i := range magic {
		if head[i] != magic[i] {
			return nil, ErrBadMagic
		}
	}
	return &Reader{src: cr, r: br}, nil
}

// Events returns the number of complete events decoded so far.
func (r *Reader) Events() uint64 { return r.events }

// Strings returns a copy of the string table collected so far, in id
// order. Feeding it to NewWriterResume lets a new writer continue the
// stream with identical string references.
func (r *Reader) Strings() []string {
	return append([]string(nil), r.strings...)
}

// offset returns the stream offset of the next undecoded byte.
func (r *Reader) offset() int64 { return r.src.n - int64(r.r.Buffered()) }

// truncated wraps a mid-record decode failure. A bare io.EOF here means
// the stream was cut inside a record, so it is promoted to
// io.ErrUnexpectedEOF before wrapping.
func (r *Reader) truncated(start int64, what string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return &TruncatedError{Events: r.events, Offset: start, Err: fmt.Errorf("%s: %w", what, err)}
}

// Next returns the next event, or io.EOF at a clean end of stream. A
// stream that ends inside a record yields a *TruncatedError.
func (r *Reader) Next() (platform.Event, error) {
	for {
		op, err := r.r.ReadByte()
		if err != nil {
			// io.EOF at a record boundary is a clean end of stream.
			return platform.Event{}, err
		}
		start := r.offset() - 1
		switch op {
		case opString:
			n, err := binary.ReadUvarint(r.r)
			if err != nil {
				return platform.Event{}, r.truncated(start, "string length", err)
			}
			if n > 1<<16 {
				return platform.Event{}, fmt.Errorf("eventio: implausible string length %d at event %d (byte offset %d)", n, r.events, start)
			}
			// Read into the reader's reusable scratch, then intern. The
			// writer emits each distinct string once per stream, so within
			// one stream interning never dedups — but decoding many
			// captures (or re-reading one) of the same world resolves the
			// same fingerprints to one shared copy instead of fresh
			// allocations per stream.
			if cap(r.scratch) < int(n) {
				r.scratch = make([]byte, n)
			}
			buf := r.scratch[:n]
			if _, err := io.ReadFull(r.r, buf); err != nil {
				return platform.Event{}, r.truncated(start, "string body", err)
			}
			r.strings = append(r.strings, intern.Bytes(buf))
		case opEvent:
			ev, err := r.readEvent(start)
			if err != nil {
				return ev, err
			}
			r.events++
			return ev, nil
		default:
			return platform.Event{}, fmt.Errorf("eventio: unknown opcode %d at event %d (byte offset %d)", op, r.events, start)
		}
	}
}

func (r *Reader) readEvent(start int64) (platform.Event, error) {
	var ev platform.Event
	var fields [10]uint64
	for i := range fields {
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			return ev, r.truncated(start, "event record", err)
		}
		fields[i] = v
	}
	ev.Seq = fields[0]
	ev.Time = time.Unix(0, int64(fields[1])).UTC()
	ev.Type = platform.ActionType(fields[2])
	ev.Actor = socialgraph.AccountID(fields[3])
	ev.Target = socialgraph.AccountID(fields[4])
	ev.Post = socialgraph.PostID(fields[5])
	if ip := fields[6]; ip != 0 {
		ev.IP = netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)})
	}
	ev.ASN = netsim.ASN(fields[7])
	if ref := fields[8]; ref < uint64(len(r.strings)) {
		ev.Client = r.strings[ref]
	} else {
		return ev, fmt.Errorf("eventio: dangling string ref %d", fields[8])
	}
	flags := fields[9]
	ev.Outcome = platform.Outcome(flags & 0x3)
	if flags&(1<<5) != 0 {
		ev.Outcome = platform.OutcomeUnavailable
	}
	ev.API = platform.APIKind((flags >> 2) & 0x1)
	ev.Enforcement = flags&(1<<3) != 0
	ev.Duplicate = flags&(1<<4) != 0
	return ev, nil
}

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]platform.Event, error) {
	var out []platform.Event
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

// jsonEvent is the interchange shape for the JSONL codec.
type jsonEvent struct {
	Seq         uint64 `json:"seq"`
	Time        string `json:"time"`
	Type        string `json:"type"`
	Actor       uint64 `json:"actor"`
	Target      uint64 `json:"target,omitempty"`
	Post        uint64 `json:"post,omitempty"`
	IP          string `json:"ip,omitempty"`
	ASN         uint32 `json:"asn,omitempty"`
	Client      string `json:"client,omitempty"`
	API         string `json:"api"`
	Outcome     string `json:"outcome"`
	Enforcement bool   `json:"enforcement,omitempty"`
	Duplicate   bool   `json:"duplicate,omitempty"`
}

// WriteJSONL encodes events as JSON lines, one event per line.
func WriteJSONL(w io.Writer, events []platform.Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		je := jsonEvent{
			Seq: ev.Seq, Time: ev.Time.UTC().Format(time.RFC3339Nano),
			Type: ev.Type.String(), Actor: uint64(ev.Actor),
			Target: uint64(ev.Target), Post: uint64(ev.Post),
			ASN: uint32(ev.ASN), Client: ev.Client,
			API: ev.API.String(), Outcome: ev.Outcome.String(),
			Enforcement: ev.Enforcement, Duplicate: ev.Duplicate,
		}
		if ev.IP.IsValid() {
			je.IP = ev.IP.String()
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}
