package simtest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"testing"

	"footsteps/internal/core"
	"footsteps/internal/eventio"
	"footsteps/internal/faults"
	"footsteps/internal/platform"
	"footsteps/internal/telemetry"
)

// faultedConfig is smallConfig with the "mixed" built-in scenario: all
// five fault kinds firing inside the six-day window.
func faultedConfig(seed uint64, workers int) core.Config {
	cfg := smallConfig(seed, workers)
	cfg.Faults = faults.MustScenario("mixed")
	return cfg
}

// TestFaultsOffGoldenStream pins the faults-off event stream to the
// exact bytes it produced before the fault-injection layer existed.
// The fault hook sits on the platform's hot request path, so this is
// the regression proving a nil injector is not merely "deterministic"
// but inert: same length, same sha256, bit for bit.
//
// If this fails after an intentional stream-format change, regenerate
// with:
//
//	go test ./internal/simtest -run TestFaultsOffGoldenStream -v
//
// and copy the printed hash/length here — but only after confirming the
// change is meant to move faults-off bytes (see docs/FAULTS.md).
func TestFaultsOffGoldenStream(t *testing.T) {
	t.Parallel()
	const (
		wantHash = "fb3cf3641ce581995b04def49af3e7c21d2ab9af81610e787daee77ad9cec51f"
		wantLen  = 677665
	)
	got := Capture(smallConfig(1, 0))
	sum := sha256.Sum256(got)
	gotHash := hex.EncodeToString(sum[:])
	if len(got) != wantLen || gotHash != wantHash {
		t.Fatalf("faults-off stream moved:\n got  %s (len %d)\n want %s (len %d)",
			gotHash, len(got), wantHash, wantLen)
	}
}

// TestFaultedStreamDeterminism is the tentpole contract for injection:
// with a fault profile active, the stream must still be byte-identical
// across worker counts and across fresh runs — fault verdicts are pure
// functions of (seed, request), not of scheduling.
func TestFaultedStreamDeterminism(t *testing.T) {
	t.Parallel()
	want := Capture(faultedConfig(1, 0))

	// Vacuity guard: the scenario must actually have injected faults,
	// otherwise worker-equality proves nothing about the injector.
	if n := countUnavailable(t, want); n < 50 {
		t.Fatalf("mixed scenario emitted only %d unavailable events; faulted comparison would be vacuous", n)
	}

	for _, workers := range []int{1, 4, 8} {
		got := Capture(faultedConfig(1, workers))
		if !bytes.Equal(want, got) {
			t.Errorf("workers=%d: faulted stream diverged from sequential run: %s != %s (lengths %d vs %d)",
				workers, Hash(got), Hash(want), len(got), len(want))
		}
	}
	if again := Capture(faultedConfig(1, 0)); !bytes.Equal(want, again) {
		t.Errorf("same faulted config diverged across fresh runs: %s != %s", Hash(want), Hash(again))
	}
}

// TestFaultedStreamDiffersFromBaseline guards against the opposite
// failure: an injector that validates and wires but never actually
// changes anything. The faulted stream must not equal the clean one.
func TestFaultedStreamDiffersFromBaseline(t *testing.T) {
	t.Parallel()
	clean := Capture(smallConfig(2, 0))
	faulted := Capture(faultedConfig(2, 0))
	if bytes.Equal(clean, faulted) {
		t.Fatal("mixed fault scenario produced a byte-identical stream to the clean run; injection is dead")
	}
}

// TestFaultRetryProperties checks the client-resilience safety
// properties on a full faulted run with graph fidelity on:
//
//  1. No double emission: retried actions never create a second
//     effective follow edge — for every (actor, target) pair the running
//     follow balance (non-duplicate allowed follows minus non-duplicate
//     allowed unfollows, enforcement included) stays in {0, 1}.
//  2. No double counting: rate-limit accounting never exceeds the
//     configured hourly cap — per (actor, hour, API) the number of
//     quota-consuming events (allowed or blocked; unavailable and
//     rate-limited requests consume none) is at most the API's limit.
//     Storms only ever tighten the cap, so the ordinary limit bounds
//     every bucket.
//  3. The resilience machinery actually ran: faults were injected,
//     retries were scheduled, and re-logins were attempted.
func TestFaultRetryProperties(t *testing.T) {
	t.Parallel()
	cfg := faultedConfig(5, 4)
	cfg.GraphWrites = true
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	stream := Capture(cfg)

	limits := map[platform.APIKind]int{
		platform.APIPrivate: platform.DefaultConfig().PrivateHourlyLimit,
		platform.APIOAuth:   platform.DefaultConfig().OAuthHourlyLimit,
	}

	type pair struct{ actor, target platform.AccountID }
	type bucket struct {
		actor platform.AccountID
		hour  int64
		api   platform.APIKind
	}
	balance := make(map[pair]int)
	quota := make(map[bucket]int)

	r, err := eventio.NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	unavailable := 0
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Outcome == platform.OutcomeUnavailable {
			unavailable++
		}

		// Property 1: follow-edge balance.
		if ev.Outcome == platform.OutcomeAllowed && !ev.Duplicate {
			switch ev.Type {
			case platform.ActionFollow:
				k := pair{ev.Actor, ev.Target}
				balance[k]++
				if balance[k] > 1 {
					t.Fatalf("double follow edge: actor %d -> target %d reached balance %d at %s",
						ev.Actor, ev.Target, balance[k], ev.Time)
				}
			case platform.ActionUnfollow:
				k := pair{ev.Actor, ev.Target}
				balance[k]--
				if balance[k] < 0 {
					t.Fatalf("unfollow without follow: actor %d -> target %d reached balance %d at %s",
						ev.Actor, ev.Target, balance[k], ev.Time)
				}
			}
		}

		// Property 2: rate-limit accounting. Only post-limiter outcomes
		// consume quota; enforcement actions and logins bypass it.
		if ev.Type != platform.ActionLogin && !ev.Enforcement &&
			(ev.Outcome == platform.OutcomeAllowed || ev.Outcome == platform.OutcomeBlocked) {
			b := bucket{ev.Actor, ev.Time.Unix() / 3600, ev.API}
			quota[b]++
			if lim := limits[ev.API]; lim > 0 && quota[b] > lim {
				t.Fatalf("rate-limit over-count: actor %d consumed %d quota events in hour %d (api %d, limit %d)",
					ev.Actor, quota[b], b.hour, ev.API, lim)
			}
		}
	}

	// Property 3: non-vacuity, from telemetry.
	c := reg.Snapshot().Counters
	if unavailable == 0 {
		t.Error("no unavailable events in faulted stream; properties above are vacuous")
	}
	if c["faults.injected.unavailable"] == 0 {
		t.Error("faults.injected.unavailable counter is zero under the mixed scenario")
	}
	if c["faults.injected.session_flap"] == 0 {
		t.Error("faults.injected.session_flap counter is zero under the mixed scenario")
	}
	if c["platform.ratelimit.storm_denied"] == 0 {
		t.Error("no storm-attributed rate-limit denials under the mixed scenario")
	}
	retries, relogins := int64(0), int64(0)
	for k, v := range c {
		if strings.HasPrefix(k, "aas.") && strings.HasSuffix(k, ".retries.scheduled") {
			retries += v
		}
		if strings.HasPrefix(k, "aas.") && strings.HasSuffix(k, ".relogin.attempts") {
			relogins += v
		}
	}
	if retries == 0 {
		t.Error("no AAS retries were scheduled under the mixed scenario")
	}
	if relogins == 0 {
		t.Error("no AAS re-logins were attempted under the mixed scenario")
	}
}

// TestFaultedTelemetryWorkerStable asserts the fault/retry counters are
// themselves deterministic: the same faulted config yields the same
// counter values at any worker count (the report's resilience section
// is part of the reproducible output).
func TestFaultedTelemetryWorkerStable(t *testing.T) {
	t.Parallel()
	counters := func(workers int) string {
		cfg := faultedConfig(9, workers)
		reg := telemetry.NewRegistry()
		cfg.Telemetry = reg
		Capture(cfg)
		snap := reg.Snapshot().Counters
		var b strings.Builder
		for _, k := range sortedKeys(snap) {
			if strings.HasPrefix(k, "faults.") || strings.Contains(k, ".retries.") ||
				strings.Contains(k, ".breaker.") || strings.Contains(k, ".relogin.") ||
				strings.Contains(k, ".shed.") {
				fmt.Fprintf(&b, "%s=%d\n", k, snap[k])
			}
		}
		return b.String()
	}
	want := counters(0)
	if want == "" {
		t.Fatal("no fault/resilience counters recorded; comparison is vacuous")
	}
	for _, workers := range []int{4, 8} {
		if got := counters(workers); got != want {
			t.Errorf("workers=%d: fault counters diverged from sequential run:\n--- sequential\n%s--- workers=%d\n%s",
				workers, want, workers, got)
		}
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// countUnavailable decodes a stream and counts OutcomeUnavailable events.
func countUnavailable(t *testing.T, stream []byte) int {
	t.Helper()
	r, err := eventio.NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Outcome == platform.OutcomeUnavailable {
			n++
		}
	}
}
