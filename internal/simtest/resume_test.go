package simtest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"footsteps/internal/core"
	"footsteps/internal/eventio"
	"footsteps/internal/persistence"
)

// These tests lock in the resume-equivalence invariant (see
// docs/PERSISTENCE.md): a world restored from a day-N snapshot must
// produce, for the remainder of the window, an FSEV1 event stream
// byte-identical to the corresponding suffix of a straight-through run —
// and must end in byte-identical world state. Like the worker/shard
// tests, the comparison is over encoded bytes, so any divergence in
// event content, order, timing, or final state fails loudly.

// resumeConfig is smallConfig stretched to eight days so the snapshot
// days {1, 3, 7} from the issue's matrix all fall inside the window.
func resumeConfig(seed uint64, workers int) core.Config {
	cfg := smallConfig(seed, workers)
	cfg.Days = 8
	return cfg
}

// captureWithSnapshots runs a full world day by day, writing the FSEV1
// stream and, at each requested day boundary, an FSNAP1 snapshot.
func captureWithSnapshots(t *testing.T, cfg core.Config, snaps map[int]*bytes.Buffer) []byte {
	t.Helper()
	var buf bytes.Buffer
	wr, err := eventio.NewWriter(&buf)
	if err != nil {
		t.Fatalf("new writer: %v", err)
	}
	w := core.NewWorld(cfg)
	wr.Attach(w.Plat.Log())
	w.RunAll()
	for d := 1; d <= cfg.Days; d++ {
		if err := w.RunDays(1); err != nil {
			t.Fatalf("run day %d: %v", d, err)
		}
		if out, ok := snaps[d]; ok {
			if err := w.Snapshot(out); err != nil {
				t.Fatalf("snapshot day %d: %v", d, err)
			}
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// captureResumed restores a world from snapshot bytes, attaches a fresh
// recorder, runs out the window, and returns the resumed FSEV1 stream
// plus a final end-of-run snapshot for state comparison.
func captureResumed(t *testing.T, cfg core.Config, snap []byte) (stream, finalState []byte) {
	t.Helper()
	w, err := core.RestoreWorld(cfg, bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	var buf bytes.Buffer
	wr, err := eventio.NewWriter(&buf)
	if err != nil {
		t.Fatalf("new writer: %v", err)
	}
	wr.Attach(w.Plat.Log())
	if err := w.RunDays(cfg.Days - w.DaysRun()); err != nil {
		t.Fatalf("run resumed days: %v", err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	var final bytes.Buffer
	if err := w.Snapshot(&final); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	return buf.Bytes(), final.Bytes()
}

// suffixAfter re-encodes, with a fresh writer (and therefore a fresh
// string table, matching a resumed recorder), the events of a full
// stream that happen strictly after the cut instant.
func suffixAfter(t *testing.T, full []byte, cut time.Time) []byte {
	t.Helper()
	r, err := eventio.NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("read full stream: %v", err)
	}
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("decode full stream: %v", err)
	}
	var buf bytes.Buffer
	wr, err := eventio.NewWriter(&buf)
	if err != nil {
		t.Fatalf("new suffix writer: %v", err)
	}
	n := 0
	for _, ev := range evs {
		if !ev.Time.After(cut) {
			continue
		}
		if err := wr.Write(ev); err != nil {
			t.Fatalf("re-encode suffix: %v", err)
		}
		n++
	}
	if err := wr.Flush(); err != nil {
		t.Fatalf("flush suffix: %v", err)
	}
	if n < 100 {
		t.Fatalf("suffix after %v has only %d events; comparison would be vacuous", cut, n)
	}
	return buf.Bytes()
}

// snapshotInstant reads the cut instant out of a snapshot's header.
func snapshotInstant(t *testing.T, snap []byte) time.Time {
	t.Helper()
	h, _, err := persistence.DecodeBytes(snap)
	if err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	return h.Now
}

// TestResumeEquivalence is the tentpole invariant at its simplest: for
// snapshots taken at days 1, 3, and 7 of a straight-through run, the
// restored world replays the exact remaining event bytes and lands on
// the exact final state.
func TestResumeEquivalence(t *testing.T) {
	t.Parallel()
	cfg := resumeConfig(1, 0)
	snaps := map[int]*bytes.Buffer{1: {}, 3: {}, 7: {}}
	baseline := captureWithSnapshots(t, cfg, snaps)
	if n := countEvents(t, baseline); n < 1000 {
		t.Fatalf("baseline produced only %d events; comparison would be vacuous", n)
	}
	// The straight-through day-chunked run must match Capture's single
	// RunFor, otherwise the baseline itself is suspect.
	if whole := Capture(cfg); !bytes.Equal(whole, baseline) {
		t.Fatalf("day-chunked run diverged from single-run capture: hash %s != %s",
			Hash(baseline), Hash(whole))
	}
	for day, snap := range snaps {
		day, snap := day, snap
		t.Run(fmt.Sprintf("day=%d", day), func(t *testing.T) {
			t.Parallel()
			want := suffixAfter(t, baseline, snapshotInstant(t, snap.Bytes()))
			got, _ := captureResumed(t, cfg, snap.Bytes())
			if !bytes.Equal(want, got) {
				t.Errorf("resumed stream diverged from straight-through suffix: hash %s != %s (lengths %d vs %d)",
					Hash(got), Hash(want), len(got), len(want))
			}
		})
	}
}

// TestResumeAcrossShardsAndWorkers restores one day-3 snapshot at every
// (shards, workers) combination and demands the identical suffix and
// final state from each: concurrency knobs stay pure performance knobs
// across a checkpoint boundary.
func TestResumeAcrossShardsAndWorkers(t *testing.T) {
	t.Parallel()
	cfg := resumeConfig(2, 0)
	snaps := map[int]*bytes.Buffer{3: {}}
	baseline := captureWithSnapshots(t, cfg, snaps)
	snap := snaps[3].Bytes()
	want := suffixAfter(t, baseline, snapshotInstant(t, snap))

	// Final state after a straight-through resumed run at the reference
	// configuration anchors the cross-matrix state comparison.
	refStream, refFinal := captureResumed(t, cfg, snap)
	if !bytes.Equal(want, refStream) {
		t.Fatalf("reference resume diverged: hash %s != %s", Hash(refStream), Hash(want))
	}

	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 4, 8} {
			shards, workers := shards, workers
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				t.Parallel()
				rcfg := cfg
				rcfg.Shards = shards
				rcfg.Workers = workers
				got, final := captureResumed(t, rcfg, snap)
				if !bytes.Equal(want, got) {
					t.Errorf("resumed stream diverged: hash %s != %s (lengths %d vs %d)",
						Hash(got), Hash(want), len(got), len(want))
				}
				if !bytes.Equal(refFinal, final) {
					t.Errorf("final world state diverged: hash %s != %s (lengths %d vs %d)",
						Hash(final), Hash(refFinal), len(final), len(refFinal))
				}
			})
		}
	}
}

// TestResumeEquivalenceFaulted repeats the invariant with the mixed
// fault scenario live: retry queues, breaker positions, and fault
// windows must all survive the checkpoint.
func TestResumeEquivalenceFaulted(t *testing.T) {
	t.Parallel()
	cfg := faultedConfig(3, 0)
	cfg.Days = 8
	snaps := map[int]*bytes.Buffer{3: {}}
	baseline := captureWithSnapshots(t, cfg, snaps)
	snap := snaps[3].Bytes()
	want := suffixAfter(t, baseline, snapshotInstant(t, snap))
	for _, workers := range []int{0, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			rcfg := cfg
			rcfg.Workers = workers
			got, _ := captureResumed(t, rcfg, snap)
			if !bytes.Equal(want, got) {
				t.Errorf("faulted resume diverged: hash %s != %s (lengths %d vs %d)",
					Hash(got), Hash(want), len(got), len(want))
			}
		})
	}
}

// TestRestoreRejectsMismatch covers the guarded failure paths: a
// snapshot restored against the wrong seed or a semantically different
// config must fail with a typed MismatchError naming the field, never
// silently produce a diverging world.
func TestRestoreRejectsMismatch(t *testing.T) {
	t.Parallel()
	cfg := resumeConfig(4, 0)
	snaps := map[int]*bytes.Buffer{1: {}}
	captureWithSnapshots(t, cfg, snaps)
	snap := snaps[1].Bytes()

	wrongSeed := cfg
	wrongSeed.Seed = 99
	var mm *persistence.MismatchError
	if _, err := core.RestoreWorld(wrongSeed, bytes.NewReader(snap)); !errors.As(err, &mm) || mm.Field != "seed" {
		t.Errorf("wrong seed: want MismatchError{Field: seed}, got %v", err)
	}

	wrongCfg := cfg
	wrongCfg.Days = cfg.Days + 1
	mm = nil
	if _, err := core.RestoreWorld(wrongCfg, bytes.NewReader(snap)); !errors.As(err, &mm) || mm.Field != "config fingerprint" {
		t.Errorf("wrong config: want MismatchError{Field: config fingerprint}, got %v", err)
	}

	// Performance knobs are excluded from the fingerprint on purpose.
	perfCfg := cfg
	perfCfg.Workers = 8
	perfCfg.Shards = 16
	if _, err := core.RestoreWorld(perfCfg, bytes.NewReader(snap)); err != nil {
		t.Errorf("worker/shard change must not invalidate a snapshot, got %v", err)
	}

	// A truncated checkpoint must surface a TruncatedError with the
	// failing offset, like fsevdump does for event logs.
	var te *persistence.TruncatedError
	if _, err := core.RestoreWorld(cfg, bytes.NewReader(snap[:len(snap)/2])); !errors.As(err, &te) {
		t.Errorf("truncated snapshot: want TruncatedError, got %v", err)
	} else if te.Offset <= 0 || te.Offset > int64(len(snap)) {
		t.Errorf("truncated snapshot: implausible offset %d", te.Offset)
	}
}
