package simtest

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"footsteps/internal/core"
	"footsteps/internal/eventio"
	"footsteps/internal/server"
	"footsteps/internal/wire"
)

// These tests extend the determinism harness to the network front end
// (internal/server): a world driven through the library path — ServeTick
// plus Executor.Apply at scripted sim instants — must produce the exact
// FSEV1 bytes that re-driving its FING1 ingress log into a fresh world
// produces, for any shard count × worker count. This is the contract
// that makes a serve session auditable: record the ingress, replay it,
// and the whole event stream (organic traffic interleaved with wire
// traffic) reproduces bit for bit.

// ingressRun is one library-driven serve session: the event stream it
// emitted and the ingress log it recorded.
type ingressRun struct {
	stream []byte // FSEV1 bytes
	log    []byte // FING1 bytes
}

// ingressScript drives a deterministic mixed-traffic session against w:
// registrations, logins, seed posts, then batches of follow/like/comment
// traffic at hourly ServeTicks, with organic automation running
// underneath the whole time. Envelopes are recorded to a FING1 log
// exactly as the server's world loop records them: inside the drain,
// before they apply.
func captureIngressRun(t *testing.T, cfg core.Config) ingressRun {
	t.Helper()
	w := core.NewWorld(cfg)
	var stream bytes.Buffer
	wr, err := eventio.NewWriter(&stream)
	if err != nil {
		t.Fatalf("new writer: %v", err)
	}
	wr.Attach(w.Plat.Log())

	var logBuf bytes.Buffer
	lw, err := wire.NewLogWriter(&logBuf)
	if err != nil {
		t.Fatalf("new log writer: %v", err)
	}
	exec := server.NewExecutor(w)
	start := w.Sched.Clock().Now()

	step := func(off time.Duration, envs [][]byte) []wire.Outcome {
		t.Helper()
		at := start.Add(off)
		if len(envs) == 0 {
			w.ServeTick(at, nil)
			return nil
		}
		outs := make([]wire.Outcome, 0, len(envs))
		w.ServeTick(at, func() {
			if err := lw.Batch(at.UnixNano(), envs); err != nil {
				t.Fatalf("log batch: %v", err)
			}
			for _, env := range envs {
				outs = append(outs, exec.Apply(env))
			}
		})
		return outs
	}

	const fleet = 8
	regs := make([][]byte, fleet)
	for i := range regs {
		regs[i] = []byte(fmt.Sprintf(`{"v":1,"op":"register","username":"ingress-%d","password":"pw"}`, i))
	}
	var accounts []uint64
	for _, out := range step(1*time.Hour, regs) {
		if out.Status != wire.StatusAllowed {
			t.Fatalf("register rejected: %+v", out)
		}
		accounts = append(accounts, out.Account)
	}

	logins := make([][]byte, fleet)
	for i := range logins {
		logins[i] = []byte(fmt.Sprintf(`{"v":1,"op":"login","username":"ingress-%d","password":"pw"}`, i))
	}
	var tokens []string
	for _, out := range step(2*time.Hour, logins) {
		if out.Token == "" {
			t.Fatalf("login rejected: %+v", out)
		}
		tokens = append(tokens, out.Token)
	}

	seeds := make([][]byte, fleet)
	for i, tok := range tokens {
		seeds[i] = []byte(fmt.Sprintf(`{"v":1,"op":"post","token":"%s","tags":["ingress"]}`, tok))
	}
	var posts []uint64
	for _, out := range step(3*time.Hour, seeds) {
		if out.Post == 0 {
			t.Fatalf("seed post rejected: %+v", out)
		}
		posts = append(posts, out.Post)
	}

	// Twelve hourly batches of mixed action traffic from a fixed PRNG.
	// Rejections (rate limits and the like) are fine — they are events
	// too, and must reproduce.
	state := uint64(0x1276d5a1e55) // fixed, arbitrary
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for batch := 0; batch < 12; batch++ {
		envs := make([][]byte, 0, 16)
		for i := 0; i < 16; i++ {
			tok := tokens[next(len(tokens))]
			switch next(4) {
			case 0:
				envs = append(envs, []byte(fmt.Sprintf(`{"v":1,"op":"follow","token":"%s","target":%d}`, tok, accounts[next(len(accounts))])))
			case 1:
				envs = append(envs, []byte(fmt.Sprintf(`{"v":1,"op":"like","token":"%s","post":%d}`, tok, posts[next(len(posts))])))
			case 2:
				envs = append(envs, []byte(fmt.Sprintf(`{"v":1,"op":"comment","token":"%s","post":%d,"text":"b%d"}`, tok, posts[next(len(posts))], batch)))
			default:
				envs = append(envs, []byte(fmt.Sprintf(`{"v":1,"op":"unfollow","token":"%s","target":%d}`, tok, accounts[next(len(accounts))])))
			}
		}
		step(time.Duration(4+batch)*time.Hour, envs)
	}

	// Quiet tail, then the end record — the shape a graceful serve
	// shutdown leaves behind.
	end := start.Add(17 * time.Hour)
	w.ServeTick(end, nil)
	if err := lw.End(end.UnixNano()); err != nil {
		t.Fatalf("log end: %v", err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return ingressRun{stream: stream.Bytes(), log: logBuf.Bytes()}
}

// replayIngressRun rebuilds a world from the same config and re-drives
// the recorded ingress log, returning the reproduced FSEV1 bytes.
func replayIngressRun(t *testing.T, cfg core.Config, log []byte) []byte {
	t.Helper()
	w := core.NewWorld(cfg)
	var stream bytes.Buffer
	wr, err := eventio.NewWriter(&stream)
	if err != nil {
		t.Fatalf("new writer: %v", err)
	}
	wr.Attach(w.Plat.Log())
	if _, err := server.ReplayIngressLog(w, bytes.NewReader(log)); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return stream.Bytes()
}

// TestIngressReplayMatchesLive pins the serve determinism contract at
// shards {1,4} × workers {1,4}: the ingress-log replay reproduces the
// live stream byte for byte, and the stream itself is invariant across
// execution strategies — parallel stepping and lock striping change
// nothing about what happened, only how fast.
func TestIngressReplayMatchesLive(t *testing.T) {
	t.Parallel()
	var want []byte
	var wantFrom string
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			shards, workers := shards, workers
			name := fmt.Sprintf("shards=%d/workers=%d", shards, workers)
			cfg := smallConfig(5, workers)
			cfg.Shards = shards
			live := captureIngressRun(t, cfg)
			if len(live.stream) == 0 || len(live.log) == 0 {
				t.Fatalf("%s: empty capture (stream %d bytes, log %d bytes)", name, len(live.stream), len(live.log))
			}
			replayed := replayIngressRun(t, cfg, live.log)
			if !bytes.Equal(live.stream, replayed) {
				t.Errorf("%s: ingress replay diverged: live %s (%d bytes) vs replay %s (%d bytes)",
					name, Hash(live.stream), len(live.stream), Hash(replayed), len(replayed))
			}
			if want == nil {
				want, wantFrom = live.stream, name
			} else if !bytes.Equal(want, live.stream) {
				t.Errorf("%s: stream differs from %s: %s vs %s",
					name, wantFrom, Hash(live.stream), Hash(want))
			}
		}
	}
}
