package simtest

import (
	"bytes"
	"fmt"
	"testing"

	"footsteps/internal/core"
	"footsteps/internal/eventio"
)

// smallConfig is a world small enough to run nine times under -race in a
// test, but still exercising every parallel path: both engine kinds, the
// organic population, VPN users, honeypot wiring, and cross-enrollment.
func smallConfig(seed uint64, workers int) core.Config {
	cfg := core.TestConfig()
	cfg.Seed = seed
	cfg.Days = 6
	cfg.OrganicPopulation = 300
	cfg.PoolSize = 200
	cfg.VPNUsers = 20
	cfg.Workers = workers
	return cfg
}

// TestParallelStreamMatchesSequential is the tentpole contract: for the
// same seed, the complete post-merge event stream is byte-identical
// whether the world steps sequentially or on a worker pool of any size.
func TestParallelStreamMatchesSequential(t *testing.T) {
	t.Parallel()
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			want := Capture(smallConfig(seed, 0))
			if n := countEvents(t, want); n < 1000 {
				t.Fatalf("sequential run produced only %d events; comparison would be vacuous", n)
			}
			for _, workers := range []int{4, 8} {
				got := Capture(smallConfig(seed, workers))
				if !bytes.Equal(want, got) {
					t.Errorf("workers=%d: stream diverged from sequential run: hash %s != %s (lengths %d vs %d)",
						workers, Hash(got), Hash(want), len(got), len(want))
				}
			}
		})
	}
}

// TestCaptureRepeatable guards the harness itself: two fresh worlds with
// the same config must produce identical bytes, otherwise stream
// comparisons prove nothing.
func TestCaptureRepeatable(t *testing.T) {
	t.Parallel()
	cfg := smallConfig(3, 4)
	a, b := Capture(cfg), Capture(cfg)
	if !bytes.Equal(a, b) {
		t.Fatalf("same config diverged across fresh runs: %s != %s", Hash(a), Hash(b))
	}
}

// countEvents decodes the stream and returns the number of events,
// verifying along the way that Capture emits well-formed FSEV1.
func countEvents(t *testing.T, stream []byte) int {
	t.Helper()
	r, err := eventio.NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("captured stream has bad header: %v", err)
	}
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("captured stream undecodable: %v", err)
	}
	return len(evs)
}
