package simtest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"footsteps/internal/core"
	"footsteps/internal/eventio"
	"footsteps/internal/telemetry"
)

// smallConfig is a world small enough to run nine times under -race in a
// test, but still exercising every parallel path: both engine kinds, the
// organic population, VPN users, honeypot wiring, and cross-enrollment.
func smallConfig(seed uint64, workers int) core.Config {
	cfg := core.TestConfig()
	cfg.Seed = seed
	cfg.Days = 6
	cfg.OrganicPopulation = 300
	cfg.PoolSize = 200
	cfg.VPNUsers = 20
	cfg.Workers = workers
	return cfg
}

// TestParallelStreamMatchesSequential is the tentpole contract: for the
// same seed, the complete post-merge event stream is byte-identical
// whether the world steps sequentially or on a worker pool of any size.
func TestParallelStreamMatchesSequential(t *testing.T) {
	t.Parallel()
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			want := Capture(smallConfig(seed, 0))
			if n := countEvents(t, want); n < 1000 {
				t.Fatalf("sequential run produced only %d events; comparison would be vacuous", n)
			}
			for _, workers := range []int{4, 8} {
				got := Capture(smallConfig(seed, workers))
				if !bytes.Equal(want, got) {
					t.Errorf("workers=%d: stream diverged from sequential run: hash %s != %s (lengths %d vs %d)",
						workers, Hash(got), Hash(want), len(got), len(want))
				}
			}
		})
	}
}

// TestCaptureRepeatable guards the harness itself: two fresh worlds with
// the same config must produce identical bytes, otherwise stream
// comparisons prove nothing.
func TestCaptureRepeatable(t *testing.T) {
	t.Parallel()
	cfg := smallConfig(3, 4)
	a, b := Capture(cfg), Capture(cfg)
	if !bytes.Equal(a, b) {
		t.Fatalf("same config diverged across fresh runs: %s != %s", Hash(a), Hash(b))
	}
}

// TestTelemetryPureObserver enforces the observability invariant: a world
// instrumented with a live telemetry registry — including the per-day
// JSONL flush, which schedules extra (pure observer) callbacks — produces
// the byte-identical FSEV1 stream of an uninstrumented world, at any
// worker count. The test also asserts the instrumentation actually fired,
// so a silently dead registry cannot make the comparison vacuous.
func TestTelemetryPureObserver(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			want := Capture(smallConfig(11, workers))
			cfg := smallConfig(11, workers)
			cfg.Telemetry = telemetry.NewRegistry()
			var jsonl bytes.Buffer
			got := CaptureWorld(cfg, func(w *core.World) { w.StreamTelemetryDaily(&jsonl) })
			if !bytes.Equal(want, got) {
				t.Errorf("telemetry changed the stream: hash %s != %s (lengths %d vs %d)",
					Hash(got), Hash(want), len(got), len(want))
			}
			snap := cfg.Telemetry.Snapshot()
			var platformEvents int64
			for name, v := range snap.Counters {
				if strings.HasPrefix(name, "platform.events.") {
					platformEvents += v
				}
			}
			if platformEvents == 0 {
				t.Error("no platform events counted; pure-observer comparison is vacuous")
			}
			if snap.Counters["step.sections"] == 0 {
				t.Error("tick tracer recorded no sections; step instrumentation dead")
			}
			if jsonl.Len() == 0 {
				t.Error("daily JSONL sink stayed empty")
			}
		})
	}
}

// TestDebugListenerPureObserver runs a capture with the -debug-addr
// machinery live and a goroutine hammering /metrics.json throughout —
// concurrent snapshots while the world steps in parallel. The stream must
// still match the uninstrumented baseline byte for byte.
func TestDebugListenerPureObserver(t *testing.T) {
	t.Parallel()
	want := Capture(smallConfig(5, 4))
	cfg := smallConfig(5, 4)
	cfg.Telemetry = telemetry.NewRegistry()
	srv, err := telemetry.ServeDebug("127.0.0.1:0", cfg.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	polls := 0
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + srv.Addr() + "/metrics.json")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				polls++
			}
		}
	}()
	got := Capture(cfg)
	close(stop)
	<-done

	if polls == 0 {
		t.Fatal("debug listener was never polled; comparison is vacuous")
	}
	if !bytes.Equal(want, got) {
		t.Errorf("live debug listener changed the stream: hash %s != %s (lengths %d vs %d)",
			Hash(got), Hash(want), len(got), len(want))
	}
}

// countEvents decodes the stream and returns the number of events,
// verifying along the way that Capture emits well-formed FSEV1.
func countEvents(t *testing.T, stream []byte) int {
	t.Helper()
	r, err := eventio.NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("captured stream has bad header: %v", err)
	}
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("captured stream undecodable: %v", err)
	}
	return len(evs)
}
