package simtest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"footsteps/internal/core"
	"footsteps/internal/durable"
	"footsteps/internal/platform"
)

// These tests lock in the crash-recovery contract of internal/durable
// (docs/PERSISTENCE.md): kill the process — deterministically, at any
// filesystem operation — and recovery must reconstruct an FSEV1 stream
// and final world state byte-identical to the uninterrupted run's.
// CrashFS models power loss (unsynced writes torn or dropped), so the
// property holds under short writes, fsync failures, and ENOSPC, not
// just clean kills. Damage the durable region instead and recovery
// must refuse with a typed error, never panic or silently drop data.

const durDir = "log"

// attachDurable subscribes the durable log to the world's event
// stream. Append errors are swallowed here exactly like the CLI does:
// the log keeps its first error sticky and the day loop stops at the
// next boundary.
func attachDurable(w *core.World, dlog *durable.Log) {
	w.Plat.Log().Subscribe(func(ev platform.Event) { _ = dlog.Append(ev) })
}

// dayLoop drives the remaining window with a checkpoint at every day
// boundary, halting early once the log has soaked up a crash.
func dayLoop(w *core.World, dlog *durable.Log) error {
	err := w.RunDaysFunc(w.Cfg.Days-w.DaysRun(), func(day int) error {
		if err := dlog.Checkpoint(day, w.Snapshot); err != nil {
			return err
		}
		return dlog.Err()
	})
	if err != nil {
		_ = dlog.Close()
		return err
	}
	return dlog.Close()
}

// runDurableFresh runs a whole world with a durable log on fsys. The
// returned error is the crash (if the plan fired); the world comes back
// either way so completed runs can snapshot their final state.
func runDurableFresh(cfg core.Config, fsys durable.FS, opts durable.Options) (*core.World, error) {
	dlog, err := durable.Create(fsys, durDir, opts)
	if err != nil {
		return nil, err
	}
	w := core.NewWorld(cfg)
	attachDurable(w, dlog)
	w.RunAll()
	return w, dayLoop(w, dlog)
}

// runDurableResume is the recovery path: open the log, restore the
// recovered checkpoint (or rebuild from genesis), and run out the
// window. It returns the recovery report for assertions.
func runDurableResume(cfg core.Config, fsys durable.FS, opts durable.Options) (*core.World, *durable.Recovery, error) {
	dlog, err := durable.Resume(fsys, durDir, opts)
	if err != nil {
		return nil, nil, err
	}
	rec := dlog.Recovery()
	var w *core.World
	if rec.CheckpointFile == "" {
		w = core.NewWorld(cfg)
		attachDurable(w, dlog)
		w.RunAll()
	} else {
		w, err = core.RestoreWorld(cfg, bytes.NewReader(rec.Checkpoint))
		if err != nil {
			return nil, rec, err
		}
		attachDurable(w, dlog)
	}
	return w, rec, dayLoop(w, dlog)
}

func finalState(t *testing.T, w *core.World) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := w.Snapshot(&buf); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	return buf.Bytes()
}

func reconstruct(t *testing.T, fsys durable.FS) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := durable.Reconstruct(fsys, durDir, &buf); err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	return buf.Bytes()
}

// TestDurableLogInert pins durability as a pure observer: with the log
// attached (both fsync modes), the reconstructed stream is
// byte-identical to a plain Capture of the same config.
func TestDurableLogInert(t *testing.T) {
	t.Parallel()
	cfg := smallConfig(42, 4)
	want := Capture(cfg)
	for _, every := range []bool{false, true} {
		every := every
		t.Run(fmt.Sprintf("fsyncEveryBatch=%v", every), func(t *testing.T) {
			t.Parallel()
			fsys := durable.NewMemFS()
			opts := durable.Options{Seed: cfg.Seed, Fingerprint: cfg.Fingerprint(), FsyncEveryBatch: every}
			if _, err := runDurableFresh(cfg, fsys, opts); err != nil {
				t.Fatalf("durable run: %v", err)
			}
			got := reconstruct(t, fsys)
			if !bytes.Equal(got, want) {
				t.Fatalf("durable stream %s != plain stream %s", Hash(got), Hash(want))
			}
		})
	}
}

// crashMatrixCase runs the full property for one configuration: probe
// the uninterrupted run (its stream must already match the plain
// capture, its op count calibrates the kill points), then for each
// deterministic kill point crash, recover, finish, and require byte
// equality of both the reconstructed stream and the final state.
func crashMatrixCase(t *testing.T, cfg core.Config, baseline []byte, fracs []float64) {
	t.Helper()
	opts := durable.Options{Seed: cfg.Seed, Fingerprint: cfg.Fingerprint()}

	probe := durable.NewCrashFS(durable.CrashPlan{Seed: cfg.Seed})
	w, err := runDurableFresh(cfg, probe, opts)
	if err != nil {
		t.Fatalf("probe run: %v", err)
	}
	wantFinal := finalState(t, w)
	if got := reconstruct(t, probe); !bytes.Equal(got, baseline) {
		t.Fatalf("probe durable stream %s != baseline %s", Hash(got), Hash(baseline))
	}
	total := probe.Ops()
	if total < 40 {
		t.Fatalf("probe issued only %d fs ops; kill points would land in setup", total)
	}

	for _, frac := range fracs {
		kill := uint64(float64(total) * frac)
		plan := durable.CrashPlan{Seed: cfg.Seed, KillAt: kill}
		t.Run(fmt.Sprintf("kill=%d_%s", kill, plan.Mode()), func(t *testing.T) {
			cfs := durable.NewCrashFS(plan)
			if _, err := runDurableFresh(cfg, cfs, opts); err == nil {
				t.Fatalf("crash at op %d/%d did not surface", kill, total)
			}
			if !cfs.Crashed() {
				t.Fatalf("plan did not fire (op %d of %d)", kill, total)
			}
			// Recovery runs against the durable image — exactly the
			// bytes that survived the power loss.
			img := cfs.Image()
			w, rec, err := runDurableResume(cfg, img, opts)
			if err != nil {
				t.Fatalf("recovery (checkpoint day %d, torn=%v): %v", rec.CheckpointDay, rec.TornTail, err)
			}
			if got := reconstruct(t, img); !bytes.Equal(got, baseline) {
				t.Fatalf("recovered stream %s != baseline %s (checkpoint day %d, discarded %d events)",
					Hash(got), Hash(baseline), rec.CheckpointDay, rec.DiscardedEvents)
			}
			if got := finalState(t, w); !bytes.Equal(got, wantFinal) {
				t.Fatalf("recovered final state differs from uninterrupted run")
			}
		})
	}
}

// TestCrashRecoveryProperty is the tentpole matrix: shards {1,4,16} ×
// workers {1,4,8}, faults off and on, three deterministic kill points
// each (the failure mode at each point — short write, fsync error,
// ENOSPC — is a SplitMix64 verdict of the kill op).
func TestCrashRecoveryProperty(t *testing.T) {
	t.Parallel()
	shardsList := []int{1, 4, 16}
	workersList := []int{1, 4, 8}
	fracs := []float64{0.25, 0.55, 0.85}
	if testing.Short() {
		shardsList, workersList = []int{4}, []int{4}
	}
	for _, faulted := range []bool{false, true} {
		faulted := faulted
		base := smallConfig(7, 1)
		if faulted {
			base = faultedConfig(7, 1)
		}
		baseline := Capture(base)
		for _, shards := range shardsList {
			for _, workers := range workersList {
				shards, workers := shards, workers
				t.Run(fmt.Sprintf("faults=%v/shards=%d/workers=%d", faulted, shards, workers), func(t *testing.T) {
					t.Parallel()
					cfg := smallConfig(7, workers)
					if faulted {
						cfg = faultedConfig(7, workers)
					}
					cfg.Shards = shards
					crashMatrixCase(t, cfg, baseline, fracs)
				})
			}
		}
	}
}

// TestCrashRecoveryTypedErrors: damage inside the durable region must
// surface as typed errors from recovery — never a panic, never a
// silently shortened stream.
func TestCrashRecoveryTypedErrors(t *testing.T) {
	t.Parallel()
	cfg := smallConfig(3, 1)
	opts := durable.Options{Seed: cfg.Seed, Fingerprint: cfg.Fingerprint()}
	build := func(t *testing.T) *durable.MemFS {
		fsys := durable.NewMemFS()
		if _, err := runDurableFresh(cfg, fsys, opts); err != nil {
			t.Fatalf("build run: %v", err)
		}
		return fsys
	}

	t.Run("corrupt manifest", func(t *testing.T) {
		t.Parallel()
		fsys := build(t)
		if err := fsys.Corrupt(durDir+"/MANIFEST", 12, 0x04); err != nil {
			t.Fatal(err)
		}
		var merr *durable.ManifestError
		if _, _, err := runDurableResume(cfg, fsys, opts); !errors.As(err, &merr) {
			t.Fatalf("resume over corrupt manifest = %v, want ManifestError", err)
		}
	})
	t.Run("corrupt sealed segment", func(t *testing.T) {
		t.Parallel()
		fsys := build(t)
		if err := fsys.Corrupt(durDir+"/seg-00000.fseg", 200, 0x80); err != nil {
			t.Fatal(err)
		}
		var cerr *durable.CorruptError
		if _, _, err := runDurableResume(cfg, fsys, opts); !errors.As(err, &cerr) {
			t.Fatalf("resume over corrupt segment = %v, want CorruptError", err)
		}
	})
	t.Run("wrong config fingerprint", func(t *testing.T) {
		t.Parallel()
		fsys := build(t)
		other := opts
		other.Fingerprint++
		var merr *durable.MismatchError
		if _, _, err := runDurableResume(cfg, fsys, other); !errors.As(err, &merr) {
			t.Fatalf("resume with wrong fingerprint = %v, want MismatchError", err)
		}
	})
}
