// Package simtest is the simulator's determinism harness: it runs whole
// worlds to completion, captures their full event streams in the FSEV1
// binary encoding, and lets tests assert the core contract of parallel
// stepping — that the post-merge event stream is byte-identical to the
// sequential run for the same seed, for any worker count.
//
// The comparison is deliberately over encoded bytes, not summary
// statistics: two streams that differ anywhere (an extra event, a
// reordered pair, a different timestamp or source IP) cannot hash equal,
// so any scheduling nondeterminism introduced into the intent/apply
// pipeline fails loudly here. Run under -race, these tests double as the
// data-race gauntlet for the parallel planning phase.
package simtest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/core"
	"footsteps/internal/eventio"
)

// Capture builds a world from cfg, runs the full lifecycle for the
// configured window, and returns the complete event stream encoded as
// FSEV1 bytes.
func Capture(cfg core.Config) []byte {
	return CaptureWorld(cfg, nil)
}

// CaptureWorld is Capture with a hook: prep (when non-nil) runs on the
// freshly built world before the lifecycle starts. The telemetry tests
// use it to attach metric sinks (StreamTelemetryDaily) that the pure-
// observer contract says must not change the bytes.
func CaptureWorld(cfg core.Config, prep func(*core.World)) []byte {
	var buf bytes.Buffer
	wr, err := eventio.NewWriter(&buf)
	if err != nil {
		panic(fmt.Sprintf("simtest: new writer: %v", err))
	}
	w := core.NewWorld(cfg)
	wr.Attach(w.Plat.Log())
	if prep != nil {
		prep(w)
	}
	w.RunAll()
	w.Sched.RunFor(clock.Day * time.Duration(cfg.Days))
	if err := wr.Flush(); err != nil {
		panic(fmt.Sprintf("simtest: flush: %v", err))
	}
	return buf.Bytes()
}

// Hash returns a short hex digest of an event stream, for readable
// failure messages.
func Hash(stream []byte) string {
	sum := sha256.Sum256(stream)
	return hex.EncodeToString(sum[:8])
}
