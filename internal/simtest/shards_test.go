package simtest

import (
	"bytes"
	"fmt"
	"testing"

	"footsteps/internal/core"
	"footsteps/internal/telemetry"
)

// shardedConfig is smallConfig with an explicit lock-stripe count.
func shardedConfig(seed uint64, workers, shards int) core.Config {
	cfg := smallConfig(seed, workers)
	cfg.Shards = shards
	return cfg
}

// TestShardCountStreamInvariance is the tentpole contract for sharded
// platform state: the shard count is a pure concurrency knob, so the
// event stream must be byte-identical at every (shards, workers)
// combination — including the shards=1 degenerate case, which is the
// old single-lock layout, and the default-shard baseline the goldens
// pin. A divergence here means shard-dependent state leaked into
// observable output (a hash-ordered iteration, an ID allocation moved,
// a lock reordering that changed apply order).
func TestShardCountStreamInvariance(t *testing.T) {
	t.Parallel()
	want := Capture(smallConfig(1, 0))
	if n := countEvents(t, want); n < 1000 {
		t.Fatalf("baseline run produced only %d events; comparison would be vacuous", n)
	}
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 4, 8} {
			got := Capture(shardedConfig(1, workers, shards))
			if !bytes.Equal(want, got) {
				t.Errorf("shards=%d workers=%d: stream diverged from default-shard sequential run: %s != %s (lengths %d vs %d)",
					shards, workers, Hash(got), Hash(want), len(got), len(want))
			}
		}
	}
}

// TestShardCountFaultedStreamInvariance repeats the invariance check
// with the mixed fault scenario active: fault verdicts, retry schedules,
// and storm-tightened rate limits must all be independent of how state
// is striped.
func TestShardCountFaultedStreamInvariance(t *testing.T) {
	t.Parallel()
	want := Capture(faultedConfig(1, 0))
	for _, shards := range []int{1, 16} {
		cfg := faultedConfig(1, 4)
		cfg.Shards = shards
		if got := Capture(cfg); !bytes.Equal(want, got) {
			t.Errorf("shards=%d: faulted stream diverged: %s != %s (lengths %d vs %d)",
				shards, Hash(got), Hash(want), len(got), len(want))
		}
	}
}

// TestShardContentionCountersExposed asserts the per-stripe lock
// contention counters registered by the platform and the social graph
// are present in the telemetry registry after a parallel run. The
// counter values themselves are scheduling-dependent (contention is
// timing), so only their existence is asserted — which is also the
// regression proving the TryLock instrumentation survives refactors.
func TestShardContentionCountersExposed(t *testing.T) {
	t.Parallel()
	cfg := shardedConfig(3, 4, 4)
	cfg.GraphWrites = true
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	Capture(cfg)
	snap := reg.Snapshot().Counters
	for i := 0; i < 4; i++ {
		for _, name := range []string{
			fmt.Sprintf("platform.shard.%02d.contention", i),
			fmt.Sprintf("platform.postshard.%02d.contention", i),
			fmt.Sprintf("socialgraph.shard.%02d.contention", i),
			fmt.Sprintf("socialgraph.postshard.%02d.contention", i),
		} {
			if _, ok := snap[name]; !ok {
				t.Errorf("counter %q not registered", name)
			}
		}
	}
	if g := reg.Snapshot().Gauges["platform.shards"]; g != 4 {
		t.Errorf("platform.shards gauge = %d, want 4", g)
	}
}
