package simtest

import (
	"bytes"
	"os"
	"testing"

	"footsteps/internal/persistence"
)

// TestRestoreLegacyV1Snapshot locks in cross-version checkpoint
// compatibility: testdata holds a real FSNAP1 checkpoint (written at
// day 3 of resumeConfig(1, 0) by the pre-FSNAP2 encoder), and a world
// restored from it must replay the exact remaining event bytes of a
// straight-through run — the same resume-equivalence contract the
// current-format snapshots are held to.
func TestRestoreLegacyV1Snapshot(t *testing.T) {
	t.Parallel()
	snap, err := os.ReadFile("testdata/checkpoint-v1-day3.fsnap")
	if err != nil {
		t.Fatalf("read legacy checkpoint: %v", err)
	}
	h, _, err := persistence.DecodeBytes(snap)
	if err != nil {
		t.Fatalf("decode legacy checkpoint: %v", err)
	}
	if h.Version != persistence.VersionV1 {
		t.Fatalf("testdata checkpoint is version %d, want legacy %d", h.Version, persistence.VersionV1)
	}
	if h.Day != 3 {
		t.Fatalf("testdata checkpoint is at day %d, want 3", h.Day)
	}

	cfg := resumeConfig(1, 0)
	full := captureWithSnapshots(t, cfg, nil)
	resumed, _ := captureResumed(t, cfg, snap)
	want := suffixAfter(t, full, h.Now)
	if !bytes.Equal(resumed, want) {
		t.Fatalf("legacy-restored run diverged: %d bytes vs %d-byte suffix", len(resumed), len(want))
	}
}
