package simtest

import (
	"bytes"
	"testing"

	"footsteps/internal/core"
)

// noReuseConfig is smallConfig with every scratch-buffer pool disabled:
// intent buffers, shard-bounds slices, plan/lifecycle/free-delivery
// scratch, and the per-customer hashtag query buffer all allocate fresh
// per tick, exactly as the pre-pooling code did.
func noReuseConfig(seed uint64, workers int) core.Config {
	cfg := smallConfig(seed, workers)
	cfg.DisableScratchReuse = true
	return cfg
}

// TestScratchReuseStreamInvariance is the pooling safety contract: buffer
// reuse across ticks is a pure memory optimization, so the event stream
// with pooling on (the default) must be byte-identical to the stream with
// pooling off, at every worker count. A divergence means a pooled buffer
// leaked state across ticks — a missed [:0] truncation, a stale entry
// surviving a clear, or an epoch-mark collision in the collusion dedup.
func TestScratchReuseStreamInvariance(t *testing.T) {
	t.Parallel()
	want := Capture(noReuseConfig(1, 0))
	if n := countEvents(t, want); n < 1000 {
		t.Fatalf("pool-disabled run produced only %d events; comparison would be vacuous", n)
	}
	for _, workers := range []int{0, 1, 4, 8} {
		pooled := Capture(smallConfig(1, workers))
		if !bytes.Equal(want, pooled) {
			t.Errorf("workers=%d: pooled stream diverged from pool-disabled run: %s != %s (lengths %d vs %d)",
				workers, Hash(pooled), Hash(want), len(pooled), len(want))
		}
	}
}

// TestScratchReuseFaultedStreamInvariance repeats the pooling on/off
// comparison with the mixed fault scenario active: retries re-enter the
// resilience layer with stored Request values, so this pins that the
// closure-free retry path reads identical state whether or not the
// planning buffers that produced the request were pooled.
func TestScratchReuseFaultedStreamInvariance(t *testing.T) {
	t.Parallel()
	noReuse := faultedConfig(1, 0)
	noReuse.DisableScratchReuse = true
	want := Capture(noReuse)
	if n := countEvents(t, want); n < 1000 {
		t.Fatalf("pool-disabled faulted run produced only %d events; comparison would be vacuous", n)
	}
	for _, workers := range []int{0, 4} {
		pooled := Capture(faultedConfig(1, workers))
		if !bytes.Equal(want, pooled) {
			t.Errorf("workers=%d: pooled faulted stream diverged: %s != %s (lengths %d vs %d)",
				workers, Hash(pooled), Hash(want), len(pooled), len(want))
		}
	}
}
