package simtest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"footsteps/internal/core"
	"footsteps/internal/trace"
)

// tracedCapture runs cfg with a live FTRC1 tracer at sample rate
// 1/sampleN and returns the FSEV1 event stream plus the recorded trace
// bytes. The tracer writes into memory, so these tests exercise the
// full encode path without touching disk.
func tracedCapture(t *testing.T, cfg core.Config, sampleN uint64) ([]byte, []byte) {
	t.Helper()
	var traceBuf bytes.Buffer
	tr, err := trace.New(&traceBuf, cfg.Seed, sampleN)
	if err != nil {
		t.Fatalf("trace.New: %v", err)
	}
	cfg.Trace = tr
	stream := Capture(cfg)
	if err := tr.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	return stream, traceBuf.Bytes()
}

// TestTraceInertness is the tentpole invariant for span tracing: a world
// recording a full FTRC1 trace — every request span, every tick section,
// every instant — produces the byte-identical FSEV1 event stream of an
// untraced world, at every (shards, workers) combination. The tracer
// hooks sit directly on the platform's request path and the step pool's
// section barrier, so any feedback (an RNG draw, a reordered apply, an
// extra allocation observed through timing-sensitive code) diverges the
// bytes and fails here.
func TestTraceInertness(t *testing.T) {
	t.Parallel()
	want := Capture(smallConfig(1, 0))
	if n := countEvents(t, want); n < 1000 {
		t.Fatalf("baseline run produced only %d events; comparison would be vacuous", n)
	}
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 4, 8} {
			cfg := smallConfig(1, workers)
			cfg.Shards = shards
			got, traced := tracedCapture(t, cfg, 1)
			if !bytes.Equal(want, got) {
				t.Errorf("shards=%d workers=%d: tracing changed the stream: %s != %s (lengths %d vs %d)",
					shards, workers, Hash(got), Hash(want), len(got), len(want))
			}
			if len(traced) == 0 {
				t.Errorf("shards=%d workers=%d: tracer wrote nothing; inertness comparison is vacuous", shards, workers)
			}
		}
	}
}

// TestTraceInertnessSampled repeats the inertness check at downsampled
// rates. Sampling decisions are pure functions of (seed, span identity),
// and crucially the per-tick sequence counter advances for unsampled
// spans too — so a 1/N trace must leave the stream untouched exactly
// like a full trace does.
func TestTraceInertnessSampled(t *testing.T) {
	t.Parallel()
	want := Capture(smallConfig(9, 0))
	for _, sampleN := range []uint64{16, 1024} {
		got, traced := tracedCapture(t, smallConfig(9, 4), sampleN)
		if !bytes.Equal(want, got) {
			t.Errorf("sample=1/%d: tracing changed the stream: %s != %s (lengths %d vs %d)",
				sampleN, Hash(got), Hash(want), len(got), len(want))
		}
		if len(traced) == 0 {
			t.Errorf("sample=1/%d: tracer wrote nothing", sampleN)
		}
	}
}

// TestTraceInertnessFaulted runs the inertness check with the mixed
// fault scenario live: fault verdicts, AAS retry/backoff instants, and
// breaker-transition spans all fire, and none of them may perturb the
// faulted timeline.
func TestTraceInertnessFaulted(t *testing.T) {
	t.Parallel()
	want := Capture(faultedConfig(1, 0))
	for _, workers := range []int{1, 8} {
		got, traced := tracedCapture(t, faultedConfig(1, workers), 1)
		if !bytes.Equal(want, got) {
			t.Errorf("workers=%d: tracing changed the faulted stream: %s != %s (lengths %d vs %d)",
				workers, Hash(got), Hash(want), len(got), len(want))
		}
		ids := traceIdentities(t, traced)
		if len(ids) == 0 {
			t.Errorf("workers=%d: faulted trace empty", workers)
		}
	}
}

// traceIdentities decodes a trace stream down to its deterministic
// identity content: everything except the wall-clock timing fields
// (Start, Wall, per-stage Ns), rendered as one string per span in
// stream order.
func traceIdentities(t *testing.T, data []byte) []string {
	t.Helper()
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("trace header: %v", err)
	}
	var out []string
	for {
		sp, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("trace decode at span %d: %v", r.Spans(), err)
		}
		key := fmt.Sprintf("t=%d sh=%d seq=%d par=%x k=%d a=%d c=%d actor=%d tgt=%d post=%d asn=%d v=%d",
			sp.Tick, sp.Shard, sp.Seq, sp.Parent, sp.Kind, sp.Action, sp.Code,
			sp.Actor, sp.Target, sp.Post, sp.ASN, sp.Value)
		for _, st := range sp.Stages {
			key += fmt.Sprintf(" %d:%d", st.Stage, st.Verdict)
		}
		out = append(out, key)
	}
	return out
}

// TestTraceIdentityStable pins span identity across worker counts: the
// ordered sequence of identity tuples — tick, shard, seq, parent, kind,
// verdicts, payload — must be identical whether the world planned on one
// goroutine or eight. Only the wall-clock timing fields may differ.
func TestTraceIdentityStable(t *testing.T) {
	t.Parallel()
	_, seq := tracedCapture(t, smallConfig(7, 1), 1)
	want := traceIdentities(t, seq)
	if len(want) < 1000 {
		t.Fatalf("sequential trace has only %d spans; comparison would be vacuous", len(want))
	}
	_, par := tracedCapture(t, smallConfig(7, 8), 1)
	got := traceIdentities(t, par)
	if len(got) != len(want) {
		t.Fatalf("span count diverged across worker counts: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("span %d identity diverged across worker counts:\n  workers=1: %s\n  workers=8: %s", i, want[i], got[i])
		}
	}
}

// TestTraceSampleSubset pins the sampler's subset property end to end: a
// 1/N trace of a run is exactly the identity-subset of the 1/1 trace
// that the deterministic sampler selects — same spans, same order, no
// extras. This is what makes downsampled traces comparable across runs
// and machines.
func TestTraceSampleSubset(t *testing.T) {
	t.Parallel()
	_, full := tracedCapture(t, smallConfig(13, 4), 1)
	fullIDs := traceIdentities(t, full)
	seen := make(map[string]int, len(fullIDs))
	for _, k := range fullIDs {
		seen[k]++
	}
	_, sampled := tracedCapture(t, smallConfig(13, 4), 64)
	sampledIDs := traceIdentities(t, sampled)
	if len(sampledIDs) == 0 {
		t.Fatal("1/64 trace is empty; subset check is vacuous")
	}
	if len(sampledIDs) >= len(fullIDs) {
		t.Fatalf("1/64 trace (%d spans) not smaller than full trace (%d spans)", len(sampledIDs), len(fullIDs))
	}
	for i, k := range sampledIDs {
		if seen[k] == 0 {
			t.Fatalf("sampled span %d not present in the full trace: %s", i, k)
		}
		seen[k]--
	}
}
