package simtest

import (
	"runtime"
	"testing"
	"time"

	"footsteps/internal/core"
)

// scaleConfig sizes a world by organic population: the services stay at
// unit-test scale (the business sim is driven by its customer pools,
// not the bystander crowd), so memory growth tracks the account tables,
// adjacency chunks, and per-account tallies the struct-of-arrays layout
// is accountable for.
func scaleConfig(accounts, days int) core.Config {
	cfg := core.TestConfig()
	cfg.Days = days
	cfg.OrganicPopulation = accounts
	cfg.Workers = 4
	return cfg
}

// scaleSmokeHeapBudget bounds runtime.HeapAlloc after the 100k-account,
// 7-day smoke world finishes, in bytes. The struct-of-arrays layout
// measures ~825 B/account live (accounts, posts, graph adjacency, and
// event-log bookkeeping together ≈ 78 MiB); the 256 MiB budget is ~3x
// headroom, enough to absorb GC timing but not a return to per-account
// heap objects. Raise only with a heap profile — see
// docs/PERFORMANCE.md.
const scaleSmokeHeapBudget = 256 << 20

// TestScaleSmoke is the CI scale arm: build a 100k-account world, run a
// week, and assert the live heap stays under budget. It guards the
// bytes-per-account density the 1M-account BENCH_SCALE run depends on,
// at a size every test sweep can afford (~0.6 s).
func TestScaleSmoke(t *testing.T) {
	start := time.Now()
	cfg := scaleConfig(100_000, 7)
	w := core.NewWorld(cfg)
	w.RunAll()
	if err := w.RunDays(cfg.Days); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	perAccount := ms.HeapAlloc / 100_000
	// Measured while the world is still live — without this the compiler
	// is free to let the GC collect w before ReadMemStats.
	defer runtime.KeepAlive(w)
	t.Logf("scale smoke: %d accounts, %d days in %v; heap_alloc %d MiB (%d B/account)",
		cfg.OrganicPopulation, cfg.Days, time.Since(start).Round(time.Millisecond),
		ms.HeapAlloc>>20, perAccount)
	if ms.HeapAlloc > scaleSmokeHeapBudget {
		t.Errorf("heap_alloc %d exceeds the %d-byte scale budget (%d B/account)",
			ms.HeapAlloc, uint64(scaleSmokeHeapBudget), perAccount)
	}
}
