// Package behavior models the organic side of the platform: the ordinary
// users whose natural reciprocity the Reciprocity Abuse services harvest.
//
// Each organic member has a profile with nominal degrees (followers and
// followees — the quantities behind Figures 3 and 4) and per-channel
// reciprocation probabilities: like→like, like→follow, and follow→follow.
// The paper measured follow→like reciprocation to be exactly zero ("users
// never reciprocate with likes when followed"), and the model hard-codes
// that.
//
// Members react to notifications: when an allowed like or follow event
// targets a member, the member may — after a human-scale random delay —
// issue a reciprocal action from their own session. Lived-in actors earn
// higher response rates than empty ones (Table 5), which the model applies
// as a multiplier read from the actor's platform profile.
//
// Curated pools. The services do not spray actions at random users; they
// curate recipients likely to reciprocate (§5.3). AddCuratedPool creates a
// designated subpopulation drawn from a service-specific PoolSpec — higher
// response rates, higher out-degree, lower in-degree — modeling the curated
// lists the services maintain. The degree bias of Figures 3/4 then falls
// out of comparing pool members against the general population.
package behavior

import (
	"fmt"
	"math"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
	"footsteps/internal/step"
)

// Profile describes one organic member.
type Profile struct {
	ID      platform.AccountID
	Country string
	// Nominal degrees: the size of the member's organic neighborhood.
	// These drive Figures 3/4; actual graph edges are created only by
	// simulated actions.
	OutDeg int // accounts this member follows ("following")
	InDeg  int // accounts following this member ("followers")
	// Reciprocation probabilities per received action, for an empty
	// (non-lived-in) actor. Lived-in actors get the model multipliers.
	LikeToLike     float64
	LikeToFollow   float64
	FollowToFollow float64
}

// Model holds the population-wide behavioral constants.
type Model struct {
	// LivedInLikeMult scales like-channel reciprocation when the actor's
	// account is lived-in (Table 5: 1.6×–2.6× observed; default 2.1).
	LivedInLikeMult float64
	// LivedInFollowMult scales follow→follow reciprocation for lived-in
	// actors (Table 5: ~1.1×–1.25×; default 1.18).
	LivedInFollowMult float64
	// MeanReactionDelay is the mean of the exponential delay between a
	// notification and the reciprocal action.
	MeanReactionDelay time.Duration
	// MaxReactionDelay caps the delay.
	MaxReactionDelay time.Duration
}

// DefaultModel returns the calibrated behavioral constants.
func DefaultModel() Model {
	return Model{
		LivedInLikeMult:   2.1,
		LivedInFollowMult: 1.18,
		MeanReactionDelay: 6 * time.Hour,
		MaxReactionDelay:  48 * time.Hour,
	}
}

// PoolSpec parameterizes a curated target pool: the response rates the
// paper measured per service (Table 5, empty-account rows) and the degree
// profile of the accounts the service targets (Figures 3/4 medians).
type PoolSpec struct {
	// Mean reciprocation probabilities for empty actors.
	LikeToLike     float64
	LikeToFollow   float64
	FollowToFollow float64
	// Median nominal degrees of pool members.
	OutDegMedian float64
	InDegMedian  float64
	// Countries pool members live in, with weights. Empty means USA.
	Countries []CountryWeight
}

// CountryWeight weights one country in a pool's membership.
type CountryWeight struct {
	Country string
	Weight  float64
}

// GeneralSpec describes the broad population baseline: lower responsiveness
// than any curated pool, degree medians matching the random-account samples
// in Figures 3/4 (out 465, in 796).
func GeneralSpec() PoolSpec {
	return PoolSpec{
		LikeToLike:     0.006,
		LikeToFollow:   0.0005,
		FollowToFollow: 0.035,
		OutDegMedian:   465,
		InDegMedian:    796,
	}
}

// degreeSigma is the log-normal shape for nominal degrees; 1.1 gives the
// heavy tail typical of social networks.
const degreeSigma = 1.1

// rateJitterSigma is the log-normal shape of per-member response-rate
// noise around the pool mean.
const rateJitterSigma = 0.35

// Population is the organic user population. Construct with New, grow with
// AddMembers/AddCuratedPool, then Wire it to a platform.
type Population struct {
	model    Model
	plat     *platform.Platform
	sched    *clock.Scheduler
	net      *netsim.Registry
	rng      *rng.RNG
	homeASNs []netsim.ASN // residential ASNs for member logins, by country

	members  map[platform.AccountID]*member
	ids      []platform.AccountID
	general  []platform.AccountID // members outside any curated pool
	pools    map[string][]platform.AccountID
	nextName int

	// steps is the worker pool daily posting plans fan out on; nil plans
	// inline with an identical apply sequence.
	steps *step.Pool

	// Reusable daily-posting scratch (chunk bounds + per-shard intent
	// buffers); see docs/PERFORMANCE.md. noReuse restores fresh per-day
	// allocations for the simtest pooling property test.
	postChunks [][2]int
	postBufs   step.Buffers[*member]
	noReuse    bool

	// Reacted counts reciprocal actions issued, by channel, for tests and
	// diagnostics.
	Reacted map[string]int

	// reactions tracks scheduled-but-unfired reciprocal actions in
	// scheduling order; the scheduler closures only point into it, so
	// snapshots can serialize pending reactions. Touched only from the
	// single-threaded event-subscriber/scheduler path.
	reactions []*pendingReaction
}

// pendingReaction is one scheduled reciprocal action: member will react
// to actor with action at due.
type pendingReaction struct {
	member  platform.AccountID
	actor   platform.AccountID
	action  platform.ActionType
	channel string
	due     time.Time
	done    bool
}

type member struct {
	profile Profile
	session *platform.Session
	tag     string // hashtag interest, set by TagPool
	// tags is the cached one-element Tags payload for the member's
	// posts, built once in TagPool so the daily posting path does not
	// allocate a fresh slice per post.
	tags []string

	// rng is the member's private stream, forked at creation, so daily
	// posting decisions stay identical under any shard partitioning.
	rng *rng.RNG
}

// New creates an empty population using the given model.
func New(model Model, plat *platform.Platform, sched *clock.Scheduler, r *rng.RNG) *Population {
	p := &Population{
		model:   model,
		plat:    plat,
		sched:   sched,
		net:     plat.Net(),
		rng:     r,
		members: make(map[platform.AccountID]*member),
		pools:   make(map[string][]platform.AccountID),
		Reacted: make(map[string]int),
	}
	p.homeASNs = p.net.ByKind(netsim.KindResidential)
	if len(p.homeASNs) == 0 {
		panic("behavior: platform network has no residential ASNs for organic users")
	}
	return p
}

// SetStepPool installs the worker pool used for parallel planning of
// daily posting. A nil pool (the default) plans inline.
func (p *Population) SetStepPool(pool *step.Pool) { p.steps = pool }

// SetScratchReuse toggles cross-day reuse of the posting scratch
// buffers (on by default; reuse never changes the event stream).
func (p *Population) SetScratchReuse(on bool) { p.noReuse = !on }

// AddMembers grows the general population by n members drawn from
// GeneralSpec and returns their IDs.
func (p *Population) AddMembers(n int) []platform.AccountID {
	ids := p.addFromSpec("general", GeneralSpec(), n)
	p.general = append(p.general, ids...)
	return ids
}

// AddCuratedPool creates a curated pool named label with n members drawn
// from spec and returns their IDs. The pool is also retrievable via Pool.
func (p *Population) AddCuratedPool(label string, spec PoolSpec, n int) []platform.AccountID {
	ids := p.addFromSpec(label, spec, n)
	p.pools[label] = ids
	return ids
}

// Pool returns the members of a curated pool.
func (p *Population) Pool(label string) []platform.AccountID {
	return append([]platform.AccountID(nil), p.pools[label]...)
}

func (p *Population) addFromSpec(label string, spec PoolSpec, n int) []platform.AccountID {
	ids := make([]platform.AccountID, 0, n)
	for i := 0; i < n; i++ {
		p.nextName++
		country := p.pickCountry(spec.Countries)
		prof := Profile{
			Country:        country,
			OutDeg:         degreeFromMedian(p.rng, spec.OutDegMedian),
			InDeg:          degreeFromMedian(p.rng, spec.InDegMedian),
			LikeToLike:     jitterRate(p.rng, spec.LikeToLike),
			LikeToFollow:   jitterRate(p.rng, spec.LikeToFollow),
			FollowToFollow: jitterRate(p.rng, spec.FollowToFollow),
		}
		username := fmt.Sprintf("org-%s-%d", label, p.nextName)
		// Organic members keep modest profiles: a couple of photos so
		// their posts can receive likes.
		id, err := p.plat.RegisterAccount(username, "pw-"+username, platform.Profile{
			PhotoCount: 1 + p.rng.Intn(3), HasProfilePic: true, HasBio: true, HasName: true,
		}, country)
		if err != nil {
			panic(fmt.Sprintf("behavior: register organic member: %v", err))
		}
		prof.ID = id
		p.members[id] = &member{profile: prof, rng: p.rng.Fork(uint64(p.nextName))}
		p.ids = append(p.ids, id)
		ids = append(ids, id)
	}
	return ids
}

func (p *Population) pickCountry(ws []CountryWeight) string {
	if len(ws) == 0 {
		return "USA"
	}
	var total float64
	for _, w := range ws {
		total += w.Weight
	}
	x := p.rng.Float64() * total
	for _, w := range ws {
		if x < w.Weight {
			return w.Country
		}
		x -= w.Weight
	}
	return ws[len(ws)-1].Country
}

// degreeFromMedian draws a log-normal degree whose median is the given
// value (median of LogNormal(mu, sigma) is exp(mu)).
func degreeFromMedian(r *rng.RNG, median float64) int {
	if median <= 0 {
		return 0
	}
	return int(r.LogNormal(math.Log(median), degreeSigma))
}

// jitterRate scatters a mean probability across members while keeping the
// population mean close to the target: log-normal noise with mean 1.
func jitterRate(r *rng.RNG, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	// E[LogNormal(mu, s)] = exp(mu + s²/2); choose mu = -s²/2 for mean 1.
	noise := r.LogNormal(-rateJitterSigma*rateJitterSigma/2, rateJitterSigma)
	v := mean * noise
	if v > 1 {
		v = 1
	}
	return v
}

// Size returns the number of members.
func (p *Population) Size() int { return len(p.ids) }

// Members returns all member IDs in creation order.
func (p *Population) Members() []platform.AccountID {
	return append([]platform.AccountID(nil), p.ids...)
}

// IsMember reports whether id belongs to the population.
func (p *Population) IsMember(id platform.AccountID) bool {
	_, ok := p.members[id]
	return ok
}

// Profile returns the member's profile.
func (p *Population) Profile(id platform.AccountID) (Profile, bool) {
	m, ok := p.members[id]
	if !ok {
		return Profile{}, false
	}
	return m.profile, true
}

// RandomSample returns k distinct member IDs drawn uniformly from the
// general population — the "1,000 random Instagram accounts" baseline of
// Figures 3/4. Curated pool members are excluded: on the real platform
// AAS-targeted users are a vanishing fraction of all accounts, but in a
// scaled world they would otherwise dominate the sample.
func (p *Population) RandomSample(k int) []platform.AccountID {
	frame := p.general
	if len(frame) == 0 {
		frame = p.ids
	}
	idx := p.rng.Sample(len(frame), k)
	out := make([]platform.AccountID, len(idx))
	for i, j := range idx {
		out[i] = frame[j]
	}
	return out
}

// Wire subscribes the population to the platform's event stream so members
// react to inbound likes and follows. Call exactly once, after all event
// consumers that must see events earlier are attached.
func (p *Population) Wire() {
	p.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Outcome != platform.OutcomeAllowed || ev.Enforcement || ev.Duplicate {
			return
		}
		if ev.Type != platform.ActionLike && ev.Type != platform.ActionFollow {
			return
		}
		m, ok := p.members[ev.Target]
		if !ok || ev.Actor == ev.Target {
			return
		}
		p.maybeReciprocate(m, ev)
	})
}

func (p *Population) maybeReciprocate(m *member, ev platform.Event) {
	livedIn := false
	if prof, ok := p.plat.AccountProfile(ev.Actor); ok {
		livedIn = prof.LivedIn()
	}
	likeMult, followMult := 1.0, 1.0
	if livedIn {
		likeMult = p.model.LivedInLikeMult
		followMult = p.model.LivedInFollowMult
	}

	switch ev.Type {
	case platform.ActionLike:
		if p.rng.Bool(m.profile.LikeToLike * likeMult) {
			p.scheduleReaction(m, ev.Actor, platform.ActionLike, "like->like")
		}
		if p.rng.Bool(m.profile.LikeToFollow * likeMult) {
			p.scheduleReaction(m, ev.Actor, platform.ActionFollow, "like->follow")
		}
	case platform.ActionFollow:
		// follow→like never happens (Table 5: 0.0% across all cells).
		if p.rng.Bool(m.profile.FollowToFollow * followMult) {
			p.scheduleReaction(m, ev.Actor, platform.ActionFollow, "follow->follow")
		}
	}
}

func (p *Population) scheduleReaction(m *member, actor platform.AccountID, action platform.ActionType, channel string) {
	delay := time.Duration(p.rng.ExpFloat64() * float64(p.model.MeanReactionDelay))
	if delay > p.model.MaxReactionDelay {
		delay = p.model.MaxReactionDelay
	}
	if delay < time.Minute {
		delay = time.Minute
	}
	// The reaction lives in a table entry rather than closure captures so
	// snapshots can serialize it; the scheduled callback only points at
	// the entry. Same instant, same draws, same event.
	e := &pendingReaction{
		member: m.profile.ID, actor: actor, action: action,
		channel: channel, due: p.sched.Clock().Now().Add(delay),
	}
	p.reactions = append(p.reactions, e)
	p.sched.After(delay, func() { p.fireReaction(e) })
}

// fireReaction executes one scheduled reciprocal action and retires its
// table entry. Runs on the scheduler goroutine.
func (p *Population) fireReaction(e *pendingReaction) {
	e.done = true
	for i, pe := range p.reactions {
		if pe == e {
			p.reactions = append(p.reactions[:i], p.reactions[i+1:]...)
			break
		}
	}
	m, ok := p.members[e.member]
	if !ok {
		return
	}
	sess := p.session(m)
	if sess == nil {
		return
	}
	switch e.action {
	case platform.ActionLike:
		pid, ok := p.plat.LatestPost(e.actor)
		if !ok {
			return
		}
		if resp := sess.Do(platform.Request{Action: platform.ActionLike, Post: pid}); resp.Err != nil {
			return
		}
	case platform.ActionFollow:
		if resp := sess.Do(platform.Request{Action: platform.ActionFollow, Target: e.actor}); resp.Err != nil {
			return
		}
	}
	p.Reacted[e.channel]++
}

// session lazily logs the member in from a home-country residential IP.
func (p *Population) session(m *member) *platform.Session {
	if m.session != nil {
		return m.session
	}
	asn := p.homeASNFor(m.profile.Country)
	username, ok := p.plat.Username(m.profile.ID)
	if !ok {
		return nil
	}
	sess, err := p.plat.Login(username, "pw-"+username, platform.ClientInfo{
		IP:          p.net.Allocate(asn),
		Fingerprint: "mobile-official",
		API:         platform.APIPrivate,
	})
	if err != nil {
		return nil
	}
	m.session = sess
	return sess
}

func (p *Population) homeASNFor(country string) netsim.ASN {
	var candidates []netsim.ASN
	for _, a := range p.homeASNs {
		if info, ok := p.net.Info(a); ok && info.Country == country {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		candidates = p.homeASNs
	}
	return candidates[p.rng.Intn(len(candidates))]
}

// OutDegrees returns the nominal out-degrees of the given accounts —
// the Figure 3 sample extractor.
func (p *Population) OutDegrees(ids []platform.AccountID) []int {
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if m, ok := p.members[id]; ok {
			out = append(out, m.profile.OutDeg)
		}
	}
	return out
}

// InDegrees returns the nominal in-degrees of the given accounts —
// the Figure 4 sample extractor.
func (p *Population) InDegrees(ids []platform.AccountID) []int {
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if m, ok := p.members[id]; ok {
			out = append(out, m.profile.InDeg)
		}
	}
	return out
}

// TagPool hashtags an existing curated pool: each member's newest seed
// photo is tagged with one of the given hashtags, and the member remembers
// the tag for future posts. This builds the discovery surface customers
// point their AAS at when they supply hashtag lists (§3.3.1).
func (p *Population) TagPool(label string, tags ...string) {
	if len(tags) == 0 {
		return
	}
	for _, id := range p.pools[label] {
		m := p.members[id]
		if m == nil {
			continue
		}
		m.tag = tags[p.rng.Intn(len(tags))]
		m.tags = []string{m.tag}
		posts := p.plat.Posts(id)
		if len(posts) > 0 {
			p.plat.TagPost(id, posts[len(posts)-1], m.tag)
		}
	}
}

// StartPosting schedules organic posting for a pool's members: each day,
// each member posts with probability dailyProb, tagged with their
// interest. Fresh posts keep the hashtag discovery surface churning the
// way a live feed does.
func (p *Population) StartPosting(label string, days int, dailyProb float64) {
	ids := p.pools[label]
	if len(ids) == 0 {
		return
	}
	p.sched.EveryDay(13*time.Hour+30*time.Minute, days, func(int) {
		// Plan phase: each member's post decision comes from their own
		// stream, sharded independently of worker count; the posts — which
		// mutate the platform and may lazily log the member in — apply
		// serially in shard order.
		var bounds [][2]int
		var bufs *step.Buffers[*member]
		if p.noReuse {
			bounds = step.Chunks(len(ids), 64)
		} else {
			p.postChunks = step.ChunksInto(p.postChunks, len(ids), 64)
			bounds = p.postChunks
			bufs = &p.postBufs
		}
		step.RunInto(p.steps, bufs, len(bounds), func(si int, emit func(*member)) {
			for _, id := range ids[bounds[si][0]:bounds[si][1]] {
				m := p.members[id]
				if m != nil && m.rng.Bool(dailyProb) {
					emit(m)
				}
			}
		}, func(m *member) {
			sess := p.session(m)
			if sess == nil {
				return
			}
			if m.tag != "" {
				sess.Do(platform.Request{Action: platform.ActionPost, Tags: m.tags})
			} else {
				sess.Do(platform.Request{Action: platform.ActionPost})
			}
		})
	})
}
