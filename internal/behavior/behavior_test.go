package behavior

import (
	"math"
	"testing"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
	"footsteps/internal/socialgraph"
	"footsteps/internal/stats"
)

type world struct {
	plat  *platform.Platform
	sched *clock.Scheduler
	reg   *netsim.Registry
	pop   *Population
}

func newWorld(t *testing.T, seed uint64) *world {
	t.Helper()
	reg := netsim.NewRegistry()
	reg.Register(10, "us-res", "USA", netsim.KindResidential)
	reg.Register(11, "id-res", "IDN", netsim.KindResidential)
	reg.Register(20, "dc", "RUS", netsim.KindHosting)
	sched := clock.NewScheduler(clock.New())
	plat := platform.New(platform.DefaultConfig(), socialgraph.New(), reg, sched)
	pop := New(DefaultModel(), plat, sched, rng.New(seed))
	return &world{plat: plat, sched: sched, reg: reg, pop: pop}
}

// actor registers an external (non-population) account, returning a session.
func (w *world) actor(t *testing.T, name string, prof platform.Profile) *platform.Session {
	t.Helper()
	_, err := w.plat.RegisterAccount(name, "pw", prof, "USA")
	if err != nil {
		t.Fatal(err)
	}
	s, err := w.plat.Login(name, "pw", platform.ClientInfo{
		IP: w.reg.Allocate(20), Fingerprint: "spoof", API: platform.APIPrivate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAddMembersRegistersAccounts(t *testing.T) {
	w := newWorld(t, 1)
	ids := w.pop.AddMembers(50)
	if len(ids) != 50 || w.pop.Size() != 50 {
		t.Fatalf("got %d/%d members", len(ids), w.pop.Size())
	}
	for _, id := range ids {
		if !w.plat.Exists(id) {
			t.Fatalf("member %d not registered on platform", id)
		}
		if !w.pop.IsMember(id) {
			t.Fatalf("IsMember(%d) false", id)
		}
		prof, ok := w.pop.Profile(id)
		if !ok || prof.ID != id {
			t.Fatalf("profile missing for %d", id)
		}
		// Members must be likeable: at least one post.
		if len(w.plat.Posts(id)) == 0 {
			t.Fatalf("member %d has no posts", id)
		}
	}
	if w.pop.IsMember(platform.AccountID(99999)) {
		t.Fatal("non-member reported as member")
	}
}

func TestGeneralDegreeMedians(t *testing.T) {
	w := newWorld(t, 2)
	ids := w.pop.AddMembers(4000)
	outMed := stats.MedianInts(w.pop.OutDegrees(ids))
	inMed := stats.MedianInts(w.pop.InDegrees(ids))
	// Figures 3/4 random baselines: 465 following, 796 followers.
	if math.Abs(outMed-465) > 465*0.15 {
		t.Fatalf("general out-degree median %v, want ≈465", outMed)
	}
	if math.Abs(inMed-796) > 796*0.15 {
		t.Fatalf("general in-degree median %v, want ≈796", inMed)
	}
}

func TestCuratedPoolDegreeBias(t *testing.T) {
	w := newWorld(t, 3)
	w.pop.AddMembers(2000)
	spec := PoolSpec{
		LikeToLike: 0.02, LikeToFollow: 0.001, FollowToFollow: 0.11,
		OutDegMedian: 684, InDegMedian: 498,
	}
	pool := w.pop.AddCuratedPool("boostgram", spec, 2000)
	if got := w.pop.Pool("boostgram"); len(got) != 2000 {
		t.Fatalf("Pool returned %d ids", len(got))
	}
	poolOut := stats.MedianInts(w.pop.OutDegrees(pool))
	poolIn := stats.MedianInts(w.pop.InDegrees(pool))
	randOut := stats.MedianInts(w.pop.OutDegrees(w.pop.RandomSample(1000)))
	// Pool members follow more and are followed less than average —
	// the paper's targeting-bias result.
	if poolOut < randOut {
		t.Fatalf("pool out median %v < general %v", poolOut, randOut)
	}
	if poolIn > 700 {
		t.Fatalf("pool in median %v, want well below general 796", poolIn)
	}
}

func TestRandomSampleDistinct(t *testing.T) {
	w := newWorld(t, 4)
	w.pop.AddMembers(100)
	s := w.pop.RandomSample(50)
	if len(s) != 50 {
		t.Fatalf("sample size %d", len(s))
	}
	seen := make(map[platform.AccountID]bool)
	for _, id := range s {
		if seen[id] {
			t.Fatal("duplicate in sample")
		}
		seen[id] = true
		if !w.pop.IsMember(id) {
			t.Fatal("sample contains non-member")
		}
	}
}

// measureReciprocation drives outbound actions from a fresh actor to pool
// members and returns reciprocation rates per channel.
func measureReciprocation(t *testing.T, seed uint64, actorProfile platform.Profile, outbound platform.ActionType, spec PoolSpec, n int) (rateSame, rateCross float64) {
	t.Helper()
	w := newWorld(t, seed)
	pool := w.pop.AddCuratedPool("svc", spec, n)
	w.pop.Wire()
	actor := w.actor(t, "honeypot", actorProfile)

	for _, target := range pool {
		switch outbound {
		case platform.ActionLike:
			pid, ok := w.plat.LatestPost(target)
			if !ok {
				t.Fatal("pool member without post")
			}
			if err := actor.Do(platform.Request{Action: platform.ActionLike, Post: pid}).Err; err != nil {
				t.Fatal(err)
			}
		case platform.ActionFollow:
			if err := actor.Do(platform.Request{Action: platform.ActionFollow, Target: target}).Err; err != nil {
				t.Fatal(err)
			}
		}
		// Space actions out so rate limits never fire.
		w.sched.RunFor(2 * time.Minute)
	}
	w.sched.RunFor(5 * 24 * time.Hour) // let reactions land

	likes := float64(w.pop.Reacted["like->like"])
	followsOnLike := float64(w.pop.Reacted["like->follow"])
	follows := float64(w.pop.Reacted["follow->follow"])
	total := float64(n)
	if outbound == platform.ActionLike {
		return likes / total, followsOnLike / total
	}
	return follows / total, 0
}

func TestReciprocationLikeChannel(t *testing.T) {
	spec := PoolSpec{LikeToLike: 0.021, LikeToFollow: 0.0, FollowToFollow: 0.12,
		OutDegMedian: 554, InDegMedian: 384}
	rate, _ := measureReciprocation(t, 5, platform.Profile{PhotoCount: 10}, platform.ActionLike, spec, 4000)
	// Empty-account like→like should land near 2.1% (Table 5 Instazood).
	if rate < 0.012 || rate > 0.032 {
		t.Fatalf("empty like->like rate %.4f, want ≈0.021", rate)
	}
}

func TestReciprocationFollowChannel(t *testing.T) {
	spec := PoolSpec{LikeToLike: 0.021, LikeToFollow: 0.0, FollowToFollow: 0.13,
		OutDegMedian: 554, InDegMedian: 384}
	rate, _ := measureReciprocation(t, 6, platform.Profile{PhotoCount: 10}, platform.ActionFollow, spec, 3000)
	if rate < 0.10 || rate > 0.16 {
		t.Fatalf("empty follow->follow rate %.4f, want ≈0.13", rate)
	}
}

func TestLivedInBoost(t *testing.T) {
	spec := PoolSpec{LikeToLike: 0.02, LikeToFollow: 0, FollowToFollow: 0.11,
		OutDegMedian: 600, InDegMedian: 450}
	empty := platform.Profile{PhotoCount: 10}
	livedIn := platform.Profile{PhotoCount: 12, HasProfilePic: true, HasBio: true, HasName: true}
	rateE, _ := measureReciprocation(t, 7, empty, platform.ActionLike, spec, 4000)
	rateL, _ := measureReciprocation(t, 7, livedIn, platform.ActionLike, spec, 4000)
	if ratio := rateL / rateE; ratio < 1.5 || ratio > 2.9 {
		t.Fatalf("lived-in like boost %.2f, want ≈2.1 (Table 5 range 1.6–2.6)", ratio)
	}
}

func TestFollowNeverReciprocatedWithLike(t *testing.T) {
	w := newWorld(t, 8)
	pool := w.pop.AddCuratedPool("svc", PoolSpec{
		LikeToLike: 0.5, LikeToFollow: 0.5, FollowToFollow: 0.5,
		OutDegMedian: 600, InDegMedian: 450,
	}, 200)
	w.pop.Wire()
	actor := w.actor(t, "hp", platform.Profile{PhotoCount: 10})
	for _, target := range pool {
		actor.Do(platform.Request{Action: platform.ActionFollow, Target: target})
		w.sched.RunFor(time.Minute * 2)
	}
	w.sched.RunFor(5 * 24 * time.Hour)
	if w.pop.Reacted["like->like"] != 0 || w.pop.Reacted["like->follow"] != 0 {
		t.Fatalf("follow triggered like-channel reactions: %v", w.pop.Reacted)
	}
	if w.pop.Reacted["follow->follow"] == 0 {
		t.Fatal("no follow reciprocation at 50% rate")
	}
}

func TestInstalexQuirkChannel(t *testing.T) {
	// Instalex's pool reciprocates likes with follows at ~1.4% — an order
	// of magnitude above the other services. The model expresses this as a
	// pool property.
	spec := PoolSpec{LikeToLike: 0.021, LikeToFollow: 0.014, FollowToFollow: 0.128,
		OutDegMedian: 554, InDegMedian: 384}
	_, cross := measureReciprocation(t, 9, platform.Profile{PhotoCount: 10}, platform.ActionLike, spec, 5000)
	if cross < 0.008 || cross > 0.022 {
		t.Fatalf("like->follow rate %.4f, want ≈0.014", cross)
	}
}

func TestReactionsComeFromMemberSessions(t *testing.T) {
	w := newWorld(t, 10)
	pool := w.pop.AddCuratedPool("svc", PoolSpec{
		LikeToLike: 1, FollowToFollow: 1, OutDegMedian: 600, InDegMedian: 450,
	}, 5)
	w.pop.Wire()
	var reciprocal []platform.Event
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Type == platform.ActionFollow && w.pop.IsMember(ev.Actor) {
			reciprocal = append(reciprocal, ev)
		}
	})
	actor := w.actor(t, "hp", platform.Profile{PhotoCount: 10})
	for _, target := range pool {
		actor.Do(platform.Request{Action: platform.ActionFollow, Target: target})
	}
	w.sched.RunFor(3 * 24 * time.Hour)
	if len(reciprocal) != 5 {
		t.Fatalf("reciprocal follows = %d, want 5 at rate 1.0", len(reciprocal))
	}
	for _, ev := range reciprocal {
		if ev.Target != actor.Account() {
			t.Fatal("reciprocal follow aimed at wrong account")
		}
		if ev.Client != "mobile-official" {
			t.Fatalf("organic reaction with client %q", ev.Client)
		}
		// Reactions originate from residential space.
		info, ok := w.reg.Info(ev.ASN)
		if !ok || info.Kind != netsim.KindResidential {
			t.Fatalf("organic reaction from non-residential ASN %v", ev.ASN)
		}
	}
	// Graph edges exist too.
	for _, target := range pool {
		if !w.plat.Graph().Follows(target, actor.Account()) {
			t.Fatal("reciprocal follow not in graph")
		}
	}
}

func TestCountryWeights(t *testing.T) {
	w := newWorld(t, 11)
	ids := w.pop.AddCuratedPool("idpool", PoolSpec{
		LikeToLike: 0.01, FollowToFollow: 0.05, OutDegMedian: 500, InDegMedian: 500,
		Countries: []CountryWeight{{Country: "IDN", Weight: 0.8}, {Country: "USA", Weight: 0.2}},
	}, 1000)
	idn := 0
	for _, id := range ids {
		if prof, _ := w.pop.Profile(id); prof.Country == "IDN" {
			idn++
		}
	}
	if frac := float64(idn) / 1000; frac < 0.72 || frac > 0.88 {
		t.Fatalf("IDN fraction %.3f, want ≈0.8", frac)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() int {
		w := newWorld(t, 42)
		pool := w.pop.AddCuratedPool("svc", PoolSpec{
			LikeToLike: 0.1, FollowToFollow: 0.2, OutDegMedian: 500, InDegMedian: 500,
		}, 200)
		w.pop.Wire()
		actor := w.actor(t, "hp", platform.Profile{PhotoCount: 10})
		for _, target := range pool {
			actor.Do(platform.Request{Action: platform.ActionFollow, Target: target})
			w.sched.RunFor(time.Minute)
		}
		w.sched.RunFor(5 * 24 * time.Hour)
		return w.pop.Reacted["follow->follow"]
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different reciprocation counts: %d vs %d", a, b)
	}
}

func TestTagPoolAndPosting(t *testing.T) {
	w := newWorld(t, 12)
	pool := w.pop.AddCuratedPool("tagged", PoolSpec{
		LikeToLike: 0.01, FollowToFollow: 0.05, OutDegMedian: 500, InDegMedian: 500,
	}, 60)
	w.pop.TagPool("tagged", "fitness", "travel")

	// Seed photos are discoverable through the hashtag feeds.
	found := len(w.plat.RecentByTag("fitness", 100)) + len(w.plat.RecentByTag("travel", 100))
	if found != 60 {
		t.Fatalf("tagged %d seed posts, want 60", found)
	}

	// Posting keeps the feeds fresh.
	w.pop.StartPosting("tagged", 4, 0.5)
	w.sched.RunFor(4 * 24 * time.Hour)
	after := len(w.plat.RecentByTag("fitness", 300)) + len(w.plat.RecentByTag("travel", 300))
	if after <= found {
		t.Fatalf("no fresh tagged posts: %d -> %d", found, after)
	}
	// Fresh posts belong to pool members.
	for _, pid := range w.plat.RecentByTag("fitness", 10) {
		author, ok := w.plat.PostAuthor(pid)
		if !ok || !w.pop.IsMember(author) {
			t.Fatalf("tagged post %d not from a pool member", pid)
		}
	}
	_ = pool
}

func TestTagPoolNoTagsNoop(t *testing.T) {
	w := newWorld(t, 13)
	w.pop.AddCuratedPool("plain", PoolSpec{
		LikeToLike: 0.01, FollowToFollow: 0.05, OutDegMedian: 500, InDegMedian: 500,
	}, 5)
	w.pop.TagPool("plain") // no tags: nothing indexed
	w.pop.StartPosting("missing-pool", 2, 1)
	if got := w.plat.RecentByTag("", 10); got != nil {
		t.Fatalf("empty tag indexed: %v", got)
	}
}
