package behavior

import (
	"sort"
	"time"

	"footsteps/internal/platform"
	"footsteps/internal/rng"
)

// Snapshot/restore support (see internal/persistence). Member order is
// preserved verbatim — p.ids drives iteration in the posting planner, so
// the serialized order is the creation order, not a sorted one.

// State is the complete mutable state of a Population.
type State struct {
	RNG      rng.State
	NextName int
	Members  []MemberState // in creation (p.ids) order
	General  []platform.AccountID
	Pools    []PoolState    // sorted by label
	Reacted  []ChannelCount // sorted by channel
	// Reactions are the scheduled-but-unfired reciprocal actions, in
	// scheduling order.
	Reactions []ReactionState
}

// MemberState is one organic member, flattened.
type MemberState struct {
	Profile Profile
	Tag     string
	Session platform.SessionState
	RNG     rng.State
}

// PoolState is one curated pool's membership.
type PoolState struct {
	Label string
	IDs   []platform.AccountID
}

// ChannelCount is one reciprocation-channel tally.
type ChannelCount struct {
	Channel string
	N       int
}

// ReactionState is one pending reciprocal action.
type ReactionState struct {
	Member  platform.AccountID
	Actor   platform.AccountID
	Action  platform.ActionType
	Channel string
	Due     time.Time
}

// SnapshotState captures the population's complete mutable state.
func (p *Population) SnapshotState() *State {
	st := &State{
		RNG:      p.rng.State(),
		NextName: p.nextName,
		General:  append([]platform.AccountID(nil), p.general...),
	}
	for _, id := range p.ids {
		m := p.members[id]
		st.Members = append(st.Members, MemberState{
			Profile: m.profile,
			Tag:     m.tag,
			Session: platform.CaptureSession(m.session),
			RNG:     m.rng.State(),
		})
	}
	for label, ids := range p.pools {
		st.Pools = append(st.Pools, PoolState{Label: label, IDs: append([]platform.AccountID(nil), ids...)})
	}
	sort.Slice(st.Pools, func(i, j int) bool { return st.Pools[i].Label < st.Pools[j].Label })
	for ch, n := range p.Reacted {
		st.Reacted = append(st.Reacted, ChannelCount{Channel: ch, N: n})
	}
	sort.Slice(st.Reacted, func(i, j int) bool { return st.Reacted[i].Channel < st.Reacted[j].Channel })
	for _, e := range p.reactions {
		if e.done {
			continue
		}
		st.Reactions = append(st.Reactions, ReactionState{
			Member: e.member, Actor: e.actor, Action: e.action, Channel: e.channel, Due: e.due,
		})
	}
	return st
}

// RestoreState overwrites the population's mutable state with a
// snapshot. The caller must re-register pending reactions separately via
// RestoreReactions once the scheduler sits at the snapshot instant.
func (p *Population) RestoreState(st *State) {
	p.rng.SetState(st.RNG)
	p.nextName = st.NextName
	clear(p.members)
	p.ids = p.ids[:0]
	p.general = append(p.general[:0], st.General...)
	clear(p.pools)
	for i := range st.Members {
		ms := &st.Members[i]
		m := &member{
			profile: ms.Profile,
			session: p.plat.RestoreSession(ms.Session),
			tag:     ms.Tag,
			rng:     rng.FromState(ms.RNG),
		}
		if m.tag != "" {
			m.tags = []string{m.tag}
		}
		p.members[ms.Profile.ID] = m
		p.ids = append(p.ids, ms.Profile.ID)
	}
	for _, ps := range st.Pools {
		p.pools[ps.Label] = append([]platform.AccountID(nil), ps.IDs...)
	}
	clear(p.Reacted)
	for _, cc := range st.Reacted {
		p.Reacted[cc.Channel] = cc.N
	}
}

// RestoreReactions re-registers pending reciprocal actions from a
// snapshot, in their original scheduling order.
func (p *Population) RestoreReactions(sts []ReactionState) {
	p.reactions = p.reactions[:0]
	for _, rs := range sts {
		e := &pendingReaction{
			member: rs.Member, actor: rs.Actor, action: rs.Action,
			channel: rs.Channel, due: rs.Due,
		}
		p.reactions = append(p.reactions, e)
		p.sched.At(e.due, func() { p.fireReaction(e) })
	}
}
