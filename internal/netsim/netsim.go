// Package netsim models the slice of the Internet the study needs: a
// registry of autonomous systems, IPv4 address allocation within them, and
// IP-to-country geolocation.
//
// The paper's detection signals and interventions key on the ASN and IP of
// each platform request, and the services' post-intervention evasion worked
// by moving traffic across ASNs and through proxy networks. This package
// gives both sides the same address-level decision surface the real study
// had, without any real network I/O.
package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"footsteps/internal/rng"
)

// ASN identifies an autonomous system. Zero is never a valid ASN.
type ASN uint32

// Kind classifies an AS by the character of its address space. Detection
// treats traffic from hosting ASNs with more suspicion than residential.
type Kind int

// AS kinds.
const (
	KindResidential Kind = iota // consumer eyeball networks
	KindCommercial              // business / mobile carriers
	KindHosting                 // datacenters, VPS providers
)

func (k Kind) String() string {
	switch k {
	case KindResidential:
		return "residential"
	case KindCommercial:
		return "commercial"
	case KindHosting:
		return "hosting"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ASInfo describes a registered autonomous system.
type ASInfo struct {
	ASN     ASN
	Name    string
	Country string // ISO 3166-1 alpha-3, as the paper prints (USA, GBR, ...)
	Kind    Kind
}

// Registry owns the ASN table and address allocation. It is safe for
// concurrent use.
//
// Address plan: each registered ASN receives the /8-style block
// 10.x.0.0/16 is too small for large populations, so each ASN n owns the
// 32-bit range [n<<20, (n+1)<<20) mapped into IPv4 space — a /12 per ASN,
// over a million addresses, allocated sequentially. The mapping is private
// to the simulator; only Lookup and Country inspect it.
type Registry struct {
	mu    sync.RWMutex
	infos map[ASN]ASInfo
	next  map[ASN]uint32 // next host offset within the ASN's block
	order []ASN          // registration order, for deterministic iteration
	rib   *PrefixTrie    // longest-prefix-match ownership table

	// health, when set, degrades Availability answers per ASN; nil
	// means the whole network is fully available (see health.go).
	health *HealthSchedule
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		infos: make(map[ASN]ASInfo),
		next:  make(map[ASN]uint32),
		rib:   NewPrefixTrie(),
	}
}

const hostBits = 20 // 2^20 addresses per ASN

// maxASN keeps ASN<<hostBits within 32 bits.
const maxASN = ASN(1<<(32-hostBits)) - 1

// Register adds an autonomous system. Registering the same ASN twice or an
// ASN outside (0, maxASN] is a programming error and panics.
func (r *Registry) Register(asn ASN, name, country string, kind Kind) ASInfo {
	if asn == 0 || asn > maxASN {
		panic(fmt.Sprintf("netsim: ASN %d out of range (1..%d)", asn, maxASN))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.infos[asn]; dup {
		panic(fmt.Sprintf("netsim: ASN %d registered twice", asn))
	}
	info := ASInfo{ASN: asn, Name: name, Country: country, Kind: kind}
	r.infos[asn] = info
	r.order = append(r.order, asn)
	// Announce the ASN's aggregate block into the routing table.
	if err := r.rib.Insert(netip.PrefixFrom(addrFor(asn, 0), 32-hostBits), asn); err != nil {
		panic(err)
	}
	return info
}

// AnnouncePrefix installs a more-specific route: prefix → asn. The ASN
// must already be registered. Longest-prefix-match applies, so a /24
// carved from another ASN's aggregate is owned by the announcer — the
// mechanics beneath leased proxy space.
func (r *Registry) AnnouncePrefix(prefix netip.Prefix, asn ASN) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.infos[asn]; !ok {
		return fmt.Errorf("netsim: AnnouncePrefix for unregistered ASN %d", asn)
	}
	return r.rib.Insert(prefix, asn)
}

// Info returns the metadata for asn.
func (r *Registry) Info(asn ASN) (ASInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.infos[asn]
	return info, ok
}

// ASNs returns all registered ASNs in registration order.
func (r *Registry) ASNs() []ASN {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]ASN(nil), r.order...)
}

// ByKind returns registered ASNs of the given kind, in registration order.
func (r *Registry) ByKind(kind Kind) []ASN {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ASN
	for _, a := range r.order {
		if r.infos[a].Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

// ByCountry returns registered ASNs located in country, in registration order.
func (r *Registry) ByCountry(country string) []ASN {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ASN
	for _, a := range r.order {
		if r.infos[a].Country == country {
			out = append(out, a)
		}
	}
	return out
}

// Allocate returns a fresh address inside asn's block. It panics if the ASN
// is unregistered or its block is exhausted.
func (r *Registry) Allocate(asn ASN) netip.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.infos[asn]; !ok {
		panic(fmt.Sprintf("netsim: Allocate from unregistered ASN %d", asn))
	}
	host := r.next[asn]
	if host >= 1<<hostBits {
		panic(fmt.Sprintf("netsim: ASN %d address block exhausted", asn))
	}
	r.next[asn] = host + 1
	return addrFor(asn, host)
}

// AllocState is one ASN's allocation cursor — the only mutable state a
// Registry accumulates after construction. Snapshots carry these so a
// restored world hands out the same future addresses the original would.
type AllocState struct {
	ASN  ASN
	Next uint32
}

// SnapshotAlloc returns the allocation cursors of every ASN that has
// handed out at least one address, sorted by ASN.
func (r *Registry) SnapshotAlloc() []AllocState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]AllocState, 0, len(r.next))
	for asn, n := range r.next {
		out = append(out, AllocState{ASN: asn, Next: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// RestoreAlloc overwrites the allocation cursors with a snapshot taken by
// SnapshotAlloc. ASNs absent from st reset to an untouched block.
func (r *Registry) RestoreAlloc(st []AllocState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.next)
	for _, a := range st {
		r.next[a.ASN] = a.Next
	}
}

func addrFor(asn ASN, host uint32) netip.Addr {
	v := uint32(asn)<<hostBits | host
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Lookup returns the ASN owning addr under longest-prefix-match, or
// (0, false) for addresses outside any announced block.
func (r *Registry) Lookup(addr netip.Addr) (ASN, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rib.Lookup(addr)
}

// Country geolocates addr to the country of its owning ASN. Unknown
// addresses geolocate to "" — the platform records them but cannot place
// them, mirroring gaps in real IP geolocation databases.
func (r *Registry) Country(addr netip.Addr) string {
	asn, ok := r.Lookup(addr)
	if !ok {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.infos[asn].Country
}

// ProxyPool is a set of addresses spread across many ASNs, used by services
// to diversify the origin of their traffic after detection (§6.4 epilogue:
// "one of them going so far as to use an extensive proxy network to
// drastically increase IP diversity").
type ProxyPool struct {
	addrs []netip.Addr
	rng   *rng.RNG
}

// NewProxyPool draws size proxy addresses, spreading them round-robin over
// the given ASNs. It panics if asns is empty or size is not positive.
func NewProxyPool(reg *Registry, asns []ASN, size int, r *rng.RNG) *ProxyPool {
	if len(asns) == 0 {
		panic("netsim: proxy pool with no ASNs")
	}
	if size <= 0 {
		panic("netsim: proxy pool with non-positive size")
	}
	p := &ProxyPool{addrs: make([]netip.Addr, 0, size), rng: r}
	for i := 0; i < size; i++ {
		p.addrs = append(p.addrs, reg.Allocate(asns[i%len(asns)]))
	}
	return p
}

// Pick returns a uniformly chosen proxy address.
func (p *ProxyPool) Pick() netip.Addr {
	return p.addrs[p.rng.Intn(len(p.addrs))]
}

// PickFrom returns a uniformly chosen proxy address drawing from r
// instead of the pool's own stream — for callers (such as per-customer
// resilience paths) that must not consume draws from the shared pool
// stream.
func (p *ProxyPool) PickFrom(r *rng.RNG) netip.Addr {
	return p.addrs[r.Intn(len(p.addrs))]
}

// Size returns the number of proxies in the pool.
func (p *ProxyPool) Size() int { return len(p.addrs) }

// RNGState snapshots the pool's own pick stream (used by Pick, not
// PickFrom) so restores resume the same pick sequence.
func (p *ProxyPool) RNGState() rng.State { return p.rng.State() }

// SetRNGState overwrites the pool's pick stream state.
func (p *ProxyPool) SetRNGState(st rng.State) { p.rng.SetState(st) }

// DistinctASNs reports how many distinct ASNs the pool spans — the paper's
// measure of post-block IP diversity.
func (p *ProxyPool) DistinctASNs(reg *Registry) int {
	seen := make(map[ASN]struct{})
	for _, a := range p.addrs {
		if asn, ok := reg.Lookup(a); ok {
			seen[asn] = struct{}{}
		}
	}
	return len(seen)
}

// CountryShare aggregates a set of addresses into per-country fractions,
// the computation behind Figure 2. Countries below the threshold fraction
// collapse into "OTHER". The result is sorted by descending share, with
// OTHER always last when present.
func CountryShare(reg *Registry, addrs []netip.Addr, threshold float64) []CountryFraction {
	if len(addrs) == 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, a := range addrs {
		c := reg.Country(a)
		if c == "" {
			c = "OTHER"
		}
		counts[c]++
	}
	total := float64(len(addrs))
	other := 0
	var out []CountryFraction
	for c, n := range counts {
		frac := float64(n) / total
		if c == "OTHER" || frac < threshold {
			other += n
			continue
		}
		out = append(out, CountryFraction{Country: c, Fraction: frac})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction != out[j].Fraction {
			return out[i].Fraction > out[j].Fraction
		}
		return out[i].Country < out[j].Country
	})
	if other > 0 {
		out = append(out, CountryFraction{Country: "OTHER", Fraction: float64(other) / total})
	}
	return out
}

// CountryFraction is one bar of the Figure 2 chart.
type CountryFraction struct {
	Country  string
	Fraction float64
}
