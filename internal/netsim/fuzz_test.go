package netsim

import (
	"net/netip"
	"testing"
)

// FuzzTrieLookup drives the routing trie with an arbitrary announcement
// sequence and lookup address. The trie must never panic, and its
// longest-prefix-match answer must agree with a naive linear scan over
// the same announcements — the executable definition of LPM.
//
// The byte stream encodes announcements in 6-byte records: 4 address
// bytes, one prefix length, one ASN byte (0 ⇒ the insert is rejected,
// which the naive model mirrors).
func FuzzTrieLookup(f *testing.F) {
	f.Add([]byte{10, 0, 0, 0, 8, 1, 192, 168, 1, 0, 24, 2}, byte(10), byte(0), byte(0), byte(1))
	f.Add([]byte{10, 0, 0, 0, 8, 1, 10, 1, 0, 0, 16, 2, 10, 1, 2, 0, 24, 3}, byte(10), byte(1), byte(2), byte(9))
	f.Add([]byte{0, 0, 0, 0, 0, 7}, byte(1), byte(2), byte(3), byte(4))
	f.Fuzz(func(t *testing.T, data []byte, a, b, c, d byte) {
		trie := NewPrefixTrie()
		naive := make(map[netip.Prefix]ASN)
		for len(data) >= 6 {
			rec := data[:6]
			data = data[6:]
			addr := netip.AddrFrom4([4]byte{rec[0], rec[1], rec[2], rec[3]})
			bits := int(rec[4]) % 33
			asn := ASN(rec[5])
			prefix := netip.PrefixFrom(addr, bits).Masked()
			err := trie.Insert(prefix, asn)
			if asn == 0 {
				if err == nil {
					t.Fatal("Insert accepted ASN 0")
				}
				continue
			}
			if err != nil {
				t.Fatalf("Insert(%v, %d): %v", prefix, asn, err)
			}
			naive[prefix] = asn
		}
		if trie.Len() != len(naive) {
			t.Fatalf("trie.Len() = %d, naive has %d prefixes", trie.Len(), len(naive))
		}

		probe := netip.AddrFrom4([4]byte{a, b, c, d})
		gotASN, gotOK := trie.Lookup(probe)

		var wantASN ASN
		wantBits, wantOK := -1, false
		for p, asn := range naive {
			if p.Contains(probe) && p.Bits() > wantBits {
				wantASN, wantBits, wantOK = asn, p.Bits(), true
			}
		}
		if gotOK != wantOK || (wantOK && gotASN != wantASN) {
			t.Fatalf("Lookup(%v) = (%d, %v), naive LPM says (%d, %v)",
				probe, gotASN, gotOK, wantASN, wantOK)
		}
	})
}
