package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestTrieLongestPrefixMatch(t *testing.T) {
	t.Parallel()
	tr := NewPrefixTrie()
	must := func(p string, asn ASN) {
		if err := tr.Insert(netip.MustParsePrefix(p), asn); err != nil {
			t.Fatal(err)
		}
	}
	must("10.0.0.0/8", 100)
	must("10.1.0.0/16", 200)
	must("10.1.2.0/24", 300)

	cases := []struct {
		addr string
		want ASN
		ok   bool
	}{
		{"10.9.9.9", 100, true}, // only the /8 covers
		{"10.1.9.9", 200, true}, // /16 beats /8
		{"10.1.2.9", 300, true}, // /24 beats both
		{"11.0.0.1", 0, false},  // uncovered
		{"10.1.3.1", 200, true}, // adjacent /24 falls back to /16
		{"10.255.255.255", 100, true},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = %d, %v; want %d, %v", c.addr, got, ok, c.want, c.ok)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len %d", tr.Len())
	}
}

func TestTrieReplaceAndZeroLength(t *testing.T) {
	t.Parallel()
	tr := NewPrefixTrie()
	p := netip.MustParsePrefix("192.168.0.0/16")
	tr.Insert(p, 1)
	tr.Insert(p, 2) // replace
	if tr.Len() != 1 {
		t.Fatalf("Len %d after replace", tr.Len())
	}
	if asn, _ := tr.Lookup(netip.MustParseAddr("192.168.1.1")); asn != 2 {
		t.Fatalf("asn %d after replace", asn)
	}
	// Default route covers everything.
	tr.Insert(netip.MustParsePrefix("0.0.0.0/0"), 9)
	if asn, ok := tr.Lookup(netip.MustParseAddr("8.8.8.8")); !ok || asn != 9 {
		t.Fatalf("default route lookup %d %v", asn, ok)
	}
	// More specific still wins over default.
	if asn, _ := tr.Lookup(netip.MustParseAddr("192.168.1.1")); asn != 2 {
		t.Fatal("default route shadowed a specific")
	}
}

func TestTrieRejectsBadInput(t *testing.T) {
	t.Parallel()
	tr := NewPrefixTrie()
	if err := tr.Insert(netip.MustParsePrefix("2001:db8::/32"), 1); err == nil {
		t.Fatal("IPv6 prefix accepted")
	}
	if err := tr.Insert(netip.MustParsePrefix("10.0.0.0/8"), 0); err == nil {
		t.Fatal("ASN 0 accepted")
	}
	if _, ok := tr.Lookup(netip.MustParseAddr("::1")); ok {
		t.Fatal("IPv6 lookup matched")
	}
}

func TestTrieHostRoutes(t *testing.T) {
	t.Parallel()
	tr := NewPrefixTrie()
	tr.Insert(netip.MustParsePrefix("10.0.0.5/32"), 7)
	if asn, ok := tr.Lookup(netip.MustParseAddr("10.0.0.5")); !ok || asn != 7 {
		t.Fatal("host route miss")
	}
	if _, ok := tr.Lookup(netip.MustParseAddr("10.0.0.6")); ok {
		t.Fatal("host route over-matched")
	}
}

func TestTrieWalkEnumeratesAll(t *testing.T) {
	t.Parallel()
	tr := NewPrefixTrie()
	want := map[string]ASN{
		"10.0.0.0/8":    100,
		"10.1.0.0/16":   200,
		"172.16.0.0/12": 300,
	}
	for p, a := range want {
		tr.Insert(netip.MustParsePrefix(p), a)
	}
	got := map[string]ASN{}
	tr.Walk(func(p netip.Prefix, asn ASN) bool {
		got[p.String()] = asn
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("walk visited %v", got)
	}
	for p, a := range want {
		if got[p] != a {
			t.Errorf("walk %s = %d, want %d", p, got[p], a)
		}
	}
	// Early stop.
	visits := 0
	tr.Walk(func(netip.Prefix, ASN) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("walk did not stop early: %d visits", visits)
	}
}

// Property: for random prefix sets, Lookup agrees with a brute-force
// longest-prefix scan.
func TestTrieMatchesBruteForce(t *testing.T) {
	t.Parallel()
	type entry struct {
		prefix netip.Prefix
		asn    ASN
	}
	check := func(seeds []uint32, probes []uint32) bool {
		tr := NewPrefixTrie()
		var entries []entry
		for i, s := range seeds {
			if i >= 20 {
				break
			}
			bits := int(s % 33)
			v := s
			addr := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
			p, err := addr.Prefix(bits)
			if err != nil {
				continue
			}
			asn := ASN(i + 1)
			tr.Insert(p, asn)
			// Later inserts replace earlier identical prefixes, as in the
			// trie; mirror that in the brute list.
			replaced := false
			for j := range entries {
				if entries[j].prefix == p {
					entries[j].asn = asn
					replaced = true
				}
			}
			if !replaced {
				entries = append(entries, entry{p, asn})
			}
		}
		for i, pr := range probes {
			if i >= 30 {
				break
			}
			addr := netip.AddrFrom4([4]byte{byte(pr >> 24), byte(pr >> 16), byte(pr >> 8), byte(pr)})
			var best entry
			found := false
			for _, e := range entries {
				if e.prefix.Contains(addr) && (!found || e.prefix.Bits() > best.prefix.Bits()) {
					best, found = e, true
				}
			}
			got, ok := tr.Lookup(addr)
			if ok != found {
				return false
			}
			if found && got != best.asn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryAnnouncePrefix(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	// ASN 100 owns its /12; carve a /24 out of it for ASN 300 (a proxy
	// customer leasing space).
	base := r.Allocate(100)
	carve, err := base.Prefix(24)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AnnouncePrefix(carve, 300); err != nil {
		t.Fatal(err)
	}
	if asn, _ := r.Lookup(base); asn != 300 {
		t.Fatalf("carved address owned by %d, want 300", asn)
	}
	// The rest of the /12 still belongs to 100: probe an address outside
	// the /24 (host offset 1<<10).
	outside := r.Allocate(100)
	for i := 0; i < 1024; i++ {
		outside = r.Allocate(100)
	}
	if asn, _ := r.Lookup(outside); asn != 100 {
		t.Fatalf("aggregate address owned by %d, want 100", asn)
	}
	if err := r.AnnouncePrefix(carve, 999); err == nil {
		t.Fatal("announce for unregistered ASN accepted")
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	tr := NewPrefixTrie()
	for i := 1; i <= 1000; i++ {
		v := uint32(i) << 20
		addr := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
		p, _ := addr.Prefix(12 + i%12)
		tr.Insert(p, ASN(i))
	}
	probe := netip.MustParseAddr("0.16.0.1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(probe)
	}
}
