package netsim

import "time"

// HealthWindow is one interval of degraded availability for an ASN:
// during [From, Until), only an Availability fraction of requests
// originating from the ASN succeed. Availability 0 is a full outage.
type HealthWindow struct {
	ASN          ASN
	From, Until  time.Time
	Availability float64 // fraction of requests served, clamped to [0, 1]
}

// HealthSchedule is a static per-ASN availability timetable. It is
// immutable after construction, so concurrent reads need no lock.
type HealthSchedule struct {
	windows []HealthWindow
}

// NewHealthSchedule builds a schedule from the given windows,
// clamping each availability into [0, 1].
func NewHealthSchedule(ws ...HealthWindow) *HealthSchedule {
	cp := make([]HealthWindow, len(ws))
	copy(cp, ws)
	for i := range cp {
		if cp[i].Availability < 0 {
			cp[i].Availability = 0
		} else if cp[i].Availability > 1 {
			cp[i].Availability = 1
		}
	}
	return &HealthSchedule{windows: cp}
}

// Windows returns a copy of the schedule's windows.
func (h *HealthSchedule) Windows() []HealthWindow {
	if h == nil {
		return nil
	}
	return append([]HealthWindow(nil), h.windows...)
}

// Availability returns the fraction of asn's requests served at the
// given instant: 1.0 outside every window, and the minimum across
// overlapping active windows otherwise.
func (h *HealthSchedule) Availability(asn ASN, at time.Time) float64 {
	avail := 1.0
	if h == nil {
		return avail
	}
	for _, w := range h.windows {
		if w.ASN != asn || at.Before(w.From) || !at.Before(w.Until) {
			continue
		}
		if w.Availability < avail {
			avail = w.Availability
		}
	}
	return avail
}

// SetHealth installs an availability schedule for the registry's ASNs.
// A nil schedule restores full health.
func (r *Registry) SetHealth(h *HealthSchedule) {
	r.mu.Lock()
	r.health = h
	r.mu.Unlock()
}

// Availability reports the fraction of asn's requests the network
// serves at the given instant (1.0 without a health schedule).
func (r *Registry) Availability(asn ASN, at time.Time) float64 {
	r.mu.RLock()
	h := r.health
	r.mu.RUnlock()
	return h.Availability(asn, at)
}
