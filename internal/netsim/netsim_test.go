package netsim

import (
	"math"
	"net/netip"
	"testing"

	"footsteps/internal/rng"
)

func newTestRegistry() *Registry {
	r := NewRegistry()
	r.Register(100, "ru-host", "RUS", KindHosting)
	r.Register(200, "us-host", "USA", KindHosting)
	r.Register(300, "id-res", "IDN", KindResidential)
	r.Register(400, "us-res", "USA", KindResidential)
	return r
}

func TestRegisterAndInfo(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	info, ok := r.Info(100)
	if !ok || info.Name != "ru-host" || info.Country != "RUS" || info.Kind != KindHosting {
		t.Fatalf("Info(100) = %+v, %v", info, ok)
	}
	if _, ok := r.Info(999); ok {
		t.Fatal("Info on unregistered ASN succeeded")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register(100, "dup", "USA", KindHosting)
}

func TestRegisterZeroPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Register(0) did not panic")
		}
	}()
	NewRegistry().Register(0, "zero", "USA", KindHosting)
}

func TestAllocateLookupRoundTrip(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	for i := 0; i < 100; i++ {
		addr := r.Allocate(300)
		asn, ok := r.Lookup(addr)
		if !ok || asn != 300 {
			t.Fatalf("Lookup(%v) = %v, %v; want 300", addr, asn, ok)
		}
		if got := r.Country(addr); got != "IDN" {
			t.Fatalf("Country(%v) = %q, want IDN", addr, got)
		}
	}
}

func TestAllocateDistinct(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	seen := make(map[netip.Addr]bool)
	for i := 0; i < 1000; i++ {
		a := r.Allocate(100)
		if seen[a] {
			t.Fatalf("Allocate returned duplicate address %v", a)
		}
		seen[a] = true
	}
}

func TestAllocateUnregisteredPanics(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("Allocate from unregistered ASN did not panic")
		}
	}()
	r.Allocate(999)
}

func TestLookupUnknown(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	if _, ok := r.Lookup(netip.MustParseAddr("255.255.255.255")); ok {
		t.Fatal("Lookup of unallocated space succeeded")
	}
	if _, ok := r.Lookup(netip.MustParseAddr("::1")); ok {
		t.Fatal("Lookup of IPv6 succeeded")
	}
	if c := r.Country(netip.MustParseAddr("255.255.255.255")); c != "" {
		t.Fatalf("Country of unknown address = %q", c)
	}
}

func TestByKindByCountry(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	hosting := r.ByKind(KindHosting)
	if len(hosting) != 2 || hosting[0] != 100 || hosting[1] != 200 {
		t.Fatalf("ByKind(hosting) = %v", hosting)
	}
	usa := r.ByCountry("USA")
	if len(usa) != 2 || usa[0] != 200 || usa[1] != 400 {
		t.Fatalf("ByCountry(USA) = %v", usa)
	}
	if got := r.ASNs(); len(got) != 4 {
		t.Fatalf("ASNs() = %v", got)
	}
}

func TestKindString(t *testing.T) {
	t.Parallel()
	if KindResidential.String() != "residential" || KindHosting.String() != "hosting" ||
		KindCommercial.String() != "commercial" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatalf("unknown kind string %q", Kind(42).String())
	}
}

func TestProxyPoolSpansASNs(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	pool := NewProxyPool(r, []ASN{100, 200, 300}, 90, rng.New(1))
	if pool.Size() != 90 {
		t.Fatalf("Size() = %d", pool.Size())
	}
	if got := pool.DistinctASNs(r); got != 3 {
		t.Fatalf("DistinctASNs = %d, want 3", got)
	}
	// Pick always returns pool members.
	members := make(map[netip.Addr]bool)
	for _, a := range pool.addrs {
		members[a] = true
	}
	for i := 0; i < 200; i++ {
		if !members[pool.Pick()] {
			t.Fatal("Pick returned non-member address")
		}
	}
}

func TestProxyPoolPanics(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	for name, fn := range map[string]func(){
		"no asns":   func() { NewProxyPool(r, nil, 5, rng.New(1)) },
		"zero size": func() { NewProxyPool(r, []ASN{100}, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCountryShare(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	var addrs []netip.Addr
	for i := 0; i < 60; i++ {
		addrs = append(addrs, r.Allocate(300)) // IDN
	}
	for i := 0; i < 30; i++ {
		addrs = append(addrs, r.Allocate(200)) // USA
	}
	for i := 0; i < 10; i++ {
		addrs = append(addrs, r.Allocate(100)) // RUS
	}
	shares := CountryShare(r, addrs, 0.20)
	if len(shares) != 3 {
		t.Fatalf("shares = %+v", shares)
	}
	if shares[0].Country != "IDN" || math.Abs(shares[0].Fraction-0.6) > 1e-9 {
		t.Fatalf("top share = %+v", shares[0])
	}
	if shares[1].Country != "USA" {
		t.Fatalf("second share = %+v", shares[1])
	}
	if shares[2].Country != "OTHER" || math.Abs(shares[2].Fraction-0.1) > 1e-9 {
		t.Fatalf("OTHER share = %+v", shares[2])
	}
}

func TestCountryShareEmpty(t *testing.T) {
	t.Parallel()
	if CountryShare(newTestRegistry(), nil, 0.05) != nil {
		t.Fatal("CountryShare(nil) != nil")
	}
}

func TestCountryShareFractionsSumToOne(t *testing.T) {
	t.Parallel()
	r := newTestRegistry()
	var addrs []netip.Addr
	for _, asn := range []ASN{100, 200, 300, 400} {
		for i := 0; i < 25; i++ {
			addrs = append(addrs, r.Allocate(asn))
		}
	}
	var sum float64
	for _, s := range CountryShare(r, addrs, 0.05) {
		sum += s.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
}
