package netsim

import (
	"testing"
	"time"

	"footsteps/internal/rng"
)

var healthT0 = time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)

func TestHealthScheduleAvailability(t *testing.T) {
	h := NewHealthSchedule(
		HealthWindow{ASN: 10, From: healthT0, Until: healthT0.Add(2 * time.Hour), Availability: 0.5},
		HealthWindow{ASN: 10, From: healthT0.Add(time.Hour), Until: healthT0.Add(3 * time.Hour), Availability: 0.2},
		HealthWindow{ASN: 20, From: healthT0, Until: healthT0.Add(time.Hour), Availability: 0},
	)
	cases := []struct {
		asn  ASN
		at   time.Time
		want float64
	}{
		{10, healthT0.Add(-time.Minute), 1},        // before any window
		{10, healthT0, 0.5},                        // inclusive start
		{10, healthT0.Add(90 * time.Minute), 0.2},  // overlap: minimum wins
		{10, healthT0.Add(150 * time.Minute), 0.2}, // second window only
		{10, healthT0.Add(3 * time.Hour), 1},       // exclusive end
		{20, healthT0.Add(30 * time.Minute), 0},    // full outage
		{30, healthT0.Add(30 * time.Minute), 1},    // unscheduled ASN
	}
	for _, tc := range cases {
		if got := h.Availability(tc.asn, tc.at); got != tc.want {
			t.Errorf("Availability(%d, %v) = %g, want %g", tc.asn, tc.at, got, tc.want)
		}
	}
	var nilSched *HealthSchedule
	if got := nilSched.Availability(10, healthT0); got != 1 {
		t.Errorf("nil schedule availability = %g, want 1", got)
	}
}

func TestHealthScheduleClampsAndCopies(t *testing.T) {
	ws := []HealthWindow{
		{ASN: 1, From: healthT0, Until: healthT0.Add(time.Hour), Availability: -0.5},
		{ASN: 2, From: healthT0, Until: healthT0.Add(time.Hour), Availability: 1.5},
	}
	h := NewHealthSchedule(ws...)
	ws[0].ASN = 99 // mutating the input must not reach the schedule
	got := h.Windows()
	if got[0].ASN != 1 {
		t.Error("schedule aliased its input slice")
	}
	if got[0].Availability != 0 || got[1].Availability != 1 {
		t.Errorf("clamping failed: %g, %g", got[0].Availability, got[1].Availability)
	}
	got[0].ASN = 77 // mutating the output must not reach the schedule either
	if h.Windows()[0].ASN != 1 {
		t.Error("Windows returned the schedule's backing slice")
	}
}

func TestRegistryHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Register(10, "as-ten", "US", KindHosting)
	if got := reg.Availability(10, healthT0); got != 1 {
		t.Errorf("registry without health: availability %g, want 1", got)
	}
	reg.SetHealth(NewHealthSchedule(
		HealthWindow{ASN: 10, From: healthT0, Until: healthT0.Add(time.Hour), Availability: 0.3},
	))
	if got := reg.Availability(10, healthT0.Add(time.Minute)); got != 0.3 {
		t.Errorf("availability in window: %g, want 0.3", got)
	}
	if got := reg.Availability(10, healthT0.Add(2*time.Hour)); got != 1 {
		t.Errorf("availability after window: %g, want 1", got)
	}
}

// TestPickFromLeavesPoolStreamAlone pins the property the resilience
// layer depends on: PickFrom consumes draws only from the caller's
// stream, so refresh logins cannot shift the pool's shared sequence.
func TestPickFromLeavesPoolStreamAlone(t *testing.T) {
	build := func() *ProxyPool {
		reg := NewRegistry()
		reg.Register(1, "a", "US", KindHosting)
		reg.Register(2, "b", "US", KindHosting)
		return NewProxyPool(reg, []ASN{1, 2}, 16, rng.New(7).Split("pool"))
	}
	a, b := build(), build()

	private := rng.New(99).Split("resilience")
	for i := 0; i < 10; i++ {
		a.PickFrom(private)
	}
	for i := 0; i < 20; i++ {
		if x, y := a.Pick(), b.Pick(); x != y {
			t.Fatalf("Pick %d diverged after PickFrom calls: %v vs %v", i, x, y)
		}
	}
}
