package netsim

import (
	"fmt"
	"net/netip"
)

// PrefixTrie maps IPv4 prefixes to ASNs with longest-prefix-match lookup —
// the same semantics a BGP RIB gives an operator. The Registry uses it so
// address ownership follows real routing rules: a more specific
// announcement (say a /24 carved out of a provider's /12 for a proxy
// customer) wins over the covering aggregate.
type PrefixTrie struct {
	root *trieNode
	n    int
}

type trieNode struct {
	child [2]*trieNode
	asn   ASN
	set   bool
}

// NewPrefixTrie returns an empty routing table.
func NewPrefixTrie() *PrefixTrie {
	return &PrefixTrie{root: &trieNode{}}
}

// Len returns the number of installed prefixes.
func (t *PrefixTrie) Len() int { return t.n }

// Insert installs prefix → asn, replacing any previous mapping for the
// exact prefix. Only IPv4 prefixes are accepted.
func (t *PrefixTrie) Insert(prefix netip.Prefix, asn ASN) error {
	if !prefix.Addr().Is4() {
		return fmt.Errorf("netsim: prefix %v is not IPv4", prefix)
	}
	if asn == 0 {
		return fmt.Errorf("netsim: cannot install ASN 0 for %v", prefix)
	}
	prefix = prefix.Masked()
	bits := prefix.Bits()
	v := addr4(prefix.Addr())
	node := t.root
	for i := 0; i < bits; i++ {
		b := (v >> (31 - i)) & 1
		if node.child[b] == nil {
			node.child[b] = &trieNode{}
		}
		node = node.child[b]
	}
	if !node.set {
		t.n++
	}
	node.asn = asn
	node.set = true
	return nil
}

// Lookup returns the ASN owning addr under longest-prefix-match, or
// (0, false) when no installed prefix covers it.
func (t *PrefixTrie) Lookup(addr netip.Addr) (ASN, bool) {
	if !addr.Is4() {
		return 0, false
	}
	v := addr4(addr)
	node := t.root
	var best ASN
	found := false
	if node.set {
		best, found = node.asn, true
	}
	for i := 0; i < 32 && node != nil; i++ {
		b := (v >> (31 - i)) & 1
		node = node.child[b]
		if node != nil && node.set {
			best, found = node.asn, true
		}
	}
	return best, found
}

// Walk visits every installed prefix in address order, calling fn with the
// prefix and its ASN. Returning false stops the walk.
func (t *PrefixTrie) Walk(fn func(prefix netip.Prefix, asn ASN) bool) {
	var rec func(node *trieNode, bits int, v uint32) bool
	rec = func(node *trieNode, bits int, v uint32) bool {
		if node == nil {
			return true
		}
		if node.set {
			addr := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
			if !fn(netip.PrefixFrom(addr, bits), node.asn) {
				return false
			}
		}
		if !rec(node.child[0], bits+1, v) {
			return false
		}
		return rec(node.child[1], bits+1, v|1<<(31-bits))
	}
	rec(t.root, 0, 0)
}

func addr4(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
