package clock

import (
	"testing"
	"time"
)

func TestClockStartsAtEpoch(t *testing.T) {
	t.Parallel()
	c := New()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("new clock at %v, want %v", c.Now(), Epoch)
	}
	if c.Day() != 0 {
		t.Fatalf("Day() = %d at epoch", c.Day())
	}
}

func TestAdvance(t *testing.T) {
	t.Parallel()
	c := New()
	c.Advance(36 * time.Hour)
	if c.Day() != 1 {
		t.Fatalf("Day() = %d after 36h, want 1", c.Day())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	New().Advance(-time.Second)
}

func TestSchedulerOrdering(t *testing.T) {
	t.Parallel()
	c := New()
	s := NewScheduler(c)
	var order []int
	s.After(3*time.Hour, func() { order = append(order, 3) })
	s.After(1*time.Hour, func() { order = append(order, 1) })
	s.After(2*time.Hour, func() { order = append(order, 2) })
	s.RunUntil(Epoch.Add(Day))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	t.Parallel()
	s := NewScheduler(New())
	var order []int
	at := Epoch.Add(time.Hour)
	for i := 0; i < 5; i++ {
		i := i
		s.At(at, func() { order = append(order, i) })
	}
	s.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestSchedulerClockTracksEvents(t *testing.T) {
	t.Parallel()
	c := New()
	s := NewScheduler(c)
	var seen time.Time
	s.After(5*time.Hour, func() { seen = c.Now() })
	s.RunUntil(Epoch.Add(Day))
	if want := Epoch.Add(5 * time.Hour); !seen.Equal(want) {
		t.Fatalf("clock inside event was %v, want %v", seen, want)
	}
	if !c.Now().Equal(Epoch.Add(Day)) {
		t.Fatalf("clock after RunUntil = %v, want deadline", c.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	t.Parallel()
	s := NewScheduler(New())
	ran := 0
	s.After(2*Day, func() { ran++ })
	if n := s.RunFor(Day); n != 0 {
		t.Fatalf("RunFor executed %d events before their time", n)
	}
	if ran != 0 {
		t.Fatal("future event executed early")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	s.RunFor(2 * Day)
	if ran != 1 {
		t.Fatal("event did not run after deadline passed it")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	t.Parallel()
	c := New()
	c.Advance(time.Hour)
	s := NewScheduler(c)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(Epoch, func() {})
}

func TestEventsCanScheduleEvents(t *testing.T) {
	t.Parallel()
	s := NewScheduler(New())
	hits := 0
	var chain func()
	chain = func() {
		hits++
		if hits < 10 {
			s.After(time.Hour, chain)
		}
	}
	s.After(time.Hour, chain)
	s.RunUntil(Epoch.Add(Day))
	if hits != 10 {
		t.Fatalf("chained scheduling ran %d times, want 10", hits)
	}
}

func TestEveryDay(t *testing.T) {
	t.Parallel()
	c := New()
	s := NewScheduler(c)
	var days []int
	var stamps []time.Time
	s.EveryDay(9*time.Hour, 3, func(day int) {
		days = append(days, day)
		stamps = append(stamps, c.Now())
	})
	s.RunUntil(Epoch.Add(10 * Day))
	if len(days) != 3 {
		t.Fatalf("EveryDay fired %d times, want 3", len(days))
	}
	for i, d := range days {
		if d != i {
			t.Fatalf("day indices %v", days)
		}
		if stamps[i].Hour() != 9 {
			t.Fatalf("firing %d at hour %d, want 9", i, stamps[i].Hour())
		}
	}
}

func TestEveryDaySkipsPastOffset(t *testing.T) {
	t.Parallel()
	c := New()
	c.Advance(12 * time.Hour) // past 09:00 today
	s := NewScheduler(c)
	fired := 0
	s.EveryDay(9*time.Hour, 1, func(int) { fired++ })
	s.RunFor(Day / 2)
	if fired != 0 {
		t.Fatal("EveryDay fired at an offset already in the past")
	}
	s.RunFor(Day)
	if fired != 1 {
		t.Fatal("EveryDay did not fire on the following day")
	}
}

func TestDrain(t *testing.T) {
	t.Parallel()
	s := NewScheduler(New())
	total := 0
	for i := 1; i <= 4; i++ {
		i := i
		s.After(time.Duration(i)*Day, func() { total += i })
	}
	if n := s.Drain(); n != 4 {
		t.Fatalf("Drain ran %d, want 4", n)
	}
	if total != 10 {
		t.Fatalf("Drain total %d, want 10", total)
	}
}
