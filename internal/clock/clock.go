// Package clock provides deterministic simulated time for the study.
//
// All components observe time through a shared *Clock and schedule future
// work on its Scheduler. Nothing in the simulator reads wall-clock time, so
// a 90-day measurement period executes in milliseconds and every run with
// the same seed replays the same timeline.
package clock

import (
	"container/heap"
	"fmt"
	"time"
)

// Day is the simulation's coarse unit; most paper analyses are per-day.
const Day = 24 * time.Hour

// Epoch is the start of every simulation: fall 2017, matching the paper's
// measurement window.
var Epoch = time.Date(2017, time.September, 1, 0, 0, 0, 0, time.UTC)

// Clock is a simulated clock. It only moves when its Scheduler runs events
// or when Advance is called explicitly. Clock is not safe for concurrent
// mutation; the simulator runs a single logical timeline.
type Clock struct {
	now time.Time
}

// New returns a clock set to Epoch.
func New() *Clock { return &Clock{now: Epoch} }

// NewAt returns a clock set to the given instant.
func NewAt(t time.Time) *Clock { return &Clock{now: t} }

// Now returns the current simulated instant.
func (c *Clock) Now() time.Time { return c.now }

// Day returns the number of whole simulated days elapsed since Epoch.
// Events on day 0 happen within the first 24 hours of the simulation.
func (c *Clock) Day() int { return int(c.now.Sub(Epoch) / Day) }

// Advance moves the clock forward by d. It panics on negative d: simulated
// time never rewinds.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: Advance with negative duration")
	}
	c.now = c.now.Add(d)
}

// event is a scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tie-break so same-instant events run in schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler executes callbacks in simulated-time order, advancing its Clock
// as it goes. It is single-threaded by design: event handlers may schedule
// further events but must not spawn goroutines that touch the scheduler.
type Scheduler struct {
	clock *Clock
	queue eventHeap
	seq   uint64
}

// NewScheduler returns a scheduler driving the given clock.
func NewScheduler(c *Clock) *Scheduler { return &Scheduler{clock: c} }

// Clock returns the clock the scheduler drives.
func (s *Scheduler) Clock() *Clock { return s.clock }

// At schedules fn to run at instant t. Scheduling in the past (before the
// clock's current time) is an error the simulator cannot recover from, so
// it panics with a description of the offense.
func (s *Scheduler) At(t time.Time, fn func()) {
	if t.Before(s.clock.now) {
		panic(fmt.Sprintf("clock: scheduling at %v which is before now %v", t, s.clock.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current simulated instant.
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.At(s.clock.now.Add(d), fn)
}

// EveryDay schedules fn once per simulated day for days consecutive days,
// starting at the next occurrence of offset past midnight UTC. fn receives
// the day index counted from the first firing.
func (s *Scheduler) EveryDay(offset time.Duration, days int, fn func(day int)) {
	start := s.clock.now.Truncate(Day).Add(offset)
	if !start.After(s.clock.now) {
		start = start.Add(Day)
	}
	for i := 0; i < days; i++ {
		day := i
		s.At(start.Add(time.Duration(i)*Day), func() { fn(day) })
	}
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// FastForward discards every queued event scheduled at or before t and
// sets the clock to t without running anything. It is the restore path's
// counterpart to RunUntil: when a world is rebuilt from a snapshot taken
// at instant t, construction re-registers the full schedule from Epoch,
// and FastForward drops the portion that had already fired before the
// snapshot. It panics if t is before the current clock — fast-forward
// never rewinds.
func (s *Scheduler) FastForward(t time.Time) int {
	if t.Before(s.clock.now) {
		panic(fmt.Sprintf("clock: FastForward to %v which is before now %v", t, s.clock.now))
	}
	dropped := 0
	for len(s.queue) > 0 && !s.queue[0].at.After(t) {
		heap.Pop(&s.queue)
		dropped++
	}
	s.clock.now = t
	return dropped
}

// RunUntil executes events in order until the queue is exhausted or the next
// event is after deadline, then sets the clock to deadline. It returns the
// number of events executed.
func (s *Scheduler) RunUntil(deadline time.Time) int {
	ran := 0
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at.After(deadline) {
			break
		}
		heap.Pop(&s.queue)
		s.clock.now = next.at
		next.fn()
		ran++
	}
	if deadline.After(s.clock.now) {
		s.clock.now = deadline
	}
	return ran
}

// StepTick executes every event scheduled for the earliest pending
// instant — one tick — advancing the clock to it, and drains any events
// the executing callbacks schedule for that same instant before
// returning. It returns the tick's instant and the number of events run;
// ran == 0 means the queue was empty and the clock did not move. Tick
// stepping is what the parallel-stepping benchmarks and the determinism
// harness drive: a tick is the unit whose internal work may fan out to a
// worker pool, while ticks themselves always execute in timeline order.
func (s *Scheduler) StepTick() (at time.Time, ran int) {
	if len(s.queue) == 0 {
		return s.clock.now, 0
	}
	at = s.queue[0].at
	for len(s.queue) > 0 && s.queue[0].at.Equal(at) {
		next := heap.Pop(&s.queue).(*event)
		s.clock.now = next.at
		next.fn()
		ran++
	}
	return at, ran
}

// RunFor executes events for the next d of simulated time.
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.clock.now.Add(d))
}

// Drain executes every queued event regardless of timestamp and returns the
// number executed. Useful in tests.
func (s *Scheduler) Drain() int {
	ran := 0
	for len(s.queue) > 0 {
		next := heap.Pop(&s.queue).(*event)
		s.clock.now = next.at
		next.fn()
		ran++
	}
	return ran
}
