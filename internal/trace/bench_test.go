package trace

import (
	"io"
	"testing"
)

// BenchmarkRequestSpan measures the steady-state cost of one fully
// staged request span — StartRequest, eight Stage marks, End — into a
// discarded FTRC1 stream. The span and its payload buffer are tracer-
// owned scratch, so the hot path should settle at zero allocations per
// span once the scratch has grown.
func BenchmarkRequestSpan(b *testing.B) {
	tr, err := New(io.Discard, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	tick := int64(0)
	tr.BindClock(func() int64 { return tick })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick++
		sp := tr.StartRequest(KindRequest, 42, 3, 1)
		sp.Stage(StagePreflight, VerdictOK)
		sp.Stage(StageSession, VerdictOK)
		sp.Stage(StageFaults, VerdictOK)
		sp.Stage(StageRateLimit, VerdictOK)
		sp.Stage(StageGatekeep, VerdictOK)
		sp.Stage(StageApply, VerdictOK)
		sp.Stage(StageTelemetry, VerdictOK)
		sp.Stage(StageEmit, VerdictOK)
		sp.End(0, 7, 9, 11)
	}
}

// BenchmarkInstantSpan measures one parented instant span.
func BenchmarkInstantSpan(b *testing.B) {
	tr, err := New(io.Discard, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	tick := int64(0)
	tr.BindClock(func() int64 { return tick })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick++
		tr.Instant(KindRetry, 42, 1, 2, 99, 1000)
	}
}
