package trace

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// collect decodes every span in an FTRC1 byte stream, copying stages
// (the reader's span is reusable scratch).
func collect(t *testing.T, stream []byte) []Span {
	t.Helper()
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var out []Span
	for {
		sp, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		cp := *sp
		cp.Stages = append([]StageRec(nil), sp.Stages...)
		out = append(out, cp)
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	tr.BindClock(func() int64 { return 0 })
	tr.WireTelemetry(nil)
	if a := tr.StartRequest(KindRequest, 1, 0, 0); a != nil {
		t.Fatal("nil tracer returned a live span")
	}
	var a *Active
	a.Stage(StageApply, VerdictOK)
	a.End(0, 0, 0, 0)
	tr.Instant(KindRetry, 1, 0, 0, 0, 0)
	if s := tr.StartSection(4); s != nil {
		t.Fatal("nil tracer returned a live section")
	}
	var sec *Section
	sec.ShardDone(0, time.Millisecond, 3)
	sec.End(time.Millisecond, 3)
	if tr.CurrentRequest() != 0 || tr.LastRequest() != 0 || tr.Spans() != 0 || tr.SampleN() != 0 {
		t.Fatal("nil tracer reported state")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanIdentityDeterministic(t *testing.T) {
	if SpanID(100, 1) == SpanID(100, 2) || SpanID(100, 1) == SpanID(101, 1) {
		t.Fatal("span IDs collide across (tick, seq)")
	}
	if SpanID(100, 1) != SpanID(100, 1) {
		t.Fatal("SpanID not a pure function")
	}
}

func TestRequestSpanRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	tick := int64(1000)
	tr.BindClock(func() int64 { return tick })

	a := tr.StartRequest(KindRequest, 7, 3, 1)
	if a == nil {
		t.Fatal("1/1 sampler dropped a span")
	}
	if tr.CurrentRequest() == 0 {
		t.Fatal("no in-flight request id")
	}
	a.Stage(StagePreflight, VerdictOK)
	a.Stage(StageRateLimit, VerdictDenied)
	a.End(2, 9, 0, 64500)
	if tr.CurrentRequest() != 0 {
		t.Fatal("in-flight id survived End")
	}
	if tr.LastRequest() != SpanID(1000, 0) {
		t.Fatalf("LastRequest = %d, want %d", tr.LastRequest(), SpanID(1000, 0))
	}

	tick = 2000
	tr.Instant(KindRetry, 7, 1, 2, tr.LastRequest(), int64(5*time.Second))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	spans := collect(t, buf.Bytes())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	req := spans[0]
	if req.Tick != 1000 || req.Shard != 3 || req.Seq != 0 || req.Kind != KindRequest {
		t.Fatalf("request identity wrong: %+v", req)
	}
	if req.Actor != 7 || req.Target != 9 || req.ASN != 64500 || req.Code != 2 || req.Action != 1 {
		t.Fatalf("request fields wrong: %+v", req)
	}
	if len(req.Stages) != 2 || req.Stages[0].Stage != StagePreflight || req.Stages[1].Verdict != VerdictDenied {
		t.Fatalf("stages wrong: %+v", req.Stages)
	}
	ret := spans[1]
	if ret.Kind != KindRetry || ret.Tick != 2000 || ret.Seq != 0 || ret.Parent != req.ID() {
		t.Fatalf("retry span wrong: %+v", ret)
	}
	if ret.Value != int64(5*time.Second) || ret.Code != 2 {
		t.Fatalf("retry payload wrong: %+v", ret)
	}
}

// TestSamplingIdentityStable pins the core determinism property: the
// spans kept at 1/N are an identity-exact subset of the spans kept at
// 1/1, because sequence numbers advance whether or not a span is
// sampled.
func TestSamplingIdentityStable(t *testing.T) {
	run := func(sampleN uint64) []Span {
		var buf bytes.Buffer
		tr, err := New(&buf, 99, sampleN)
		if err != nil {
			t.Fatal(err)
		}
		tick := int64(0)
		tr.BindClock(func() int64 { return tick })
		for i := 0; i < 64; i++ {
			tick = int64(i) * 1e9
			for j := 0; j < 8; j++ {
				a := tr.StartRequest(KindRequest, uint64(j), 0, 0)
				a.Stage(StageApply, VerdictOK)
				a.End(0, 0, 0, 0)
			}
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return collect(t, buf.Bytes())
	}

	full := run(1)
	if len(full) != 64*8 {
		t.Fatalf("full trace has %d spans, want %d", len(full), 64*8)
	}
	sampled := run(4)
	if len(sampled) == 0 || len(sampled) >= len(full) {
		t.Fatalf("1/4 sample kept %d of %d spans", len(sampled), len(full))
	}
	ids := make(map[uint64]Span, len(full))
	for _, sp := range full {
		ids[sp.ID()] = sp
	}
	for _, sp := range sampled {
		want, ok := ids[sp.ID()]
		if !ok {
			t.Fatalf("sampled span %d not in full trace", sp.ID())
		}
		if want.Tick != sp.Tick || want.Seq != sp.Seq || want.Actor != sp.Actor {
			t.Fatalf("sampled span identity drifted: %+v vs %+v", sp, want)
		}
		if !Sampled(99, sp.Tick, sp.Seq, 4) {
			t.Fatalf("span %d not selected by the pure sampler", sp.ID())
		}
	}
}

func TestSectionSpans(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.BindClock(func() int64 { return 5e9 })

	sec := tr.StartSection(3)
	if sec == nil {
		t.Fatal("1/1 sampler dropped the section")
	}
	sec.ShardDone(2, 30*time.Microsecond, 12)
	sec.ShardDone(0, 10*time.Microsecond, 4)
	sec.ShardDone(1, 20*time.Microsecond, 8)
	sec.End(100*time.Microsecond, 24)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	spans := collect(t, buf.Bytes())
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want section + 3 plans", len(spans))
	}
	section := spans[0]
	if section.Kind != KindSection || section.Seq != 0 || section.Value != 24 {
		t.Fatalf("section wrong: %+v", section)
	}
	if len(section.Stages) != 1 || section.Stages[0].Stage != StageApply || section.Stages[0].Ns != int64(100*time.Microsecond) {
		t.Fatalf("section apply stage wrong: %+v", section.Stages)
	}
	for i, sp := range spans[1:] {
		if sp.Kind != KindPlan || sp.Shard != uint32(i) || sp.Seq != uint32(1+i) || sp.Parent != section.ID() {
			t.Fatalf("plan child %d wrong: %+v", i, sp)
		}
		wantDur := int64((10 + 10*i)) * int64(time.Microsecond)
		if sp.Wall != wantDur || sp.Value != int64(4*(1+i)) {
			t.Fatalf("plan child %d payload wrong: %+v", i, sp)
		}
	}
}

// TestSectionSeqReservation: unsampled sections still consume their
// sequence numbers, so a following span's identity doesn't depend on
// the sample rate.
func TestSectionSeqReservation(t *testing.T) {
	var buf bytes.Buffer
	// sampleN huge → effectively nothing sampled directly.
	tr, err := New(&buf, 3, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	tr.BindClock(func() int64 { return 7e9 })
	if sec := tr.StartSection(5); sec != nil {
		sec.End(0, 0)
	}
	// Parented instants always emit; its Seq proves the reservation.
	tr.Instant(KindRetry, 1, 0, 0, 12345, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	spans := collect(t, buf.Bytes())
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	// Section took seq 0, its 5 children took 1..5, so the instant is 6.
	if spans[0].Seq != 6 {
		t.Fatalf("instant seq = %d, want 6 (section must reserve child seqs)", spans[0].Seq)
	}
}

func TestTracerStickyWriteError(t *testing.T) {
	tr, err := New(&failAfter{n: 1}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.BindClock(func() int64 { return 0 })
	// Overflow the 64 KiB buffer twice so the failing sink is hit after
	// its one allowed write.
	for i := 0; i < 20000 && tr.Err() == nil; i++ {
		a := tr.StartRequest(KindRequest, 1, 0, 0)
		a.Stage(StageApply, VerdictOK)
		a.End(0, 0, 0, 0)
	}
	if tr.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if tr.Close() == nil {
		t.Fatal("Close swallowed the sticky error")
	}
}

// failAfter is an io.Writer that fails every write after the first n.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n > 0 {
		f.n--
		return len(p), nil
	}
	return 0, io.ErrClosedPipe
}

func TestStatsAggregation(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tick := int64(epochNanos)
	tr.BindClock(func() int64 { return tick })

	a := tr.StartRequest(KindRequest, 10, 0, 1) // follow
	a.Stage(StagePreflight, VerdictOK)
	a.Stage(StageRateLimit, VerdictDenied)
	a.End(2, 20, 0, 100)                        // ratelimited
	b := tr.StartRequest(KindRequest, 11, 0, 0) // like
	b.Stage(StageApply, VerdictOK)
	b.End(0, 21, 0, 100) // allowed
	tr.Instant(KindBreaker, 11, 0, BreakerOpened, 0, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st := NewStats()
	if err := st.ObserveAll(r); err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 || st.ByKind[KindRequest] != 2 || st.ByKind[KindBreaker] != 1 {
		t.Fatalf("kind counts wrong: %+v", st.ByKind)
	}
	if st.outcomes[2] != 1 || st.outcomes[0] != 1 {
		t.Fatalf("outcome counts wrong: %+v", st.outcomes)
	}
	if st.terminal[[2]uint8{uint8(StageRateLimit), VerdictDenied}] != 1 {
		t.Fatalf("terminal attribution wrong: %+v", st.terminal)
	}
	out := st.Format()
	for _, want := range []string{"ratelimit", "denied", "follow", "breaker"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestFilterMatch(t *testing.T) {
	sp := &Span{Tick: epochNanos + 3*int64(24*time.Hour), Kind: KindRequest, Action: 1, Code: 2, Actor: 42}
	if !MatchAll.Match(sp) {
		t.Fatal("MatchAll rejected a span")
	}
	f := MatchAll
	f.Actor = 42
	f.Day = 3
	f.Action = 1
	f.Outcome = 2
	f.Kind = int(KindRequest)
	if !f.Match(sp) {
		t.Fatal("exact filter rejected its span")
	}
	f.Day = 2
	if f.Match(sp) {
		t.Fatal("day filter passed the wrong day")
	}
}

func TestExportChrome(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.BindClock(func() int64 { return 0 })
	a := tr.StartRequest(KindRequest, 1, 2, 0)
	a.Stage(StageApply, VerdictOK)
	a.End(0, 3, 0, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := ExportChrome(&out, r); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents":[`, `"ph":"X"`, `"tid":2`, `request like`, `"apply"`} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("chrome export missing %q:\n%s", want, out.String())
		}
	}
}
