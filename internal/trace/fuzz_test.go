package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary byte streams to the FTRC1 reader. The
// contract under fuzz: never panic, never allocate more than the decode
// caps allow, and classify every stream as clean-EOF, truncated, or
// corrupt. Seed corpus covers a valid stream, a truncated one, and a
// few corruption shapes (see also the explicit cases in codec_test.go).
func FuzzReader(f *testing.F) {
	// A small valid stream.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 7, 16)
	for i := 0; i < 3; i++ {
		sp := Span{
			Tick: int64(i) * 1e9, Seq: uint32(i), Kind: KindRequest,
			Actor: uint64(i), Wall: int64(i) * 100,
			Stages: []StageRec{{Stage: StageApply, Verdict: VerdictOK, Ns: 42}},
		}
		_ = w.WriteSpan(&sp)
	}
	_ = w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // cut inside the last record
	f.Add(valid[:len(ftrcMagic)+2])

	// Corrupt opcode.
	corrupt := append([]byte(nil), valid...)
	corrupt[len(ftrcMagic)+2] = 0xEE
	f.Add(corrupt)

	// Header claiming a giant span.
	var giant bytes.Buffer
	gw, _ := NewWriter(&giant, 0, 1)
	_ = gw.Flush()
	giant.WriteByte(opSpan)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], maxSpanPayload+100)
	giant.Write(lenBuf[:n])
	f.Add(giant.Bytes())

	f.Add([]byte("FTRC1\n"))
	f.Add([]byte("FSEV1\nwrong format"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // bad header is a valid rejection
		}
		spans := 0
		for spans < 1<<16 {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Sticky: the reader must keep failing identically.
				if _, err2 := r.Next(); err2 != err {
					t.Fatalf("reader not sticky after %v (then %v)", err, err2)
				}
				break
			}
			spans++
		}
	})
}

// FuzzRoundTrip checks that any span assembled from fuzzed fields
// survives an encode/decode cycle bit-exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1e9), uint32(3), uint32(7), uint64(99), uint8(1), uint8(2), uint64(42), int64(-5), int64(123456))
	f.Add(int64(-1), uint32(0), uint32(0), uint64(0), uint8(255), uint8(255), uint64(1)<<63, int64(1)<<62, int64(0))
	f.Fuzz(func(t *testing.T, tick int64, shard, seq uint32, parent uint64, action, code uint8, actor uint64, value, wall int64) {
		in := Span{
			Tick: tick, Shard: shard, Seq: seq, Parent: parent,
			Kind: KindRequest, Action: action, Code: code,
			Actor: actor, Value: value, Wall: wall,
			Stages: []StageRec{{Stage: Stage(action % uint8(stageCount)), Verdict: code, Ns: wall}},
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteSpan(&in); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Next()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Tick != in.Tick || out.Shard != in.Shard || out.Seq != in.Seq ||
			out.Parent != in.Parent || out.Action != in.Action || out.Code != in.Code ||
			out.Actor != in.Actor || out.Value != in.Value || out.Wall != in.Wall {
			t.Fatalf("round trip drifted:\n in=%+v\nout=%+v", in, out)
		}
		if len(out.Stages) != 1 || out.Stages[0] != in.Stages[0] {
			t.Fatalf("stages drifted: %+v vs %+v", out.Stages, in.Stages)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("want EOF, got %v", err)
		}
	})
}
