package trace

import (
	"bufio"
	"fmt"
	"io"
)

// chromePID groups spans into Chrome trace-event "processes" by kind,
// so the viewer lays requests, stepping sections, and instants on
// separate tracks.
func chromePID(k Kind) int {
	switch k {
	case KindSection, KindPlan:
		return 1 // stepping engine
	case KindRetry, KindBreaker:
		return 2 // AAS resilience
	case KindEnforcement:
		return 3 // interventions
	default:
		return 0 // request pipeline
	}
}

// ExportChrome renders an FTRC1 stream as Chrome trace-event JSON
// (the "X" complete-event form), loadable in about:tracing or Perfetto.
// Request spans expand into one slice per pipeline stage stacked under
// the request slice; timestamps are microseconds of wall time since
// tracer start, tracks (tid) are shard indices.
func ExportChrome(w io.Writer, r *Reader) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(name string, pid, tid int, tsNs, durNs int64, args string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, `{"name":%q,"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"cat":"footsteps"`,
			name, pid, tid, float64(tsNs)/1e3, float64(durNs)/1e3)
		if args != "" {
			bw.WriteString(`,"args":{`)
			bw.WriteString(args)
			bw.WriteByte('}')
		}
		bw.WriteByte('}')
	}
	for {
		sp, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		pid := chromePID(sp.Kind)
		tid := int(sp.Shard)
		dur := sp.Wall
		if dur <= 0 {
			dur = 1 // instants still need visible width in the viewer
		}
		var name string
		switch sp.Kind {
		case KindRequest, KindLogin:
			name = fmt.Sprintf("%s %s→%s", sp.Kind, ActionName(sp.Action), OutcomeName(sp.Code))
		case KindSection:
			name = "tick section"
		case KindPlan:
			name = fmt.Sprintf("plan shard %d", sp.Shard)
		default:
			name = fmt.Sprintf("%s %s", sp.Kind, VerdictName(sp.Code))
		}
		args := fmt.Sprintf(`"tick":%d,"seq":%d,"id":%d,"actor":%d,"value":%d`,
			sp.Tick, sp.Seq, sp.ID(), sp.Actor, sp.Value)
		if sp.Parent != 0 {
			args += fmt.Sprintf(`,"parent":%d`, sp.Parent)
		}
		emit(name, pid, tid, sp.Start, dur, args)
		// Stage sub-slices: laid end to end inside the request span, each
		// as wide as its measured delta.
		ts := sp.Start
		for _, st := range sp.Stages {
			sd := st.Ns
			if sd <= 0 {
				sd = 1
			}
			emit(st.Stage.String(), pid, tid, ts, sd,
				fmt.Sprintf(`"verdict":%q`, VerdictName(st.Verdict)))
			ts += st.Ns
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
