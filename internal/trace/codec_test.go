package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// sampleStream writes a small known trace and returns its bytes.
func sampleStream(t *testing.T, nspans int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nspans; i++ {
		sp := Span{
			Tick: int64(i) * 1e9, Shard: uint32(i % 4), Seq: uint32(i),
			Parent: uint64(i), Kind: KindRequest, Action: uint8(i % 6),
			Code: uint8(i % 5), Actor: uint64(100 + i), Target: uint64(200 + i),
			Post: uint64(i), ASN: uint32(64000 + i), Value: int64(i) - 2,
			Start: int64(i) * 10, Wall: int64(i) * 3,
			Stages: []StageRec{
				{Stage: StagePreflight, Verdict: VerdictOK, Ns: 5},
				{Stage: StageApply, Verdict: uint8(i % 3), Ns: int64(i)},
			},
		}
		if err := w.WriteSpan(&sp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCodecRoundTrip(t *testing.T) {
	stream := sampleStream(t, 20)
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed() != 7 || r.SampleN() != 1 {
		t.Fatalf("header wrong: seed=%d sampleN=%d", r.Seed(), r.SampleN())
	}
	for i := 0; i < 20; i++ {
		sp, err := r.Next()
		if err != nil {
			t.Fatalf("span %d: %v", i, err)
		}
		if sp.Tick != int64(i)*1e9 || sp.Seq != uint32(i) || sp.Actor != uint64(100+i) {
			t.Fatalf("span %d identity wrong: %+v", i, sp)
		}
		if sp.Value != int64(i)-2 {
			t.Fatalf("span %d zigzag value wrong: %d", i, sp.Value)
		}
		if len(sp.Stages) != 2 || sp.Stages[1].Ns != int64(i) {
			t.Fatalf("span %d stages wrong: %+v", i, sp.Stages)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
	if r.Spans() != 20 {
		t.Fatalf("Spans() = %d", r.Spans())
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("FSEV1\nnot a trace")); !errors.Is(err, ErrBadTraceMagic) {
		t.Fatalf("want ErrBadTraceMagic, got %v", err)
	}
	if _, err := NewReader(strings.NewReader("FT")); !errors.Is(err, ErrBadTraceMagic) {
		t.Fatalf("short header: want ErrBadTraceMagic, got %v", err)
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	// Magic only — seed/sampleN uvarints missing.
	if _, err := NewReader(bytes.NewReader(ftrcMagic)); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// TestReaderTruncation cuts a valid stream at every byte boundary
// inside the record region and checks each cut yields either clean
// spans + io.EOF (cut at a record boundary) or a *TraceTruncatedError
// with a plausible offset — never a panic or a silent success.
func TestReaderTruncation(t *testing.T) {
	stream := sampleStream(t, 5)
	// Find where records begin: magic + 2 header uvarints.
	hdr := len(ftrcMagic)
	_, n := binary.Uvarint(stream[hdr:])
	hdr += n
	_, n = binary.Uvarint(stream[hdr:])
	hdr += n

	for cut := hdr; cut < len(stream); cut++ {
		r, err := NewReader(bytes.NewReader(stream[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		spans := 0
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var te *TraceTruncatedError
				if !errors.As(err, &te) {
					t.Fatalf("cut %d: want TraceTruncatedError, got %T %v", cut, err, err)
				}
				if te.Offset < int64(hdr) || te.Offset > int64(cut) {
					t.Fatalf("cut %d: implausible offset %d", cut, te.Offset)
				}
				if !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("cut %d: truncation should unwrap to ErrUnexpectedEOF, got %v", cut, te.Err)
				}
				// Sticky: the same error again.
				if _, err2 := r.Next(); err2 != err {
					t.Fatalf("cut %d: reader not sticky: %v then %v", cut, err, err2)
				}
				break
			}
			spans++
		}
		if spans > 5 {
			t.Fatalf("cut %d: decoded %d spans from a 5-span prefix", cut, spans)
		}
	}
}

func TestReaderCorruption(t *testing.T) {
	t.Run("unknown opcode", func(t *testing.T) {
		stream := sampleStream(t, 1)
		// First record byte after the header is the opcode.
		hdr := len(ftrcMagic)
		_, n := binary.Uvarint(stream[hdr:])
		hdr += n
		_, n = binary.Uvarint(stream[hdr:])
		hdr += n
		stream[hdr] = 0xEE
		r, err := NewReader(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "unknown opcode") {
			t.Fatalf("want unknown-opcode error, got %v", err)
		}
	})

	t.Run("implausible length", func(t *testing.T) {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte(opSpan)
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], maxSpanPayload+1)
		buf.Write(lenBuf[:n])
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "implausible span length") {
			t.Fatalf("want implausible-length error, got %v", err)
		}
	})

	t.Run("implausible stage count", func(t *testing.T) {
		// A payload claiming maxSpanStages+1 stages.
		payload := make([]byte, 0, 64)
		for i := 0; i < 14; i++ { // tick..wall: 14 numeric fields
			payload = binary.AppendUvarint(payload, 0)
		}
		payload = binary.AppendUvarint(payload, maxSpanStages+1)
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte(opSpan)
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
		buf.Write(lenBuf[:n])
		buf.Write(payload)
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "implausible stage count") {
			t.Fatalf("want implausible-stage-count error, got %v", err)
		}
	})

	t.Run("trailing payload bytes", func(t *testing.T) {
		payload := make([]byte, 0, 64)
		for i := 0; i < 14; i++ {
			payload = binary.AppendUvarint(payload, 0)
		}
		payload = binary.AppendUvarint(payload, 0) // nstages = 0
		payload = append(payload, 0xAB)            // junk
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte(opSpan)
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
		buf.Write(lenBuf[:n])
		buf.Write(payload)
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "trailing bytes") {
			t.Fatalf("want trailing-bytes error, got %v", err)
		}
	})
}

func TestWriterStickyError(t *testing.T) {
	w, err := NewWriter(&failAfter{n: 1}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp := Span{Stages: []StageRec{{Stage: StageApply}}}
	for i := 0; i < 20000 && w.Err() == nil; i++ {
		_ = w.WriteSpan(&sp)
	}
	if w.Err() == nil {
		t.Fatal("writer never surfaced the sink failure")
	}
	first := w.Err()
	if err := w.WriteSpan(&sp); err != first {
		t.Fatalf("WriteSpan after failure: got %v, want sticky %v", err, first)
	}
	if err := w.Close(); err != first {
		t.Fatalf("Close: got %v, want sticky %v", err, first)
	}
}
