package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ftrcMagic identifies a binary trace stream and its version. The header
// continues with two uvarints — the sampler seed and the 1-in-N sample
// rate — so a reader can report how much of the run a trace represents.
var ftrcMagic = []byte("FTRC1\n")

// ErrBadTraceMagic is returned when a stream does not start with the
// FTRC1 header.
var ErrBadTraceMagic = errors.New("trace: not a FTRC1 trace stream")

// Record opcode. Spans are the only record kind in v1; the opcode byte
// leaves room for string tables or schema records in later versions.
const opSpan = 0

// Decode caps: a payload or stage count beyond these is corruption, not
// a real span — fail fast instead of allocating attacker-sized buffers.
const (
	maxSpanPayload = 1 << 20
	maxSpanStages  = 1 << 10
)

// Writer encodes spans to an FTRC1 stream. Not safe for concurrent use;
// the Tracer calls it only from the serial emission paths. Write errors
// are sticky: the first failure is kept and every later call fails with
// it, so a full disk cannot silently shear a trace mid-span.
type Writer struct {
	w       *bufio.Writer
	scratch []byte
	count   uint64
	err     error
	// lenBuf stages each record's length prefix. A struct field rather
	// than a local: a stack array sliced into an io.Writer call escapes,
	// costing one heap allocation per span.
	lenBuf [binary.MaxVarintLen64]byte
}

// NewWriter writes the header (magic, seed, sampleN) and returns a
// writer. Call Flush or Close before closing the underlying file.
func NewWriter(w io.Writer, seed, sampleN uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(ftrcMagic); err != nil {
		return nil, err
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], seed)
	n += binary.PutUvarint(hdr[n:], sampleN)
	if _, err := bw.Write(hdr[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WriteSpan encodes one span. The payload is assembled in the writer's
// scratch buffer — grown once to span size, then reused — and handed to
// the buffered writer in a single length-prefixed record.
func (w *Writer) WriteSpan(sp *Span) error {
	if w.err != nil {
		return w.err
	}
	buf := w.scratch[:0]
	buf = binary.AppendUvarint(buf, uint64(sp.Tick))
	buf = binary.AppendUvarint(buf, uint64(sp.Shard))
	buf = binary.AppendUvarint(buf, uint64(sp.Seq))
	buf = binary.AppendUvarint(buf, sp.Parent)
	buf = binary.AppendUvarint(buf, uint64(sp.Kind))
	buf = binary.AppendUvarint(buf, uint64(sp.Action))
	buf = binary.AppendUvarint(buf, uint64(sp.Code))
	buf = binary.AppendUvarint(buf, sp.Actor)
	buf = binary.AppendUvarint(buf, sp.Target)
	buf = binary.AppendUvarint(buf, sp.Post)
	buf = binary.AppendUvarint(buf, uint64(sp.ASN))
	buf = binary.AppendVarint(buf, sp.Value)
	buf = binary.AppendUvarint(buf, uint64(sp.Start))
	buf = binary.AppendUvarint(buf, uint64(sp.Wall))
	buf = binary.AppendUvarint(buf, uint64(len(sp.Stages)))
	for _, st := range sp.Stages {
		buf = binary.AppendUvarint(buf, uint64(st.Stage))
		buf = binary.AppendUvarint(buf, uint64(st.Verdict))
		buf = binary.AppendUvarint(buf, uint64(st.Ns))
	}
	w.scratch = buf
	if err := w.w.WriteByte(opSpan); err != nil {
		w.err = err
		return err
	}
	n := binary.PutUvarint(w.lenBuf[:], uint64(len(buf)))
	if _, err := w.w.Write(w.lenBuf[:n]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(buf); err != nil {
		w.err = err
		return err
	}
	w.count++
	return nil
}

// Count returns the number of spans written.
func (w *Writer) Count() uint64 { return w.count }

// Err returns the sticky write error, if any.
func (w *Writer) Err() error { return w.err }

// Flush drains buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Close flushes and returns the first error the writer ever hit.
func (w *Writer) Close() error { return w.Flush() }

// TraceTruncatedError reports a trace stream that ends (or corrupts)
// inside a record — the signature of a run killed before the tracer
// flushed. Spans counts the complete spans decoded before the cut and
// Offset is the byte offset where the partial record begins.
type TraceTruncatedError struct {
	Spans  uint64 // complete spans decoded before the cut
	Offset int64  // byte offset of the partial record
	Err    error  // the underlying decode failure
}

func (e *TraceTruncatedError) Error() string {
	return fmt.Sprintf("trace: stream truncated at span %d (byte offset %d): %v", e.Spans, e.Offset, e.Err)
}

// Unwrap exposes the underlying error for errors.Is/As.
func (e *TraceTruncatedError) Unwrap() error { return e.Err }

// countingReader tracks how many bytes the buffered layer has pulled
// from the source, so the Reader can report precise truncation offsets.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Reader decodes an FTRC1 trace stream. Decode is alloc-capped: Next
// returns a pointer into the reader's reusable span (and stage slice),
// valid only until the following Next call — copy what you keep.
type Reader struct {
	src     *countingReader
	r       *bufio.Reader
	payload []byte
	span    Span
	spans   uint64
	seed    uint64
	sampleN uint64
	err     error
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReaderSize(cr, 1<<16)
	head := make([]byte, len(ftrcMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTraceMagic, err)
	}
	for i := range ftrcMagic {
		if head[i] != ftrcMagic[i] {
			return nil, ErrBadTraceMagic
		}
	}
	rd := &Reader{src: cr, r: br}
	var err error
	if rd.seed, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("trace: header seed: %w", promoteEOF(err))
	}
	if rd.sampleN, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("trace: header sample rate: %w", promoteEOF(err))
	}
	return rd, nil
}

func promoteEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Seed returns the sampler seed recorded in the header.
func (r *Reader) Seed() uint64 { return r.seed }

// SampleN returns the 1-in-N sample rate recorded in the header.
func (r *Reader) SampleN() uint64 { return r.sampleN }

// Spans returns the number of complete spans decoded so far.
func (r *Reader) Spans() uint64 { return r.spans }

// offset returns the stream offset of the next undecoded byte.
func (r *Reader) offset() int64 { return r.src.n - int64(r.r.Buffered()) }

// truncated wraps a mid-record decode failure, promoting a bare io.EOF
// (stream cut inside a record) to io.ErrUnexpectedEOF. The error is
// sticky: further Next calls return it unchanged.
func (r *Reader) truncated(start int64, what string, err error) error {
	r.err = &TraceTruncatedError{Spans: r.spans, Offset: start, Err: fmt.Errorf("%s: %w", what, promoteEOF(err))}
	return r.err
}

// fail records a non-truncation decode failure (corruption) and makes
// it sticky.
func (r *Reader) fail(err error) error {
	r.err = err
	return err
}

// Next returns the next span, or io.EOF at a clean end of stream. A
// stream that ends inside a record yields a *TraceTruncatedError. After
// any non-EOF error the reader is poisoned and returns the same error.
func (r *Reader) Next() (*Span, error) {
	if r.err != nil {
		return nil, r.err
	}
	op, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean end at a record boundary
		}
		return nil, r.fail(err)
	}
	start := r.offset() - 1
	if op != opSpan {
		return nil, r.fail(fmt.Errorf("trace: unknown opcode %d at span %d (byte offset %d)", op, r.spans, start))
	}
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, r.truncated(start, "span length", err)
	}
	if n > maxSpanPayload {
		return nil, r.fail(fmt.Errorf("trace: implausible span length %d at span %d (byte offset %d)", n, r.spans, start))
	}
	if cap(r.payload) < int(n) {
		r.payload = make([]byte, n)
	}
	buf := r.payload[:n]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, r.truncated(start, "span payload", err)
	}
	if err := r.decodeSpan(buf, start); err != nil {
		return nil, err
	}
	r.spans++
	return &r.span, nil
}

// decodeSpan unpacks one span payload into the reader's reusable span.
func (r *Reader) decodeSpan(buf []byte, start int64) error {
	pos := 0
	u := func() uint64 {
		if pos < 0 {
			return 0
		}
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			pos = -1
			return 0
		}
		pos += n
		return v
	}
	sp := &r.span
	sp.Tick = int64(u())
	sp.Shard = uint32(u())
	sp.Seq = uint32(u())
	sp.Parent = u()
	sp.Kind = Kind(u())
	sp.Action = uint8(u())
	sp.Code = uint8(u())
	sp.Actor = u()
	sp.Target = u()
	sp.Post = u()
	sp.ASN = uint32(u())
	if pos >= 0 {
		v, n := binary.Varint(buf[pos:])
		if n <= 0 {
			pos = -1
		} else {
			pos += n
			sp.Value = v
		}
	}
	sp.Start = int64(u())
	sp.Wall = int64(u())
	nstages := u()
	if pos < 0 {
		return r.truncated(start, "span fields", io.ErrUnexpectedEOF)
	}
	if nstages > maxSpanStages {
		return r.fail(fmt.Errorf("trace: implausible stage count %d at span %d (byte offset %d)", nstages, r.spans, start))
	}
	sp.Stages = sp.Stages[:0]
	for i := uint64(0); i < nstages; i++ {
		st := Stage(u())
		verdict := uint8(u())
		ns := int64(u())
		if pos < 0 {
			return r.truncated(start, "span stages", io.ErrUnexpectedEOF)
		}
		sp.Stages = append(sp.Stages, StageRec{Stage: st, Verdict: verdict, Ns: ns})
	}
	if pos != len(buf) {
		return r.fail(fmt.Errorf("trace: span payload has %d trailing bytes at span %d (byte offset %d)", len(buf)-pos, r.spans, start))
	}
	return nil
}
