// Package trace is the simulator's deterministic span-tracing subsystem:
// per-request latency attribution through the platform.Do pipeline, with
// child spans from the stepping engine's tick phases, the AAS resilience
// layer's retry/breaker transitions, and the intervention controller's
// enforcement decisions.
//
// The design contract mirrors telemetry's pure-observer rule, but is
// stricter because spans carry identity:
//
//   - Span identity derives from (tick, shard, sequence), where tick is
//     the simulated instant and sequence is a per-tick counter advanced
//     only on the serial scheduler/apply goroutine. Wall clocks and
//     global atomic counters never reach an identity field, so the span
//     IDs in a trace are byte-identical across worker counts and shard
//     counts — only the timing fields (Start, Wall, stage durations)
//     vary run to run.
//   - Sampling is a pure SplitMix64 hash of (seed, tick, sequence).
//     Sequence numbers are allocated for *every* request, sampled or
//     not, so the identity of any given span is stable at every sample
//     rate: the 1/1024 trace of a run is a strict subset of its 1/1
//     trace.
//   - Tracing is provably inert: the tracer consumes no RNG draws,
//     feeds nothing back into any caller's control flow, and all its
//     methods no-op on a nil receiver. The FSEV1 stream and report
//     hashes are byte-identical with tracing on or off at any sample
//     rate (pinned in internal/simtest).
//
// Spans stream to the FTRC1 binary format (codec.go); the `footsteps
// trace` subcommand reads it back for stats, grep, and Chrome
// trace-event export. See docs/OBSERVABILITY.md.
package trace

import (
	"io"
	"time"

	"footsteps/internal/telemetry"
)

// Stage identifies one phase of the platform.Do pipeline (or a stepping
// phase) inside a span's stage records.
type Stage uint8

// Pipeline stages, in Do's canonical order (see docs/ARCHITECTURE.md).
const (
	StagePreflight Stage = iota // structural target existence check
	StageSession                // session-epoch validation
	StageFaults                 // fault-injector verdict
	StageRateLimit              // hourly limiter check
	StageGatekeep               // gatekeeper (countermeasure) check
	StageApply                  // state mutation
	StageTelemetry              // ASN resolve + metric increments
	StageEmit                   // event-log fan-out to subscribers
	StagePlan                   // a stepping shard's generation phase
	stageCount
)

func (s Stage) String() string {
	switch s {
	case StagePreflight:
		return "preflight"
	case StageSession:
		return "session"
	case StageFaults:
		return "faults"
	case StageRateLimit:
		return "ratelimit"
	case StageGatekeep:
		return "gatekeep"
	case StageApply:
		return "apply"
	case StageTelemetry:
		return "telemetry"
	case StageEmit:
		return "emit"
	case StagePlan:
		return "plan"
	default:
		return "unknown"
	}
}

// Kind classifies a span.
type Kind uint8

// Span kinds.
const (
	KindRequest     Kind = iota // one platform.Do request
	KindLogin                   // one platform.Login
	KindSection                 // one step.RunInto section (plan + apply)
	KindPlan                    // one shard's generation phase (child of a section)
	KindRetry                   // an AAS backoff retry being scheduled
	KindBreaker                 // a circuit-breaker transition
	KindEnforcement             // an intervention/enforcement decision
	kindCount
)

func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindLogin:
		return "login"
	case KindSection:
		return "section"
	case KindPlan:
		return "plan"
	case KindRetry:
		return "retry"
	case KindBreaker:
		return "breaker"
	case KindEnforcement:
		return "enforcement"
	default:
		return "unknown"
	}
}

// Stage verdict / instant-span codes. A stage record carries the code of
// the decision made at that stage; instant spans (retry, breaker,
// enforcement) carry one in the span's Code field.
const (
	VerdictOK          uint8 = iota // stage passed
	VerdictFail                     // structural failure
	VerdictRevoked                  // session revoked
	VerdictUnavailable              // injected infrastructure failure
	VerdictStorm                    // rate-limit storm active / storm-attributed denial
	VerdictDenied                   // rate limit denied
	VerdictBlocked                  // gatekeeper blocked synchronously
	VerdictDelayed                  // gatekeeper scheduled deferred removal
	VerdictEligible                 // over threshold but assignment left it alone
	VerdictMoot                     // enforcement fired but the edge was already gone

	// Breaker transition codes (KindBreaker spans).
	BreakerOpened   = VerdictFail
	BreakerReopened = VerdictRevoked
	BreakerClosed   = VerdictOK
)

// VerdictName renders a stage/instant code.
func VerdictName(v uint8) string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictFail:
		return "fail"
	case VerdictRevoked:
		return "revoked"
	case VerdictUnavailable:
		return "unavailable"
	case VerdictStorm:
		return "storm"
	case VerdictDenied:
		return "denied"
	case VerdictBlocked:
		return "blocked"
	case VerdictDelayed:
		return "delayed"
	case VerdictEligible:
		return "eligible"
	case VerdictMoot:
		return "moot"
	default:
		return "unknown"
	}
}

// StageRec is one timed pipeline stage inside a span: the stage, the
// decision it made, and the wall nanoseconds elapsed since the previous
// stage mark.
type StageRec struct {
	Stage   Stage
	Verdict uint8
	Ns      int64
}

// Span is one traced unit of work. Identity fields (Tick, Shard, Seq,
// Parent, Kind) are deterministic — pure functions of the simulated
// timeline; timing fields (Start, Wall, stage Ns) are wall-clock
// measurements and vary run to run.
type Span struct {
	Tick   int64  // simulated instant, UnixNano
	Shard  uint32 // owning shard index (platform stripe or plan shard)
	Seq    uint32 // per-tick sequence number, serially allocated
	Parent uint64 // parent span ID; 0 = root
	Kind   Kind
	Action uint8 // platform.ActionType code
	Code   uint8 // terminal outcome (requests) or instant code

	Actor  uint64
	Target uint64
	Post   uint64
	ASN    uint32
	Value  int64 // kind-specific: retry delay ns, intent count, day count

	Start  int64 // wall ns since tracer start (timing, not identity)
	Wall   int64 // total wall ns in the span
	Stages []StageRec
}

// ID returns the span's deterministic identifier: a SplitMix64 mix of
// (Tick, Seq). Every span emitted at one tick holds a distinct Seq, so
// IDs are unique within a trace and identical across worker counts.
func (s *Span) ID() uint64 { return SpanID(s.Tick, s.Seq) }

// Day returns the simulated day index of the span (days since epochNanos).
func (s *Span) Day() int64 { return (s.Tick - epochNanos) / int64(24*time.Hour) }

// epochNanos is clock.Epoch (2017-09-01T00:00:00Z) as UnixNano. Kept as
// a literal so the trace package stays a leaf below clock's consumers.
const epochNanos = 1504224000000000000

// mix64 is the SplitMix64 finalizer (same constants as internal/rng):
// a bijective, well-mixed pure function of its input.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SpanID derives a span identifier from its tick and sequence number.
func SpanID(tick int64, seq uint32) uint64 {
	return mix64(mix64(uint64(tick)) + uint64(seq))
}

// Sampled reports whether the span at (tick, seq) is selected by a
// deterministic 1-in-sampleN sampler keyed on seed. sampleN <= 1 keeps
// everything.
func Sampled(seed uint64, tick int64, seq uint32, sampleN uint64) bool {
	if sampleN <= 1 {
		return true
	}
	return mix64(seed^SpanID(tick, seq))%sampleN == 0
}

// Tracer records spans to an FTRC1 stream. The zero of usefulness is a
// nil *Tracer: every method no-ops, which is the tracing-off state and
// costs one pointer check per call site.
//
// A Tracer is NOT safe for concurrent span emission. All span starts,
// stage marks, ends, and instants must happen on the serial scheduler/
// apply goroutine — which is where every platform mutation already
// lives, so the constraint is free. The one concurrent entry point is
// Section.ShardDone, which writes to disjoint per-shard slots and emits
// nothing.
type Tracer struct {
	w         *Writer
	seed      uint64
	sampleN   uint64
	nowSim    func() int64
	wallStart time.Time

	lastTick int64
	seq      uint32

	curReq  uint64 // ID of the in-flight sampled request span, 0 = none
	lastReq uint64 // ID of the last completed sampled request span

	active  Active  // scratch for the in-flight request span
	scratch Span    // scratch for instant and child-span emission
	section Section // scratch for the in-flight step section

	telTotal   *telemetry.Counter // requests seen (sampled or not)
	telSampled *telemetry.Counter // spans written
	telDropped *telemetry.Counter // spans lost to a sink write error
}

// New builds a tracer streaming FTRC1 to out at a deterministic 1-in-
// sampleN rate (0 and 1 both mean "every span"). seed keys the sampler;
// use the simulation seed so the same run traces the same spans.
//
// Call BindClock before any traffic flows; until then spans land on
// tick 0.
func New(out io.Writer, seed, sampleN uint64) (*Tracer, error) {
	w, err := NewWriter(out, seed, sampleN)
	if err != nil {
		return nil, err
	}
	if sampleN < 1 {
		sampleN = 1
	}
	t := &Tracer{
		w:         w,
		seed:      seed,
		sampleN:   sampleN,
		nowSim:    func() int64 { return 0 },
		wallStart: time.Now(),
		lastTick:  -1,
	}
	return t, nil
}

// BindClock points the tracer at the simulated clock. now must return
// the current simulated instant as UnixNano; core binds the scheduler's
// clock here during world construction.
func (t *Tracer) BindClock(now func() int64) {
	if t == nil || now == nil {
		return
	}
	t.nowSim = now
}

// WireTelemetry registers the tracer's own counters on reg (span totals,
// sampled emissions, sink write errors). Nil-safe on both sides.
func (t *Tracer) WireTelemetry(reg *telemetry.Registry) {
	if t == nil || reg == nil {
		return
	}
	t.telTotal = reg.Counter("trace.requests.seen")
	t.telSampled = reg.Counter("trace.spans.written")
	t.telDropped = reg.Counter("trace.spans.dropped")
}

// SampleN reports the configured 1-in-N sample rate (1 = everything).
func (t *Tracer) SampleN() uint64 {
	if t == nil {
		return 0
	}
	return t.sampleN
}

// nextSeq allocates the next per-tick sequence number. Must run on the
// serial goroutine.
func (t *Tracer) nextSeq() (int64, uint32) {
	tick := t.nowSim()
	if tick != t.lastTick {
		t.lastTick, t.seq = tick, 0
	}
	seq := t.seq
	t.seq++
	return tick, seq
}

// write emits one span, counting sink failures. The writer's error is
// sticky; Err/Close surface the first one.
func (t *Tracer) write(sp *Span) {
	if err := t.w.WriteSpan(sp); err != nil {
		t.telDropped.Inc()
		return
	}
	t.telSampled.Inc()
}

// CurrentRequest returns the ID of the in-flight sampled request span,
// or 0. Gatekeepers use it to parent enforcement-decision spans.
func (t *Tracer) CurrentRequest() uint64 {
	if t == nil {
		return 0
	}
	return t.curReq
}

// LastRequest returns the ID of the most recently completed request
// span, or 0 when the last request went unsampled. The AAS resilience
// layer uses it to parent retry/breaker spans onto the request that
// triggered them.
func (t *Tracer) LastRequest() uint64 {
	if t == nil {
		return 0
	}
	return t.lastReq
}

// Active is one in-flight request span. A nil *Active (tracing off, or
// this request unsampled) no-ops everywhere, so pipeline code calls its
// methods unconditionally.
type Active struct {
	t    *Tracer
	span Span
	mark time.Time
}

// StartRequest opens a span for one pipeline request (KindRequest or
// KindLogin). It always advances the sequence counter — identity is
// allocated whether or not the span is sampled — and returns nil when
// the sampler passes on it. The returned Active is tracer-owned scratch,
// valid until End.
func (t *Tracer) StartRequest(kind Kind, actor uint64, shard uint32, action uint8) *Active {
	if t == nil {
		return nil
	}
	tick, seq := t.nextSeq()
	t.telTotal.Inc()
	t.lastReq = 0
	if !Sampled(t.seed, tick, seq, t.sampleN) {
		return nil
	}
	a := &t.active
	a.t = t
	a.span = Span{
		Tick: tick, Shard: shard, Seq: seq,
		Kind: kind, Action: action, Actor: actor,
		Stages: a.span.Stages[:0],
	}
	a.mark = time.Now()
	a.span.Start = int64(a.mark.Sub(t.wallStart))
	t.curReq = a.span.ID()
	return a
}

// Stage records one completed pipeline stage: the wall time since the
// previous mark, the stage, and its verdict.
func (a *Active) Stage(st Stage, verdict uint8) {
	if a == nil {
		return
	}
	now := time.Now()
	a.span.Stages = append(a.span.Stages, StageRec{Stage: st, Verdict: verdict, Ns: int64(now.Sub(a.mark))})
	a.mark = now
}

// End closes the span with its terminal outcome and emits it.
func (a *Active) End(outcome uint8, target, post uint64, asn uint32) {
	if a == nil {
		return
	}
	t := a.t
	a.span.Code = outcome
	a.span.Target, a.span.Post, a.span.ASN = target, post, asn
	a.span.Wall = int64(time.Since(t.wallStart)) - a.span.Start
	t.lastReq = a.span.ID()
	t.curReq = 0
	t.write(&a.span)
}

// Instant emits a zero-duration span (retry scheduled, breaker
// transition, enforcement decision). It always allocates a sequence
// number; emission happens when the span rides a sampled parent
// (parent != 0) or, parentless, when the sampler selects it directly.
func (t *Tracer) Instant(kind Kind, actor uint64, action uint8, code uint8, parent uint64, value int64) {
	if t == nil {
		return
	}
	tick, seq := t.nextSeq()
	if parent == 0 && !Sampled(t.seed, tick, seq, t.sampleN) {
		return
	}
	sp := &t.scratch
	*sp = Span{
		Tick: tick, Seq: seq, Parent: parent,
		Kind: kind, Action: action, Code: code,
		Actor: actor, Value: value,
		Start:  int64(time.Since(t.wallStart)),
		Stages: sp.Stages[:0],
	}
	t.write(sp)
}

// Section is one in-flight step.RunInto section span: the per-shard
// plan phase plus the serial apply phase. ShardDone may be called
// concurrently (disjoint slots); StartSection and End must stay on the
// serial goroutine. A nil *Section no-ops.
type Section struct {
	t        *Tracer
	span     Span
	childSeq uint32 // first child seq; shard i's plan span is childSeq+i
	planDur  []int64
	planN    []int32
	start    time.Time
}

// StartSection opens a section span over n plan shards. One sequence
// number is allocated for the section and n more are reserved for its
// per-shard plan children — unconditionally, so identities stay stable
// across sample rates. Returns nil when the section goes unsampled;
// the section and its children sample as a unit.
func (t *Tracer) StartSection(n int) *Section {
	if t == nil || n <= 0 {
		return nil
	}
	tick, seq := t.nextSeq()
	childSeq := t.seq
	t.seq += uint32(n)
	if !Sampled(t.seed, tick, seq, t.sampleN) {
		return nil
	}
	s := &t.section
	s.t = t
	s.span = Span{
		Tick: tick, Seq: seq, Kind: KindSection,
		Value:  int64(n),
		Stages: s.span.Stages[:0],
	}
	s.childSeq = childSeq
	if cap(s.planDur) < n {
		s.planDur = make([]int64, n)
		s.planN = make([]int32, n)
	}
	s.planDur = s.planDur[:n]
	s.planN = s.planN[:n]
	for i := range s.planDur {
		s.planDur[i], s.planN[i] = 0, 0
	}
	s.start = time.Now()
	s.span.Start = int64(s.start.Sub(t.wallStart))
	return s
}

// ShardDone records one shard's plan phase. Safe to call concurrently
// from pool workers: each shard writes only its own slot.
func (s *Section) ShardDone(shard int, d time.Duration, intents int) {
	if s == nil {
		return
	}
	s.planDur[shard] = int64(d)
	s.planN[shard] = int32(intents)
}

// End closes the section with the serial apply phase's duration and
// intent count, emits the section span, then its per-shard plan
// children in shard order — all on the serial goroutine, after the
// worker barrier, so emission order is deterministic.
func (s *Section) End(applyDur time.Duration, applied int) {
	if s == nil {
		return
	}
	t := s.t
	s.span.Wall = int64(time.Since(t.wallStart)) - s.span.Start
	s.span.Value = int64(applied)
	s.span.Stages = append(s.span.Stages, StageRec{Stage: StageApply, Ns: int64(applyDur)})
	t.write(&s.span)
	parent := s.span.ID()
	for i := range s.planDur {
		sp := &t.scratch
		*sp = Span{
			Tick: s.span.Tick, Shard: uint32(i), Seq: s.childSeq + uint32(i),
			Parent: parent, Kind: KindPlan,
			Value: int64(s.planN[i]),
			Start: s.span.Start, Wall: s.planDur[i],
			Stages: sp.Stages[:0],
		}
		t.write(sp)
	}
}

// Spans reports how many spans have been written.
func (t *Tracer) Spans() uint64 {
	if t == nil {
		return 0
	}
	return t.w.Count()
}

// Err returns the first sink write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.w.Err()
}

// Flush drains buffered output to the sink.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	return t.w.Flush()
}

// Close flushes and returns the first error the sink ever produced.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	return t.w.Close()
}
