package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"footsteps/internal/telemetry"
)

// ActionName renders a platform.ActionType code without importing
// platform (the dependency points the other way). Kept in lockstep with
// the platform enum by TestActionOutcomeNamesMatchPlatform.
func ActionName(a uint8) string {
	switch a {
	case 0:
		return "like"
	case 1:
		return "follow"
	case 2:
		return "unfollow"
	case 3:
		return "comment"
	case 4:
		return "post"
	case 5:
		return "login"
	default:
		return fmt.Sprintf("action(%d)", a)
	}
}

// OutcomeName renders a platform.Outcome code (request spans' terminal
// Code field).
func OutcomeName(o uint8) string {
	switch o {
	case 0:
		return "allowed"
	case 1:
		return "blocked"
	case 2:
		return "ratelimited"
	case 3:
		return "failed"
	case 4:
		return "unavailable"
	default:
		return fmt.Sprintf("outcome(%d)", o)
	}
}

// Filter selects spans for grep/stats. Negative numeric fields mean
// "any"; Kind/Action/Outcome match the span's enum codes, Day the
// simulated day index.
type Filter struct {
	Actor   int64
	Action  int
	Outcome int
	Day     int
	Kind    int
}

// MatchAll is the identity filter.
var MatchAll = Filter{Actor: -1, Action: -1, Outcome: -1, Day: -1, Kind: -1}

// Match reports whether sp passes the filter.
func (f Filter) Match(sp *Span) bool {
	if f.Actor >= 0 && sp.Actor != uint64(f.Actor) {
		return false
	}
	if f.Action >= 0 && sp.Action != uint8(f.Action) {
		return false
	}
	if f.Outcome >= 0 && sp.Code != uint8(f.Outcome) {
		return false
	}
	if f.Day >= 0 && sp.Day() != int64(f.Day) {
		return false
	}
	if f.Kind >= 0 && sp.Kind != Kind(f.Kind) {
		return false
	}
	return true
}

// stageAgg accumulates one pipeline stage's latency samples and verdict
// counts across all observed request spans.
type stageAgg struct {
	ns       []int64
	verdicts map[uint8]uint64
}

// Stats aggregates a trace stream: per-stage latency distributions,
// outcome breakdowns by action and ASN, terminal-stage attribution
// ("which stage decided this request's fate"), and instant-span counts.
type Stats struct {
	Total    uint64
	ByKind   map[Kind]uint64
	stages   [stageCount]stageAgg
	wall     []int64
	outcomes map[uint8]uint64
	byAction map[[2]uint8]uint64 // (action, outcome) → count
	byASN    map[uint32]map[uint8]uint64
	terminal map[[2]uint8]uint64 // (stage, verdict) that ended a denied request
	byActor  map[uint64]uint64
	instants map[[2]uint8]uint64 // (kind, code) for retry/breaker/enforcement
}

// NewStats returns an empty aggregator.
func NewStats() *Stats {
	return &Stats{
		ByKind:   make(map[Kind]uint64),
		outcomes: make(map[uint8]uint64),
		byAction: make(map[[2]uint8]uint64),
		byASN:    make(map[uint32]map[uint8]uint64),
		terminal: make(map[[2]uint8]uint64),
		byActor:  make(map[uint64]uint64),
		instants: make(map[[2]uint8]uint64),
	}
}

// Observe folds one span in.
func (s *Stats) Observe(sp *Span) {
	s.Total++
	s.ByKind[sp.Kind]++
	switch sp.Kind {
	case KindRequest, KindLogin:
		s.wall = append(s.wall, sp.Wall)
		s.outcomes[sp.Code]++
		s.byAction[[2]uint8{sp.Action, sp.Code}]++
		s.byActor[sp.Actor]++
		asn := s.byASN[sp.ASN]
		if asn == nil {
			asn = make(map[uint8]uint64)
			s.byASN[sp.ASN] = asn
		}
		asn[sp.Code]++
		for _, st := range sp.Stages {
			agg := &s.stages[st.Stage%stageCount]
			agg.ns = append(agg.ns, st.Ns)
			if agg.verdicts == nil {
				agg.verdicts = make(map[uint8]uint64)
			}
			agg.verdicts[st.Verdict]++
		}
		// Attribute denied requests to the stage that decided them: the
		// last stage record carrying a non-OK verdict.
		if sp.Code != 0 {
			for i := len(sp.Stages) - 1; i >= 0; i-- {
				if st := sp.Stages[i]; st.Verdict != VerdictOK {
					s.terminal[[2]uint8{uint8(st.Stage), st.Verdict}]++
					break
				}
			}
		}
	case KindRetry, KindBreaker, KindEnforcement:
		s.instants[[2]uint8{uint8(sp.Kind), sp.Code}]++
	}
}

// ObserveAll drains a reader into the aggregator, returning the first
// read error (io.EOF excluded).
func (s *Stats) ObserveAll(r *Reader) error {
	for {
		sp, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		s.Observe(sp)
	}
}

// quantile returns the q-quantile of ns by nearest-rank on a sorted
// copy-free slice (the caller sorts once).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// Format renders the aggregate as aligned text tables: span kinds,
// per-stage latency percentiles with verdict mixes, outcome breakdowns
// by action, terminal-stage attribution, top ASNs, top actors, and
// instant-span counts.
func (s *Stats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spans: %d\n\n", s.Total)

	{
		rows := make([][]string, 0, len(s.ByKind))
		for k := Kind(0); k < kindCount; k++ {
			if n := s.ByKind[k]; n > 0 {
				rows = append(rows, []string{k.String(), fmt.Sprintf("%d", n)})
			}
		}
		b.WriteString(telemetry.Table([]string{"kind", "spans"}, rows))
		b.WriteString("\n")
	}

	if len(s.wall) > 0 {
		sort.Slice(s.wall, func(i, j int) bool { return s.wall[i] < s.wall[j] })
		rows := [][]string{{
			"total", fmt.Sprintf("%d", len(s.wall)),
			fmtNs(quantile(s.wall, 0.50)), fmtNs(quantile(s.wall, 0.90)), fmtNs(quantile(s.wall, 0.99)),
			"",
		}}
		for st := Stage(0); st < stageCount; st++ {
			agg := &s.stages[st]
			if len(agg.ns) == 0 {
				continue
			}
			sort.Slice(agg.ns, func(i, j int) bool { return agg.ns[i] < agg.ns[j] })
			var verdicts []string
			for _, v := range sortedVerdicts(agg.verdicts) {
				if v != VerdictOK || len(agg.verdicts) > 1 {
					verdicts = append(verdicts, fmt.Sprintf("%s=%d", VerdictName(v), agg.verdicts[v]))
				}
			}
			rows = append(rows, []string{
				st.String(), fmt.Sprintf("%d", len(agg.ns)),
				fmtNs(quantile(agg.ns, 0.50)), fmtNs(quantile(agg.ns, 0.90)), fmtNs(quantile(agg.ns, 0.99)),
				strings.Join(verdicts, " "),
			})
		}
		b.WriteString(telemetry.Table([]string{"stage", "samples", "p50", "p90", "p99", "verdicts"}, rows))
		b.WriteString("\n")
	}

	if len(s.byAction) > 0 {
		keys := make([][2]uint8, 0, len(s.byAction))
		for k := range s.byAction {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		rows := make([][]string, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, []string{ActionName(k[0]), OutcomeName(k[1]), fmt.Sprintf("%d", s.byAction[k])})
		}
		b.WriteString(telemetry.Table([]string{"action", "outcome", "requests"}, rows))
		b.WriteString("\n")
	}

	if len(s.terminal) > 0 {
		keys := make([][2]uint8, 0, len(s.terminal))
		for k := range s.terminal {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		rows := make([][]string, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, []string{Stage(k[0]).String(), VerdictName(k[1]), fmt.Sprintf("%d", s.terminal[k])})
		}
		b.WriteString(telemetry.Table([]string{"decided-by", "verdict", "denials"}, rows))
		b.WriteString("\n")
	}

	if len(s.byASN) > 0 {
		type asnRow struct {
			asn   uint32
			total uint64
			m     map[uint8]uint64
		}
		all := make([]asnRow, 0, len(s.byASN))
		for asn, m := range s.byASN {
			var tot uint64
			for _, n := range m {
				tot += n
			}
			all = append(all, asnRow{asn, tot, m})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].total != all[j].total {
				return all[i].total > all[j].total
			}
			return all[i].asn < all[j].asn
		})
		if len(all) > 10 {
			all = all[:10]
		}
		rows := make([][]string, 0, len(all))
		for _, r := range all {
			var mix []string
			for _, o := range sortedVerdicts(r.m) {
				mix = append(mix, fmt.Sprintf("%s=%d", OutcomeName(o), r.m[o]))
			}
			rows = append(rows, []string{fmt.Sprintf("%d", r.asn), fmt.Sprintf("%d", r.total), strings.Join(mix, " ")})
		}
		b.WriteString(telemetry.Table([]string{"asn", "requests", "outcomes"}, rows))
		b.WriteString("\n")
	}

	if len(s.byActor) > 0 {
		type actorRow struct {
			actor uint64
			n     uint64
		}
		all := make([]actorRow, 0, len(s.byActor))
		for a, n := range s.byActor {
			all = append(all, actorRow{a, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].actor < all[j].actor
		})
		if len(all) > 10 {
			all = all[:10]
		}
		rows := make([][]string, 0, len(all))
		for _, r := range all {
			rows = append(rows, []string{fmt.Sprintf("%d", r.actor), fmt.Sprintf("%d", r.n)})
		}
		b.WriteString(telemetry.Table([]string{"actor", "requests"}, rows))
		b.WriteString("\n")
	}

	if len(s.instants) > 0 {
		keys := make([][2]uint8, 0, len(s.instants))
		for k := range s.instants {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		rows := make([][]string, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, []string{Kind(k[0]).String(), VerdictName(k[1]), fmt.Sprintf("%d", s.instants[k])})
		}
		b.WriteString(telemetry.Table([]string{"instant", "code", "count"}, rows))
	}

	return b.String()
}

func sortedVerdicts(m map[uint8]uint64) []uint8 {
	out := make([]uint8, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
