package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path"
	"sort"
	"strings"
)

// Segment file layout:
//
//	header := "FSEG1\n" | segment index (8 bytes LE)
//	frame  := kind (1) | payload len (4 LE) | cumulative events (8 LE)
//	          | CRC32C (4 LE) | payload
//	footer := frame with kind=frameFooter whose payload is
//	          uvarint(data frames) | uvarint(payload bytes) |
//	          uvarint(cumulative events)
//
// The CRC covers the first 13 header bytes (kind, length, events) plus
// the payload, so a bit flip anywhere in the frame is caught. Data
// frame payloads are raw eventio record bytes, cut on record
// boundaries; the events field is the cumulative count across the whole
// log through the end of the frame. A sealed segment ends with exactly
// one footer frame and nothing after it.

const (
	frameData   byte = 1
	frameFooter byte = 2

	frameHeaderLen  = 17 // kind(1) + len(4) + events(8) + crc(4)
	segHeaderLen    = 14 // magic(6) + index(8)
	maxFramePayload = 1 << 28
)

var segMagic = []byte("FSEG1\n")

// segName returns the file name of segment idx. Zero-padding keeps
// lexical ReadDir order equal to numeric order.
func segName(idx uint64) string { return fmt.Sprintf("seg-%05d.fseg", idx) }

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".fseg")
	if !ok || len(rest) == 0 {
		return 0, false
	}
	var idx uint64
	for _, c := range rest {
		if c < '0' || c > '9' {
			return 0, false
		}
		idx = idx*10 + uint64(c-'0')
	}
	return idx, true
}

// segHeader appends the segment header for idx to dst.
func segHeader(dst []byte, idx uint64) []byte {
	dst = append(dst, segMagic...)
	return binary.LittleEndian.AppendUint64(dst, idx)
}

// appendFrame appends one framed payload to dst and returns it.
func appendFrame(dst []byte, kind byte, events uint64, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint64(dst, events)
	crc := crc32Of(dst[start:start+13], payload)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return append(dst, payload...)
}

func crc32Of(header, payload []byte) uint32 {
	crc := crc32.Checksum(header, castagnoli)
	return crc32.Update(crc, castagnoli, payload)
}

// footerPayload appends the footer body for a segment with the given
// totals.
func footerPayload(dst []byte, frames uint64, payloadBytes uint64, events uint64) []byte {
	dst = binary.AppendUvarint(dst, frames)
	dst = binary.AppendUvarint(dst, payloadBytes)
	return binary.AppendUvarint(dst, events)
}

// Frame is one validated frame yielded by scanSegment. Payload aliases
// the scanned buffer.
type Frame struct {
	Kind    byte
	Events  uint64 // cumulative events through the end of this frame
	Offset  int64  // byte offset of the frame start within the segment
	Payload []byte
}

// segScan is the result of validating one segment file.
type segScan struct {
	Index   uint64
	Frames  []Frame
	Sealed  bool   // ends with a valid footer frame and nothing after
	DataLen uint64 // total data-frame payload bytes
	Events  uint64 // cumulative events through the last valid frame
	End     int64  // byte offset just past the last valid frame
	Torn    *TornTailError
}

// scanSegment walks every frame in data, verifying checksums. It never
// fails outright on tail damage: the valid prefix is returned and Torn
// describes the first bad frame. A malformed header is reported as a
// CorruptError via err; tail damage is not an error here — callers
// decide whether a torn tail is fatal.
func scanSegment(name string, data []byte) (*segScan, error) {
	if len(data) < segHeaderLen || !bytes.Equal(data[:len(segMagic)], segMagic) {
		return nil, &CorruptError{Path: name, Offset: 0, Err: fmt.Errorf("bad segment header (%d bytes)", len(data))}
	}
	s := &segScan{Index: binary.LittleEndian.Uint64(data[len(segMagic):segHeaderLen])}
	off := int64(segHeaderLen)
	s.End = off
	for off < int64(len(data)) {
		frameIdx := len(s.Frames)
		if s.Sealed {
			// Bytes after a footer can only be crash garbage.
			s.Torn = &TornTailError{Segment: name, Frame: frameIdx, Offset: off,
				Err: fmt.Errorf("%d trailing bytes after sealed footer", int64(len(data))-off)}
			s.Sealed = false
			break
		}
		if int64(len(data))-off < frameHeaderLen {
			s.Torn = &TornTailError{Segment: name, Frame: frameIdx, Offset: off,
				Err: fmt.Errorf("incomplete frame header (%d of %d bytes)", int64(len(data))-off, frameHeaderLen)}
			break
		}
		hdr := data[off : off+frameHeaderLen]
		kind := hdr[0]
		plen := int64(binary.LittleEndian.Uint32(hdr[1:5]))
		events := binary.LittleEndian.Uint64(hdr[5:13])
		want := binary.LittleEndian.Uint32(hdr[13:17])
		if (kind != frameData && kind != frameFooter) || plen > maxFramePayload {
			s.Torn = &TornTailError{Segment: name, Frame: frameIdx, Offset: off,
				Err: fmt.Errorf("invalid frame header (kind %d, len %d)", kind, plen)}
			break
		}
		if int64(len(data))-off-frameHeaderLen < plen {
			s.Torn = &TornTailError{Segment: name, Frame: frameIdx, Offset: off,
				Err: fmt.Errorf("frame extends past end of segment (need %d payload bytes, have %d)",
					plen, int64(len(data))-off-frameHeaderLen)}
			break
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+plen]
		if got := crc32Of(hdr[:13], payload); got != want {
			s.Torn = &TornTailError{Segment: name, Frame: frameIdx, Offset: off, Want: want, Got: got}
			break
		}
		s.Frames = append(s.Frames, Frame{Kind: kind, Events: events, Offset: off, Payload: payload})
		off += frameHeaderLen + plen
		s.End = off
		switch kind {
		case frameData:
			s.DataLen += uint64(plen)
			s.Events = events
		case frameFooter:
			// The footer's events total is log-cumulative (like every
			// frame header's); the frame and byte totals are per-segment.
			frames, pbytes, fevents, ok := decodeFooter(payload)
			if !ok || frames != s.dataFrames() || pbytes != s.DataLen || fevents != events ||
				(s.dataFrames() > 0 && fevents != s.Events) {
				s.Frames = s.Frames[:len(s.Frames)-1]
				s.End = off - (frameHeaderLen + plen)
				s.Torn = &TornTailError{Segment: name, Frame: frameIdx, Offset: s.End,
					Err: fmt.Errorf("footer totals disagree with segment contents")}
				return s, nil
			}
			s.Events = events
			s.Sealed = true
		}
	}
	return s, nil
}

func (s *segScan) dataFrames() uint64 {
	var n uint64
	for _, f := range s.Frames {
		if f.Kind == frameData {
			n++
		}
	}
	return n
}

func decodeFooter(p []byte) (frames, payloadBytes, events uint64, ok bool) {
	frames, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, 0, false
	}
	p = p[n:]
	payloadBytes, n = binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, 0, false
	}
	p = p[n:]
	events, n = binary.Uvarint(p)
	if n <= 0 || n != len(p) {
		return 0, 0, 0, false
	}
	return frames, payloadBytes, events, true
}

// listSegments returns the segment indices present in dir, sorted.
func listSegments(fsys FS, dir string) ([]uint64, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, name := range names {
		if idx, ok := parseSegName(name); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// SegmentInfo summarizes one verified segment for VerifyDir reports.
type SegmentInfo struct {
	Name    string
	Index   uint64
	Bytes   int64  // file size
	Frames  int    // valid frames (data + footer)
	Events  uint64 // cumulative events through the segment's last frame
	Payload uint64 // data payload bytes
	Sealed  bool
}

// VerifyDir CRC-checks every segment in a durable log directory. It
// returns one SegmentInfo per segment (in index order) and the first
// validation error: a TornTailError naming the segment, frame, offset
// and expected/actual checksum, or a CorruptError for structural
// damage (bad header, missing index, manifest problems are not
// checked here). The returned infos cover everything scanned before
// the error, so partial reports stay useful.
func VerifyDir(fsys FS, dir string) ([]SegmentInfo, error) {
	idxs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	var infos []SegmentInfo
	var next uint64
	for i, idx := range idxs {
		name := segName(idx)
		if idx != next {
			return infos, &CorruptError{Path: path.Join(dir, name), Offset: -1,
				Err: fmt.Errorf("segment index gap: expected %s next", segName(next))}
		}
		next = idx + 1
		data, err := fsys.ReadFile(path.Join(dir, name))
		if err != nil {
			return infos, &CorruptError{Path: path.Join(dir, name), Offset: -1, Err: err}
		}
		s, err := scanSegment(name, data)
		if err != nil {
			return infos, err
		}
		infos = append(infos, SegmentInfo{
			Name: name, Index: idx, Bytes: int64(len(data)),
			Frames: len(s.Frames), Events: s.Events, Payload: s.DataLen, Sealed: s.Sealed,
		})
		if s.Torn != nil {
			return infos, s.Torn
		}
		if !s.Sealed && i != len(idxs)-1 {
			return infos, &CorruptError{Path: path.Join(dir, name), Offset: s.End,
				Err: fmt.Errorf("non-final segment is not sealed")}
		}
	}
	return infos, nil
}
