package durable

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
)

// File is the write handle the log needs: append bytes, force them to
// stable storage, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the small filesystem surface the durable log runs on. OSFS is
// the real thing; MemFS backs hermetic tests and CrashFS layers a
// deterministic power-loss model on top. All paths use forward slashes.
type FS interface {
	MkdirAll(dir string) error
	// Create truncates or creates name for writing.
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the sorted base names of dir's entries.
	ReadDir(dir string) ([]string, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames and creates
	// within it durable.
	SyncDir(dir string) error
}

// OSFS implements FS on the host filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemFS is an in-memory FS for hermetic tests. Sync and SyncDir are
// no-ops: every write is immediately "durable". CrashFS supplies the
// interesting durability semantics on top.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
	dirs  map[string]bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte), dirs: make(map[string]bool)}
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[path.Clean(dir)] = true
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	m.files[name] = nil
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	if _, ok := m.files[name]; !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path.Clean(name)]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), data...), nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := path.Clean(dir) + "/"
	var names []string
	for name := range m.files {
		if rest, ok := strings.CutPrefix(name, prefix); ok && !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	data, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.files[newname] = data
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	data, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size > int64(len(data)) {
		return fmt.Errorf("durable: truncate %s beyond end (%d > %d)", name, size, len(data))
	}
	m.files[name] = data[:size]
	return nil
}

func (m *MemFS) SyncDir(dir string) error { return nil }

// Corrupt flips bits at off in name — test helper for damage paths.
func (m *MemFS) Corrupt(name string, off int64, xor byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path.Clean(name)]
	if !ok || off < 0 || off >= int64(len(data)) {
		return fmt.Errorf("durable: corrupt: no byte %d in %s", off, name)
	}
	data[off] ^= xor
	return nil
}

// Size reports the current length of name, or -1 if absent.
func (m *MemFS) Size(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path.Clean(name)]
	if !ok {
		return -1
	}
	return int64(len(data))
}

type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }
