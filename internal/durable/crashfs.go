package durable

import (
	"fmt"
	"hash/fnv"
	"path"
	"sync"
	"sync/atomic"
)

// CrashMode is what the injected failure looks like at the kill point.
type CrashMode int

const (
	// CrashShortWrite tears the fatal write: a deterministic prefix of
	// the written bytes reaches the durable image, the rest vanishes.
	CrashShortWrite CrashMode = iota
	// CrashFsyncError fails the fatal Sync with ErrFsyncInjected; the
	// pending bytes it would have committed are (partially) lost.
	CrashFsyncError
	// CrashENOSPC fails the fatal write with ErrNoSpace before any of
	// its bytes land.
	CrashENOSPC

	crashModes = 3
)

func (m CrashMode) String() string {
	switch m {
	case CrashShortWrite:
		return "short-write"
	case CrashFsyncError:
		return "fsync-error"
	case CrashENOSPC:
		return "enospc"
	}
	return fmt.Sprintf("CrashMode(%d)", int(m))
}

// CrashPlan schedules one deterministic power loss.
type CrashPlan struct {
	Seed uint64
	// KillAt is the 1-based filesystem op serial at which the crash
	// fires; 0 disables it. The failure mode is a SplitMix64 verdict of
	// (Seed, KillAt) — mirroring internal/faults, the decision is a
	// pure hash, independent of goroutines or wall time.
	KillAt uint64
}

// Mode returns the failure mode the plan's kill point will use.
func (p CrashPlan) Mode() CrashMode {
	return CrashMode(mix64(p.Seed^p.KillAt) % crashModes)
}

// CrashFS models power-loss semantics over an in-memory durable image:
// writes buffer as per-file pending bytes; Sync commits them; at the
// planned op the crash drops every file's pending bytes except a
// deterministic prefix (the torn tail), and every later operation
// returns ErrCrashed. Metadata ops (create, rename, remove, truncate)
// apply to the image immediately — the journal-everything model of a
// metadata-ordered filesystem — which is exactly why the log still
// needs its fsync-before-rename discipline for data.
//
// After the crash, Image() exposes what "disk" holds; Resume on it is
// the recovery under test.
type CrashFS struct {
	plan CrashPlan

	mu      sync.Mutex
	img     *MemFS
	pending map[string][]byte
	serial  uint64
	crashed bool
}

// NewCrashFS returns a CrashFS over a fresh image.
func NewCrashFS(plan CrashPlan) *CrashFS {
	return &CrashFS{plan: plan, img: NewMemFS(), pending: make(map[string][]byte)}
}

// Image returns the durable image — the bytes that survived. Only
// meaningful to mutate through after Crashed() is true.
func (c *CrashFS) Image() *MemFS { return c.img }

// Ops returns the number of filesystem operations issued so far. A
// probe run with KillAt=0 measures the total so kill points can be
// placed at chosen fractions of it.
func (c *CrashFS) Ops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// Crashed reports whether the planned power loss has fired.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// step advances the op serial and reports whether this op is the kill
// point. Callers hold c.mu.
func (c *CrashFS) step() (bool, CrashMode) {
	c.serial++
	if c.plan.KillAt != 0 && c.serial == c.plan.KillAt {
		return true, c.plan.Mode()
	}
	return false, 0
}

// crash commits a deterministic partial prefix of every file's pending
// bytes to the image — torn tails — and makes the filesystem dead.
// keep, when non-empty, names a file whose pending bytes were already
// handled by the caller (the short-write victim).
func (c *CrashFS) crash(keep string) {
	c.crashed = true
	for name, p := range c.pending {
		if name == keep {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(name))
		n := int(mix64(c.plan.Seed^0xd15c^h.Sum64()) % uint64(len(p)+1))
		c.img.files[name] = append(c.img.files[name], p[:n]...)
	}
	c.pending = make(map[string][]byte)
}

func (c *CrashFS) MkdirAll(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if kill, _ := c.step(); kill {
		c.crash("")
		return ErrCrashed
	}
	return c.img.MkdirAll(dir)
}

func (c *CrashFS) Create(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	if kill, _ := c.step(); kill {
		c.crash("")
		return nil, ErrCrashed
	}
	name = path.Clean(name)
	c.img.files[name] = nil
	delete(c.pending, name)
	return &crashFile{fs: c, name: name}, nil
}

func (c *CrashFS) OpenAppend(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	if kill, _ := c.step(); kill {
		c.crash("")
		return nil, ErrCrashed
	}
	name = path.Clean(name)
	if _, ok := c.img.files[name]; !ok {
		return nil, fmt.Errorf("durable: open %s: no such file", name)
	}
	return &crashFile{fs: c, name: name}, nil
}

// ReadFile sees the logical state — durable plus pending — the view a
// running process has of its own writes.
func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	if kill, _ := c.step(); kill {
		c.crash("")
		return nil, ErrCrashed
	}
	name = path.Clean(name)
	data, err := c.img.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return append(data, c.pending[name]...), nil
}

func (c *CrashFS) ReadDir(dir string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	if kill, _ := c.step(); kill {
		c.crash("")
		return nil, ErrCrashed
	}
	return c.img.ReadDir(dir)
}

func (c *CrashFS) Rename(oldname, newname string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if kill, _ := c.step(); kill {
		c.crash("")
		return ErrCrashed
	}
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	if p, ok := c.pending[oldname]; ok {
		c.pending[newname] = p
		delete(c.pending, oldname)
	}
	return c.img.Rename(oldname, newname)
}

func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if kill, _ := c.step(); kill {
		c.crash("")
		return ErrCrashed
	}
	name = path.Clean(name)
	delete(c.pending, name)
	return c.img.Remove(name)
}

func (c *CrashFS) Truncate(name string, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if kill, _ := c.step(); kill {
		c.crash("")
		return ErrCrashed
	}
	name = path.Clean(name)
	delete(c.pending, name)
	return c.img.Truncate(name, size)
}

func (c *CrashFS) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if kill, _ := c.step(); kill {
		c.crash("")
		return ErrCrashed
	}
	return nil
}

type crashFile struct {
	fs   *CrashFS
	name string
}

func (f *crashFile) Write(p []byte) (int, error) {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	if kill, mode := c.step(); kill {
		switch mode {
		case CrashShortWrite:
			// A deterministic prefix of this write reaches pending and
			// then commits with the crash — the canonical torn tail.
			n := int(mix64(c.plan.Seed^c.serial^0x77) % uint64(len(p)+1))
			c.pending[f.name] = append(c.pending[f.name], p[:n]...)
			c.crash("")
			return n, ErrCrashed
		case CrashENOSPC:
			c.crash("")
			return 0, ErrNoSpace
		default: // fsync-error mode on a write op: plain power loss
			c.crash("")
			return 0, ErrCrashed
		}
	}
	c.pending[f.name] = append(c.pending[f.name], p...)
	return len(p), nil
}

func (f *crashFile) Sync() error {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if kill, mode := c.step(); kill {
		if mode == CrashFsyncError {
			// The device rejected the flush; pending bytes for this
			// file tear like any other crash casualty.
			c.crash("")
			return ErrFsyncInjected
		}
		c.crash("")
		return ErrCrashed
	}
	if p, ok := c.pending[f.name]; ok {
		c.img.files[f.name] = append(c.img.files[f.name], p...)
		delete(c.pending, f.name)
	}
	return nil
}

func (f *crashFile) Close() error {
	// Close is not a durability point and not a counted op: bytes not
	// synced remain pending and die with the crash.
	return nil
}

// KillFS wraps a real FS, counting operations and invoking onKill just
// before op number killAt executes — the CLI's -crash-after-op hook,
// where onKill is os.Exit and recovery happens in a fresh process.
type KillFS struct {
	inner  FS
	killAt uint64
	onKill func()
	ops    atomic.Uint64
}

// NewKillFS returns a KillFS; killAt 0 never fires.
func NewKillFS(inner FS, killAt uint64, onKill func()) *KillFS {
	return &KillFS{inner: inner, killAt: killAt, onKill: onKill}
}

// Ops returns the operations issued so far.
func (k *KillFS) Ops() uint64 { return k.ops.Load() }

func (k *KillFS) step() {
	if k.ops.Add(1) == k.killAt && k.killAt != 0 {
		k.onKill()
	}
}

func (k *KillFS) MkdirAll(dir string) error { k.step(); return k.inner.MkdirAll(dir) }

func (k *KillFS) Create(name string) (File, error) {
	k.step()
	f, err := k.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &killFile{fs: k, f: f}, nil
}

func (k *KillFS) OpenAppend(name string) (File, error) {
	k.step()
	f, err := k.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &killFile{fs: k, f: f}, nil
}

func (k *KillFS) ReadFile(name string) ([]byte, error) { k.step(); return k.inner.ReadFile(name) }
func (k *KillFS) ReadDir(dir string) ([]string, error) { k.step(); return k.inner.ReadDir(dir) }
func (k *KillFS) Rename(o, n string) error             { k.step(); return k.inner.Rename(o, n) }
func (k *KillFS) Remove(name string) error             { k.step(); return k.inner.Remove(name) }
func (k *KillFS) Truncate(n string, s int64) error     { k.step(); return k.inner.Truncate(n, s) }
func (k *KillFS) SyncDir(dir string) error             { k.step(); return k.inner.SyncDir(dir) }

type killFile struct {
	fs *KillFS
	f  File
}

func (f *killFile) Write(p []byte) (int, error) { f.fs.step(); return f.f.Write(p) }
func (f *killFile) Sync() error                 { f.fs.step(); return f.f.Sync() }
func (f *killFile) Close() error                { return f.f.Close() }
