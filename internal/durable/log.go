package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"strings"

	"footsteps/internal/eventio"
	"footsteps/internal/platform"
	"footsteps/internal/telemetry"
)

// Options configures a durable log.
type Options struct {
	// Seed and Fingerprint identify the world; Resume refuses a log
	// whose manifest disagrees (MismatchError).
	Seed        uint64
	Fingerprint uint64
	// BatchEvents is the frame-cut threshold: after this many appended
	// events the open batch is framed, checksummed, and written to the
	// live segment. Default 1024.
	BatchEvents int
	// FsyncEveryBatch forces an fsync after every frame write instead
	// of only at checkpoints — maximal durability, measured cost in
	// BenchmarkDurableStep.
	FsyncEveryBatch bool
	// Telemetry receives durable.* counters; nil is fine.
	Telemetry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.BatchEvents <= 0 {
		o.BatchEvents = 1024
	}
	return o
}

// Recovery describes what Resume found and repaired.
type Recovery struct {
	CheckpointDay  int
	CheckpointFile string // "" = genesis: restart the world from scratch
	Checkpoint     []byte // FSNAP1 bytes (nil at genesis)
	Events         uint64 // durable events retained
	// DiscardedFrames / DiscardedEvents count intact frames beyond the
	// checkpoint instant that were dropped — the resumed world
	// re-derives those events deterministically.
	DiscardedFrames int
	DiscardedEvents uint64
	// TornTail is non-nil when the live segment ended mid-frame — the
	// expected signature of a crash during a frame write.
	TornTail *TornTailError
}

// Log is a crash-tolerant FSEV1 event log. Append frames events into
// the live segment; Checkpoint seals the segment, lands a world
// snapshot, and advances the manifest; Close seals without advancing
// it (a later Resume re-derives the tail from the last checkpoint).
//
// I/O errors are sticky: the first one is retained (Err), counted in
// durable.write_errors / durable.fsync_errors, and every later
// operation returns it without touching the filesystem — the
// simulation can keep running with durability lost rather than
// crashing the run.
type Log struct {
	fs  FS
	dir string
	opt Options

	enc     *eventio.Writer
	pending bytes.Buffer // framed-but-unwritten record bytes (record-aligned after enc.Flush)
	batched int          // events in the open batch

	seg        File
	segIndex   uint64
	segOff     int64  // bytes written to the live segment
	segFrames  uint64 // data frames in the live segment
	segPayload uint64 // data payload bytes in the live segment

	ckptDay  uint64
	ckptFile string
	prevCkpt string // kept as a fallback; older ones are pruned

	frameBuf []byte // reused frame assembly buffer

	writeErrs *telemetry.Counter
	fsyncErrs *telemetry.Counter
	frames    *telemetry.Counter
	ckpts     *telemetry.Counter

	firstErr error
	closed   bool
	rec      *Recovery
}

func newLog(fsys FS, dir string, opt Options) *Log {
	l := &Log{fs: fsys, dir: dir, opt: opt}
	if reg := opt.Telemetry; reg != nil {
		l.writeErrs = reg.Counter("durable.write_errors")
		l.fsyncErrs = reg.Counter("durable.fsync_errors")
		l.frames = reg.Counter("durable.frames")
		l.ckpts = reg.Counter("durable.checkpoints")
	}
	return l
}

// Create initializes a fresh durable log in dir. It writes segment 0
// and a genesis manifest (empty checkpoint name), so a crash before the
// first checkpoint still resumes cleanly — from scratch. If dir already
// holds a log, Create fails with ErrExists.
func Create(fsys FS, dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	if _, err := fsys.ReadFile(path.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("durable: %s: %w (pass -resume to continue it)", dir, ErrExists)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	l := newLog(fsys, dir, opt)
	if err := l.startSegment(0); err != nil {
		return nil, err
	}
	if err := l.writeManifest(); err != nil {
		return nil, err
	}
	l.initWriter(nil, 0)
	return l, nil
}

// initWriter builds the eventio encoder over the pending buffer. A
// fresh writer's magic header is flushed and dropped — Reconstruct
// re-prepends it — so frame payloads hold record bytes only.
func (l *Log) initWriter(strs []string, events uint64) {
	if strs == nil && events == 0 {
		enc, _ := eventio.NewWriter(&l.pending) // bytes.Buffer writes cannot fail
		l.enc = enc
		_ = l.enc.Flush()
		l.pending.Reset()
		return
	}
	l.enc = eventio.NewWriterResume(&l.pending, strs, events)
}

// startSegment creates segment idx and writes its header.
func (l *Log) startSegment(idx uint64) error {
	f, err := l.fs.Create(path.Join(l.dir, segName(idx)))
	if err != nil {
		return l.stickWrite(err)
	}
	hdr := segHeader(l.frameBuf[:0], idx)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return l.stickWrite(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return l.stickSync(err)
	}
	l.seg = f
	l.segIndex = idx
	l.segOff = segHeaderLen
	l.segFrames = 0
	l.segPayload = 0
	return nil
}

// Append adds one event to the open batch, cutting a frame when the
// batch threshold is reached. Steady-state appends touch only the
// in-memory encoder; the filesystem is involved once per frame.
func (l *Log) Append(ev platform.Event) error {
	if l.firstErr != nil {
		return l.firstErr
	}
	if err := l.enc.Write(ev); err != nil {
		return l.stickWrite(err)
	}
	l.batched++
	if l.batched >= l.opt.BatchEvents {
		return l.cut()
	}
	return nil
}

// cut frames the pending batch and writes it to the live segment.
func (l *Log) cut() error {
	if l.firstErr != nil {
		return l.firstErr
	}
	if err := l.enc.Flush(); err != nil {
		return l.stickWrite(err)
	}
	l.batched = 0
	if l.pending.Len() == 0 {
		return nil
	}
	payload := l.pending.Bytes()
	l.frameBuf = appendFrame(l.frameBuf[:0], frameData, l.enc.Count(), payload)
	if _, err := l.seg.Write(l.frameBuf); err != nil {
		return l.stickWrite(err)
	}
	l.segOff += int64(len(l.frameBuf))
	l.segFrames++
	l.segPayload += uint64(len(payload))
	l.pending.Reset()
	l.frames.Inc()
	if l.opt.FsyncEveryBatch {
		if err := l.seg.Sync(); err != nil {
			return l.stickSync(err)
		}
	}
	return nil
}

// seal writes the footer frame, fsyncs, and closes the live segment.
func (l *Log) seal() error {
	footer := footerPayload(nil, l.segFrames, l.segPayload, l.enc.Count())
	l.frameBuf = appendFrame(l.frameBuf[:0], frameFooter, l.enc.Count(), footer)
	if _, err := l.seg.Write(l.frameBuf); err != nil {
		return l.stickWrite(err)
	}
	if err := l.seg.Sync(); err != nil {
		return l.stickSync(err)
	}
	if err := l.seg.Close(); err != nil {
		return l.stickWrite(err)
	}
	l.seg = nil
	return nil
}

// Checkpoint makes everything appended so far durable and records a
// consistent cut: flush and seal the live segment, open the next one,
// land the world snapshot produced by snap atomically, then swing the
// manifest to the new (checkpoint, segment, offset) triple. Ordering
// matters — segment data is durable before the checkpoint, the
// checkpoint before the manifest — so a crash at any point leaves the
// previous manifest's triple fully intact.
func (l *Log) Checkpoint(day int, snap func(io.Writer) error) error {
	if l.firstErr != nil {
		return l.firstErr
	}
	if err := l.cut(); err != nil {
		return err
	}
	if err := l.seal(); err != nil {
		return err
	}
	if err := l.startSegment(l.segIndex + 1); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := snap(&buf); err != nil {
		return l.stickWrite(fmt.Errorf("durable: snapshot: %w", err))
	}
	name := fmt.Sprintf("ckpt-day-%03d.fsnap", day)
	if err, sync := atomicWrite(l.fs, l.dir, name, buf.Bytes()); err != nil {
		if sync {
			return l.stickSync(err)
		}
		return l.stickWrite(err)
	}
	prune := l.prevCkpt
	l.prevCkpt = l.ckptFile
	l.ckptDay, l.ckptFile = uint64(day), name
	if err := l.writeManifest(); err != nil {
		return err
	}
	l.ckpts.Inc()
	if prune != "" && prune != l.prevCkpt {
		// Best-effort hygiene: the manifest no longer references it.
		_ = l.fs.Remove(path.Join(l.dir, prune))
	}
	return nil
}

func (l *Log) writeManifest() error {
	m := Manifest{
		Version:        manifestVersion,
		Seed:           l.opt.Seed,
		Fingerprint:    l.opt.Fingerprint,
		CheckpointDay:  l.ckptDay,
		CheckpointFile: l.ckptFile,
		LiveSegment:    l.segIndex,
		LiveOffset:     uint64(l.segOff),
		Events:         l.encCount(),
	}
	if err, sync := atomicWrite(l.fs, l.dir, manifestName, m.encode()); err != nil {
		if sync {
			return l.stickSync(err)
		}
		return l.stickWrite(err)
	}
	return nil
}

func (l *Log) encCount() uint64 {
	if l.enc == nil {
		return 0
	}
	return l.enc.Count()
}

// Close flushes and seals the live segment. The manifest is left at
// the last checkpoint: a later Resume discards the sealed tail and
// re-derives it, while Reconstruct on a cleanly closed log reads the
// full stream including the tail.
func (l *Log) Close() error {
	if l.closed {
		return l.firstErr
	}
	l.closed = true
	if l.firstErr != nil {
		return l.firstErr
	}
	if err := l.cut(); err != nil {
		return err
	}
	return l.seal()
}

// Err returns the first write or fsync error the log swallowed, if
// any — wired into World.FinalizeTelemetry so a run that lost
// durability reports it at exit.
func (l *Log) Err() error { return l.firstErr }

// Events returns the number of events appended (framed or pending).
func (l *Log) Events() uint64 { return l.encCount() }

// Recovery reports what Resume found; nil on a freshly created log.
func (l *Log) Recovery() *Recovery { return l.rec }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

func (l *Log) stickWrite(err error) error {
	if l.firstErr == nil {
		l.firstErr = err
	}
	l.writeErrs.Inc()
	return err
}

func (l *Log) stickSync(err error) error {
	if l.firstErr == nil {
		l.firstErr = err
	}
	l.fsyncErrs.Inc()
	return err
}

// Resume opens an existing durable log after a crash or clean stop.
// It validates the manifest, verifies every frame the manifest claims
// durable, truncates the live segment back to the checkpoint instant
// (discarding intact-but-uncovered tail frames and any torn tail),
// deletes later segments, rebuilds the encoder's string table from the
// retained stream, and returns a log ready to Append the re-derived
// suffix. The world itself is restored by the caller from
// Recovery.Checkpoint via core.RestoreWorld.
func Resume(fsys FS, dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	m, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	if m.Seed != opt.Seed {
		return nil, &MismatchError{Field: "seed", Got: m.Seed, Want: opt.Seed}
	}
	if m.Fingerprint != opt.Fingerprint {
		return nil, &MismatchError{Field: "config fingerprint", Got: m.Fingerprint, Want: opt.Fingerprint}
	}

	l := newLog(fsys, dir, opt)
	rec := &Recovery{CheckpointDay: int(m.CheckpointDay), CheckpointFile: m.CheckpointFile, Events: m.Events}
	if m.CheckpointFile != "" {
		ckpt, err := fsys.ReadFile(path.Join(dir, m.CheckpointFile))
		if err != nil {
			return nil, &CorruptError{Path: path.Join(dir, m.CheckpointFile), Offset: -1,
				Err: fmt.Errorf("manifest names a checkpoint that cannot be read: %w", err)}
		}
		rec.Checkpoint = ckpt
	}

	// Verify the durable region and collect its stream bytes: all data
	// frames of segments 0..live-1 (each must be sealed and intact),
	// plus the live segment's frames up to the manifest offset.
	stream := bytes.NewBuffer(eventio.StreamMagic())
	for idx := uint64(0); idx < m.LiveSegment; idx++ {
		s, err := scanWholeSegment(fsys, dir, idx)
		if err != nil {
			return nil, err
		}
		if s.Torn != nil || !s.Sealed {
			return nil, &CorruptError{Path: path.Join(dir, segName(idx)), Offset: s.End,
				Err: fmt.Errorf("sealed segment damaged: %w", tornOr(s))}
		}
		for _, f := range s.Frames {
			if f.Kind == frameData {
				stream.Write(f.Payload)
			}
		}
	}

	liveName := segName(m.LiveSegment)
	livePath := path.Join(dir, liveName)
	liveData, err := fsys.ReadFile(livePath)
	if err != nil {
		return nil, &CorruptError{Path: livePath, Offset: -1, Err: err}
	}
	s, err := scanSegment(liveName, liveData)
	if err != nil {
		return nil, err
	}
	if s.Index != m.LiveSegment {
		return nil, &CorruptError{Path: livePath, Offset: int64(len(segMagic)),
			Err: fmt.Errorf("segment header index %d does not match file name", s.Index)}
	}
	// Split the live segment's frames at the manifest offset: frames
	// ending at or before it are durable; later ones are crash tail.
	var liveFrames, livePayload uint64
	cut := int64(segHeaderLen)
	for _, f := range s.Frames {
		end := f.Offset + frameHeaderLen + int64(len(f.Payload))
		if end > int64(m.LiveOffset) {
			rec.DiscardedFrames++
			if f.Kind == frameData {
				// Cumulative counts are monotonic, so the last tail
				// frame fixes the total number of dropped events.
				rec.DiscardedEvents = f.Events - m.Events
			}
			continue
		}
		if f.Kind == frameData {
			stream.Write(f.Payload)
			liveFrames++
			livePayload += uint64(len(f.Payload))
		}
		cut = end
	}
	if cut != int64(m.LiveOffset) {
		return nil, &CorruptError{Path: livePath, Offset: cut,
			Err: fmt.Errorf("no frame boundary at manifest offset %d", m.LiveOffset)}
	}
	rec.TornTail = s.Torn

	// Repair: drop everything past the checkpoint instant. The restored
	// world re-emits those events deterministically, and keeping them
	// would duplicate the suffix.
	if int64(len(liveData)) > cut {
		if err := fsys.Truncate(livePath, cut); err != nil {
			return nil, err
		}
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	for _, idx := range segs {
		if idx > m.LiveSegment {
			if err := fsys.Remove(path.Join(dir, segName(idx))); err != nil {
				return nil, err
			}
		}
	}
	// Stray tmp files from an interrupted atomic write are dead weight.
	if names, err := fsys.ReadDir(dir); err == nil {
		for _, name := range names {
			if strings.HasSuffix(name, ".tmp") {
				_ = fsys.Remove(path.Join(dir, name))
			}
		}
	}

	// Decode the retained stream to rebuild the string table — and as a
	// final cross-check that the durable region really is one valid
	// FSEV1 prefix with exactly the manifest's event count.
	r, err := eventio.NewReader(bytes.NewReader(stream.Bytes()))
	if err != nil {
		return nil, &CorruptError{Path: dir, Offset: -1, Err: err}
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			return nil, &CorruptError{Path: dir, Offset: -1,
				Err: fmt.Errorf("durable region does not decode as FSEV1: %w", err)}
		}
	}
	if r.Events() != m.Events {
		return nil, &CorruptError{Path: dir, Offset: -1,
			Err: fmt.Errorf("durable region holds %d events, manifest says %d", r.Events(), m.Events)}
	}

	seg, err := fsys.OpenAppend(livePath)
	if err != nil {
		return nil, err
	}
	l.seg = seg
	l.segIndex = m.LiveSegment
	l.segOff = cut
	l.segFrames = liveFrames
	l.segPayload = livePayload
	l.ckptDay = m.CheckpointDay
	l.ckptFile = m.CheckpointFile
	l.initWriter(r.Strings(), m.Events)
	l.rec = rec
	return l, nil
}

func scanWholeSegment(fsys FS, dir string, idx uint64) (*segScan, error) {
	name := segName(idx)
	data, err := fsys.ReadFile(path.Join(dir, name))
	if err != nil {
		return nil, &CorruptError{Path: path.Join(dir, name), Offset: -1, Err: err}
	}
	return scanSegment(name, data)
}

func tornOr(s *segScan) error {
	if s.Torn != nil {
		return s.Torn
	}
	return fmt.Errorf("segment is not sealed")
}

// Reconstruct reassembles the FSEV1 stream from every valid frame in
// dir's segments, in order, writing it to w. It returns the cumulative
// event count. A torn tail or unsealed interior segment stops the
// reassembly after the valid prefix and returns the typed error, so
// callers get both the intact bytes and the diagnosis.
func Reconstruct(fsys FS, dir string, w io.Writer) (uint64, error) {
	if _, err := w.Write(eventio.StreamMagic()); err != nil {
		return 0, err
	}
	idxs, err := listSegments(fsys, dir)
	if err != nil {
		return 0, err
	}
	var events uint64
	var next uint64
	for i, idx := range idxs {
		if idx != next {
			return events, &CorruptError{Path: path.Join(dir, segName(next)), Offset: -1,
				Err: fmt.Errorf("segment index gap")}
		}
		next = idx + 1
		s, err := scanWholeSegment(fsys, dir, idx)
		if err != nil {
			return events, err
		}
		for _, f := range s.Frames {
			if f.Kind != frameData {
				continue
			}
			if _, err := w.Write(f.Payload); err != nil {
				return events, err
			}
			events = f.Events
		}
		if s.Torn != nil {
			return events, s.Torn
		}
		if !s.Sealed && i != len(idxs)-1 {
			return events, &CorruptError{Path: path.Join(dir, segName(idx)), Offset: s.End,
				Err: fmt.Errorf("non-final segment is not sealed")}
		}
	}
	return events, nil
}
