// Package durable makes the FSEV1 event stream crash-tolerant.
//
// A durable log is a directory holding three kinds of files:
//
//   - Segment files (seg-NNNNN.fseg): CRC32C-framed, length-prefixed
//     batches of raw eventio record bytes, one segment per checkpoint
//     period. A finished segment ends with a sealed footer frame.
//   - Checkpoint files (ckpt-day-NNN.fsnap): FSNAP1 world snapshots
//     written atomically (tmp + fsync + rename + dir fsync).
//   - MANIFEST: a tiny versioned, checksummed record of the latest
//     consistent (checkpoint, live segment, byte offset) triple, also
//     written atomically.
//
// The framing invariant: the FSEV1 magic followed by the concatenated
// payloads of every data frame, in segment order, is byte-identical to
// the stream an uninterrupted eventio.Writer would have produced. One
// string table spans the whole log; Resume primes the writer with the
// table decoded from the retained prefix so later string ids match.
//
// Recovery trusts only what the manifest claims is durable: everything
// before the manifest's (segment, offset) must verify, and everything
// after it — tail frames the crash may have torn — is discarded, because
// the restored world deterministically re-emits those events (the
// resume-equivalence invariant, docs/PERSISTENCE.md). Torn tails are
// reported via TornTailError, damage inside the durable region via
// CorruptError; neither path panics or silently drops data.
//
// All I/O goes through the FS interface so tests can run hermetically on
// MemFS and crash tests on CrashFS, a deterministic power-loss model.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC32C polynomial table used for every checksum in
// the log (frames and manifest).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrExists reports that Create found an existing durable log in the
// target directory; the caller should Resume instead.
var ErrExists = errors.New("durable log already exists")

// ErrCrashed is the sticky error every CrashFS operation returns after
// the simulated power loss.
var ErrCrashed = errors.New("durable: simulated crash")

// ErrNoSpace is the injected out-of-space error a CrashFS kill point in
// ENOSPC mode returns from the fatal write.
var ErrNoSpace = errors.New("durable: injected ENOSPC")

// ErrFsyncInjected is the injected failure a CrashFS kill point in
// fsync-error mode returns from the fatal Sync.
var ErrFsyncInjected = errors.New("durable: injected fsync error")

// TornTailError reports a segment whose tail could not be validated:
// the file ends inside a frame, or the final frame's checksum does not
// match. Recovery treats a torn tail beyond the manifest offset as
// expected crash damage (the frames are discarded and re-derived);
// Reconstruct and VerifyDir surface it to the caller.
type TornTailError struct {
	Segment string // segment file name
	Frame   int    // index of the bad frame within the segment
	Offset  int64  // byte offset of the bad frame's start
	Want    uint32 // expected CRC32C (0 when the frame is incomplete)
	Got     uint32 // stored CRC32C (0 when the frame is incomplete)
	Err     error  // underlying cause (e.g. "frame extends past end")
}

func (e *TornTailError) Error() string {
	if e.Want != 0 || e.Got != 0 {
		return fmt.Sprintf("durable: torn tail in %s: frame %d at offset %d: checksum mismatch (want %08x, got %08x)",
			e.Segment, e.Frame, e.Offset, e.Want, e.Got)
	}
	return fmt.Sprintf("durable: torn tail in %s: frame %d at offset %d: %v",
		e.Segment, e.Frame, e.Offset, e.Err)
}

func (e *TornTailError) Unwrap() error { return e.Err }

// CorruptError reports damage inside the region the manifest claims is
// durable — a missing or unreadable segment, an invalid frame before
// the manifest offset, or a checkpoint file that fails to read. Unlike
// a torn tail this cannot be repaired by discarding frames; recovery
// refuses to guess and returns it to the caller.
type CorruptError struct {
	Path   string // file the damage was found in
	Offset int64  // byte offset of the damage (-1 when not byte-addressed)
	Err    error
}

func (e *CorruptError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("durable: corrupt %s at offset %d: %v", e.Path, e.Offset, e.Err)
	}
	return fmt.Sprintf("durable: corrupt %s: %v", e.Path, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// ManifestError reports a MANIFEST that is missing, truncated, fails
// its checksum, or carries an unsupported version.
type ManifestError struct {
	Path   string
	Reason string
	Err    error
}

func (e *ManifestError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("durable: manifest %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("durable: manifest %s: %s", e.Path, e.Reason)
}

func (e *ManifestError) Unwrap() error { return e.Err }

// MismatchError reports a manifest whose identity fields disagree with
// the caller's world — resuming would splice streams from different
// universes together.
type MismatchError struct {
	Field string
	Got   uint64 // value in the manifest
	Want  uint64 // value the caller expects
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("durable: %s mismatch: log has %#x, caller expects %#x", e.Field, e.Got, e.Want)
}

// mix64 is the SplitMix64 finalizer, the same pure hash internal/faults
// uses for injection verdicts: crash decisions are functions of
// (seed, op serial), never of wall time or goroutine interleaving.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
