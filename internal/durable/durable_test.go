package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"path"
	"testing"
	"time"

	"footsteps/internal/clock"
	"footsteps/internal/eventio"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/socialgraph"
	"footsteps/internal/telemetry"
)

// testEvents synthesizes a deterministic event sequence exercising the
// string table (7 distinct clients) and every field the codec carries.
func testEvents(n int) []platform.Event {
	evs := make([]platform.Event, n)
	ip := netip.MustParseAddr("203.0.113.7")
	for i := range evs {
		evs[i] = platform.Event{
			Seq:     uint64(i + 1),
			Time:    clock.Epoch.Add(time.Duration(i) * time.Minute),
			Type:    platform.ActionType(i % 6),
			Actor:   socialgraph.AccountID(i % 37),
			Target:  socialgraph.AccountID(i % 11),
			Post:    socialgraph.PostID(i % 101),
			IP:      ip,
			ASN:     netsim.ASN(i % 5),
			Client:  fmt.Sprintf("client-%d", i%7),
			Outcome: platform.Outcome(i % 5),
		}
	}
	return evs
}

// plainStream encodes evs with a bare eventio.Writer — the byte-level
// golden every durable reconstruction must match.
func plainStream(t *testing.T, evs []platform.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := eventio.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testOpts() Options {
	return Options{Seed: 42, Fingerprint: 0xfeed, BatchEvents: 16}
}

func snapBytes(day int) []byte { return []byte(fmt.Sprintf("snapshot-day-%d", day)) }

func TestLogRoundTrip(t *testing.T) {
	t.Parallel()
	fsys := NewMemFS()
	evs := testEvents(500)
	l, err := Create(fsys, "log", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	day := 0
	for i, ev := range evs {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
		if (i+1)%100 == 0 {
			day++
			d := day
			if err := l.Checkpoint(d, func(w io.Writer) error {
				_, err := w.Write(snapBytes(d))
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := l.Events(), uint64(len(evs)); got != want {
		t.Fatalf("Events() = %d, want %d", got, want)
	}

	var rec bytes.Buffer
	n, err := Reconstruct(fsys, "log", &rec)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(evs)) {
		t.Fatalf("Reconstruct counted %d events, want %d", n, len(evs))
	}
	if want := plainStream(t, evs); !bytes.Equal(rec.Bytes(), want) {
		t.Fatalf("reconstructed stream differs from plain stream (%d vs %d bytes)", rec.Len(), len(want))
	}

	infos, err := VerifyDir(fsys, "log")
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	// 5 checkpoints → segments 0..5; all sealed (Close seals the last).
	if len(infos) != 6 {
		t.Fatalf("VerifyDir saw %d segments, want 6", len(infos))
	}
	for _, info := range infos {
		if !info.Sealed {
			t.Fatalf("segment %s not sealed", info.Name)
		}
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	t.Parallel()
	fsys := NewMemFS()
	if _, err := Create(fsys, "log", testOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(fsys, "log", testOpts()); !errors.Is(err, ErrExists) {
		t.Fatalf("second Create = %v, want ErrExists", err)
	}
}

// TestResumeDiscardsTail drops a log without Close mid-way through a
// checkpoint period and verifies Resume rolls back to the checkpoint
// instant, after which re-appending the suffix reproduces the plain
// stream byte-for-byte.
func TestResumeDiscardsTail(t *testing.T) {
	t.Parallel()
	fsys := NewMemFS()
	evs := testEvents(300)
	const ckptAt = 200 // events covered by the last checkpoint

	l, err := Create(fsys, "log", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
		if i+1 == ckptAt {
			if err := l.Checkpoint(1, func(w io.Writer) error {
				_, err := w.Write(snapBytes(1))
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// No Close: the 100 tail events beyond the checkpoint sit in
	// unsealed frames (and partly in the encoder buffer, now lost).

	r, err := Resume(fsys, "log", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	rec := r.Recovery()
	if rec == nil {
		t.Fatal("Resume returned no Recovery")
	}
	if rec.CheckpointDay != 1 || !bytes.Equal(rec.Checkpoint, snapBytes(1)) {
		t.Fatalf("recovered checkpoint day %d, bytes %q", rec.CheckpointDay, rec.Checkpoint)
	}
	if rec.Events != ckptAt {
		t.Fatalf("recovered %d durable events, want %d", rec.Events, ckptAt)
	}
	if rec.DiscardedFrames == 0 {
		t.Fatal("expected discarded tail frames")
	}
	// Replay the suffix the restored world would re-derive.
	for _, ev := range evs[ckptAt:] {
		if err := r.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := Reconstruct(fsys, "log", &out); err != nil {
		t.Fatal(err)
	}
	if want := plainStream(t, evs); !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("resumed stream differs from plain stream (%d vs %d bytes)", out.Len(), len(want))
	}
}

// TestResumeGenesis crashes before the first checkpoint: the genesis
// manifest must bring Resume back to an empty log.
func TestResumeGenesis(t *testing.T) {
	t.Parallel()
	fsys := NewMemFS()
	evs := testEvents(60)
	l, err := Create(fsys, "log", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	// dropped without checkpoint or Close

	r, err := Resume(fsys, "log", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	rec := r.Recovery()
	if rec.CheckpointFile != "" || rec.Events != 0 {
		t.Fatalf("genesis resume got checkpoint %q, events %d", rec.CheckpointFile, rec.Events)
	}
	for _, ev := range evs {
		if err := r.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := Reconstruct(fsys, "log", &out); err != nil {
		t.Fatal(err)
	}
	if want := plainStream(t, evs); !bytes.Equal(out.Bytes(), want) {
		t.Fatal("genesis-resumed stream differs from plain stream")
	}
}

func TestResumeTornTail(t *testing.T) {
	t.Parallel()
	fsys := NewMemFS()
	evs := testEvents(120)
	l, err := Create(fsys, "log", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
		if i+1 == 64 {
			if err := l.Checkpoint(1, func(w io.Writer) error {
				_, err := w.Write(snapBytes(1))
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.cut(); err != nil { // land tail frames, then tear the last
		t.Fatal(err)
	}
	live := path.Join("log", segName(1))
	size := fsys.Size(live)
	if size <= segHeaderLen {
		t.Fatalf("live segment unexpectedly empty (%d bytes)", size)
	}
	if err := fsys.Truncate(live, size-3); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(fsys, "log", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Recovery().TornTail == nil {
		t.Fatal("expected TornTail in recovery report")
	}
	for _, ev := range evs[64:] {
		if err := r.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := Reconstruct(fsys, "log", &out); err != nil {
		t.Fatal(err)
	}
	if want := plainStream(t, evs); !bytes.Equal(out.Bytes(), want) {
		t.Fatal("torn-tail resume differs from plain stream")
	}
}

func TestResumeTypedErrors(t *testing.T) {
	t.Parallel()
	build := func(t *testing.T) *MemFS {
		fsys := NewMemFS()
		l, err := Create(fsys, "log", testOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i, ev := range testEvents(100) {
			if err := l.Append(ev); err != nil {
				t.Fatal(err)
			}
			if i+1 == 50 {
				if err := l.Checkpoint(1, func(w io.Writer) error {
					_, err := w.Write(snapBytes(1))
					return err
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return fsys
	}

	t.Run("missing manifest", func(t *testing.T) {
		t.Parallel()
		fsys := build(t)
		if err := fsys.Remove("log/MANIFEST"); err != nil {
			t.Fatal(err)
		}
		var merr *ManifestError
		if _, err := Resume(fsys, "log", testOpts()); !errors.As(err, &merr) {
			t.Fatalf("Resume = %v, want ManifestError", err)
		}
	})
	t.Run("corrupt manifest", func(t *testing.T) {
		t.Parallel()
		fsys := build(t)
		if err := fsys.Corrupt("log/MANIFEST", 9, 0x40); err != nil {
			t.Fatal(err)
		}
		var merr *ManifestError
		if _, err := Resume(fsys, "log", testOpts()); !errors.As(err, &merr) {
			t.Fatalf("Resume = %v, want ManifestError", err)
		}
	})
	t.Run("seed mismatch", func(t *testing.T) {
		t.Parallel()
		fsys := build(t)
		opts := testOpts()
		opts.Seed++
		var merr *MismatchError
		if _, err := Resume(fsys, "log", opts); !errors.As(err, &merr) {
			t.Fatalf("Resume = %v, want MismatchError", err)
		}
	})
	t.Run("corrupt sealed segment", func(t *testing.T) {
		t.Parallel()
		fsys := build(t)
		// Flip a payload byte inside sealed segment 0 — damage the
		// manifest claims is durable.
		if err := fsys.Corrupt(path.Join("log", segName(0)), segHeaderLen+frameHeaderLen+4, 0x01); err != nil {
			t.Fatal(err)
		}
		var cerr *CorruptError
		if _, err := Resume(fsys, "log", testOpts()); !errors.As(err, &cerr) {
			t.Fatalf("Resume = %v, want CorruptError", err)
		}
	})
	t.Run("missing checkpoint", func(t *testing.T) {
		t.Parallel()
		fsys := build(t)
		if err := fsys.Remove("log/ckpt-day-001.fsnap"); err != nil {
			t.Fatal(err)
		}
		var cerr *CorruptError
		if _, err := Resume(fsys, "log", testOpts()); !errors.As(err, &cerr) {
			t.Fatalf("Resume = %v, want CorruptError", err)
		}
	})
}

func TestVerifyDirReportsFirstBadFrame(t *testing.T) {
	t.Parallel()
	fsys := NewMemFS()
	l, err := Create(fsys, "log", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range testEvents(64) {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	name := path.Join("log", segName(0))
	off := int64(segHeaderLen + frameHeaderLen + 7)
	if err := fsys.Corrupt(name, off, 0x80); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyDir(fsys, "log")
	var torn *TornTailError
	if !errors.As(err, &torn) {
		t.Fatalf("VerifyDir = %v, want TornTailError", err)
	}
	if torn.Segment != segName(0) || torn.Offset != segHeaderLen || torn.Want == torn.Got {
		t.Fatalf("unexpected diagnosis: %+v", torn)
	}
}

func TestLogStickyErrorAndCounters(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	opts := testOpts()
	opts.Telemetry = reg
	opts.BatchEvents = 8
	// Probe how many ops a short run issues, then kill inside it.
	probe := NewCrashFS(CrashPlan{Seed: 7})
	l, err := Create(probe, "log", opts)
	if err != nil {
		t.Fatal(err)
	}
	evs := testEvents(64)
	for _, ev := range evs {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(1, func(w io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()

	cfs := NewCrashFS(CrashPlan{Seed: 7, KillAt: total / 2})
	l, err = Create(cfs, "log", opts)
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for _, ev := range evs {
		if err := l.Append(ev); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		firstErr = l.Checkpoint(1, func(w io.Writer) error { return nil })
	}
	if firstErr == nil {
		t.Fatal("kill point did not surface an error")
	}
	if l.Err() == nil {
		t.Fatal("sticky Err() is nil after failure")
	}
	// Later operations keep returning the sticky error, no panic.
	if err := l.Append(evs[0]); err == nil {
		t.Fatal("Append after crash succeeded")
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close after crash returned nil")
	}
	snap := reg.Snapshot()
	if snap.Counters["durable.write_errors"]+snap.Counters["durable.fsync_errors"] == 0 {
		t.Fatal("no durable.write_errors/fsync_errors counted")
	}
}

// TestCrashFSDeterminism: the same plan over the same op sequence must
// leave a byte-identical durable image.
func TestCrashFSDeterminism(t *testing.T) {
	t.Parallel()
	run := func() *MemFS {
		cfs := NewCrashFS(CrashPlan{Seed: 11, KillAt: 37})
		l, err := Create(cfs, "log", testOpts())
		if err != nil {
			return cfs.Image()
		}
		for i, ev := range testEvents(256) {
			if l.Append(ev) != nil {
				break
			}
			if (i+1)%64 == 0 {
				if l.Checkpoint((i+1)/64, func(w io.Writer) error {
					_, err := w.Write(snapBytes((i + 1) / 64))
					return err
				}) != nil {
					break
				}
			}
		}
		_ = l.Close()
		return cfs.Image()
	}
	a, b := run(), run()
	names, err := a.ReadDir("log")
	if err != nil {
		t.Fatal(err)
	}
	bnames, err := b.ReadDir("log")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(bnames) {
		t.Fatalf("different file sets: %v vs %v", names, bnames)
	}
	for _, name := range names {
		da, _ := a.ReadFile(path.Join("log", name))
		db, _ := b.ReadFile(path.Join("log", name))
		if !bytes.Equal(da, db) {
			t.Fatalf("file %s differs between identical crash runs", name)
		}
	}
}

func TestCrashModesAreTyped(t *testing.T) {
	t.Parallel()
	// Scan kill points until each failure mode has been observed at
	// least once; the verdict is a pure hash so this is deterministic.
	seen := map[CrashMode]bool{}
	for kill := uint64(1); kill < 60 && len(seen) < crashModes; kill++ {
		plan := CrashPlan{Seed: 3, KillAt: kill}
		seen[plan.Mode()] = true
	}
	for mode := CrashMode(0); mode < crashModes; mode++ {
		if !seen[mode] {
			t.Fatalf("mode %v never scheduled in 60 kill points", mode)
		}
	}
}
