package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path"
)

// Manifest is the log's single source of truth for what is durable:
// the newest checkpoint and the exact (segment, byte offset, event
// count) the stream had reached at that checkpoint's instant. It is
// only ever replaced atomically (tmp + fsync + rename + dir fsync), so
// a reader sees either the old consistent triple or the new one, never
// a torn mix.
//
// Layout: "FMAN1\n" | body | CRC32C(body) (4 bytes LE), where body is
// uvarint version, seed, fingerprint, checkpoint day, a length-prefixed
// checkpoint file name (empty = genesis: no checkpoint yet, replay
// restarts the world from scratch), live segment index, live byte
// offset, and cumulative durable events.
type Manifest struct {
	Version        uint64
	Seed           uint64
	Fingerprint    uint64
	CheckpointDay  uint64
	CheckpointFile string // "" until the first checkpoint lands
	LiveSegment    uint64
	LiveOffset     uint64 // bytes of the live segment covered by the checkpoint
	Events         uint64 // events durable at the checkpoint instant
}

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
	maxManifestName = 1 << 10
)

var manifestMagic = []byte("FMAN1\n")

func (m *Manifest) encode() []byte {
	buf := append([]byte(nil), manifestMagic...)
	body := len(buf)
	buf = binary.AppendUvarint(buf, m.Version)
	buf = binary.AppendUvarint(buf, m.Seed)
	buf = binary.AppendUvarint(buf, m.Fingerprint)
	buf = binary.AppendUvarint(buf, m.CheckpointDay)
	buf = binary.AppendUvarint(buf, uint64(len(m.CheckpointFile)))
	buf = append(buf, m.CheckpointFile...)
	buf = binary.AppendUvarint(buf, m.LiveSegment)
	buf = binary.AppendUvarint(buf, m.LiveOffset)
	buf = binary.AppendUvarint(buf, m.Events)
	crc := crc32.Checksum(buf[body:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// decodeManifest parses and checksum-verifies a manifest read from
// name. Every failure is a *ManifestError.
func decodeManifest(name string, data []byte) (*Manifest, error) {
	bad := func(reason string, err error) (*Manifest, error) {
		return nil, &ManifestError{Path: name, Reason: reason, Err: err}
	}
	if len(data) < len(manifestMagic)+4 {
		return bad(fmt.Sprintf("truncated (%d bytes)", len(data)), nil)
	}
	for i, c := range manifestMagic {
		if data[i] != c {
			return bad("bad magic", nil)
		}
	}
	body := data[len(manifestMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return bad(fmt.Sprintf("checksum mismatch (want %08x, got %08x)", want, got), nil)
	}
	var m Manifest
	fields := []*uint64{&m.Version, &m.Seed, &m.Fingerprint, &m.CheckpointDay}
	for _, f := range fields {
		v, n := binary.Uvarint(body)
		if n <= 0 {
			return bad("truncated body", nil)
		}
		*f = v
		body = body[n:]
	}
	nameLen, n := binary.Uvarint(body)
	if n <= 0 || nameLen > maxManifestName || uint64(len(body)-n) < nameLen {
		return bad("bad checkpoint file name", nil)
	}
	m.CheckpointFile = string(body[n : n+int(nameLen)])
	body = body[n+int(nameLen):]
	for _, f := range []*uint64{&m.LiveSegment, &m.LiveOffset, &m.Events} {
		v, n := binary.Uvarint(body)
		if n <= 0 {
			return bad("truncated body", nil)
		}
		*f = v
		body = body[n:]
	}
	if len(body) != 0 {
		return bad(fmt.Sprintf("%d trailing bytes", len(body)), nil)
	}
	if m.Version != manifestVersion {
		return bad(fmt.Sprintf("unsupported version %d (want %d)", m.Version, manifestVersion), nil)
	}
	return &m, nil
}

// readManifest loads and decodes dir's MANIFEST.
func readManifest(fsys FS, dir string) (*Manifest, error) {
	name := path.Join(dir, manifestName)
	data, err := fsys.ReadFile(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, &ManifestError{Path: name, Reason: "missing", Err: err}
		}
		return nil, &ManifestError{Path: name, Reason: "unreadable", Err: err}
	}
	return decodeManifest(name, data)
}

// atomicWrite lands data at dir/name with full crash safety: write a
// sibling tmp file, fsync it, rename over the target, fsync the
// directory. After a crash the target holds either the old bytes or
// the new — never a mix. syncErr distinguishes fsync failures for the
// caller's telemetry.
func atomicWrite(fsys FS, dir, name string, data []byte) (err error, syncErr bool) {
	tmp := path.Join(dir, name+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err, false
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err, false
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err, true
	}
	if err := f.Close(); err != nil {
		return err, false
	}
	if err := fsys.Rename(tmp, path.Join(dir, name)); err != nil {
		return err, false
	}
	if err := fsys.SyncDir(dir); err != nil {
		return err, true
	}
	return nil, false
}
