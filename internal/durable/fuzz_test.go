package durable

import (
	"errors"
	"testing"
)

// buildSealedSegment assembles a valid sealed segment from payloads —
// the well-formed baseline the fuzz seeds mutate.
func buildSealedSegment(idx uint64, payloads [][]byte) []byte {
	buf := segHeader(nil, idx)
	var events, total uint64
	for _, p := range payloads {
		events += 1 + uint64(len(p))%3
		buf = appendFrame(buf, frameData, events, p)
		total += uint64(len(p))
	}
	footer := footerPayload(nil, uint64(len(payloads)), total, events)
	return appendFrame(buf, frameFooter, events, footer)
}

// FuzzSegmentScan hammers the frame scanner with mutated segments. It
// must never panic, and whatever valid prefix it reports must be
// self-consistent: contiguous frames starting at the header, End on the
// last frame boundary, and a re-scan of the prefix reproducing the
// same frames with no tail damage.
func FuzzSegmentScan(f *testing.F) {
	valid := buildSealedSegment(0, [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("y")})
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)-4]...)) // truncated footer
	torn := append([]byte(nil), valid...)
	torn[len(torn)-6] ^= 0x20 // bit flip in the footer payload
	f.Add(torn)
	flip := append([]byte(nil), valid...)
	flip[segHeaderLen+frameHeaderLen+2] ^= 0x01 // bit flip in the first data payload
	f.Add(flip)
	f.Add(append([]byte(nil), valid[:segHeaderLen+7]...)) // torn mid-frame-header
	f.Add(append([]byte(nil), valid[:segHeaderLen]...))   // empty, header only
	f.Add([]byte("FSEG1\n"))                              // truncated header
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := scanSegment("seg-00000.fseg", data)
		if err != nil {
			var cerr *CorruptError
			if !errors.As(err, &cerr) {
				t.Fatalf("untyped scan error: %v", err)
			}
			return
		}
		off := int64(segHeaderLen)
		for _, fr := range s.Frames {
			if fr.Offset != off {
				t.Fatalf("frame at offset %d, expected %d", fr.Offset, off)
			}
			off += frameHeaderLen + int64(len(fr.Payload))
		}
		if s.End != off || s.End > int64(len(data)) {
			t.Fatalf("End %d inconsistent with frames (want %d, len %d)", s.End, off, len(data))
		}
		if s.Sealed && s.Torn != nil {
			t.Fatal("segment reported both sealed and torn")
		}
		if s.Torn == nil && !s.Sealed && s.End != int64(len(data)) {
			t.Fatalf("clean unsealed scan stopped early at %d of %d", s.End, len(data))
		}
		// The valid prefix must re-scan identically and cleanly.
		s2, err := scanSegment("seg-00000.fseg", data[:s.End])
		if err != nil {
			t.Fatalf("re-scan of valid prefix failed: %v", err)
		}
		if s2.Torn != nil || len(s2.Frames) != len(s.Frames) || s2.Events != s.Events {
			t.Fatalf("re-scan disagrees: %d/%d frames, torn=%v", len(s2.Frames), len(s.Frames), s2.Torn)
		}
	})
}

// FuzzManifest checks that the manifest decoder never panics, fails
// only with typed errors, and that accepted manifests survive a
// decode→encode→decode fixed point. Values rather than bytes are
// compared: uvarint padding is tolerated on input but never produced.
func FuzzManifest(f *testing.F) {
	m := Manifest{Version: 1, Seed: 7, Fingerprint: 0xabc, CheckpointDay: 3,
		CheckpointFile: "ckpt-day-003.fsnap", LiveSegment: 3, LiveOffset: 14, Events: 999}
	valid := m.encode()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)-2]...)) // truncated checksum
	flip := append([]byte(nil), valid...)
	flip[8] ^= 0x10 // bit flip in the body
	f.Add(flip)
	f.Add((&Manifest{Version: 1}).encode()) // genesis
	f.Add([]byte("FMAN1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest("MANIFEST", data)
		if err != nil {
			var merr *ManifestError
			if !errors.As(err, &merr) {
				t.Fatalf("untyped manifest error: %v", err)
			}
			return
		}
		again, err := decodeManifest("MANIFEST", m.encode())
		if err != nil {
			t.Fatalf("re-decode of re-encoded manifest failed: %v", err)
		}
		if *again != *m {
			t.Fatalf("manifest not a fixed point: %+v vs %+v", *again, *m)
		}
	})
}
