package durable

import "testing"

// Alloc budgets for the durable write path, in the spirit of the
// eventio and platform budgets (docs/PERFORMANCE.md): appending an
// event to the open batch is pure in-memory encoding and must not
// allocate in steady state. Frame cuts and checkpoints are rare
// (once per BatchEvents / once per day) and are excluded by a batch
// threshold larger than the measured run.
const allocBudgetAppend = 0

func TestAllocBudgetDurableWrite(t *testing.T) {
	fsys := NewMemFS()
	l, err := Create(fsys, "log", Options{Seed: 1, Fingerprint: 1, BatchEvents: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-grow the pending buffer so the encoder's bufio flush lands in
	// existing capacity, and warm the string table and scratch.
	l.pending.Grow(1 << 20)
	evs := testEvents(64)
	for _, ev := range evs {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		_ = l.Append(evs[i%len(evs)])
		i++
	})
	if avg > allocBudgetAppend {
		t.Fatalf("durable.Log.Append allocates %.1f per op, budget %d", avg, allocBudgetAppend)
	}
}
