// Package rng provides deterministic, stream-splittable pseudo-randomness
// for the simulator.
//
// Every stochastic component in the study draws from its own RNG stream,
// derived from a parent seed and a string label. Splitting streams by label
// rather than sharing a single source keeps results bit-reproducible even
// when components are added, removed, or reordered: adding a new consumer
// never perturbs the draws seen by existing ones.
//
// The generator is xoshiro256**, seeded through SplitMix64, matching the
// construction recommended by its authors. It is not cryptographically
// secure and must never be used for security purposes; the simulator only
// needs statistical quality and speed.
package rng

import (
	"hash/fnv"
	"math"
)

// RNG is a single xoshiro256** stream. It is NOT safe for concurrent use;
// give each goroutine its own stream via Split.
type RNG struct {
	s       [4]uint64
	lineage uint64 // seed material, fixed at construction, used by Split
}

// New returns a stream seeded from seed. Two RNGs built from the same seed
// produce identical sequences.
func New(seed uint64) *RNG {
	r := &RNG{lineage: seed}
	// SplitMix64 expansion of the seed into 256 bits of state, per the
	// xoshiro reference implementation.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro's state must not be all zero; SplitMix64 of any seed cannot
	// produce that, so no further check is needed.
	return r
}

// Split derives an independent child stream identified by label. The child
// depends only on the parent's seed material and the label, not on how many
// values the parent has produced, so consumers can split in any order.
func (r *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	// Mix the label hash with the parent's construction-time seed so the
	// child is a pure function of (parent seed, label), unaffected by how
	// many values the parent has already produced.
	return New(h.Sum64() ^ (r.lineage * 0x9e3779b97f4a7c15))
}

// Fork derives an independent child stream identified by an integer id —
// the per-actor analogue of Split. The child is a pure function of
// (parent seed, id): it does not depend on how many values the parent has
// produced, on how many siblings were forked, or on the order forks
// happen in. This is the contract parallel stepping relies on: every
// actor draws from its own Fork(actorID) stream, so partitioning actors
// into any number of shards, run on any number of workers, can never
// change the numbers any actor sees.
func (r *RNG) Fork(id uint64) *RNG {
	// SplitMix64 finalizer on the id keeps adjacent ids far apart in seed
	// space, then mix with the parent's construction-time seed material.
	z := id + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return New(z ^ (r.lineage * 0xd1342543de82ef95))
}

// State is the complete serializable state of a stream: the xoshiro256**
// state words plus the lineage that Split and Fork derive children from.
// Capturing State and later applying it with SetState resumes the stream
// exactly — the restored RNG produces the same future draws and the same
// children as the original would have.
type State struct {
	S       [4]uint64
	Lineage uint64
}

// State returns a snapshot of the stream's current state.
func (r *RNG) State() State { return State{S: r.s, Lineage: r.lineage} }

// FromState builds a stream positioned exactly at a captured state.
func FromState(st State) *RNG { return &RNG{s: st.S, lineage: st.Lineage} }

// SetState overwrites the stream with a previously captured snapshot.
func (r *RNG) SetState(st State) {
	r.s = st.S
	r.lineage = st.Lineage
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling to remove modulo bias.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard-normal variate (mean 0, stddev 1) using the
// Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal (mu, sigma). Degree distributions in online social
// networks are well approximated by log-normals.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For large means it
// uses a normal approximation, which is adequate for workload generation.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	// Knuth's method.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in selection
// order. If k >= n it returns a permutation of all n indices.
func (r *RNG) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
