package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	t.Parallel()
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependentOfDrawOrder(t *testing.T) {
	t.Parallel()
	parent1 := New(7)
	parent2 := New(7)
	parent2.Uint64() // consume a draw; Split must not care
	c1 := parent1.Split("child")
	c2 := parent2.Split("child")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split result depends on parent draw position")
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	t.Parallel()
	p := New(7)
	a, b := p.Split("a"), p.Split("b")
	if a.Uint64() == b.Uint64() {
		t.Fatal("different labels produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	t.Parallel()
	r := New(4)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	t.Parallel()
	// Chi-square-ish sanity check over 7 buckets (non power of two).
	r := New(5)
	const n, buckets = 70000, 7
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.06 {
			t.Fatalf("bucket %d count %d deviates from expected %.0f", b, c, want)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	t.Parallel()
	r := New(6)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %.4f", got)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	if r.Bool(-0.5) {
		t.Fatal("Bool(-0.5) returned true")
	}
	if !r.Bool(1.5) {
		t.Fatal("Bool(1.5) returned false")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	t.Parallel()
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	t.Parallel()
	for _, mean := range []float64{0.5, 3, 12, 80} {
		r := New(uint64(mean * 100))
		const n = 50000
		total := 0
		for i := 0; i < n; i++ {
			total += r.Poisson(mean)
		}
		got := float64(total) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) sample mean %.3f", mean, got)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
	if New(1).Poisson(-3) != 0 {
		t.Fatal("Poisson(-3) != 0")
	}
}

func TestLogNormalPositive(t *testing.T) {
	t.Parallel()
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(2, 1.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	t.Parallel()
	r := New(10)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %.4f", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := New(uint64(n)).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	t.Parallel()
	check := func(seed uint16, nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 5) // sometimes k > n
		s := New(uint64(seed)).Sample(n, k)
		wantLen := k
		if k >= n {
			wantLen = n
		}
		if len(s) != wantLen {
			return false
		}
		seen := make(map[int]bool, len(s))
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	t.Parallel()
	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle altered multiset: sum %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Float64()
	}
}
