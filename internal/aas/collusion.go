package aas

import (
	"fmt"
	"time"

	"footsteps/internal/platform"
	"footsteps/internal/rng"
)

// CollusionService is a collusion-network AAS (§3.2): it launders actions
// across its own customer base. Every enrolled account is used as a source
// of outbound actions toward other customers, and receives inbound actions
// in turn. Customers buy their way out of being a source, buy bulk likes
// for a single post, or subscribe to likes-per-photo tiers (Table 3).
type CollusionService struct {
	*base

	// freeRequestsPerDay is the mean number of free service requests an
	// active customer makes per day.
	freeRequestsPerDay float64

	// Like-block detection: the service notices follow blocks immediately
	// but needs DetectionLag to build like-block detection (§6.3).
	firstLikeBlock time.Time
	likeAdaptOn    bool

	salesStopped bool
	nextAcct     int
	automationOn bool

	sourceCache   []*Customer
	sourceCacheAt time.Time

	// seenMark/seenEpoch implement deliver's duplicate-source filter
	// without a per-request map: a pool index is "seen" in the current
	// request iff seenMark[idx] == seenEpoch. Bumping the epoch resets
	// every mark in O(1); on the (astronomically rare) uint32 wrap the
	// slice is cleared so stale marks can never alias a new epoch.
	seenMark  []uint32
	seenEpoch uint32

	// Delivered tallies inbound actions delivered, by action type.
	Delivered map[platform.ActionType]int
}

// NewCollusionService builds the engine for spec. ipPool sizes the
// service's address pool (Followersgratis concentrates on very few).
func NewCollusionService(spec *Spec, plat *platform.Platform, sched Scheduler, r *rng.RNG, ipPool int) *CollusionService {
	if spec.Technique != TechniqueCollusion {
		panic(fmt.Sprintf("aas: %s is not a collusion service", spec.Name))
	}
	return &CollusionService{
		base:               newBase(spec, plat, sched, r, ipPool),
		freeRequestsPerDay: 1.0,
		Delivered:          make(map[platform.ActionType]int),
	}
}

// Spec returns the service's static description.
func (s *CollusionService) Spec() *Spec { return s.spec }

// StopSales lists every paid product as "out of stock" (the epilogue's
// Hublaagram endgame): existing subscriptions lapse and no new payments
// are accepted. Free laundering continues.
func (s *CollusionService) StopSales() { s.salesStopped = true }

// SalesStopped reports whether paid products are still available.
func (s *CollusionService) SalesStopped() bool { return s.salesStopped }

// EnrollFree enrolls credentials for free service — and, immediately, as a
// collusion source ("soon after a customer provides their Instagram
// credentials the service will begin to use the account", §3.3.2).
func (s *CollusionService) EnrollFree(username, password string, wants ...Offering) (*Customer, error) {
	c, err := s.Enroll(username, password, wants)
	if err != nil {
		return nil, err
	}
	c.EngagedUntil = c.EnrolledAt.Add(24 * time.Hour) // extended by requests
	return c, nil
}

// PurchaseNoOutbound charges the one-time fee that removes the account
// from the source pool for life.
func (s *CollusionService) PurchaseNoOutbound(c *Customer) error {
	if s.salesStopped {
		return fmt.Errorf("aas %s: out of stock", s.spec.Name)
	}
	c.Product = PaidNoOutbound
	s.pay(c, s.spec.Collusion.NoOutboundFee)
	return nil
}

// PurchaseOneTime buys bulk likes applied to the customer's latest post as
// fast as possible.
func (s *CollusionService) PurchaseOneTime(c *Customer, pkg int) error {
	if s.salesStopped {
		return fmt.Errorf("aas %s: out of stock", s.spec.Name)
	}
	p := s.spec.Collusion.OneTime[pkg]
	c.Product = PaidOneTime
	s.pay(c, p.Fee)
	if pid, ok := s.plat.LatestPost(c.Account); ok {
		s.deliverLikes(c, pid, p.Likes, false)
	}
	return nil
}

// PurchaseTier subscribes the customer to a likes-per-photo monthly tier.
// The fee recurs monthly while the customer stays active.
func (s *CollusionService) PurchaseTier(c *Customer, tier int) error {
	if s.salesStopped {
		return fmt.Errorf("aas %s: out of stock", s.spec.Name)
	}
	c.Product = PaidMonthlyTier
	c.Tier = tier
	s.pay(c, s.spec.Collusion.MonthlyTiers[tier].MonthlyFee)
	c.PaidThrough = s.plat.Now().Add(30 * 24 * time.Hour)
	return nil
}

// RequestFree asks for one free service quantum (likes onto the latest
// post, or follows). The request is refused inside the per-customer rate
// gap. It returns how many actions were delivered.
func (s *CollusionService) RequestFree(c *Customer, o Offering) (int, error) {
	gap := s.spec.Collusion.FreeRequestGap
	now := s.plat.Now()
	if !c.lastFreeRequest.IsZero() && now.Sub(c.lastFreeRequest) < gap {
		return 0, fmt.Errorf("aas %s: free request inside %v cooldown", s.spec.Name, gap)
	}
	c.lastFreeRequest = now
	if c.EngagedUntil.Before(now.Add(24 * time.Hour)) {
		c.EngagedUntil = now.Add(24 * time.Hour)
	}
	s.AdImpressions += s.spec.Collusion.AdsPerRequest

	switch o {
	case OfferLike:
		pid, ok := s.plat.LatestPost(c.Account)
		if !ok {
			return 0, fmt.Errorf("aas %s: customer has no posts to like", s.spec.Name)
		}
		return s.deliverLikes(c, pid, s.spec.Collusion.FreeLikeQuantum, true), nil
	case OfferFollow:
		return s.deliverFollows(c, s.spec.Collusion.FreeFollowQuantum), nil
	case OfferComment:
		pid, ok := s.plat.LatestPost(c.Account)
		if !ok {
			return 0, fmt.Errorf("aas %s: customer has no posts", s.spec.Name)
		}
		return s.deliverComments(c, pid, 5), nil
	default:
		return 0, fmt.Errorf("aas %s: offering %v not available free", s.spec.Name, o)
	}
}

// sources returns the current source pool: active customers that are not
// opted out. The pool is cached per simulated instant because every free
// request consults it; recipients and newly churned sources are filtered at
// use time.
func (s *CollusionService) sources() []*Customer {
	now := s.plat.Now()
	if s.sourceCacheAt.Equal(now) && s.sourceCache != nil {
		return s.sourceCache
	}
	out := s.sourceCache[:0]
	for _, c := range s.customers {
		if c.Churned || c.Product == PaidNoOutbound {
			continue
		}
		if !s.activeAt(c, now) {
			continue
		}
		out = append(out, c)
	}
	s.sourceCache = out
	s.sourceCacheAt = now
	return out
}

func (s *CollusionService) activeAt(c *Customer, now time.Time) bool {
	if s.stopped || c.Churned {
		return false
	}
	if c.Managed && c.LongTermIntent {
		return true
	}
	return !now.After(c.EngagedUntil) || !now.After(c.PaidThrough)
}

// DeliverTier delivers one tier quantum of likes onto the given post —
// the fulfilment path for a paid subscriber's new photo. Exposed for
// studies that drive unmanaged (externally created) tier customers.
func (s *CollusionService) DeliverTier(c *Customer, pid platform.PostID, tier LikeTier) int {
	want := tier.MinLikes
	if tier.MaxLikes > tier.MinLikes {
		want += s.rng.Intn(tier.MaxLikes - tier.MinLikes + 1)
	}
	return s.deliverLikes(c, pid, want, false)
}

// deliverLikes makes n distinct sources like pid. free deliveries respect
// the per-photo hourly cap; paid deliveries deliberately exceed it (that
// speed is the product). Returns likes delivered.
func (s *CollusionService) deliverLikes(c *Customer, pid platform.PostID, n int, free bool) int {
	if free && s.spec.Collusion.FreeLikeHourlyCap > 0 && n > s.spec.Collusion.FreeLikeHourlyCap {
		n = s.spec.Collusion.FreeLikeHourlyCap
	}
	return s.deliver(c, n, platform.Request{Action: platform.ActionLike, Post: pid})
}

func (s *CollusionService) deliverFollows(c *Customer, n int) int {
	return s.deliver(c, n, platform.Request{Action: platform.ActionFollow, Target: c.Account})
}

func (s *CollusionService) deliverComments(c *Customer, pid platform.PostID, n int) int {
	return s.deliver(c, n, platform.Request{Action: platform.ActionComment, Post: pid, Text: "awesome!"})
}

// deliver makes n distinct sources submit req (the recipient-fixed
// action: the target post/account is the same for every source, only
// the acting session differs). req.Session stays unset — the resilience
// layer fills it per attempt from each source's live session.
func (s *CollusionService) deliver(c *Customer, n int, req platform.Request) int {
	t := req.Action
	pool := s.sources()
	if len(pool) == 0 || n <= 0 {
		return 0
	}
	// Draw distinct random sources by probing; bounded attempts keep a
	// request O(n) even when most of the pool is throttled or the pool is
	// smaller than the quantum. The duplicate filter is the epoch-marked
	// slice (see seenMark) — same skip/attempt semantics as a per-request
	// set, zero allocations in steady state.
	s.seenEpoch++
	if s.seenEpoch == 0 {
		clear(s.seenMark)
		s.seenEpoch = 1
	}
	if len(s.seenMark) < len(pool) {
		s.seenMark = make([]uint32, len(pool))
	}
	mark, epoch := s.seenMark, s.seenEpoch
	delivered := 0
	for attempts := 0; delivered < n && attempts < 4*n+64; attempts++ {
		idx := s.rng.Intn(len(pool))
		if mark[idx] == epoch {
			continue
		}
		mark[idx] = epoch
		src := pool[idx]
		if src.Account == c.Account || src.Churned {
			continue
		}
		ad := s.adaptFor(src, t)
		if s.throttled(src, t, ad) {
			continue
		}
		if s.shedByBreaker(src, t) {
			continue
		}
		// Source actions route through the shared resilience layer:
		// outcome counting, breaker feedback, transparent re-login on
		// revocation (churning the source only on a real password
		// change), and backoff retries on injected unavailability.
		// Late retry successes count on the source's dashboard but not
		// in delivered/Delivered — the request's quantum is judged at
		// request time.
		err := s.execute(src, req)
		switch err {
		case nil:
			ad.todayCount++
			delivered++
			s.Delivered[t]++
		case platform.ErrBlocked:
			s.onBlock(src, t, ad)
		}
	}
	return delivered
}

// throttled reports whether the service's own adaptation currently keeps
// this source quiet for the given action type.
func (s *CollusionService) throttled(src *Customer, t platform.ActionType, ad *adaptiveRate) bool {
	now := s.plat.Now()
	switch t {
	case platform.ActionFollow:
		// Follow-block detection is immediate, as for every AAS.
		return !ad.ready(now) || (ad.learnedCap > 0 && float64(ad.todayCount) >= ad.target(1e18))
	case platform.ActionLike:
		if !s.likeAdaptOn {
			return false
		}
		return !ad.ready(now) || (ad.learnedCap > 0 && float64(ad.todayCount) >= ad.target(1e18))
	default:
		return false
	}
}

// onBlock feeds the service's block detectors.
func (s *CollusionService) onBlock(src *Customer, t platform.ActionType, ad *adaptiveRate) {
	switch t {
	case platform.ActionFollow:
		ad.onBlocked(s.plat.Now(), probeInterval)
	case platform.ActionLike:
		if s.firstLikeBlock.IsZero() {
			s.firstLikeBlock = s.plat.Now()
		}
		// Until the detector ships, blocks go unnoticed.
		if s.likeAdaptOn {
			ad.onBlocked(s.plat.Now(), probeInterval)
		}
	}
}

// Run schedules the collusion network's lifecycle for days: hourly free
// request processing and a daily lifecycle tick. Equivalent to
// StartAutomation + StartLifecycle.
func (s *CollusionService) Run(days int, scale float64) {
	s.StartAutomation(days)
	s.StartLifecycle(days, scale)
}

// StartAutomation schedules the hourly free-request driver. Call once.
func (s *CollusionService) StartAutomation(days int) {
	if s.automationOn {
		panic("aas: StartAutomation called twice for " + s.spec.Name)
	}
	s.automationOn = true
	for h := 0; h < days*24; h++ {
		s.sched.After(time.Duration(h)*time.Hour+23*time.Minute, s.hourTick)
	}
}

// StartLifecycle seeds the initial cohort and schedules daily dynamics.
func (s *CollusionService) StartLifecycle(days int, scale float64) {
	s.seedInitialCohort(scale)
	s.sched.EveryDay(40*time.Minute, days, func(int) { s.dailyTick(scale) })
}

func (s *CollusionService) seedInitialCohort(scale float64) {
	n := int(float64(s.spec.Customers.InitialLongTerm)*scale + 0.5)
	for i := 0; i < n; i++ {
		c := s.spawnCustomer()
		if c == nil {
			continue
		}
		c.LongTermIntent = true
		if c.Product != PaidNone {
			c.FirstPaidBeforeStudy = true
		}
	}
}

func (s *CollusionService) spawnCustomer() *Customer {
	s.nextAcct++
	username := fmt.Sprintf("cust-%s-%d", s.spec.Name, s.nextAcct)
	password := "pw-" + username
	country := s.pickCountry()
	_, err := s.plat.RegisterAccount(username, password, platform.Profile{
		PhotoCount: 2 + s.rng.Intn(10), HasProfilePic: true, HasBio: true, HasName: true,
	}, country)
	if err != nil {
		return nil
	}
	homeIP := s.net.Allocate(s.homeCountryASN(country))
	own, err := s.plat.Login(username, password, platform.ClientInfo{
		IP: homeIP, Fingerprint: "mobile-official", API: platform.APIPrivate,
	})
	if err != nil {
		return nil
	}
	c, err := s.Enroll(username, password, nil)
	if err != nil {
		return nil
	}
	c.Country = country
	c.Managed = true
	c.ownSession = own
	c.LongTermIntent = s.rng.Bool(s.spec.Customers.LongTermConversion)
	if c.LongTermIntent {
		c.EngagedUntil = c.EnrolledAt.Add(5 * 24 * time.Hour)
	} else {
		short := time.Duration(s.rng.ExpFloat64() * s.spec.Customers.ShortTermMeanDays * 24 * float64(time.Hour))
		if short < 6*time.Hour {
			short = 6 * time.Hour
		}
		if short > 4*24*time.Hour {
			short = 4 * 24 * time.Hour
		}
		c.EngagedUntil = c.EnrolledAt.Add(short)
	}
	s.assignProduct(c)
	return c
}

// assignProduct draws the customer's purchase per the Table 9 fractions.
func (s *CollusionService) assignProduct(c *Customer) {
	if s.salesStopped {
		return
	}
	pf := s.spec.Customers.PayingFractions
	x := s.rng.Float64()
	switch {
	case x < pf.NoOutbound:
		s.PurchaseNoOutbound(c)
	case x < pf.NoOutbound+pf.OneTime:
		if len(s.spec.Collusion.OneTime) > 0 {
			s.PurchaseOneTime(c, s.rng.Intn(len(s.spec.Collusion.OneTime)))
		}
	default:
		x -= pf.NoOutbound + pf.OneTime
		for i, f := range pf.Tiers {
			if x < f {
				s.PurchaseTier(c, i)
				return
			}
			x -= f
		}
	}
}

// dailyTick runs the daily lifecycle. Detector shipping and arrivals stay
// serial; per-customer decisions (adaptation rollover, churn, home
// activity) are planned in parallel from each customer's own stream, and
// the platform-touching outcomes — logins, posts, tier renewals and
// deliveries — apply serially in shard order.
func (s *CollusionService) dailyTick(scale float64) {
	if s.stopped {
		return
	}
	now := s.plat.Now()

	// Like-block detector ships DetectionLag after the first block.
	if !s.likeAdaptOn && !s.firstLikeBlock.IsZero() &&
		now.Sub(s.firstLikeBlock) >= s.spec.DetectionLag {
		s.likeAdaptOn = true
	}

	for i, n := 0, s.rng.Poisson(s.spec.Customers.DailyArrivals*scale); i < n; i++ {
		s.spawnCustomer()
	}

	alive := s.filterCustomers()
	for _, c := range s.customers {
		if !c.Churned {
			alive = append(alive, c)
		}
	}
	s.keepFilter(alive)
	runSharded(s.steps, s.lifeSC(), alive, func(c *Customer, emit func(lifeOp)) {
		// Sources' daily adaptation windows roll for every enrolled
		// account, managed or not (honeypots are sources too); the state
		// is customer-local, so rolling it during planning is safe.
		for _, ad := range c.adapt {
			ad.endDay()
		}
		if !c.Managed {
			return
		}
		op := lifeOp{c: c}
		if c.LongTermIntent && c.rng.Bool(s.spec.Customers.DailyChurn) {
			op.churn = true
			emit(op)
			return
		}
		if !s.activeAt(c, now) {
			return
		}
		// Home login and posting.
		if c.ownSession != nil && c.rng.Bool(0.8) {
			op.login = true
			op.post = c.rng.Bool(0.55)
		}
		if op.login {
			emit(op)
		}
	}, func(op lifeOp) {
		c := op.c
		if op.churn {
			c.Churned = true
			return
		}
		// Keep the fresh home session so a session-store flap only
		// interrupts home activity until the next daily login.
		if sess, err := s.plat.Login(c.Username, c.Password, c.ownSession.Client()); err == nil {
			c.ownSession = sess
		}
		posted := false
		if op.post {
			if c.ownSession.Do(platform.Request{Action: platform.ActionPost}).Err == nil {
				posted = true
			}
		}
		// Tier subscribers: deliver the tier quantum onto each new photo,
		// faster than the free cap allows (that is what they pay for).
		if c.Product == PaidMonthlyTier && posted {
			if now.After(c.PaidThrough) {
				if s.salesStopped {
					c.Product = PaidNone
				} else {
					s.pay(c, s.spec.Collusion.MonthlyTiers[c.Tier].MonthlyFee)
					c.PaidThrough = now.Add(30 * 24 * time.Hour)
				}
			}
			if c.Product == PaidMonthlyTier {
				if pid, ok := s.plat.LatestPost(c.Account); ok {
					s.DeliverTier(c, pid, s.spec.Collusion.MonthlyTiers[c.Tier])
				}
			}
		}
	})
}

// freeReq is one planned free-service request.
type freeReq struct {
	c *Customer
	o Offering
}

// hourTick processes the hour's free requests: request counts and the
// offering mix are planned in parallel from per-customer streams, then
// each request is fulfilled serially (source selection draws from the
// service stream during apply, where it is single-threaded).
func (s *CollusionService) hourTick() {
	if s.stopped {
		return
	}
	now := s.plat.Now()
	eligible := s.filterCustomers()
	for _, c := range s.customers {
		if !c.Managed || !s.activeAt(c, now) || c.Product == PaidMonthlyTier || c.Product == PaidOneTime {
			continue
		}
		eligible = append(eligible, c)
	}
	s.keepFilter(eligible)
	runSharded(s.steps, s.freeSC(), eligible, func(c *Customer, emit func(freeReq)) {
		n := c.rng.Poisson(s.freeRequestsPerDay / 24 * diurnal(now))
		for i := 0; i < n; i++ {
			// Request-type mix: like requests deliver twice the quantum of
			// follow requests, so the per-request probabilities are set to
			// make the delivered-action mix land on Table 11 (likes 63%,
			// follows 35%, comments ~2%).
			o := OfferLike
			r := c.rng.Float64()
			switch {
			case r < 0.44 && s.spec.Offers(OfferLike):
			case r < 0.97 && s.spec.Offers(OfferFollow):
				o = OfferFollow
			case s.spec.Offers(OfferComment):
				o = OfferComment
			}
			emit(freeReq{c: c, o: o})
		}
	}, func(req freeReq) {
		s.RequestFree(req.c, req.o)
	})
}

// ActiveCustomers returns the number of accounts currently engaged.
func (s *CollusionService) ActiveCustomers() int {
	now := s.plat.Now()
	n := 0
	for _, c := range s.customers {
		if s.activeAt(c, now) {
			n++
		}
	}
	return n
}

// LikeAdaptationActive reports whether the like-block detector has shipped.
func (s *CollusionService) LikeAdaptationActive() bool { return s.likeAdaptOn }
