package aas

import (
	"time"

	"footsteps/internal/behavior"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
)

// Well-known ASNs for the services' automation traffic and their customers'
// home networks. Registered onto the study's netsim registry by
// RegisterNetworks.
const (
	ASNInstaStarDC  netsim.ASN = 1001 // Insta* datacenter, USA (Table 7)
	ASNBoostgramDC  netsim.ASN = 1002 // Boostgram datacenter, USA
	ASNHublaagramGB netsim.ASN = 1003 // Hublaagram, GBR
	ASNHublaagramUS netsim.ASN = 1004 // Hublaagram, USA
	ASNFgratisDC    netsim.ASN = 1005 // Followersgratis single small ASN

	// Residential eyeball networks for customer and organic logins.
	ASNResUSA netsim.ASN = 2001
	ASNResRUS netsim.ASN = 2002
	ASNResIDN netsim.ASN = 2003
	ASNResBRA netsim.ASN = 2004
	ASNResIND netsim.ASN = 2005
	ASNResTUR netsim.ASN = 2006
	ASNResGBR netsim.ASN = 2007
	ASNResPHL netsim.ASN = 2008
	ASNResDEU netsim.ASN = 2009
	ASNResCAN netsim.ASN = 2010

	// Proxy ASNs used by services evading blocks (§6.4 epilogue).
	ASNProxyBase netsim.ASN = 3001 // 3001..3001+proxyASNCount-1
)

// proxyASNCount is how many distinct ASNs the evasion proxy network spans.
const proxyASNCount = 24

// RegisterNetworks registers every ASN the study uses onto reg and returns
// the proxy ASNs. Call once per world.
func RegisterNetworks(reg *netsim.Registry) []netsim.ASN {
	reg.Register(ASNInstaStarDC, "insta*-dc", "USA", netsim.KindHosting)
	reg.Register(ASNBoostgramDC, "boostgram-dc", "USA", netsim.KindHosting)
	reg.Register(ASNHublaagramGB, "hublaagram-gb", "GBR", netsim.KindHosting)
	reg.Register(ASNHublaagramUS, "hublaagram-us", "USA", netsim.KindHosting)
	reg.Register(ASNFgratisDC, "followersgratis-dc", "IDN", netsim.KindHosting)

	reg.Register(ASNResUSA, "res-usa", "USA", netsim.KindResidential)
	reg.Register(ASNResRUS, "res-rus", "RUS", netsim.KindResidential)
	reg.Register(ASNResIDN, "res-idn", "IDN", netsim.KindResidential)
	reg.Register(ASNResBRA, "res-bra", "BRA", netsim.KindResidential)
	reg.Register(ASNResIND, "res-ind", "IND", netsim.KindResidential)
	reg.Register(ASNResTUR, "res-tur", "TUR", netsim.KindResidential)
	reg.Register(ASNResGBR, "res-gbr", "GBR", netsim.KindResidential)
	reg.Register(ASNResPHL, "res-phl", "PHL", netsim.KindResidential)
	reg.Register(ASNResDEU, "res-deu", "DEU", netsim.KindResidential)
	reg.Register(ASNResCAN, "res-can", "CAN", netsim.KindResidential)

	proxies := make([]netsim.ASN, proxyASNCount)
	countries := []string{"USA", "DEU", "BRA", "IND", "TUR", "GBR", "RUS", "IDN"}
	for i := range proxies {
		asn := ASNProxyBase + netsim.ASN(i)
		reg.Register(asn, "proxy", countries[i%len(countries)], netsim.KindCommercial)
		proxies[i] = asn
	}
	return proxies
}

// Service names.
const (
	NameInstalex        = "Instalex"
	NameInstazood       = "Instazood"
	NameBoostgram       = "Boostgram"
	NameHublaagram      = "Hublaagram"
	NameFollowersgratis = "Followersgratis"
)

// Catalog returns the five studied services with Tables 1–4 as data and
// the calibration constants from §4–§5. The returned specs are fresh
// copies; callers may tweak them per experiment.
func Catalog() []*Spec {
	return []*Spec{
		instalexSpec(),
		instazoodSpec(),
		boostgramSpec(),
		hublaagramSpec(),
		followersgratisSpec(),
	}
}

// SpecByName returns the catalog spec with the given name, or nil.
func SpecByName(name string) *Spec {
	for _, s := range Catalog() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func instalexSpec() *Spec {
	return &Spec{
		Name:      NameInstalex,
		Technique: TechniqueReciprocity,
		// Table 1: like, follow, comment, unfollow (no post).
		Offerings: []Offering{OfferLike, OfferFollow, OfferComment, OfferUnfollow},
		// Table 2: 7-day trial, 7-day minimum, $3.15.
		Reciprocity:      ReciprocityPricing{TrialDays: 7, MinPaidDays: 7, CostPerPeriod: 3.15},
		OperatingCountry: "RUS", // Table 7: operates from Russia, ASN in USA
		ASNs:             []netsim.ASN{ASNInstaStarDC},
		Fingerprint:      "mobile-spoof-instastar", // franchises share infrastructure: indistinguishable signals (§5, "Insta*")
		// Table 5 empty-account rows; the like→follow 1.4% anomaly is a
		// property of Instalex's curated pool. Degree medians from
		// Figures 3/4 (Insta*: out 554.5, in 384).
		TargetPool: behavior.PoolSpec{
			LikeToLike: 0.021, LikeToFollow: 0.014, FollowToFollow: 0.128,
			OutDegMedian: 554.5, InDegMedian: 384,
		},
		// Table 11 Insta* mix: likes 30.8%, follows 38.6%, comments 5.6%,
		// unfollows 25.0% — budget ≈ 260 actions/day.
		DailyActions: map[platform.ActionType]float64{
			platform.ActionLike:     80,
			platform.ActionFollow:   100,
			platform.ActionComment:  15,
			platform.ActionUnfollow: 65,
		},
		UnfollowAfter: 0.65,
		Customers: CustomerDynamics{
			// Insta* splits across the two franchises; each takes half of
			// the §5.1 totals (121,661 customers, 34% long-term, >10%
			// growth, 21% conversion).
			InitialLongTerm:    12000,
			DailyArrivals:      540,
			LongTermConversion: 0.21,
			DailyChurn:         0.0065,
			ShortTermMeanDays:  2.5,
			Countries: []behavior.CountryWeight{
				{Country: "RUS", Weight: 0.26},
				{Country: "USA", Weight: 0.09},
				{Country: "BRA", Weight: 0.08},
				{Country: "IND", Weight: 0.07},
				{Country: "TUR", Weight: 0.06},
				{Country: "OTHER", Weight: 0.44},
			},
		},
	}
}

func instazoodSpec() *Spec {
	s := instalexSpec()
	s.Name = NameInstazood
	// Table 1: Instazood additionally offers posts.
	s.Offerings = []Offering{OfferLike, OfferFollow, OfferComment, OfferPost, OfferUnfollow}
	// Table 2: advertises 3 days but delivers 7 (§4.2); 1-day minimum, $0.34.
	s.Reciprocity = ReciprocityPricing{TrialDays: 3, DeliveredTrialDays: 7, MinPaidDays: 1, CostPerPeriod: 0.34}
	// Same parent infrastructure: Instazood's traffic is indistinguishable
	// from Instalex's, which is why the paper merges them as "Insta*".
	// Table 5: Instazood's pool lacks the like→follow quirk.
	s.TargetPool.LikeToFollow = 0.002
	s.TargetPool.FollowToFollow = 0.130
	return s
}

func boostgramSpec() *Spec {
	return &Spec{
		Name:      NameBoostgram,
		Technique: TechniqueReciprocity,
		// Table 1: like, follow, post, unfollow (no comment).
		Offerings: []Offering{OfferLike, OfferFollow, OfferPost, OfferUnfollow},
		// Table 2: 3-day trial, 30-day minimum, $99.
		Reciprocity:      ReciprocityPricing{TrialDays: 3, MinPaidDays: 30, CostPerPeriod: 99},
		OperatingCountry: "USA",
		ASNs:             []netsim.ASN{ASNBoostgramDC},
		Fingerprint:      "mobile-spoof-boostgram",
		// Table 5: Boostgram(E) like→like 1.5%, follow→follow 10.3%;
		// Figures 3/4: out 684, in 498.
		TargetPool: behavior.PoolSpec{
			LikeToLike: 0.015, LikeToFollow: 0.001, FollowToFollow: 0.103,
			OutDegMedian: 684, InDegMedian: 498,
		},
		// Table 11 Boostgram mix: likes 64.0%, follows 19.3%, unfollows
		// 16.7% — budget ≈ 420 actions/day.
		DailyActions: map[platform.ActionType]float64{
			platform.ActionLike:     270,
			platform.ActionFollow:   80,
			platform.ActionUnfollow: 70,
		},
		UnfollowAfter: 0.80,
		Customers: CustomerDynamics{
			// §5.1: 11,959 customers, 33% long-term, slight shrink, 12%
			// conversion (lowest: most expensive service).
			InitialLongTerm:    2900,
			DailyArrivals:      101,
			LongTermConversion: 0.12,
			DailyChurn:         0.0048,
			ShortTermMeanDays:  2.5,
			Countries: []behavior.CountryWeight{
				{Country: "USA", Weight: 0.34},
				{Country: "GBR", Weight: 0.09},
				{Country: "CAN", Weight: 0.08},
				{Country: "BRA", Weight: 0.07},
				{Country: "DEU", Weight: 0.06},
				{Country: "OTHER", Weight: 0.36},
			},
		},
	}
}

func hublaagramSpec() *Spec {
	return &Spec{
		Name:      NameHublaagram,
		Technique: TechniqueCollusion,
		// Table 1: like, follow, comment.
		Offerings:        []Offering{OfferLike, OfferFollow, OfferComment},
		OperatingCountry: "IDN", // operates from Indonesia; ASNs in GBR+USA
		ASNs:             []netsim.ASN{ASNHublaagramGB, ASNHublaagramUS},
		Fingerprint:      "mobile-spoof-hublaagram",
		Collusion: CollusionPricing{
			NoOutboundFee: 15, // Table 3: $15 for life
			OneTime: []OneTimeLikePackage{
				{Likes: 2000, Fee: 10},
				{Likes: 5000, Fee: 20},
				{Likes: 10000, Fee: 25},
			},
			MonthlyTiers: []LikeTier{
				{MinLikes: 250, MaxLikes: 500, MonthlyFee: 20},
				{MinLikes: 500, MaxLikes: 1000, MonthlyFee: 30},
				{MinLikes: 1000, MaxLikes: 2000, MonthlyFee: 40},
				{MinLikes: 2000, MaxLikes: 4000, MonthlyFee: 70},
			},
			FreeLikeQuantum:   80, // §5.2: ≈80 likes per free request
			FreeFollowQuantum: 40, // ≈40 follows per free request
			FreeRequestGap:    30 * time.Minute,
			FreeLikeHourlyCap: 160, // §5.2: free cap 160 likes/hour/photo
			AdsPerRequest:     2,   // 1–4 pop-unders per request
		},
		// Table 11 Hublaagram mix: likes 63.0%, follows 35.3%, comments 1.7%.
		DailyActions: map[platform.ActionType]float64{
			platform.ActionLike:    110,
			platform.ActionFollow:  62,
			platform.ActionComment: 3,
		},
		Customers: CustomerDynamics{
			// §5.1: 1,008,127 customers, 50% long-term, slight shrink,
			// 37% first-month conversion.
			InitialLongTerm:    260000,
			DailyArrivals:      8300,
			LongTermConversion: 0.325,
			DailyChurn:         0.0104,
			ShortTermMeanDays:  2.0,
			Countries: []behavior.CountryWeight{
				{Country: "IDN", Weight: 0.44},
				{Country: "IND", Weight: 0.10},
				{Country: "USA", Weight: 0.08},
				{Country: "BRA", Weight: 0.06},
				{Country: "PHL", Weight: 0.06},
				{Country: "OTHER", Weight: 0.26},
			},
			// Table 9 account counts over the ~1.01M active base.
			PayingFractions: CollusionPaying{
				NoOutbound: 24420.0 / 1008127,
				OneTime:    182.0 / 1008127,
				Tiers: []float64{
					11249.0 / 1008127,
					18009.0 / 1008127,
					2488.0 / 1008127,
					155.0 / 1008127,
				},
			},
		},
		DetectionLag: 21 * 24 * time.Hour, // §6.3: reacted ~3 weeks in
	}
}

func followersgratisSpec() *Spec {
	return &Spec{
		Name:      NameFollowersgratis,
		Technique: TechniqueCollusion,
		// Table 1: like, follow only.
		Offerings:        []Offering{OfferLike, OfferFollow},
		OperatingCountry: "IDN",
		ASNs:             []netsim.ASN{ASNFgratisDC},
		Fingerprint:      "mobile-spoof-fgratis",
		Collusion: CollusionPricing{
			// Table 4 price points, normalized into the same structures:
			// follows sold one-time; likes sold one-time.
			OneTime: []OneTimeLikePackage{
				{Likes: 500, Fee: 2.10},
				{Likes: 500, Fee: 5.25},
			},
			FreeFollowQuantum: 25,
			FreeRequestGap:    time.Hour,
			FreeLikeHourlyCap: 160,
			AdsPerRequest:     1,
		},
		DailyActions: map[platform.ActionType]float64{
			platform.ActionLike:   30,
			platform.ActionFollow: 20,
		},
		Customers: CustomerDynamics{
			// §5: "already well-policed ... very limited impact"; its
			// single small ASN caps abuse volume, so its base stays small.
			InitialLongTerm:    4000,
			DailyArrivals:      120,
			LongTermConversion: 0.20,
			DailyChurn:         0.01,
			ShortTermMeanDays:  1.5,
			Countries: []behavior.CountryWeight{
				{Country: "IDN", Weight: 0.70},
				{Country: "OTHER", Weight: 0.30},
			},
		},
	}
}
