package aas

import (
	"footsteps/internal/platform"
	"footsteps/internal/step"
)

// plannedOp is one intended platform action for a customer, produced by
// the hourly planning phase and executed during the serial apply.
type plannedOp struct {
	c      *Customer
	action platform.ActionType
	target platform.AccountID
	post   platform.PostID
}

// lifeOp is one customer's planned daily lifecycle outcome: renewal,
// churn, and the human's own home login/post. Fields a service does not
// model simply stay false.
type lifeOp struct {
	c     *Customer
	renew bool
	churn bool
	login bool
	post  bool
}

// shardChunk is how many customers one planning shard covers. It is a
// fixed constant — never derived from the worker count — because the
// shard decomposition participates in the (shardID, seq) merge order
// that makes the post-merge event stream a pure function of the seed.
const shardChunk = 16

// tickScratch is an engine's reusable planning scratch for one intent
// type: the chunk bounds and the per-shard intent buffers runSharded
// fills every tick. A service holds one tickScratch per (tick, intent
// type) pair and hands it back each tick, so steady-state planning
// allocates nothing. The zero value is ready to use; a nil *tickScratch
// restores fresh per-tick allocations (the reuse-off arm of the simtest
// pooling property test).
type tickScratch[T any] struct {
	chunks [][2]int
	bufs   step.Buffers[T]
}

// runSharded partitions actors into fixed-size shards and runs one
// intent/apply cycle over them on the service's pool: plan is invoked
// for every actor (concurrently across shards, in order within a
// shard) and must only read shared state and draw from the actor's own
// forked stream; apply receives the emitted intents serially in
// (shard, emission) order and is the only place shared state mutates.
//
// sc, when non-nil, supplies reused chunk/intent scratch; reuse is
// invisible to plan and apply (see step.RunInto).
func runSharded[T any](pool *step.Pool, sc *tickScratch[T], actors []*Customer, plan func(c *Customer, emit func(T)), apply func(T)) {
	var bounds [][2]int
	var bufs *step.Buffers[T]
	if sc != nil {
		sc.chunks = step.ChunksInto(sc.chunks, len(actors), shardChunk)
		bounds = sc.chunks
		bufs = &sc.bufs
	} else {
		bounds = step.Chunks(len(actors), shardChunk)
	}
	step.RunInto(pool, bufs, len(bounds), func(si int, emit func(T)) {
		for _, c := range actors[bounds[si][0]:bounds[si][1]] {
			plan(c, emit)
		}
	}, apply)
}
