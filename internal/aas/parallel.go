package aas

import (
	"footsteps/internal/platform"
	"footsteps/internal/step"
)

// plannedOp is one intended platform action for a customer, produced by
// the hourly planning phase and executed during the serial apply.
type plannedOp struct {
	c      *Customer
	action platform.ActionType
	target platform.AccountID
	post   platform.PostID
}

// lifeOp is one customer's planned daily lifecycle outcome: renewal,
// churn, and the human's own home login/post. Fields a service does not
// model simply stay false.
type lifeOp struct {
	c     *Customer
	renew bool
	churn bool
	login bool
	post  bool
}

// shardChunk is how many customers one planning shard covers. It is a
// fixed constant — never derived from the worker count — because the
// shard decomposition participates in the (shardID, seq) merge order
// that makes the post-merge event stream a pure function of the seed.
const shardChunk = 16

// runSharded partitions actors into fixed-size shards and runs one
// intent/apply cycle over them on the service's pool: plan is invoked
// for every actor (concurrently across shards, in order within a
// shard) and must only read shared state and draw from the actor's own
// forked stream; apply receives the emitted intents serially in
// (shard, emission) order and is the only place shared state mutates.
func runSharded[T any](pool *step.Pool, actors []*Customer, plan func(c *Customer, emit func(T)), apply func(T)) {
	bounds := step.Chunks(len(actors), shardChunk)
	step.Run(pool, len(bounds), func(si int, emit func(T)) {
		for _, c := range actors[bounds[si][0]:bounds[si][1]] {
			plan(c, emit)
		}
	}, apply)
}
