package aas

import (
	"sort"
	"time"

	"footsteps/internal/platform"
	"footsteps/internal/rng"
)

// Snapshot/restore support (see internal/persistence). Customer order is
// preserved verbatim — enrollment order drives Fork lineage and every
// tick's iteration — while map-backed state (adaptation, totals,
// delivered tallies) is serialized sorted so the encoded form is
// canonical. Both operations run on the quiescent single timeline.

// BaseState is the mutable state shared by both engine kinds.
type BaseState struct {
	RNG           rng.State
	Customers     []CustomerState // enrollment order
	Revenue       float64
	AdImpressions int
	Stopped       bool
	// Retries are the scheduled-but-unfired backoff retries, in
	// scheduling order.
	Retries []RetryState
}

// CustomerState is one enrolled customer, flattened.
type CustomerState struct {
	Account              platform.AccountID
	Username             string
	Password             string
	Country              string
	Managed              bool
	Wants                []Offering
	Hashtags             []string
	EnrolledAt           time.Time
	LongTermIntent       bool
	EngagedUntil         time.Time
	Churned              bool
	PaidThrough          time.Time
	Payments             []Payment
	FirstPaidBeforeStudy bool
	Product              PaidProduct
	Tier                 int
	Session              platform.SessionState
	OwnSession           platform.SessionState
	Adapt                []AdaptState // sorted by action
	RecentFollows        []UnfollowState
	UnfollowAfter        bool
	LastFreeRequest      time.Time
	Totals               []ActionCount // sorted by action
	RNG                  rng.State
	RelRNG               rng.State
	Breaker              BreakerState
}

// AdaptState is one action type's block-detection state.
type AdaptState struct {
	Action       platform.ActionType
	LearnedCap   float64
	TodayCount   int
	TodayBlocked bool
	BlockedUntil time.Time
	ProbeWait    int
}

// UnfollowState is one queued auto-unfollow.
type UnfollowState struct {
	Target platform.AccountID
	Due    time.Time
}

// ActionCount is one action-type tally.
type ActionCount struct {
	Action platform.ActionType
	N      int
}

// BreakerState is a customer's circuit-breaker position.
type BreakerState struct {
	Fails     int
	Tripped   bool
	OpenUntil time.Time
}

// RetryState is one pending backoff retry.
type RetryState struct {
	Customer platform.AccountID
	Action   platform.ActionType
	Target   platform.AccountID
	Post     platform.PostID
	Text     string
	Tags     []string
	Attempt  int
	Due      time.Time
}

// ReciprocityState is the complete mutable state of a ReciprocityService.
type ReciprocityState struct {
	Base         BaseState
	Pool         []platform.AccountID
	AdaptTypes   []platform.ActionType // sorted
	NextAcct     int
	AutomationOn bool
}

// CollusionState is the complete mutable state of a CollusionService.
type CollusionState struct {
	Base               BaseState
	FreeRequestsPerDay float64
	FirstLikeBlock     time.Time
	LikeAdaptOn        bool
	SalesStopped       bool
	NextAcct           int
	AutomationOn       bool
	Delivered          []ActionCount // sorted by action
}

func snapshotCustomer(c *Customer) CustomerState {
	cs := CustomerState{
		Account:              c.Account,
		Username:             c.Username,
		Password:             c.Password,
		Country:              c.Country,
		Managed:              c.Managed,
		Wants:                append([]Offering(nil), c.Wants...),
		Hashtags:             append([]string(nil), c.Hashtags...),
		EnrolledAt:           c.EnrolledAt,
		LongTermIntent:       c.LongTermIntent,
		EngagedUntil:         c.EngagedUntil,
		Churned:              c.Churned,
		PaidThrough:          c.PaidThrough,
		Payments:             append([]Payment(nil), c.Payments...),
		FirstPaidBeforeStudy: c.FirstPaidBeforeStudy,
		Product:              c.Product,
		Tier:                 c.Tier,
		Session:              platform.CaptureSession(c.session),
		OwnSession:           platform.CaptureSession(c.ownSession),
		UnfollowAfter:        c.unfollowAfter,
		LastFreeRequest:      c.lastFreeRequest,
		RNG:                  c.rng.State(),
		RelRNG:               c.relRNG.State(),
		Breaker:              BreakerState{Fails: c.br.fails, Tripped: c.br.tripped, OpenUntil: c.br.openUntil},
	}
	for t, a := range c.adapt {
		cs.Adapt = append(cs.Adapt, AdaptState{
			Action: t, LearnedCap: a.learnedCap, TodayCount: a.todayCount,
			TodayBlocked: a.todayBlocked, BlockedUntil: a.blockedUntil, ProbeWait: a.probeWait,
		})
	}
	sort.Slice(cs.Adapt, func(i, j int) bool { return cs.Adapt[i].Action < cs.Adapt[j].Action })
	for _, u := range c.recentFollows {
		cs.RecentFollows = append(cs.RecentFollows, UnfollowState{Target: u.target, Due: u.due})
	}
	for t, n := range c.totals {
		cs.Totals = append(cs.Totals, ActionCount{Action: t, N: n})
	}
	sort.Slice(cs.Totals, func(i, j int) bool { return cs.Totals[i].Action < cs.Totals[j].Action })
	return cs
}

func restoreCustomer(p *platform.Platform, cs *CustomerState) *Customer {
	c := &Customer{
		Account:              cs.Account,
		Username:             cs.Username,
		Password:             cs.Password,
		Country:              cs.Country,
		Managed:              cs.Managed,
		Wants:                append([]Offering(nil), cs.Wants...),
		Hashtags:             append([]string(nil), cs.Hashtags...),
		EnrolledAt:           cs.EnrolledAt,
		LongTermIntent:       cs.LongTermIntent,
		EngagedUntil:         cs.EngagedUntil,
		Churned:              cs.Churned,
		PaidThrough:          cs.PaidThrough,
		Payments:             append([]Payment(nil), cs.Payments...),
		FirstPaidBeforeStudy: cs.FirstPaidBeforeStudy,
		Product:              cs.Product,
		Tier:                 cs.Tier,
		session:              p.RestoreSession(cs.Session),
		ownSession:           p.RestoreSession(cs.OwnSession),
		adapt:                make(map[platform.ActionType]*adaptiveRate, len(cs.Adapt)),
		unfollowAfter:        cs.UnfollowAfter,
		lastFreeRequest:      cs.LastFreeRequest,
		rng:                  rng.FromState(cs.RNG),
		relRNG:               rng.FromState(cs.RelRNG),
		br:                   breaker{fails: cs.Breaker.Fails, tripped: cs.Breaker.Tripped, openUntil: cs.Breaker.OpenUntil},
	}
	for _, a := range cs.Adapt {
		c.adapt[a.Action] = &adaptiveRate{
			learnedCap: a.LearnedCap, todayCount: a.TodayCount,
			todayBlocked: a.TodayBlocked, blockedUntil: a.BlockedUntil, probeWait: a.ProbeWait,
		}
	}
	for _, u := range cs.RecentFollows {
		c.recentFollows = append(c.recentFollows, pendingUnfollow{target: u.Target, due: u.Due})
	}
	if len(cs.Totals) > 0 {
		c.totals = make(map[platform.ActionType]int, len(cs.Totals))
		for _, ac := range cs.Totals {
			c.totals[ac.Action] = ac.N
		}
	}
	return c
}

func (b *base) snapshotBase() BaseState {
	st := BaseState{
		RNG:           b.rng.State(),
		Revenue:       b.Revenue,
		AdImpressions: b.AdImpressions,
		Stopped:       b.stopped,
	}
	for _, c := range b.customers {
		st.Customers = append(st.Customers, snapshotCustomer(c))
	}
	for _, e := range b.retries {
		if e.done {
			continue
		}
		st.Retries = append(st.Retries, RetryState{
			Customer: e.c.Account, Action: e.req.Action, Target: e.req.Target,
			Post: e.req.Post, Text: e.req.Text, Tags: append([]string(nil), e.req.Tags...),
			Attempt: e.attempt, Due: e.due,
		})
	}
	return st
}

// restoreBase overwrites the shared engine state. Pending retries are NOT
// re-registered here — the caller does that via RestoreRetries once the
// scheduler sits at the snapshot instant.
func (b *base) restoreBase(st *BaseState) {
	b.rng.SetState(st.RNG)
	b.Revenue = st.Revenue
	b.AdImpressions = st.AdImpressions
	b.stopped = st.Stopped
	b.customers = b.customers[:0]
	clear(b.byID)
	for i := range st.Customers {
		c := restoreCustomer(b.plat, &st.Customers[i])
		b.customers = append(b.customers, c)
		b.byID[c.Account] = c
	}
}

// RestoreRetries re-registers pending backoff retries from a snapshot, in
// their original scheduling order. The customers must already be restored.
func (b *base) RestoreRetries(sts []RetryState) {
	b.retries = b.retries[:0]
	now := b.plat.Now()
	for _, rs := range sts {
		c, ok := b.byID[rs.Customer]
		if !ok {
			continue
		}
		e := &pendingRetry{
			c: c,
			req: platform.Request{
				Action: rs.Action, Target: rs.Target, Post: rs.Post,
				Text: rs.Text, Tags: rs.Tags,
			},
			attempt: rs.Attempt,
			due:     rs.Due,
		}
		b.retries = append(b.retries, e)
		// After(due-now) is At(due); the Scheduler interface only has After.
		b.sched.After(e.due.Sub(now), func() { b.fireRetry(e) })
	}
}

// SnapshotState captures the service's complete mutable state.
func (s *ReciprocityService) SnapshotState() *ReciprocityState {
	st := &ReciprocityState{
		Base:         s.snapshotBase(),
		Pool:         append([]platform.AccountID(nil), s.pool...),
		NextAcct:     s.nextAcct,
		AutomationOn: s.automationOn,
	}
	for t, on := range s.adaptTypes {
		if on {
			st.AdaptTypes = append(st.AdaptTypes, t)
		}
	}
	sort.Slice(st.AdaptTypes, func(i, j int) bool { return st.AdaptTypes[i] < st.AdaptTypes[j] })
	return st
}

// RestoreState overwrites the service's mutable state with a snapshot.
// Pending retries are re-registered separately via RestoreRetries.
func (s *ReciprocityService) RestoreState(st *ReciprocityState) {
	s.restoreBase(&st.Base)
	s.pool = append(s.pool[:0], st.Pool...)
	s.adaptTypes = make(map[platform.ActionType]bool, len(st.AdaptTypes))
	for _, t := range st.AdaptTypes {
		s.adaptTypes[t] = true
	}
	s.nextAcct = st.NextAcct
	s.automationOn = st.AutomationOn
	// The tick applier is per-tick scratch, fully reset at each tick's top.
	s.applier = opApplier{}
}

// SnapshotState captures the service's complete mutable state.
func (s *CollusionService) SnapshotState() *CollusionState {
	st := &CollusionState{
		Base:               s.snapshotBase(),
		FreeRequestsPerDay: s.freeRequestsPerDay,
		FirstLikeBlock:     s.firstLikeBlock,
		LikeAdaptOn:        s.likeAdaptOn,
		SalesStopped:       s.salesStopped,
		NextAcct:           s.nextAcct,
		AutomationOn:       s.automationOn,
	}
	for t, n := range s.Delivered {
		st.Delivered = append(st.Delivered, ActionCount{Action: t, N: n})
	}
	sort.Slice(st.Delivered, func(i, j int) bool { return st.Delivered[i].Action < st.Delivered[j].Action })
	return st
}

// RestoreState overwrites the service's mutable state with a snapshot.
// Pending retries are re-registered separately via RestoreRetries.
func (s *CollusionService) RestoreState(st *CollusionState) {
	s.restoreBase(&st.Base)
	s.freeRequestsPerDay = st.FreeRequestsPerDay
	s.firstLikeBlock = st.FirstLikeBlock
	s.likeAdaptOn = st.LikeAdaptOn
	s.salesStopped = st.SalesStopped
	s.nextAcct = st.NextAcct
	s.automationOn = st.AutomationOn
	clear(s.Delivered)
	for _, ac := range st.Delivered {
		s.Delivered[ac.Action] = ac.N
	}
	// The source cache and duplicate-filter marks are per-instant scratch;
	// dropping them restores identical semantics (they rebuild on use).
	s.sourceCache = nil
	s.sourceCacheAt = time.Time{}
	s.seenMark = nil
	s.seenEpoch = 0
}
