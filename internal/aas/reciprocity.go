package aas

import (
	"fmt"
	"time"

	"footsteps/internal/platform"
	"footsteps/internal/rng"
)

// ReciprocityService is a reciprocity-abuse AAS (§3.1): it automates
// outbound likes, follows, and comments from customer accounts toward a
// curated pool of organic users, harvesting whatever actions those users
// reciprocate. It never manufactures inbound actions itself.
type ReciprocityService struct {
	*base

	// pool is the curated organic target set the service maintains.
	pool []platform.AccountID

	// adaptTypes lists the action types whose blocks the service detects
	// and adapts to. Reciprocity services' income rides on follows, and
	// follows are what they watch (§6.3); like-block detection arrives
	// only with the late evasion wave.
	adaptTypes map[platform.ActionType]bool

	// unfollowDelay is how long after an automated follow the optional
	// auto-unfollow fires.
	unfollowDelay time.Duration

	nextAcct     int
	automationOn bool

	// applier is the persistent serial-apply state machine for hourTick;
	// reset (cur/skip) at the top of every tick.
	applier opApplier
}

// NewReciprocityService builds the engine for spec. The spec must describe
// a reciprocity service.
func NewReciprocityService(spec *Spec, plat *platform.Platform, sched Scheduler, r *rng.RNG) *ReciprocityService {
	if spec.Technique != TechniqueReciprocity {
		panic(fmt.Sprintf("aas: %s is not a reciprocity service", spec.Name))
	}
	return &ReciprocityService{
		base:          newBase(spec, plat, sched, r, 48),
		adaptTypes:    map[platform.ActionType]bool{platform.ActionFollow: true},
		unfollowDelay: 48 * time.Hour,
	}
}

// Spec returns the service's static description.
func (s *ReciprocityService) Spec() *Spec { return s.spec }

// SetTargetPool installs the curated organic accounts the service targets.
func (s *ReciprocityService) SetTargetPool(ids []platform.AccountID) {
	s.pool = append([]platform.AccountID(nil), ids...)
}

// SetAdaptTypes overrides which action types the block detector watches.
func (s *ReciprocityService) SetAdaptTypes(types ...platform.ActionType) {
	s.adaptTypes = make(map[platform.ActionType]bool)
	for _, t := range types {
		s.adaptTypes[t] = true
	}
}

// EnrollTrial enrolls the credentials on the free trial, restricted to the
// given offerings (nil = all). This is the honeypot registration path.
func (s *ReciprocityService) EnrollTrial(username, password string, wants ...Offering) (*Customer, error) {
	c, err := s.Enroll(username, password, wants)
	if err != nil {
		return nil, err
	}
	c.EngagedUntil = c.EnrolledAt.Add(time.Duration(s.spec.Reciprocity.ActualTrialDays()) * 24 * time.Hour)
	return c, nil
}

// Purchase charges the customer for one minimum period and extends paid
// service, starting from the later of now and the current paid horizon.
func (s *ReciprocityService) Purchase(c *Customer) {
	s.pay(c, s.spec.Reciprocity.CostPerPeriod)
	from := s.plat.Now()
	if c.PaidThrough.After(from) {
		from = c.PaidThrough
	}
	if c.EngagedUntil.After(from) {
		from = c.EngagedUntil // paid time begins after the trial
	}
	c.PaidThrough = from.Add(time.Duration(s.spec.Reciprocity.MinPaidDays) * 24 * time.Hour)
}

// activeAt reports whether the service is currently driving this account.
func (s *ReciprocityService) activeAt(c *Customer, now time.Time) bool {
	if s.stopped || c.Churned {
		return false
	}
	return !now.After(c.EngagedUntil) || !now.After(c.PaidThrough)
}

// ActiveCustomers returns the number of accounts the service is driving now.
func (s *ReciprocityService) ActiveCustomers() int {
	now := s.plat.Now()
	n := 0
	for _, c := range s.customers {
		if s.activeAt(c, now) {
			n++
		}
	}
	return n
}

// Run schedules the service's automation and customer lifecycle for the
// given number of days. Equivalent to StartAutomation + StartLifecycle.
func (s *ReciprocityService) Run(days int, scale float64) {
	s.StartAutomation(days)
	s.StartLifecycle(days, scale)
}

// StartAutomation schedules the hourly action driver for days days. It
// must be called exactly once per service; enrolled accounts (honeypots
// included) receive service from the moment they enroll.
func (s *ReciprocityService) StartAutomation(days int) {
	if s.automationOn {
		panic("aas: StartAutomation called twice for " + s.spec.Name)
	}
	s.automationOn = true
	for h := 0; h < days*24; h++ {
		s.sched.After(time.Duration(h)*time.Hour+17*time.Minute, s.hourTick)
	}
}

// StartLifecycle seeds the initial long-term cohort and schedules the
// daily customer dynamics (arrivals, renewals, churn, home activity).
// scale shrinks the paper-scale numbers.
func (s *ReciprocityService) StartLifecycle(days int, scale float64) {
	s.seedInitialCohort(scale)
	s.sched.EveryDay(20*time.Minute, days, func(int) { s.dailyTick(scale) })
}

// seedInitialCohort creates the long-term customers already subscribed when
// the measurement window opens.
func (s *ReciprocityService) seedInitialCohort(scale float64) {
	n := int(float64(s.spec.Customers.InitialLongTerm)*scale + 0.5)
	period := time.Duration(s.spec.Reciprocity.MinPaidDays) * 24 * time.Hour
	for i := 0; i < n; i++ {
		c := s.spawnCustomer()
		if c == nil {
			continue
		}
		c.LongTermIntent = true
		c.FirstPaidBeforeStudy = true
		// Trials were consumed before the window; stagger renewals.
		c.EngagedUntil = c.EnrolledAt
		c.PaidThrough = c.EnrolledAt.Add(time.Duration(s.rng.Float64() * float64(period)))
	}
}

// spawnCustomer creates the platform account and enrolls it.
func (s *ReciprocityService) spawnCustomer() *Customer {
	s.nextAcct++
	username := fmt.Sprintf("cust-%s-%d", s.spec.Name, s.nextAcct)
	password := "pw-" + username
	country := s.pickCountry()
	_, err := s.plat.RegisterAccount(username, password, platform.Profile{
		PhotoCount: 3 + s.rng.Intn(15), HasProfilePic: true, HasBio: true, HasName: true,
	}, country)
	if err != nil {
		return nil
	}
	// The customer logs in from home first — their own phone — and then
	// hands the credentials to the service.
	homeIP := s.net.Allocate(s.homeCountryASN(country))
	own, err := s.plat.Login(username, password, platform.ClientInfo{
		IP: homeIP, Fingerprint: "mobile-official", API: platform.APIPrivate,
	})
	if err != nil {
		return nil
	}
	c, err := s.Enroll(username, password, nil)
	if err != nil {
		return nil
	}
	c.Country = country
	c.Managed = true
	c.ownSession = own
	c.unfollowAfter = s.rng.Bool(s.spec.UnfollowAfter)
	trial := time.Duration(s.spec.Reciprocity.ActualTrialDays()) * 24 * time.Hour
	c.LongTermIntent = s.rng.Bool(s.spec.Customers.LongTermConversion)
	if c.LongTermIntent {
		c.EngagedUntil = c.EnrolledAt.Add(trial)
	} else {
		short := time.Duration(s.rng.ExpFloat64() * s.spec.Customers.ShortTermMeanDays * 24 * float64(time.Hour))
		if short > trial {
			short = trial
		}
		if short < 12*time.Hour {
			short = 12 * time.Hour
		}
		c.EngagedUntil = c.EnrolledAt.Add(short)
	}
	return c
}

// dailyTick runs arrivals, renewals, churn, and customers' own activity.
// Arrivals stay serial — they draw from the service stream and mutate the
// enrollment tables — while the per-customer lifecycle decisions are
// planned in parallel from each customer's own stream and applied
// serially in shard order.
func (s *ReciprocityService) dailyTick(scale float64) {
	if s.stopped {
		return
	}
	now := s.plat.Now()

	// New customers arrive.
	for i, n := 0, s.rng.Poisson(s.spec.Customers.DailyArrivals*scale); i < n; i++ {
		s.spawnCustomer()
	}

	managed := s.filterCustomers()
	for _, c := range s.customers {
		if c.Managed && !c.Churned {
			managed = append(managed, c)
		}
	}
	s.keepFilter(managed)
	runSharded(s.steps, s.lifeSC(), managed, func(c *Customer, emit func(lifeOp)) {
		op := lifeOp{c: c}
		// Long-term customers renew once the previous period lapses.
		op.renew = c.LongTermIntent && now.After(c.EngagedUntil) && now.After(c.PaidThrough)
		// Churn hazard applies to paying customers.
		if c.LongTermIntent && c.rng.Bool(s.spec.Customers.DailyChurn) {
			op.churn = true
			emit(op)
			return
		}
		// A renewal reactivates the account, so home activity is planned
		// for customers active now or active once the renewal applies.
		if !op.renew && !s.activeAt(c, now) {
			return
		}
		// The human behind the account still uses it: daily home login
		// (feeding geolocation) and occasional posting.
		if c.ownSession != nil && c.rng.Bool(0.75) {
			op.login = true
			op.post = c.rng.Bool(0.45)
		}
		if op.renew || op.login {
			emit(op)
		}
	}, func(op lifeOp) {
		if op.renew {
			s.Purchase(op.c)
		}
		if op.churn {
			op.c.Churned = true
			return
		}
		if op.login {
			// The human's phone logs in fresh each day; keeping the new
			// session means a session-store flap only interrupts home
			// activity until the next login. Faults-off the fresh session
			// is indistinguishable from the old one.
			if sess, err := s.plat.Login(op.c.Username, op.c.Password, op.c.ownSession.Client()); err == nil {
				op.c.ownSession = sess
			}
			if op.post {
				op.c.ownSession.Do(platform.Request{Action: platform.ActionPost})
			}
		}
	})
}

// hourTick performs one hour's slice of automation for every active
// account. Every stochastic decision — whether to post, how many actions
// of each type, which targets — is planned in parallel from per-customer
// streams against the pre-tick platform snapshot; the resulting intents
// then execute serially in shard order. Outcome feedback (blocks, rate
// limits, session revocation) happens during the serial apply, with the
// same stop-this-action-type semantics the sequential loop had.
func (s *ReciprocityService) hourTick() {
	if s.stopped || len(s.pool) == 0 {
		return
	}
	now := s.plat.Now()
	active := s.filterCustomers()
	for _, c := range s.customers {
		if s.activeAt(c, now) {
			active = append(active, c)
		}
	}
	s.keepFilter(active)
	// The applier persists across ticks; resetting cur and the skip set
	// makes each tick start from exactly the state a fresh applier has.
	if s.applier.skip == nil {
		s.applier = opApplier{s: s, skip: make(map[platform.ActionType]bool)}
	}
	s.applier.cur = nil
	clear(s.applier.skip)
	runSharded(s.steps, s.planSC(), active, func(c *Customer, emit func(plannedOp)) {
		s.planCustomer(c, now, emit)
	}, s.applier.apply)
	if now.Hour() == 23 {
		for _, c := range active {
			for _, ad := range c.adapt {
				ad.endDay()
			}
		}
	}
}

// planCustomer makes every stochastic decision for one customer's hour —
// the parallel phase. It draws only from the customer's own forked
// stream, reads platform state without writing it, and emits the actions
// the service intends to perform.
func (s *ReciprocityService) planCustomer(c *Customer, now time.Time, emit func(plannedOp)) {
	r := c.rng
	// Post automation (Table 1: Instazood and Boostgram sell posts): the
	// service publishes content on the customer's behalf, roughly daily.
	if c.wants(s.spec, OfferPost) {
		if plan := s.spec.DailyActions[platform.ActionPost]; plan > 0 || len(c.Wants) > 0 {
			rate := plan
			if rate <= 0 {
				rate = 1 // default for explicit post requests
			}
			if r.Bool(rate / 24) {
				emit(plannedOp{c: c, action: platform.ActionPost})
			}
		}
	}
	type work struct {
		offer  Offering
		action platform.ActionType
	}
	for _, w := range []work{
		{OfferLike, platform.ActionLike},
		{OfferFollow, platform.ActionFollow},
		{OfferComment, platform.ActionComment},
	} {
		if !c.wants(s.spec, w.offer) {
			continue
		}
		plan := s.spec.DailyActions[w.action]
		if plan <= 0 {
			continue
		}
		ad := s.adaptFor(c, w.action)
		if !ad.ready(now) {
			continue // cooling off after a block
		}
		remaining := int(ad.target(plan)) - ad.todayCount
		if remaining <= 0 {
			continue
		}
		n := r.Poisson(plan / 24 * diurnal(now))
		if n > remaining {
			n = remaining
		}
		for i := 0; i < n; i++ {
			target, pid, ok := s.pickTarget(r, c, w.action != platform.ActionFollow)
			if !ok || target == c.Account {
				continue
			}
			emit(plannedOp{c: c, action: w.action, target: target, post: pid})
		}
	}
	s.planUnfollows(c, now, emit)
}

// opApplier executes a tick's planned actions serially, carrying the
// per-customer feedback the sequential loop got inline: a block or rate
// limit stops the rest of that customer's batch for the same action
// type, and a revoked session churns the customer, voiding the rest of
// their batch. Intents arrive grouped by customer, so the skip state
// resets whenever the current customer changes.
type opApplier struct {
	s    *ReciprocityService
	cur  *Customer
	skip map[platform.ActionType]bool
}

func (a *opApplier) apply(op plannedOp) {
	if op.c != a.cur {
		a.cur = op.c
		clear(a.skip)
	}
	s, c := a.s, op.c
	if c.Churned || a.skip[op.action] {
		return
	}
	if s.shedByBreaker(c, op.action) {
		return
	}
	// All requests route through the shared resilience layer (execute):
	// it counts outcomes, feeds the breaker, transparently re-logs-in on
	// session revocation (churning the customer only when the password
	// really changed), and schedules backoff retries on ErrUnavailable.
	switch op.action {
	case platform.ActionPost:
		err := s.execute(c, platform.Request{Action: platform.ActionPost})
		if err == nil {
			c.countAction(platform.ActionPost)
		}
		return
	case platform.ActionUnfollow:
		err := s.execute(c, platform.Request{Action: platform.ActionUnfollow, Target: op.target})
		if err == nil {
			c.countAction(platform.ActionUnfollow)
		}
		return
	}
	var err error
	switch op.action {
	case platform.ActionLike:
		err = s.execute(c, platform.Request{Action: platform.ActionLike, Post: op.post})
	case platform.ActionFollow:
		err = s.execute(c, platform.Request{Action: platform.ActionFollow, Target: op.target})
		if err == nil && c.unfollowAfter {
			c.pushUnfollow(op.target, s.plat.Now().Add(s.unfollowDelay))
		}
	case platform.ActionComment:
		err = s.execute(c, platform.Request{Action: platform.ActionComment, Post: op.post, Text: "nice!"})
	}
	ad := s.adaptFor(c, op.action)
	switch err {
	case nil:
		ad.todayCount++
		c.countAction(op.action)
	case platform.ErrBlocked:
		if s.adaptTypes[op.action] {
			ad.onBlocked(s.plat.Now(), probeInterval)
		}
		a.skip[op.action] = true
	case platform.ErrRateLimited:
		a.skip[op.action] = true
	case platform.ErrUnavailable:
		// Retries are already booked; stop hammering a down platform
		// with the rest of this hour's batch for the action type.
		a.skip[op.action] = true
	case platform.ErrSessionRevoked:
		// Re-login failed against a genuinely changed password; execute
		// already churned the customer (account lost to the service).
	}
}

// pickTarget chooses the next recipient. Customers with hashtag lists are
// served from the platform's hashtag feeds; everyone else from the
// service's curated pool. needPost selects a post for like/comment
// actions. It runs during planning, so it draws from the caller's stream
// and only reads platform state.
func (s *ReciprocityService) pickTarget(r *rng.RNG, c *Customer, needPost bool) (platform.AccountID, platform.PostID, bool) {
	if len(c.Hashtags) > 0 {
		tag := c.Hashtags[r.Intn(len(c.Hashtags))]
		// The feed query fills the customer's own scratch buffer: picking
		// runs in the parallel planning phase, and per-customer scratch is
		// touched by exactly one planning goroutine.
		c.tagScratch = s.plat.AppendRecentByTag(c.tagScratch[:0], tag, 64)
		posts := c.tagScratch
		if len(posts) > 0 {
			pid := posts[r.Intn(len(posts))]
			if author, ok := s.plat.PostAuthor(pid); ok {
				return author, pid, true
			}
		}
		// Stale or empty feed: fall through to the curated pool.
	}
	if len(s.pool) == 0 {
		return 0, 0, false
	}
	target := s.pool[r.Intn(len(s.pool))]
	if !needPost {
		return target, 0, true
	}
	pid, ok := s.plat.LatestPost(target)
	if !ok {
		return 0, 0, false
	}
	return target, pid, true
}

func (c *Customer) pushUnfollow(target platform.AccountID, due time.Time) {
	const maxPending = 2048
	if len(c.recentFollows) >= maxPending {
		c.recentFollows = c.recentFollows[1:]
	}
	c.recentFollows = append(c.recentFollows, pendingUnfollow{target: target, due: due})
}

// planUnfollows emits due auto-unfollows, a handful per hour. The pending
// queue is customer-local, so popping it during planning is safe.
func (s *ReciprocityService) planUnfollows(c *Customer, now time.Time, emit func(plannedOp)) {
	if !c.unfollowAfter || !c.wants(s.spec, OfferUnfollow) {
		return
	}
	budget := int(s.spec.DailyActions[platform.ActionUnfollow]/24) + 1
	for budget > 0 && len(c.recentFollows) > 0 && !c.recentFollows[0].due.After(now) {
		target := c.recentFollows[0].target
		c.recentFollows = c.recentFollows[1:]
		emit(plannedOp{c: c, action: platform.ActionUnfollow, target: target})
		budget--
	}
}
