package aas

import (
	"errors"
	"net/netip"
	"time"

	"footsteps/internal/platform"
	"footsteps/internal/trace"
)

// This file is the engines' shared resilience policy layer — how a
// commercial automation service behaves when the platform's
// infrastructure (not its defenses) misbehaves. The paper's services
// were defined by exactly this: when Instagram flapped, they retried,
// re-logged-in, throttled themselves, and kept selling (§6).
//
// Everything here is provably inert when fault injection is off:
//   - the breaker counts only platform.ErrUnavailable, which a
//     fault-free platform never returns;
//   - retries are scheduled only for ErrUnavailable;
//   - the session-refresh path runs on organic revocations too, but
//     draws only from the customer's private resilience stream and —
//     faults-off — always fails login against the reset password,
//     emitting no event and consuming no shared draws before churning
//     the customer exactly as the old ad-hoc handling did.
// The faults-off byte-identity golden in internal/simtest pins this.

// RetryPolicy tunes the shared resilience layer: retry budget, backoff
// shape, and circuit-breaker thresholds.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per action (first attempt
	// included) for revenue-critical actions; low-priority actions get
	// a smaller budget (see retryBudget).
	MaxAttempts int
	// BaseBackoff and MaxBackoff bound the capped exponential backoff
	// between attempts.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold is how many consecutive hard (infrastructure)
	// failures open a customer's circuit breaker.
	BreakerThreshold int
	// BreakerOpenFor is how long an opened breaker sheds all traffic
	// before half-opening to probe.
	BreakerOpenFor time.Duration
}

// DefaultRetryPolicy returns the production policy: three attempts
// with 2m..30m backoff, breaker at five consecutive hard failures,
// half-open probes after two hours.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      3,
		BaseBackoff:      2 * time.Minute,
		MaxBackoff:       30 * time.Minute,
		BreakerThreshold: 5,
		BreakerOpenFor:   2 * time.Hour,
	}
}

// retryBudget returns the attempt budget for an action type.
// Follows/unfollows/posts — the revenue-critical mix — get the full
// budget; likes and comments are shed first under sustained faults,
// matching the paper's observation that services prioritized follow
// delivery when throttled.
func (p RetryPolicy) retryBudget(t platform.ActionType) int {
	switch t {
	case platform.ActionLike, platform.ActionComment:
		if p.MaxAttempts > 2 {
			return 2
		}
	}
	return p.MaxAttempts
}

// breakerState is the derived state of a circuit breaker.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker transitions reported by onHardFailure.
const (
	brNone = iota
	brOpened
	brReopened
)

// breaker is a per-customer circuit breaker over consecutive
// infrastructure failures. State is derived from (tripped, openUntil)
// against the simulated clock, so the breaker needs no timers of its
// own and half-opens "on a schedule" for free.
type breaker struct {
	fails     int // consecutive hard failures
	tripped   bool
	openUntil time.Time
}

// state derives the breaker position at the given instant.
func (br *breaker) state(now time.Time) breakerState {
	switch {
	case !br.tripped:
		return breakerClosed
	case now.Before(br.openUntil):
		return breakerOpen
	default:
		return breakerHalfOpen
	}
}

// onSuccess records a successful request; it reports whether the
// success closed a half-open breaker.
func (br *breaker) onSuccess(now time.Time) bool {
	closed := br.tripped && !now.Before(br.openUntil)
	if closed {
		br.tripped = false
		br.openUntil = time.Time{}
	}
	br.fails = 0
	return closed
}

// onHardFailure records one infrastructure failure and returns the
// transition it caused: a half-open probe failure re-opens
// immediately; a closed breaker opens at the policy threshold.
func (br *breaker) onHardFailure(now time.Time, p RetryPolicy) int {
	st := br.state(now)
	br.fails++
	switch {
	case st == breakerHalfOpen:
		br.openUntil = now.Add(p.BreakerOpenFor)
		return brReopened
	case st == breakerClosed && br.fails >= p.BreakerThreshold:
		br.tripped = true
		br.openUntil = now.Add(p.BreakerOpenFor)
		return brOpened
	}
	return brNone
}

// shedByBreaker reports whether the customer's breaker sheds this
// action right now, counting the shed when it does. Open sheds
// everything; half-open sheds the low-priority mix (likes, comments)
// while follows and the rest go through as probes — "shed likes before
// follows".
func (b *base) shedByBreaker(c *Customer, t platform.ActionType) bool {
	switch c.br.state(b.plat.Now()) {
	case breakerOpen:
		b.countShed(t)
		return true
	case breakerHalfOpen:
		if t == platform.ActionLike || t == platform.ActionComment {
			b.countShed(t)
			return true
		}
	}
	return false
}

func (b *base) countShed(t platform.ActionType) {
	if int(t) < len(b.telShed) {
		b.telShed[t].Inc()
	}
}

// breakerSuccess feeds one success into the customer's breaker.
func (b *base) breakerSuccess(c *Customer) {
	if c.br.onSuccess(b.plat.Now()) {
		b.telBreakerClose.Inc()
		b.traceBreaker(c, trace.BreakerClosed)
	}
}

// breakerFailure feeds one hard failure into the customer's breaker.
func (b *base) breakerFailure(c *Customer) {
	switch c.br.onHardFailure(b.plat.Now(), b.rp) {
	case brOpened:
		b.telBreakerOpen.Inc()
		b.traceBreaker(c, trace.BreakerOpened)
	case brReopened:
		b.telBreakerReopen.Inc()
		b.traceBreaker(c, trace.BreakerReopened)
	}
}

// traceBreaker emits a breaker-transition instant span, parented onto
// the request whose outcome tripped the transition when that request
// was itself sampled. Value carries the hold-open window.
func (b *base) traceBreaker(c *Customer, transition uint8) {
	if tr := b.tracer; tr != nil {
		tr.Instant(trace.KindBreaker, uint64(c.Account), 0, transition,
			tr.LastRequest(), int64(b.rp.BreakerOpenFor))
	}
}

// doReq submits req on the customer's current session. Re-reading
// c.session here at each attempt — rather than capturing the session —
// is what lets a mid-retry refreshSession take effect: the next attempt
// automatically rides the fresh session, exactly as the old per-attempt
// closures did.
func (c *Customer) doReq(req platform.Request) error {
	return c.session.Do(req).Err
}

// execute runs one automation request under the shared resilience
// policy: outcome counting, breaker bookkeeping, transparent session
// refresh on revocation, and scheduled retries with capped exponential
// backoff on infrastructure failure. The returned error is what the
// caller should react to; ErrUnavailable means retries (if any) are
// already scheduled.
//
// req is a plain value (Session left unset — doReq's Session.Do fills a
// copy), so the steady-state success path allocates nothing; a retry
// closure materializes only on the fault-injected ErrUnavailable path,
// preserving the layer's faults-off inertness.
func (b *base) execute(c *Customer, req platform.Request) error {
	err := c.doReq(req)
	b.countOutcome(err)
	switch {
	case err == nil:
		b.breakerSuccess(c)
	case errors.Is(err, platform.ErrUnavailable):
		b.breakerFailure(c)
		b.scheduleRetry(c, req, 1)
	case errors.Is(err, platform.ErrSessionRevoked):
		if b.refreshSession(c) {
			err = c.doReq(req)
			b.countOutcome(err)
			switch {
			case err == nil:
				b.breakerSuccess(c)
			case errors.Is(err, platform.ErrUnavailable):
				b.breakerFailure(c)
				b.scheduleRetry(c, req, 1)
			}
			// A second same-instant revocation is not refreshed again:
			// the injector's verdict is a pure function of the request
			// instant, so recursing here could never converge. The next
			// action (at a later instant) refreshes instead.
		}
	}
	return err
}

// scheduleRetry books attempt+1 after backoff, unless the action's
// retry budget is exhausted.
func (b *base) scheduleRetry(c *Customer, req platform.Request, attempt int) {
	if attempt >= b.rp.retryBudget(req.Action) {
		b.telRetryDrop.Inc()
		return
	}
	b.telRetrySched.Inc()
	delay := b.backoff(c, attempt)
	if tr := b.tracer; tr != nil {
		// Code carries the attempt number, Value the backoff delay; the
		// parent is the failed request's span when it was sampled.
		tr.Instant(trace.KindRetry, uint64(c.Account), uint8(req.Action),
			uint8(attempt), tr.LastRequest(), int64(delay))
	}
	// The pending retry lives in a table entry rather than closure
	// captures so snapshots can serialize it; the scheduled callback only
	// points at the entry. Same instant, same draws, same behavior.
	e := &pendingRetry{c: c, req: req, attempt: attempt + 1, due: b.plat.Now().Add(delay)}
	b.retries = append(b.retries, e)
	b.sched.After(delay, func() { b.fireRetry(e) })
}

// fireRetry executes one scheduled retry and retires its table entry.
// Runs on the scheduler goroutine.
func (b *base) fireRetry(e *pendingRetry) {
	e.done = true
	for i, pe := range b.retries {
		if pe == e {
			b.retries = append(b.retries[:i], b.retries[i+1:]...)
			break
		}
	}
	b.retryOp(e.c, e.req, e.attempt)
}

// backoff is the capped exponential delay before the given retry
// attempt, with full jitter on the upper half drawn from the
// customer's private resilience stream — deterministic, yet decorrelated
// across customers so retry storms do not synchronize.
func (b *base) backoff(c *Customer, attempt int) time.Duration {
	d := b.rp.BaseBackoff << (attempt - 1)
	if d <= 0 || d > b.rp.MaxBackoff {
		d = b.rp.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(c.relRNG.Uint64n(uint64(half)+1))
}

// retryOp is a scheduled retry firing from the (serial) scheduler. It
// re-checks the world — the customer may have churned, the service
// stopped, the breaker opened — then re-runs the operation with the
// same policy as execute, minus further same-call refresh recursion.
//
// Bookkeeping on success mirrors the engines' apply paths (adaptive
// rate today-count, dashboard totals); retried follows deliberately
// skip the auto-unfollow queue — a small, documented simplification
// that keeps the retry layer independent of per-engine queues.
func (b *base) retryOp(c *Customer, req platform.Request, attempt int) {
	if b.stopped || c.Churned {
		return
	}
	if b.shedByBreaker(c, req.Action) {
		return
	}
	err := c.doReq(req)
	b.countOutcome(err)
	switch {
	case err == nil:
		b.retrySucceeded(c, req.Action)
	case errors.Is(err, platform.ErrUnavailable):
		b.breakerFailure(c)
		b.scheduleRetry(c, req, attempt)
	case errors.Is(err, platform.ErrSessionRevoked):
		if b.refreshSession(c) {
			err = c.doReq(req)
			b.countOutcome(err)
			if err == nil {
				b.retrySucceeded(c, req.Action)
			}
		}
	}
	// ErrBlocked / ErrRateLimited on a retry: drop it. The original
	// apply path already fed adaptation and skip state at plan time;
	// a stale retry must not feed them again.
}

// retrySucceeded applies the success bookkeeping a normal apply-path
// success would have done.
func (b *base) retrySucceeded(c *Customer, t platform.ActionType) {
	b.telRetryOK.Inc()
	b.breakerSuccess(c)
	switch t {
	case platform.ActionLike, platform.ActionFollow, platform.ActionComment:
		b.adaptFor(c, t).todayCount++
	}
	c.countAction(t)
}

// refreshSession attempts one automatic re-login after a session
// revocation and reports whether the customer has a live session
// again. The source IP draws only from the customer's private
// resilience stream — a refresh attempt, successful or not, never
// shifts any shared stream. When login fails with bad credentials the
// password really changed under the service (reset or deletion) and
// the account is lost, exactly as the engines always treated it.
func (b *base) refreshSession(c *Customer) bool {
	b.telRelogin.Inc()
	sess, err := b.plat.Login(c.Username, c.Password, platform.ClientInfo{
		IP:          b.resilienceIP(c),
		Fingerprint: b.spec.Fingerprint,
		API:         b.api,
	})
	switch {
	case err == nil:
		c.session = sess
		b.telReloginOK.Inc()
		return true
	case errors.Is(err, platform.ErrUnavailable):
		// The auth tier is down too; keep the customer and let the
		// next action try again.
		return false
	default:
		c.Churned = true
		return false
	}
}

// resilienceIP picks a source address for refresh logins from the
// customer's private stream (cf. actionIP, which uses shared streams).
func (b *base) resilienceIP(c *Customer) netip.Addr {
	if b.proxies != nil {
		return b.proxies.PickFrom(c.relRNG)
	}
	return b.serviceIPs[c.relRNG.Intn(len(b.serviceIPs))]
}
