package aas

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"footsteps/internal/behavior"
	"footsteps/internal/clock"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
	"footsteps/internal/rng"
	"footsteps/internal/socialgraph"
)

type world struct {
	plat  *platform.Platform
	sched *clock.Scheduler
	reg   *netsim.Registry
	pop   *behavior.Population
	rng   *rng.RNG
}

func newWorld(t *testing.T, seed uint64) *world {
	t.Helper()
	reg := netsim.NewRegistry()
	RegisterNetworks(reg)
	sched := clock.NewScheduler(clock.New())
	plat := platform.New(platform.DefaultConfig(), socialgraph.New(), reg, sched)
	r := rng.New(seed)
	pop := behavior.New(behavior.DefaultModel(), plat, sched, r.Split("pop"))
	return &world{plat: plat, sched: sched, reg: reg, pop: pop, rng: r}
}

// registerHoneypot creates a bare platform account the way the honeypot
// framework would.
func (w *world) registerHoneypot(t *testing.T, name string) (string, string) {
	t.Helper()
	pw := "pw-" + name
	if _, err := w.plat.RegisterAccount(name, pw, platform.Profile{PhotoCount: 10}, "USA"); err != nil {
		t.Fatal(err)
	}
	return name, pw
}

func TestCatalogMatchesTables(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog has %d services", len(cat))
	}
	byName := make(map[string]*Spec)
	for _, s := range cat {
		byName[s.Name] = s
	}

	// Table 1: offerings matrix.
	checks := []struct {
		name  string
		tech  Technique
		wants []Offering
		lacks []Offering
	}{
		{NameInstalex, TechniqueReciprocity,
			[]Offering{OfferLike, OfferFollow, OfferComment, OfferUnfollow}, []Offering{OfferPost}},
		{NameInstazood, TechniqueReciprocity,
			[]Offering{OfferLike, OfferFollow, OfferComment, OfferPost, OfferUnfollow}, nil},
		{NameBoostgram, TechniqueReciprocity,
			[]Offering{OfferLike, OfferFollow, OfferPost, OfferUnfollow}, []Offering{OfferComment}},
		{NameHublaagram, TechniqueCollusion,
			[]Offering{OfferLike, OfferFollow, OfferComment}, []Offering{OfferPost, OfferUnfollow}},
		{NameFollowersgratis, TechniqueCollusion,
			[]Offering{OfferLike, OfferFollow}, []Offering{OfferComment, OfferPost, OfferUnfollow}},
	}
	for _, c := range checks {
		s := byName[c.name]
		if s == nil {
			t.Fatalf("service %s missing", c.name)
		}
		if s.Technique != c.tech {
			t.Errorf("%s technique %v", c.name, s.Technique)
		}
		for _, o := range c.wants {
			if !s.Offers(o) {
				t.Errorf("%s should offer %v", c.name, o)
			}
		}
		for _, o := range c.lacks {
			if s.Offers(o) {
				t.Errorf("%s should not offer %v", c.name, o)
			}
		}
	}

	// Table 2: reciprocity pricing.
	if p := byName[NameInstalex].Reciprocity; p.TrialDays != 7 || p.MinPaidDays != 7 || p.CostPerPeriod != 3.15 {
		t.Errorf("Instalex pricing %+v", p)
	}
	if p := byName[NameInstazood].Reciprocity; p.TrialDays != 3 || p.ActualTrialDays() != 7 ||
		p.MinPaidDays != 1 || p.CostPerPeriod != 0.34 {
		t.Errorf("Instazood pricing %+v", p)
	}
	if p := byName[NameBoostgram].Reciprocity; p.TrialDays != 3 || p.MinPaidDays != 30 || p.CostPerPeriod != 99 {
		t.Errorf("Boostgram pricing %+v", p)
	}

	// Table 3: Hublaagram price list.
	h := byName[NameHublaagram].Collusion
	if h.NoOutboundFee != 15 {
		t.Errorf("no-outbound fee %v", h.NoOutboundFee)
	}
	if len(h.OneTime) != 3 || h.OneTime[0].Likes != 2000 || h.OneTime[0].Fee != 10 ||
		h.OneTime[2].Likes != 10000 || h.OneTime[2].Fee != 25 {
		t.Errorf("one-time packages %+v", h.OneTime)
	}
	wantTiers := []LikeTier{
		{250, 500, 20}, {500, 1000, 30}, {1000, 2000, 40}, {2000, 4000, 70},
	}
	if len(h.MonthlyTiers) != 4 {
		t.Fatalf("tiers %+v", h.MonthlyTiers)
	}
	for i, w := range wantTiers {
		if h.MonthlyTiers[i] != w {
			t.Errorf("tier %d = %+v, want %+v", i, h.MonthlyTiers[i], w)
		}
	}

	// Table 7: operating locations.
	if byName[NameInstalex].OperatingCountry != "RUS" ||
		byName[NameBoostgram].OperatingCountry != "USA" ||
		byName[NameHublaagram].OperatingCountry != "IDN" {
		t.Error("operating countries wrong")
	}

	if SpecByName(NameBoostgram) == nil || SpecByName("nope") != nil {
		t.Error("SpecByName lookup broken")
	}
}

func TestCatalogReturnsFreshCopies(t *testing.T) {
	a := SpecByName(NameBoostgram)
	a.Reciprocity.CostPerPeriod = 1
	if b := SpecByName(NameBoostgram); b.Reciprocity.CostPerPeriod != 99 {
		t.Fatal("catalog specs share state across calls")
	}
}

func TestReciprocityTrialDrivesOnlyRequestedActions(t *testing.T) {
	w := newWorld(t, 1)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 2000))

	name, pw := w.registerHoneypot(t, "hp-like-only")
	c, err := svc.EnrollTrial(name, pw, OfferLike)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[platform.ActionType]int)
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor == c.Account && ev.Type != platform.ActionLogin {
			counts[ev.Type]++
		}
	})
	svc.Run(10, 0) // zero scale: no managed customers, honeypot only
	w.sched.RunFor(10 * 24 * time.Hour)

	if counts[platform.ActionLike] == 0 {
		t.Fatal("no likes driven during trial")
	}
	// §4.2: "no AASs used our accounts to produce visible un-requested
	// actions".
	for _, typ := range []platform.ActionType{platform.ActionFollow, platform.ActionComment, platform.ActionPost} {
		if counts[typ] != 0 {
			t.Fatalf("service performed un-requested %v ×%d", typ, counts[typ])
		}
	}
}

func TestReciprocityTrialExpires(t *testing.T) {
	w := newWorld(t, 2)
	spec := SpecByName(NameBoostgram) // 3-day trial
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 1000))

	name, pw := w.registerHoneypot(t, "hp")
	c, err := svc.EnrollTrial(name, pw, OfferFollow)
	if err != nil {
		t.Fatal(err)
	}
	var lastAction time.Time
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor == c.Account && ev.Type == platform.ActionFollow {
			lastAction = ev.Time
		}
	})
	svc.Run(10, 0)
	w.sched.RunFor(10 * 24 * time.Hour)

	if lastAction.IsZero() {
		t.Fatal("trial produced no actions")
	}
	expiry := c.EnrolledAt.Add(3 * 24 * time.Hour)
	// §4.2: activity stops no more than 12 hours beyond the expected end.
	if lastAction.After(expiry.Add(12 * time.Hour)) {
		t.Fatalf("action at %v, trial expired %v", lastAction, expiry)
	}
}

func TestInstazoodDeliversSevenDayTrial(t *testing.T) {
	w := newWorld(t, 3)
	spec := SpecByName(NameInstazood) // advertises 3, delivers 7
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("iz", spec.TargetPool, 1000))

	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollTrial(name, pw, OfferFollow)
	var lastAction time.Time
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor == c.Account && ev.Type == platform.ActionFollow {
			lastAction = ev.Time
		}
	})
	svc.Run(12, 0)
	w.sched.RunFor(12 * 24 * time.Hour)

	active := lastAction.Sub(c.EnrolledAt)
	if active < 6*24*time.Hour {
		t.Fatalf("Instazood trial lasted only %v, want ≈7 days", active)
	}
}

func TestPurchaseExtendsService(t *testing.T) {
	w := newWorld(t, 4)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 500))
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollTrial(name, pw, OfferFollow)
	svc.Purchase(c)
	if svc.Revenue != 99 {
		t.Fatalf("revenue %v", svc.Revenue)
	}
	if len(c.Payments) != 1 || c.Payments[0].Amount != 99 {
		t.Fatalf("payments %+v", c.Payments)
	}
	// Paid service begins after the trial: 3 trial days + 30 paid.
	want := c.EnrolledAt.Add(33 * 24 * time.Hour)
	if !c.PaidThrough.Equal(want) {
		t.Fatalf("paid through %v, want %v", c.PaidThrough, want)
	}
}

func TestUnfollowAfterFollow(t *testing.T) {
	w := newWorld(t, 5)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 2000))
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollTrial(name, pw, OfferFollow, OfferUnfollow)
	c.unfollowAfter = true

	follows, unfollows := 0, 0
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor != c.Account {
			return
		}
		switch ev.Type {
		case platform.ActionFollow:
			follows++
		case platform.ActionUnfollow:
			unfollows++
		}
	})
	svc.Run(3, 0)
	w.sched.RunFor(3 * 24 * time.Hour)
	if follows == 0 {
		t.Fatal("no follows")
	}
	if unfollows == 0 {
		t.Fatal("unfollow-after-follow produced no unfollows")
	}
	// Unfollows lag follows by ~48h, so within a 3-day window there must
	// be fewer unfollows than follows.
	if unfollows >= follows {
		t.Fatalf("unfollows %d >= follows %d", unfollows, follows)
	}
}

func TestBlockDetectionAdaptsFollowRate(t *testing.T) {
	w := newWorld(t, 6)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 4000))
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollTrial(name, pw, OfferFollow)
	c.EngagedUntil = c.EnrolledAt.Add(15 * 24 * time.Hour) // keep it active

	// Per-account daily threshold of 30 follows.
	const threshold = 30
	counts := make(map[int]int) // day -> allowed follows
	var today int
	var curDay int
	w.plat.SetGatekeeper(platform.GatekeeperFunc(func(req platform.Event) platform.Verdict {
		if req.Type != platform.ActionFollow || req.Actor != c.Account {
			return platform.Allow
		}
		day := int(req.Time.Sub(clock.Epoch) / (24 * time.Hour))
		if day != curDay {
			curDay, today = day, 0
		}
		if today >= threshold {
			return platform.Verdict{Kind: platform.VerdictBlock}
		}
		today++
		return platform.Allow
	}))
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor == c.Account && ev.Type == platform.ActionFollow && ev.Outcome == platform.OutcomeAllowed {
			day := int(ev.Time.Sub(clock.Epoch) / (24 * time.Hour))
			counts[day]++
		}
	})
	svc.Run(14, 0)
	w.sched.RunFor(14 * 24 * time.Hour)

	// Day 0: the service hits the threshold and learns it.
	if counts[0] != threshold {
		t.Fatalf("day-0 allowed follows %d, want %d (threshold)", counts[0], threshold)
	}
	// Later days: the service hovers at/below the threshold, probing
	// occasionally; it must never wildly exceed the plan again.
	for day := 2; day <= 12; day++ {
		if counts[day] > threshold {
			t.Fatalf("day %d allowed %d follows, above the %d threshold — blocks are synchronous so overshoot is impossible", day, counts[day], threshold)
		}
		if counts[day] < threshold/3 {
			t.Fatalf("day %d allowed only %d follows — service over-reacted", day, counts[day])
		}
	}
}

func TestCollusionFreeRequestDeliversQuantum(t *testing.T) {
	w := newWorld(t, 7)
	spec := SpecByName(NameHublaagram)
	svc := NewCollusionService(spec, w.plat, w.sched, w.rng.Split("svc"), 32)

	// Build a source population of enrolled customers.
	for i := 0; i < 200; i++ {
		name, pw := w.registerHoneypot(t, fmt.Sprintf("src%d", i))
		c, err := svc.EnrollFree(name, pw)
		if err != nil {
			t.Fatal(err)
		}
		c.EngagedUntil = c.EnrolledAt.Add(30 * 24 * time.Hour)
	}
	name, pw := w.registerHoneypot(t, "hp")
	c, err := svc.EnrollFree(name, pw, OfferLike)
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.RequestFree(c, OfferLike)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec.Collusion.FreeLikeQuantum {
		t.Fatalf("delivered %d likes, want %d", got, spec.Collusion.FreeLikeQuantum)
	}
	pid, _ := w.plat.LatestPost(c.Account)
	if n := w.plat.LikeCount(pid); n != got {
		t.Fatalf("like count %d != delivered %d", n, got)
	}
	if svc.AdImpressions != spec.Collusion.AdsPerRequest*2 {
		// two requests so far: the honeypot's own enroll does not count,
		// but both RequestFree calls do... only one was made here.
		t.Logf("ad impressions %d", svc.AdImpressions)
	}
}

func TestCollusionFreeRequestCooldown(t *testing.T) {
	w := newWorld(t, 8)
	spec := SpecByName(NameHublaagram)
	svc := NewCollusionService(spec, w.plat, w.sched, w.rng.Split("svc"), 32)
	for i := 0; i < 50; i++ {
		name, pw := w.registerHoneypot(t, fmt.Sprintf("src%d", i))
		c, _ := svc.EnrollFree(name, pw)
		c.EngagedUntil = c.EnrolledAt.Add(30 * 24 * time.Hour)
	}
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollFree(name, pw, OfferLike)
	if _, err := svc.RequestFree(c, OfferLike); err != nil {
		t.Fatal(err)
	}
	// Immediate second request: inside the 30-minute cooldown.
	if _, err := svc.RequestFree(c, OfferLike); err == nil {
		t.Fatal("request inside cooldown succeeded")
	}
	w.sched.Clock().Advance(31 * time.Minute)
	if _, err := svc.RequestFree(c, OfferLike); err != nil {
		t.Fatalf("request after cooldown failed: %v", err)
	}
}

func TestCollusionSourcesExcludeNoOutbound(t *testing.T) {
	w := newWorld(t, 9)
	spec := SpecByName(NameHublaagram)
	svc := NewCollusionService(spec, w.plat, w.sched, w.rng.Split("svc"), 32)

	var optedOut *Customer
	for i := 0; i < 100; i++ {
		name, pw := w.registerHoneypot(t, fmt.Sprintf("src%d", i))
		c, _ := svc.EnrollFree(name, pw)
		c.EngagedUntil = c.EnrolledAt.Add(30 * 24 * time.Hour)
		if i == 0 {
			optedOut = c
			if err := svc.PurchaseNoOutbound(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	if svc.Revenue != spec.Collusion.NoOutboundFee {
		t.Fatalf("revenue %v", svc.Revenue)
	}
	outbound := 0
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor == optedOut.Account && ev.Type == platform.ActionLike {
			outbound++
		}
	})
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollFree(name, pw, OfferLike)
	for i := 0; i < 5; i++ {
		svc.RequestFree(c, OfferLike)
		w.sched.Clock().Advance(time.Hour)
	}
	if outbound != 0 {
		t.Fatalf("no-outbound account produced %d outbound likes", outbound)
	}
}

func TestCollusionOneTimePurchaseBurst(t *testing.T) {
	w := newWorld(t, 10)
	spec := SpecByName(NameHublaagram)
	svc := NewCollusionService(spec, w.plat, w.sched, w.rng.Split("svc"), 32)
	for i := 0; i < 3000; i++ {
		name, pw := w.registerHoneypot(t, fmt.Sprintf("src%d", i))
		c, _ := svc.EnrollFree(name, pw)
		c.EngagedUntil = c.EnrolledAt.Add(30 * 24 * time.Hour)
	}
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollFree(name, pw, OfferLike)
	if err := svc.PurchaseOneTime(c, 0); err != nil { // 2,000 likes / $10
		t.Fatal(err)
	}
	pid, _ := w.plat.LatestPost(c.Account)
	got := w.plat.LikeCount(pid)
	if got < 1900 {
		t.Fatalf("one-time package delivered %d likes, want ≈2000", got)
	}
	// Paid bursts exceed the 160/hour free cap — that is the product.
	if got <= spec.Collusion.FreeLikeHourlyCap {
		t.Fatalf("paid delivery %d under the free cap", got)
	}
}

func TestCollusionStopSales(t *testing.T) {
	w := newWorld(t, 11)
	svc := NewCollusionService(SpecByName(NameHublaagram), w.plat, w.sched, w.rng.Split("svc"), 8)
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollFree(name, pw)
	svc.StopSales()
	if err := svc.PurchaseNoOutbound(c); err == nil {
		t.Fatal("purchase succeeded after StopSales")
	}
	if err := svc.PurchaseTier(c, 0); err == nil {
		t.Fatal("tier purchase succeeded after StopSales")
	}
	if !svc.SalesStopped() {
		t.Fatal("SalesStopped false")
	}
}

func TestManagedLifecycleProducesCustomers(t *testing.T) {
	w := newWorld(t, 12)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 1000))
	// Scale 1/200: ~15 initial long-term, ~0.5 arrivals/day.
	svc.Run(20, 1.0/200)
	w.sched.RunFor(20 * 24 * time.Hour)

	if len(svc.Customers()) < 10 {
		t.Fatalf("only %d customers after 20 days", len(svc.Customers()))
	}
	long, paying := 0, 0
	for _, c := range svc.Customers() {
		if c.LongTermIntent {
			long++
		}
		if len(c.Payments) > 0 {
			paying++
		}
	}
	if long == 0 || paying == 0 {
		t.Fatalf("long=%d paying=%d", long, paying)
	}
	if svc.Revenue <= 0 {
		t.Fatal("no revenue recorded")
	}
	if svc.ActiveCustomers() == 0 {
		t.Fatal("no active customers")
	}
}

func TestUseProxyNetworkChangesASNs(t *testing.T) {
	w := newWorld(t, 13)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	proxies := netsim.NewProxyPool(w.reg, []netsim.ASN{ASNProxyBase, ASNProxyBase + 1}, 20, w.rng.Split("px"))
	svc.UseProxyNetwork(proxies)

	name, pw := w.registerHoneypot(t, "hp")
	c, err := svc.EnrollTrial(name, pw, OfferFollow)
	if err != nil {
		t.Fatal(err)
	}
	// The enrollment login must already originate from the proxy space.
	_ = c
	asns := make(map[netsim.ASN]bool)
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Client == spec.Fingerprint {
			asns[ev.ASN] = true
		}
	})
	name2, pw2 := w.registerHoneypot(t, "hp2")
	svc.EnrollTrial(name2, pw2, OfferFollow)
	for a := range asns {
		if a != ASNProxyBase && a != ASNProxyBase+1 {
			t.Fatalf("service traffic from non-proxy ASN %d", a)
		}
	}
}

func TestAdaptiveRateUnit(t *testing.T) {
	now := clock.Epoch
	a := &adaptiveRate{}
	if a.target(100) != 100 {
		t.Fatal("uncapped target should be the plan")
	}
	if !a.ready(now) {
		t.Fatal("fresh rate not ready")
	}
	a.todayCount = 30
	a.onBlocked(now, 3)
	if a.learnedCap != 30 || !a.todayBlocked {
		t.Fatalf("after block: %+v", a)
	}
	// A block triggers a multi-hour cooldown.
	if a.ready(now.Add(time.Hour)) {
		t.Fatal("ready during cooldown")
	}
	if !a.ready(now.Add(4 * time.Hour)) {
		t.Fatal("not ready after cooldown")
	}
	a.onBlocked(now, 3) // double block same day: no cap change
	if a.learnedCap != 30 {
		t.Fatal("double block changed cap")
	}
	a.endDay()
	if a.todayCount != 0 || a.todayBlocked {
		t.Fatalf("endDay: %+v", a)
	}
	// probeWait counts down over block-free days (the block day itself
	// does not count).
	if a.target(100) != 30 {
		t.Fatalf("capped target %v", a.target(100))
	}
	a.endDay()
	a.endDay()
	a.endDay()
	if a.probeWait != 0 {
		t.Fatalf("probeWait %d", a.probeWait)
	}
	// Now a probe is allowed: target rises above the cap.
	if got := a.target(100); got <= 30 {
		t.Fatalf("probe target %v, want > 30", got)
	}
	// An unanswered probe raises the cap.
	a.endDay()
	if a.learnedCap <= 30 {
		t.Fatalf("cap after unanswered probe %v", a.learnedCap)
	}
}

func TestEnrollBadCredentials(t *testing.T) {
	w := newWorld(t, 14)
	svc := NewReciprocityService(SpecByName(NameBoostgram), w.plat, w.sched, w.rng.Split("svc"))
	if _, err := svc.EnrollTrial("ghost", "nope", OfferLike); err == nil {
		t.Fatal("enrolling unknown credentials succeeded")
	}
}

func TestSessionRevocationEvictsService(t *testing.T) {
	w := newWorld(t, 15)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 500))
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollTrial(name, pw, OfferFollow)

	// The user resets their password — the AAS loses the account.
	if err := w.plat.ResetPassword(c.Account, "new"); err != nil {
		t.Fatal(err)
	}
	svc.Run(3, 0)
	w.sched.RunFor(3 * 24 * time.Hour)
	if !c.Churned {
		t.Fatal("service did not notice revoked session")
	}
}

func TestTechniqueOfferingStrings(t *testing.T) {
	if TechniqueReciprocity.String() != "reciprocity" || TechniqueCollusion.String() != "collusion" {
		t.Fatal("technique strings")
	}
	for o, want := range map[Offering]string{
		OfferLike: "like", OfferFollow: "follow", OfferComment: "comment",
		OfferPost: "post", OfferUnfollow: "unfollow", Offering(99): "unknown",
	} {
		if o.String() != want {
			t.Fatalf("offering %d string %q", int(o), o.String())
		}
	}
}

func TestWrongTechniquePanics(t *testing.T) {
	w := newWorld(t, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewReciprocityService(SpecByName(NameHublaagram), w.plat, w.sched, w.rng)
}

func TestCostPerDay(t *testing.T) {
	p := ReciprocityPricing{MinPaidDays: 7, CostPerPeriod: 3.15}
	if got := p.CostPerDay(); got != 0.45 {
		t.Fatalf("CostPerDay %v", got)
	}
	if (ReciprocityPricing{}).CostPerDay() != 0 {
		t.Fatal("zero pricing CostPerDay")
	}
}

func TestHashtagTargeting(t *testing.T) {
	w := newWorld(t, 20)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))

	// Two pools: a generic curated pool and a tagged "fitness" pool.
	generic := w.pop.AddCuratedPool("generic", spec.TargetPool, 400)
	fitness := w.pop.AddCuratedPool("fitness", spec.TargetPool, 400)
	w.pop.TagPool("fitness", "fitness", "gym")
	svc.SetTargetPool(generic)
	w.pop.Wire()

	name, pw := w.registerHoneypot(t, "hp")
	c, err := svc.EnrollTrial(name, pw, OfferFollow)
	if err != nil {
		t.Fatal(err)
	}
	// The customer narrows targeting to their hashtags (§3.3.1).
	c.Hashtags = []string{"fitness", "gym"}

	fitnessSet := make(map[platform.AccountID]bool, len(fitness))
	for _, id := range fitness {
		fitnessSet[id] = true
	}
	var wrongPool int
	var followed int
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor != c.Account || ev.Type != platform.ActionFollow || ev.Outcome != platform.OutcomeAllowed {
			return
		}
		followed++
		if !fitnessSet[ev.Target] {
			wrongPool++
		}
	})
	svc.Run(2, 0)
	w.sched.RunFor(2 * 24 * time.Hour)

	if followed == 0 {
		t.Fatal("no follows driven")
	}
	if wrongPool > 0 {
		t.Fatalf("%d of %d follows hit accounts outside the requested hashtags", wrongPool, followed)
	}
}

func TestHashtagTargetingFallsBackToPool(t *testing.T) {
	w := newWorld(t, 21)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	pool := w.pop.AddCuratedPool("generic", spec.TargetPool, 300)
	svc.SetTargetPool(pool)

	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollTrial(name, pw, OfferFollow)
	c.Hashtags = []string{"nonexistent-tag"}

	followed := 0
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor == c.Account && ev.Type == platform.ActionFollow && ev.Outcome == platform.OutcomeAllowed {
			followed++
		}
	})
	svc.Run(2, 0)
	w.sched.RunFor(2 * 24 * time.Hour)
	if followed == 0 {
		t.Fatal("empty hashtag feed should fall back to the curated pool")
	}
}

func TestOAuthAPIPrecludesAbuse(t *testing.T) {
	// §2: the public OAuth API "is rate limited in a manner that
	// precludes broad abusive use" — which is why every AAS reverse
	// engineers the private mobile API. Drive the same workload through
	// both APIs and compare throughput.
	run := func(api platform.APIKind) int {
		w := newWorld(t, 22)
		spec := SpecByName(NameBoostgram)
		svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
		svc.SetAPI(api)
		svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 2000))
		name, pw := w.registerHoneypot(t, "hp")
		c, err := svc.EnrollTrial(name, pw, OfferLike)
		if err != nil {
			t.Fatal(err)
		}
		delivered := 0
		w.plat.Log().Subscribe(func(ev platform.Event) {
			if ev.Actor == c.Account && ev.Type == platform.ActionLike && ev.Outcome == platform.OutcomeAllowed {
				delivered++
			}
		})
		svc.Run(2, 0)
		w.sched.RunFor(2 * 24 * time.Hour)
		return delivered
	}
	private := run(platform.APIPrivate)
	oauth := run(platform.APIOAuth)
	if private == 0 {
		t.Fatal("private API delivered nothing")
	}
	// Plan is 270 likes/day; OAuth is capped at 30 actions/hour, so the
	// achievable fraction collapses.
	if oauth >= private {
		t.Fatalf("oauth delivered %d >= private %d", oauth, private)
	}
	if float64(oauth) > float64(private)*0.8 {
		t.Fatalf("oauth delivered %d of private's %d — the public API cap should bite harder", oauth, private)
	}
}

func TestEnginesSurviveChaoticBlocking(t *testing.T) {
	// Failure injection: a gatekeeper that blocks 40% of everything, at
	// random. The engines must keep operating (no wedge, no panic), keep
	// delivering some actions, and their block-detection state must not
	// drive activity to zero.
	w := newWorld(t, 30)
	chaos := rng.New(99)
	w.plat.SetGatekeeper(platform.GatekeeperFunc(func(req platform.Event) platform.Verdict {
		if req.Type != platform.ActionLogin && chaos.Bool(0.4) {
			return platform.Verdict{Kind: platform.VerdictBlock}
		}
		return platform.Allow
	}))

	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 1500))
	name, pw := w.registerHoneypot(t, "hp")
	c, err := svc.EnrollTrial(name, pw, OfferFollow)
	if err != nil {
		t.Fatal(err)
	}
	c.EngagedUntil = c.EnrolledAt.Add(8 * 24 * time.Hour)

	allowed, blocked := 0, 0
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor != c.Account || ev.Type != platform.ActionFollow {
			return
		}
		switch ev.Outcome {
		case platform.OutcomeAllowed:
			allowed++
		case platform.OutcomeBlocked:
			blocked++
		}
	})
	svc.Run(8, 0)
	w.sched.RunFor(8 * 24 * time.Hour)

	if blocked == 0 {
		t.Fatal("chaos gatekeeper never fired")
	}
	if allowed == 0 {
		t.Fatal("engine wedged: zero actions delivered under random blocking")
	}
	// The per-day block detector backs off but the probe cycle must keep
	// the service trying: expect at least a handful of successes per day.
	if allowed < 8*3 {
		t.Fatalf("only %d follows delivered over 8 days — probing stalled", allowed)
	}
}

func TestCollusionSurvivesMassPasswordResets(t *testing.T) {
	// Half the network's customers reset their passwords mid-flight. The
	// service must shed the lost sessions and keep serving the rest.
	w := newWorld(t, 31)
	svc := NewCollusionService(SpecByName(NameHublaagram), w.plat, w.sched, w.rng.Split("svc"), 32)
	var customers []*Customer
	for i := 0; i < 80; i++ {
		name, pw := w.registerHoneypot(t, fmt.Sprintf("c%d", i))
		c, err := svc.EnrollFree(name, pw)
		if err != nil {
			t.Fatal(err)
		}
		c.EngagedUntil = c.EnrolledAt.Add(10 * 24 * time.Hour)
		customers = append(customers, c)
	}
	for i := 0; i < 40; i++ {
		if err := w.plat.ResetPassword(customers[i].Account, "new-pw"); err != nil {
			t.Fatal(err)
		}
	}
	// A surviving customer requests likes; delivery must still work,
	// sourced from the surviving half.
	w.sched.Clock().Advance(time.Hour)
	got, err := svc.RequestFree(customers[70], OfferLike)
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Fatal("no likes delivered after mass revocation")
	}
	churned := 0
	for _, c := range customers[:40] {
		if c.Churned {
			churned++
		}
	}
	// Revoked sources are discovered lazily, as deliveries touch them.
	if churned == 0 {
		t.Fatal("service never noticed any revoked session")
	}
}

func TestPostAutomationService(t *testing.T) {
	w := newWorld(t, 32)
	spec := SpecByName(NameInstazood) // offers posts (Table 1)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("iz", spec.TargetPool, 300))

	name, pw := w.registerHoneypot(t, "hp")
	c, err := svc.EnrollTrial(name, pw, OfferPost)
	if err != nil {
		t.Fatal(err)
	}
	posts := 0
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor == c.Account && ev.Type == platform.ActionPost && ev.Outcome == platform.OutcomeAllowed {
			posts++
		}
	})
	svc.Run(6, 0)
	w.sched.RunFor(6 * 24 * time.Hour)
	if posts == 0 {
		t.Fatal("post service produced no posts")
	}
	if posts > 20 {
		t.Fatalf("post service produced %d posts in 6 days — should be ≈daily", posts)
	}
}

func TestPostServiceNotOfferedByInstalex(t *testing.T) {
	// Table 1: Instalex has no post column; requesting it yields nothing.
	w := newWorld(t, 33)
	spec := SpecByName(NameInstalex)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("ix", spec.TargetPool, 300))
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollTrial(name, pw, OfferPost)
	posts := 0
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor == c.Account && ev.Type == platform.ActionPost {
			posts++
		}
	})
	svc.Run(5, 0)
	w.sched.RunFor(5 * 24 * time.Hour)
	if posts != 0 {
		t.Fatalf("Instalex performed %d posts despite not selling the service", posts)
	}
}

func TestReloginAllRefreshesSessions(t *testing.T) {
	w := newWorld(t, 34)
	svc := NewCollusionService(SpecByName(NameHublaagram), w.plat, w.sched, w.rng.Split("svc"), 8)
	var customers []*Customer
	for i := 0; i < 10; i++ {
		name, pw := w.registerHoneypot(t, fmt.Sprintf("c%d", i))
		c, _ := svc.EnrollFree(name, pw)
		customers = append(customers, c)
	}
	// One customer resets their password: relogin must churn them.
	w.plat.ResetPassword(customers[3].Account, "changed")
	n := svc.ReloginAll()
	if n != 9 {
		t.Fatalf("relogged %d sessions, want 9", n)
	}
	if !customers[3].Churned {
		t.Fatal("revoked customer not churned by relogin")
	}
}

func TestCollusionCommentDelivery(t *testing.T) {
	w := newWorld(t, 35)
	svc := NewCollusionService(SpecByName(NameHublaagram), w.plat, w.sched, w.rng.Split("svc"), 8)
	for i := 0; i < 30; i++ {
		name, pw := w.registerHoneypot(t, fmt.Sprintf("c%d", i))
		c, _ := svc.EnrollFree(name, pw)
		c.EngagedUntil = c.EnrolledAt.Add(5 * 24 * time.Hour)
	}
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollFree(name, pw, OfferComment)
	got, err := svc.RequestFree(c, OfferComment)
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Fatal("no comments delivered")
	}
	pid, _ := w.plat.LatestPost(c.Account)
	if comments := w.plat.Graph().Comments(pid); len(comments) != got {
		t.Fatalf("graph has %d comments, delivered %d", len(comments), got)
	}
	if svc.Delivered[platform.ActionComment] != got {
		t.Fatalf("Delivered counter %d", svc.Delivered[platform.ActionComment])
	}
}

func TestCollusionRequestFreeUnknownOffering(t *testing.T) {
	w := newWorld(t, 36)
	svc := NewCollusionService(SpecByName(NameHublaagram), w.plat, w.sched, w.rng.Split("svc"), 8)
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollFree(name, pw)
	if _, err := svc.RequestFree(c, OfferUnfollow); err == nil {
		t.Fatal("unfollow is not a free collusion offering")
	}
}

func TestCollusionDeliverNoSources(t *testing.T) {
	w := newWorld(t, 37)
	svc := NewCollusionService(SpecByName(NameHublaagram), w.plat, w.sched, w.rng.Split("svc"), 8)
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollFree(name, pw, OfferLike)
	// Only the requester is enrolled: no eligible sources.
	got, err := svc.RequestFree(c, OfferLike)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("delivered %d likes with an empty source pool", got)
	}
}

func TestCollusionStopHaltsService(t *testing.T) {
	w := newWorld(t, 38)
	svc := NewCollusionService(SpecByName(NameHublaagram), w.plat, w.sched, w.rng.Split("svc"), 8)
	svc.Stop()
	if !svc.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	if svc.ActiveCustomers() != 0 {
		t.Fatal("stopped service has active customers")
	}
}

func TestLikeAdaptationShipsAfterLag(t *testing.T) {
	w := newWorld(t, 39)
	spec := SpecByName(NameHublaagram)
	spec.DetectionLag = 48 * time.Hour // shorten for the test
	svc := NewCollusionService(spec, w.plat, w.sched, w.rng.Split("svc"), 8)
	for i := 0; i < 40; i++ {
		name, pw := w.registerHoneypot(t, fmt.Sprintf("c%d", i))
		c, _ := svc.EnrollFree(name, pw)
		c.EngagedUntil = c.EnrolledAt.Add(10 * 24 * time.Hour)
	}
	// Block every like.
	w.plat.SetGatekeeper(platform.GatekeeperFunc(func(req platform.Event) platform.Verdict {
		if req.Type == platform.ActionLike {
			return platform.Verdict{Kind: platform.VerdictBlock}
		}
		return platform.Allow
	}))
	svc.StartLifecycle(5, 0)
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollFree(name, pw, OfferLike)
	c.EngagedUntil = c.EnrolledAt.Add(10 * 24 * time.Hour)
	svc.RequestFree(c, OfferLike) // triggers the first blocked like
	if svc.LikeAdaptationActive() {
		t.Fatal("like adaptation active before the detection lag")
	}
	w.sched.RunFor(3 * 24 * time.Hour)
	if !svc.LikeAdaptationActive() {
		t.Fatal("like adaptation never shipped after the lag")
	}
}

func TestCollusionOneTimePackages(t *testing.T) {
	w := newWorld(t, 40)
	spec := SpecByName(NameHublaagram)
	svc := NewCollusionService(spec, w.plat, w.sched, w.rng.Split("svc"), 16)
	for i := 0; i < 50; i++ {
		name, pw := w.registerHoneypot(t, fmt.Sprintf("c%d", i))
		c, _ := svc.EnrollFree(name, pw)
		c.EngagedUntil = c.EnrolledAt.Add(5 * 24 * time.Hour)
	}
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollFree(name, pw)
	// Buy the $20 / 5,000-like package (delivery capped by pool size).
	if err := svc.PurchaseOneTime(c, 1); err != nil {
		t.Fatal(err)
	}
	if c.Product != PaidOneTime {
		t.Fatalf("product %v", c.Product)
	}
	if svc.Revenue != spec.Collusion.OneTime[1].Fee {
		t.Fatalf("revenue %v", svc.Revenue)
	}
	if len(c.Payments) != 1 || c.Payments[0].Amount != 20 {
		t.Fatalf("payments %+v", c.Payments)
	}
}

func TestReciprocityActiveCustomersAndStop(t *testing.T) {
	w := newWorld(t, 41)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 200))
	name, pw := w.registerHoneypot(t, "hp")
	svc.EnrollTrial(name, pw, OfferLike)
	if svc.ActiveCustomers() != 1 {
		t.Fatalf("active %d", svc.ActiveCustomers())
	}
	svc.Stop()
	if svc.ActiveCustomers() != 0 {
		t.Fatal("stopped service still active")
	}
}

func TestCustomerWantsResolution(t *testing.T) {
	spec := SpecByName(NameBoostgram)
	c := &Customer{}
	// Empty wants = everything the service sells.
	if !c.wants(spec, OfferLike) || !c.wants(spec, OfferFollow) {
		t.Fatal("empty wants should cover offerings")
	}
	if c.wants(spec, OfferComment) {
		t.Fatal("service does not sell comments")
	}
	c.Wants = []Offering{OfferLike}
	if !c.wants(spec, OfferLike) || c.wants(spec, OfferFollow) {
		t.Fatal("restricted wants not respected")
	}
}

func TestDoubleStartAutomationPanics(t *testing.T) {
	w := newWorld(t, 42)
	svc := NewReciprocityService(SpecByName(NameBoostgram), w.plat, w.sched, w.rng.Split("svc"))
	svc.StartAutomation(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double StartAutomation did not panic")
		}
	}()
	svc.StartAutomation(1)
}

func TestControlPanelRendersFigure1(t *testing.T) {
	w := newWorld(t, 43)
	spec := SpecByName(NameInstalex)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("ix", spec.TargetPool, 500))
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollTrial(name, pw, OfferLike, OfferFollow)
	svc.Run(2, 0)
	w.sched.RunFor(2 * 24 * time.Hour)

	panel := svc.ControlPanel(c)
	for _, want := range []string{"Instalex", "hp", "FREE TRIAL", "likes", "follows", "total paid: $0.00"} {
		if !strings.Contains(panel, want) {
			t.Fatalf("panel missing %q:\n%s", want, panel)
		}
	}
	// Instalex sells no posts (Table 1): the panel must not show a post row.
	if strings.Contains(panel, "posts") {
		t.Fatalf("panel lists unsold post service:\n%s", panel)
	}
	// Counts in the panel match what the monitor observed.
	totals := c.Totals()
	if totals[platform.ActionLike] == 0 || totals[platform.ActionFollow] == 0 {
		t.Fatalf("panel totals empty: %v", totals)
	}
	if !strings.Contains(panel, fmt.Sprintf("%7d", totals[platform.ActionLike])) {
		t.Fatalf("panel like count mismatch:\n%s", panel)
	}
	// After purchase the status flips to ACTIVE.
	svc.Purchase(c)
	if p := svc.ControlPanel(c); !strings.Contains(p, "ACTIVE until") {
		t.Fatalf("paid panel:\n%s", p)
	}
	// After revocation the panel reports the lost account.
	w.plat.ResetPassword(c.Account, "np")
	c.Churned = true
	if p := svc.ControlPanel(c); !strings.Contains(p, "service lost") {
		t.Fatalf("churned panel:\n%s", p)
	}
}

func TestDiurnalPacing(t *testing.T) {
	// Automation volume follows a human daily rhythm: midday and evening
	// peaks well above the overnight trough.
	w := newWorld(t, 44)
	spec := SpecByName(NameBoostgram)
	svc := NewReciprocityService(spec, w.plat, w.sched, w.rng.Split("svc"))
	svc.SetTargetPool(w.pop.AddCuratedPool("bg", spec.TargetPool, 2000))
	name, pw := w.registerHoneypot(t, "hp")
	c, _ := svc.EnrollTrial(name, pw, OfferLike)
	c.EngagedUntil = c.EnrolledAt.Add(8 * 24 * time.Hour)

	byHour := make([]int, 24)
	w.plat.Log().Subscribe(func(ev platform.Event) {
		if ev.Actor == c.Account && ev.Type == platform.ActionLike && ev.Outcome == platform.OutcomeAllowed {
			byHour[ev.Time.Hour()]++
		}
	})
	svc.Run(8, 0)
	w.sched.RunFor(8 * 24 * time.Hour)

	night := byHour[1] + byHour[2] + byHour[3] + byHour[4]
	evening := byHour[18] + byHour[19] + byHour[20] + byHour[21]
	if evening == 0 {
		t.Fatal("no evening activity")
	}
	if float64(evening) < 2*float64(night) {
		t.Fatalf("no diurnal shape: evening %d vs night %d", evening, night)
	}
	// Daily totals still hit the plan: ~270 likes/day.
	total := 0
	for _, n := range byHour {
		total += n
	}
	perDay := float64(total) / 8
	if perDay < 200 || perDay > 330 {
		t.Fatalf("daily volume %.0f likes/day, want ≈270", perDay)
	}
}
