// Package aas implements Account Automation Services: the for-profit
// engines that drive customer accounts to manufacture social standing.
//
// Two techniques from §3 are implemented as separate engines sharing a
// customer model:
//
//   - ReciprocityService (reciprocity abuse): automates outbound actions
//     from customer accounts toward a curated pool of organic users, hoping
//     a fraction reciprocate. Includes trial periods, unfollow-after-follow,
//     and the per-account block-detection/probing logic the paper observed
//     ("we found an openly available implementation of one of these
//     services with block detection logic", §6.3).
//
//   - CollusionService (collusion networks): launders actions across the
//     customer population itself — every enrolled account is both a source
//     and a sink. Includes free-tier request quanta and rate limits, paid
//     like tiers, the one-time "no outbound" opt-out, and a slower,
//     service-level block detector (Hublaagram took ~3 weeks to react,
//     §6.3).
//
// The Catalog function returns the five concrete services with the exact
// offerings and price lists of Tables 1–4.
package aas

import (
	"time"

	"footsteps/internal/behavior"
	"footsteps/internal/netsim"
	"footsteps/internal/platform"
)

// Technique distinguishes the two abuse approaches of §3.
type Technique int

// Techniques.
const (
	TechniqueReciprocity Technique = iota
	TechniqueCollusion
)

func (t Technique) String() string {
	if t == TechniqueCollusion {
		return "collusion"
	}
	return "reciprocity"
}

// Offering is a service type sold to customers (Table 1 columns).
type Offering int

// Offerings.
const (
	OfferLike Offering = iota
	OfferFollow
	OfferComment
	OfferPost
	OfferUnfollow
)

func (o Offering) String() string {
	switch o {
	case OfferLike:
		return "like"
	case OfferFollow:
		return "follow"
	case OfferComment:
		return "comment"
	case OfferPost:
		return "post"
	case OfferUnfollow:
		return "unfollow"
	default:
		return "unknown"
	}
}

// ReciprocityPricing is a reciprocity AAS's cost structure (Table 2).
type ReciprocityPricing struct {
	TrialDays          int     // advertised free trial length
	DeliveredTrialDays int     // actually delivered; 0 means as advertised
	MinPaidDays        int     // minimum purchasable period
	CostPerPeriod      float64 // dollars per minimum period per account
}

// ActualTrialDays returns the trial length the service actually delivers.
// Instazood advertises 3 days but delivers 7 (§4.2) — the honeypot
// experiment rediscovers this.
func (p ReciprocityPricing) ActualTrialDays() int {
	if p.DeliveredTrialDays > 0 {
		return p.DeliveredTrialDays
	}
	return p.TrialDays
}

// CostPerDay normalizes the price to dollars/day.
func (p ReciprocityPricing) CostPerDay() float64 {
	if p.MinPaidDays == 0 {
		return 0
	}
	return p.CostPerPeriod / float64(p.MinPaidDays)
}

// LikeTier is one monthly likes-per-photo tier of a collusion network
// (Table 3 bottom block).
type LikeTier struct {
	MinLikes, MaxLikes int     // delivered per new photo
	MonthlyFee         float64 // dollars per month
}

// OneTimeLikePackage is an immediate bulk-like purchase (Table 3 middle).
type OneTimeLikePackage struct {
	Likes int
	Fee   float64
}

// CollusionPricing is a collusion network's cost structure (Tables 3–4).
type CollusionPricing struct {
	NoOutboundFee     float64 // one-time fee to never be used as a source
	OneTime           []OneTimeLikePackage
	MonthlyTiers      []LikeTier
	FreeLikeQuantum   int           // likes delivered per free request (≈80 Hublaagram)
	FreeFollowQuantum int           // follows per free request (≈40)
	FreeRequestGap    time.Duration // minimum gap between free requests (30m)
	FreeLikeHourlyCap int           // per-photo hourly like cap for free customers (160)
	AdsPerRequest     int           // pop-under ads shown per free request (1–4)
}

// Spec statically describes one AAS: identity, catalog data, network
// footprint, and workload calibration.
type Spec struct {
	Name      string
	Technique Technique
	Offerings []Offering

	// Business terms. Exactly one of Reciprocity/Collusion is meaningful.
	Reciprocity ReciprocityPricing
	Collusion   CollusionPricing

	// OperatingCountry is the location the service advertises (Table 7).
	OperatingCountry string
	// ASNs the service's automation traffic originates from (Table 7).
	ASNs []netsim.ASN
	// Fingerprint is the spoofed mobile-client string its requests carry.
	Fingerprint string

	// TargetPool calibrates the curated organic pool (reciprocity only):
	// Table 5 response rates and Figures 3/4 degree medians.
	TargetPool behavior.PoolSpec

	// Workload calibration: expected daily outbound actions per active
	// customer, by action type. For collusion services these are the
	// *delivery* rates the network must produce per requesting customer.
	DailyActions map[platform.ActionType]float64

	// UnfollowAfter: fraction of reciprocity customers who enable
	// automatic unfollow of service-created follows.
	UnfollowAfter float64

	// Customers describes the customer-base dynamics at paper scale.
	Customers CustomerDynamics

	// DetectionLag is how long the service takes to deploy like-block
	// detection once blocks begin (zero means immediate, as for follows).
	DetectionLag time.Duration
}

// Offers reports whether the service sells the given offering.
func (s *Spec) Offers(o Offering) bool {
	for _, x := range s.Offerings {
		if x == o {
			return true
		}
	}
	return false
}

// CustomerDynamics calibrates arrivals, conversion, and churn at paper
// scale (scaled down by the study's Scale factor at world build).
type CustomerDynamics struct {
	InitialLongTerm int     // long-term customers active at day 0
	DailyArrivals   float64 // new customers per day
	// LongTermConversion is the probability a new customer converts to
	// long-term in their first month (§5.1: 12% Boostgram, 21% Insta*,
	// 37% Hublaagram).
	LongTermConversion float64
	// DailyChurn is the per-day hazard that a long-term customer quits.
	DailyChurn float64
	// ShortTermMeanDays is the mean engagement of non-converting users.
	ShortTermMeanDays float64
	// Countries is the customer home-country mix (Figure 2).
	Countries []behavior.CountryWeight
	// PayingFractions (collusion only): fraction of active customers in
	// each paid category; see CollusionService.
	PayingFractions CollusionPaying
}

// CollusionPaying describes what fraction of a collusion network's active
// customers buy each product (derived from Table 9's account counts over
// the ~1.01M active base).
type CollusionPaying struct {
	NoOutbound float64   // one-time opt-out buyers
	OneTime    float64   // one-time like buyers
	Tiers      []float64 // one fraction per MonthlyTiers entry
}
