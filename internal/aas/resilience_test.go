package aas

import (
	"testing"
	"time"

	"footsteps/internal/platform"
	"footsteps/internal/rng"
)

// TestBreakerStateMachine walks the circuit breaker through its full
// lifecycle: closed → open at the consecutive-failure threshold →
// half-open after the cooldown → closed on a successful probe, and
// half-open → re-open on a failed probe.
func TestBreakerStateMachine(t *testing.T) {
	p := DefaultRetryPolicy()
	now := time.Date(2017, 9, 2, 0, 0, 0, 0, time.UTC)
	var br breaker

	if br.state(now) != breakerClosed {
		t.Fatal("fresh breaker not closed")
	}
	for i := 0; i < p.BreakerThreshold-1; i++ {
		if tr := br.onHardFailure(now, p); tr != brNone {
			t.Fatalf("failure %d caused transition %d before the threshold", i+1, tr)
		}
	}
	if br.state(now) != breakerClosed {
		t.Fatal("breaker opened below the threshold")
	}
	if tr := br.onHardFailure(now, p); tr != brOpened {
		t.Fatalf("threshold failure returned %d, want brOpened", tr)
	}
	if br.state(now) != breakerOpen {
		t.Fatal("breaker not open after the threshold failure")
	}

	// Just before the cooldown expires it is still open; at the boundary
	// it half-opens.
	almost := now.Add(p.BreakerOpenFor - time.Second)
	if br.state(almost) != breakerOpen {
		t.Fatal("breaker half-opened before the cooldown elapsed")
	}
	probe := now.Add(p.BreakerOpenFor)
	if br.state(probe) != breakerHalfOpen {
		t.Fatal("breaker not half-open after the cooldown")
	}

	// A failed probe re-opens for a full period.
	if tr := br.onHardFailure(probe, p); tr != brReopened {
		t.Fatalf("half-open failure returned %d, want brReopened", tr)
	}
	if br.state(probe.Add(p.BreakerOpenFor/2)) != breakerOpen {
		t.Fatal("breaker not open again after a failed probe")
	}

	// A successful probe closes and resets the failure count.
	probe2 := probe.Add(p.BreakerOpenFor)
	if !br.onSuccess(probe2) {
		t.Fatal("half-open success did not report closing the breaker")
	}
	if br.state(probe2) != breakerClosed || br.fails != 0 {
		t.Fatalf("after closing: state %d fails %d", br.state(probe2), br.fails)
	}
	// Closing again from closed is not reported as a close transition.
	if br.onSuccess(probe2) {
		t.Fatal("success on a closed breaker reported a close transition")
	}
}

// TestBreakerSuccessResetsConsecutiveCount pins "consecutive": a success
// between failures restarts the count, so intermittent errors below the
// threshold never open the breaker.
func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	p := DefaultRetryPolicy()
	now := time.Date(2017, 9, 2, 0, 0, 0, 0, time.UTC)
	var br breaker
	for round := 0; round < 3; round++ {
		for i := 0; i < p.BreakerThreshold-1; i++ {
			br.onHardFailure(now, p)
		}
		br.onSuccess(now)
	}
	if br.state(now) != breakerClosed {
		t.Fatal("breaker opened despite successes interrupting the failure runs")
	}
}

// TestRetryBudgetShedsLikesFirst pins the graceful-degradation order:
// likes and comments get a smaller retry budget than the
// revenue-critical follow mix.
func TestRetryBudgetShedsLikesFirst(t *testing.T) {
	p := DefaultRetryPolicy()
	for _, tc := range []struct {
		t    platform.ActionType
		want int
	}{
		{platform.ActionLike, 2},
		{platform.ActionComment, 2},
		{platform.ActionFollow, p.MaxAttempts},
		{platform.ActionUnfollow, p.MaxAttempts},
		{platform.ActionPost, p.MaxAttempts},
	} {
		if got := p.retryBudget(tc.t); got != tc.want {
			t.Errorf("retryBudget(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
	// A policy with no headroom keeps its configured budget everywhere.
	tight := RetryPolicy{MaxAttempts: 1}
	if got := tight.retryBudget(platform.ActionLike); got != 1 {
		t.Errorf("tight policy like budget %d, want 1", got)
	}
}

// TestBackoffBoundsAndDeterminism checks the capped exponential shape:
// attempt n waits in [base<<(n-1)/2, base<<(n-1)], capped at MaxBackoff,
// and the jitter replays identically from an identically-seeded
// customer stream.
func TestBackoffBoundsAndDeterminism(t *testing.T) {
	b := &base{rp: DefaultRetryPolicy()}
	mk := func() *Customer { return &Customer{relRNG: rng.New(3).Split("resilience")} }

	c := mk()
	for attempt := 1; attempt <= 6; attempt++ {
		full := b.rp.BaseBackoff << (attempt - 1)
		if full <= 0 || full > b.rp.MaxBackoff {
			full = b.rp.MaxBackoff
		}
		d := b.backoff(c, attempt)
		if d < full/2 || d > full {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, full/2, full)
		}
	}
	if d := b.backoff(c, 60); d > b.rp.MaxBackoff || d < b.rp.MaxBackoff/2 {
		t.Errorf("huge attempt: backoff %v escaped the cap %v", d, b.rp.MaxBackoff)
	}

	c1, c2 := mk(), mk()
	for attempt := 1; attempt <= 8; attempt++ {
		if d1, d2 := b.backoff(c1, attempt), b.backoff(c2, attempt); d1 != d2 {
			t.Fatalf("attempt %d: identical streams produced different jitter: %v vs %v", attempt, d1, d2)
		}
	}
}
